package hybrimoe_test

import (
	"math"
	"testing"

	"hybrimoe/internal/cache"
	"hybrimoe/internal/core"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/sim"
	"hybrimoe/internal/trace"
	"hybrimoe/internal/workload"
)

// TestTimelineSpansNeverOverlap replays a recorded engine run and
// checks the physical invariant that each resource executes one thing
// at a time, across all frameworks and both stages.
func TestTimelineSpansNeverOverlap(t *testing.T) {
	for _, fw := range engine.AllFrameworks() {
		fw := fw
		t.Run(fw.Name, func(t *testing.T) {
			e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), fw,
				engine.WithCacheRatio(0.25), engine.WithSeed(101), engine.WithTraceRecording())
			if err != nil {
				t.Fatal(err)
			}
			e.RunPrefill(32)
			e.RunDecode(5)
			cpu, gpu, link := e.Timelines()
			for _, tl := range []*sim.Timeline{cpu, gpu, link} {
				assertSerial(t, tl)
			}
		})
	}
}

func assertSerial(t *testing.T, tl *sim.Timeline) {
	t.Helper()
	spans := tl.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End-1e-9 {
			t.Fatalf("%s: span %d (%q @%v) starts before span %d (%q ends %v)",
				tl.Name, i, spans[i].Name, spans[i].Start, i-1, spans[i-1].Name, spans[i-1].End)
		}
	}
}

// TestExpertComputationConservation checks that every activated expert
// is computed exactly once per step: ops == steps × layers × K for
// decode on every framework.
func TestExpertComputationConservation(t *testing.T) {
	cfg := moe.Qwen2()
	const steps = 6
	want := steps * cfg.Layers * cfg.ActivatedExperts
	for _, fw := range engine.AllFrameworks() {
		e, err := engine.New(cfg, hw.A6000Platform(), fw,
			engine.WithCacheRatio(0.5), engine.WithSeed(102), engine.WithPlanValidation())
		if err != nil {
			t.Fatal(err)
		}
		res := e.RunDecode(steps)
		if got := res.Stats.CPUOps + res.Stats.GPUOps; got != want {
			t.Fatalf("%s: %d expert computations, want %d", fw.Name, got, want)
		}
	}
}

// TestLatencyDominanceAcrossGrid spot-checks the paper's headline
// ordering across the full model × ratio grid: HybriMoE never loses to
// kTransformers at decode.
func TestLatencyDominanceAcrossGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep in -short mode")
	}
	for _, cfg := range moe.AllModels() {
		for _, ratio := range []float64{0.25, 0.5, 0.75} {
			hy, err := engine.New(cfg, hw.A6000Platform(), engine.HybriMoEFramework(),
				engine.WithCacheRatio(ratio), engine.WithSeed(103))
			if err != nil {
				t.Fatal(err)
			}
			kt, err := engine.New(cfg, hw.A6000Platform(), engine.KTransformersFramework(),
				engine.WithCacheRatio(ratio), engine.WithSeed(103))
			if err != nil {
				t.Fatal(err)
			}
			h := hy.RunDecode(15).Total
			k := kt.RunDecode(15).Total
			if h > k {
				t.Errorf("%s @%.0f%%: HybriMoE %.4fs slower than kTransformers %.4fs",
					cfg.Name, ratio*100, h, k)
			}
		}
	}
}

// TestServingSessionThroughCore drives the full stack — workload
// stream, core facade, engine, scheduler, cache — for a small session
// and checks metric sanity.
func TestServingSessionThroughCore(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		Model:      moe.DeepSeek(),
		CacheRatio: 0.25,
		Seed:       104,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.NewStream(104, workload.AllDatasets()...)
	var lastTTFT float64
	for _, req := range stream.NextN(3) {
		decode := req.DecodeTokens
		if decode > 5 {
			decode = 5
		}
		pre := sys.Prefill(req.PromptTokens)
		if pre.Total <= 0 || math.IsNaN(pre.Total) {
			t.Fatalf("bad TTFT %v for %+v", pre.Total, req)
		}
		lastTTFT = pre.Total
		dec := sys.Decode(decode)
		if dec.Mean() <= 0 {
			t.Fatalf("bad TBT for %+v", req)
		}
		// A decode step is far cheaper than its request's prefill.
		if dec.Mean() >= lastTTFT {
			t.Fatalf("TBT %v should be below TTFT %v", dec.Mean(), lastTTFT)
		}
	}
	if hr := sys.CacheHitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("session hit rate %v out of (0,1)", hr)
	}
}

// TestTraceStatisticsFeedCacheWins ties the motivation (Fig 3b signal)
// to the mechanism (MRS): when the temporal signal is removed from the
// trace, MRS's advantage over LRU should shrink or vanish.
func TestTraceStatisticsFeedCacheWins(t *testing.T) {
	cfg := moe.DeepSeek()
	run := func(opts trace.Options) (mrs, lru float64) {
		// Mirror exp.CacheHitRate but with custom trace options.
		measure := func(policyName string) float64 {
			g := trace.New(cfg, opts)
			pol, err := cache.NewPolicy(policyName, cfg.ActivatedExperts)
			if err != nil {
				t.Fatal(err)
			}
			c := cache.New(cfg.CacheCapacity(0.3), pol)
			var warm []moe.ExpertID
			for l := 0; l < cfg.Layers; l++ {
				for e := 0; e < cfg.RoutedExperts; e++ {
					warm = append(warm, moe.ExpertID{Layer: l, Index: e})
				}
			}
			c.Warm(warm)
			for i := 0; i < 150; i++ {
				g.Advance()
				for l := 0; l < cfg.Layers; l++ {
					acts := g.Activated(l)
					active := make(map[moe.ExpertID]bool, len(acts))
					for _, e := range acts {
						active[moe.ExpertID{Layer: l, Index: e}] = true
					}
					for _, e := range acts {
						id := moe.ExpertID{Layer: l, Index: e}
						if !c.Lookup(id) {
							c.Insert(id, func(x moe.ExpertID) bool { return active[x] })
						}
					}
					c.ObserveScores(l, g.Scores(l))
				}
				if i == 37 {
					c.ResetStats()
				}
			}
			return c.HitRate()
		}
		return measure("MRS"), measure("LRU")
	}

	strong := trace.DefaultOptions(105)
	// Remove both score signals (short-term persistence and long-run
	// preference structure): activations become nearly i.i.d.
	weak := strong
	weak.TemporalCorr = 0.01
	weak.BaseSpread = 0.001
	mrsS, lruS := run(strong)
	mrsW, lruW := run(weak)
	t.Logf("structured trace: MRS %.4f LRU %.4f; noise trace: MRS %.4f LRU %.4f",
		mrsS, lruS, mrsW, lruW)
	// MRS wins in both regimes. On the noise trace its edge comes from a
	// different mechanism: layers are visited cyclically, and LRU's
	// global recency eviction targets precisely the layer that will be
	// needed soonest, while MRS spreads evictions by (noise) score.
	if mrsS <= lruS {
		t.Fatal("MRS should beat LRU on the structured trace")
	}
	if mrsW <= lruW {
		t.Fatal("MRS should not lose to LRU even on a noise trace")
	}
	// The exploitable temporal signal makes the structured trace more
	// cacheable overall than i.i.d. activations at equal capacity.
	if mrsS <= mrsW {
		t.Fatalf("structured trace should be more cacheable: %.4f vs %.4f", mrsS, mrsW)
	}
}

// TestSessionServesWorkloadStream drives a mixed workload stream
// through the streaming Session API across every framework: prefill
// and decode interleave under concurrency 2, each request finishes
// with the right number of steps, and the event clock never runs
// backwards.
func TestSessionServesWorkloadStream(t *testing.T) {
	stream := workload.NewStream(106, workload.AllDatasets()...)
	reqs := stream.NextN(4)
	for i := range reqs {
		if reqs[i].DecodeTokens > 4 {
			reqs[i].DecodeTokens = 4
		}
	}
	for _, fw := range engine.AllFrameworks() {
		fw := fw
		t.Run(fw.Name, func(t *testing.T) {
			e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), fw,
				engine.WithCacheRatio(0.25), engine.WithSeed(106))
			if err != nil {
				t.Fatal(err)
			}
			s := e.NewSession(engine.WithMaxConcurrent(2))
			s.Submit(reqs...)
			decodes := map[int]int{}
			ttft := map[int]float64{}
			var prevEnd float64
			s.Run(func(ev engine.StepEvent) {
				if ev.Latency <= 0 || math.IsNaN(ev.Latency) {
					t.Fatalf("bad latency in %+v", ev)
				}
				if ev.Start < prevEnd {
					t.Fatalf("clock ran backwards: %+v before %v", ev, prevEnd)
				}
				prevEnd = ev.End
				switch ev.Phase {
				case engine.PhasePrefill:
					ttft[ev.Request] = ev.Latency
				case engine.PhaseDecode:
					decodes[ev.Request]++
				}
			})
			for _, r := range reqs {
				if _, ok := ttft[r.ID]; !ok {
					t.Fatalf("request %d never prefilled", r.ID)
				}
				if decodes[r.ID] != r.DecodeTokens {
					t.Fatalf("request %d decoded %d/%d steps", r.ID, decodes[r.ID], r.DecodeTokens)
				}
			}
		})
	}
}
