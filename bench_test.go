// Package hybrimoe_test is the benchmark harness regenerating every
// table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`). Each BenchmarkFig*/BenchmarkTable*
// drives the corresponding internal/exp experiment at reduced scale and
// reports the headline quantity (speedup, hit-rate delta, ...) as a
// custom benchmark metric, so `go test -bench` output doubles as a
// results summary. Microbenchmarks of the core data structures and
// kernels follow.
package hybrimoe_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"hybrimoe/internal/cache"
	"hybrimoe/internal/cluster"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/exp"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/quant"
	"hybrimoe/internal/reqsched"
	"hybrimoe/internal/sched"
	"hybrimoe/internal/sim"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
	"hybrimoe/internal/trace"
	"hybrimoe/internal/workload"
)

// Benchmarks must be bit-for-bit deterministic: CI's bench-trend gate
// diffs BENCH_<sha>.json across commits, so every workload stream and
// trace generator is pinned to a fixed seed — never the clock or b.N.
const (
	// benchTraceSeed seeds engine trace generators in microbenchmarks.
	benchTraceSeed uint64 = 1
	// benchWorkloadSeed seeds the serving benchmarks' request streams.
	benchWorkloadSeed uint64 = 9
	// benchFleetSeed seeds the multi-replica fleet benchmark: the base
	// seed derives every replica's engine stream, so the whole fleet is
	// pinned by this one constant.
	benchFleetSeed uint64 = 17
)

func benchParams() exp.Params {
	p := exp.QuickParams() // fixed experiment seed (2025)
	p.DecodeSteps = 10
	p.CDFIters = 100
	p.HitRateIters = 60
	return p
}

// --- Paper figures and tables ---------------------------------------

func BenchmarkFig3aActivationCDF(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		exp.Fig3a(p).Render(io.Discard)
	}
}

func BenchmarkFig3bReuseProbability(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		exp.Fig3b(p).Render(io.Discard)
	}
}

func BenchmarkFig3cPrefillWorkload(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		exp.Fig3c(p).Render(io.Discard)
	}
}

func BenchmarkFig3dBaselines(b *testing.B) {
	p := benchParams()
	p.DecodeSteps = 5
	for i := 0; i < b.N; i++ {
		exp.Fig3d(p).Render(io.Discard)
	}
}

func BenchmarkFig3eDeviceScalingExperts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig3e().Render(io.Discard)
	}
}

func BenchmarkFig3fDeviceScalingWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig3f().Render(io.Discard)
	}
}

// BenchmarkFig7Prefill reproduces one cell of the Figure 7 grid per
// framework (DeepSeek, 128 tokens, 25% cache) and reports the speedup
// over kTransformers.
func BenchmarkFig7Prefill(b *testing.B) {
	var kt, hy float64
	for i := 0; i < b.N; i++ {
		kt = runPrefill(b, engine.KTransformersFramework(), 128)
		hy = runPrefill(b, engine.HybriMoEFramework(), 128)
	}
	if hy > 0 {
		b.ReportMetric(kt/hy, "speedup-vs-ktrans")
	}
}

// BenchmarkFig8Decode reproduces one cell of the Figure 8 grid per
// framework (DeepSeek, 25% cache) and reports the decode speedup.
func BenchmarkFig8Decode(b *testing.B) {
	var kt, hy float64
	for i := 0; i < b.N; i++ {
		kt = runDecode(b, engine.KTransformersFramework(), 10)
		hy = runDecode(b, engine.HybriMoEFramework(), 10)
	}
	if hy > 0 {
		b.ReportMetric(kt/hy, "speedup-vs-ktrans")
	}
}

func runPrefill(b *testing.B, fw engine.Framework, tokens int) float64 {
	b.Helper()
	e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), fw, engine.WithCacheRatio(0.25), engine.WithSeed(benchTraceSeed))
	if err != nil {
		b.Fatal(err)
	}
	return e.RunPrefill(tokens).Total
}

func runDecode(b *testing.B, fw engine.Framework, steps int) float64 {
	b.Helper()
	e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), fw, engine.WithCacheRatio(0.25), engine.WithSeed(benchTraceSeed))
	if err != nil {
		b.Fatal(err)
	}
	return e.RunDecode(steps).Mean()
}

// BenchmarkFig9CacheHitRate reproduces one Figure 9 point (DeepSeek,
// 30% capacity) and reports the MRS-over-LRU hit-rate gain.
func BenchmarkFig9CacheHitRate(b *testing.B) {
	cfg := moe.DeepSeek()
	var delta float64
	for i := 0; i < b.N; i++ {
		lru := exp.CacheHitRate(cfg, cache.NewLRU(), 0.30, 100, 5)
		mrs := exp.CacheHitRate(cfg, cache.NewMRS(cache.DefaultAlpha, 2*cfg.ActivatedExperts), 0.30, 100, 5)
		delta = mrs - lru
	}
	b.ReportMetric(delta, "hit-rate-gain")
}

func BenchmarkTable3Ablation(b *testing.B) {
	p := benchParams()
	p.DecodeSteps = 5
	for i := 0; i < b.N; i++ {
		exp.Table3(p).Render(io.Discard)
	}
}

// --- Design-choice ablations (DESIGN.md §4) --------------------------

func BenchmarkSchedulerGreedyVsExhaustive(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean, _ = exp.AblationGreedyVsExhaustive(50, 7)
	}
	b.ReportMetric(mean, "greedy/optimal")
}

func BenchmarkAblationMRSTopP(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		exp.AblationMRSTopP(p).Render(io.Discard)
	}
}

func BenchmarkAblationLookahead(b *testing.B) {
	p := benchParams()
	p.DecodeSteps = 5
	for i := 0; i < b.N; i++ {
		exp.AblationLookahead(p).Render(io.Discard)
	}
}

func BenchmarkAblationPrefetchPolicy(b *testing.B) {
	p := benchParams()
	p.DecodeSteps = 5
	for i := 0; i < b.N; i++ {
		exp.AblationPrefetchPolicy(p).Render(io.Discard)
	}
}

func BenchmarkAblationCPUWarmup(b *testing.B) {
	p := benchParams()
	p.DecodeSteps = 5
	for i := 0; i < b.N; i++ {
		exp.AblationCPUWarmup(p).Render(io.Discard)
	}
}

// --- Core data-structure and kernel microbenchmarks ------------------

// BenchmarkSchedulerPlanDecode times one layer-scheduling decision at
// decode shape (6 unit-load tasks, half cached) — the per-layer cost
// HybriMoE adds to the serving path.
func BenchmarkSchedulerPlanDecode(b *testing.B) {
	cfg := moe.DeepSeek()
	p := hw.A6000Platform()
	s := sched.NewHybriMoE()
	var tasks []sched.Task
	for e := 0; e < 6; e++ {
		tasks = append(tasks, sched.Task{
			ID: moe.ExpertID{Layer: 0, Index: e}, Load: 1,
			Flops: cfg.ExpertFlops(1), Bytes: cfg.ExpertBytes(), Cached: e%2 == 0,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Plan(tasks, p, sched.Resources{})
	}
}

// BenchmarkSchedulerPlanPrefill times scheduling a full prefill layer
// (64 active experts with mixed loads).
func BenchmarkSchedulerPlanPrefill(b *testing.B) {
	cfg := moe.Qwen2()
	p := hw.A6000Platform()
	s := sched.NewHybriMoE()
	rng := stats.NewRNG(3)
	var tasks []sched.Task
	for e := 0; e < 64; e++ {
		load := 1 + rng.Intn(30)
		tasks = append(tasks, sched.Task{
			ID: moe.ExpertID{Layer: 0, Index: e}, Load: load,
			Flops: cfg.ExpertFlops(load), Bytes: cfg.ExpertBytes(), Cached: rng.Float64() < 0.25,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Plan(tasks, p, sched.Resources{})
	}
}

func BenchmarkMRSObserveScores(b *testing.B) {
	p := cache.NewMRS(cache.DefaultAlpha, 12)
	g := trace.New(moe.DeepSeek(), trace.DefaultOptions(4))
	g.Advance()
	scores := g.Scores(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ObserveScores(i%26, scores)
	}
}

func BenchmarkCacheInsertEvict(b *testing.B) {
	c := cache.New(256, cache.NewLRU())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(moe.ExpertID{Layer: i % 26, Index: i % 64}, nil)
		c.Insert(moe.ExpertID{Layer: (i + 13) % 26, Index: (i + 31) % 64}, nil)
	}
}

func BenchmarkTraceAdvance(b *testing.B) {
	g := trace.New(moe.DeepSeek(), trace.DefaultOptions(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Advance()
	}
}

func BenchmarkTensorGatedFFN(b *testing.B) {
	rng := stats.NewRNG(6)
	wg := tensor.NewMatrix(256, 128)
	wu := tensor.NewMatrix(256, 128)
	wd := tensor.NewMatrix(128, 256)
	wg.FillRandom(rng)
	wu.FillRandom(rng)
	wd.FillRandom(rng)
	x := make([]float32, 128)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	b.SetBytes(int64(3 * 256 * 128 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.GatedFFN(wg, wu, wd, x)
	}
}

func BenchmarkQuantMatVec(b *testing.B) {
	rng := stats.NewRNG(7)
	m := tensor.NewMatrix(256, 512)
	m.FillRandom(rng)
	q := quant.Quantize(m, 128)
	x := make([]float32, 512)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	dst := make([]float32, 256)
	b.SetBytes(q.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MatVec(dst, x)
	}
}

func BenchmarkEngineDecodeStep(b *testing.B) {
	e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
		engine.WithCacheRatio(0.25), engine.WithSeed(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunDecode(1)
	}
}

// BenchmarkReqSchedNext times one request-scheduling decision per
// built-in policy over a 64-deep active set — the per-iteration cost
// the pluggable scheduler adds to the Session loop.
func BenchmarkReqSchedNext(b *testing.B) {
	rng := stats.NewRNG(10)
	active := make([]reqsched.Request, 64)
	for i := range active {
		active[i] = reqsched.Request{
			ID: i, Seq: i,
			RemainingDecode: 1 + rng.Intn(64),
			Deadline:        rng.Float64() * 10,
			Priority:        rng.Intn(3),
		}
	}
	for _, name := range []string{"fcfs", "round-robin", "sjf", "edf"} {
		b.Run(name, func(b *testing.B) {
			s, err := reqsched.New(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				idx := s.Next(0, active)
				s.Stepped(idx, nil)
			}
		})
	}
}

// BenchmarkSessionServeEDFAdmission times the serving loop with the
// deadline-aware scheduler and the SLO admission guard engaged — the
// overhead of live-quantile admission on top of BenchmarkSessionServe.
func BenchmarkSessionServeEDFAdmission(b *testing.B) {
	stream := workload.NewStream(benchWorkloadSeed, workload.AllDatasets()...)
	reqs := stream.NextN(4)
	for i := range reqs {
		if reqs[i].DecodeTokens > 4 {
			reqs[i].DecodeTokens = 4
		}
	}
	workload.AssignDeadlines(reqs, 0.05, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
			engine.WithCacheRatio(0.25), engine.WithSeed(benchWorkloadSeed),
			engine.WithRequestScheduler("edf"),
			engine.WithAdmission(engine.NewSLOAdmission(0.2, 0.05)))
		if err != nil {
			b.Fatal(err)
		}
		s := e.NewSession(engine.WithMaxConcurrent(2))
		s.Submit(reqs...)
		b.StartTimer()
		s.Run(nil)
	}
}

// BenchmarkSessionServe times serving a 4-request mixed stream through
// the streaming Session loop on the full HybriMoE stack.
func BenchmarkSessionServe(b *testing.B) {
	stream := workload.NewStream(benchWorkloadSeed, workload.AllDatasets()...)
	reqs := stream.NextN(4)
	for i := range reqs {
		if reqs[i].DecodeTokens > 4 {
			reqs[i].DecodeTokens = 4
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Engine construction (and its cache warm-up) is setup, not the
		// serving loop under test.
		b.StopTimer()
		e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
			engine.WithCacheRatio(0.25), engine.WithSeed(benchWorkloadSeed))
		if err != nil {
			b.Fatal(err)
		}
		s := e.NewSession(engine.WithMaxConcurrent(2))
		s.Submit(reqs...)
		b.StartTimer()
		s.Run(nil)
	}
}

// BenchmarkSessionServeBatchedDecode times the continuous-batching
// serving path: 8 decode-heavy requests merged by the greedy batch
// former at WithMaxConcurrent(8) — the merged-iteration loop the
// bench-trend gate watches. The custom metric reports simulated decode
// throughput, so a regression in batch formation (batches shrinking,
// merged iterations slowing) moves a gated unit even at -benchtime=1x.
func BenchmarkSessionServeBatchedDecode(b *testing.B) {
	stream := workload.NewStream(benchWorkloadSeed, workload.AllDatasets()...)
	reqs := stream.NextN(8)
	for i := range reqs {
		if reqs[i].DecodeTokens > 12 {
			reqs[i].DecodeTokens = 12
		}
	}
	var tokens int
	var clockEnd float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
			engine.WithCacheRatio(0.25), engine.WithSeed(benchWorkloadSeed),
			engine.WithBatchPolicy("greedy", 64))
		if err != nil {
			b.Fatal(err)
		}
		s := e.NewSession(engine.WithMaxConcurrent(8))
		s.Submit(reqs...)
		b.StartTimer()
		tokens, clockEnd = 0, 0
		s.Run(func(ev engine.StepEvent) {
			if ev.Phase == engine.PhaseDecode {
				tokens += ev.Tokens
			}
			if ev.End > clockEnd {
				clockEnd = ev.End
			}
		})
	}
	if clockEnd > 0 {
		b.ReportMetric(float64(tokens)/clockEnd, "sim-tok/s")
	}
}

// BenchmarkFleetAffinityRouting times dispatching a Poisson burst
// across a 4-replica fleet under cache-affinity routing: router scoring
// per arrival (predicted-residency views over every replica) plus the
// cluster's lockstep min-clock advance — the multi-replica serving path
// the bench-trend gate watches. The custom metric reports aggregate
// simulated goodput, so a routing or lockstep regression moves a gated
// unit even at -benchtime=1x.
func BenchmarkFleetAffinityRouting(b *testing.B) {
	reqs := workload.NewStream(benchFleetSeed, workload.AllDatasets()...).
		WithArrivals(workload.Poisson(24)).
		NextN(12)
	workload.CapDecode(reqs, 6)
	var completed int
	var clockEnd float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fleet construction (four engine stacks with cache warm-up) is
		// setup, not the dispatch loop under test.
		b.StopTimer()
		c, err := exp.NewFleet(4, "affinity", benchFleetSeed, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		c.Submit(reqs...)
		b.StartTimer()
		completed, clockEnd = 0, 0
		c.Run(func(ev cluster.Event) {
			if ev.End > clockEnd {
				clockEnd = ev.End
			}
			if ev.Done {
				completed++
			}
		})
	}
	if clockEnd > 0 {
		b.ReportMetric(float64(completed)/clockEnd, "sim-req/s")
	}
}

// BenchmarkFleetChurn times the lifecycle-heavy fleet path the churn
// study sweeps: a 3-replica fleet absorbing a mid-run stall (lease
// expiry, queue reclaim and re-route) plus a cold standby scale-up, so
// failure detection, session reclaim and warming promotion all sit on
// the gated path. The custom metric is goodput net of the lost
// in-flight work — a regression in recovery shows up even when the
// wall time holds.
func BenchmarkFleetChurn(b *testing.B) {
	reqs := workload.NewStream(benchFleetSeed, workload.AllDatasets()...).
		WithArrivals(workload.Poisson(16)).
		NextN(16)
	workload.CapDecode(reqs, 6)
	var completed int
	var clockEnd float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := exp.NewFleet(3, "affinity", benchFleetSeed, 0.25,
			cluster.WithFailure(1, 0.2, cluster.FailStall),
			cluster.WithScalePlan(cluster.ScaleEvent{At: 0.2, Delta: 1}))
		if err != nil {
			b.Fatal(err)
		}
		c.Submit(reqs...)
		b.StartTimer()
		completed, clockEnd = 0, 0
		c.Run(func(ev cluster.Event) {
			if ev.Kind != cluster.EventStep {
				return
			}
			if ev.End > clockEnd {
				clockEnd = ev.End
			}
			if ev.Done {
				completed++
			}
		})
	}
	if clockEnd > 0 {
		b.ReportMetric(float64(completed)/clockEnd, "sim-req/s")
	}
}

// benchParallelFleetRequests is the horizon-batched benchmark workload:
// a brief arrival burst followed by long decode tails, so once dispatch
// drains the burst the fleet sits in one giant safe window — the shape
// parallel stepping accelerates. Fixed lengths (no dataset draw) keep
// the step count byte-stable across machines and commits.
func benchParallelFleetRequests() []workload.Request {
	reqs := make([]workload.Request, 12)
	for i := range reqs {
		reqs[i] = workload.Request{
			ID: i, PromptTokens: 48, DecodeTokens: 120,
			Arrival: float64(i) * 0.01,
		}
	}
	return reqs
}

// BenchmarkFleetParallelStep times the same 4-replica drain at 1, 2 and
// 4 cluster workers (cluster.WithWorkers — the horizon-batched parallel
// execution mode, byte-identical event stream at any count), so the
// serial and parallel ns/op land in BENCH_<sha>.json side by side. The
// parallel sub-benchmarks also wall-clock a serial twin in untimed
// setup and report the speedup as a gated custom metric, tracking the
// scaling win per commit; the events metric pins determinism — it must
// never move between worker counts or commits.
func BenchmarkFleetParallelStep(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			reqs := benchParallelFleetRequests()
			newFleet := func(workers int) *cluster.Cluster {
				c, err := exp.NewFleet(4, "round-robin", benchFleetSeed, 0.25,
					cluster.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				c.Submit(reqs...)
				return c
			}
			var events int
			var serialWall, parWall time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := newFleet(w)
				if w > 1 {
					base := newFleet(1)
					t0 := time.Now()
					base.Run(nil)
					serialWall += time.Since(t0)
				}
				b.StartTimer()
				t0 := time.Now()
				events = c.Run(nil)
				parWall += time.Since(t0)
			}
			if events == 0 {
				b.Fatal("drain emitted no events")
			}
			b.ReportMetric(float64(events), "events")
			if w > 1 && parWall > 0 {
				b.ReportMetric(float64(serialWall)/float64(parWall), "speedup-vs-serial")
			}
		})
	}
}

// BenchmarkDisaggHandoff times the disaggregated serving path: a
// 3-replica fleet split 1:2 into prefill/decode pools, so every request
// rides the full stage-split machinery — export-mode prefill, priced KV
// checkpoint transfer over the interconnect, checkpoint-aware decode
// routing and warm working-set adoption. The custom metric reports
// simulated goodput including every migration, so a regression in the
// handoff path (transfers mispriced, adoption stalling dispatch) moves
// a gated unit even at -benchtime=1x.
func BenchmarkDisaggHandoff(b *testing.B) {
	reqs := workload.NewStream(benchFleetSeed, workload.AllDatasets()...).
		WithArrivals(workload.Poisson(20)).
		NextN(12)
	workload.CapDecode(reqs, 6)
	var completed, handoffs int
	var clockEnd float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := exp.NewFleet(3, "affinity", benchFleetSeed, 0.25,
			cluster.WithPools(cluster.PoolSpec{Prefill: 1, Decode: 2}))
		if err != nil {
			b.Fatal(err)
		}
		c.Submit(reqs...)
		b.StartTimer()
		completed, clockEnd = 0, 0
		c.Run(func(ev cluster.Event) {
			if ev.Kind != cluster.EventStep {
				return
			}
			if ev.End > clockEnd {
				clockEnd = ev.End
			}
			if ev.Done {
				completed++
			}
		})
		handoffs = c.Handoffs()
	}
	if completed != len(reqs) || handoffs != len(reqs) {
		b.Fatalf("completed %d, migrated %d of %d requests", completed, handoffs, len(reqs))
	}
	if clockEnd > 0 {
		b.ReportMetric(float64(completed)/clockEnd, "sim-req/s")
	}
}

// --- Event-core scale -------------------------------------------------

// BenchmarkMillionRequests drives the raw discrete-event core through an
// open queueing sweep at scale: 2^20 seeded Poisson arrivals flow
// through one sim.Queue, each popped arrival reserving deterministic
// service on the least-busy of eight no-trace resource timelines and
// scheduling its completion back onto the queue (so the heap constantly
// interleaves arrivals and completions, the Session's event mix). The
// sim-req/s metric is simulated requests per wall-clock second — the
// event-driven rebuild's headline scale claim is that it clears 1e6 —
// and the queue and timelines are reused across iterations, so the
// steady-state loop is allocation-free (gated by the -benchmem
// allocs/op column in the bench trend).
func BenchmarkMillionRequests(b *testing.B) {
	const (
		requests = 1 << 20
		servers  = 8
		rate     = 4e6 // arrivals per simulated second
	)
	// Pre-draw the workload so RNG cost stays out of the event loop; the
	// fixed seed keeps the simulated totals bit-identical across runs.
	rng := stats.NewRNG(benchTraceSeed)
	arrivals := make([]float64, requests)
	service := make([]float64, requests)
	clock := 0.0
	for i := range arrivals {
		clock += rng.Exp(rate)
		arrivals[i] = clock
		service[i] = (1 + rng.Float64()) / rate * servers / 2
	}
	var q sim.Queue[int32] // payload: request index, or ^index for a completion
	var tls [servers]*sim.Timeline
	for i := range tls {
		tls[i] = sim.NewTimelineNoTrace(fmt.Sprintf("srv%d", i))
	}
	var done int
	var makespan float64
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		q.Reset()
		for _, tl := range tls {
			tl.Reset()
		}
		done, makespan = 0, 0
		next := 0
		// Sliding arrival window: pushing the next arrival when one pops
		// keeps the heap at queue-depth scale, the Session's shape.
		for ; next < 64 && next < requests; next++ {
			q.Push(arrivals[next], int32(next))
		}
		for {
			at, v, ok := q.PopMin()
			if !ok {
				break
			}
			if v < 0 { // completion
				done++
				if at > makespan {
					makespan = at
				}
				continue
			}
			least := 0
			for s := 1; s < servers; s++ {
				if tls[s].BusyUntil() < tls[least].BusyUntil() {
					least = s
				}
			}
			_, end := tls[least].Reserve(at, service[v], "")
			q.Push(end, ^v)
			if next < requests {
				q.Push(arrivals[next], int32(next))
				next++
			}
		}
	}
	b.StopTimer()
	if done != requests || makespan <= arrivals[requests-1] {
		b.Fatalf("completed %d of %d requests, makespan %v", done, requests, makespan)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(requests)*float64(b.N)/secs, "sim-req/s")
	}
}
