// Command benchjson converts `go test -bench` text output into JSON so
// CI can archive one machine-readable benchmark snapshot per commit
// (BENCH_<sha>.json artifacts) and the performance trajectory can be
// diffed across PRs.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | benchjson -out BENCH_abc123.json
//
// Flags:
//
//	-in FILE   read benchmark text from FILE instead of stdin
//	-out FILE  write JSON to FILE instead of stdout
//
// Every `BenchmarkX  N  <value> <unit> ...` line becomes one record
// keeping all its metrics (ns/op, B/op, allocs/op and any custom
// b.ReportMetric units like speedup-vs-ktrans). The run's goos/goarch/
// cpu header is preserved, and each record remembers the package whose
// header preceded it. Exits non-zero when no benchmark line is found,
// so a silently-empty artifact fails the job instead of uploading.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Output is the artifact schema.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// Metrics maps unit → value for every pair on the line:
	// ns/op, B/op, allocs/op, MB/s and custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	in := flag.String("in", "", "read benchmark text from this file instead of stdin")
	out := flag.String("out", "", "write JSON to this file instead of stdout")
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Sprintf("unexpected arguments %v (want -in FILE, -out FILE)", flag.Args()))
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err.Error())
		}
		defer f.Close()
		r = f
	}
	o, err := parse(r)
	if err != nil {
		fatal(err.Error())
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err.Error())
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(o); err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "benchjson:", msg)
	os.Exit(1)
}

// parse reads `go test -bench` text output and extracts every benchmark
// record plus the environment header. It errors when no benchmark line
// is present.
func parse(r io.Reader) (Output, error) {
	var o Output
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			o.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			o.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			o.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			o.Benchmarks = append(o.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Output{}, err
	}
	if len(o.Benchmarks) == 0 {
		return Output{}, fmt.Errorf("no benchmark result lines found in input")
	}
	return o, nil
}

// parseLine splits one result line: name, run count, then value/unit
// pairs. Lines that do not fit the shape (e.g. a benchmark name echoed
// without results) are skipped.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
