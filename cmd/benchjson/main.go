// Command benchjson converts `go test -bench` text output into JSON so
// CI can archive one machine-readable benchmark snapshot per commit
// (BENCH_<sha>.json artifacts) and the performance trajectory can be
// diffed across PRs — and diffs two such snapshots as the bench-trend
// gate.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem ./... | benchjson -out BENCH_abc123.json
//	benchjson -diff [-threshold 15] OLD.json NEW.json
//
// Flags:
//
//	-in FILE       read benchmark text from FILE instead of stdin
//	-out FILE      write output to FILE instead of stdout
//	-diff          compare two snapshots instead of converting text
//	-threshold PCT regression threshold percent for -diff (default 15)
//
// Every `BenchmarkX  N  <value> <unit> ...` line becomes one record
// keeping all its metrics (ns/op, B/op, allocs/op and any custom
// b.ReportMetric units like speedup-vs-ktrans). The run's goos/goarch/
// cpu header is preserved, and each record remembers the package whose
// header preceded it. Exits non-zero when no benchmark line is found,
// so a silently-empty artifact fails the job instead of uploading.
//
// In -diff mode the two snapshots are matched per benchmark (GOMAXPROCS
// name suffixes stripped, so runs from differently-sized runners still
// pair up) and compared on the gated units — ns/op, allocs/op and every
// custom ReportMetric unit; B/op and MB/s ride along in artifacts but
// are too noisy at -benchtime=1x to gate on (allocation *counts* are a
// property of the code path, near-deterministic on this repo's seeded
// workloads, so allocs/op gates like ns/op and catches allocation
// regressions on the hot paths). Units ending in "/op" regress upward,
// all others (speedups, hit-rate gains, throughputs) regress downward. The result is a markdown table (pipe it into
// $GITHUB_STEP_SUMMARY) and the exit status is 1 when any benchmark
// moved beyond the threshold in its bad direction, so the CI job fails
// exactly on a real trend break.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Output is the artifact schema.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// Metrics maps unit → value for every pair on the line:
	// ns/op, B/op, allocs/op, MB/s and custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	in := flag.String("in", "", "read benchmark text from this file instead of stdin")
	out := flag.String("out", "", "write output to this file instead of stdout")
	diffMode := flag.Bool("diff", false, "compare two snapshot files: benchjson -diff [-threshold PCT] OLD.json NEW.json")
	threshold := flag.Float64("threshold", 15, "regression threshold percent for -diff")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err.Error())
		}
		defer f.Close()
		w = f
	}

	if *diffMode {
		if flag.NArg() != 2 {
			fatal(fmt.Sprintf("-diff wants exactly two snapshot files, got %v", flag.Args()))
		}
		if *threshold <= 0 {
			fatal(fmt.Sprintf("-threshold %v must be positive", *threshold))
		}
		oldO, err := load(flag.Arg(0))
		if err != nil {
			fatal(err.Error())
		}
		newO, err := load(flag.Arg(1))
		if err != nil {
			fatal(err.Error())
		}
		table, regressions := diff(oldO, newO, *threshold)
		fmt.Fprint(w, table)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark metric(s) regressed beyond %.4g%%\n",
				regressions, *threshold)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() > 0 {
		fatal(fmt.Sprintf("unexpected arguments %v (want -in FILE, -out FILE)", flag.Args()))
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err.Error())
		}
		defer f.Close()
		r = f
	}
	o, err := parse(r)
	if err != nil {
		fatal(err.Error())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(o); err != nil {
		fatal(err.Error())
	}
}

// load reads one archived snapshot.
func load(path string) (Output, error) {
	f, err := os.Open(path)
	if err != nil {
		return Output{}, err
	}
	defer f.Close()
	var o Output
	if err := json.NewDecoder(f).Decode(&o); err != nil {
		return Output{}, fmt.Errorf("%s: %v", path, err)
	}
	return o, nil
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "benchjson:", msg)
	os.Exit(1)
}

// parse reads `go test -bench` text output and extracts every benchmark
// record plus the environment header. It errors when no benchmark line
// is present.
func parse(r io.Reader) (Output, error) {
	var o Output
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			o.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			o.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			o.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			o.Benchmarks = append(o.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Output{}, err
	}
	if len(o.Benchmarks) == 0 {
		return Output{}, fmt.Errorf("no benchmark result lines found in input")
	}
	return o, nil
}

// benchKey pairs a benchmark across snapshots: package plus name with
// the trailing GOMAXPROCS suffix ("-8") stripped, so the same benchmark
// from differently-sized CI runners still matches.
func benchKey(b Benchmark) string {
	name := b.Name
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return b.Pkg + " " + name
}

// gated reports whether a unit participates in the trend gate: ns/op,
// allocs/op and every custom ReportMetric unit. B/op and MB/s are
// archived but not gated — byte counts and throughput of a
// -benchtime=1x smoke run gate on noise, not trends, while allocation
// counts are near-deterministic on seeded workloads and catch hot-path
// allocation regressions the way ns/op catches slowdowns.
func gated(unit string) bool {
	switch unit {
	case "B/op", "MB/s":
		return false
	}
	return true
}

// lowerIsBetterOverrides lists custom units whose bad direction the
// suffix rule below would get wrong: cost ratios that do not end in
// "/op" but still regress upward. greedy/optimal is the scheduler
// quality benchmark's makespan ratio (≥ 1, optimal = 1).
var lowerIsBetterOverrides = map[string]bool{
	"greedy/optimal": true,
}

// lowerIsBetter reports a unit's bad direction: per-op costs and the
// listed cost ratios regress upward; every other gated unit (speedups,
// hit-rate gains, simulated throughputs) regresses downward.
func lowerIsBetter(unit string) bool {
	return lowerIsBetterOverrides[unit] || strings.HasSuffix(unit, "/op")
}

// diff compares two snapshots on the gated units and renders a markdown
// table (one row per benchmark × unit, regressions first-class) plus a
// summary line, returning it with the number of regressed metrics. A
// metric regresses when it moves more than threshold percent in its bad
// direction; benchmarks present in only one snapshot are listed as
// new/removed but never regress — renames must not fail the gate.
// Matching is by exact package+name first; the GOMAXPROCS-stripped key
// is only a fallback, and only when it is unambiguous, so sub-benchmark
// names ending in digits can never be silently cross-paired.
func diff(oldO, newO Output, threshold float64) (string, int) {
	oldExact := make(map[string]Benchmark, len(oldO.Benchmarks))
	oldStripped := make(map[string][]string, len(oldO.Benchmarks))
	for _, b := range oldO.Benchmarks {
		exact := b.Pkg + " " + b.Name
		oldExact[exact] = b
		oldStripped[benchKey(b)] = append(oldStripped[benchKey(b)], exact)
	}
	matched := make(map[string]bool, len(oldO.Benchmarks))

	var sb strings.Builder
	sb.WriteString("## Benchmark trend vs parent\n\n")
	fmt.Fprintf(&sb, "Gate: ns/op, allocs/op and custom units, threshold %.4g%%.\n\n", threshold)
	sb.WriteString("| benchmark | unit | old | new | Δ | status |\n")
	sb.WriteString("|---|---|---:|---:|---:|---|\n")

	regressions, compared := 0, 0
	for _, nb := range newO.Benchmarks {
		key := nb.Pkg + " " + nb.Name
		ob, ok := oldExact[key]
		if ok {
			matched[key] = true
		} else if cands := oldStripped[benchKey(nb)]; len(cands) == 1 && !matched[cands[0]] {
			ob, ok = oldExact[cands[0]], true
			matched[cands[0]] = true
		}
		if !ok {
			fmt.Fprintf(&sb, "| %s | — | — | — | — | new |\n", key)
			continue
		}
		for _, unit := range sortedUnits(nb.Metrics) {
			if !gated(unit) {
				continue
			}
			nv := nb.Metrics[unit]
			ov, ok := ob.Metrics[unit]
			if !ok {
				fmt.Fprintf(&sb, "| %s | %s | — | %.6g | — | new metric |\n", key, unit, nv)
				continue
			}
			if ov == 0 {
				fmt.Fprintf(&sb, "| %s | %s | 0 | %.6g | — | incomparable |\n", key, unit, nv)
				continue
			}
			compared++
			delta := 100 * (nv - ov) / ov
			bad := delta
			if !lowerIsBetter(unit) {
				bad = -delta
			}
			status := "ok"
			switch {
			case bad > threshold:
				status = "**regressed**"
				regressions++
			case bad < -threshold:
				status = "improved"
			}
			fmt.Fprintf(&sb, "| %s | %s | %.6g | %.6g | %+.1f%% | %s |\n", key, unit, ov, nv, delta, status)
		}
	}
	for _, ob := range oldO.Benchmarks {
		if !matched[ob.Pkg+" "+ob.Name] {
			fmt.Fprintf(&sb, "| %s | — | — | — | — | removed |\n", ob.Pkg+" "+ob.Name)
		}
	}
	fmt.Fprintf(&sb, "\n%d metric(s) compared, %d regressed.\n", compared, regressions)
	return sb.String(), regressions
}

// sortedUnits orders a record's metric units deterministically.
func sortedUnits(metrics map[string]float64) []string {
	units := make([]string, 0, len(metrics))
	for u := range metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// parseLine splits one result line: name, run count, then value/unit
// pairs. Lines that do not fit the shape (e.g. a benchmark name echoed
// without results) are skipped.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
