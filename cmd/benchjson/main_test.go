package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hybrimoe
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7Prefill-8         	       1	 123456789 ns/op	         1.330 speedup-vs-ktrans	 1024 B/op	      12 allocs/op
BenchmarkReqSchedNext/edf      	       1	      1869 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	hybrimoe	0.442s
`

func TestParseSample(t *testing.T) {
	o, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if o.Goos != "linux" || o.Goarch != "amd64" || !strings.Contains(o.CPU, "Xeon") {
		t.Fatalf("environment header lost: %+v", o)
	}
	if len(o.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(o.Benchmarks))
	}
	b := o.Benchmarks[0]
	if b.Name != "BenchmarkFig7Prefill-8" || b.Pkg != "hybrimoe" || b.Runs != 1 {
		t.Fatalf("record mis-parsed: %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 {
		t.Fatalf("ns/op = %v", b.Metrics["ns/op"])
	}
	// Custom ReportMetric units ride along with the standard ones.
	if b.Metrics["speedup-vs-ktrans"] != 1.33 {
		t.Fatalf("custom metric = %v", b.Metrics["speedup-vs-ktrans"])
	}
	if b.Metrics["B/op"] != 1024 || b.Metrics["allocs/op"] != 12 {
		t.Fatalf("benchmem metrics lost: %+v", b.Metrics)
	}
	sub := o.Benchmarks[1]
	if sub.Name != "BenchmarkReqSchedNext/edf" || sub.Metrics["ns/op"] != 1869 {
		t.Fatalf("sub-benchmark mis-parsed: %+v", sub)
	}
}

func TestParseMultiPackage(t *testing.T) {
	multi := `pkg: hybrimoe
BenchmarkA 	 10	 5 ns/op
pkg: hybrimoe/internal/cache
BenchmarkB 	 20	 7 ns/op
`
	o, err := parse(strings.NewReader(multi))
	if err != nil {
		t.Fatal(err)
	}
	if o.Benchmarks[0].Pkg != "hybrimoe" || o.Benchmarks[1].Pkg != "hybrimoe/internal/cache" {
		t.Fatalf("per-package attribution wrong: %+v", o.Benchmarks)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  \thybrimoe\t0.1s\n")); err == nil {
		t.Fatal("input without benchmark lines must error")
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	in := `BenchmarkBroken no-numbers here
BenchmarkOK 	 3	 9 ns/op
`
	o, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Benchmarks) != 1 || o.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("malformed line not skipped: %+v", o.Benchmarks)
	}
}
