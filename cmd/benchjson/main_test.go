package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hybrimoe
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7Prefill-8         	       1	 123456789 ns/op	         1.330 speedup-vs-ktrans	 1024 B/op	      12 allocs/op
BenchmarkReqSchedNext/edf      	       1	      1869 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	hybrimoe	0.442s
`

func TestParseSample(t *testing.T) {
	o, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if o.Goos != "linux" || o.Goarch != "amd64" || !strings.Contains(o.CPU, "Xeon") {
		t.Fatalf("environment header lost: %+v", o)
	}
	if len(o.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(o.Benchmarks))
	}
	b := o.Benchmarks[0]
	if b.Name != "BenchmarkFig7Prefill-8" || b.Pkg != "hybrimoe" || b.Runs != 1 {
		t.Fatalf("record mis-parsed: %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 {
		t.Fatalf("ns/op = %v", b.Metrics["ns/op"])
	}
	// Custom ReportMetric units ride along with the standard ones.
	if b.Metrics["speedup-vs-ktrans"] != 1.33 {
		t.Fatalf("custom metric = %v", b.Metrics["speedup-vs-ktrans"])
	}
	if b.Metrics["B/op"] != 1024 || b.Metrics["allocs/op"] != 12 {
		t.Fatalf("benchmem metrics lost: %+v", b.Metrics)
	}
	sub := o.Benchmarks[1]
	if sub.Name != "BenchmarkReqSchedNext/edf" || sub.Metrics["ns/op"] != 1869 {
		t.Fatalf("sub-benchmark mis-parsed: %+v", sub)
	}
}

func TestParseMultiPackage(t *testing.T) {
	multi := `pkg: hybrimoe
BenchmarkA 	 10	 5 ns/op
pkg: hybrimoe/internal/cache
BenchmarkB 	 20	 7 ns/op
`
	o, err := parse(strings.NewReader(multi))
	if err != nil {
		t.Fatal(err)
	}
	if o.Benchmarks[0].Pkg != "hybrimoe" || o.Benchmarks[1].Pkg != "hybrimoe/internal/cache" {
		t.Fatalf("per-package attribution wrong: %+v", o.Benchmarks)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  \thybrimoe\t0.1s\n")); err == nil {
		t.Fatal("input without benchmark lines must error")
	}
}

func mkOutput(benches ...Benchmark) Output { return Output{Benchmarks: benches} }

func bench(pkg, name string, metrics map[string]float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Runs: 1, Metrics: metrics}
}

func TestDiffFlagsRegression(t *testing.T) {
	oldO := mkOutput(bench("hybrimoe", "BenchmarkX-8", map[string]float64{"ns/op": 100}))
	newO := mkOutput(bench("hybrimoe", "BenchmarkX-8", map[string]float64{"ns/op": 120}))
	table, regressions := diff(oldO, newO, 15)
	if regressions != 1 {
		t.Fatalf("a +20%% ns/op move must regress at threshold 15, got %d:\n%s", regressions, table)
	}
	if !strings.Contains(table, "**regressed**") || !strings.Contains(table, "+20.0%") {
		t.Fatalf("table does not flag the regression:\n%s", table)
	}
	// Under the threshold the same move passes.
	if _, r := diff(oldO, newO, 25); r != 0 {
		t.Fatalf("a +20%% move regressed at threshold 25: %d", r)
	}
}

// TestDiffCustomUnitDirection pins the direction rule: custom
// higher-is-better units (speedups) regress when they DROP, and a
// faster ns/op is an improvement, never a regression.
func TestDiffCustomUnitDirection(t *testing.T) {
	oldO := mkOutput(bench("hybrimoe", "BenchmarkFig7-8",
		map[string]float64{"ns/op": 100, "speedup-vs-ktrans": 1.4}))
	newO := mkOutput(bench("hybrimoe", "BenchmarkFig7-8",
		map[string]float64{"ns/op": 50, "speedup-vs-ktrans": 1.0}))
	table, regressions := diff(oldO, newO, 15)
	if regressions != 1 {
		t.Fatalf("speedup 1.4 -> 1.0 must regress, halved ns/op must not: %d\n%s", regressions, table)
	}
	if !strings.Contains(table, "improved") {
		t.Fatalf("halved ns/op not reported as improved:\n%s", table)
	}
}

// TestDiffUngatesMemoryBytes pins that B/op rides along in artifacts
// but never gates — a -benchtime=1x byte-count blip must not fail CI —
// while allocs/op, near-deterministic on seeded workloads, gates like
// ns/op.
func TestDiffUngatesMemoryBytes(t *testing.T) {
	oldO := mkOutput(bench("hybrimoe", "BenchmarkX", map[string]float64{"ns/op": 100, "B/op": 10, "allocs/op": 40}))
	newO := mkOutput(bench("hybrimoe", "BenchmarkX", map[string]float64{"ns/op": 100, "B/op": 900, "allocs/op": 42}))
	table, regressions := diff(oldO, newO, 15)
	if regressions != 0 {
		t.Fatalf("B/op or a within-threshold allocs/op move gated: %d regressions\n%s", regressions, table)
	}
	if strings.Contains(table, "B/op") {
		t.Fatalf("ungated unit rendered:\n%s", table)
	}
}

// TestDiffGatesAllocRegressions pins the allocs/op gate: a >threshold
// jump in allocations per op fails the trend the way an ns/op slowdown
// does, and an allocation drop reads as improved.
func TestDiffGatesAllocRegressions(t *testing.T) {
	oldO := mkOutput(bench("hybrimoe", "BenchmarkX", map[string]float64{"ns/op": 100, "allocs/op": 40}))
	newO := mkOutput(bench("hybrimoe", "BenchmarkX", map[string]float64{"ns/op": 100, "allocs/op": 60}))
	table, regressions := diff(oldO, newO, 15)
	if regressions != 1 {
		t.Fatalf("allocs/op 40 -> 60 must regress: %d\n%s", regressions, table)
	}
	if !strings.Contains(table, "allocs/op") {
		t.Fatalf("gated unit not rendered:\n%s", table)
	}
	table, regressions = diff(newO, oldO, 15)
	if regressions != 0 || !strings.Contains(table, "improved") {
		t.Fatalf("allocs/op 60 -> 40 must improve: %d\n%s", regressions, table)
	}
}

// TestDiffNewAndRemovedBenchmarks pins that appearing or disappearing
// benchmarks are reported but never regress — a rename must not fail
// the trend gate.
func TestDiffNewAndRemovedBenchmarks(t *testing.T) {
	oldO := mkOutput(bench("hybrimoe", "BenchmarkGone", map[string]float64{"ns/op": 100}))
	newO := mkOutput(bench("hybrimoe", "BenchmarkFresh", map[string]float64{"ns/op": 100}))
	table, regressions := diff(oldO, newO, 15)
	if regressions != 0 {
		t.Fatalf("new/removed benchmarks regressed: %d\n%s", regressions, table)
	}
	if !strings.Contains(table, "— | new |") || !strings.Contains(table, "— | removed |") {
		t.Fatalf("new/removed rows missing:\n%s", table)
	}
}

// TestDiffMatchesAcrossGOMAXPROCS pins the key normalisation: the same
// benchmark run on 4- and 8-core runners still pairs up.
func TestDiffMatchesAcrossGOMAXPROCS(t *testing.T) {
	oldO := mkOutput(bench("hybrimoe", "BenchmarkX-4", map[string]float64{"ns/op": 100}))
	newO := mkOutput(bench("hybrimoe", "BenchmarkX-8", map[string]float64{"ns/op": 130}))
	table, regressions := diff(oldO, newO, 15)
	if regressions != 1 {
		t.Fatalf("GOMAXPROCS suffix broke matching (%d regressions):\n%s", regressions, table)
	}
	// Sub-benchmark names keep their non-numeric suffixes.
	if benchKey(bench("p", "BenchmarkReqSchedNext/edf", nil)) != "p BenchmarkReqSchedNext/edf" {
		t.Fatal("non-numeric suffix must survive key normalisation")
	}
}

// TestDiffCostRatioDirection pins the override list: greedy/optimal is
// a makespan cost ratio (optimal = 1), so a DROP is an improvement and
// a rise past the threshold regresses — the opposite of other custom
// units.
func TestDiffCostRatioDirection(t *testing.T) {
	oldO := mkOutput(bench("hybrimoe", "BenchmarkSchedulerGreedyVsExhaustive-8",
		map[string]float64{"greedy/optimal": 1.4}))
	improved := mkOutput(bench("hybrimoe", "BenchmarkSchedulerGreedyVsExhaustive-8",
		map[string]float64{"greedy/optimal": 1.1}))
	if table, r := diff(oldO, improved, 15); r != 0 {
		t.Fatalf("greedy/optimal 1.4 -> 1.1 is an improvement, got %d regressions:\n%s", r, table)
	}
	if table, r := diff(improved, oldO, 15); r != 1 {
		t.Fatalf("greedy/optimal 1.1 -> 1.4 must regress, got %d:\n%s", r, table)
	}
}

// TestDiffNumericSuffixNamesNeverCrossPair pins the matching order:
// sub-benchmarks whose names end in digits (budget-128 vs budget-256)
// pair by exact name, and the stripped-key fallback refuses ambiguous
// candidates instead of silently diffing one variant against another.
func TestDiffNumericSuffixNamesNeverCrossPair(t *testing.T) {
	oldO := mkOutput(
		bench("hybrimoe", "BenchmarkX/budget-128", map[string]float64{"ns/op": 100}),
		bench("hybrimoe", "BenchmarkX/budget-256", map[string]float64{"ns/op": 200}))
	newO := mkOutput(
		bench("hybrimoe", "BenchmarkX/budget-128", map[string]float64{"ns/op": 100}),
		bench("hybrimoe", "BenchmarkX/budget-256", map[string]float64{"ns/op": 200}))
	table, regressions := diff(oldO, newO, 15)
	if regressions != 0 || strings.Contains(table, "— | new |") || strings.Contains(table, "— | removed |") {
		t.Fatalf("exact names cross-paired or dropped:\n%s", table)
	}
	if !strings.Contains(table, "BenchmarkX/budget-128") || !strings.Contains(table, "BenchmarkX/budget-256") {
		t.Fatalf("rows must display exact benchmark names:\n%s", table)
	}
	// With only one variant on each side the stripped keys collide on
	// "BenchmarkX/budget"; the ambiguity-free single candidate still
	// must not pair 128 against 256 when both stripped keys differ, and
	// a genuinely ambiguous fallback reports new/removed, not a bogus
	// comparison.
	ambOld := mkOutput(
		bench("hybrimoe", "BenchmarkX/budget-128", map[string]float64{"ns/op": 100}),
		bench("hybrimoe", "BenchmarkX/budget-256", map[string]float64{"ns/op": 200}))
	ambNew := mkOutput(bench("hybrimoe", "BenchmarkX/budget-512", map[string]float64{"ns/op": 400}))
	table, regressions = diff(ambOld, ambNew, 15)
	if regressions != 0 || !strings.Contains(table, "— | new |") {
		t.Fatalf("ambiguous stripped match produced a comparison:\n%s", table)
	}
}

// TestDiffZeroBaseline pins the divide-by-zero guard: a metric that was
// 0 in the parent is incomparable, not a crash or a spurious fail.
func TestDiffZeroBaseline(t *testing.T) {
	oldO := mkOutput(bench("hybrimoe", "BenchmarkX", map[string]float64{"ns/op": 0}))
	newO := mkOutput(bench("hybrimoe", "BenchmarkX", map[string]float64{"ns/op": 50}))
	table, regressions := diff(oldO, newO, 15)
	if regressions != 0 || !strings.Contains(table, "incomparable") {
		t.Fatalf("zero baseline mishandled (%d regressions):\n%s", regressions, table)
	}
}

func TestParseSkipsMalformedLines(t *testing.T) {
	in := `BenchmarkBroken no-numbers here
BenchmarkOK 	 3	 9 ns/op
`
	o, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Benchmarks) != 1 || o.Benchmarks[0].Name != "BenchmarkOK" {
		t.Fatalf("malformed line not skipped: %+v", o.Benchmarks)
	}
}
