package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero-hidden", []string{"-hidden", "0"}, "-hidden"},
		{"negative-inter", []string{"-inter", "-4"}, "-inter"},
		{"zero-reps", []string{"-reps", "0"}, "-reps"},
		{"unknown-flag", []string{"-bogus"}, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) should fail", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// A -reps 1 smoke run on a tiny probe kernel: the calibration must
// complete and report a positive throughput next to the preset.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loop, skipped with -short")
	}
	var b strings.Builder
	if err := run([]string{"-hidden", "32", "-inter", "64", "-reps", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"measured throughput", "warm-up penalty", "preset (", "fitted ("} {
		if !strings.Contains(out, want) {
			t.Fatalf("calibration report missing %q:\n%s", want, out)
		}
	}
}
