// Command calibrate runs the warm-up phase on the host machine: it
// times the real GatedFFN CPU kernels from internal/tensor across batch
// sizes, fits the linear cost model HybriMoE's scheduler consumes, and
// prints the fitted platform description next to the A6000 preset.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hybrimoe/internal/hw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

// run parses args, validates them and executes the calibration, writing
// the report to w. Split from main so tests drive it directly.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	hidden := fs.Int("hidden", 256, "expert hidden width for the probe kernel")
	inter := fs.Int("inter", 512, "expert intermediate width for the probe kernel")
	reps := fs.Int("reps", 3, "timing repetitions per batch size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *hidden < 1 {
		return fmt.Errorf("-hidden %d must be at least 1", *hidden)
	}
	if *inter < 1 {
		return fmt.Errorf("-inter %d must be at least 1", *inter)
	}
	if *reps < 1 {
		return fmt.Errorf("-reps %d must be at least 1", *reps)
	}

	fmt.Fprintf(w, "calibrating CPU model on %dx%d expert kernels...\n", *hidden, *inter)
	res, err := hw.CalibrateCPU(*hidden, *inter, []int{4, 8, 16, 32, 64, 128}, *reps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "measured throughput : %.3g FLOP/s\n", res.FlopsPerSec)
	fmt.Fprintf(w, "warm-up penalty     : %.3gs\n", res.WarmupPenalty)
	fmt.Fprintf(w, "linear fit          : %v\n", res.Fit)
	fmt.Fprintf(w, "samples             : %d\n\n", res.Samples)

	preset := hw.A6000Platform()
	fitted := res.ApplyToCPU(preset.CPU)
	fmt.Fprintln(w, "platform CPU models:")
	fmt.Fprintf(w, "  preset (%s): peak %.3g FLOP/s, membw %.3g B/s, warmup %.3gs\n",
		preset.CPU.Name, preset.CPU.PeakFlops, preset.CPU.MemBandwidth, preset.CPU.WarmupPenalty)
	fmt.Fprintf(w, "  fitted (%s): peak %.3g FLOP/s, membw %.3g B/s, warmup %.3gs\n",
		fitted.Name, fitted.PeakFlops, fitted.MemBandwidth, fitted.WarmupPenalty)
	fmt.Fprintln(w, "\nNote: the probe kernel is scalar Go; production INT4 kernels are")
	fmt.Fprintln(w, "an order of magnitude faster. Experiments use the preset models so")
	fmt.Fprintln(w, "results are machine-independent; pass the fitted platform to")
	fmt.Fprintln(w, "engine.New (or core.Config.Platform) to simulate this host instead.")
	return nil
}
