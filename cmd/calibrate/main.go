// Command calibrate runs the warm-up phase on the host machine: it
// times the real GatedFFN CPU kernels from internal/tensor across batch
// sizes, fits the linear cost model HybriMoE's scheduler consumes, and
// prints the fitted platform description next to the A6000 preset.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybrimoe/internal/hw"
)

func main() {
	hidden := flag.Int("hidden", 256, "expert hidden width for the probe kernel")
	inter := flag.Int("inter", 512, "expert intermediate width for the probe kernel")
	reps := flag.Int("reps", 3, "timing repetitions per batch size")
	flag.Parse()

	fmt.Printf("calibrating CPU model on %dx%d expert kernels...\n", *hidden, *inter)
	res, err := hw.CalibrateCPU(*hidden, *inter, []int{4, 8, 16, 32, 64, 128}, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Printf("measured throughput : %.3g FLOP/s\n", res.FlopsPerSec)
	fmt.Printf("warm-up penalty     : %.3gs\n", res.WarmupPenalty)
	fmt.Printf("linear fit          : %v\n", res.Fit)
	fmt.Printf("samples             : %d\n\n", res.Samples)

	preset := hw.A6000Platform()
	fitted := res.ApplyToCPU(preset.CPU)
	fmt.Println("platform CPU models:")
	fmt.Printf("  preset (%s): peak %.3g FLOP/s, membw %.3g B/s, warmup %.3gs\n",
		preset.CPU.Name, preset.CPU.PeakFlops, preset.CPU.MemBandwidth, preset.CPU.WarmupPenalty)
	fmt.Printf("  fitted (%s): peak %.3g FLOP/s, membw %.3g B/s, warmup %.3gs\n",
		fitted.Name, fitted.PeakFlops, fitted.MemBandwidth, fitted.WarmupPenalty)
	fmt.Println("\nNote: the probe kernel is scalar Go; production INT4 kernels are")
	fmt.Println("an order of magnitude faster. Experiments use the preset models so")
	fmt.Println("results are machine-independent; pass the fitted platform to")
	fmt.Println("engine.New (or core.Config.Platform) to simulate this host instead.")
}
