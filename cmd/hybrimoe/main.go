// Command hybrimoe runs the paper-reproduction experiments.
//
// Usage:
//
//	hybrimoe list                 # show available experiments
//	hybrimoe run <id> [flags]     # run one experiment (fig3a..fig9, table3, ...)
//	hybrimoe all [flags]          # run every experiment
//	hybrimoe demo [flags]         # one decode run with a Gantt timeline
//	hybrimoe serve [flags]        # stream a mixed request workload through a Session
//
// Flags:
//
//	-seed N        trace seed (default 2025)
//	-steps N       decode iterations per configuration (default 50)
//	-quick         reduced iteration counts for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"

	"hybrimoe/internal/core"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/exp"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hybrimoe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	seed := fs.Uint64("seed", 2025, "trace seed")
	steps := fs.Int("steps", 50, "decode iterations per configuration")
	quick := fs.Bool("quick", false, "reduced iteration counts")

	switch cmd {
	case "list":
		for _, e := range exp.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Desc)
		}
		return nil

	case "run":
		if len(rest) == 0 {
			return fmt.Errorf("run needs an experiment id (try 'hybrimoe list')")
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		e, err := exp.Lookup(id)
		if err != nil {
			return err
		}
		p := params(*seed, *steps, *quick)
		e.Run(p).Render(os.Stdout)
		return nil

	case "all":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		exp.RunAll(os.Stdout, params(*seed, *steps, *quick))
		return nil

	case "demo":
		model := fs.String("model", "DeepSeek", "model name (DeepSeek, Mixtral, Qwen2)")
		ratio := fs.Float64("cache", 0.25, "GPU expert cache ratio")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		cfg, err := moe.ByName(*model)
		if err != nil {
			return err
		}
		sys, err := core.NewSystem(core.Config{
			Model:       cfg,
			CacheRatio:  *ratio,
			Seed:        *seed,
			RecordTrace: true,
		})
		if err != nil {
			return err
		}
		res := sys.Decode(*steps)
		fmt.Printf("%s decode, %d steps, %.0f%% cache: mean TBT %.4fs, hit rate %.1f%%\n",
			cfg.Name, *steps, *ratio*100, res.Mean(), 100*res.Stats.CacheHitRate)
		fmt.Printf("ops: %d CPU, %d GPU, %d demand transfers, %d prefetches\n",
			res.Stats.CPUOps, res.Stats.GPUOps, res.Stats.DemandTransfers, res.Stats.PrefetchTransfers)
		fmt.Println("\nExecution timeline (whole run):")
		fmt.Print(sys.Gantt(100))
		return nil

	case "serve":
		model := fs.String("model", "DeepSeek", "model name (DeepSeek, Mixtral, Qwen2)")
		ratio := fs.Float64("cache", 0.25, "GPU expert cache ratio")
		requests := fs.Int("requests", 8, "requests to draw from the workload stream")
		concurrent := fs.Int("concurrent", 2, "requests served at once (phases interleave)")
		decodeCap := fs.Int("decode-cap", 16, "cap on decode tokens per request")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		cfg, err := moe.ByName(*model)
		if err != nil {
			return err
		}
		return serve(cfg, *ratio, *seed, *requests, *concurrent, *decodeCap)

	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// serve streams a mixed-corpus request workload through the engine's
// Session loop and reports TTFT/TBT percentiles from the step events.
func serve(cfg *moe.Config, ratio float64, seed uint64, requests, concurrent, decodeCap int) error {
	if requests < 1 {
		return fmt.Errorf("-requests %d must be at least 1", requests)
	}
	if concurrent < 1 {
		return fmt.Errorf("-concurrent %d must be at least 1", concurrent)
	}
	if decodeCap < 0 {
		return fmt.Errorf("-decode-cap %d must be non-negative", decodeCap)
	}
	e, err := engine.New(cfg, hw.A6000Platform(), engine.HybriMoEFramework(),
		engine.WithCacheRatio(ratio), engine.WithSeed(seed))
	if err != nil {
		return err
	}
	stream := workload.NewStream(seed, workload.AllDatasets()...)
	reqs := stream.NextN(requests)
	for i := range reqs {
		if reqs[i].DecodeTokens > decodeCap {
			reqs[i].DecodeTokens = decodeCap
		}
	}
	s := e.NewSession(engine.WithMaxConcurrent(concurrent))
	s.Submit(reqs...)

	fmt.Printf("serving %d requests on %s (%.0f%% cache, ≤%d concurrent)\n\n",
		len(reqs), cfg.Name, ratio*100, concurrent)
	var ttfts, tbts []float64
	s.Run(func(ev engine.StepEvent) {
		switch ev.Phase {
		case engine.PhasePrefill:
			ttfts = append(ttfts, ev.Latency)
			fmt.Printf("  t=%7.3fs req %2d prefill %4d tokens  TTFT %.4fs\n",
				ev.End, ev.Request, ev.Tokens, ev.Latency)
		case engine.PhaseDecode:
			tbts = append(tbts, ev.Latency)
			if ev.Done {
				fmt.Printf("  t=%7.3fs req %2d done after %d decode steps\n",
					ev.End, ev.Request, ev.Index+1)
			}
		}
	})

	fmt.Printf("\nsteps: %d   cache hit rate: %.1f%%\n", s.Steps(), 100*e.Cache().HitRate())
	fmt.Printf("TTFT  %s\n", report.Latencies(ttfts))
	fmt.Printf("TBT   %s\n", report.Latencies(tbts))
	return nil
}

func params(seed uint64, steps int, quick bool) exp.Params {
	p := exp.DefaultParams()
	if quick {
		p = exp.QuickParams()
	}
	p.Seed = seed
	p.DecodeSteps = steps
	if quick && steps == 50 {
		p.DecodeSteps = 8
	}
	return p
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hybrimoe <list|run <id>|all|demo|serve> [flags]`)
}
