// Command hybrimoe runs the paper-reproduction experiments.
//
// Usage:
//
//	hybrimoe list                 # show available experiments
//	hybrimoe run <id> [flags]     # run one experiment (fig3a..fig9, table3, ...)
//	hybrimoe all [flags]          # run every experiment
//	hybrimoe demo [flags]         # one decode run with a Gantt timeline
//
// Flags:
//
//	-seed N        trace seed (default 2025)
//	-steps N       decode iterations per configuration (default 50)
//	-quick         reduced iteration counts for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"

	"hybrimoe/internal/core"
	"hybrimoe/internal/exp"
	"hybrimoe/internal/moe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hybrimoe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	seed := fs.Uint64("seed", 2025, "trace seed")
	steps := fs.Int("steps", 50, "decode iterations per configuration")
	quick := fs.Bool("quick", false, "reduced iteration counts")

	switch cmd {
	case "list":
		for _, e := range exp.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Desc)
		}
		return nil

	case "run":
		if len(rest) == 0 {
			return fmt.Errorf("run needs an experiment id (try 'hybrimoe list')")
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		e, err := exp.Lookup(id)
		if err != nil {
			return err
		}
		p := params(*seed, *steps, *quick)
		e.Run(p).Render(os.Stdout)
		return nil

	case "all":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		exp.RunAll(os.Stdout, params(*seed, *steps, *quick))
		return nil

	case "demo":
		model := fs.String("model", "DeepSeek", "model name (DeepSeek, Mixtral, Qwen2)")
		ratio := fs.Float64("cache", 0.25, "GPU expert cache ratio")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		cfg, err := moe.ByName(*model)
		if err != nil {
			return err
		}
		sys, err := core.NewSystem(core.Config{
			Model:       cfg,
			CacheRatio:  *ratio,
			Seed:        *seed,
			RecordTrace: true,
		})
		if err != nil {
			return err
		}
		res := sys.Decode(*steps)
		fmt.Printf("%s decode, %d steps, %.0f%% cache: mean TBT %.4fs, hit rate %.1f%%\n",
			cfg.Name, *steps, *ratio*100, res.Mean(), 100*res.Stats.CacheHitRate)
		fmt.Printf("ops: %d CPU, %d GPU, %d demand transfers, %d prefetches\n",
			res.Stats.CPUOps, res.Stats.GPUOps, res.Stats.DemandTransfers, res.Stats.PrefetchTransfers)
		fmt.Println("\nExecution timeline (whole run):")
		fmt.Print(sys.Gantt(100))
		return nil

	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func params(seed uint64, steps int, quick bool) exp.Params {
	p := exp.DefaultParams()
	if quick {
		p = exp.QuickParams()
	}
	p.Seed = seed
	p.DecodeSteps = steps
	if quick && steps == 50 {
		p.DecodeSteps = 8
	}
	return p
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hybrimoe <list|run <id>|all|demo> [flags]`)
}
