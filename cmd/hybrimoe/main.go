// Command hybrimoe runs the paper-reproduction experiments.
//
// Usage:
//
//	hybrimoe list                 # show available experiments
//	hybrimoe run <id> [flags]     # run one experiment (fig3a..fig9, table3, ...)
//	hybrimoe all [flags]          # run every experiment
//	hybrimoe demo [flags]         # one decode run with a Gantt timeline
//	hybrimoe serve [flags]        # stream a mixed request workload through a Session
//
// Flags:
//
//	-seed N        trace seed (default 2025)
//	-steps N       decode iterations per configuration (default 50)
//	-quick         reduced iteration counts for a fast smoke run
//	-workers N     sweep-runner parallelism for grid studies (0 = all CPUs);
//	               results are identical for every worker count
//
// Serve flags (see `hybrimoe serve -h` for the full set):
//
//	-gpus N             A6000 GPUs in the platform (per-device caches and links)
//	-sched NAME         intra-layer scheduler (expert-parallel spreads over N GPUs)
//	-reqsched NAME      request scheduler: fcfs, round-robin, sjf, edf
//	-batch NAME         batch former: none, greedy, phase-aware
//	-batch-budget N     token budget per merged iteration
//	-slo-ttft-p95 SECS  p95 TTFT target; >0 enables SLO admission control
//	-slo-tbt-p95 SECS   p95 TBT target; >0 enables SLO admission control
//	-deadline SECS      per-token deadline budget; >0 stamps arrival-relative deadlines
//	-arrivals NAME      open-loop arrival process: none, poisson, uniform, bursty
//	-rate R             mean arrival rate in req/s (with -arrivals)
//	-trace-in FILE      replay a JSONL request trace instead of sampling a stream
//	-trace-out FILE     record the offered request sequence as a JSONL trace
//	-replicas N         independent replica stacks served as a fleet (>1 enables routing)
//	-router NAME        fleet request router: round-robin, least-loaded, power-of-two, affinity
//	-pools P:D          disaggregated pool split (prefill:decode replicas, handoffs priced)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybrimoe/internal/cluster"
	"hybrimoe/internal/core"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/exp"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/reqsched"
	"hybrimoe/internal/sched"
	"hybrimoe/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hybrimoe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	seed := fs.Uint64("seed", 2025, "trace seed")
	steps := fs.Int("steps", 50, "decode iterations per configuration")
	quick := fs.Bool("quick", false, "reduced iteration counts")
	short := fs.Bool("short", false, "alias for -quick (CI smoke runs)")
	workers := fs.Int("workers", 0, "sweep-runner parallelism for grid studies (0 = all CPUs)")
	clusterWorkers := fs.Int("cluster-workers", 1, "replica-stepping parallelism inside each fleet (1 = serial; output is identical at any count)")

	switch cmd {
	case "list":
		for _, e := range exp.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Desc)
		}
		return nil

	case "run":
		if len(rest) == 0 {
			return fmt.Errorf("run needs an experiment id (try 'hybrimoe list')")
		}
		id := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		e, err := exp.Lookup(id)
		if err != nil {
			return err
		}
		p := params(*seed, *steps, *quick || *short)
		p.Workers = *workers
		p.ClusterWorkers = *clusterWorkers
		e.Run(p).Render(os.Stdout)
		return nil

	case "all":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		p := params(*seed, *steps, *quick || *short)
		p.Workers = *workers
		p.ClusterWorkers = *clusterWorkers
		exp.RunAll(os.Stdout, p)
		return nil

	case "demo":
		model := fs.String("model", "DeepSeek", "model name (DeepSeek, Mixtral, Qwen2)")
		ratio := fs.Float64("cache", 0.25, "GPU expert cache ratio")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		cfg, err := moe.ByName(*model)
		if err != nil {
			return err
		}
		sys, err := core.NewSystem(core.Config{
			Model:       cfg,
			CacheRatio:  *ratio,
			Seed:        *seed,
			RecordTrace: true,
		})
		if err != nil {
			return err
		}
		res := sys.Decode(*steps)
		fmt.Printf("%s decode, %d steps, %.0f%% cache: mean TBT %.4fs, hit rate %.1f%%\n",
			cfg.Name, *steps, *ratio*100, res.Mean(), 100*res.Stats.CacheHitRate)
		fmt.Printf("ops: %d CPU, %d GPU, %d demand transfers, %d prefetches\n",
			res.Stats.CPUOps, res.Stats.GPUOps, res.Stats.DemandTransfers, res.Stats.PrefetchTransfers)
		fmt.Println("\nExecution timeline (whole run):")
		fmt.Print(sys.Gantt(100))
		return nil

	case "serve":
		model := fs.String("model", "DeepSeek", "model name (DeepSeek, Mixtral, Qwen2)")
		ratio := fs.Float64("cache", 0.25, "GPU expert cache ratio (per GPU)")
		gpus := fs.Int("gpus", 1, "A6000 GPUs in the platform (each with its own PCIe link)")
		schedName := fs.String("sched", "hybrimoe", "intra-layer scheduler: "+strings.Join(sched.Names(), ", "))
		requests := fs.Int("requests", 8, "requests to draw from the workload stream")
		concurrent := fs.Int("concurrent", 2, "requests served at once (phases interleave)")
		decodeCap := fs.Int("decode-cap", 16, "cap on decode tokens per request, 0 = uncapped")
		reqSched := fs.String("reqsched", "round-robin", "request scheduler: "+strings.Join(reqsched.Names(), ", "))
		batch := fs.String("batch", "none", "batch former merging concurrent iterations: "+strings.Join(reqsched.BatchNames(), ", "))
		batchBudget := fs.Int("batch-budget", exp.BatchBudget, "token budget per merged iteration")
		sloTTFT := fs.Float64("slo-ttft-p95", 0, "p95 TTFT target in seconds; >0 enables SLO admission control")
		sloTBT := fs.Float64("slo-tbt-p95", 0, "p95 TBT target in seconds; >0 enables SLO admission control")
		deadline := fs.Float64("deadline", 0, "per-token completion-deadline budget in seconds; >0 stamps arrival-relative deadlines")
		arrivals := fs.String("arrivals", "none", "open-loop arrival process: none, poisson, uniform, bursty")
		rate := fs.Float64("rate", 4, "mean arrival rate in req/s (with -arrivals)")
		traceIn := fs.String("trace-in", "", "replay a JSONL request trace instead of sampling a stream")
		traceOut := fs.String("trace-out", "", "record the offered request sequence (deadlines stamped, before admission) as a JSONL trace")
		replicas := fs.Int("replicas", 1, "independent replica stacks served as a fleet (>1 routes through -router)")
		router := fs.String("router", "affinity", "fleet request router: "+strings.Join(cluster.RouterNames(), ", "))
		fail := fs.String("fail", "", "injected replica failures, e.g. 1@0.3:stall or 0@0.5:death (comma-separated)")
		scalePlan := fs.String("scale-plan", "", "scheduled fleet resizes, e.g. +1@0.5,-1@1.2 (comma-separated)")
		pools := fs.String("pools", "", "disaggregated pool split P:D (prefill:decode replicas; prefills hand off over the interconnect)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		cfg, err := moe.ByName(*model)
		if err != nil {
			return err
		}
		sc := serveConfig{
			cfg: cfg, ratio: *ratio, seed: *seed, gpus: *gpus, sched: *schedName,
			requests: *requests, concurrent: *concurrent, decodeCap: *decodeCap,
			reqSched: *reqSched, batch: *batch, batchBudget: *batchBudget,
			sloTTFT: *sloTTFT, sloTBT: *sloTBT, deadline: *deadline,
			arrivals: *arrivals, rate: *rate, traceIn: *traceIn, traceOut: *traceOut,
			replicas: *replicas, router: *router, fail: *fail, scalePlan: *scalePlan,
			pools: *pools, clusterWorkers: *clusterWorkers,
		}
		return serve(sc)

	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// serveConfig bundles the serve subcommand's knobs.
type serveConfig struct {
	cfg                  *moe.Config
	ratio                float64
	seed                 uint64
	gpus                 int
	sched                string
	requests, concurrent int
	decodeCap            int
	reqSched             string
	batch                string
	batchBudget          int
	sloTTFT, sloTBT      float64
	deadline             float64
	arrivals             string
	rate                 float64
	traceIn, traceOut    string
	replicas             int
	router               string
	fail, scalePlan      string
	pools                string
	clusterWorkers       int
}

// serveRequests assembles the request sequence for one serve run:
// replayed from a JSONL trace when -trace-in is set (arrival stamps and
// deadlines come from the recording), otherwise sampled from the mixed
// corpus stream with optional open-loop arrival stamping.
func serveRequests(sc serveConfig) ([]workload.Request, error) {
	if sc.traceIn != "" {
		f, err := os.Open(sc.traceIn)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		reqs, err := workload.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		if len(reqs) == 0 {
			return nil, fmt.Errorf("trace %s holds no requests", sc.traceIn)
		}
		return reqs, nil
	}
	stream := workload.NewStream(sc.seed, workload.AllDatasets()...)
	if sc.arrivals != "none" {
		proc, err := workload.NewArrivals(sc.arrivals, sc.rate)
		if err != nil {
			return nil, err
		}
		stream.WithArrivals(proc)
	}
	reqs := stream.NextN(sc.requests)
	workload.CapDecode(reqs, sc.decodeCap)
	return reqs, nil
}

// serve streams a request workload — sampled from the mixed corpora,
// optionally under an open-loop arrival process, or replayed from a
// JSONL trace — through the engine's Session loop under the selected
// request scheduler and, when SLO targets are set, admission control,
// and reports queue-inclusive TTFT and TBT percentiles plus
// shed/deferral/violation accounting from the step events.
func serve(sc serveConfig) error {
	if sc.requests < 1 {
		return fmt.Errorf("-requests %d must be at least 1", sc.requests)
	}
	if sc.concurrent < 1 {
		return fmt.Errorf("-concurrent %d must be at least 1", sc.concurrent)
	}
	if sc.decodeCap < 0 {
		return fmt.Errorf("-decode-cap %d must be non-negative", sc.decodeCap)
	}
	if sc.deadline < 0 {
		return fmt.Errorf("-deadline %v must be non-negative", sc.deadline)
	}
	if sc.gpus < 1 {
		return fmt.Errorf("-gpus %d must be at least 1", sc.gpus)
	}
	if sc.replicas < 1 {
		return fmt.Errorf("-replicas %d must be at least 1", sc.replicas)
	}
	if sc.clusterWorkers < 1 {
		return fmt.Errorf("-cluster-workers %d must be at least 1", sc.clusterWorkers)
	}
	reqs, err := serveRequests(sc)
	if err != nil {
		return err
	}
	if sc.deadline > 0 {
		workload.AssignDeadlines(reqs, 0, sc.deadline)
	}
	if sc.traceOut != "" {
		f, err := os.Create(sc.traceOut)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(f, reqs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if sc.replicas > 1 || sc.fail != "" || sc.scalePlan != "" || sc.pools != "" {
		// Lifecycle and disaggregation knobs only exist at fleet scope;
		// a 1-replica fleet with churn is still a fleet.
		return serveFleet(sc, reqs)
	}
	opts := []engine.Option{
		engine.WithCacheRatio(sc.ratio),
		engine.WithSeed(sc.seed),
		engine.WithRequestScheduler(sc.reqSched),
		engine.WithBatchPolicy(sc.batch, sc.batchBudget),
	}
	admitting := sc.sloTTFT > 0 || sc.sloTBT > 0
	if admitting {
		opts = append(opts, engine.WithAdmission(engine.NewSLOAdmission(sc.sloTTFT, sc.sloTBT)))
	}
	fw := engine.HybriMoEFramework()
	if sc.sched != "" {
		fw.Sched = sc.sched
	}
	e, err := engine.New(sc.cfg, hw.MultiA6000Platform(sc.gpus), fw, opts...)
	if err != nil {
		return err
	}
	s := e.NewSession(engine.WithMaxConcurrent(sc.concurrent))
	s.Submit(reqs...)

	fmt.Printf("serving %d requests on %s (%.0f%% cache, ≤%d concurrent, %s scheduling",
		len(reqs), sc.cfg.Name, sc.ratio*100, sc.concurrent, sc.reqSched)
	if sc.gpus > 1 {
		fmt.Printf(", %d GPUs via %s", sc.gpus, sc.sched)
	}
	if sc.traceIn != "" {
		fmt.Printf(", replaying %s", sc.traceIn)
	} else if sc.arrivals != "none" {
		fmt.Printf(", %s arrivals at %.3g req/s", sc.arrivals, sc.rate)
	}
	if sc.batch != "none" {
		fmt.Printf(", %s batching ≤%d tokens", sc.batch, sc.batchBudget)
	}
	if admitting {
		fmt.Printf(", SLO p95 TTFT %.3gs / TBT %.3gs", sc.sloTTFT, sc.sloTBT)
	}
	fmt.Print(")\n\n")
	var ttfts, tbts []float64
	violations := 0
	s.Run(func(ev engine.StepEvent) {
		switch ev.Phase {
		case engine.PhasePrefill:
			// TTFT is queue-inclusive: arrival → first token. With no
			// arrival stamps Queued is 0 and this is the forward alone.
			ttfts = append(ttfts, ev.Queued+ev.Latency)
			queued := ""
			if ev.Queued > 0 {
				queued = fmt.Sprintf(" (queued %.4fs)", ev.Queued)
			}
			fmt.Printf("  t=%7.3fs req %2d prefill %4d tokens  TTFT %.4fs%s\n",
				ev.End, ev.Request, ev.Tokens, ev.Queued+ev.Latency, queued)
		case engine.PhaseDecode:
			tbts = append(tbts, ev.Latency)
		case engine.PhaseShed:
			fmt.Printf("  t=%7.3fs req %2d SHED by admission control\n", ev.End, ev.Request)
			return
		case engine.PhaseDeferred:
			fmt.Printf("  t=%7.3fs req %2d deferred by admission control\n", ev.End, ev.Request)
			return
		}
		// Done can ride a decode event or, for decode-free requests, the
		// prefill itself.
		if ev.Done {
			late := ""
			if ev.Deadline > 0 && ev.End > ev.Deadline {
				violations++
				late = fmt.Sprintf("  MISSED deadline %.3fs", ev.Deadline)
			}
			steps := ev.Index + 1
			if ev.Phase == engine.PhasePrefill {
				steps = 0
			}
			fmt.Printf("  t=%7.3fs req %2d done after %d decode steps%s\n",
				ev.End, ev.Request, steps, late)
		}
	})

	fmt.Printf("\nsteps: %d   cache hit rate: %.1f%%\n", s.Steps(), 100*e.Caches().HitRate())
	if sc.batch != "none" {
		computeSteps := len(ttfts) + len(tbts)
		meanBatch := 0.0
		if s.Batches() > 0 {
			meanBatch = float64(computeSteps) / float64(s.Batches())
		}
		fmt.Printf("batching: %d iterations for %d request-steps (mean batch %.2f)\n",
			s.Batches(), computeSteps, meanBatch)
	}
	if admitting || sc.deadline > 0 {
		fmt.Printf("admission: %d shed, %d deferral verdicts   deadline violations: %d\n",
			s.Shed(), s.Deferred(), violations)
	}
	fmt.Printf("TTFT  %s\n", report.Latencies(ttfts))
	fmt.Printf("TBT   %s\n", report.Latencies(tbts))
	return nil
}

// serveFleet streams the prepared request sequence through a
// multi-replica cluster: each replica is a full engine stack built from
// the same serve knobs (model, GPUs, schedulers, batching) with its own
// derived seed, the named router picks a replica per arrival, and SLO
// targets move admission to the fleet door — requests are shed against
// fleet-aggregate quantiles before any replica queues them.
func serveFleet(sc serveConfig, reqs []workload.Request) error {
	failures, err := cluster.ParseFailures(sc.fail)
	if err != nil {
		return err
	}
	scale, err := cluster.ParseScalePlan(sc.scalePlan)
	if err != nil {
		return err
	}
	poolSpec, err := cluster.ParsePools(sc.pools)
	if err != nil {
		return err
	}
	replicas := sc.replicas
	if n := poolSpec.Prefill + poolSpec.Decode; n > replicas {
		// -pools P:D implies the fleet size; -replicas may still grow it
		// (the surplus serves mixed).
		replicas = n
	}
	fw := engine.HybriMoEFramework()
	if sc.sched != "" {
		fw.Sched = sc.sched
	}
	build := func(i int) (*engine.Engine, error) {
		eopts := []engine.Option{
			engine.WithCacheRatio(sc.ratio),
			engine.WithSeed(cluster.ReplicaSeed(sc.seed, i)),
			engine.WithRequestScheduler(sc.reqSched),
			engine.WithBatchPolicy(sc.batch, sc.batchBudget),
		}
		if i >= replicas {
			// Scale-up replicas join with cold caches: elasticity pays
			// the re-warm cost instead of pretending warmth.
			eopts = append(eopts, engine.WithWarmupIters(0))
		}
		return engine.New(sc.cfg, hw.MultiA6000Platform(sc.gpus), fw, eopts...)
	}
	opts := []cluster.Option{
		cluster.WithReplicas(replicas),
		cluster.WithRouter(sc.router),
		cluster.WithBuilder(build),
		cluster.WithSeed(sc.seed),
		cluster.WithMaxConcurrent(sc.concurrent),
	}
	if poolSpec.Pooled() {
		opts = append(opts, cluster.WithPools(poolSpec))
	}
	if sc.clusterWorkers > 1 {
		opts = append(opts, cluster.WithWorkers(sc.clusterWorkers))
	}
	admitting := sc.sloTTFT > 0 || sc.sloTBT > 0
	if admitting {
		opts = append(opts, cluster.WithAdmission(engine.NewSLOAdmission(sc.sloTTFT, sc.sloTBT)))
	}
	for _, f := range failures {
		opts = append(opts, cluster.WithFailure(f.Replica, f.At, f.Kind))
	}
	if len(scale) > 0 {
		opts = append(opts, cluster.WithScalePlan(scale...))
	}
	c, err := cluster.New(opts...)
	if err != nil {
		return err
	}
	c.Submit(reqs...)

	fmt.Printf("serving %d requests across %d %s replicas (%s routing, %.0f%% cache, ≤%d concurrent each",
		len(reqs), replicas, sc.cfg.Name, c.RouterName(), sc.ratio*100, sc.concurrent)
	if poolSpec.Pooled() {
		fmt.Printf(", %s pools", poolSpec)
	}
	if sc.gpus > 1 {
		fmt.Printf(", %d GPUs via %s", sc.gpus, sc.sched)
	}
	if sc.traceIn != "" {
		fmt.Printf(", replaying %s", sc.traceIn)
	} else if sc.arrivals != "none" {
		fmt.Printf(", %s arrivals at %.3g req/s", sc.arrivals, sc.rate)
	}
	if sc.batch != "none" {
		fmt.Printf(", %s batching ≤%d tokens", sc.batch, sc.batchBudget)
	}
	if admitting {
		fmt.Printf(", fleet SLO p95 TTFT %.3gs / TBT %.3gs", sc.sloTTFT, sc.sloTBT)
	}
	if sc.fail != "" {
		fmt.Printf(", failures %s", sc.fail)
	}
	if sc.scalePlan != "" {
		fmt.Printf(", scale plan %s", sc.scalePlan)
	}
	fmt.Print(")\n\n")

	var ttfts, tbts []float64
	violations := 0
	c.Run(func(ev cluster.Event) {
		switch ev.Kind {
		case cluster.EventReplicaWarming:
			fmt.Printf("  t=%7.3fs r%d JOINED cold, warming\n", ev.End, ev.Replica)
			return
		case cluster.EventReplicaDraining:
			fmt.Printf("  t=%7.3fs r%d DRAINING, no new dispatches\n", ev.End, ev.Replica)
			return
		case cluster.EventReplicaDead:
			if ev.Tokens > 0 {
				fmt.Printf("  t=%7.3fs r%d DEAD, %d in-flight requests lost\n", ev.End, ev.Replica, ev.Tokens)
			} else {
				fmt.Printf("  t=%7.3fs r%d DEAD\n", ev.End, ev.Replica)
			}
			return
		case cluster.EventRerouted:
			fmt.Printf("  t=%7.3fs    req %2d RE-ROUTED off dead r%d (arrived %.3fs)\n",
				ev.End, ev.Request, ev.Replica, ev.Arrival)
			return
		case cluster.EventHandoff:
			fmt.Printf("  t=%7.3fs r%d req %2d HANDOFF landed: %d experts (%d warm), xfer %.4fs\n",
				ev.End, ev.Replica, ev.Request, ev.Tokens, ev.Hits, ev.Latency)
			return
		}
		switch ev.Phase {
		case engine.PhasePrefill:
			ttfts = append(ttfts, ev.Queued+ev.Latency)
			queued := ""
			if ev.Queued > 0 {
				queued = fmt.Sprintf(" (queued %.4fs)", ev.Queued)
			}
			fmt.Printf("  t=%7.3fs r%d req %2d prefill %4d tokens  TTFT %.4fs%s\n",
				ev.End, ev.Replica, ev.Request, ev.Tokens, ev.Queued+ev.Latency, queued)
		case engine.PhaseDecode:
			tbts = append(tbts, ev.Latency)
		case engine.PhaseShed:
			fmt.Printf("  t=%7.3fs    req %2d SHED at the fleet door\n", ev.End, ev.Request)
			return
		case engine.PhaseDeferred:
			fmt.Printf("  t=%7.3fs    req %2d deferred at the fleet door\n", ev.End, ev.Request)
			return
		}
		if ev.Done {
			late := ""
			if ev.Deadline > 0 && ev.End > ev.Deadline {
				violations++
				late = fmt.Sprintf("  MISSED deadline %.3fs", ev.Deadline)
			}
			steps := ev.Index + 1
			if ev.Phase == engine.PhasePrefill {
				steps = 0
			}
			fmt.Printf("  t=%7.3fs r%d req %2d done after %d decode steps%s\n",
				ev.End, ev.Replica, ev.Request, steps, late)
		}
	})

	fmt.Printf("\nsteps: %d   routed per replica: %v\n", c.Steps(), c.Routed())
	for i := 0; i < c.Replicas(); i++ {
		role := ""
		if c.Pools().Pooled() {
			role = " " + c.Role(i).String()
		}
		fmt.Printf("  replica %d: %-8s%s clock %.3fs, cache hit rate %.1f%%\n",
			i, c.State(i), role, c.Engine(i).Clock(), 100*c.Engine(i).Caches().HitRate())
	}
	if c.Handoffs() > 0 {
		warm, total := c.MigratedExperts()
		fmt.Printf("disaggregation: %d prefill→decode handoffs, %d/%d migrated experts landed warm\n",
			c.Handoffs(), warm, total)
	}
	if c.Rerouted() > 0 || c.Lost() > 0 {
		fmt.Printf("churn: %d requests re-routed off dead replicas, %d in-flight lost\n",
			c.Rerouted(), c.Lost())
	}
	if admitting || sc.deadline > 0 {
		fmt.Printf("admission: %d shed, %d deferral verdicts   deadline violations: %d\n",
			c.Shed(), c.Deferred(), violations)
	}
	fmt.Printf("TTFT  %s\n", report.Latencies(ttfts))
	fmt.Printf("TBT   %s\n", report.Latencies(tbts))
	return nil
}

func params(seed uint64, steps int, quick bool) exp.Params {
	p := exp.DefaultParams()
	if quick {
		p = exp.QuickParams()
	}
	p.Seed = seed
	p.DecodeSteps = steps
	if quick && steps == 50 {
		p.DecodeSteps = 8
	}
	return p
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hybrimoe <list|run <id>|all|demo|serve> [flags]`)
}
