// Command tracegen dumps synthetic MoE routing traces as CSV for
// external analysis — per-iteration activated experts and routing
// scores for decode, or per-expert token loads for prefill — and, in
// requests mode, emits a JSONL request trace (the workload
// WriteTrace/ReadTrace schema, optionally stamped with open-loop
// arrivals) that replays through `hybrimoe serve -trace-in`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybrimoe/internal/moe"
	"hybrimoe/internal/trace"
	"hybrimoe/internal/workload"
)

func main() {
	model := flag.String("model", "DeepSeek", "model name (DeepSeek, Mixtral, Qwen2)")
	mode := flag.String("mode", "decode", "decode, prefill or requests")
	iters := flag.Int("iters", 16, "decode iterations to dump")
	tokens := flag.Int("tokens", 128, "prefill tokens (prefill mode)")
	layer := flag.Int("layer", 0, "layer to dump")
	seed := flag.Uint64("seed", 2025, "trace seed")
	scores := flag.Bool("scores", false, "dump full score distribution instead of activations")
	requests := flag.Int("requests", 16, "requests to emit (requests mode)")
	arrivals := flag.String("arrivals", "poisson", "arrival process for requests mode: none, poisson, uniform, bursty")
	rate := flag.Float64("rate", 4, "mean arrival rate in req/s (requests mode)")
	decodeCap := flag.Int("decode-cap", 0, "cap on decode tokens per request, 0 = uncapped (requests mode)")
	flag.Parse()

	if *mode == "requests" {
		if err := emitRequests(*seed, *requests, *arrivals, *rate, *decodeCap); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	cfg, err := moe.ByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *layer < 0 || *layer >= cfg.Layers {
		fmt.Fprintf(os.Stderr, "tracegen: layer %d out of range [0,%d)\n", *layer, cfg.Layers)
		os.Exit(1)
	}
	g := trace.New(cfg, trace.DefaultOptions(*seed))

	switch *mode {
	case "decode":
		if *scores {
			header := make([]string, cfg.RoutedExperts)
			for e := range header {
				header[e] = fmt.Sprintf("e%d", e)
			}
			fmt.Println("iter," + strings.Join(header, ","))
			for i := 0; i < *iters; i++ {
				g.Advance()
				ss := g.Scores(*layer)
				row := make([]string, len(ss))
				for e, s := range ss {
					row[e] = fmt.Sprintf("%.6f", s)
				}
				fmt.Printf("%d,%s\n", i, strings.Join(row, ","))
			}
			return
		}
		fmt.Println("iter,activated")
		for i := 0; i < *iters; i++ {
			g.Advance()
			acts := g.Activated(*layer)
			parts := make([]string, len(acts))
			for j, e := range acts {
				parts[j] = fmt.Sprint(e)
			}
			fmt.Printf("%d,%s\n", i, strings.Join(parts, " "))
		}

	case "prefill":
		g.Advance()
		loads := g.PrefillLoads(*layer, *tokens)
		fmt.Println("expert,load")
		for e, l := range loads {
			fmt.Printf("%d,%d\n", e, l)
		}

	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown mode %q (decode|prefill|requests)\n", *mode)
		os.Exit(1)
	}
}

// emitRequests writes a JSONL request trace to stdout: the mixed-corpus
// workload stream, optionally stamped with open-loop arrival times, in
// the exact schema `hybrimoe serve -trace-in` replays.
func emitRequests(seed uint64, requests int, arrivals string, rate float64, decodeCap int) error {
	if requests < 1 {
		return fmt.Errorf("-requests %d must be at least 1", requests)
	}
	if decodeCap < 0 {
		return fmt.Errorf("-decode-cap %d must be non-negative", decodeCap)
	}
	stream := workload.NewStream(seed, workload.AllDatasets()...)
	if arrivals != "none" {
		proc, err := workload.NewArrivals(arrivals, rate)
		if err != nil {
			return err
		}
		stream.WithArrivals(proc)
	}
	reqs := stream.NextN(requests)
	workload.CapDecode(reqs, decodeCap)
	return workload.WriteTrace(os.Stdout, reqs)
}
