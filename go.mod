module hybrimoe

go 1.23
