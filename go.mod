module hybrimoe

go 1.24
