package moe

import (
	"math"
	"testing"

	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
)

func tinyDeepSeek(t *testing.T) *TinyModel {
	t.Helper()
	cfg := TinyConfig(DeepSeek())
	m, err := NewTinyModel(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomHidden(rng *stats.RNG, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	return x
}

func TestTinyConfigPreservesStructure(t *testing.T) {
	c := TinyConfig(DeepSeek())
	if c.RoutedExperts != 64 || c.ActivatedExperts != 6 || c.SharedExperts != 2 {
		t.Fatalf("tiny config lost expert structure: %+v", c)
	}
	if c.Layers != 4 || c.Hidden != 64 {
		t.Fatalf("tiny config not scaled: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRouteProducesValidDecision(t *testing.T) {
	m := tinyDeepSeek(t)
	rng := stats.NewRNG(7)
	x := randomHidden(rng, m.Cfg.Hidden)
	r := m.Route(0, x)
	if len(r.Experts) != m.Cfg.ActivatedExperts {
		t.Fatalf("selected %d experts, want %d", len(r.Experts), m.Cfg.ActivatedExperts)
	}
	if len(r.Scores) != m.Cfg.RoutedExperts {
		t.Fatalf("score vector length %d, want %d", len(r.Scores), m.Cfg.RoutedExperts)
	}
	var sum float64
	for _, s := range r.Scores {
		if s < 0 {
			t.Fatal("negative score")
		}
		sum += float64(s)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("scores sum to %v, want 1", sum)
	}
	var wsum float64
	for _, w := range r.Weights {
		wsum += float64(w)
	}
	if math.Abs(wsum-1) > 1e-4 {
		t.Fatalf("gate weights sum to %v, want 1", wsum)
	}
	// Selected experts must be the score top-k.
	top := tensor.TopK(r.Scores, m.Cfg.ActivatedExperts)
	for i := range top {
		if top[i] != r.Experts[i] {
			t.Fatalf("selected experts %v are not the score top-k %v", r.Experts, top)
		}
	}
	// Duplicates are a routing bug.
	seen := map[int]bool{}
	for _, e := range r.Experts {
		if seen[e] {
			t.Fatalf("duplicate expert %d in %v", e, r.Experts)
		}
		seen[e] = true
	}
}

func TestRouteDeterministic(t *testing.T) {
	cfg := TinyConfig(DeepSeek())
	m1, _ := NewTinyModel(cfg, 42)
	m2, _ := NewTinyModel(cfg, 42)
	rng := stats.NewRNG(9)
	x := randomHidden(rng, cfg.Hidden)
	r1, r2 := m1.Route(0, x), m2.Route(0, x)
	for i := range r1.Experts {
		if r1.Experts[i] != r2.Experts[i] {
			t.Fatal("same seed must give identical routing")
		}
	}
}

func TestForwardLayerResidualAndFinite(t *testing.T) {
	m := tinyDeepSeek(t)
	rng := stats.NewRNG(11)
	x := randomHidden(rng, m.Cfg.Hidden)
	out, r := m.ForwardLayer(0, x)
	if len(out) != len(x) {
		t.Fatalf("output width %d != input %d", len(out), len(x))
	}
	if len(r.Experts) != m.Cfg.ActivatedExperts {
		t.Fatal("forward must report routing used")
	}
	var changed bool
	for i := range out {
		if math.IsNaN(float64(out[i])) || math.IsInf(float64(out[i]), 0) {
			t.Fatal("non-finite activation")
		}
		if out[i] != x[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("layer left hidden state untouched")
	}
}

func TestForwardRunsAllLayers(t *testing.T) {
	m := tinyDeepSeek(t)
	rng := stats.NewRNG(13)
	x := randomHidden(rng, m.Cfg.Hidden)
	_, routings := m.Forward(x)
	if len(routings) != m.Cfg.Layers {
		t.Fatalf("routings = %d, want %d", len(routings), m.Cfg.Layers)
	}
	for l, r := range routings {
		if r.Layer != l {
			t.Fatalf("routing %d labelled layer %d", l, r.Layer)
		}
	}
}

func TestForwardPanicsOnBadWidth(t *testing.T) {
	m := tinyDeepSeek(t)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input width should panic")
		}
	}()
	m.Forward(make([]float32, 3))
}

func TestForwardLayerPanicsOutOfRange(t *testing.T) {
	m := tinyDeepSeek(t)
	defer func() {
		if recover() == nil {
			t.Fatal("bad layer should panic")
		}
	}()
	m.ForwardLayer(99, make([]float32, m.Cfg.Hidden))
}

func TestInterLayerScoreSimilarity(t *testing.T) {
	// The prefetch opportunity (§III Opportunity 1): hidden states of
	// adjacent layers are similar (residual stream), so routing the
	// *same* hidden state through adjacent gates approximates the next
	// layer's decision. Verify hidden-state cosine similarity across one
	// layer is high in the functional model.
	m := tinyDeepSeek(t)
	rng := stats.NewRNG(17)
	var acc stats.Running
	for trial := 0; trial < 20; trial++ {
		x := randomHidden(rng, m.Cfg.Hidden)
		h1, _ := m.ForwardLayer(0, x)
		acc.Add(tensor.CosineSimilarity(x, h1))
	}
	if acc.Mean() < 0.7 {
		t.Fatalf("adjacent hidden-state similarity = %v, want > 0.7 (residual stream)", acc.Mean())
	}
}

func TestMixtralTinyNoShared(t *testing.T) {
	cfg := TinyConfig(Mixtral())
	m, err := NewTinyModel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(19)
	x := randomHidden(rng, cfg.Hidden)
	out, r := m.ForwardLayer(0, x)
	if len(out) != cfg.Hidden || len(r.Experts) != 2 {
		t.Fatalf("Mixtral tiny forward broken: %d experts", len(r.Experts))
	}
}

func TestNewTinyModelRejectsInvalid(t *testing.T) {
	bad := &Config{Name: "bad"}
	if _, err := NewTinyModel(bad, 1); err == nil {
		t.Fatal("invalid config should error")
	}
}
