// Package moe defines the MoE model abstractions the reproduction works
// with: static model configurations matching the paper's Table II
// (Mixtral-8x7B, Qwen2-57B-A14B, DeepSeek-V2-Lite), expert identity and
// sizing, and a small functional MoE whose router and experts execute
// real arithmetic for tests and examples.
package moe

import (
	"fmt"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/quant"
)

// ExpertID identifies one routed expert by layer and index within the
// layer. Shared experts are not cached or scheduled individually — they
// are resident on the GPU in every framework the paper compares — so
// they never get IDs.
type ExpertID struct {
	Layer int
	Index int
}

// String renders "L12.E5".
func (e ExpertID) String() string { return fmt.Sprintf("L%d.E%d", e.Layer, e.Index) }

// Config describes an MoE model's architecture, mirroring the paper's
// Table II.
type Config struct {
	Name string
	// Layers is the number of transformer blocks with MoE FFNs.
	Layers int
	// SharedExperts is the number of always-active shared experts.
	SharedExperts int
	// RoutedExperts is the number of routed experts per layer (N).
	RoutedExperts int
	// ActivatedExperts is the router's top-k (K).
	ActivatedExperts int
	// Hidden is the model (residual stream) width.
	Hidden int
	// Intermediate is the routed-expert FFN inner width.
	Intermediate int
	// SharedIntermediate is the shared-expert FFN inner width (0 when
	// SharedExperts is 0).
	SharedIntermediate int
}

// Validate reports an error for inconsistent configurations.
func (c *Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("moe: %s has %d layers", c.Name, c.Layers)
	case c.RoutedExperts <= 0:
		return fmt.Errorf("moe: %s has %d routed experts", c.Name, c.RoutedExperts)
	case c.ActivatedExperts <= 0 || c.ActivatedExperts > c.RoutedExperts:
		return fmt.Errorf("moe: %s activates %d of %d experts", c.Name, c.ActivatedExperts, c.RoutedExperts)
	case c.Hidden <= 0 || c.Intermediate <= 0:
		return fmt.Errorf("moe: %s has invalid dims %dx%d", c.Name, c.Hidden, c.Intermediate)
	case c.SharedExperts < 0:
		return fmt.Errorf("moe: %s has negative shared experts", c.Name)
	case c.SharedExperts > 0 && c.SharedIntermediate <= 0:
		return fmt.Errorf("moe: %s has shared experts but no shared dim", c.Name)
	}
	return nil
}

// TotalRoutedExperts reports Layers × RoutedExperts, the cacheable
// population.
func (c *Config) TotalRoutedExperts() int { return c.Layers * c.RoutedExperts }

// ExpertBytes reports the INT4-quantized weight footprint of one routed
// expert (gate, up and down projections), i.e. the bytes one cache miss
// moves across PCIe.
func (c *Config) ExpertBytes() int64 {
	per := quant.QuantizedSizeBytes(c.Intermediate, c.Hidden, quant.DefaultGroupSize)
	down := quant.QuantizedSizeBytes(c.Hidden, c.Intermediate, quant.DefaultGroupSize)
	return 2*per + down
}

// SharedExpertBytes reports the INT4 footprint of one shared expert.
func (c *Config) SharedExpertBytes() int64 {
	if c.SharedExperts == 0 {
		return 0
	}
	per := quant.QuantizedSizeBytes(c.SharedIntermediate, c.Hidden, quant.DefaultGroupSize)
	down := quant.QuantizedSizeBytes(c.Hidden, c.SharedIntermediate, quant.DefaultGroupSize)
	return 2*per + down
}

// kvGroupSharing is the grouped-query sharing factor KVBytes assumes:
// 8 query heads share each KV head, the common production setting.
const kvGroupSharing = 8

// KVBytes reports the KV-cache footprint of one request at the given
// context length: an FP16 K and V vector of Hidden width per layer per
// token, divided by the grouped-query sharing factor. This is the byte
// volume that migrates with a request at a prefill→decode handoff.
func (c *Config) KVBytes(context int) int64 {
	if context <= 0 {
		return 0
	}
	const fp16 = 2
	perToken := int64(c.Layers) * int64(c.Hidden) * 2 * fp16 / kvGroupSharing
	return int64(context) * perToken
}

// ExpertFlops reports the FLOPs of one routed expert over a token batch.
func (c *Config) ExpertFlops(tokens int) float64 {
	return hw.ExpertFlops(c.Hidden, c.Intermediate, tokens)
}

// SharedFlops reports the FLOPs of all shared experts over a batch.
func (c *Config) SharedFlops(tokens int) float64 {
	if c.SharedExperts == 0 {
		return 0
	}
	return float64(c.SharedExperts) * hw.ExpertFlops(c.Hidden, c.SharedIntermediate, tokens)
}

// CacheCapacity converts a GPU expert cache ratio (e.g. 0.25 for the
// paper's 25% setting) into a whole number of cacheable experts, never
// below the per-layer activation count so at least one layer's worth of
// hits is possible at the smallest setting.
func (c *Config) CacheCapacity(ratio float64) int {
	n := int(ratio * float64(c.TotalRoutedExperts()))
	if n < 1 {
		n = 1
	}
	return n
}

// Mixtral returns the Mixtral-8x7B-Instruct configuration from Table II:
// few large experts, no shared expert.
func Mixtral() *Config {
	return &Config{
		Name:             "Mixtral",
		Layers:           32,
		SharedExperts:    0,
		RoutedExperts:    8,
		ActivatedExperts: 2,
		Hidden:           4096,
		Intermediate:     14336,
	}
}

// Qwen2 returns the Qwen2-57B-A14B-Instruct configuration from Table II:
// many medium experts plus one large shared expert.
func Qwen2() *Config {
	return &Config{
		Name:               "Qwen2",
		Layers:             28,
		SharedExperts:      1,
		RoutedExperts:      64,
		ActivatedExperts:   8,
		Hidden:             3584,
		Intermediate:       2560, // 18944/64-expert granularity: per-expert FFN width
		SharedIntermediate: 20480,
	}
}

// DeepSeek returns the DeepSeek-V2-Lite-Chat configuration from Table II:
// many small experts plus two shared experts.
func DeepSeek() *Config {
	return &Config{
		Name:               "DeepSeek",
		Layers:             26,
		SharedExperts:      2,
		RoutedExperts:      64,
		ActivatedExperts:   6,
		Hidden:             2048,
		Intermediate:       1408,
		SharedIntermediate: 1408,
	}
}

// AllModels returns the three evaluated configurations in the order the
// paper's figures use.
func AllModels() []*Config {
	return []*Config{DeepSeek(), Mixtral(), Qwen2()}
}

// ByName looks a configuration up by case-sensitive name.
func ByName(name string) (*Config, error) {
	for _, c := range AllModels() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("moe: unknown model %q (have DeepSeek, Mixtral, Qwen2)", name)
}
