package moe

import (
	"fmt"

	"hybrimoe/internal/quant"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
)

// TinyModel is a functional MoE with real weights at scaled-down
// dimensions. It executes genuine router logits, top-k gating, shared
// experts and INT4 routed experts so the gating/caching/scheduling
// machinery can be exercised end-to-end with actual arithmetic. The
// large-model experiments use synthetic traces instead (internal/trace);
// this model validates that the synthetic statistics match a real
// forward pass.
type TinyModel struct {
	Cfg *Config
	// gates[l] is the router weight matrix of layer l (experts×hidden).
	gates []*tensor.Matrix
	// experts[l][e] holds the INT4 routed expert weights.
	experts [][]expertWeights
	// shared[l][s] holds fp32 shared experts (always resident).
	shared [][]expertWeights2
	// normGain[l] is the pre-FFN RMSNorm gain.
	normGain [][]float32
}

type expertWeights struct {
	gate, up, down *quant.Matrix
}

type expertWeights2 struct {
	gate, up, down *tensor.Matrix
}

// NewTinyModel builds a functional model from cfg with deterministic
// random weights. Dimensions come straight from cfg, so pass a scaled
// configuration (e.g. TinyConfig) unless you enjoy waiting.
func NewTinyModel(cfg *Config, seed uint64) (*TinyModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	m := &TinyModel{Cfg: cfg}
	for l := 0; l < cfg.Layers; l++ {
		g := tensor.NewMatrix(cfg.RoutedExperts, cfg.Hidden)
		g.FillRandom(rng)
		m.gates = append(m.gates, g)

		var row []expertWeights
		for e := 0; e < cfg.RoutedExperts; e++ {
			wg := tensor.NewMatrix(cfg.Intermediate, cfg.Hidden)
			wu := tensor.NewMatrix(cfg.Intermediate, cfg.Hidden)
			wd := tensor.NewMatrix(cfg.Hidden, cfg.Intermediate)
			wg.FillRandom(rng)
			wu.FillRandom(rng)
			wd.FillRandom(rng)
			gsz := groupSizeFor(cfg.Hidden)
			row = append(row, expertWeights{
				gate: quant.Quantize(wg, gsz),
				up:   quant.Quantize(wu, gsz),
				down: quant.Quantize(wd, groupSizeFor(cfg.Intermediate)),
			})
		}
		m.experts = append(m.experts, row)

		var srow []expertWeights2
		for s := 0; s < cfg.SharedExperts; s++ {
			wg := tensor.NewMatrix(cfg.SharedIntermediate, cfg.Hidden)
			wu := tensor.NewMatrix(cfg.SharedIntermediate, cfg.Hidden)
			wd := tensor.NewMatrix(cfg.Hidden, cfg.SharedIntermediate)
			wg.FillRandom(rng)
			wu.FillRandom(rng)
			wd.FillRandom(rng)
			srow = append(srow, expertWeights2{gate: wg, up: wu, down: wd})
		}
		m.shared = append(m.shared, srow)

		gain := make([]float32, cfg.Hidden)
		tensor.Fill(gain, 1)
		m.normGain = append(m.normGain, gain)
	}
	return m, nil
}

func groupSizeFor(cols int) int {
	if cols < quant.DefaultGroupSize {
		return cols
	}
	return quant.DefaultGroupSize
}

// Routing is the router decision for one token at one layer.
type Routing struct {
	Layer int
	// Scores holds the full softmax-normalised router distribution over
	// all routed experts (the raw signal MRS caching consumes).
	Scores []float32
	// Experts lists the selected top-k expert indices in descending
	// score order.
	Experts []int
	// Weights are the renormalised gate weights of the selected experts.
	Weights []float32
}

// Route computes the router decision of layer l for hidden state x
// without executing experts. The full-distribution scores use a softmax
// over all logits, matching how MRS consumes "routing scores of all
// experts".
func (m *TinyModel) Route(l int, x []float32) Routing {
	logits := make([]float32, m.Cfg.RoutedExperts)
	tensor.MatVec(logits, m.gates[l], x)
	scores := make([]float32, len(logits))
	tensor.Softmax(scores, logits)
	experts, weights := tensor.SoftmaxTopK(logits, m.Cfg.ActivatedExperts)
	return Routing{Layer: l, Scores: scores, Experts: experts, Weights: weights}
}

// ForwardLayer runs one full MoE block for a single token: RMSNorm,
// shared experts, routed experts (INT4 kernels) combined by gate
// weights, and the residual connection. It returns the new hidden state
// and the routing decision actually used.
func (m *TinyModel) ForwardLayer(l int, x []float32) ([]float32, Routing) {
	if l < 0 || l >= m.Cfg.Layers {
		panic(fmt.Sprintf("moe: layer %d out of range [0,%d)", l, m.Cfg.Layers))
	}
	normed := make([]float32, len(x))
	tensor.RMSNorm(normed, x, m.normGain[l], 1e-6)

	routing := m.Route(l, normed)

	out := make([]float32, len(x))
	copy(out, x) // residual

	for _, sw := range m.shared[l] {
		y := tensor.GatedFFN(sw.gate, sw.up, sw.down, normed)
		tensor.Axpy(out, 1, y)
	}

	for i, e := range routing.Experts {
		y := m.runExpert(l, e, normed)
		tensor.Axpy(out, routing.Weights[i], y)
	}
	return out, routing
}

func (m *TinyModel) runExpert(l, e int, x []float32) []float32 {
	w := m.experts[l][e]
	inter := m.Cfg.Intermediate
	g := make([]float32, inter)
	u := make([]float32, inter)
	w.gate.MatVec(g, x)
	w.up.MatVec(u, x)
	tensor.SiLU(g)
	for i := range g {
		g[i] *= u[i]
	}
	out := make([]float32, m.Cfg.Hidden)
	w.down.MatVec(out, g)
	return out
}

// Forward runs the token through every layer and returns the final
// hidden state plus the per-layer routing decisions.
func (m *TinyModel) Forward(x []float32) ([]float32, []Routing) {
	if len(x) != m.Cfg.Hidden {
		panic(fmt.Sprintf("moe: input width %d != hidden %d", len(x), m.Cfg.Hidden))
	}
	h := make([]float32, len(x))
	copy(h, x)
	routings := make([]Routing, 0, m.Cfg.Layers)
	for l := 0; l < m.Cfg.Layers; l++ {
		var r Routing
		h, r = m.ForwardLayer(l, h)
		routings = append(routings, r)
	}
	return h, routings
}

// TinyConfig returns a scaled-down configuration preserving cfg's
// expert-count structure (routed/activated/shared) with small dims, for
// functional tests and the tiny_moe example.
func TinyConfig(base *Config) *Config {
	c := *base
	c.Name = base.Name + "-tiny"
	c.Layers = minInt(base.Layers, 4)
	c.Hidden = 64
	c.Intermediate = 96
	if c.SharedExperts > 0 {
		c.SharedIntermediate = 96
	}
	return &c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
