package moe

import (
	"testing"
)

func TestTableIIConfigs(t *testing.T) {
	mix, qw, ds := Mixtral(), Qwen2(), DeepSeek()
	// Table II rows.
	cases := []struct {
		cfg                               *Config
		layers, shared, routed, activated int
	}{
		{mix, 32, 0, 8, 2},
		{qw, 28, 1, 64, 8},
		{ds, 26, 2, 64, 6},
	}
	for _, c := range cases {
		if c.cfg.Layers != c.layers || c.cfg.SharedExperts != c.shared ||
			c.cfg.RoutedExperts != c.routed || c.cfg.ActivatedExperts != c.activated {
			t.Errorf("%s config mismatch with Table II: %+v", c.cfg.Name, c.cfg)
		}
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.cfg.Name, err)
		}
	}
	if mix.Hidden != 4096 || mix.Intermediate != 14336 {
		t.Errorf("Mixtral expert shape %dx%d", mix.Hidden, mix.Intermediate)
	}
	if ds.Hidden != 2048 || ds.Intermediate != 1408 {
		t.Errorf("DeepSeek expert shape %dx%d", ds.Hidden, ds.Intermediate)
	}
}

func TestExpertSizeOrdering(t *testing.T) {
	// Mixtral = few large experts; DeepSeek = many small experts. The
	// byte footprint must reflect that, since it drives transfer times.
	mix, ds, qw := Mixtral(), DeepSeek(), Qwen2()
	if mix.ExpertBytes() <= 10*ds.ExpertBytes() {
		t.Errorf("Mixtral expert (%d B) should dwarf DeepSeek expert (%d B)",
			mix.ExpertBytes(), ds.ExpertBytes())
	}
	if qw.ExpertBytes() >= mix.ExpertBytes() {
		t.Errorf("Qwen2 routed expert (%d B) should be smaller than Mixtral's (%d B)",
			qw.ExpertBytes(), mix.ExpertBytes())
	}
	// Qwen2's shared expert is huge (20480 wide).
	if qw.SharedExpertBytes() <= qw.ExpertBytes() {
		t.Errorf("Qwen2 shared expert (%d B) should exceed routed (%d B)",
			qw.SharedExpertBytes(), qw.ExpertBytes())
	}
	if mix.SharedExpertBytes() != 0 {
		t.Errorf("Mixtral has no shared experts, got %d B", mix.SharedExpertBytes())
	}
}

func TestExpertBytesInt4Scale(t *testing.T) {
	// Mixtral expert ≈ 3 × 4096 × 14336 × 0.5 bytes ≈ 88 MB + scales.
	got := Mixtral().ExpertBytes()
	lo, hi := int64(85<<20), int64(95<<20)
	if got < lo || got > hi {
		t.Errorf("Mixtral INT4 expert bytes = %d, want within [%d, %d]", got, lo, hi)
	}
}

func TestTotalAndCapacity(t *testing.T) {
	mix := Mixtral()
	if got := mix.TotalRoutedExperts(); got != 256 {
		t.Fatalf("Mixtral total experts = %d, want 256", got)
	}
	if got := mix.CacheCapacity(0.25); got != 64 {
		t.Fatalf("25%% capacity = %d, want 64", got)
	}
	if got := mix.CacheCapacity(0); got != 1 {
		t.Fatalf("0%% capacity should clamp to 1, got %d", got)
	}
	ds := DeepSeek()
	if got := ds.CacheCapacity(0.5); got != 832 {
		t.Fatalf("DeepSeek 50%% capacity = %d, want 832", got)
	}
}

func TestFlopsAccessors(t *testing.T) {
	ds := DeepSeek()
	if ds.ExpertFlops(2) != 2*ds.ExpertFlops(1) {
		t.Error("ExpertFlops must be linear in tokens")
	}
	if ds.SharedFlops(1) <= 0 {
		t.Error("DeepSeek shared flops must be positive")
	}
	if Mixtral().SharedFlops(10) != 0 {
		t.Error("Mixtral shared flops must be zero")
	}
	// DeepSeek has 2 shared experts of the same shape as routed ones.
	if got, want := ds.SharedFlops(1), 2*ds.ExpertFlops(1); got != want {
		t.Errorf("DeepSeek shared flops = %v, want %v", got, want)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Mixtral", "Qwen2", "DeepSeek"} {
		cfg, err := ByName(name)
		if err != nil || cfg.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, cfg, err)
		}
	}
	if _, err := ByName("GPT5"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []*Config{
		{Name: "x", Layers: 0, RoutedExperts: 8, ActivatedExperts: 2, Hidden: 4, Intermediate: 4},
		{Name: "x", Layers: 1, RoutedExperts: 0, ActivatedExperts: 2, Hidden: 4, Intermediate: 4},
		{Name: "x", Layers: 1, RoutedExperts: 8, ActivatedExperts: 9, Hidden: 4, Intermediate: 4},
		{Name: "x", Layers: 1, RoutedExperts: 8, ActivatedExperts: 0, Hidden: 4, Intermediate: 4},
		{Name: "x", Layers: 1, RoutedExperts: 8, ActivatedExperts: 2, Hidden: 0, Intermediate: 4},
		{Name: "x", Layers: 1, RoutedExperts: 8, ActivatedExperts: 2, Hidden: 4, Intermediate: 4, SharedExperts: -1},
		{Name: "x", Layers: 1, RoutedExperts: 8, ActivatedExperts: 2, Hidden: 4, Intermediate: 4, SharedExperts: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, c)
		}
	}
}

func TestExpertIDString(t *testing.T) {
	id := ExpertID{Layer: 12, Index: 5}
	if id.String() != "L12.E5" {
		t.Fatalf("ExpertID string = %q", id.String())
	}
}
