package hw

import (
	"math"
	"testing"
)

func TestDeviceString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU0" {
		t.Fatal("device names wrong")
	}
	if GPUAt(1).String() != "GPU1" || Device(9).String() != "GPU9" {
		t.Fatal("GPU device formatting wrong")
	}
}

func TestDeviceIndexing(t *testing.T) {
	if GPUAt(0) != GPU {
		t.Fatal("GPUAt(0) must be the GPU0 constant")
	}
	if !GPU.IsGPU() || CPU.IsGPU() {
		t.Fatal("IsGPU wrong")
	}
	if GPUAt(3).GPUIndex() != 3 {
		t.Fatal("GPUIndex wrong")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("GPUAt(-1)", func() { GPUAt(-1) })
	mustPanic("CPU.GPUIndex", func() { CPU.GPUIndex() })
	p := A6000Platform()
	mustPanic("GPUOf out of range", func() { p.GPUOf(GPUAt(5)) })
	mustPanic("LinkOf out of range", func() { p.LinkOf(GPUAt(5)) })
	if p.GPUOf(GPU).Name != p.GPUs[0].Name || p.LinkOf(GPU).Name != p.Links[0].Name {
		t.Fatal("GPUOf/LinkOf must resolve device 0 to the first models")
	}
}

func TestCPUModelShape(t *testing.T) {
	m := A6000Platform().CPU
	flops1 := ExpertFlops(4096, 14336, 1)
	bytes := int64(100 << 20)
	t1 := m.ExpertTime(flops1, bytes, false)
	t8 := m.ExpertTime(8*flops1, bytes, false)
	t64 := m.ExpertTime(64*flops1, bytes, false)
	// Figure 3(f): CPU time grows with workload.
	if t8 <= t1 {
		t.Fatalf("CPU time must grow with workload: %v vs %v", t1, t8)
	}
	// Once compute-bound the growth is linear: 8x the tokens ≈ 8x time.
	ratio := t64 / t8
	if ratio < 6 || ratio > 10 {
		t.Fatalf("CPU compute-bound region not linear: t8=%v t64=%v ratio=%v", t8, t64, ratio)
	}
	// Figure 3(e): first expert pays warm-up.
	tFirst := m.ExpertTime(flops1, bytes, true)
	if tFirst <= t1 {
		t.Fatalf("first expert should be slower: %v vs %v", tFirst, t1)
	}
	if got := tFirst - t1; math.Abs(got-m.WarmupPenalty) > 1e-12 {
		t.Fatalf("warm-up delta = %v, want %v", got, m.WarmupPenalty)
	}
}

func TestGPUModelFlatInWorkload(t *testing.T) {
	p := A6000Platform()
	flops1 := ExpertFlops(4096, 14336, 1)
	bytes := int64(100 << 20)
	t1 := p.GPUs[0].ExpertTime(flops1, bytes)
	t64 := p.GPUs[0].ExpertTime(64*flops1, bytes)
	// Figure 3(f): GPU time nearly flat for small workloads (memory/launch
	// bound): 64 tokens should cost well under 2x one token.
	if t64 > 2*t1 {
		t.Fatalf("GPU should be ~flat at small workloads: t1=%v t64=%v", t1, t64)
	}
	// But very large workloads eventually become compute-bound.
	tHuge := p.GPUs[0].ExpertTime(100000*flops1, bytes)
	if tHuge <= 10*t1 {
		t.Fatalf("GPU must eventually scale with compute: %v vs %v", tHuge, t1)
	}
}

func TestCrossoverCPUFasterAtTinyLoadGPUFasterAtLarge(t *testing.T) {
	// The scheduling opportunity the paper exploits: for a cache miss at
	// decode (1 token), CPU compute beats transfer+GPU compute; for large
	// prefill loads, the GPU wins even including the transfer.
	p := A6000Platform()
	hidden, inter := 4096, 14336
	bytes := int64(90 << 20) // ~Mixtral INT4 expert
	// Decode: 1 token.
	cpu1 := p.CPU.ExpertTime(ExpertFlops(hidden, inter, 1), bytes, false)
	gpuMiss1 := p.Links[0].TransferTime(bytes) + p.GPUs[0].ExpertTime(ExpertFlops(hidden, inter, 1), bytes)
	if cpu1 >= gpuMiss1 {
		t.Fatalf("decode miss: CPU %v should beat transfer+GPU %v", cpu1, gpuMiss1)
	}
	// Prefill: 512 tokens on one expert.
	cpu512 := p.CPU.ExpertTime(ExpertFlops(hidden, inter, 512), bytes, false)
	gpuMiss512 := p.Links[0].TransferTime(bytes) + p.GPUs[0].ExpertTime(ExpertFlops(hidden, inter, 512), bytes)
	if gpuMiss512 >= cpu512 {
		t.Fatalf("prefill miss: transfer+GPU %v should beat CPU %v", gpuMiss512, cpu512)
	}
}

func TestLinkModel(t *testing.T) {
	l := LinkModel{Name: "t", BytesPerSec: 1e9, Latency: 1e-5}
	if got := l.TransferTime(0); got != 1e-5 {
		t.Fatalf("zero-byte transfer = %v, want latency only", got)
	}
	if got := l.TransferTime(1e9); math.Abs(got-(1+1e-5)) > 1e-12 {
		t.Fatalf("1GB transfer = %v", got)
	}
}

func TestValidation(t *testing.T) {
	for _, p := range []*Platform{A6000Platform(), LaptopPlatform(), UnitPlatform()} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
	}
	bad := A6000Platform()
	bad.CPU.PeakFlops = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero CPU throughput should fail validation")
	}
	bad2 := A6000Platform()
	bad2.GPUs[0].KernelLaunch = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative launch should fail validation")
	}
	bad3 := A6000Platform()
	bad3.Links[0].BytesPerSec = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero link bandwidth should fail validation")
	}
	bad4 := A6000Platform()
	bad4.CPU.WarmupPenalty = -1
	if err := bad4.Validate(); err == nil {
		t.Error("negative warmup should fail validation")
	}
	bad5 := A6000Platform()
	bad5.Links[0].Latency = -1
	if err := bad5.Validate(); err == nil {
		t.Error("negative latency should fail validation")
	}
}

func TestUnitPlatformSemantics(t *testing.T) {
	p := UnitPlatform()
	// One expert on the GPU = 1 unit regardless of load.
	if got := p.GPUs[0].ExpertTime(4, 1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("unit GPU expert = %v, want 1", got)
	}
	// CPU load-4 expert = 4 units.
	if got := p.CPU.ExpertTime(4, 1, false); math.Abs(got-4) > 1e-6 {
		t.Fatalf("unit CPU load-4 = %v, want 4", got)
	}
	// Transfer = 3 units per expert (1 byte).
	if got := p.Links[0].TransferTime(1); math.Abs(got-3) > 1e-9 {
		t.Fatalf("unit transfer = %v, want 3", got)
	}
}

func TestExpertFlops(t *testing.T) {
	if got := ExpertFlops(10, 20, 1); got != 1200 {
		t.Fatalf("ExpertFlops = %v, want 1200", got)
	}
	if got := ExpertFlops(10, 20, 3); got != 3600 {
		t.Fatalf("ExpertFlops batch = %v, want 3600", got)
	}
}

func TestAttentionFlopsGrowsWithContext(t *testing.T) {
	a := AttentionFlops(1024, 1, 128)
	b := AttentionFlops(1024, 1, 4096)
	if b <= a {
		t.Fatalf("attention flops must grow with context: %v vs %v", a, b)
	}
	if AttentionFlops(1024, 2, 128) != 2*a {
		t.Fatal("attention flops must be linear in tokens")
	}
}
