// Package hw models the heterogeneous hardware the paper evaluates on —
// GPU, CPU and the PCIe link between them — as analytic cost models with
// the empirical shapes reported in the paper's motivation study
// (Figure 3(e)/(f)):
//
//   - GPU expert time is nearly flat in per-expert workload (kernel
//     launch + weight streaming dominate) and linear in the number of
//     experts;
//   - CPU expert time grows linearly with workload, with the first
//     expert of a consecutive CPU burst paying a cache warm-up penalty
//     and subsequent experts benefiting from warm caches;
//   - PCIe transfer time per expert is effectively constant (bytes /
//     bandwidth + latency).
//
// The models are either taken from platform presets (A6000-class,
// laptop-class) or fitted by the calibration warm-up phase from real
// kernel timings (see Calibrate*), mirroring the warm-up phase HybriMoE
// runs before inference.
package hw

import (
	"fmt"
	"math"
)

// Device identifies a compute resource in schedules and traces. The
// CPU pool is the single negative value; every non-negative value
// indexes a GPU in the platform's GPUs slice, so the zero value is GPU0
// and single-GPU code keeps working untouched on N-device platforms.
type Device int

// CPU is the host CPU pool.
const CPU Device = -1

// GPU is the first (and on single-GPU platforms, only) accelerator —
// device GPU0. Multi-GPU code addresses the others through GPUAt.
const GPU Device = 0

// GPUAt returns the device identity of the i-th GPU. It panics on a
// negative index: that is a programming error, not a topology question.
func GPUAt(i int) Device {
	if i < 0 {
		panic(fmt.Sprintf("hw: GPUAt(%d) with negative index", i))
	}
	return Device(i)
}

// IsGPU reports whether the device is an accelerator (any index).
func (d Device) IsGPU() bool { return d >= 0 }

// GPUIndex returns the device's position in Platform.GPUs. It panics
// for the CPU, which has no such index.
func (d Device) GPUIndex() int {
	if d < 0 {
		panic(fmt.Sprintf("hw: GPUIndex of non-GPU device %v", d))
	}
	return int(d)
}

// String names the device: "CPU", "GPU0", "GPU1", …
func (d Device) String() string {
	if d == CPU {
		return "CPU"
	}
	return fmt.Sprintf("GPU%d", int(d))
}

// CPUModel is the analytic cost model for the host CPU pool executing
// expert kernels (llama.cpp-style INT4 GEMV/GEMM across a fixed number
// of cores).
type CPUModel struct {
	Name string
	// PeakFlops is the sustained aggregate floating-point throughput in
	// FLOP/s across the cores dedicated to expert execution.
	PeakFlops float64
	// MemBandwidth is the sustainable weight-streaming bandwidth in
	// bytes/s; single-token GEMV is bound by it.
	MemBandwidth float64
	// ExpertOverhead is the fixed per-expert dispatch cost in seconds.
	ExpertOverhead float64
	// WarmupPenalty is added to the first expert of a consecutive CPU
	// burst (cold caches), matching Figure 3(e).
	WarmupPenalty float64
}

// ExpertTime predicts seconds to execute one expert with the given FLOP
// count and weight footprint. first marks the first expert of a burst.
func (m CPUModel) ExpertTime(flops float64, bytes int64, first bool) float64 {
	t := m.ExpertOverhead + math.Max(flops/m.PeakFlops, float64(bytes)/m.MemBandwidth)
	if first {
		t += m.WarmupPenalty
	}
	return t
}

// Validate reports an error when any parameter is non-positive where it
// must be positive.
func (m CPUModel) Validate() error {
	if m.PeakFlops <= 0 || m.MemBandwidth <= 0 {
		return fmt.Errorf("hw: CPU model %q needs positive throughputs", m.Name)
	}
	if m.ExpertOverhead < 0 || m.WarmupPenalty < 0 {
		return fmt.Errorf("hw: CPU model %q has negative overheads", m.Name)
	}
	return nil
}

// GPUModel is the analytic cost model for the accelerator.
type GPUModel struct {
	Name string
	// PeakFlops is the sustained throughput for quantized expert GEMMs.
	PeakFlops float64
	// MemBandwidth is device memory bandwidth in bytes/s; small-batch
	// expert kernels are bound by weight reads.
	MemBandwidth float64
	// KernelLaunch is the fixed per-kernel dispatch cost in seconds,
	// which dominates small workloads and makes GPU time ~flat in token
	// count (Figure 3(f)).
	KernelLaunch float64
}

// ExpertTime predicts seconds for one expert kernel on the GPU.
func (m GPUModel) ExpertTime(flops float64, bytes int64) float64 {
	return m.KernelLaunch + math.Max(flops/m.PeakFlops, float64(bytes)/m.MemBandwidth)
}

// Validate reports an error for non-physical parameters.
func (m GPUModel) Validate() error {
	if m.PeakFlops <= 0 || m.MemBandwidth <= 0 {
		return fmt.Errorf("hw: GPU model %q needs positive throughputs", m.Name)
	}
	if m.KernelLaunch < 0 {
		return fmt.Errorf("hw: GPU model %q has negative launch cost", m.Name)
	}
	return nil
}

// LinkModel is the CPU→GPU interconnect (PCIe) cost model.
type LinkModel struct {
	Name string
	// BytesPerSec is effective unidirectional bandwidth.
	BytesPerSec float64
	// Latency is the fixed per-transfer setup cost in seconds.
	Latency float64
}

// TransferTime predicts seconds to move bytes across the link.
func (m LinkModel) TransferTime(bytes int64) float64 {
	return m.Latency + float64(bytes)/m.BytesPerSec
}

// Validate reports an error for non-physical parameters.
func (m LinkModel) Validate() error {
	if m.BytesPerSec <= 0 {
		return fmt.Errorf("hw: link model %q needs positive bandwidth", m.Name)
	}
	if m.Latency < 0 {
		return fmt.Errorf("hw: link model %q has negative latency", m.Name)
	}
	return nil
}

// Platform bundles the resources the scheduler reasons about: one CPU
// pool, N GPUs, and one host link per GPU (Links[i] feeds GPUs[i]).
// Single-GPU platforms are the len-1 degenerate case; the historical
// Platform.GPU/Link fields became GPUs[0]/Links[0].
type Platform struct {
	Name  string
	CPU   CPUModel
	GPUs  []GPUModel
	Links []LinkModel
	// Interconnect is the replica-to-replica link (NVLink/RDMA-class)
	// that prices working-set migration at a prefill→decode handoff —
	// the GPU↔GPU analogue of the per-GPU host Links. The zero value
	// means the platform has none: disaggregated pools require it, and
	// Validate checks it only when set (HasInterconnect).
	Interconnect LinkModel
}

// HasInterconnect reports whether the platform models a
// replica-to-replica link. The zero-value LinkModel means absent.
func (p *Platform) HasInterconnect() bool {
	return p.Interconnect != (LinkModel{})
}

// Topology describes the device graph shape: how many GPUs the platform
// carries and how many host links feed them.
type Topology struct {
	GPUs  int
	Links int
}

// Validate reports an error for a malformed topology: no GPUs, or a
// link count that does not pair one host link with each GPU.
func (t Topology) Validate() error {
	if t.GPUs < 1 {
		return fmt.Errorf("hw: topology needs at least one GPU, have %d", t.GPUs)
	}
	if t.Links != t.GPUs {
		return fmt.Errorf("hw: topology has %d links for %d GPUs (want one per GPU)", t.Links, t.GPUs)
	}
	return nil
}

// Topology reports the platform's device-graph shape.
func (p *Platform) Topology() Topology {
	return Topology{GPUs: len(p.GPUs), Links: len(p.Links)}
}

// NumGPUs reports how many GPUs the platform carries.
func (p *Platform) NumGPUs() int { return len(p.GPUs) }

// GPUOf returns the cost model of the GPU behind device d. It panics
// for the CPU or an out-of-range device — both scheduler bugs.
func (p *Platform) GPUOf(d Device) GPUModel {
	i := d.GPUIndex()
	if i >= len(p.GPUs) {
		panic(fmt.Sprintf("hw: platform %q has %d GPUs, no %v", p.Name, len(p.GPUs), d))
	}
	return p.GPUs[i]
}

// LinkOf returns the host link feeding device d, with the same panics
// as GPUOf.
func (p *Platform) LinkOf(d Device) LinkModel {
	i := d.GPUIndex()
	if i >= len(p.Links) {
		panic(fmt.Sprintf("hw: platform %q has %d links, no link for %v", p.Name, len(p.Links), d))
	}
	return p.Links[i]
}

// Validate checks the topology and every component model.
func (p *Platform) Validate() error {
	if err := p.Topology().Validate(); err != nil {
		return fmt.Errorf("hw: platform %q: %w", p.Name, err)
	}
	if err := p.CPU.Validate(); err != nil {
		return err
	}
	for _, g := range p.GPUs {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	for _, l := range p.Links {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	if p.HasInterconnect() {
		if err := p.Interconnect.Validate(); err != nil {
			return err
		}
	}
	return nil
}
