// Package hw models the heterogeneous hardware the paper evaluates on —
// GPU, CPU and the PCIe link between them — as analytic cost models with
// the empirical shapes reported in the paper's motivation study
// (Figure 3(e)/(f)):
//
//   - GPU expert time is nearly flat in per-expert workload (kernel
//     launch + weight streaming dominate) and linear in the number of
//     experts;
//   - CPU expert time grows linearly with workload, with the first
//     expert of a consecutive CPU burst paying a cache warm-up penalty
//     and subsequent experts benefiting from warm caches;
//   - PCIe transfer time per expert is effectively constant (bytes /
//     bandwidth + latency).
//
// The models are either taken from platform presets (A6000-class,
// laptop-class) or fitted by the calibration warm-up phase from real
// kernel timings (see Calibrate*), mirroring the warm-up phase HybriMoE
// runs before inference.
package hw

import (
	"fmt"
	"math"
)

// Device identifies a compute resource in schedules and traces.
type Device int

// Device values.
const (
	CPU Device = iota
	GPU
)

// String names the device.
func (d Device) String() string {
	switch d {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// CPUModel is the analytic cost model for the host CPU pool executing
// expert kernels (llama.cpp-style INT4 GEMV/GEMM across a fixed number
// of cores).
type CPUModel struct {
	Name string
	// PeakFlops is the sustained aggregate floating-point throughput in
	// FLOP/s across the cores dedicated to expert execution.
	PeakFlops float64
	// MemBandwidth is the sustainable weight-streaming bandwidth in
	// bytes/s; single-token GEMV is bound by it.
	MemBandwidth float64
	// ExpertOverhead is the fixed per-expert dispatch cost in seconds.
	ExpertOverhead float64
	// WarmupPenalty is added to the first expert of a consecutive CPU
	// burst (cold caches), matching Figure 3(e).
	WarmupPenalty float64
}

// ExpertTime predicts seconds to execute one expert with the given FLOP
// count and weight footprint. first marks the first expert of a burst.
func (m CPUModel) ExpertTime(flops float64, bytes int64, first bool) float64 {
	t := m.ExpertOverhead + math.Max(flops/m.PeakFlops, float64(bytes)/m.MemBandwidth)
	if first {
		t += m.WarmupPenalty
	}
	return t
}

// Validate reports an error when any parameter is non-positive where it
// must be positive.
func (m CPUModel) Validate() error {
	if m.PeakFlops <= 0 || m.MemBandwidth <= 0 {
		return fmt.Errorf("hw: CPU model %q needs positive throughputs", m.Name)
	}
	if m.ExpertOverhead < 0 || m.WarmupPenalty < 0 {
		return fmt.Errorf("hw: CPU model %q has negative overheads", m.Name)
	}
	return nil
}

// GPUModel is the analytic cost model for the accelerator.
type GPUModel struct {
	Name string
	// PeakFlops is the sustained throughput for quantized expert GEMMs.
	PeakFlops float64
	// MemBandwidth is device memory bandwidth in bytes/s; small-batch
	// expert kernels are bound by weight reads.
	MemBandwidth float64
	// KernelLaunch is the fixed per-kernel dispatch cost in seconds,
	// which dominates small workloads and makes GPU time ~flat in token
	// count (Figure 3(f)).
	KernelLaunch float64
}

// ExpertTime predicts seconds for one expert kernel on the GPU.
func (m GPUModel) ExpertTime(flops float64, bytes int64) float64 {
	return m.KernelLaunch + math.Max(flops/m.PeakFlops, float64(bytes)/m.MemBandwidth)
}

// Validate reports an error for non-physical parameters.
func (m GPUModel) Validate() error {
	if m.PeakFlops <= 0 || m.MemBandwidth <= 0 {
		return fmt.Errorf("hw: GPU model %q needs positive throughputs", m.Name)
	}
	if m.KernelLaunch < 0 {
		return fmt.Errorf("hw: GPU model %q has negative launch cost", m.Name)
	}
	return nil
}

// LinkModel is the CPU→GPU interconnect (PCIe) cost model.
type LinkModel struct {
	Name string
	// BytesPerSec is effective unidirectional bandwidth.
	BytesPerSec float64
	// Latency is the fixed per-transfer setup cost in seconds.
	Latency float64
}

// TransferTime predicts seconds to move bytes across the link.
func (m LinkModel) TransferTime(bytes int64) float64 {
	return m.Latency + float64(bytes)/m.BytesPerSec
}

// Validate reports an error for non-physical parameters.
func (m LinkModel) Validate() error {
	if m.BytesPerSec <= 0 {
		return fmt.Errorf("hw: link model %q needs positive bandwidth", m.Name)
	}
	if m.Latency < 0 {
		return fmt.Errorf("hw: link model %q has negative latency", m.Name)
	}
	return nil
}

// Platform bundles the three resources the scheduler reasons about.
type Platform struct {
	Name string
	CPU  CPUModel
	GPU  GPUModel
	Link LinkModel
}

// Validate checks every component model.
func (p *Platform) Validate() error {
	if err := p.CPU.Validate(); err != nil {
		return err
	}
	if err := p.GPU.Validate(); err != nil {
		return err
	}
	return p.Link.Validate()
}
