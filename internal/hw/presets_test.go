package hw

import "testing"

// TestPresetsValidate table-tests Validate across every preset —
// single-GPU, laptop, unit and the multi-GPU shards — so preset drift
// (a forgotten link, a zeroed throughput) fails in CI rather than at
// runtime inside an engine run.
func TestPresetsValidate(t *testing.T) {
	presets := []struct {
		name string
		p    *Platform
		gpus int
	}{
		{"a6000", A6000Platform(), 1},
		{"laptop", LaptopPlatform(), 1},
		{"unit", UnitPlatform(), 1},
		{"dual-a6000", DualA6000Platform(), 2},
		{"quad-a6000", QuadA6000Platform(), 4},
		{"multi-a6000-3", MultiA6000Platform(3), 3},
	}
	for _, tc := range presets {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); err != nil {
				t.Fatalf("preset %s invalid: %v", tc.name, err)
			}
			topo := tc.p.Topology()
			if topo.GPUs != tc.gpus || topo.Links != tc.gpus {
				t.Fatalf("preset %s topology = %+v, want %d GPUs with one link each", tc.name, topo, tc.gpus)
			}
			if tc.p.NumGPUs() != tc.gpus {
				t.Fatalf("preset %s NumGPUs = %d, want %d", tc.name, tc.p.NumGPUs(), tc.gpus)
			}
		})
	}
}

func TestMultiA6000Degenerate(t *testing.T) {
	if got, want := MultiA6000Platform(1).Name, A6000Platform().Name; got != want {
		t.Fatalf("MultiA6000Platform(1) name = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MultiA6000Platform(0) should panic")
		}
	}()
	MultiA6000Platform(0)
}

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
		ok   bool
	}{
		{"single", Topology{GPUs: 1, Links: 1}, true},
		{"quad", Topology{GPUs: 4, Links: 4}, true},
		{"no-gpus", Topology{GPUs: 0, Links: 0}, false},
		{"missing-link", Topology{GPUs: 2, Links: 1}, false},
		{"extra-link", Topology{GPUs: 1, Links: 2}, false},
	}
	for _, tc := range cases {
		if err := tc.topo.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	bad := DualA6000Platform()
	bad.Links = bad.Links[:1]
	if err := bad.Validate(); err == nil {
		t.Error("platform with fewer links than GPUs should fail validation")
	}
	bad2 := DualA6000Platform()
	bad2.GPUs[1].PeakFlops = 0
	if err := bad2.Validate(); err == nil {
		t.Error("platform with an invalid second GPU should fail validation")
	}
}
