package hw

import (
	"fmt"
	"time"

	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
)

// CalibrationResult reports the warm-up phase measurements HybriMoE
// collects before inference: a fitted linear CPU cost model plus the
// observed first-run warm-up penalty.
type CalibrationResult struct {
	// FlopsPerSec is the measured sustained CPU throughput.
	FlopsPerSec float64
	// WarmupPenalty is the measured extra latency of the first kernel
	// invocation relative to the steady state, in seconds.
	WarmupPenalty float64
	// Fit is the underlying least-squares fit of seconds against FLOPs.
	Fit stats.LinearFit
	// Samples is the number of timed kernel runs.
	Samples int
}

// CalibrateCPU measures the host's real GatedFFN kernel (internal/tensor)
// across the given token batch sizes on a hidden×inter expert shape and
// fits the linear CPU model the scheduler consumes. It is the measured
// counterpart of the paper's warm-up phase. reps controls timing repeats
// per point (higher = less noise, slower calibration).
func CalibrateCPU(hidden, inter int, tokenCounts []int, reps int) (CalibrationResult, error) {
	if hidden <= 0 || inter <= 0 {
		return CalibrationResult{}, fmt.Errorf("hw: invalid expert shape %dx%d", hidden, inter)
	}
	if len(tokenCounts) < 2 {
		return CalibrationResult{}, fmt.Errorf("hw: need at least 2 batch sizes, got %d", len(tokenCounts))
	}
	if reps <= 0 {
		reps = 3
	}
	rng := stats.NewRNG(0xCA11B)
	wg := tensor.NewMatrix(inter, hidden)
	wu := tensor.NewMatrix(inter, hidden)
	wd := tensor.NewMatrix(hidden, inter)
	wg.FillRandom(rng)
	wu.FillRandom(rng)
	wd.FillRandom(rng)
	x := make([]float32, hidden)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}

	flopsPerToken := ExpertFlops(hidden, inter, 1)

	// Measure the cold-start penalty: first invocation vs a warm one.
	cold := timeGatedFFN(wg, wu, wd, x, 1)
	warm := timeGatedFFN(wg, wu, wd, x, 1)
	warmup := cold - warm
	if warmup < 0 {
		warmup = 0
	}

	var xs, ys []float64
	for _, tokens := range tokenCounts {
		if tokens <= 0 {
			return CalibrationResult{}, fmt.Errorf("hw: non-positive batch size %d", tokens)
		}
		best := timeGatedFFN(wg, wu, wd, x, tokens)
		for r := 1; r < reps; r++ {
			if t := timeGatedFFN(wg, wu, wd, x, tokens); t < best {
				best = t
			}
		}
		xs = append(xs, flopsPerToken*float64(tokens))
		ys = append(ys, best)
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return CalibrationResult{}, fmt.Errorf("hw: calibration fit: %w", err)
	}
	if fit.Slope <= 0 {
		return CalibrationResult{}, fmt.Errorf("hw: calibration produced non-positive slope %v (timer too coarse for shape %dx%d?)", fit.Slope, hidden, inter)
	}
	return CalibrationResult{
		FlopsPerSec:   1 / fit.Slope,
		WarmupPenalty: warmup,
		Fit:           fit,
		Samples:       len(tokenCounts) * reps,
	}, nil
}

func timeGatedFFN(wg, wu, wd *tensor.Matrix, x []float32, tokens int) float64 {
	start := time.Now()
	for t := 0; t < tokens; t++ {
		_ = tensor.GatedFFN(wg, wu, wd, x)
	}
	return time.Since(start).Seconds()
}

// ApplyToCPU returns a copy of base with the measured throughput and
// warm-up penalty substituted in, preserving bandwidth and overheads.
func (c CalibrationResult) ApplyToCPU(base CPUModel) CPUModel {
	out := base
	out.PeakFlops = c.FlopsPerSec
	out.WarmupPenalty = c.WarmupPenalty
	out.Name = base.Name + "+calibrated"
	return out
}

// ExpertFlops computes the floating-point operations of one SwiGLU expert
// on a batch: three hidden×inter GEMMs at 2 FLOPs per multiply-add.
func ExpertFlops(hidden, inter, tokens int) float64 {
	return 3 * 2 * float64(hidden) * float64(inter) * float64(tokens)
}

// AttentionFlops approximates the FLOPs of one attention block over a
// batch: QKVO projections (4·h² per token) plus score/value products
// (2·2·h·ctx per token). It sizes the non-MoE portion of each layer.
func AttentionFlops(hidden, tokens, context int) float64 {
	perTokenProj := 4 * 2 * float64(hidden) * float64(hidden)
	perTokenAttn := 2 * 2 * float64(hidden) * float64(context)
	return float64(tokens) * (perTokenProj + perTokenAttn)
}
