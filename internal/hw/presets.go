package hw

import "fmt"

// Presets approximate the paper's testbed and a smaller edge device. The
// absolute constants are published datasheet/benchmark figures derated to
// sustained values; the reproduction targets relative behaviour (who
// wins, by what factor), which depends on the ratios rather than the
// absolute magnitudes.

// a6000GPU is the cost model of one RTX A6000 card.
func a6000GPU() GPUModel {
	return GPUModel{
		Name: "rtx-a6000",
		// Sustained INT4 tensor-core throughput (derated from the
		// ~309 TOPS marketing peak).
		PeakFlops: 1.0e14,
		// GDDR6 ~768 GB/s, derated to sustained.
		MemBandwidth: 6.0e11,
		KernelLaunch: 2.2e-5,
	}
}

// pcie4x16 is the host link one A6000 hangs off.
func pcie4x16() LinkModel {
	return LinkModel{
		Name: "pcie4x16",
		// ~32 GB/s theoretical, ~16-18 GB/s sustained for pinned
		// host-to-device copies.
		BytesPerSec: 1.6e10,
		Latency:     1.5e-5,
	}
}

// rdma100g is the replica-to-replica interconnect of the A6000-class
// presets: a 100 Gb/s RDMA fabric derated to sustained GPUDirect
// throughput, pricing KV-cache migration at prefill→decode handoffs.
func rdma100g() LinkModel {
	return LinkModel{
		Name:        "rdma-100g",
		BytesPerSec: 1.1e10,
		Latency:     5e-6,
	}
}

// A6000Platform models the paper's evaluation platform: an NVIDIA RTX
// A6000 (PCIe 4.0 x16) paired with an Intel Xeon Gold 5220R restricted
// to 10 cores, running INT4 (Marlin / llama.cpp) expert kernels.
func A6000Platform() *Platform {
	return &Platform{
		Name: "a6000-xeon5220r",
		CPU: CPUModel{
			Name: "xeon-gold-5220r-10c",
			// 10 cores of llama.cpp-style INT4 GEMM sustain roughly
			// 20 GFLOP/s/core once dequantization overhead is counted.
			PeakFlops: 2.2e11,
			// Effective weight-streaming bandwidth of the 10-core
			// cgroup running quantized GEMV (dequantization and
			// scattered group access cut well below STREAM numbers).
			MemBandwidth:   18e9,
			ExpertOverhead: 25e-6,
			// Cold-cache penalty on the first expert of a burst,
			// Figure 3(e): roughly one extra expert-GEMV worth of time.
			WarmupPenalty: 180e-6,
		},
		GPUs:         []GPUModel{a6000GPU()},
		Links:        []LinkModel{pcie4x16()},
		Interconnect: rdma100g(),
	}
}

// MultiA6000Platform scales the A6000 testbed to n GPUs, each with its
// own PCIe 4.0 x16 host link (host lane contention between cards is not
// modelled — each link sustains its full bandwidth). n = 1 is exactly
// A6000Platform. It panics on a non-positive count.
func MultiA6000Platform(n int) *Platform {
	if n < 1 {
		panic("hw: MultiA6000Platform needs at least one GPU")
	}
	p := A6000Platform()
	if n == 1 {
		return p
	}
	p.Name = fmt.Sprintf("a6000x%d-xeon5220r", n)
	p.GPUs = make([]GPUModel, n)
	p.Links = make([]LinkModel, n)
	for i := 0; i < n; i++ {
		p.GPUs[i] = a6000GPU()
		p.Links[i] = pcie4x16()
	}
	return p
}

// DualA6000Platform is the 2-GPU sharded-serving preset.
func DualA6000Platform() *Platform { return MultiA6000Platform(2) }

// QuadA6000Platform is the 4-GPU sharded-serving preset.
func QuadA6000Platform() *Platform { return MultiA6000Platform(4) }

// LaptopPlatform models a smaller edge deployment (mobile GPU over PCIe
// 4.0 x8, 6 performance cores). Used by scalability tests.
func LaptopPlatform() *Platform {
	return &Platform{
		Name: "laptop-rtx4060m",
		CPU: CPUModel{
			Name:           "mobile-6c",
			PeakFlops:      1.2e11,
			MemBandwidth:   12e9,
			ExpertOverhead: 30e-6,
			WarmupPenalty:  220e-6,
		},
		GPUs: []GPUModel{{
			Name:         "rtx4060m",
			PeakFlops:    1.8e13,
			MemBandwidth: 2.56e11,
			KernelLaunch: 2.5e-5,
		}},
		Links: []LinkModel{{
			Name:        "pcie4x8",
			BytesPerSec: 8e9,
			Latency:     2e-5,
		}},
		// Edge boxes pair over commodity 10 GbE rather than RDMA.
		Interconnect: LinkModel{
			Name:        "10gbe",
			BytesPerSec: 1.1e9,
			Latency:     4e-5,
		},
	}
}

// UnitPlatform is a synthetic platform with round numbers used by unit
// tests and by the paper's Figure 5 walk-through, where GPU compute is 1
// time unit per expert regardless of load, CPU compute is 1 unit per
// unit of load, and a transfer costs exactly 3 units. Loads are encoded
// as FLOPs with PeakFlops 1 so "load 4" takes 4 seconds on the CPU.
func UnitPlatform() *Platform {
	return &Platform{
		Name: "unit",
		CPU: CPUModel{
			Name:         "unit-cpu",
			PeakFlops:    1,
			MemBandwidth: 1e18, // never memory-bound
		},
		GPUs: []GPUModel{{
			Name:         "unit-gpu",
			PeakFlops:    1e18, // compute time ~0
			MemBandwidth: 1e18,
			KernelLaunch: 1, // exactly 1 unit per expert
		}},
		Links: []LinkModel{{
			Name:        "unit-link",
			BytesPerSec: 1.0 / 3.0, // 1 byte := one expert, 3 units each
			Latency:     0,
		}},
		Interconnect: LinkModel{
			Name:        "unit-interconnect",
			BytesPerSec: 1, // 1 unit per byte migrated
			Latency:     0,
		},
	}
}
