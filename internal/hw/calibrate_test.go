package hw

import (
	"testing"
)

func TestCalibrateCPUProducesUsableModel(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration timing in -short mode")
	}
	// Small shape so the test is quick; batch sizes spread enough that
	// the linear fit is well-conditioned even with timer noise.
	res, err := CalibrateCPU(128, 256, []int{4, 16, 64, 128}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlopsPerSec <= 0 {
		t.Fatalf("measured throughput %v must be positive", res.FlopsPerSec)
	}
	// Any real machine lands between 10 MFLOP/s and 10 TFLOP/s for this
	// scalar kernel; outside that, the measurement is broken.
	if res.FlopsPerSec < 1e7 || res.FlopsPerSec > 1e13 {
		t.Fatalf("measured throughput %v implausible", res.FlopsPerSec)
	}
	if res.WarmupPenalty < 0 {
		t.Fatalf("warm-up penalty %v negative", res.WarmupPenalty)
	}
	if res.Samples != 12 {
		t.Fatalf("samples = %d, want 12", res.Samples)
	}
	base := A6000Platform().CPU
	fitted := res.ApplyToCPU(base)
	if fitted.PeakFlops != res.FlopsPerSec {
		t.Fatal("ApplyToCPU must substitute throughput")
	}
	if fitted.MemBandwidth != base.MemBandwidth {
		t.Fatal("ApplyToCPU must preserve bandwidth")
	}
	if err := fitted.Validate(); err != nil {
		t.Fatalf("fitted model invalid: %v", err)
	}
}

func TestCalibrateCPUErrors(t *testing.T) {
	if _, err := CalibrateCPU(0, 10, []int{1, 2}, 1); err == nil {
		t.Error("zero hidden should error")
	}
	if _, err := CalibrateCPU(8, 8, []int{1}, 1); err == nil {
		t.Error("single batch size should error")
	}
	if _, err := CalibrateCPU(8, 8, []int{1, 0}, 1); err == nil {
		t.Error("zero batch size should error")
	}
}
