package cache

import (
	"math"
	"testing"

	"hybrimoe/internal/moe"
	"hybrimoe/internal/trace"
)

func TestNewMRSPanics(t *testing.T) {
	for _, c := range []struct {
		alpha float64
		topP  int
	}{{0, 4}, {-1, 4}, {1.5, 4}, {0.5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMRS(%v,%d) should panic", c.alpha, c.topP)
				}
			}()
			NewMRS(c.alpha, c.topP)
		}()
	}
}

func TestMRSEquation3(t *testing.T) {
	// S = α·TopP(s) + (1-α)·S with p=2: only the two top scores
	// accumulate; everyone else decays.
	p := NewMRS(0.5, 2)
	scores := []float64{0.5, 0.3, 0.15, 0.05}
	p.ObserveScores(0, scores)
	if got := p.Priority(id(0, 0)); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("S(top1) = %v, want 0.25", got)
	}
	if got := p.Priority(id(0, 1)); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("S(top2) = %v, want 0.15", got)
	}
	if got := p.Priority(id(0, 2)); got != 0 {
		t.Fatalf("S(rank3) = %v, want 0 (outside top-p)", got)
	}
	// Second observation: decay plus accumulation.
	p.ObserveScores(0, []float64{0.1, 0.6, 0.2, 0.1})
	// Expert 0 fell out of top-2: S = 0.5*0 + 0.5*0.25 = 0.125.
	if got := p.Priority(id(0, 0)); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("decayed S = %v, want 0.125", got)
	}
	// Expert 1 now top: S = 0.5*0.6 + 0.5*0.15 = 0.375.
	if got := p.Priority(id(0, 1)); math.Abs(got-0.375) > 1e-12 {
		t.Fatalf("accumulated S = %v, want 0.375", got)
	}
}

func TestMRSTopPWiderThanScores(t *testing.T) {
	p := NewMRS(0.5, 100)
	p.ObserveScores(0, []float64{0.6, 0.4})
	if p.Priority(id(0, 0)) != 0.3 || p.Priority(id(0, 1)) != 0.2 {
		t.Fatal("topP wider than score vector should accumulate everything")
	}
}

func TestMRSLayersIndependent(t *testing.T) {
	p := NewMRS(0.5, 1)
	p.ObserveScores(0, []float64{1, 0})
	p.ObserveScores(1, []float64{0, 1})
	if p.Priority(id(0, 0)) == 0 || p.Priority(id(1, 1)) == 0 {
		t.Fatal("per-layer scores not tracked")
	}
	if p.Priority(id(1, 0)) != 0 {
		t.Fatal("layer crosstalk in MRS state")
	}
}

func TestMRSVictimIsLowestPriority(t *testing.T) {
	p := NewMRS(0.5, 4)
	p.ObserveScores(0, []float64{0.4, 0.3, 0.2, 0.1})
	cands := []moe.ExpertID{id(0, 0), id(0, 2), id(0, 3)}
	if v := p.Victim(cands); v != id(0, 3) {
		t.Fatalf("victim = %v, want lowest-score 0.3", v)
	}
}

func TestMRSSurvivesEviction(t *testing.T) {
	// Score history must persist across eviction (the "remember the
	// near-misses" property distinguishing MRS from LRU).
	p := NewMRS(0.5, 4)
	p.ObserveScores(0, []float64{0.9, 0.05, 0.03, 0.02})
	p.Admit(id(0, 0))
	p.Forget(id(0, 0))
	if p.Priority(id(0, 0)) == 0 {
		t.Fatal("priority lost on eviction")
	}
}

func TestMRSEmptyScoresNoop(t *testing.T) {
	p := NewMRS(0.5, 4)
	p.ObserveScores(0, nil) // must not panic
}

// MRS must beat LRU on hit rate when driving both with the same
// synthetic trace at tight capacity — the Figure 9 effect in miniature.
func TestMRSBeatsLRUOnSyntheticTrace(t *testing.T) {
	cfg := moe.DeepSeek()
	capacity := cfg.CacheCapacity(0.25)

	run := func(p Policy, seed uint64) float64 {
		g := trace.New(cfg, trace.DefaultOptions(seed))
		c := New(capacity, p)
		// Warm with layer-0-major expert order.
		var warm []moe.ExpertID
		for l := 0; l < cfg.Layers; l++ {
			for e := 0; e < cfg.RoutedExperts; e++ {
				warm = append(warm, id(l, e))
			}
		}
		c.Warm(warm)
		const iters = 200
		for i := 0; i < iters; i++ {
			g.Advance()
			for l := 0; l < cfg.Layers; l++ {
				scores := g.Scores(l)
				active := g.Activated(l)
				protected := make(map[moe.ExpertID]bool, len(active))
				for _, e := range active {
					protected[id(l, e)] = true
				}
				for _, e := range active {
					eid := id(l, e)
					if !c.Lookup(eid) {
						c.Insert(eid, func(x moe.ExpertID) bool { return protected[x] })
					}
				}
				c.ObserveScores(l, scores)
			}
			if i == 49 {
				c.ResetStats() // measure steady state
			}
		}
		return c.HitRate()
	}

	mrs := run(NewMRS(DefaultAlpha, 2*cfg.ActivatedExperts), 77)
	lru := run(NewLRU(), 77)
	t.Logf("hit rates: MRS=%.3f LRU=%.3f", mrs, lru)
	if mrs <= lru {
		t.Fatalf("MRS (%.3f) should beat LRU (%.3f) at 25%% capacity", mrs, lru)
	}
}
