package cache

import (
	"fmt"

	"hybrimoe/internal/moe"
)

// Cache is the GPU-resident expert set with a capacity measured in
// experts (the paper's "GPU expert cache ratio" × total routed experts).
// It tracks hits and misses and delegates replacement to a Policy.
//
// Pinned experts (kTransformers-style static placement) count against
// capacity but are never evicted.
type Cache struct {
	capacity int
	policy   Policy
	resident map[moe.ExpertID]bool
	pinned   map[moe.ExpertID]bool

	hits   int64
	misses int64
}

// New returns an empty cache. Capacity 0 is a valid degenerate cache
// (every lookup misses, every insert fails) — the zero-cache baseline.
// Panics on negative capacity or nil policy.
func New(capacity int, policy Policy) *Cache {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: capacity %d must be non-negative", capacity))
	}
	if policy == nil {
		panic("cache: nil policy")
	}
	return &Cache{
		capacity: capacity,
		policy:   policy,
		resident: make(map[moe.ExpertID]bool),
		pinned:   make(map[moe.ExpertID]bool),
	}
}

// Capacity reports the maximum resident expert count.
func (c *Cache) Capacity() int { return c.capacity }

// Len reports the current resident expert count (including pinned).
func (c *Cache) Len() int { return len(c.resident) }

// Policy exposes the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Contains reports residency without touching hit/miss accounting.
func (c *Cache) Contains(id moe.ExpertID) bool { return c.resident[id] }

// Lookup reports residency and updates hit/miss statistics and the
// policy's recency state. Use it on the serving path; use Contains for
// planning lookups that must not skew statistics.
func (c *Cache) Lookup(id moe.ExpertID) bool {
	if c.resident[id] {
		c.hits++
		c.policy.Touch(id)
		return true
	}
	c.misses++
	return false
}

// Insert makes id resident, evicting victims as needed. protected, when
// non-nil, marks experts that must not be evicted right now (e.g. the
// current layer's activated experts). It returns the evicted experts
// and reports whether the insert succeeded; inserting fails only when
// every resident expert is pinned or protected.
func (c *Cache) Insert(id moe.ExpertID, protected func(moe.ExpertID) bool) (evicted []moe.ExpertID, ok bool) {
	if c.resident[id] {
		return nil, true
	}
	for len(c.resident) >= c.capacity {
		victim, found := c.pickVictim(protected)
		if !found {
			return evicted, false
		}
		delete(c.resident, victim)
		c.policy.Forget(victim)
		evicted = append(evicted, victim)
	}
	c.resident[id] = true
	c.policy.Admit(id)
	return evicted, true
}

func (c *Cache) pickVictim(protected func(moe.ExpertID) bool) (moe.ExpertID, bool) {
	candidates := make([]moe.ExpertID, 0, len(c.resident))
	for id := range c.resident {
		if c.pinned[id] || (protected != nil && protected(id)) {
			continue
		}
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		return moe.ExpertID{}, false
	}
	// Policies tie-break on expert ID, so the (random) map iteration
	// order above never influences the chosen victim.
	return c.policy.Victim(candidates), true
}

// Pin marks id as permanently resident, inserting it if absent. It
// fails (returns false) when the cache is full of other pinned experts.
func (c *Cache) Pin(id moe.ExpertID) bool {
	if !c.resident[id] {
		if _, ok := c.Insert(id, nil); !ok {
			return false
		}
	}
	c.pinned[id] = true
	return true
}

// Pinned reports whether id is pinned.
func (c *Cache) Pinned(id moe.ExpertID) bool { return c.pinned[id] }

// ObserveScores forwards one iteration's routing scores for a layer to
// the policy (MRS uses them; LRU/LFU ignore them).
func (c *Cache) ObserveScores(layer int, scores []float64) {
	c.policy.ObserveScores(layer, scores)
}

// TouchHistorical records a historical access in the policy without
// touching residency or hit/miss statistics. Warm-up replays the
// history window through it so frequency/recency policies start with
// the state a long-running server would have, instead of treating every
// warm expert as a one-hit wonder.
func (c *Cache) TouchHistorical(id moe.ExpertID) { c.policy.Touch(id) }

// Hits reports the lookup hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses reports the lookup miss count.
func (c *Cache) Misses() int64 { return c.misses }

// HitRate reports hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// ResetStats clears hit/miss counters without touching residency, so
// experiments can exclude warm-up from measurements.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Resident returns the resident expert set as a slice (order
// unspecified).
func (c *Cache) Resident() []moe.ExpertID {
	out := make([]moe.ExpertID, 0, len(c.resident))
	for id := range c.resident {
		out = append(out, id)
	}
	return out
}

// Warm fills the cache with ids (stopping at capacity) without counting
// statistics, for experiment warm starts. It reports how many were
// admitted.
func (c *Cache) Warm(ids []moe.ExpertID) int {
	n := 0
	for _, id := range ids {
		if len(c.resident) >= c.capacity {
			break
		}
		if c.resident[id] {
			continue
		}
		c.resident[id] = true
		c.policy.Admit(id)
		n++
	}
	return n
}
