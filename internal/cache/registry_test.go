package cache

import (
	"strings"
	"testing"
)

func TestPolicyRegistryRoundTripsBuiltins(t *testing.T) {
	for _, name := range []string{"LRU", "LFU", "MRS"} {
		p, err := NewPolicy(name, 6)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v, want at least the builtins", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestPolicyRegistryUnknownName(t *testing.T) {
	_, err := NewPolicy("FIFO", 6)
	if err == nil {
		t.Fatal("unknown policy should error")
	}
	if !strings.Contains(err.Error(), "FIFO") || !strings.Contains(err.Error(), "MRS") {
		t.Fatalf("error %q should name the unknown policy and the registered ones", err)
	}
}

func TestPolicyRegisterDuplicatePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"duplicate":   func() { Register("LRU", func(int) Policy { return NewLRU() }) },
		"empty name":  func() { Register("", func(int) Policy { return NewLRU() }) },
		"nil factory": func() { Register("nil-factory", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s Register should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPolicyRegisterThirdParty(t *testing.T) {
	Register("test-always-first", func(int) Policy { return NewLRU() })
	p, err := NewPolicy("test-always-first", 4)
	if err != nil || p == nil {
		t.Fatalf("third-party policy: %v, %v", p, err)
	}
}
