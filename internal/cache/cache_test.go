package cache

import (
	"testing"
	"testing/quick"

	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
)

func id(l, e int) moe.ExpertID { return moe.ExpertID{Layer: l, Index: e} }

func TestNewPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative capacity should panic")
			}
		}()
		New(-1, NewLRU())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil policy should panic")
			}
		}()
		New(4, nil)
	}()
}

// TestZeroCapacityCache pins the degenerate zero-cache baseline: every
// lookup misses and every insert fails, without panicking.
func TestZeroCapacityCache(t *testing.T) {
	c := New(0, NewLRU())
	if c.Lookup(id(0, 1)) {
		t.Fatal("zero-capacity cache cannot hit")
	}
	if _, ok := c.Insert(id(0, 1), nil); ok {
		t.Fatal("zero-capacity cache cannot admit")
	}
	if c.Pin(id(0, 1)) {
		t.Fatal("zero-capacity cache cannot pin")
	}
	if n := c.Warm([]moe.ExpertID{id(0, 1), id(0, 2)}); n != 0 {
		t.Fatalf("zero-capacity cache warmed %d experts", n)
	}
	if c.HitRate() != 0 {
		t.Fatalf("hit rate %v, want 0", c.HitRate())
	}
}

func TestInsertAndLookup(t *testing.T) {
	c := New(2, NewLRU())
	if c.Lookup(id(0, 1)) {
		t.Fatal("empty cache should miss")
	}
	if _, ok := c.Insert(id(0, 1), nil); !ok {
		t.Fatal("insert into empty cache failed")
	}
	if !c.Lookup(id(0, 1)) {
		t.Fatal("inserted expert should hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestInsertIdempotent(t *testing.T) {
	c := New(2, NewLRU())
	c.Insert(id(0, 1), nil)
	ev, ok := c.Insert(id(0, 1), nil)
	if !ok || len(ev) != 0 {
		t.Fatal("re-inserting resident expert should be a no-op")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, NewLRU())
	c.Insert(id(0, 1), nil)
	c.Insert(id(0, 2), nil)
	c.Lookup(id(0, 1)) // 1 is now more recent than 2
	ev, ok := c.Insert(id(0, 3), nil)
	if !ok || len(ev) != 1 || ev[0] != id(0, 2) {
		t.Fatalf("LRU should evict 0.2: evicted=%v ok=%v", ev, ok)
	}
	if !c.Contains(id(0, 1)) || !c.Contains(id(0, 3)) {
		t.Fatal("wrong residents after eviction")
	}
}

func TestLFUEviction(t *testing.T) {
	c := New(2, NewLFU())
	c.Insert(id(0, 1), nil)
	c.Insert(id(0, 2), nil)
	c.Lookup(id(0, 1))
	c.Lookup(id(0, 1))
	c.Lookup(id(0, 2))
	ev, _ := c.Insert(id(0, 3), nil)
	if len(ev) != 1 || ev[0] != id(0, 2) {
		t.Fatalf("LFU should evict less-used 0.2, got %v", ev)
	}
}

func TestLFUTieBreaksByRecency(t *testing.T) {
	p := NewLFU()
	p.Admit(id(0, 1))
	p.Admit(id(0, 2)) // same count; 1 is older
	if v := p.Victim([]moe.ExpertID{id(0, 1), id(0, 2)}); v != id(0, 1) {
		t.Fatalf("LFU tie should evict older, got %v", v)
	}
}

func TestProtectedNeverEvicted(t *testing.T) {
	c := New(2, NewLRU())
	c.Insert(id(0, 1), nil)
	c.Insert(id(0, 2), nil)
	protect := func(e moe.ExpertID) bool { return e == id(0, 1) }
	ev, ok := c.Insert(id(0, 3), protect)
	if !ok || len(ev) != 1 || ev[0] != id(0, 2) {
		t.Fatalf("protected expert evicted: %v", ev)
	}
	// Everything protected: insert must fail gracefully.
	all := func(moe.ExpertID) bool { return true }
	if _, ok := c.Insert(id(0, 4), all); ok {
		t.Fatal("insert should fail when all residents are protected")
	}
	if c.Len() != 2 {
		t.Fatalf("failed insert changed cache size: %d", c.Len())
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	c := New(2, NewLRU())
	if !c.Pin(id(0, 1)) {
		t.Fatal("pin failed")
	}
	c.Insert(id(0, 2), nil)
	ev, ok := c.Insert(id(0, 3), nil)
	if !ok || len(ev) != 1 || ev[0] != id(0, 2) {
		t.Fatalf("pinned expert should survive: %v", ev)
	}
	if !c.Pinned(id(0, 1)) || !c.Contains(id(0, 1)) {
		t.Fatal("pinned expert missing")
	}
	// A full cache of pins rejects further pins and inserts.
	c2 := New(1, NewLRU())
	c2.Pin(id(0, 1))
	if c2.Pin(id(0, 2)) {
		t.Fatal("pin into pin-full cache should fail")
	}
	if _, ok := c2.Insert(id(0, 3), nil); ok {
		t.Fatal("insert into pin-full cache should fail")
	}
}

func TestWarmRespectsCapacity(t *testing.T) {
	c := New(3, NewLRU())
	ids := []moe.ExpertID{id(0, 1), id(0, 2), id(0, 2), id(0, 3), id(0, 4)}
	n := c.Warm(ids)
	if n != 3 || c.Len() != 3 {
		t.Fatalf("warm admitted %d, len %d", n, c.Len())
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("warm must not touch statistics")
	}
}

func TestResetStats(t *testing.T) {
	c := New(2, NewLRU())
	c.Lookup(id(0, 1))
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 || c.HitRate() != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestResidentSnapshot(t *testing.T) {
	c := New(4, NewLRU())
	c.Insert(id(0, 1), nil)
	c.Insert(id(1, 2), nil)
	rs := c.Resident()
	if len(rs) != 2 {
		t.Fatalf("resident = %v", rs)
	}
	seen := map[moe.ExpertID]bool{}
	for _, r := range rs {
		seen[r] = true
	}
	if !seen[id(0, 1)] || !seen[id(1, 2)] {
		t.Fatalf("resident snapshot wrong: %v", rs)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"LRU", "LFU", "MRS"} {
		p, err := ByName(name, 6)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("FIFO", 6); err == nil {
		t.Error("unknown policy should error")
	}
}

// Property: the cache never exceeds capacity and never evicts pinned
// experts, under arbitrary operation sequences and all three policies.
func TestCacheInvariantsQuick(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		rng := stats.NewRNG(seed)
		policies := []Policy{NewLRU(), NewLFU(), NewMRS(0.4, 12)}
		p := policies[rng.Intn(len(policies))]
		cap := 1 + rng.Intn(8)
		c := New(cap, p)
		var pinned []moe.ExpertID
		for _, op := range ops {
			e := id(int(op)%4, int(op/4)%16)
			switch op % 3 {
			case 0:
				c.Lookup(e)
			case 1:
				c.Insert(e, nil)
			case 2:
				if len(pinned) < cap-1 && c.Pin(e) {
					pinned = append(pinned, e)
				}
			}
			if c.Len() > cap {
				return false
			}
			for _, pe := range pinned {
				if !c.Contains(pe) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
