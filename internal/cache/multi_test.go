package cache

import (
	"testing"

	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
)

func TestNewMultiPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("no shards", func() { NewMulti() })
	mustPanic("nil shard", func() { NewMulti(New(1, NewLRU()), nil) })
}

// Differential test: a one-shard Multi must behave exactly like the
// bare Cache it wraps on a random operation sequence — the 1-GPU
// degenerate case the engine refactor relies on.
func TestMultiSingleShardMatchesCache(t *testing.T) {
	rng := stats.NewRNG(41)
	single := New(4, NewLRU())
	multi := NewMulti(New(4, NewLRU()))
	id := func(n int) moe.ExpertID { return moe.ExpertID{Layer: n % 3, Index: n % 7} }

	var warm []moe.ExpertID
	for n := 0; n < 6; n++ {
		warm = append(warm, id(n))
	}
	if got, want := multi.Warm(warm), single.Warm(warm); got != want {
		t.Fatalf("Warm admitted %d, cache admitted %d", got, want)
	}

	for op := 0; op < 500; op++ {
		x := id(rng.Intn(21))
		switch rng.Intn(3) {
		case 0:
			if got, want := multi.Lookup(x, 0), single.Lookup(x); got != want {
				t.Fatalf("op %d: Lookup(%v) = %v, cache says %v", op, x, got, want)
			}
		case 1:
			_, gotOK := multi.Insert(x, 0, nil)
			_, wantOK := single.Insert(x, nil)
			if gotOK != wantOK {
				t.Fatalf("op %d: Insert(%v) ok = %v, cache says %v", op, x, gotOK, wantOK)
			}
		case 2:
			if got, want := multi.Contains(x), single.Contains(x); got != want {
				t.Fatalf("op %d: Contains(%v) = %v, cache says %v", op, x, got, want)
			}
		}
	}
	if multi.Hits() != single.Hits() || multi.Misses() != single.Misses() {
		t.Fatalf("stats diverged: multi %d/%d, cache %d/%d",
			multi.Hits(), multi.Misses(), single.Hits(), single.Misses())
	}
	if multi.Len() != single.Len() || multi.Capacity() != single.Capacity() {
		t.Fatalf("occupancy diverged: multi %d/%d, cache %d/%d",
			multi.Len(), multi.Capacity(), single.Len(), single.Capacity())
	}
	if multi.HitRate() != single.HitRate() {
		t.Fatalf("hit rate diverged: %v vs %v", multi.HitRate(), single.HitRate())
	}
}

func TestMultiOwnerAndAttribution(t *testing.T) {
	m := NewMulti(New(2, NewLRU()), New(2, NewLRU()))
	a := moe.ExpertID{Layer: 0, Index: 0}
	b := moe.ExpertID{Layer: 0, Index: 1}
	if _, ok := m.Insert(a, 0, nil); !ok {
		t.Fatal("insert on shard 0 failed")
	}
	if _, ok := m.Insert(b, 1, nil); !ok {
		t.Fatal("insert on shard 1 failed")
	}
	if d, ok := m.Owner(a); !ok || d != 0 {
		t.Fatalf("Owner(a) = %d,%v", d, ok)
	}
	if d, ok := m.Owner(b); !ok || d != 1 {
		t.Fatalf("Owner(b) = %d,%v", d, ok)
	}

	// Hit on b attributes to shard 1; miss with home 1 attributes there.
	if !m.Lookup(b, 0) {
		t.Fatal("lookup of resident expert missed")
	}
	if m.Lookup(moe.ExpertID{Layer: 9, Index: 9}, 1) {
		t.Fatal("lookup of absent expert hit")
	}
	if m.Shard(0).Hits() != 0 || m.Shard(1).Hits() != 1 {
		t.Fatalf("hit attribution wrong: %d/%d", m.Shard(0).Hits(), m.Shard(1).Hits())
	}
	if m.Shard(0).Misses() != 0 || m.Shard(1).Misses() != 1 {
		t.Fatalf("miss attribution wrong: %d/%d", m.Shard(0).Misses(), m.Shard(1).Misses())
	}

	// Re-inserting a resident expert on the other device must not
	// replicate it.
	if _, ok := m.Insert(a, 1, nil); !ok {
		t.Fatal("idempotent insert failed")
	}
	if m.Shard(1).Contains(a) {
		t.Fatal("expert replicated across shards")
	}
	if m.Devices() != 2 {
		t.Fatalf("Devices() = %d", m.Devices())
	}
}

func TestMultiWarmStripesAcrossShards(t *testing.T) {
	m := NewMulti(New(2, NewLRU()), New(2, NewLRU()))
	ids := []moe.ExpertID{
		{Layer: 0, Index: 0}, {Layer: 0, Index: 1},
		{Layer: 0, Index: 2}, {Layer: 0, Index: 3},
		{Layer: 0, Index: 4},
	}
	if got := m.Warm(ids); got != 4 {
		t.Fatalf("Warm admitted %d, want 4 (both shards full)", got)
	}
	if m.Shard(0).Len() != 2 || m.Shard(1).Len() != 2 {
		t.Fatalf("warm striping uneven: %d/%d", m.Shard(0).Len(), m.Shard(1).Len())
	}
	// The hottest (first) ids alternate devices.
	if d, _ := m.Owner(ids[0]); d != 0 {
		t.Fatalf("hottest expert on device %d, want 0", d)
	}
	if d, _ := m.Owner(ids[1]); d != 1 {
		t.Fatalf("second expert on device %d, want 1", d)
	}
}

func TestMultiPinStripes(t *testing.T) {
	m := NewMulti(New(1, NewLRU()), New(1, NewLRU()))
	a := moe.ExpertID{Layer: 0, Index: 0}
	b := moe.ExpertID{Layer: 0, Index: 1}
	c := moe.ExpertID{Layer: 0, Index: 2}
	if !m.Pin(a) || !m.Pin(b) {
		t.Fatal("pins within capacity failed")
	}
	if m.Pin(c) {
		t.Fatal("pin beyond every shard's capacity should fail")
	}
	da, _ := m.Owner(a)
	db, _ := m.Owner(b)
	if da == db {
		t.Fatalf("pins landed on one device: %d and %d", da, db)
	}
}
