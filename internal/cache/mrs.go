package cache

import (
	"fmt"
	"sort"

	"hybrimoe/internal/moe"
)

// DefaultAlpha is the averaging coefficient of Eq. (3). Recent scores
// get this weight; history keeps the remainder.
const DefaultAlpha = 0.4

// MRS implements the paper's Minus-Recent-Score replacement policy
// (§IV-D, Eq. 3):
//
//	S = α·TopP(s) + (1-α)·S
//
// where s are the current iteration's routing scores for a layer and
// TopP keeps only the p highest scores (zeros elsewhere). Experts whose
// estimated priority S is lowest are evicted first. Because high scores
// predict future activation even when the expert was not selected
// (Fig. 3b), MRS retains "near-miss" experts that LRU/LFU would drop.
type MRS struct {
	alpha float64
	topP  int
	prio  map[moe.ExpertID]float64
}

// NewMRS returns an MRS policy with averaging coefficient alpha and the
// given top-p accumulation width (the paper sets p to twice the number
// of activated experts). Panics on invalid parameters.
func NewMRS(alpha float64, topP int) *MRS {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("cache: MRS alpha %v out of (0,1]", alpha))
	}
	if topP <= 0 {
		panic(fmt.Sprintf("cache: MRS topP %d must be positive", topP))
	}
	return &MRS{alpha: alpha, topP: topP, prio: make(map[moe.ExpertID]float64)}
}

// Name implements Policy.
func (p *MRS) Name() string { return "MRS" }

// Touch implements Policy. MRS priorities move only with scores, so a
// hit by itself does not change the estimate.
func (p *MRS) Touch(id moe.ExpertID) {}

// Admit implements Policy. An expert entering the cache keeps whatever
// score history it has accumulated.
func (p *MRS) Admit(id moe.ExpertID) {
	if _, ok := p.prio[id]; !ok {
		p.prio[id] = 0
	}
}

// Forget implements Policy. Score history survives eviction — the whole
// point is remembering high scorers while they are absent.
func (p *MRS) Forget(id moe.ExpertID) {}

// Victim implements Policy: evict the lowest estimated priority.
func (p *MRS) Victim(candidates []moe.ExpertID) moe.ExpertID {
	if len(candidates) == 0 {
		panic("cache: Victim with no candidates")
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if p.prio[c] < p.prio[best] ||
			(p.prio[c] == p.prio[best] && idLess(c, best)) {
			best = c
		}
	}
	return best
}

// ObserveScores implements Policy with the Eq. (3) update for one
// layer: the top-p scores accumulate with weight α, every other expert
// of the layer decays by (1-α).
func (p *MRS) ObserveScores(layer int, scores []float64) {
	if len(scores) == 0 {
		return
	}
	topP := p.topP
	if topP > len(scores) {
		topP = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	inTop := make(map[int]bool, topP)
	for _, e := range idx[:topP] {
		inTop[e] = true
	}
	for e := range scores {
		id := moe.ExpertID{Layer: layer, Index: e}
		s := 0.0
		if inTop[e] {
			s = scores[e]
		}
		p.prio[id] = p.alpha*s + (1-p.alpha)*p.prio[id]
	}
}

// Priority exposes the current estimate for tests and analysis tools.
func (p *MRS) Priority(id moe.ExpertID) float64 { return p.prio[id] }

var _ Policy = (*MRS)(nil)
