// Package cache implements the GPU expert cache: a capacity-bounded set
// of routed experts resident in GPU memory, with pluggable replacement
// policies. Alongside the classic LRU and LFU baselines it provides the
// paper's contribution, Minus-Recent-Score (MRS) score-aware caching
// (§IV-D): expert priority is an exponential moving average of recent
// routing scores, accumulated only for the top-p scores per iteration
// (p = 2K by default), and the lowest-priority expert is evicted.
package cache

import (
	"fmt"
	"sort"

	"hybrimoe/internal/moe"
)

// Policy decides which resident expert to evict. Implementations keep
// their own bookkeeping, driven by the cache's callbacks.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Touch records a cache hit on id.
	Touch(id moe.ExpertID)
	// Admit records id becoming resident.
	Admit(id moe.ExpertID)
	// Forget records id leaving the cache.
	Forget(id moe.ExpertID)
	// Victim picks the eviction victim among candidates (never empty).
	Victim(candidates []moe.ExpertID) moe.ExpertID
	// ObserveScores feeds one iteration's routing scores for a layer.
	// Score-agnostic policies ignore it.
	ObserveScores(layer int, scores []float64)
}

// LRU evicts the least-recently-used expert.
type LRU struct {
	clock int64
	last  map[moe.ExpertID]int64
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU { return &LRU{last: make(map[moe.ExpertID]int64)} }

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// Touch implements Policy.
func (p *LRU) Touch(id moe.ExpertID) {
	p.clock++
	p.last[id] = p.clock
}

// Admit implements Policy.
func (p *LRU) Admit(id moe.ExpertID) { p.Touch(id) }

// Forget implements Policy.
func (p *LRU) Forget(id moe.ExpertID) { delete(p.last, id) }

// Victim implements Policy: least recently used, ties broken by expert
// ID so victim choice is independent of candidate order.
func (p *LRU) Victim(candidates []moe.ExpertID) moe.ExpertID {
	if len(candidates) == 0 {
		panic("cache: Victim with no candidates")
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if p.last[c] < p.last[best] ||
			(p.last[c] == p.last[best] && idLess(c, best)) {
			best = c
		}
	}
	return best
}

// idLess is the deterministic tie-break order on expert IDs.
func idLess(a, b moe.ExpertID) bool {
	if a.Layer != b.Layer {
		return a.Layer < b.Layer
	}
	return a.Index < b.Index
}

// ObserveScores implements Policy (no-op).
func (p *LRU) ObserveScores(int, []float64) {}

// LFU evicts the least-frequently-used expert (total hit count).
type LFU struct {
	count map[moe.ExpertID]int64
	// tie-breaking by recency avoids pathological churn
	clock int64
	last  map[moe.ExpertID]int64
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{count: make(map[moe.ExpertID]int64), last: make(map[moe.ExpertID]int64)}
}

// Name implements Policy.
func (p *LFU) Name() string { return "LFU" }

// Touch implements Policy.
func (p *LFU) Touch(id moe.ExpertID) {
	p.count[id]++
	p.clock++
	p.last[id] = p.clock
}

// Admit implements Policy.
func (p *LFU) Admit(id moe.ExpertID) { p.Touch(id) }

// Forget implements Policy. Frequency history persists across
// residency, the usual LFU-with-history variant frameworks use.
func (p *LFU) Forget(id moe.ExpertID) {}

// Victim implements Policy.
func (p *LFU) Victim(candidates []moe.ExpertID) moe.ExpertID {
	if len(candidates) == 0 {
		panic("cache: Victim with no candidates")
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		switch {
		case p.count[c] != p.count[best]:
			if p.count[c] < p.count[best] {
				best = c
			}
		case p.last[c] != p.last[best]:
			if p.last[c] < p.last[best] {
				best = c
			}
		case idLess(c, best):
			best = c
		}
	}
	return best
}

// ObserveScores implements Policy (no-op).
func (p *LFU) ObserveScores(int, []float64) {}

var (
	_ Policy = (*LRU)(nil)
	_ Policy = (*LFU)(nil)
)

// Factory builds one policy instance. k is the model's per-token
// activation count, which score-aware policies use to size their
// accumulation windows (MRS takes top-p = 2k); others ignore it.
type Factory func(k int) Policy

var registry = map[string]Factory{}

// Register makes a policy constructible by name through NewPolicy.
// Registering a duplicate name or a nil factory panics: both are
// programming errors in plugin wiring, caught at init time.
func Register(name string, f Factory) {
	if name == "" {
		panic("cache: Register with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("cache: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cache: Register(%q) called twice", name))
	}
	registry[name] = f
}

// NewPolicy builds the named replacement policy, or returns a
// descriptive error for an unknown name. k is the model's activation
// count (see Factory).
func NewPolicy(name string, k int) (Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cache: unknown policy %q (have %v)", name, Names())
	}
	return f(k), nil
}

// Names lists the registered policies in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName is a compatibility shim for the pre-registry API.
//
// Deprecated: use NewPolicy.
func ByName(name string, k int) (Policy, error) { return NewPolicy(name, k) }

func init() {
	Register("LRU", func(int) Policy { return NewLRU() })
	Register("LFU", func(int) Policy { return NewLFU() })
	Register("MRS", func(k int) Policy { return NewMRS(DefaultAlpha, 2*k) })
}
