package cache

import (
	"fmt"

	"hybrimoe/internal/moe"
)

// Multi is the per-device expert cache: one residency shard per GPU,
// each with its own capacity, replacement policy and hit/miss
// accounting, so residency questions answer "which device holds it",
// not just "is it on the GPU". A one-shard Multi delegates everything
// to its single Cache and is behaviour-identical to the pre-multi-GPU
// engine. Shards are indexed by GPU device index (hw.Device.GPUIndex).
type Multi struct {
	shards []*Cache
	// cursor round-robin-stripes Warm and Pin across shards so the warm
	// start spreads the hottest experts over every device.
	cursor int
}

// NewMulti builds the per-device cache from one shard per GPU. It
// panics on an empty or nil shard list — topology bugs, caught at
// construction like Cache's own invariants.
func NewMulti(shards ...*Cache) *Multi {
	if len(shards) == 0 {
		panic("cache: NewMulti with no shards")
	}
	for i, s := range shards {
		if s == nil {
			panic(fmt.Sprintf("cache: NewMulti with nil shard %d", i))
		}
	}
	return &Multi{shards: shards}
}

// Devices reports the shard count (one per GPU).
func (m *Multi) Devices() int { return len(m.shards) }

// Shard exposes one device's cache for analysis and tests.
func (m *Multi) Shard(d int) *Cache { return m.shards[d] }

// Owner reports which device holds id, if any.
func (m *Multi) Owner(id moe.ExpertID) (int, bool) {
	for d, s := range m.shards {
		if s.resident[id] {
			return d, true
		}
	}
	return 0, false
}

// Contains reports residency on any device without touching hit/miss
// accounting.
func (m *Multi) Contains(id moe.ExpertID) bool {
	_, ok := m.Owner(id)
	return ok
}

// Lookup reports residency on any device and updates statistics: a hit
// is attributed to the owning shard (whose policy is also touched), a
// miss to the home device the caller names — the device that would
// receive the transfer.
func (m *Multi) Lookup(id moe.ExpertID, home int) bool {
	for _, s := range m.shards {
		if s.resident[id] {
			s.hits++
			s.policy.Touch(id)
			return true
		}
	}
	m.shards[home].misses++
	return false
}

// Insert makes id resident on device d (a no-op when it is already
// resident anywhere — experts are never replicated across shards),
// with Cache.Insert's eviction and protection semantics.
func (m *Multi) Insert(id moe.ExpertID, d int, protected func(moe.ExpertID) bool) (evicted []moe.ExpertID, ok bool) {
	if _, resident := m.Owner(id); resident {
		return nil, true
	}
	return m.shards[d].Insert(id, protected)
}

// Pin permanently places id, striping across shards round-robin. It
// reports whether any shard admitted it.
func (m *Multi) Pin(id moe.ExpertID) bool {
	if d, resident := m.Owner(id); resident {
		return m.shards[d].Pin(id)
	}
	for i := 0; i < len(m.shards); i++ {
		d := (m.cursor + i) % len(m.shards)
		if m.shards[d].Pin(id) {
			m.cursor = (d + 1) % len(m.shards)
			return true
		}
	}
	return false
}

// Warm fills the shards with ids round-robin (skipping residents,
// stopping when every shard is full) without counting statistics, and
// reports how many were admitted. With one shard this is exactly
// Cache.Warm.
func (m *Multi) Warm(ids []moe.ExpertID) int {
	n := 0
	for _, id := range ids {
		if m.Contains(id) {
			continue
		}
		admitted := false
		for i := 0; i < len(m.shards); i++ {
			d := (m.cursor + i) % len(m.shards)
			s := m.shards[d]
			if len(s.resident) >= s.capacity {
				continue
			}
			s.resident[id] = true
			s.policy.Admit(id)
			m.cursor = (d + 1) % len(m.shards)
			admitted = true
			n++
			break
		}
		if !admitted {
			break
		}
	}
	return n
}

// ObserveScores forwards one iteration's routing scores to every
// shard's policy (each shard ranks its own residents by them).
func (m *Multi) ObserveScores(layer int, scores []float64) {
	for _, s := range m.shards {
		s.policy.ObserveScores(layer, scores)
	}
}

// TouchHistorical records a historical access in the owning shard's
// policy (the first shard's when id is resident nowhere), without
// touching residency or hit/miss statistics.
func (m *Multi) TouchHistorical(id moe.ExpertID) {
	d, _ := m.Owner(id)
	m.shards[d].policy.Touch(id)
}

// Capacity reports the summed capacity across devices.
func (m *Multi) Capacity() int {
	total := 0
	for _, s := range m.shards {
		total += s.capacity
	}
	return total
}

// Len reports the summed resident count across devices.
func (m *Multi) Len() int {
	total := 0
	for _, s := range m.shards {
		total += len(s.resident)
	}
	return total
}

// Hits reports the summed lookup hits across devices.
func (m *Multi) Hits() int64 {
	var total int64
	for _, s := range m.shards {
		total += s.hits
	}
	return total
}

// Misses reports the summed lookup misses across devices.
func (m *Multi) Misses() int64 {
	var total int64
	for _, s := range m.shards {
		total += s.misses
	}
	return total
}

// HitRate reports the aggregate hits/(hits+misses), or 0 before any
// lookup.
func (m *Multi) HitRate() float64 {
	hits, total := m.Hits(), m.Hits()+m.Misses()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// ResetStats clears every shard's counters without touching residency.
func (m *Multi) ResetStats() {
	for _, s := range m.shards {
		s.ResetStats()
	}
}
