package tensor

import (
	"fmt"
	"math"
	"sort"
)

func sqrt(v float64) float64 { return math.Sqrt(v) }

// Softmax writes the softmax of src into dst (may alias src). It is
// numerically stabilised by max subtraction. Panics on length mismatch or
// empty input.
func Softmax(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Softmax length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(src) == 0 {
		panic("tensor: Softmax of empty slice")
	}
	max := src[0]
	for _, v := range src[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - max))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// TopK returns the indices of the k largest values of xs in descending
// value order. Ties break toward the lower index, matching the stable
// behaviour of framework top-k kernels. Panics if k is out of (0, len].
func TopK(xs []float32, k int) []int {
	if k <= 0 || k > len(xs) {
		panic(fmt.Sprintf("tensor: TopK k=%d with %d values", k, len(xs)))
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}

// TopKInto is TopK writing into dst's backing array (grown as needed):
// the same indices in the same order — descending value, ties broken by
// ascending index, exactly the stable argsort — via k successive
// max-selections, so hot paths probing small k over large vectors pay
// no per-call allocation. Each round admits only candidates ranking
// strictly after the previous pick in the (value desc, index asc) total
// order, which is both the dedup and the tie rule.
func TopKInto(dst []int, xs []float32, k int) []int {
	if k <= 0 || k > len(xs) {
		panic(fmt.Sprintf("tensor: TopKInto k=%d with %d values", k, len(xs)))
	}
	dst = dst[:0]
	prev, prevIdx := float32(0), -1
	for j := 0; j < k; j++ {
		best := -1
		for i, v := range xs {
			if j > 0 && (v > prev || (v == prev && i <= prevIdx)) {
				continue
			}
			if best < 0 || v > xs[best] {
				best = i
			}
		}
		dst = append(dst, best)
		prev, prevIdx = xs[best], best
	}
	return dst
}

// SoftmaxTopK implements the MoE gating combination from Eq. (1) of the
// paper: select the top-k logits, then softmax over only those k values.
// It returns the selected expert indices (descending logit order) and
// their normalised weights.
func SoftmaxTopK(logits []float32, k int) (experts []int, weights []float32) {
	experts = TopK(logits, k)
	sel := make([]float32, k)
	for i, e := range experts {
		sel[i] = logits[e]
	}
	weights = make([]float32, k)
	Softmax(weights, sel)
	return experts, weights
}

// RMSNorm applies root-mean-square layer normalisation with elementwise
// gain: dst[i] = x[i] / rms(x) * gain[i], rms(x) = sqrt(mean(x²) + eps).
func RMSNorm(dst, x, gain []float32, eps float64) {
	if len(dst) != len(x) || len(gain) != len(x) {
		panic(fmt.Sprintf("tensor: RMSNorm length mismatch %d/%d/%d", len(dst), len(x), len(gain)))
	}
	var ss float64
	for _, v := range x {
		ss += float64(v) * float64(v)
	}
	inv := 1 / math.Sqrt(ss/float64(len(x))+eps)
	for i := range dst {
		dst[i] = float32(float64(x[i]) * inv * float64(gain[i]))
	}
}

// SiLU applies the sigmoid-linear unit x*sigmoid(x) elementwise in place.
// It is the activation used by the gated FFN experts in all three
// evaluated models.
func SiLU(x []float32) {
	for i, v := range x {
		x[i] = float32(float64(v) / (1 + math.Exp(-float64(v))))
	}
}

// GatedFFN computes the SwiGLU expert transform used by Mixtral, Qwen2
// and DeepSeek experts:
//
//	out = Wdown · (SiLU(Wgate·x) ⊙ (Wup·x))
//
// Wgate and Wup are inter×hidden, Wdown is hidden×inter. The function
// allocates and returns the hidden-sized output.
func GatedFFN(wgate, wup, wdown *Matrix, x []float32) []float32 {
	if wgate.Rows != wup.Rows || wgate.Cols != wup.Cols {
		panic("tensor: GatedFFN gate/up shape mismatch")
	}
	if wdown.Cols != wgate.Rows || wdown.Rows != wgate.Cols {
		panic("tensor: GatedFFN down projection shape mismatch")
	}
	inter := wgate.Rows
	g := make([]float32, inter)
	u := make([]float32, inter)
	MatVec(g, wgate, x)
	MatVec(u, wup, x)
	SiLU(g)
	for i := range g {
		g[i] *= u[i]
	}
	out := make([]float32, wdown.Rows)
	MatVec(out, wdown, g)
	return out
}

// ArgMax returns the index of the largest element (first on ties).
// Panics on empty input.
func ArgMax(xs []float32) int {
	if len(xs) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// CosineSimilarity returns the cosine of the angle between two vectors,
// or 0 when either is zero. The prefetcher's accuracy model is validated
// against the inter-layer hidden-state similarity this measures.
func CosineSimilarity(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: CosineSimilarity length mismatch %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
