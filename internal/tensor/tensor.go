// Package tensor implements the minimal dense linear-algebra kernels the
// functional MoE path needs: float32 matrices, GEMV/GEMM, softmax, top-k
// selection, RMSNorm and SiLU. Weights are float32 (the quantized INT4
// path lives in internal/quant); accumulation is float64 for stability.
//
// These kernels serve two purposes in the reproduction: they execute the
// tiny functional models used in tests and examples, and they provide the
// measured per-FLOP CPU cost that calibrates the hardware simulator.
package tensor

import (
	"fmt"

	"hybrimoe/internal/stats"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SizeBytes reports the fp32 storage footprint, used for transfer-time
// accounting before quantization.
func (m *Matrix) SizeBytes() int64 { return int64(len(m.Data)) * 4 }

// FillRandom initialises the matrix with scaled Gaussian entries
// (Xavier-style: std = 1/sqrt(cols)) from the supplied generator.
func (m *Matrix) FillRandom(rng *stats.RNG) {
	std := 1.0 / float64(m.Cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormMeanStd(0, stdSqrt(std)))
	}
}

func stdSqrt(v float64) float64 {
	// sqrt via Newton iterations would be silly; math.Sqrt is fine, this
	// indirection just keeps the import list honest in one place.
	return sqrt(v)
}

// MatVec computes dst = m · x. dst must have length m.Rows and x length
// m.Cols; the function panics otherwise.
func MatVec(dst []float32, m *Matrix, x []float32) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec x len %d != cols %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec dst len %d != rows %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var acc float64
		// Unrolled by 4: measurable on the calibration path.
		j := 0
		for ; j+4 <= m.Cols; j += 4 {
			acc += float64(row[j])*float64(x[j]) +
				float64(row[j+1])*float64(x[j+1]) +
				float64(row[j+2])*float64(x[j+2]) +
				float64(row[j+3])*float64(x[j+3])
		}
		for ; j < m.Cols; j++ {
			acc += float64(row[j]) * float64(x[j])
		}
		dst[i] = float32(acc)
	}
}

// MatMul computes C = A · B and returns C. It panics on shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var acc float64
	for i := range a {
		acc += float64(a[i]) * float64(b[i])
	}
	return acc
}

// Axpy computes dst += alpha * x elementwise.
func Axpy(dst []float32, alpha float32, x []float32) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(dst), len(x)))
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float32, alpha float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}
