package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"hybrimoe/internal/stats"
)

func TestNewMatrixPanics(t *testing.T) {
	for _, c := range []struct{ r, cc int }{{0, 3}, {3, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d,%d) should panic", c.r, c.cc)
				}
			}()
			NewMatrix(c.r, c.cc)
		}()
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must alias matrix storage")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone must deep copy")
	}
	if m.SizeBytes() != 24 {
		t.Fatalf("SizeBytes = %d, want 24", m.SizeBytes())
	}
}

func TestMatVecKnown(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	x := []float32{1, 0, -1}
	dst := make([]float32, 2)
	MatVec(dst, m, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", dst)
	}
}

func TestMatVecUnrollTail(t *testing.T) {
	// Cols not a multiple of 4 exercises the scalar tail.
	m := NewMatrix(1, 7)
	x := make([]float32, 7)
	for i := 0; i < 7; i++ {
		m.Data[i] = float32(i + 1)
		x[i] = 1
	}
	dst := make([]float32, 1)
	MatVec(dst, m, x)
	if dst[0] != 28 {
		t.Fatalf("MatVec tail = %v, want 28", dst[0])
	}
}

func TestMatVecPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short x should panic")
			}
		}()
		MatVec(make([]float32, 2), m, make([]float32, 2))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short dst should panic")
			}
		}()
		MatVec(make([]float32, 1), m, make([]float32, 3))
	}()
}

func TestMatMulKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float32{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float32{5, 6, 7, 8})
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := stats.NewRNG(11)
	a := NewMatrix(4, 4)
	a.FillRandom(rng)
	id := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if math.Abs(float64(c.Data[i]-a.Data[i])) > 1e-6 {
			t.Fatalf("A·I != A at %d: %v vs %v", i, c.Data[i], a.Data[i])
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

// Property: MatVec agrees with MatMul on single-column right operands.
func TestMatVecMatMulAgreeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		m.FillRandom(rng)
		x := make([]float32, cols)
		for i := range x {
			x[i] = float32(rng.NormMeanStd(0, 1))
		}
		dst := make([]float32, rows)
		MatVec(dst, m, x)
		col := NewMatrix(cols, 1)
		copy(col.Data, x)
		prod := MatMul(m, col)
		for i := 0; i < rows; i++ {
			if math.Abs(float64(dst[i]-prod.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDotAxpyScaleFill(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	dst := []float32{1, 1, 1}
	Axpy(dst, 2, a)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != 7 {
		t.Fatalf("Axpy = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 1.5 {
		t.Fatalf("Scale = %v", dst)
	}
	Fill(dst, 9)
	for _, v := range dst {
		if v != 9 {
			t.Fatalf("Fill = %v", dst)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Dot length mismatch should panic")
			}
		}()
		Dot(a, []float32{1})
	}()
}

func TestFillRandomStatistics(t *testing.T) {
	rng := stats.NewRNG(13)
	m := NewMatrix(100, 256)
	m.FillRandom(rng)
	var acc stats.Running
	for _, v := range m.Data {
		acc.Add(float64(v))
	}
	if math.Abs(acc.Mean()) > 0.005 {
		t.Errorf("random init mean = %v, want ≈0", acc.Mean())
	}
	wantStd := 1 / math.Sqrt(256)
	if math.Abs(acc.StdDev()-wantStd) > 0.005 {
		t.Errorf("random init std = %v, want ≈%v", acc.StdDev(), wantStd)
	}
}
