package tensor

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hybrimoe/internal/stats"
)

func TestSoftmaxKnown(t *testing.T) {
	src := []float32{1, 1, 1, 1}
	dst := make([]float32, 4)
	Softmax(dst, src)
	for _, v := range dst {
		if math.Abs(float64(v)-0.25) > 1e-6 {
			t.Fatalf("uniform softmax = %v", dst)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Large logits must not overflow to NaN/Inf.
	src := []float32{1000, 999, 998}
	dst := make([]float32, 3)
	Softmax(dst, src)
	var sum float64
	for _, v := range dst {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflow: %v", dst)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
	if !(dst[0] > dst[1] && dst[1] > dst[2]) {
		t.Fatalf("softmax order broken: %v", dst)
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	x := []float32{0, math.Ln2} // softmax = [1/3, 2/3]
	Softmax(x, x)
	if math.Abs(float64(x[0])-1.0/3) > 1e-6 || math.Abs(float64(x[1])-2.0/3) > 1e-6 {
		t.Fatalf("in-place softmax = %v", x)
	}
}

// Property: softmax sums to 1 and preserves order.
func TestSoftmaxQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(32)
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormMeanStd(0, 5))
		}
		dst := make([]float32, n)
		Softmax(dst, src)
		var sum float64
		for _, v := range dst {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			return false
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (src[i] > src[j]) != (dst[i] > dst[j]) && src[i] != src[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTopK(t *testing.T) {
	xs := []float32{0.1, 0.9, 0.5, 0.7}
	got := TopK(xs, 2)
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK = %v, want [1 3]", got)
	}
	all := TopK(xs, 4)
	if all[3] != 0 {
		t.Fatalf("TopK full sort = %v", all)
	}
}

func TestTopKTieStability(t *testing.T) {
	xs := []float32{0.5, 0.5, 0.5}
	got := TopK(xs, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("ties should break toward lower index: %v", got)
	}
}

// TestTopKIntoMatchesTopK property-checks the allocation-free selection
// against the stable argsort over random vectors with deliberate ties,
// at every k, and pins the zero-alloc contract once the scratch exists.
func TestTopKIntoMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var dst []int
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(24)
		xs := make([]float32, n)
		for i := range xs {
			// Quantised draws force frequent ties, the stability trap.
			xs[i] = float32(rng.Intn(6)) / 8
		}
		for k := 1; k <= n; k++ {
			want := TopK(xs, k)
			dst = TopKInto(dst, xs, k)
			if !reflect.DeepEqual(dst, want) {
				t.Fatalf("xs=%v k=%d: TopKInto=%v, TopK=%v", xs, k, dst, want)
			}
		}
	}
	xs := []float32{0.1, 0.9, 0.5, 0.7, 0.5}
	dst = TopKInto(dst, xs, 3)
	allocs := testing.AllocsPerRun(100, func() {
		dst = TopKInto(dst, xs, 3)
	})
	if allocs > 0 {
		t.Fatalf("TopKInto allocated %.1f times per call with warm scratch", allocs)
	}
}

func TestTopKIntoPanics(t *testing.T) {
	for _, k := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TopKInto k=%d should panic", k)
				}
			}()
			TopKInto(nil, []float32{1, 2, 3}, k)
		}()
	}
}

func TestTopKPanics(t *testing.T) {
	for _, k := range []int{0, 4, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TopK k=%d should panic", k)
				}
			}()
			TopK([]float32{1, 2, 3}, k)
		}()
	}
}

func TestSoftmaxTopK(t *testing.T) {
	logits := []float32{0, 2, 1, -1}
	experts, weights := SoftmaxTopK(logits, 2)
	if experts[0] != 1 || experts[1] != 2 {
		t.Fatalf("experts = %v, want [1 2]", experts)
	}
	var sum float64
	for _, w := range weights {
		sum += float64(w)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("gate weights sum = %v, want 1", sum)
	}
	if weights[0] <= weights[1] {
		t.Fatalf("higher logit should get higher weight: %v", weights)
	}
}

func TestRMSNorm(t *testing.T) {
	x := []float32{3, 4}
	gain := []float32{1, 1}
	dst := make([]float32, 2)
	RMSNorm(dst, x, gain, 0)
	// rms = sqrt((9+16)/2) = sqrt(12.5)
	rms := math.Sqrt(12.5)
	if math.Abs(float64(dst[0])-3/rms) > 1e-6 || math.Abs(float64(dst[1])-4/rms) > 1e-6 {
		t.Fatalf("RMSNorm = %v", dst)
	}
	// With gain applied.
	gain = []float32{2, 0}
	RMSNorm(dst, x, gain, 0)
	if math.Abs(float64(dst[0])-6/rms) > 1e-6 || dst[1] != 0 {
		t.Fatalf("gained RMSNorm = %v", dst)
	}
}

func TestSiLU(t *testing.T) {
	x := []float32{0, 10, -10}
	SiLU(x)
	if x[0] != 0 {
		t.Errorf("SiLU(0) = %v, want 0", x[0])
	}
	if math.Abs(float64(x[1])-10) > 1e-3 {
		t.Errorf("SiLU(10) = %v, want ≈10", x[1])
	}
	if math.Abs(float64(x[2])) > 1e-3 {
		t.Errorf("SiLU(-10) = %v, want ≈0", x[2])
	}
}

func TestGatedFFNShapeAndZero(t *testing.T) {
	rng := stats.NewRNG(17)
	hidden, inter := 8, 16
	wg := NewMatrix(inter, hidden)
	wu := NewMatrix(inter, hidden)
	wd := NewMatrix(hidden, inter)
	wg.FillRandom(rng)
	wu.FillRandom(rng)
	wd.FillRandom(rng)
	x := make([]float32, hidden)
	out := GatedFFN(wg, wu, wd, x)
	if len(out) != hidden {
		t.Fatalf("GatedFFN output length %d, want %d", len(out), hidden)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("GatedFFN of zero input should be zero, got %v", out)
		}
	}
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	out = GatedFFN(wg, wu, wd, x)
	var nonzero bool
	for _, v := range out {
		if v != 0 {
			nonzero = true
		}
		if math.IsNaN(float64(v)) {
			t.Fatal("GatedFFN produced NaN")
		}
	}
	if !nonzero {
		t.Fatal("GatedFFN of random input should be nonzero")
	}
}

func TestGatedFFNShapePanics(t *testing.T) {
	wg := NewMatrix(4, 8)
	wu := NewMatrix(3, 8)
	wd := NewMatrix(8, 4)
	defer func() {
		if recover() == nil {
			t.Error("gate/up mismatch should panic")
		}
	}()
	GatedFFN(wg, wu, wd, make([]float32, 8))
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float32{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax([]float32{2, 2}); got != 0 {
		t.Fatalf("ArgMax ties should prefer first: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ArgMax of empty should panic")
		}
	}()
	ArgMax(nil)
}

func TestCosineSimilarity(t *testing.T) {
	a := []float32{1, 0}
	if got := CosineSimilarity(a, []float32{2, 0}); math.Abs(got-1) > 1e-9 {
		t.Errorf("parallel cosine = %v, want 1", got)
	}
	if got := CosineSimilarity(a, []float32{0, 3}); math.Abs(got) > 1e-9 {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := CosineSimilarity(a, []float32{-1, 0}); math.Abs(got+1) > 1e-9 {
		t.Errorf("antiparallel cosine = %v, want -1", got)
	}
	if got := CosineSimilarity(a, []float32{0, 0}); got != 0 {
		t.Errorf("zero-vector cosine = %v, want 0", got)
	}
}
