package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestTwoSessionsInterleaveDeterministically drives two independent
// serving sessions — each a self-rescheduling worker with its own
// resource timeline — on one shared event clock, and pins the invariant
// the cluster's lockstep fleet advance relies on: the interleaving of
// their events is a pure function of the timestamps, reproducible run
// to run, globally time-ordered, and FIFO among equal stamps.
func TestTwoSessionsInterleaveDeterministically(t *testing.T) {
	type fired struct {
		Worker int
		At     float64
	}
	run := func() []fired {
		eng := NewEngine()
		var order []fired
		tls := []*Timeline{NewTimeline("s0"), NewTimeline("s1")}
		// Deterministic unequal step costs: the two sessions drift apart
		// and re-cross repeatedly, exercising every interleaving shape.
		durs := []float64{0.3, 0.45}
		var step func(w, n int)
		step = func(w, n int) {
			order = append(order, fired{w, eng.Now()})
			if n == 0 {
				return
			}
			_, end := tls[w].Reserve(eng.Now(), durs[w], fmt.Sprintf("s%d-step", w))
			eng.Schedule(end, func() { step(w, n-1) })
		}
		eng.Schedule(0, func() { step(0, 6) })
		eng.Schedule(0, func() { step(1, 4) })
		eng.Run()
		return order
	}

	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal-input runs interleaved differently:\n%v\n%v", a, b)
	}
	if len(a) != 12 { // 7 events for session 0, 5 for session 1
		t.Fatalf("fired %d events, want 12: %v", len(a), a)
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("clock ran backwards at event %d: %v", i, a)
		}
	}
	// Both sessions schedule their first step at t=0; session 0 was
	// scheduled first and must fire first (FIFO among equal stamps).
	if a[0].Worker != 0 || a[1].Worker != 1 || a[0].At != 0 || a[1].At != 0 {
		t.Fatalf("equal-stamp events fired out of scheduling order: %v", a[:2])
	}
	// The sessions' timelines never share reservations, so each advances
	// at its own step cost: 6 steps of 0.3 vs 4 of 0.45.
	if got := a[len(a)-1]; got.At != 1.8 {
		t.Fatalf("final event at %v, want 1.8", got.At)
	}
}

// TestLockstepAdvanceMatchesEventQueue replays the same two-session
// workload through the cluster-style lockstep loop — repeatedly step
// whichever session's next event time is minimal, ties to the lowest
// index — and checks it visits events in exactly the order the shared
// event queue fires them. This is why a fleet of per-replica clocks can
// be advanced without a global queue and still be deterministic. The
// step costs are chosen so the sessions never collide after t=0: at an
// exact tie the two advances agree only up to their tie-break policies
// (the queue is insertion-FIFO, the lockstep loop is lowest-index), so
// the order-equality claim is for distinct stamps — which float64
// arithmetic makes the overwhelmingly common case.
func TestLockstepAdvanceMatchesEventQueue(t *testing.T) {
	durs := []float64{0.3, 0.7} // first shared multiple (2.1) is past both horizons
	steps := []int{7, 3}

	// Shared-queue reference: one engine, two self-rescheduling workers.
	type fired struct {
		Worker int
		At     float64
	}
	var want []fired
	{
		eng := NewEngine()
		var step func(w, n int)
		step = func(w, n int) {
			want = append(want, fired{w, eng.Now()})
			if n > 1 {
				eng.ScheduleAfter(durs[w], func() { step(w, n-1) })
			}
		}
		eng.Schedule(0, func() { step(0, steps[0]) })
		eng.Schedule(0, func() { step(1, steps[1]) })
		eng.Run()
	}

	// Lockstep loop: each session is an isolated clock; the driver picks
	// the trailing one (ties to the lowest index) — the cluster's Step.
	var got []fired
	clocks := []float64{0, 0}
	left := append([]int(nil), steps...)
	for left[0] > 0 || left[1] > 0 {
		pick := -1
		for w := range clocks {
			if left[w] == 0 {
				continue
			}
			if pick < 0 || clocks[w] < clocks[pick] {
				pick = w
			}
		}
		got = append(got, fired{pick, clocks[pick]})
		clocks[pick] += durs[pick]
		left[pick]--
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lockstep advance diverged from the shared event queue:\nqueue:    %v\nlockstep: %v",
			want, got)
	}
}
