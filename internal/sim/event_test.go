package sim

import (
	"testing"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("final clock = %v, want 3", e.Now())
	}
	if e.EventsRun() != 3 {
		t.Fatalf("events run = %d, want 3", e.EventsRun())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events must fire FIFO: %v", order)
		}
	}
}

func TestEngineCascadedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []float64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.ScheduleAfter(2, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("cascade hits = %v", hits)
	}
}

func TestEnginePastSchedulePanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	e.ScheduleAfter(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 5, 9} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want events at 1,2,5", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	e.Run()
	if len(fired) != 4 || e.Now() != 9 {
		t.Fatalf("after Run: fired=%v now=%v", fired, e.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(7)
	if e.Now() != 7 {
		t.Fatalf("idle RunUntil should advance the clock: %v", e.Now())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}
