package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span records one operation executed on a timeline.
type Span struct {
	Name  string
	Start float64
	End   float64
}

// Duration reports the span length.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline serialises work on one exclusive resource (a CPU pool, the
// GPU, the PCIe link). Work items are appended back-to-back: a
// reservation starts at max(readyAt, busyUntil). Spans are recorded for
// trace inspection and utilisation accounting.
type Timeline struct {
	Name      string
	busyUntil float64
	spans     []Span
	record    bool
}

// NewTimeline returns an empty timeline that records spans.
func NewTimeline(name string) *Timeline {
	return &Timeline{Name: name, record: true}
}

// NewTimelineNoTrace returns a timeline that skips span recording; the
// scheduler's inner simulation loop uses this to avoid allocation.
func NewTimelineNoTrace(name string) *Timeline {
	return &Timeline{Name: name}
}

// BusyUntil reports when the resource frees up.
func (t *Timeline) BusyUntil() float64 { return t.busyUntil }

// Reserve books dur seconds of exclusive time, starting no earlier than
// readyAt, and returns the [start, end) interval. A negative duration
// panics.
func (t *Timeline) Reserve(readyAt, dur float64, name string) (start, end float64) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative duration %v for %q", dur, name))
	}
	start = t.busyUntil
	if readyAt > start {
		start = readyAt
	}
	end = start + dur
	t.busyUntil = end
	if t.record && dur > 0 {
		t.spans = append(t.spans, Span{Name: name, Start: start, End: end})
	}
	return start, end
}

// Spans returns the recorded spans in execution order.
func (t *Timeline) Spans() []Span {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// BusyTime reports total reserved seconds.
func (t *Timeline) BusyTime() float64 {
	var sum float64
	for _, s := range t.spans {
		sum += s.Duration()
	}
	return sum
}

// Utilization reports BusyTime divided by the horizon, or 0 for an empty
// horizon.
func (t *Timeline) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	return t.BusyTime() / horizon
}

// Reset clears reservations and spans, rewinding the busy frontier to
// zero. Span storage is retained (truncated, not freed) — the pooled-
// span guarantee: a timeline reused across runs, whether by hand or
// through AcquireTimeline/Release, reaches a steady state where
// recording allocates nothing.
func (t *Timeline) Reset() {
	t.busyUntil = 0
	t.spans = t.spans[:0]
}

// timelinePool recycles timelines — and, through Reset's storage
// retention, their span slices — across simulation runs, so tight loops
// that stand up and tear down resource timelines per run (sweep cells,
// benchmarks) stop paying per-run span allocations.
var timelinePool = sync.Pool{New: func() interface{} { return &Timeline{} }}

// AcquireTimeline returns an empty recording timeline from the package
// pool, renamed for this use. Pair it with Release; an acquired
// timeline is otherwise indistinguishable from NewTimeline's.
func AcquireTimeline(name string) *Timeline {
	t := timelinePool.Get().(*Timeline)
	t.Name = name
	t.record = true
	return t
}

// Release resets t and returns it to the package pool. The caller must
// not touch t (or spans obtained from it by reference) afterwards;
// Spans() copies remain valid.
func (t *Timeline) Release() {
	t.Reset()
	t.record = false
	timelinePool.Put(t)
}

// Clone returns a copy sharing no state, used by what-if simulations.
func (t *Timeline) Clone() *Timeline {
	c := &Timeline{Name: t.Name, busyUntil: t.busyUntil, record: t.record}
	c.spans = append(c.spans, t.spans...)
	return c
}

// Gantt renders the spans of several timelines as aligned text rows, one
// row per timeline, for experiment logs and debugging. width is the
// number of character cells used for the longest horizon.
func Gantt(width int, timelines ...*Timeline) string {
	if width <= 0 {
		width = 60
	}
	var horizon float64
	for _, tl := range timelines {
		if tl.busyUntil > horizon {
			horizon = tl.busyUntil
		}
	}
	if horizon == 0 {
		return ""
	}
	var sb strings.Builder
	for _, tl := range timelines {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = '.'
		}
		spans := tl.Spans()
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for _, s := range spans {
			lo := int(s.Start / horizon * float64(width))
			hi := int(s.End / horizon * float64(width))
			if hi == lo {
				hi = lo + 1
			}
			label := byte('#')
			if len(s.Name) > 0 {
				label = s.Name[0]
			}
			for i := lo; i < hi && i < width; i++ {
				cells[i] = label
			}
		}
		fmt.Fprintf(&sb, "%-6s |%s| %.4gs\n", tl.Name, string(cells), tl.busyUntil)
	}
	return sb.String()
}
