// Package sim provides the discrete-event simulation core the hardware
// substrate runs on: a virtual clock with an event queue, resource
// timelines that serialise work on a device, and span traces that record
// what ran where (the simulated equivalent of a CUDA-stream timeline).
//
// Time is modelled in float64 seconds. Determinism matters more than
// wall-clock fidelity: events at equal timestamps fire in scheduling
// order.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	At  float64
	Fn  func()
	seq int64 // tie-break: FIFO among equal timestamps
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and event queue. The zero value is
// usable; NewEngine is provided for symmetry.
type Engine struct {
	now    float64
	queue  eventHeap
	nextSq int64
	ran    int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun reports how many events have fired.
func (e *Engine) EventsRun() int64 { return e.ran }

// Schedule enqueues fn to run at virtual time at. Scheduling in the past
// panics: it indicates a causality bug in the caller.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &Event{At: at, Fn: fn, seq: e.nextSq}
	e.nextSq++
	heap.Push(&e.queue, ev)
}

// ScheduleAfter enqueues fn to run delay seconds from now.
func (e *Engine) ScheduleAfter(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Step fires the next event, advancing the clock to it, and reports
// whether an event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.ran++
	ev.Fn()
	return true
}

// Run fires events until the queue is empty and returns the final clock
// value.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, leaves later events
// queued, and advances the clock to min(deadline, last event time).
func (e *Engine) RunUntil(deadline float64) float64 {
	for len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
