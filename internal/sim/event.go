// Package sim provides the discrete-event simulation core the hardware
// substrate runs on: a virtual clock with an event queue, resource
// timelines that serialise work on a device, and span traces that record
// what ran where (the simulated equivalent of a CUDA-stream timeline).
//
// Time is modelled in float64 seconds. Determinism matters more than
// wall-clock fidelity: events at equal timestamps fire in scheduling
// order.
package sim

import "fmt"

// Engine owns the virtual clock and an event queue of callbacks. It is
// a thin causality layer over Queue: Schedule refuses stamps in the
// clock's past, and Step advances the clock to each event it fires. The
// zero value is usable; NewEngine is provided for symmetry.
type Engine struct {
	now   float64
	queue Queue[func()]
	ran   int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun reports how many events have fired.
func (e *Engine) EventsRun() int64 { return e.ran }

// Schedule enqueues fn to run at virtual time at. Scheduling in the past
// panics: it indicates a causality bug in the caller.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.queue.Push(at, fn)
}

// ScheduleAfter enqueues fn to run delay seconds from now.
func (e *Engine) ScheduleAfter(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Step fires the next event, advancing the clock to it, and reports
// whether an event ran.
func (e *Engine) Step() bool {
	at, fn, ok := e.queue.PopMin()
	if !ok {
		return false
	}
	e.now = at
	e.ran++
	fn()
	return true
}

// Run fires events until the queue is empty and returns the final clock
// value.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, leaves later events
// queued, and advances the clock to min(deadline, last event time).
func (e *Engine) RunUntil(deadline float64) float64 {
	for {
		at, _, ok := e.queue.PeekMin()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
