package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQueueOrdersByStamp(t *testing.T) {
	var q Queue[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for {
		_, v, ok := q.PopMin()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("pop order = %v, want [a b c]", got)
	}
}

func TestQueueFIFOAtEqualStamps(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 32; i++ {
		q.Push(1, i)
	}
	for i := 0; i < 32; i++ {
		_, v, ok := q.PopMin()
		if !ok || v != i {
			t.Fatalf("equal-stamp pop %d = %d (ok=%v), want FIFO", i, v, ok)
		}
	}
}

func TestQueuePeekMin(t *testing.T) {
	var q Queue[int]
	if _, _, ok := q.PeekMin(); ok {
		t.Fatal("PeekMin on empty queue should report !ok")
	}
	q.Push(5, 50)
	q.Push(2, 20)
	at, v, ok := q.PeekMin()
	if !ok || at != 2 || v != 20 {
		t.Fatalf("PeekMin = (%v, %v, %v), want (2, 20, true)", at, v, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("PeekMin must not remove: len = %d", q.Len())
	}
	if at, v, _ := q.PopMin(); at != 2 || v != 20 {
		t.Fatalf("PopMin after peek = (%v, %v)", at, v)
	}
}

// The queue accepts stamps behind items already popped: causality is
// the caller's policy (the Session's arrival queue takes late
// submissions), only ordering is the queue's.
func TestQueueAcceptsPastStamps(t *testing.T) {
	var q Queue[string]
	q.Push(10, "late")
	q.Push(1, "early")
	q.PopMin()
	q.Push(0.5, "past")
	at, v, _ := q.PopMin()
	if at != 0.5 || v != "past" {
		t.Fatalf("past-stamped item should pop first, got (%v, %q)", at, v)
	}
}

func TestQueueResetKeepsStorage(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(float64(i), i)
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("len after Reset = %d", q.Len())
	}
	if cap(q.h) < 100 {
		t.Fatalf("Reset must retain backing storage, cap = %d", cap(q.h))
	}
	// FIFO seq survives the reset: new pushes at one stamp still order.
	q.Push(1, 7)
	q.Push(1, 8)
	if _, v, _ := q.PopMin(); v != 7 {
		t.Fatal("FIFO broken after Reset")
	}
}

func TestQueueScanVisitsAll(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(float64(i%3), i)
	}
	sum, behind := 0, 0
	q.Scan(func(at float64, v int) {
		sum += v
		if at <= 1 {
			behind++
		}
	})
	if sum != 45 {
		t.Fatalf("Scan payload sum = %d, want 45", sum)
	}
	if behind != 7 {
		t.Fatalf("Scan stamp census = %d, want 7", behind)
	}
}

// Property: any push sequence pops in (stamp, push order) order.
func TestQueueRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type item struct {
		at  float64
		seq int
	}
	var q Queue[item]
	var want []item
	for i := 0; i < 500; i++ {
		at := float64(rng.Intn(50)) // coarse stamps force ties
		it := item{at, i}
		q.Push(at, it)
		want = append(want, it)
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	for i, w := range want {
		_, got, ok := q.PopMin()
		if !ok || got != w {
			t.Fatalf("pop %d = %v (ok=%v), want %v", i, got, ok, w)
		}
	}
}

func TestTimelinePoolRoundTrip(t *testing.T) {
	tl := AcquireTimeline("pooled")
	tl.Reserve(0, 2, "a")
	if len(tl.Spans()) != 1 || tl.BusyUntil() != 2 {
		t.Fatalf("acquired timeline should record: spans=%d busy=%v",
			len(tl.Spans()), tl.BusyUntil())
	}
	tl.Release()
	// Reacquire (the pool may or may not hand the same object back);
	// either way the timeline must start empty and record again.
	tl2 := AcquireTimeline("again")
	defer tl2.Release()
	if tl2.BusyUntil() != 0 || len(tl2.Spans()) != 0 {
		t.Fatal("reacquired timeline must start reset")
	}
	tl2.Reserve(1, 1, "b")
	if got := tl2.Spans(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("reacquired timeline should record fresh spans: %v", got)
	}
}
