package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimelineReserveSequencing(t *testing.T) {
	tl := NewTimeline("GPU")
	s1, e1 := tl.Reserve(0, 2, "a")
	if s1 != 0 || e1 != 2 {
		t.Fatalf("first reserve [%v,%v), want [0,2)", s1, e1)
	}
	// Ready before the resource frees: starts at busyUntil.
	s2, e2 := tl.Reserve(1, 3, "b")
	if s2 != 2 || e2 != 5 {
		t.Fatalf("second reserve [%v,%v), want [2,5)", s2, e2)
	}
	// Ready after the resource frees: idle gap allowed.
	s3, e3 := tl.Reserve(10, 1, "c")
	if s3 != 10 || e3 != 11 {
		t.Fatalf("third reserve [%v,%v), want [10,11)", s3, e3)
	}
	if tl.BusyUntil() != 11 {
		t.Fatalf("BusyUntil = %v, want 11", tl.BusyUntil())
	}
	if tl.BusyTime() != 6 {
		t.Fatalf("BusyTime = %v, want 6", tl.BusyTime())
	}
	if got := tl.Utilization(12); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
}

func TestTimelineZeroDurationNotRecorded(t *testing.T) {
	tl := NewTimeline("x")
	tl.Reserve(0, 0, "noop")
	if len(tl.Spans()) != 0 {
		t.Fatal("zero-duration reservations should not record spans")
	}
}

func TestTimelineNegativeDurationPanics(t *testing.T) {
	tl := NewTimeline("x")
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration should panic")
		}
	}()
	tl.Reserve(0, -1, "bad")
}

func TestTimelineReset(t *testing.T) {
	tl := NewTimeline("x")
	tl.Reserve(0, 5, "a")
	tl.Reset()
	if tl.BusyUntil() != 0 || len(tl.Spans()) != 0 {
		t.Fatal("Reset must clear state")
	}
}

func TestTimelineCloneIndependence(t *testing.T) {
	tl := NewTimeline("x")
	tl.Reserve(0, 2, "a")
	c := tl.Clone()
	c.Reserve(0, 3, "b")
	if tl.BusyUntil() != 2 {
		t.Fatalf("clone mutation leaked into original: %v", tl.BusyUntil())
	}
	if c.BusyUntil() != 5 {
		t.Fatalf("clone BusyUntil = %v, want 5", c.BusyUntil())
	}
}

func TestTimelineNoTraceSkipsSpans(t *testing.T) {
	tl := NewTimelineNoTrace("fast")
	tl.Reserve(0, 5, "a")
	if len(tl.Spans()) != 0 {
		t.Fatal("no-trace timeline should not record spans")
	}
	if tl.BusyUntil() != 5 {
		t.Fatal("no-trace timeline must still track busy time")
	}
}

func TestSpansAreCopies(t *testing.T) {
	tl := NewTimeline("x")
	tl.Reserve(0, 1, "a")
	spans := tl.Spans()
	spans[0].Name = "mutated"
	if tl.Spans()[0].Name != "a" {
		t.Fatal("Spans must return a copy")
	}
}

func TestUtilizationEdgeCases(t *testing.T) {
	tl := NewTimeline("x")
	if tl.Utilization(0) != 0 || tl.Utilization(-1) != 0 {
		t.Fatal("empty horizon utilization should be 0")
	}
}

// Property: reservations never overlap and never start before readyAt.
func TestTimelineNoOverlapQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		tl := NewTimeline("q")
		var prevEnd float64
		for i, r := range raw {
			ready := float64(r%16) * 0.5
			dur := float64(r%7) * 0.25
			s, e := tl.Reserve(ready, dur, "op")
			if s < ready || s < prevEnd || e != s+dur {
				return false
			}
			prevEnd = e
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGanttRendering(t *testing.T) {
	cpu := NewTimeline("CPU")
	gpu := NewTimeline("GPU")
	cpu.Reserve(0, 4, "A")
	gpu.Reserve(0, 2, "D")
	gpu.Reserve(2, 2, "C")
	out := Gantt(20, cpu, gpu)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt rows = %d, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[1], "D") {
		t.Fatalf("gantt missing span labels:\n%s", out)
	}
	if Gantt(20) != "" {
		t.Fatal("gantt of nothing should be empty")
	}
	empty := NewTimeline("e")
	if Gantt(20, empty) != "" {
		t.Fatal("gantt with zero horizon should be empty")
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	tl := NewTimeline("CPU")
	tl.Reserve(0, 1, "A")
	out := Gantt(0, tl)
	if !strings.Contains(out, "A") {
		t.Fatalf("default-width gantt broken:\n%s", out)
	}
}
