package sim

// entry is one queued item: a payload keyed by (At, seq).
type entry[T any] struct {
	at  float64
	seq int64
	v   T
}

// Queue is the deterministic timestamped min-queue the simulation core
// is built on: a binary min-heap keyed by (stamp, push order), so items
// pop in ascending stamp order with FIFO tie-break among equal stamps.
// It is the one event-queue implementation the engine's run loop, the
// cluster's dispatch queue and sim.Engine all share.
//
// Contract:
//
//   - Push(at, v) enqueues v at stamp `at`. Any stamp is accepted —
//     causality (refusing to schedule in the past) is the caller's
//     policy, not the queue's; sim.Engine enforces it, the Session's
//     arrival queue deliberately does not (late submissions of
//     already-arrived requests are legal).
//   - PopMin returns the queued item with the minimal (stamp, push
//     order) key. Two items at the same stamp pop in Push order, so a
//     run's event order is a pure function of its inputs.
//   - Entries are stored by value; the queue retains its backing
//     storage across Reset, so steady-state reuse allocates nothing.
//
// The zero value is an empty, usable queue. A Queue is not safe for
// concurrent use; every user drives it from one goroutine.
type Queue[T any] struct {
	h       []entry[T]
	nextSeq int64
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.h) }

// Push enqueues v at stamp at.
func (q *Queue[T]) Push(at float64, v T) {
	q.h = append(q.h, entry[T]{at: at, seq: q.nextSeq, v: v})
	q.nextSeq++
	q.up(len(q.h) - 1)
}

// PeekMin reports the minimal item without removing it; ok is false on
// an empty queue.
func (q *Queue[T]) PeekMin() (at float64, v T, ok bool) {
	if len(q.h) == 0 {
		return 0, v, false
	}
	return q.h[0].at, q.h[0].v, true
}

// PopMin removes and returns the minimal item; ok is false on an empty
// queue.
func (q *Queue[T]) PopMin() (at float64, v T, ok bool) {
	if len(q.h) == 0 {
		return 0, v, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = entry[T]{} // release the payload for the collector
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return top.at, top.v, true
}

// Reset empties the queue, keeping its backing storage for reuse. The
// push-order counter is not rewound; relative FIFO ordering across a
// Reset stays monotone.
func (q *Queue[T]) Reset() {
	clear(q.h)
	q.h = q.h[:0]
}

// Scan visits every queued item in unspecified (heap) order, for
// metrics that need a census — queue depth behind a stamp, payload
// sums — without disturbing the heap. Mutating the queue inside f is
// not allowed.
func (q *Queue[T]) Scan(f func(at float64, v T)) {
	for i := range q.h {
		f(q.h[i].at, q.h[i].v)
	}
}

// less orders entries by (stamp, push order).
func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

// up restores the heap invariant from child i toward the root.
func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// down restores the heap invariant from parent i toward the leaves.
func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}
