package reqsched

import "math"

// FCFS serves requests strictly in admission order: the earliest-admitted
// active request runs to completion before any later one advances.
type FCFS struct{}

// NewFCFS returns the first-come-first-served policy.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Next implements Scheduler: the lowest admission sequence wins.
func (FCFS) Next(_ float64, active []Request) int {
	best := 0
	for i := 1; i < len(active); i++ {
		if active[i].Seq < active[best].Seq {
			best = i
		}
	}
	return best
}

// Stepped implements Scheduler (stateless).
func (FCFS) Stepped(int, []int) {}

// RoundRobin cycles over the active set, one step each — the Session's
// historical hard-coded behaviour, kept as the default policy. The
// cursor stays in place when the stepped request finishes (the active
// slice closes up, so it already points at the successor) and wraps on
// the next pick.
type RoundRobin struct {
	cursor int
}

// NewRoundRobin returns the cycling policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Next implements Scheduler.
func (r *RoundRobin) Next(_ float64, active []Request) int {
	if r.cursor >= len(active) {
		r.cursor = 0
	}
	return r.cursor
}

// Stepped implements Scheduler: re-anchor the cursor on the picked
// request's post-compaction position — its old index minus every
// removal below it — then advance past it if it survived. Counting the
// whole removal set (not just the pick) keeps the rotation intact when
// a merged batch completes co-members at lower indices: with the old
// pick-only accounting the compaction shifted the slice under the
// cursor and the next pick skipped a request.
func (r *RoundRobin) Stepped(idx int, removed []int) {
	below, self := 0, false
	for _, i := range removed {
		if i < idx {
			below++
		}
		if i == idx {
			self = true
		}
	}
	r.cursor = idx - below
	if !self {
		r.cursor++
	}
}

// SJF is shortest-job-first by remaining decode tokens: the request
// closest to finishing advances, draining short requests early to cut
// mean completion time. Pending prefill work is deliberately not
// counted — the policy ranks on decode steps left, so a short-decode
// request runs its prompt forward first even when that prompt is large.
// Ties fall to higher priority, then admission order.
type SJF struct{}

// NewSJF returns the shortest-job-first policy.
func NewSJF() *SJF { return &SJF{} }

// Name implements Scheduler.
func (SJF) Name() string { return "sjf" }

// Next implements Scheduler.
func (SJF) Next(_ float64, active []Request) int {
	best := 0
	for i := 1; i < len(active); i++ {
		if sjfLess(active[i], active[best]) {
			best = i
		}
	}
	return best
}

func sjfLess(a, b Request) bool {
	if a.RemainingDecode != b.RemainingDecode {
		return a.RemainingDecode < b.RemainingDecode
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Seq < b.Seq
}

// Stepped implements Scheduler (stateless).
func (SJF) Stepped(int, []int) {}

// EDF is earliest-deadline-first: the request whose completion deadline
// expires soonest advances. Requests without a deadline sort after every
// deadlined one; ties fall to higher priority, then admission order.
type EDF struct{}

// NewEDF returns the deadline-aware policy.
func NewEDF() *EDF { return &EDF{} }

// Name implements Scheduler.
func (EDF) Name() string { return "edf" }

// Next implements Scheduler.
func (EDF) Next(_ float64, active []Request) int {
	best := 0
	for i := 1; i < len(active); i++ {
		if edfLess(active[i], active[best]) {
			best = i
		}
	}
	return best
}

func edfLess(a, b Request) bool {
	da, db := effectiveDeadline(a), effectiveDeadline(b)
	if da != db {
		return da < db
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Seq < b.Seq
}

func effectiveDeadline(r Request) float64 {
	if r.Deadline <= 0 {
		return math.Inf(1)
	}
	return r.Deadline
}

// Stepped implements Scheduler (stateless).
func (EDF) Stepped(int, []int) {}
