package reqsched

import (
	"fmt"
	"sort"
)

// Decoding reports whether the request's next step is a decode
// iteration (its prompt has run, or it never had one).
func (r Request) Decoding() bool { return r.Prefilled || r.PromptTokens <= 0 }

// StepTokens reports how many tokens the request contributes to its
// next engine iteration: the whole prompt at prefill, one at decode.
// Batch formers budget on it.
func (r Request) StepTokens() int {
	if r.Decoding() {
		return 1
	}
	return r.PromptTokens
}

// BatchPolicy forms the batch of requests that advance together as one
// merged engine iteration — the continuous-batching counterpart of
// Scheduler, which only orders requests. Form receives the scheduler's
// pick (lead) and returns the indices into active of every request to
// step this iteration. The returned slice must be non-empty, free of
// duplicates, within range and contain lead; its order is the order the
// Session emits the batch's StepEvents in. Returning just {lead}
// reproduces the unbatched loop exactly.
type BatchPolicy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Form picks this iteration's batch. active is never empty, lead is
	// a valid index into it, and now is the simulation clock.
	Form(now float64, active []Request, lead int) []int
}

// BatchFactory builds one batch former for a Session from the
// configured token budget. Factories validate the budget eagerly and
// return a descriptive error for values the policy cannot work with.
type BatchFactory func(budget int) (BatchPolicy, error)

var batchRegistry = map[string]BatchFactory{}

// RegisterBatch makes a batch former constructible by name through
// NewBatch. Registering a duplicate name or a nil factory panics: both
// are programming errors in plugin wiring, caught at init time.
func RegisterBatch(name string, f BatchFactory) {
	if name == "" {
		panic("reqsched: RegisterBatch with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("reqsched: RegisterBatch(%q) with nil factory", name))
	}
	if _, dup := batchRegistry[name]; dup {
		panic(fmt.Sprintf("reqsched: RegisterBatch(%q) called twice", name))
	}
	batchRegistry[name] = f
}

// NewBatch builds the named batch former with the given token budget,
// or returns a descriptive error for an unknown name or a budget the
// policy rejects.
func NewBatch(name string, budget int) (BatchPolicy, error) {
	f, ok := batchRegistry[name]
	if !ok {
		return nil, fmt.Errorf("reqsched: unknown batch policy %q (have %v)", name, BatchNames())
	}
	return f(budget)
}

// BatchNames lists the registered batch formers in sorted order.
func BatchNames() []string {
	out := make([]string, 0, len(batchRegistry))
	for name := range batchRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterBatch("none", func(int) (BatchPolicy, error) { return NoBatch{}, nil })
	RegisterBatch("greedy", func(budget int) (BatchPolicy, error) {
		if budget < 1 {
			return nil, fmt.Errorf("reqsched: greedy batch budget %d must be at least 1 token", budget)
		}
		return &GreedyBatch{Budget: budget}, nil
	})
	RegisterBatch("phase-aware", func(budget int) (BatchPolicy, error) {
		if budget < 1 {
			return nil, fmt.Errorf("reqsched: phase-aware batch budget %d must be at least 1 token", budget)
		}
		return &PhaseAwareBatch{Budget: budget}, nil
	})
}

// NoBatch advances only the scheduler's pick — the default, and
// behaviour-identical to the Session loop before batch formers existed.
// It accepts any budget (there is nothing to budget).
type NoBatch struct{}

// Name implements BatchPolicy.
func (NoBatch) Name() string { return "none" }

// Form implements BatchPolicy.
func (NoBatch) Form(_ float64, _ []Request, lead int) []int { return []int{lead} }

// GreedyBatch packs the merged iteration up to a token budget: the lead
// always rides (a batch must make progress even when the lead's prompt
// alone exceeds the budget), then the remaining active requests join in
// admission order while their step tokens fit. Phases may mix — a
// prefill chunk and decode tokens can share one iteration, the way
// chunked-prefill continuous batching fills leftover budget.
type GreedyBatch struct {
	// Budget is the maximum total step tokens per merged iteration.
	Budget int
}

// Name implements BatchPolicy.
func (*GreedyBatch) Name() string { return "greedy" }

// Form implements BatchPolicy.
func (g *GreedyBatch) Form(_ float64, active []Request, lead int) []int {
	batch := []int{lead}
	left := g.Budget - active[lead].StepTokens()
	for i := range active {
		if i == lead {
			continue
		}
		if cost := active[i].StepTokens(); cost <= left {
			batch = append(batch, i)
			left -= cost
		}
	}
	return batch
}

// PhaseAwareBatch packs like GreedyBatch but never mixes phases: a
// decode lead batches only with other decode-phase requests, a prefill
// lead only with other prefills still within budget. Keeping decode
// batches pure protects TBT from prefill-length iterations — the
// prefill/decode segregation production schedulers apply before
// resorting to chunking.
type PhaseAwareBatch struct {
	// Budget is the maximum total step tokens per merged iteration.
	Budget int
}

// Name implements BatchPolicy.
func (*PhaseAwareBatch) Name() string { return "phase-aware" }

// Form implements BatchPolicy.
func (p *PhaseAwareBatch) Form(_ float64, active []Request, lead int) []int {
	batch := []int{lead}
	phase := active[lead].Decoding()
	left := p.Budget - active[lead].StepTokens()
	for i := range active {
		if i == lead || active[i].Decoding() != phase {
			continue
		}
		if cost := active[i].StepTokens(); cost <= left {
			batch = append(batch, i)
			left -= cost
		}
	}
	return batch
}
