package reqsched

import (
	"fmt"
	"sort"
)

// Factory builds one scheduler instance for a Session. Stateful policies
// (the round-robin cursor) need a fresh instance per session, so the
// registry hands out factories rather than shared singletons.
type Factory func() Scheduler

var registry = map[string]Factory{}

// Register makes a request scheduler constructible by name through New.
// Registering a duplicate name or a nil factory panics: both are
// programming errors in plugin wiring, caught at init time.
func Register(name string, f Factory) {
	if name == "" {
		panic("reqsched: Register with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("reqsched: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("reqsched: Register(%q) called twice", name))
	}
	registry[name] = f
}

// New builds the named scheduler, or returns a descriptive error for an
// unknown name.
func New(name string) (Scheduler, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("reqsched: unknown request scheduler %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered schedulers in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("fcfs", func() Scheduler { return NewFCFS() })
	Register("round-robin", func() Scheduler { return NewRoundRobin() })
	Register("sjf", func() Scheduler { return NewSJF() })
	Register("edf", func() Scheduler { return NewEDF() })
}
