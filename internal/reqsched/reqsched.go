// Package reqsched implements request-level scheduling policies for the
// engine's streaming Session loop: given the set of in-flight requests,
// a policy picks which one advances by the next engine iteration. It
// mirrors the layer-level plugin registries (sched, cache, prefetch) so
// serving studies select the policy by name — FCFS, round-robin (the
// Session default), shortest-job-first and deadline-aware EDF among the
// built-ins — and third-party policies drop in through Register.
package reqsched

// Request is the scheduler's view of one in-flight request. It carries
// only what a policy may rank on, not the engine-side execution state.
type Request struct {
	// ID is the workload request ID (stable across the request's life).
	ID int
	// Seq is the admission order: request Seq i entered the active set
	// before Seq j for all i < j. Policies use it as the deterministic
	// final tie-break.
	Seq int
	// Priority ranks requests when the primary key ties; higher is more
	// urgent. 0 is the default for requests that never set one.
	Priority int
	// Deadline is the absolute simulation-clock completion target in
	// seconds; 0 means the request has no deadline.
	Deadline float64
	// Prefilled reports whether the prompt forward has run.
	Prefilled bool
	// PromptTokens is the prompt length (0 for decode-only bursts).
	PromptTokens int
	// RemainingDecode is the number of decode steps still to run.
	RemainingDecode int
}

// Scheduler picks the next request to advance. Implementations may keep
// state across calls (the round-robin cursor does); a Session owns one
// instance for its whole run.
type Scheduler interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Next returns the index into active of the request to step next.
	// active is never empty and now is the simulation clock. The index
	// must be in [0, len(active)).
	Next(now float64, active []Request) int
	// Stepped reports the outcome of the iteration the scheduler just
	// picked for: idx is the index it returned from Next, and removed
	// lists every index (into the active slice Next saw, ascending)
	// whose request finished this iteration and left the set. With
	// batch formers a merged iteration can complete co-members at any
	// index — not just the pick — and the active slice closes up over
	// all of them at once, so cursor-style policies need the full
	// removal set to keep their place. An unbatched step passes either
	// nil (the pick survived) or [idx] (the pick finished). Stateless
	// policies ignore it.
	Stepped(idx int, removed []int)
}
