package reqsched

import (
	"strings"
	"testing"
)

func TestRegistryRoundTripsBuiltins(t *testing.T) {
	for _, name := range []string{"fcfs", "round-robin", "sjf", "edf"} {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s == nil || s.Name() != name {
			t.Fatalf("New(%q) built scheduler named %q", name, s.Name())
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, want := range []string{"edf", "round-robin"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v missing %q", names, want)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("psychic")
	if err == nil {
		t.Fatal("unknown request scheduler should error")
	}
	// The error names the offender and lists what is available.
	if !strings.Contains(err.Error(), "psychic") || !strings.Contains(err.Error(), "round-robin") {
		t.Fatalf("error %q should name the unknown scheduler and the registered ones", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	assertPanics(t, "duplicate", func() {
		Register("round-robin", func() Scheduler { return NewRoundRobin() })
	})
	assertPanics(t, "empty name", func() {
		Register("", func() Scheduler { return NewFCFS() })
	})
	assertPanics(t, "nil factory", func() {
		Register("nil-factory", nil)
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s Register should panic", name)
		}
	}()
	f()
}

// TestFactoriesReturnFreshInstances pins the per-session isolation
// contract: stateful policies must not share cursors across sessions.
func TestFactoriesReturnFreshInstances(t *testing.T) {
	a, err := New("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	active := []Request{{ID: 0}, {ID: 1}}
	a.Next(0, active)
	a.Stepped(0, nil)
	// b's cursor must be untouched by a's progress.
	if got := b.Next(0, active); got != 0 {
		t.Fatalf("fresh round-robin started at index %d, want 0", got)
	}
}

// TestRegisterThirdParty registers a custom policy and builds it through
// the registry, the drop-in extension path the registries exist for.
func TestRegisterThirdParty(t *testing.T) {
	Register("test-third-party", func() Scheduler { return NewFCFS() })
	s, err := New("test-third-party")
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("third-party factory returned nil")
	}
}
