package reqsched

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestBatchRegistryNames(t *testing.T) {
	names := BatchNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("BatchNames not sorted: %v", names)
	}
	for _, want := range []string{"none", "greedy", "phase-aware"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("built-in batch policy %q missing from %v", want, names)
		}
	}
	for _, name := range names {
		p, err := NewBatch(name, 64)
		if err != nil {
			t.Fatalf("NewBatch(%q, 64): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("NewBatch(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestNewBatchUnknownName(t *testing.T) {
	_, err := NewBatch("no-such-batcher", 64)
	if err == nil {
		t.Fatal("unknown batch policy must error")
	}
	// The error names the registered set, like the scheduler registry.
	if msg := err.Error(); !strings.Contains(msg, "no-such-batcher") || !strings.Contains(msg, "greedy") {
		t.Fatalf("unhelpful unknown-name error: %v", err)
	}
}

func TestNewBatchBudgetValidation(t *testing.T) {
	for _, name := range []string{"greedy", "phase-aware"} {
		for _, budget := range []int{0, -1} {
			if _, err := NewBatch(name, budget); err == nil {
				t.Fatalf("NewBatch(%q, %d) accepted a non-positive budget", name, budget)
			}
		}
		if _, err := NewBatch(name, 1); err != nil {
			t.Fatalf("NewBatch(%q, 1): %v", name, err)
		}
	}
	// "none" has nothing to budget and accepts anything.
	for _, budget := range []int{-5, 0, 512} {
		if _, err := NewBatch("none", budget); err != nil {
			t.Fatalf("NewBatch(none, %d): %v", budget, err)
		}
	}
}

func TestRegisterBatchGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { RegisterBatch("", func(int) (BatchPolicy, error) { return NoBatch{}, nil }) })
	mustPanic("nil factory", func() { RegisterBatch("nil-batcher", nil) })
	mustPanic("duplicate", func() { RegisterBatch("none", func(int) (BatchPolicy, error) { return NoBatch{}, nil }) })
}

// batchActive is a mixed active set: indices 0 and 2 are decoding,
// 1 and 3 still owe their prefill, 4 is a decode-only burst.
func batchActive() []Request {
	return []Request{
		{ID: 0, Seq: 0, Prefilled: true, PromptTokens: 64, RemainingDecode: 3},
		{ID: 1, Seq: 1, PromptTokens: 40, RemainingDecode: 2},
		{ID: 2, Seq: 2, Prefilled: true, PromptTokens: 16, RemainingDecode: 5},
		{ID: 3, Seq: 3, PromptTokens: 200, RemainingDecode: 1},
		{ID: 4, Seq: 4, PromptTokens: 0, RemainingDecode: 2},
	}
}

func TestStepTokens(t *testing.T) {
	active := batchActive()
	want := []int{1, 40, 1, 200, 1}
	for i, r := range active {
		if got := r.StepTokens(); got != want[i] {
			t.Errorf("request %d StepTokens = %d, want %d", i, got, want[i])
		}
	}
	if active[1].Decoding() || !active[4].Decoding() {
		t.Error("Decoding misclassifies prefill-pending vs decode-only requests")
	}
}

func TestNoBatchFormsLeadOnly(t *testing.T) {
	p, _ := NewBatch("none", 0)
	for lead := range batchActive() {
		if got := p.Form(0, batchActive(), lead); !reflect.DeepEqual(got, []int{lead}) {
			t.Fatalf("none.Form(lead=%d) = %v, want [%d]", lead, got, lead)
		}
	}
}

func TestGreedyBatchPacksToBudget(t *testing.T) {
	p, _ := NewBatch("greedy", 43)
	// Lead 0 costs 1, leaving 42: request 1 (40 tokens) and the two
	// decode steps (1 each) fit; request 3 (200) does not.
	got := p.Form(0, batchActive(), 0)
	if want := []int{0, 1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("greedy.Form = %v, want %v", got, want)
	}
}

func TestGreedyBatchLeadAlwaysRides(t *testing.T) {
	p, _ := NewBatch("greedy", 8)
	// The lead's 200-token prompt exceeds the whole budget; it must
	// still advance (alone) or the loop would stall.
	got := p.Form(0, batchActive(), 3)
	if want := []int{3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("greedy.Form(over-budget lead) = %v, want %v", got, want)
	}
}

func TestPhaseAwareBatchSegregatesPhases(t *testing.T) {
	p, _ := NewBatch("phase-aware", 512)
	// Decode lead: every decode-phase request joins, no prefill does,
	// even though the budget has room for them.
	got := p.Form(0, batchActive(), 0)
	if want := []int{0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("phase-aware.Form(decode lead) = %v, want %v", got, want)
	}
	// Prefill lead: only the other prefill joins.
	got = p.Form(0, batchActive(), 1)
	if want := []int{1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("phase-aware.Form(prefill lead) = %v, want %v", got, want)
	}
	// A tight budget still segregates and still carries the lead.
	tight, _ := NewBatch("phase-aware", 1)
	got = tight.Form(0, batchActive(), 0)
	if want := []int{0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("phase-aware.Form(budget 1) = %v, want %v", got, want)
	}
}
