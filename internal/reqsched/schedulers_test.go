package reqsched

import (
	"reflect"
	"testing"

	"hybrimoe/internal/stats"
)

// drain simulates the Session's drive of a scheduler: each Next picks a
// request, one unit of decode work runs, and finished requests leave
// the active slice (which closes up, as in the Session). It returns the
// request IDs in completion order.
func drain(t *testing.T, s Scheduler, active []Request) []int {
	t.Helper()
	var completed []int
	for guard := 0; len(active) > 0; guard++ {
		if guard > 10000 {
			t.Fatal("scheduler failed to drain the active set")
		}
		idx := s.Next(0, active)
		if idx < 0 || idx >= len(active) {
			t.Fatalf("%s picked index %d of %d", s.Name(), idx, len(active))
		}
		active[idx].RemainingDecode--
		var removed []int
		if active[idx].RemainingDecode <= 0 {
			completed = append(completed, active[idx].ID)
			active = append(active[:idx], active[idx+1:]...)
			removed = []int{idx}
		}
		s.Stepped(idx, removed)
	}
	return completed
}

// fixedRequests draws a deterministic active set from a fixed seed:
// distinct decode lengths, deadlines and priorities so every policy
// has something to rank on.
func fixedRequests(seed uint64) []Request {
	rng := stats.NewRNG(seed)
	reqs := make([]Request, 5)
	for i := range reqs {
		reqs[i] = Request{
			ID:              i,
			Seq:             i,
			RemainingDecode: 1 + rng.Intn(8),
			Deadline:        0.5 + rng.Float64(),
			Priority:        rng.Intn(3),
			Prefilled:       true,
		}
	}
	return reqs
}

func TestFCFSDeterministicOrder(t *testing.T) {
	// FCFS drains strictly in admission order regardless of lengths.
	want := []int{0, 1, 2, 3, 4}
	for run := 0; run < 2; run++ {
		got := drain(t, NewFCFS(), fixedRequests(7))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FCFS completion order %v, want %v", got, want)
		}
	}
}

func TestSJFDeterministicOrder(t *testing.T) {
	reqs := fixedRequests(7)
	// Expected order: ascending remaining decode, ties by priority desc
	// then seq — computed independently of the scheduler.
	want := make([]Request, len(reqs))
	copy(want, reqs)
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if sjfLess(want[j], want[i]) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	var wantIDs []int
	for _, r := range want {
		wantIDs = append(wantIDs, r.ID)
	}
	got := drain(t, NewSJF(), reqs)
	if !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("SJF completion order %v, want %v", got, wantIDs)
	}
	// Same seed, same order: the policy is deterministic.
	again := drain(t, NewSJF(), fixedRequests(7))
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("SJF order not deterministic: %v then %v", got, again)
	}
}

func TestEDFDeterministicOrder(t *testing.T) {
	reqs := fixedRequests(7)
	want := make([]Request, len(reqs))
	copy(want, reqs)
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if edfLess(want[j], want[i]) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	var wantIDs []int
	for _, r := range want {
		wantIDs = append(wantIDs, r.ID)
	}
	got := drain(t, NewEDF(), reqs)
	if !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("EDF completion order %v, want %v", got, wantIDs)
	}
	again := drain(t, NewEDF(), fixedRequests(7))
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("EDF order not deterministic: %v then %v", got, again)
	}
}

// TestEDFNoDeadlineSortsLast pins the missing-deadline contract: a
// request without a deadline never preempts a deadlined one.
func TestEDFNoDeadlineSortsLast(t *testing.T) {
	active := []Request{
		{ID: 0, Seq: 0, RemainingDecode: 1},                 // no deadline
		{ID: 1, Seq: 1, RemainingDecode: 1, Deadline: 9.0},  // late deadline
		{ID: 2, Seq: 2, RemainingDecode: 1, Deadline: 0.25}, // urgent
	}
	got := drain(t, NewEDF(), active)
	if want := []int{2, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("EDF order %v, want %v", got, want)
	}
}

// TestRoundRobinCursorSemantics pins the exact historical Session
// behaviour: cycle one step each, hold the cursor in place when the
// stepped request finishes (the slice closed up), wrap at the end.
func TestRoundRobinCursorSemantics(t *testing.T) {
	active := []Request{
		{ID: 0, Seq: 0, RemainingDecode: 1},
		{ID: 1, Seq: 1, RemainingDecode: 2},
		{ID: 2, Seq: 2, RemainingDecode: 2},
	}
	rr := NewRoundRobin()
	var stepOrder []int
	for len(active) > 0 {
		idx := rr.Next(0, active)
		stepOrder = append(stepOrder, active[idx].ID)
		active[idx].RemainingDecode--
		var removed []int
		if active[idx].RemainingDecode <= 0 {
			active = append(active[:idx], active[idx+1:]...)
			removed = []int{idx}
		}
		rr.Stepped(idx, removed)
	}
	// Step 0: req 0 (finishes, cursor stays at 0 → now req 1);
	// step 1: req 1; step 2: req 2 (wrap logic untouched); then the
	// remaining steps alternate until both drain.
	want := []int{0, 1, 2, 1, 2}
	if !reflect.DeepEqual(stepOrder, want) {
		t.Fatalf("round-robin step order %v, want %v", stepOrder, want)
	}
}

// TestRoundRobinMultiRemovalKeepsRotation is the regression test for
// the batch-compaction cursor skew: when a merged iteration completes a
// co-member at an index below the cursor, the compaction shifts the
// active slice left and the cursor must shift with it. The old
// pick-only Stepped(idx, removedBool) accounting left the cursor one
// slot too far, so the next pick skipped a request — active [A,B,C,D]
// with the cursor on B and A completing in B's batch made the next pick
// land on D, starving C.
func TestRoundRobinMultiRemovalKeepsRotation(t *testing.T) {
	active := []Request{
		{ID: 0, Seq: 0}, // A
		{ID: 1, Seq: 1}, // B
		{ID: 2, Seq: 2}, // C
		{ID: 3, Seq: 3}, // D
	}
	rr := NewRoundRobin()
	if idx := rr.Next(0, active); active[idx].ID != 0 {
		t.Fatalf("first pick %d, want A", active[idx].ID)
	}
	rr.Stepped(0, nil) // A survives; cursor moves to B.
	if idx := rr.Next(0, active); active[idx].ID != 1 {
		t.Fatalf("second pick %d, want B", active[idx].ID)
	}
	// B's merged batch also advances A, and A completes: the slice
	// compacts to [B,C,D] while the pick (index 1) survives.
	active = active[1:]
	rr.Stepped(1, []int{0})
	idx := rr.Next(0, active)
	if active[idx].ID != 2 {
		t.Fatalf("pick after compaction %d, want C (the old cursor logic skips to D)", active[idx].ID)
	}
	rr.Stepped(idx, nil)
	if idx := rr.Next(0, active); active[idx].ID != 3 {
		t.Fatalf("rotation did not continue to D: picked %d", active[idx].ID)
	}
}

// TestRoundRobinServesEachOncePerRotation drives the cursor through
// randomized multi-removal iterations (the co-members of each batch
// completing at arbitrary indices) and checks the fairness invariant
// the Session relies on: between two consecutive steps of the same
// request, every other active request is served exactly once.
func TestRoundRobinServesEachOncePerRotation(t *testing.T) {
	rng := stats.NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		active := make([]Request, n)
		for i := range active {
			active[i] = Request{ID: i, Seq: i, RemainingDecode: 1 + rng.Intn(4)}
		}
		rr := NewRoundRobin()
		served := map[int]int{} // steps served per request
		for guard := 0; len(active) > 0; guard++ {
			if guard > 1000 {
				t.Fatal("rotation failed to drain")
			}
			idx := rr.Next(0, active)
			picked := active[idx].ID
			served[picked]++
			// The pick decodes one token; a random co-member (possibly
			// below the pick) may also advance and complete, the merged
			// batch case.
			var removed []int
			active[idx].RemainingDecode--
			co := rng.Intn(len(active))
			if co != idx {
				active[co].RemainingDecode--
			}
			for i := len(active) - 1; i >= 0; i-- {
				if active[i].RemainingDecode <= 0 {
					active = append(active[:i], active[i+1:]...)
					removed = append([]int{i}, removed...)
				}
			}
			rr.Stepped(idx, removed)
			// Fairness check: no live request is ever two full
			// rotations behind the front-runner.
			minS, maxS := 1<<30, 0
			for _, r := range active {
				s := served[r.ID]
				if s < minS {
					minS = s
				}
				if s > maxS {
					maxS = s
				}
			}
			if len(active) > 0 && maxS-minS > 1 {
				t.Fatalf("trial %d: rotation skew %d (served %v, active %v)", trial, maxS-minS, served, active)
			}
		}
	}
}
