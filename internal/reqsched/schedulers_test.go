package reqsched

import (
	"reflect"
	"testing"

	"hybrimoe/internal/stats"
)

// drain simulates the Session's drive of a scheduler: each Next picks a
// request, one unit of decode work runs, and finished requests leave
// the active slice (which closes up, as in the Session). It returns the
// request IDs in completion order.
func drain(t *testing.T, s Scheduler, active []Request) []int {
	t.Helper()
	var completed []int
	for guard := 0; len(active) > 0; guard++ {
		if guard > 10000 {
			t.Fatal("scheduler failed to drain the active set")
		}
		idx := s.Next(0, active)
		if idx < 0 || idx >= len(active) {
			t.Fatalf("%s picked index %d of %d", s.Name(), idx, len(active))
		}
		active[idx].RemainingDecode--
		removed := active[idx].RemainingDecode <= 0
		if removed {
			completed = append(completed, active[idx].ID)
			active = append(active[:idx], active[idx+1:]...)
		}
		s.Stepped(idx, removed)
	}
	return completed
}

// fixedRequests draws a deterministic active set from a fixed seed:
// distinct decode lengths, deadlines and priorities so every policy
// has something to rank on.
func fixedRequests(seed uint64) []Request {
	rng := stats.NewRNG(seed)
	reqs := make([]Request, 5)
	for i := range reqs {
		reqs[i] = Request{
			ID:              i,
			Seq:             i,
			RemainingDecode: 1 + rng.Intn(8),
			Deadline:        0.5 + rng.Float64(),
			Priority:        rng.Intn(3),
			Prefilled:       true,
		}
	}
	return reqs
}

func TestFCFSDeterministicOrder(t *testing.T) {
	// FCFS drains strictly in admission order regardless of lengths.
	want := []int{0, 1, 2, 3, 4}
	for run := 0; run < 2; run++ {
		got := drain(t, NewFCFS(), fixedRequests(7))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FCFS completion order %v, want %v", got, want)
		}
	}
}

func TestSJFDeterministicOrder(t *testing.T) {
	reqs := fixedRequests(7)
	// Expected order: ascending remaining decode, ties by priority desc
	// then seq — computed independently of the scheduler.
	want := make([]Request, len(reqs))
	copy(want, reqs)
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if sjfLess(want[j], want[i]) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	var wantIDs []int
	for _, r := range want {
		wantIDs = append(wantIDs, r.ID)
	}
	got := drain(t, NewSJF(), reqs)
	if !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("SJF completion order %v, want %v", got, wantIDs)
	}
	// Same seed, same order: the policy is deterministic.
	again := drain(t, NewSJF(), fixedRequests(7))
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("SJF order not deterministic: %v then %v", got, again)
	}
}

func TestEDFDeterministicOrder(t *testing.T) {
	reqs := fixedRequests(7)
	want := make([]Request, len(reqs))
	copy(want, reqs)
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if edfLess(want[j], want[i]) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	var wantIDs []int
	for _, r := range want {
		wantIDs = append(wantIDs, r.ID)
	}
	got := drain(t, NewEDF(), reqs)
	if !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("EDF completion order %v, want %v", got, wantIDs)
	}
	again := drain(t, NewEDF(), fixedRequests(7))
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("EDF order not deterministic: %v then %v", got, again)
	}
}

// TestEDFNoDeadlineSortsLast pins the missing-deadline contract: a
// request without a deadline never preempts a deadlined one.
func TestEDFNoDeadlineSortsLast(t *testing.T) {
	active := []Request{
		{ID: 0, Seq: 0, RemainingDecode: 1},                 // no deadline
		{ID: 1, Seq: 1, RemainingDecode: 1, Deadline: 9.0},  // late deadline
		{ID: 2, Seq: 2, RemainingDecode: 1, Deadline: 0.25}, // urgent
	}
	got := drain(t, NewEDF(), active)
	if want := []int{2, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("EDF order %v, want %v", got, want)
	}
}

// TestRoundRobinCursorSemantics pins the exact historical Session
// behaviour: cycle one step each, hold the cursor in place when the
// stepped request finishes (the slice closed up), wrap at the end.
func TestRoundRobinCursorSemantics(t *testing.T) {
	active := []Request{
		{ID: 0, Seq: 0, RemainingDecode: 1},
		{ID: 1, Seq: 1, RemainingDecode: 2},
		{ID: 2, Seq: 2, RemainingDecode: 2},
	}
	rr := NewRoundRobin()
	var stepOrder []int
	for len(active) > 0 {
		idx := rr.Next(0, active)
		stepOrder = append(stepOrder, active[idx].ID)
		active[idx].RemainingDecode--
		removed := active[idx].RemainingDecode <= 0
		if removed {
			active = append(active[:idx], active[idx+1:]...)
		}
		rr.Stepped(idx, removed)
	}
	// Step 0: req 0 (finishes, cursor stays at 0 → now req 1);
	// step 1: req 1; step 2: req 2 (wrap logic untouched); then the
	// remaining steps alternate until both drain.
	want := []int{0, 1, 2, 1, 2}
	if !reflect.DeepEqual(stepOrder, want) {
		t.Fatalf("round-robin step order %v, want %v", stepOrder, want)
	}
}
