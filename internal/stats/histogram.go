package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Observations
// outside the range are clamped into the first or last bin so totals are
// preserved. Construct with NewHistogram.
type Histogram struct {
	lo, hi float64
	bins   []int64
	total  int64
}

// NewHistogram returns a histogram with nbins equal-width bins spanning
// [lo, hi). It panics on a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: histogram range [%v,%v) is empty", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.total++
}

// Total reports the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Bin reports the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins reports the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinCenter reports the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + (float64(i)+0.5)*w
}

// CDF returns cumulative fractions per bin upper edge; the last entry is
// always 1 when any observation has been recorded.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.bins))
	var cum int64
	for i, b := range h.bins {
		cum += b
		if h.total > 0 {
			out[i] = float64(cum) / float64(h.total)
		}
	}
	return out
}

// Sparkline renders the histogram as a one-line unicode bar chart, which
// keeps experiment logs compact.
func (h *Histogram) Sparkline() string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var max int64
	for _, b := range h.bins {
		if b > max {
			max = b
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(h.bins))
	}
	var sb strings.Builder
	for _, b := range h.bins {
		idx := int(float64(b) / float64(max) * float64(len(glyphs)-1))
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}

// FrequencyCDF computes the cumulative-share curve used by the paper's
// Figure 3(a): given per-item activation counts, it sorts items by
// descending frequency and returns, for each prefix of items, the
// cumulative fraction of all activations they account for. The returned
// slice has one entry per item; entry i is the share covered by the
// (i+1) most-active items.
//
// A strongly skewed process (neuron sparsity) saturates quickly; MoE
// expert activations rise much more gradually.
func FrequencyCDF(counts []int64) []float64 {
	sorted := make([]int64, len(counts))
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total int64
	for _, c := range sorted {
		total += c
	}
	out := make([]float64, len(sorted))
	var cum int64
	for i, c := range sorted {
		cum += c
		if total > 0 {
			out[i] = float64(cum) / float64(total)
		}
	}
	return out
}

// GiniCoefficient summarises the skew of a frequency distribution in
// [0, 1]: 0 is perfectly even, 1 maximally concentrated. Used by tests to
// assert that the synthetic neuron process is more skewed than the expert
// process, matching Figure 3(a).
func GiniCoefficient(counts []int64) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	for i, c := range counts {
		sorted[i] = float64(c)
	}
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, v := range sorted {
		cum += v
		weighted += float64(i+1) * v
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// Entropy computes the Shannon entropy (nats) of the normalised counts.
func Entropy(counts []int64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log(p)
	}
	return h
}
