package stats

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 16; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	var acc Running
	for i := 0; i < 50000; i++ {
		acc.Add(r.Float64())
	}
	if math.Abs(acc.Mean()-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ≈0.5", acc.Mean())
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(3)
	var acc Running
	for i := 0; i < 50000; i++ {
		acc.Add(r.Norm())
	}
	if math.Abs(acc.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", acc.Mean())
	}
	if math.Abs(acc.StdDev()-1) > 0.02 {
		t.Errorf("normal sd = %v, want ≈1", acc.StdDev())
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) should hit all values over 1000 draws, hit %d", len(seen))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Intn(0) should panic")
			}
		}()
		r.Intn(0)
	}()
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(5)
	var acc Running
	for i := 0; i < 50000; i++ {
		acc.Add(r.Exp(2))
	}
	if math.Abs(acc.Mean()-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ≈0.5", acc.Mean())
	}
}

func TestRNGZipfSkew(t *testing.T) {
	r := NewRNG(6)
	counts := make([]int64, 50)
	for i := 0; i < 20000; i++ {
		counts[r.Zipf(50, 1.2)]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("zipf should concentrate on low indices: c0=%d c10=%d", counts[0], counts[10])
	}
	g := GiniCoefficient(counts)
	if g < 0.4 {
		t.Errorf("zipf(1.2) gini = %v, want strongly skewed (>0.4)", g)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(7)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(8)
	child := parent.Split()
	// A few draws from each should not be identical streams.
	same := true
	for i := 0; i < 8; i++ {
		if parent.Uint64() != child.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("split child mirrors parent stream")
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(9)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
