package stats

import (
	"math"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2.5*v + 1.25
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2.5, 1e-12) || !almostEq(fit.Intercept, 1.25, 1e-12) {
		t.Fatalf("fit = %v, want slope 2.5 intercept 1.25", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Fatalf("R² = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); !almostEq(got, 26.25, 1e-12) {
		t.Fatalf("predict(10) = %v, want 26.25", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := NewRNG(99)
	var x, y []float64
	for i := 0; i < 400; i++ {
		xi := rng.Float64() * 100
		x = append(x, xi)
		y = append(y, 3*xi+7+rng.NormMeanStd(0, 0.5))
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.05 {
		t.Errorf("slope = %v, want ≈3", fit.Slope)
	}
	if math.Abs(fit.Intercept-7) > 0.5 {
		t.Errorf("intercept = %v, want ≈7", fit.Intercept)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %v, want >0.99", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("fit with one point should error")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 0, 1e-12) || !almostEq(fit.Intercept, 5, 1e-12) {
		t.Fatalf("constant-y fit = %v", fit)
	}
	if fit.R2 != 1 {
		t.Fatalf("constant-y R² = %v, want 1 by convention", fit.R2)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := PearsonCorrelation(x, []float64{2, 4, 6, 8}); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", got)
	}
	if got := PearsonCorrelation(x, []float64{8, 6, 4, 2}); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", got)
	}
	if got := PearsonCorrelation(x, []float64{1, 1, 1, 1}); !math.IsNaN(got) {
		t.Errorf("correlation with constant should be NaN, got %v", got)
	}
	if got := PearsonCorrelation(x, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("length mismatch should be NaN, got %v", got)
	}
}

func TestSpearmanCorrelation(t *testing.T) {
	// Monotone but nonlinear relation: Spearman 1, Pearson < 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if got := SpearmanCorrelation(x, y); !almostEq(got, 1, 1e-12) {
		t.Errorf("spearman of monotone relation = %v, want 1", got)
	}
	if p := PearsonCorrelation(x, y); p >= 1 {
		t.Errorf("pearson of cubic should be <1, got %v", p)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}
