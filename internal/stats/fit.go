package stats

import (
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary least-squares fit y = Slope*x +
// Intercept. R2 is the coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear performs an ordinary least-squares fit of y against x. It
// returns an error when fewer than two points are supplied, the slices
// disagree in length, or all x values coincide.
//
// The hardware calibration phase (internal/hw) uses this to turn measured
// kernel timings into the linear CPU cost model the paper's warm-up phase
// produces.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: fit length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("stats: fit needs at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: fit degenerate, all x equal %v", mx)
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range x {
			r := y[i] - (slope*x[i] + intercept)
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// String renders the fit compactly.
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.6g*x + %.6g (R²=%.4f)", f.Slope, f.Intercept, f.R2)
}

// PearsonCorrelation computes the linear correlation coefficient of two
// equal-length series, or NaN when undefined. Tests use it to assert the
// inter-layer score similarity the prefetcher exploits.
func PearsonCorrelation(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return math.NaN()
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SpearmanCorrelation computes the rank correlation of two equal-length
// series. The score-aware cache relies on rank structure (top scores
// persist), which tests verify with this helper.
func SpearmanCorrelation(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return math.NaN()
	}
	return PearsonCorrelation(ranks(x), ranks(y))
}

func ranks(xs []float64) []float64 {
	type iv struct {
		idx int
		v   float64
	}
	tmp := make([]iv, len(xs))
	for i, v := range xs {
		tmp[i] = iv{i, v}
	}
	// Insertion sort keeps this dependency-free and is fine at the small
	// sizes (≤ number of experts) it is used for.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j].v < tmp[j-1].v; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	out := make([]float64, len(xs))
	i := 0
	for i < len(tmp) {
		j := i
		for j+1 < len(tmp) && tmp[j+1].v == tmp[i].v {
			j++
		}
		// Average rank over ties.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[tmp[k].idx] = avg
		}
		i = j + 1
	}
	return out
}
