package stats

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 seeded
// xoshiro256**). Every stochastic component in the reproduction takes an
// explicit *RNG so experiments are exactly repeatable and goroutine-local
// generators need no locking.
type RNG struct {
	s [4]uint64
	// Cached second normal variate from the Box-Muller transform.
	gauss    float64
	hasGauss bool
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets r to the exact state NewRNG(seed) returns — same lanes,
// no cached Box-Muller variate — so a long-lived generator can be
// re-aimed at a derived stream without allocating a fresh one on a hot
// path.
func (r *RNG) Reseed(seed uint64) {
	// splitmix64 expansion of the seed into four lanes.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	r.gauss, r.hasGauss = 0, false
}

// Split derives an independent child generator; streams from parent and
// child do not overlap in practice. Used to give each layer/iteration its
// own stream without coupling draw order across components.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for u == 0 {
		u = r.Float64()
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// NormMeanStd returns a normal sample with the given mean and standard
// deviation.
func (r *RNG) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Exp returns an exponential sample with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Zipf returns a sample in [0, n) from a Zipf-like distribution with
// exponent s > 0. For repeated sampling at the same (n, s) prefer
// NewZipf, which precomputes the inverse-CDF table once.
func (r *RNG) Zipf(n int, s float64) int {
	return NewZipf(n, s).Sample(r)
}

// Zipf samples from a fixed Zipf-like distribution over [0, n) with
// exponent s via binary search on a precomputed CDF. It is used by the
// neuron-sparsity reference process (highly skewed activations).
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the sampling table. It panics on non-positive n.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	z := &Zipf{cdf: make([]float64, n)}
	var cum float64
	for i := 1; i <= n; i++ {
		cum += 1 / math.Pow(float64(i), s)
		z.cdf[i-1] = cum
	}
	total := z.cdf[n-1]
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	return z
}

// Sample draws one value in [0, n) using r.
func (z *Zipf) Sample(r *RNG) int {
	target := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
