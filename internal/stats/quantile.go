package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample collects observations for exact quantile queries. It is meant
// for experiment-scale data (thousands of points), not unbounded streams.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddN records every value in xs.
func (s *Sample) AddN(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It panics when the sample is
// empty or q is out of range.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median is shorthand for Quantile(0.5).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean reports the arithmetic mean, or 0 when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Values returns a copy of the recorded observations in insertion order
// when unsorted, or sorted order after a quantile query.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Summary holds the standard five-number summary plus mean, handy for
// experiment tables.
type Summary struct {
	N                          int
	Min, P25, Median, P75, Max float64
	Mean                       float64
}

// Summarize computes a Summary of the sample. It panics on empty input.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      len(s.xs),
		Min:    s.Quantile(0),
		P25:    s.Quantile(0.25),
		Median: s.Quantile(0.5),
		P75:    s.Quantile(0.75),
		Max:    s.Quantile(1),
		Mean:   s.Mean(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.P25, s.Median, s.P75, s.Max, s.Mean)
}
