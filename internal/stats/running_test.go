package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Fatalf("zero-value Running should report zeros, got %v", r.String())
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(42)
	if r.N() != 1 || r.Mean() != 42 || r.Variance() != 0 {
		t.Fatalf("single observation: %v", r.String())
	}
	if r.Min() != 42 || r.Max() != 42 {
		t.Fatalf("min/max after single add: %v", r.String())
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	r.AddN([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := r.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Unbiased sample variance of this classic dataset is 32/7.
	if got, want := r.Variance(), 32.0/7.0; !almostEq(got, want, 1e-12) {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if got := r.Sum(); !almostEq(got, 40, 1e-12) {
		t.Errorf("sum = %v, want 40", got)
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	rng := NewRNG(7)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormMeanStd(3, 11)
	}
	var whole Running
	whole.AddN(xs)
	var a, b Running
	a.AddN(xs[:123])
	b.AddN(xs[123:])
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged n=%d, want %d", a.N(), whole.N())
	}
	if !almostEq(a.Mean(), whole.Mean(), 1e-10) {
		t.Errorf("merged mean %v vs %v", a.Mean(), whole.Mean())
	}
	if !almostEq(a.Variance(), whole.Variance(), 1e-10) {
		t.Errorf("merged variance %v vs %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max %v/%v vs %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestRunningMergeIntoEmpty(t *testing.T) {
	var a, b Running
	b.AddN([]float64{1, 2, 3})
	a.Merge(&b)
	if a.N() != 3 || a.Mean() != 2 {
		t.Fatalf("merge into empty: %v", a.String())
	}
	var c Running
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 3 {
		t.Fatalf("merge of empty changed state: %v", a.String())
	}
}

// Property: variance is never negative and mean stays within [min, max].
func TestRunningInvariantsQuick(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		n := 0
		for _, x := range xs {
			// Skip non-finite and astronomically large inputs whose
			// squared deltas overflow float64; they are outside the
			// accumulator's supported domain.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				continue
			}
			r.Add(x)
			n++
		}
		if n == 0 {
			return true
		}
		return r.Variance() >= 0 && r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Primed() {
		t.Fatal("fresh EMA should not be primed")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first observation should initialise exactly, got %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("EMA(0.5) after 10,20 = %v, want 15", e.Value())
	}
	e.Add(15)
	if e.Value() != 15 {
		t.Fatalf("EMA stable point moved: %v", e.Value())
	}
}

func TestEMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEMA(%v) should panic", alpha)
				}
			}()
			NewEMA(alpha)
		}()
	}
}

func TestEMAConvergesToConstant(t *testing.T) {
	e := NewEMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(7)
	}
	if !almostEq(e.Value(), 7, 1e-12) {
		t.Fatalf("EMA of constant stream = %v, want 7", e.Value())
	}
}
