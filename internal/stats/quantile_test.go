package stats

import (
	"testing"
	"testing/quick"
)

func TestSampleQuantileKnown(t *testing.T) {
	var s Sample
	s.AddN([]float64{1, 2, 3, 4, 5})
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleQuantileInterpolates(t *testing.T) {
	var s Sample
	s.AddN([]float64{0, 10})
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	if got := s.Quantile(0.1); got != 1 {
		t.Errorf("quantile(0.1) = %v, want 1", got)
	}
}

func TestSampleSingleElement(t *testing.T) {
	var s Sample
	s.Add(3)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 3 {
			t.Errorf("quantile(%v) of singleton = %v", q, got)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	var empty Sample
	func() {
		defer func() {
			if recover() == nil {
				t.Error("quantile of empty sample should panic")
			}
		}()
		empty.Quantile(0.5)
	}()
	var s Sample
	s.Add(1)
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("quantile(%v) should panic", q)
				}
			}()
			s.Quantile(q)
		}()
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.AddN([]float64{5, 1})
	if got := s.Median(); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	s.Add(100)
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("max after re-add = %v, want 100", got)
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	s.AddN([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	sum := s.Summarize()
	if sum.N != 9 || sum.Min != 1 || sum.Median != 5 || sum.Max != 9 {
		t.Fatalf("summary wrong: %v", sum)
	}
	if sum.Mean != 5 {
		t.Errorf("mean = %v, want 5", sum.Mean)
	}
	if len(sum.String()) == 0 {
		t.Error("summary string should be non-empty")
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []int16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		va, vb := s.Quantile(a), s.Quantile(b)
		return va <= vb+1e-9 && va >= s.Quantile(0)-1e-9 && vb <= s.Quantile(1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleValuesCopy(t *testing.T) {
	var s Sample
	s.AddN([]float64{3, 1, 2})
	vs := s.Values()
	vs[0] = 999
	if s.Values()[0] == 999 {
		t.Fatal("Values must return a copy")
	}
}
