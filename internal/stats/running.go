// Package stats provides small statistical utilities used throughout the
// HybriMoE reproduction: online moment accumulators, exponential moving
// averages, histograms, empirical CDFs, quantiles and least-squares fits.
//
// The package is dependency-free and deterministic; every consumer that
// needs randomness supplies its own seeded source.
package stats

import (
	"fmt"
	"math"
)

// Running accumulates count, mean and variance of a stream of float64
// observations using Welford's online algorithm. The zero value is ready
// to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN folds every value in xs into the accumulator.
func (r *Running) AddN(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N reports the number of observations seen so far.
func (r *Running) N() int64 { return r.n }

// Mean reports the arithmetic mean of the observations, or 0 when empty.
func (r *Running) Mean() float64 { return r.mean }

// Min reports the smallest observation, or 0 when empty.
func (r *Running) Min() float64 { return r.min }

// Max reports the largest observation, or 0 when empty.
func (r *Running) Max() float64 { return r.max }

// Variance reports the unbiased sample variance, or 0 with fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev reports the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Sum reports mean*n, the total of all observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// String renders a compact human-readable summary.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// Merge combines another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// EMA is an exponential moving average with smoothing factor alpha in
// (0, 1]. Larger alpha weights recent observations more heavily. The zero
// value is invalid; construct with NewEMA.
type EMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEMA returns an EMA with the given smoothing factor. It panics if
// alpha is outside (0, 1].
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EMA alpha %v out of (0,1]", alpha))
	}
	return &EMA{alpha: alpha}
}

// Add folds one observation into the average. The first observation
// initialises the average exactly.
func (e *EMA) Add(x float64) {
	if !e.primed {
		e.value, e.primed = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value reports the current average, or 0 before any observation.
func (e *EMA) Value() float64 { return e.value }

// Primed reports whether at least one observation has been added.
func (e *EMA) Primed() bool { return e.primed }
