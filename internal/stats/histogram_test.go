package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d, want 10", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("CDF should end at 1, got %v", cdf[len(cdf)-1])
	}
	if cdf[4] != 0.5 {
		t.Errorf("CDF midpoint = %v, want 0.5", cdf[4])
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(17)
	if h.Bin(0) != 1 || h.Bin(3) != 1 {
		t.Fatalf("out-of-range values should clamp to edge bins: %v %v", h.Bin(0), h.Bin(3))
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d, want 2", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("center(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("center(4) = %v, want 9", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic from invalid histogram construction")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramSparkline(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	if got := len([]rune(h.Sparkline())); got != 4 {
		t.Fatalf("sparkline of empty histogram has %d runes, want 4", got)
	}
	h.Add(0.5)
	h.Add(0.5)
	h.Add(2.5)
	line := []rune(h.Sparkline())
	if line[0] <= line[2] {
		t.Errorf("taller bin should use taller glyph: %q", string(line))
	}
}

func TestFrequencyCDFUniformVsSkewed(t *testing.T) {
	uniform := []int64{10, 10, 10, 10}
	skewed := []int64{97, 1, 1, 1}
	u := FrequencyCDF(uniform)
	s := FrequencyCDF(skewed)
	if u[0] != 0.25 {
		t.Errorf("uniform first share = %v, want 0.25", u[0])
	}
	if s[0] != 0.97 {
		t.Errorf("skewed first share = %v, want 0.97", s[0])
	}
	if u[3] != 1 || s[3] != 1 {
		t.Errorf("CDFs must end at 1: %v %v", u[3], s[3])
	}
}

func TestFrequencyCDFEmptyAndZero(t *testing.T) {
	if got := FrequencyCDF(nil); len(got) != 0 {
		t.Errorf("empty input should yield empty output, got %v", got)
	}
	got := FrequencyCDF([]int64{0, 0})
	for _, v := range got {
		if v != 0 {
			t.Errorf("all-zero counts should yield zero shares, got %v", got)
		}
	}
}

// Property: FrequencyCDF is non-decreasing and bounded by [0,1].
func TestFrequencyCDFMonotoneQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		counts := make([]int64, len(raw))
		for i, v := range raw {
			counts[i] = int64(v)
		}
		cdf := FrequencyCDF(counts)
		prev := 0.0
		for _, v := range cdf {
			if v < prev-1e-12 || v < 0 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGiniCoefficient(t *testing.T) {
	if g := GiniCoefficient([]int64{5, 5, 5, 5}); !almostEq(g, 0, 1e-12) {
		t.Errorf("gini of even distribution = %v, want 0", g)
	}
	gSkew := GiniCoefficient([]int64{100, 0, 0, 0})
	gEven := GiniCoefficient([]int64{30, 25, 25, 20})
	if gSkew <= gEven {
		t.Errorf("skewed gini %v should exceed even gini %v", gSkew, gEven)
	}
	if g := GiniCoefficient(nil); g != 0 {
		t.Errorf("gini of empty = %v, want 0", g)
	}
	if g := GiniCoefficient([]int64{0, 0}); g != 0 {
		t.Errorf("gini of zeros = %v, want 0", g)
	}
}

func TestEntropy(t *testing.T) {
	// Uniform over 4 outcomes: ln 4.
	if got, want := Entropy([]int64{1, 1, 1, 1}), math.Log(4); !almostEq(got, want, 1e-12) {
		t.Errorf("entropy = %v, want %v", got, want)
	}
	if got := Entropy([]int64{10, 0, 0}); !almostEq(got, 0, 1e-12) {
		t.Errorf("degenerate entropy = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("empty entropy = %v, want 0", got)
	}
}
