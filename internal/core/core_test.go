package core

import (
	"strings"
	"testing"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{Model: moe.DeepSeek(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Decode(5)
	if res.Framework != "HybriMoE" {
		t.Fatalf("default framework = %q", res.Framework)
	}
	if res.Mean() <= 0 {
		t.Fatal("decode produced no latency")
	}
	if hr := sys.CacheHitRate(); hr <= 0 || hr > 1 {
		t.Fatalf("hit rate %v", hr)
	}
}

func TestNewSystemRequiresModel(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("missing model should error")
	}
}

func TestNewSystemPropagatesEngineErrors(t *testing.T) {
	bad := engine.HybriMoEFramework()
	bad.CachePolicy = "bogus"
	_, err := NewSystem(Config{Model: moe.DeepSeek(), Framework: &bad})
	if err == nil {
		t.Fatal("bad framework should error")
	}
}

func TestPrefillAndGantt(t *testing.T) {
	sys, err := NewSystem(Config{
		Model:       moe.DeepSeek(),
		Platform:    hw.A6000Platform(),
		CacheRatio:  0.5,
		Seed:        2,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Prefill(64)
	if res.Total <= 0 {
		t.Fatal("prefill produced no latency")
	}
	g := sys.Gantt(50)
	if !strings.Contains(g, "GPU") || !strings.Contains(g, "CPU") {
		t.Fatalf("gantt missing resources:\n%s", g)
	}
	if sys.Engine() == nil {
		t.Fatal("engine accessor broken")
	}
}

func TestCompareFrameworks(t *testing.T) {
	res, err := CompareFrameworks(moe.DeepSeek(), hw.A6000Platform(), 0.25, 3, true, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("frameworks compared = %d, want 4", len(res))
	}
	for name, lat := range res {
		if lat <= 0 {
			t.Fatalf("%s latency %v", name, lat)
		}
	}
	if res["HybriMoE"] > res["KTransformers"] {
		t.Fatalf("HybriMoE (%v) should not trail kTransformers (%v)",
			res["HybriMoE"], res["KTransformers"])
	}
}

func TestCompareFrameworksPropagatesErrors(t *testing.T) {
	badPlatform := hw.A6000Platform()
	badPlatform.GPUs[0].PeakFlops = 0
	if _, err := CompareFrameworks(moe.DeepSeek(), badPlatform, 0.25, 3, true, 2); err == nil {
		t.Fatal("invalid platform should error")
	}
}
