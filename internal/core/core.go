// Package core is the top-level API of the HybriMoE reproduction: it
// wires the paper's three techniques — dynamic hybrid CPU-GPU scheduling
// (internal/sched), impact-driven prefetching (internal/prefetch) and
// score-aware MRS caching (internal/cache) — into a runnable system over
// the simulated hardware platform (internal/hw) and synthetic routing
// traces (internal/trace).
//
// Typical use:
//
//	sys, err := core.NewSystem(core.Config{
//		Model:      moe.DeepSeek(),
//		Platform:   hw.A6000Platform(),
//		CacheRatio: 0.25,
//	})
//	res := sys.Decode(50)
//	fmt.Printf("TBT %.4fs, hit rate %.1f%%\n", res.Mean(), 100*res.Stats.CacheHitRate)
//
// Baseline frameworks (kTransformers, AdapMoE, llama.cpp) are selected
// through Config.Framework for comparative studies.
package core

import (
	"fmt"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
)

// Config describes one system instance.
type Config struct {
	// Model is the MoE architecture to serve (moe.Mixtral, moe.Qwen2,
	// moe.DeepSeek or a custom configuration).
	Model *moe.Config
	// Platform is the hardware cost model (hw.A6000Platform by
	// default).
	Platform *hw.Platform
	// Framework selects the scheduling/caching/prefetching stack; the
	// HybriMoE stack when zero-valued.
	Framework *engine.Framework
	// CacheRatio is the GPU expert cache ratio in (0, 1]; 0.25 when 0.
	CacheRatio float64
	// Seed drives the synthetic routing trace (deterministic runs).
	Seed uint64
	// RecordTrace retains execution timelines for Gantt rendering.
	RecordTrace bool
}

// System is a ready-to-run inference simulation.
type System struct {
	cfg Config
	eng *engine.Engine
}

// NewSystem validates cfg, builds the framework stack and warm-starts
// the expert cache.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: Config.Model is required")
	}
	if cfg.Platform == nil {
		cfg.Platform = hw.A6000Platform()
	}
	fw := engine.HybriMoEFramework()
	if cfg.Framework != nil {
		fw = *cfg.Framework
	}
	opts := []engine.Option{engine.WithSeed(cfg.Seed)}
	if cfg.CacheRatio != 0 {
		// The facade keeps its documented "0.25 when 0" convention; the
		// engine's WithCacheRatio(0) means a literal zero-cache baseline.
		opts = append(opts, engine.WithCacheRatio(cfg.CacheRatio))
	}
	if cfg.RecordTrace {
		opts = append(opts, engine.WithTraceRecording())
	}
	eng, err := engine.New(cfg.Model, cfg.Platform, fw, opts...)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, eng: eng}, nil
}

// Decode runs steps decode iterations and returns per-step latencies
// (the paper's TBT metric).
func (s *System) Decode(steps int) engine.Result { return s.eng.RunDecode(steps) }

// Session starts a streaming serving loop on the system's engine: submit
// workload requests and call Step (or Run) to interleave prefill and
// decode with per-iteration events.
func (s *System) Session(opts ...engine.SessionOption) *engine.Session {
	return s.eng.NewSession(opts...)
}

// Prefill runs one prefill forward over tokens prompt tokens and
// returns its latency (the paper's TTFT metric).
func (s *System) Prefill(tokens int) engine.Result { return s.eng.RunPrefill(tokens) }

// CacheHitRate reports the expert cache hit rate so far, aggregated
// across every GPU's shard on multi-GPU platforms.
func (s *System) CacheHitRate() float64 { return s.eng.Caches().HitRate() }

// Gantt renders the execution timelines recorded with
// Config.RecordTrace ("" otherwise).
func (s *System) Gantt(width int) string { return s.eng.Gantt(width) }

// Engine exposes the underlying engine for advanced use (ablations,
// custom prefetchers).
func (s *System) Engine() *engine.Engine { return s.eng }

// CompareFrameworks runs the same workload across the four compared
// frameworks and returns framework name → mean step latency. decode
// selects the stage; steps is decode iterations or prefill tokens.
func CompareFrameworks(model *moe.Config, platform *hw.Platform, ratio float64, seed uint64, decode bool, steps int) (map[string]float64, error) {
	out := make(map[string]float64, 4)
	for _, fw := range engine.AllFrameworks() {
		fw := fw
		sys, err := NewSystem(Config{
			Model:      model,
			Platform:   platform,
			Framework:  &fw,
			CacheRatio: ratio,
			Seed:       seed,
		})
		if err != nil {
			return nil, err
		}
		if decode {
			out[fw.Name] = sys.Decode(steps).Mean()
		} else {
			out[fw.Name] = sys.Prefill(steps).Mean()
		}
	}
	return out, nil
}
