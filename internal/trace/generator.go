// Package trace synthesises MoE routing activity with the statistical
// properties the paper measures in its motivation study (Figure 3):
//
//   - activation frequency across experts is moderately even — far less
//     skewed than neuron-level sparsity (Fig. 3a);
//   - experts with higher routing scores in one iteration are more
//     likely to be activated in the next (Fig. 3b), the signal the MRS
//     cache exploits;
//   - per-expert token loads in a prefill forward are uneven (Fig. 3c);
//   - adjacent layers' decisions are predictable from the current
//     hidden state (§III Opportunity 1), modelled as score predictions
//     whose noise grows with lookahead distance — the signal the
//     impact-driven prefetcher consumes.
//
// The generator evolves one latent logit vector per layer as a
// mean-reverting AR(1) process across decode iterations; routing scores
// are the softmax of the latent state.
package trace

import (
	"fmt"
	"math"

	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
)

// Options tunes the synthetic routing process. Zero values select the
// calibrated defaults (DefaultOptions).
type Options struct {
	// TemporalCorr is the AR(1) coefficient across iterations in [0, 1);
	// higher values make expert activations stickier.
	TemporalCorr float64
	// BaseSpread is the standard deviation of per-expert long-run
	// preferences; it controls how uneven the activation CDF is.
	BaseSpread float64
	// NoiseStd is the stationary standard deviation of the latent state
	// around its base preference.
	NoiseStd float64
	// TokenNoise is the extra per-token logit noise in prefill, which
	// spreads a batch across many experts with uneven loads.
	TokenNoise float64
	// PredNoise is the score-prediction noise per layer of lookahead,
	// modelling gate-reuse prediction error for the prefetcher.
	PredNoise float64
	// Seed makes the whole process reproducible.
	Seed uint64
}

// DefaultOptions returns the calibrated parameters used by the paper
// reproduction experiments.
func DefaultOptions(seed uint64) Options {
	return Options{
		// Calibrated so the rank-0 reuse probability lands near the
		// paper's ~0.30 (Fig. 3b) with a decreasing tail.
		TemporalCorr: 0.42,
		BaseSpread:   0.22,
		NoiseStd:     1.0,
		TokenNoise:   1.3,
		PredNoise:    0.45,
		Seed:         seed,
	}
}

func (o *Options) fillDefaults() {
	d := DefaultOptions(o.Seed)
	if o.TemporalCorr == 0 {
		o.TemporalCorr = d.TemporalCorr
	}
	if o.BaseSpread == 0 {
		o.BaseSpread = d.BaseSpread
	}
	if o.NoiseStd == 0 {
		o.NoiseStd = d.NoiseStd
	}
	if o.TokenNoise == 0 {
		o.TokenNoise = d.TokenNoise
	}
	if o.PredNoise == 0 {
		o.PredNoise = d.PredNoise
	}
}

// Generator produces routing scores and activations for one simulated
// request stream over a model configuration.
type Generator struct {
	cfg  *moe.Config
	opts Options
	rng  *stats.RNG
	// base[l][e]: long-run preference of expert e at layer l.
	base [][]float64
	// latent[l][e]: current latent logit.
	latent [][]float64
	iter   int
	// predRNG is the reusable prediction stream: PredictedScoresInto
	// reseeds it per (iter, layer, lookahead) instead of allocating a
	// fresh generator on the routing hot path. Reseed restores the
	// exact NewRNG state, so draws are byte-identical.
	predRNG stats.RNG
}

// New builds a generator for cfg. It panics on an invalid configuration;
// validate configs at construction time.
func New(cfg *moe.Config, opts Options) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("trace: %v", err))
	}
	opts.fillDefaults()
	g := &Generator{cfg: cfg, opts: opts, rng: stats.NewRNG(opts.Seed)}
	g.base = make([][]float64, cfg.Layers)
	g.latent = make([][]float64, cfg.Layers)
	for l := 0; l < cfg.Layers; l++ {
		g.base[l] = make([]float64, cfg.RoutedExperts)
		g.latent[l] = make([]float64, cfg.RoutedExperts)
		for e := range g.base[l] {
			g.base[l][e] = g.rng.NormMeanStd(0, opts.BaseSpread)
			// Start at the stationary distribution.
			g.latent[l][e] = g.base[l][e] + g.rng.NormMeanStd(0, opts.NoiseStd)
		}
	}
	return g
}

// Config reports the model configuration the generator serves.
func (g *Generator) Config() *moe.Config { return g.cfg }

// ForkHistory returns a generator over the same model with the same
// long-run expert preferences but an independent iteration stream —
// "the same workload at an earlier time". Frameworks use it to collect
// the historical activation frequencies their static placements and
// cache warm-ups rely on, without leaking the serving trace's future.
func (g *Generator) ForkHistory(seed uint64) *Generator {
	h := &Generator{cfg: g.cfg, opts: g.opts, rng: stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)}
	h.opts.Seed = seed
	h.base = make([][]float64, g.cfg.Layers)
	h.latent = make([][]float64, g.cfg.Layers)
	for l := range g.base {
		h.base[l] = append([]float64(nil), g.base[l]...)
		h.latent[l] = make([]float64, len(g.latent[l]))
		for e := range h.latent[l] {
			h.latent[l][e] = h.base[l][e] + h.rng.NormMeanStd(0, h.opts.NoiseStd)
		}
	}
	return h
}

// Iteration reports how many Advance calls have occurred.
func (g *Generator) Iteration() int { return g.iter }

// Advance moves every layer's latent state one decode iteration forward
// with the mean-reverting AR(1) update, preserving the stationary
// variance NoiseStd².
func (g *Generator) Advance() {
	rho := g.opts.TemporalCorr
	innov := g.opts.NoiseStd * math.Sqrt(1-rho*rho)
	for l := range g.latent {
		for e := range g.latent[l] {
			dev := g.latent[l][e] - g.base[l][e]
			g.latent[l][e] = g.base[l][e] + rho*dev + g.rng.NormMeanStd(0, innov)
		}
	}
	g.iter++
}

// Scores returns the current softmax-normalised routing scores of a
// layer — the full distribution the MRS cache consumes.
func (g *Generator) Scores(layer int) []float64 {
	g.checkLayer(layer)
	return softmax64(g.latent[layer])
}

// Activated returns the current top-k experts of a layer in descending
// score order (a decode iteration's activation set).
func (g *Generator) Activated(layer int) []int {
	scores := g.Scores(layer)
	return topKIndices(scores, g.cfg.ActivatedExperts)
}

// PredictedScores returns a prediction of layer's scores as seen from
// lookahead layers earlier, i.e. what reusing the current hidden state
// with that layer's gate would produce. Prediction noise grows linearly
// with lookahead. The prediction is stable: repeated calls within the
// same iteration return the same value. lookahead 0 returns the true
// scores.
func (g *Generator) PredictedScores(layer, lookahead int) []float64 {
	return g.PredictedScoresInto(nil, layer, lookahead)
}

// PredictedScoresInto is PredictedScores writing into dst's backing
// array (grown as needed) — same values, same draw order, no per-call
// allocation once dst has capacity. Fleet routers probe every replica's
// predicted residency per dispatch, so this is a routing hot path.
func (g *Generator) PredictedScoresInto(dst []float64, layer, lookahead int) []float64 {
	g.checkLayer(layer)
	if lookahead < 0 {
		panic(fmt.Sprintf("trace: negative lookahead %d", lookahead))
	}
	if lookahead == 0 {
		return softmax64Into(dst, g.latent[layer])
	}
	// Derive a deterministic stream from (seed, iter, layer, lookahead)
	// so predictions are stable within an iteration.
	h := g.opts.Seed
	h = h*0x100000001b3 ^ uint64(g.iter+1)
	h = h*0x100000001b3 ^ uint64(layer+1)
	h = h*0x100000001b3 ^ uint64(lookahead)
	g.predRNG.Reseed(h)
	noisy := append(dst[:0], g.latent[layer]...)
	sigma := g.opts.PredNoise * float64(lookahead)
	for e := range noisy {
		noisy[e] += g.predRNG.NormMeanStd(0, sigma)
	}
	softmax64InPlace(noisy)
	return noisy
}

// PrefillLoads simulates routing `tokens` tokens through a layer in one
// prefill forward: each token adds per-token noise to the layer latent
// and selects its own top-k. The result maps expert index to token
// count; entries sum to tokens × ActivatedExperts.
func (g *Generator) PrefillLoads(layer, tokens int) []int {
	g.checkLayer(layer)
	if tokens <= 0 {
		panic(fmt.Sprintf("trace: non-positive token count %d", tokens))
	}
	loads := make([]int, g.cfg.RoutedExperts)
	perTok := make([]float64, g.cfg.RoutedExperts)
	for t := 0; t < tokens; t++ {
		for e, v := range g.latent[layer] {
			perTok[e] = v + g.rng.NormMeanStd(0, g.opts.TokenNoise)
		}
		for _, e := range topKIndices(perTok, g.cfg.ActivatedExperts) {
			loads[e]++
		}
	}
	return loads
}

func (g *Generator) checkLayer(layer int) {
	if layer < 0 || layer >= g.cfg.Layers {
		panic(fmt.Sprintf("trace: layer %d out of range [0,%d)", layer, g.cfg.Layers))
	}
}

func softmax64(xs []float64) []float64 {
	return softmax64Into(nil, xs)
}

// softmax64Into writes the softmax of xs into dst's backing array
// (grown as needed) and returns it.
func softmax64Into(dst, xs []float64) []float64 {
	dst = append(dst[:0], xs...)
	softmax64InPlace(dst)
	return dst
}

func softmax64InPlace(xs []float64) {
	max := xs[0]
	for _, v := range xs[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range xs {
		e := math.Exp(v - max)
		xs[i] = e
		sum += e
	}
	for i := range xs {
		xs[i] /= sum
	}
}

func topKIndices(scores []float64, k int) []int {
	f32 := make([]float32, len(scores))
	for i, v := range scores {
		f32[i] = float32(v)
	}
	return tensor.TopK(f32, k)
}
