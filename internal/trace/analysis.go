package trace

import (
	"fmt"

	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
)

// ActivationCounts runs the generator for iters decode iterations and
// returns per-expert activation counts summed over all layers, the raw
// material of the Figure 3(a) CDF. The generator is advanced in place.
func ActivationCounts(g *Generator, iters int) []int64 {
	counts := make([]int64, g.cfg.RoutedExperts*g.cfg.Layers)
	for i := 0; i < iters; i++ {
		g.Advance()
		for l := 0; l < g.cfg.Layers; l++ {
			for _, e := range g.Activated(l) {
				counts[l*g.cfg.RoutedExperts+e]++
			}
		}
	}
	return counts
}

// NeuronActivationCounts simulates the highly skewed neuron-level
// sparsity of a ReLU dense model (the paper's OPT reference in
// Fig. 3a): each of iters steps activates activePerStep neurons drawn
// from a Zipf distribution over n neurons.
func NeuronActivationCounts(n, iters, activePerStep int, zipfS float64, seed uint64) []int64 {
	if n <= 0 || iters <= 0 || activePerStep <= 0 {
		panic(fmt.Sprintf("trace: invalid neuron sim n=%d iters=%d k=%d", n, iters, activePerStep))
	}
	rng := stats.NewRNG(seed)
	zipf := stats.NewZipf(n, zipfS)
	counts := make([]int64, n)
	for i := 0; i < iters; i++ {
		for j := 0; j < activePerStep; j++ {
			counts[zipf.Sample(rng)]++
		}
	}
	return counts
}

// ReuseByRank measures, over iters iterations of g, the probability that
// the expert holding score rank r at iteration t is activated at t+1 —
// the paper's Figure 3(b). Rank 0 is the highest score. Results are
// averaged over all layers.
func ReuseByRank(g *Generator, iters int) []float64 {
	n := g.cfg.RoutedExperts
	hits := make([]int64, n)
	trials := make([]int64, n)
	// rankOf[l][e] from the previous iteration.
	prevRank := make([][]int, g.cfg.Layers)

	g.Advance()
	for l := 0; l < g.cfg.Layers; l++ {
		prevRank[l] = scoreRanks(g.Scores(l))
	}
	for i := 0; i < iters; i++ {
		g.Advance()
		for l := 0; l < g.cfg.Layers; l++ {
			active := make(map[int]bool, g.cfg.ActivatedExperts)
			for _, e := range g.Activated(l) {
				active[e] = true
			}
			for e, r := range prevRank[l] {
				trials[r]++
				if active[e] {
					hits[r]++
				}
			}
			prevRank[l] = scoreRanks(g.Scores(l))
		}
	}
	out := make([]float64, n)
	for r := range out {
		if trials[r] > 0 {
			out[r] = float64(hits[r]) / float64(trials[r])
		}
	}
	return out
}

// scoreRanks maps expert index -> descending-score rank (0 = top).
func scoreRanks(scores []float64) []int {
	idx := topKIndices(scores, len(scores))
	ranks := make([]int, len(scores))
	for r, e := range idx {
		ranks[e] = r
	}
	return ranks
}

// InterLayerPredictionAccuracy measures how often the predicted top-k at
// a given lookahead matches the true top-k (mean Jaccard overlap over
// iters iterations and all feasible layers). It quantifies the signal
// quality the prefetcher works with.
func InterLayerPredictionAccuracy(g *Generator, lookahead, iters int) float64 {
	var acc stats.Running
	for i := 0; i < iters; i++ {
		g.Advance()
		for l := 0; l < g.cfg.Layers; l++ {
			truth := g.Activated(l)
			pred := topKIndices(g.PredictedScores(l, lookahead), g.cfg.ActivatedExperts)
			acc.Add(jaccard(truth, pred))
		}
	}
	return acc.Mean()
}

func jaccard(a, b []int) float64 {
	set := make(map[int]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	var inter int
	for _, v := range b {
		if set[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// LayerActivation is one layer's worth of routing for an engine step.
type LayerActivation struct {
	Layer ExpertLayer
	// Loads maps expert index -> token count; zero entries are inactive.
	Loads []int
	// Scores is the full routing score distribution (cache signal).
	Scores []float64
}

// ExpertLayer aliases the layer index for readability in engine code.
type ExpertLayer = int

// DecodeStep advances the generator one iteration and returns each
// layer's activation with unit loads (one token per activated expert).
func DecodeStep(g *Generator) []LayerActivation {
	g.Advance()
	out := make([]LayerActivation, g.cfg.Layers)
	for l := 0; l < g.cfg.Layers; l++ {
		loads := make([]int, g.cfg.RoutedExperts)
		for _, e := range g.Activated(l) {
			loads[e] = 1
		}
		out[l] = LayerActivation{Layer: l, Loads: loads, Scores: g.Scores(l)}
	}
	return out
}

// BatchDecodeStep advances the generator one iteration and returns each
// layer's activation for a continuously-batched decode iteration over
// batch concurrent requests. The requests share the iteration's single
// activation pass — the generator models one latent routing stream, so
// the batch's union of experts is this pass's top-k set — and every
// activated expert serves one token per batched request: loads are the
// unit decode loads scaled by the batch size, summing to
// batch × ActivatedExperts per layer, which keeps per-token cache
// lookup counts conserved against the equivalent unbatched run.
// batch 1 is exactly DecodeStep.
func BatchDecodeStep(g *Generator, batch int) []LayerActivation {
	if batch < 1 {
		panic(fmt.Sprintf("trace: non-positive decode batch %d", batch))
	}
	out := DecodeStep(g)
	if batch == 1 {
		return out
	}
	for i := range out {
		for e, l := range out[i].Loads {
			if l > 0 {
				out[i].Loads[e] = l * batch
			}
		}
	}
	return out
}

// PrefillStep advances the generator one iteration and returns each
// layer's activation for a prefill forward over the given token count.
func PrefillStep(g *Generator, tokens int) []LayerActivation {
	g.Advance()
	out := make([]LayerActivation, g.cfg.Layers)
	for l := 0; l < g.cfg.Layers; l++ {
		out[l] = LayerActivation{
			Layer:  l,
			Loads:  g.PrefillLoads(l, tokens),
			Scores: g.Scores(l),
		}
	}
	return out
}

// ActiveExperts lists the expert IDs with a nonzero load.
func (a LayerActivation) ActiveExperts() []moe.ExpertID {
	var out []moe.ExpertID
	for e, load := range a.Loads {
		if load > 0 {
			out = append(out, moe.ExpertID{Layer: a.Layer, Index: e})
		}
	}
	return out
}

// TotalLoad sums the token loads.
func (a LayerActivation) TotalLoad() int {
	var sum int
	for _, l := range a.Loads {
		sum += l
	}
	return sum
}
