package trace

import (
	"math"
	"testing"

	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
)

func dsGen(seed uint64) *Generator {
	return New(moe.DeepSeek(), DefaultOptions(seed))
}

func TestScoresNormalised(t *testing.T) {
	g := dsGen(1)
	g.Advance()
	for l := 0; l < 3; l++ {
		scores := g.Scores(l)
		if len(scores) != 64 {
			t.Fatalf("scores length %d", len(scores))
		}
		var sum float64
		for _, s := range scores {
			if s < 0 {
				t.Fatal("negative score")
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("layer %d scores sum %v", l, sum)
		}
	}
}

func TestActivatedAreTopK(t *testing.T) {
	g := dsGen(2)
	g.Advance()
	act := g.Activated(0)
	if len(act) != 6 {
		t.Fatalf("activated %d experts, want 6", len(act))
	}
	scores := g.Scores(0)
	minActive := math.Inf(1)
	for _, e := range act {
		if scores[e] < minActive {
			minActive = scores[e]
		}
	}
	inactive := make(map[int]bool)
	for _, e := range act {
		inactive[e] = true
	}
	for e, s := range scores {
		if !inactive[e] && s > minActive+1e-12 {
			t.Fatalf("inactive expert %d outscores an active one", e)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := dsGen(7), dsGen(7)
	for i := 0; i < 5; i++ {
		a.Advance()
		b.Advance()
	}
	sa, sb := a.Scores(3), b.Scores(3)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed must reproduce identical traces")
		}
	}
}

func TestFig3aExpertCDFLessSkewedThanNeurons(t *testing.T) {
	g := dsGen(3)
	expertCounts := ActivationCounts(g, 300)
	neuronCounts := NeuronActivationCounts(4096, 300, 256, 1.1, 3)
	ge := stats.GiniCoefficient(expertCounts)
	gn := stats.GiniCoefficient(neuronCounts)
	if ge >= gn {
		t.Fatalf("expert gini %v should be below neuron gini %v (Fig 3a)", ge, gn)
	}
	// Experts: moderately even. Neurons: strongly skewed.
	if ge < 0.05 || ge > 0.5 {
		t.Errorf("expert gini %v outside plausible band [0.05, 0.5]", ge)
	}
	if gn < 0.5 {
		t.Errorf("neuron gini %v should be strongly skewed (>0.5)", gn)
	}
	// Top 20%% of experts should NOT cover 80%% of activations.
	cdf := stats.FrequencyCDF(expertCounts)
	at20 := cdf[len(cdf)/5]
	if at20 > 0.6 {
		t.Errorf("top-20%% expert share %v too concentrated for MoE", at20)
	}
	// While top 20%% of neurons should cover most activations.
	ncdf := stats.FrequencyCDF(neuronCounts)
	if n20 := ncdf[len(ncdf)/5]; n20 < 0.6 {
		t.Errorf("top-20%% neuron share %v too flat for neuron sparsity", n20)
	}
}

func TestFig3bReuseDecreasingInRank(t *testing.T) {
	g := dsGen(4)
	reuse := ReuseByRank(g, 400)
	k := g.Config().ActivatedExperts
	// Top-rank experts should be reused far more than tail experts.
	top := mean(reuse[:k])
	tail := mean(reuse[len(reuse)-16:])
	if top < 2*tail {
		t.Fatalf("top reuse %v should be ≥2× tail reuse %v (Fig 3b)", top, tail)
	}
	// The baseline activation rate is K/N; top ranks must exceed it.
	base := float64(k) / float64(g.Config().RoutedExperts)
	if top <= base {
		t.Fatalf("top reuse %v should beat baseline rate %v", top, base)
	}
	// Reuse beyond rank k must not be ~zero: unactivated high-scorers
	// still return (the insight motivating MRS over LFU).
	nearMiss := mean(reuse[k : 2*k])
	if nearMiss <= base/2 {
		t.Fatalf("near-miss reuse %v too low vs baseline %v", nearMiss, base)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFig3cPrefillLoadsUneven(t *testing.T) {
	g := dsGen(5)
	g.Advance()
	loads := g.PrefillLoads(0, 128)
	total := 0
	maxLoad := 0
	active := 0
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
		if l > 0 {
			active++
		}
	}
	if total != 128*6 {
		t.Fatalf("total load %d, want %d", total, 128*6)
	}
	avg := float64(total) / 64
	// Figure 3(c): loads vary strongly around the mean.
	if float64(maxLoad) < 1.5*avg {
		t.Fatalf("max load %d too close to mean %v; want uneven distribution", maxLoad, avg)
	}
	// Most experts touched by a 128-token prefill on 64 experts.
	if active < 32 {
		t.Fatalf("only %d experts active in prefill, expected broad coverage", active)
	}
}

func TestPredictedScoresStableAndDegrading(t *testing.T) {
	g := dsGen(6)
	g.Advance()
	p1a := g.PredictedScores(3, 1)
	p1b := g.PredictedScores(3, 1)
	for i := range p1a {
		if p1a[i] != p1b[i] {
			t.Fatal("prediction must be stable within an iteration")
		}
	}
	if got := g.PredictedScores(3, 0); got[0] != g.Scores(3)[0] {
		t.Fatal("lookahead 0 must return true scores")
	}
	// Accuracy must degrade with lookahead (fresh generators so each
	// measurement sees identical process statistics).
	a1 := InterLayerPredictionAccuracy(dsGen(60), 1, 60)
	a3 := InterLayerPredictionAccuracy(dsGen(60), 3, 60)
	a6 := InterLayerPredictionAccuracy(dsGen(60), 6, 60)
	if !(a1 > a3 && a3 > a6) {
		t.Fatalf("prediction accuracy should degrade with lookahead: %v %v %v", a1, a3, a6)
	}
	if a1 < 0.4 {
		t.Fatalf("1-layer lookahead accuracy %v too weak to justify prefetching", a1)
	}
}

func TestAdvanceChangesActivations(t *testing.T) {
	g := dsGen(8)
	g.Advance()
	first := append([]int(nil), g.Activated(0)...)
	changed := false
	for i := 0; i < 10; i++ {
		g.Advance()
		cur := g.Activated(0)
		for j := range cur {
			if cur[j] != first[j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("activations never changed over 10 iterations — process frozen")
	}
	if g.Iteration() != 11 {
		t.Fatalf("iteration counter = %d, want 11", g.Iteration())
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	g := dsGen(9)
	g.Advance()
	for name, fn := range map[string]func(){
		"bad layer":     func() { g.Scores(99) },
		"neg layer":     func() { g.Scores(-1) },
		"neg lookahead": func() { g.PredictedScores(0, -1) },
		"zero tokens":   func() { g.PrefillLoads(0, 0) },
		"bad config":    func() { New(&moe.Config{Name: "bad"}, Options{}) },
		"bad neuron":    func() { NeuronActivationCounts(0, 1, 1, 1, 1) },
	} {
		fn := fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDecodeStepShape(t *testing.T) {
	g := dsGen(10)
	acts := DecodeStep(g)
	if len(acts) != 26 {
		t.Fatalf("decode step layers = %d, want 26", len(acts))
	}
	for _, a := range acts {
		if got := len(a.ActiveExperts()); got != 6 {
			t.Fatalf("layer %d active experts = %d, want 6", a.Layer, got)
		}
		if a.TotalLoad() != 6 {
			t.Fatalf("layer %d decode load = %d, want 6", a.Layer, a.TotalLoad())
		}
		if len(a.Scores) != 64 {
			t.Fatalf("missing score signal")
		}
	}
}

func TestPrefillStepShape(t *testing.T) {
	g := dsGen(11)
	acts := PrefillStep(g, 32)
	if len(acts) != 26 {
		t.Fatalf("prefill step layers = %d", len(acts))
	}
	for _, a := range acts {
		if a.TotalLoad() != 32*6 {
			t.Fatalf("layer %d prefill load = %d, want %d", a.Layer, a.TotalLoad(), 32*6)
		}
	}
}

func TestMixtralGeneratorWorks(t *testing.T) {
	g := New(moe.Mixtral(), DefaultOptions(12))
	g.Advance()
	if got := len(g.Activated(0)); got != 2 {
		t.Fatalf("Mixtral activates %d, want 2", got)
	}
	loads := g.PrefillLoads(0, 64)
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != 128 {
		t.Fatalf("Mixtral prefill total load = %d, want 128", total)
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	o.fillDefaults()
	d := DefaultOptions(0)
	if o != d {
		t.Fatalf("fillDefaults = %+v, want %+v", o, d)
	}
	// Partial override survives.
	o2 := Options{TemporalCorr: 0.5}
	o2.fillDefaults()
	if o2.TemporalCorr != 0.5 || o2.NoiseStd != d.NoiseStd {
		t.Fatalf("partial defaults broken: %+v", o2)
	}
}
