package exp

import (
	"strings"
	"testing"

	"hybrimoe/internal/workload"
)

func TestBatchingStudyShape(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	tbl := BatchingStudy(p, 4, 0.25)
	out := render(t, tbl)
	// 3 policies × 3 concurrency limits.
	if tbl.NumRows() != 9 {
		t.Fatalf("rows = %d, want 9:\n%s", tbl.NumRows(), out)
	}
	for _, name := range []string{"none", "greedy", "phase-aware"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing batch policy %s:\n%s", name, out)
		}
	}
	for _, col := range []string{"decode-tok/s", "p50-TBT(s)", "p95-TBT(s)", "p95-TTFT(s)", "mean-batch", "sim-time(s)"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %s:\n%s", col, out)
		}
	}
}

// studyRequests draws the batching study's workload at test scale.
func studyRequests(p Params, n int) []workload.Request {
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(n)
	for i := range reqs {
		if reqs[i].DecodeTokens > p.DecodeSteps {
			reqs[i].DecodeTokens = p.DecodeSteps
		}
	}
	return reqs
}

// TestBatchingBeatsNoneAtConcurrency8 pins the study's headline: with
// eight requests in flight, merging their decode steps into one
// iteration ("greedy" and "phase-aware") must raise decode throughput
// over the unbatched loop ("none") — the amortisation continuous
// batching exists for.
func TestBatchingBeatsNoneAtConcurrency8(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 12
	reqs := studyRequests(p, 12)
	none := driveBatch(p, 0.25, reqs, "none", BatchBudget, 8)
	for _, policy := range []string{"greedy", "phase-aware"} {
		batched := driveBatch(p, 0.25, reqs, policy, BatchBudget, 8)
		if batched.decodeThroughput() <= none.decodeThroughput() {
			t.Errorf("%s decode throughput %.2f tok/s does not beat none's %.2f",
				policy, batched.decodeThroughput(), none.decodeThroughput())
		}
		if batched.meanBatch() <= 1 {
			t.Errorf("%s never merged: mean batch %.2f", policy, batched.meanBatch())
		}
	}
	if none.meanBatch() != 1 {
		t.Errorf("none must keep solo iterations, got mean batch %.2f", none.meanBatch())
	}
}

// TestBatchingConservesWork pins, at the study level, that batching
// reshapes iterations without changing the served workload: every
// policy decodes the same number of tokens.
func TestBatchingConservesWork(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 6
	reqs := studyRequests(p, 8)
	none := driveBatch(p, 0.25, reqs, "none", BatchBudget, 4)
	for _, policy := range []string{"greedy", "phase-aware"} {
		r := driveBatch(p, 0.25, reqs, policy, BatchBudget, 4)
		if r.decodeTokens != none.decodeTokens {
			t.Errorf("%s decoded %d tokens, none %d", policy, r.decodeTokens, none.decodeTokens)
		}
		if r.requestSteps != none.requestSteps {
			t.Errorf("%s ran %d request-steps, none %d", policy, r.requestSteps, none.requestSteps)
		}
	}
}
