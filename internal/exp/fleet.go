package exp

import (
	"fmt"

	"hybrimoe/internal/cluster"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// FleetConcurrent is the per-replica session concurrency every fleet
// consumer uses, matching the open-loop study's serving shape.
const FleetConcurrent = 3

// fleetRun aggregates one replicas × router × arrival-rate serving run.
type fleetRun struct {
	offered, completed, shed int
	clockEnd                 float64
	ttftQ                    report.LatencyStats
	routed                   []int
	// pools echoes the fleet's disaggregation spec (zero when unpooled)
	// so renders can break the dispatch spread down per pool.
	pools cluster.PoolSpec
}

// perPool renders the dispatch spread summed per pool role, the
// breakdown pooled study rows append.
func (r fleetRun) perPool() string {
	var p, d, m int
	for i, n := range r.routed {
		switch r.pools.Role(i) {
		case cluster.RolePrefill:
			p += n
		case cluster.RoleDecode:
			d += n
		default:
			m += n
		}
	}
	return fmt.Sprintf("P:%d D:%d M:%d", p, d, m)
}

func (r fleetRun) shedFraction() float64 {
	if r.offered == 0 {
		return 0
	}
	return float64(r.shed) / float64(r.offered)
}

// goodput reports completions per simulated second of fleet makespan.
// Routing to the replica whose cache is ready moves it two ways at
// once: warm steps advance the clock less, and the latency they save
// keeps the admission guard from shedding.
func (r fleetRun) goodput() float64 {
	if r.clockEnd == 0 {
		return 0
	}
	return float64(r.completed) / r.clockEnd
}

// NewFleet assembles the canonical fleet every consumer (the study, the
// CLI, the benchmark) shares: n HybriMoE replicas on A6000-class boxes,
// seeded per replica from the base seed, steered by the named router.
// Replicas beyond the initial n — born from a scale plan — are built
// with cache warm-up disabled, so a mid-run join pays the cold-cache
// re-warm cost the lifecycle model charges for elasticity.
func NewFleet(n int, routerName string, seed uint64, ratio float64,
	opts ...cluster.Option) (*cluster.Cluster, error) {
	build := func(i int) (*engine.Engine, error) {
		eopts := []engine.Option{
			engine.WithCacheRatio(ratio),
			engine.WithSeed(cluster.ReplicaSeed(seed, i)),
		}
		if i >= n {
			eopts = append(eopts, engine.WithWarmupIters(0))
		}
		return engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(), eopts...)
	}
	opts = append([]cluster.Option{
		cluster.WithReplicas(n),
		cluster.WithRouter(routerName),
		cluster.WithBuilder(build),
		cluster.WithSeed(seed),
		cluster.WithMaxConcurrent(FleetConcurrent),
	}, opts...)
	return cluster.New(opts...)
}

// workerOpts resolves Params.ClusterWorkers into cluster options — nil
// at 0/1 so serial-path configurations stay untouched.
func workerOpts(p Params) []cluster.Option {
	if p.ClusterWorkers > 1 {
		return []cluster.Option{cluster.WithWorkers(p.ClusterWorkers)}
	}
	return nil
}

// driveFleet serves reqs through a fresh n-replica fleet under the
// named router, optional fleet-level admission policy, and any further
// cluster options (pool specs, lifecycle knobs).
func driveFleet(p Params, ratio float64, n int, routerName string,
	reqs []workload.Request, adm engine.AdmissionPolicy, extra ...cluster.Option) fleetRun {
	opts := workerOpts(p)
	if adm != nil {
		opts = append(opts, cluster.WithAdmission(adm))
	}
	opts = append(opts, extra...)
	c, err := NewFleet(n, routerName, p.Seed, ratio, opts...)
	if err != nil {
		panic(err)
	}
	c.Submit(reqs...)

	r := fleetRun{offered: len(reqs)}
	var ttftQ []float64
	c.Run(func(ev cluster.Event) {
		if ev.Kind != cluster.EventStep {
			// Lifecycle records (warming/draining/dead/rerouted) carry
			// no compute; the counters below read compute phases only.
			return
		}
		if ev.End > r.clockEnd {
			r.clockEnd = ev.End
		}
		switch ev.Phase {
		case engine.PhasePrefill:
			ttftQ = append(ttftQ, ev.Queued+ev.Latency)
		case engine.PhaseShed:
			r.shed++
			return
		case engine.PhaseDeferred:
			return
		}
		if ev.Done {
			r.completed++
		}
	})
	r.ttftQ = report.Latencies(ttftQ)
	r.routed = c.Routed()
	r.pools = c.Pools()
	return r
}

// fleetGuard builds the study's fleet-level SLO admission guard from a
// calibrated forward (unqueued) p95 TTFT: the budget sits 25% above it,
// so only fleet queueing can breach. Each run gets a fresh policy — the
// guard's quantiles are fleet-aggregate state that must not leak across
// rows.
func fleetGuard(forward float64) func() engine.AdmissionPolicy {
	return func() engine.AdmissionPolicy {
		return &engine.SLOAdmission{TTFTp95: 1.25 * forward, MinSamples: 2, ShedFactor: 1.5}
	}
}

// fleetRequests draws the study's request stream: the mixed corpus with
// Poisson arrivals at rate (closed-loop when rate is 0 — the
// calibration shape). Only the arrival stamps vary with the rate.
func fleetRequests(p Params, requests int, rate float64) []workload.Request {
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	if rate > 0 {
		stream.WithArrivals(workload.Poisson(rate))
	}
	reqs := stream.NextN(requests)
	workload.CapDecode(reqs, p.DecodeSteps)
	return reqs
}

// FleetStudy sweeps fleet size × router × Poisson arrival rate at equal
// per-replica hardware: every row serves the same request sequence
// through the same replicas, and only the dispatch policy differs. A
// single-replica closed-loop run calibrates per-replica capacity (the
// rate grid scales with fleet size) and the forward p95 anchoring the
// fleet-level SLO guard, the open-loop study's idiom lifted to the
// fleet. Reported per row: completions, shed fraction of offered load,
// goodput (completions per simulated second of makespan), p95
// queue-inclusive TTFT, the makespan itself, and the per-replica
// dispatch spread. The locality claim this table carries: at fleet
// scale (the 4-replica rows) affinity routing — steering load toward
// the replica whose cache shards are ready for their next iteration —
// meets or beats content-blind round-robin on goodput at every swept
// rate at equal hardware, because warm steps advance the fleet clock
// less and shed less under the same guard. With only two replicas the
// readiness signal has almost no choice to exploit and the routers
// mostly coincide.
func FleetStudy(p Params, requests int, replicaCounts []int, ratio float64) *report.Table {
	return runTable(fleetStudy{requests: requests, replicaCounts: replicaCounts, ratio: ratio}, p)
}

// fleetStudy is FleetStudy as a runner-iterated grid: the
// single-replica calibration runs serially in Cells, then one cell per
// replicas × rate × router point. Each (replicas, rate) pair draws its
// request stream once, shared read-only across that pair's router
// cells. A pool spec (optional — the registry default is unpooled and
// renders exactly the historical table) splits every swept fleet into
// disaggregated pools and appends a per-pool dispatch-spread column.
type fleetStudy struct {
	requests      int
	replicaCounts []int
	ratio         float64
	pools         cluster.PoolSpec
}

// poolOpts converts the study's pool spec into cluster options (none
// when unpooled).
func poolOpts(spec cluster.PoolSpec) []cluster.Option {
	if !spec.Pooled() {
		return nil
	}
	return []cluster.Option{cluster.WithPools(spec)}
}

func (fleetStudy) ID() string       { return "fleet" }
func (fleetStudy) Describe() string { return "Multi-replica fleet: routers × Poisson arrival rate" }

func (s fleetStudy) Cells(p Params) []Cell {
	// Single-replica closed-loop calibration: capacity in completions
	// per busy second, and the unqueued forward p95 for the SLO target.
	base := driveFleet(p, s.ratio, 1, "round-robin", fleetRequests(p, s.requests, 0), nil)
	perReplica := float64(base.completed) / base.clockEnd
	adm := fleetGuard(base.ttftQ.P95)

	var cells []Cell
	for _, n := range s.replicaCounts {
		for _, mult := range []float64{1.5, 4} {
			rate := mult * perReplica * float64(n)
			reqs := fleetRequests(p, s.requests, rate)
			for _, routerName := range cluster.RouterNames() {
				cells = append(cells, Cell{
					Label: fmt.Sprintf("fleet/%dx/%s/%.3g", n, routerName, rate),
					Run: func() []Row {
						r := driveFleet(p, s.ratio, n, routerName, reqs, adm(), poolOpts(s.pools)...)
						row := Row{n, routerName, rate, r.completed, r.shedFraction(),
							r.goodput(), r.ttftQ.P95, r.clockEnd, fmt.Sprint(r.routed)}
						if s.pools.Pooled() {
							row = append(row, r.perPool())
						}
						return []Row{row}
					},
				})
			}
		}
	}
	return cells
}

func (s fleetStudy) Render(_ Params, results [][]Row) Renderable {
	cols := []string{"replicas", "router", "rate(req/s)", "completed", "shed-fraction",
		"goodput(req/s)", "p95-TTFT(s)", "makespan(s)", "routed"}
	if s.pools.Pooled() {
		cols = append(cols, "per-pool")
	}
	return tableFromCells("Fleet study: replicas × router × Poisson arrival rate (HybriMoE)",
		cols, results)
}
