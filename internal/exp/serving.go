package exp

import (
	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/workload"
)

// ServingStudy goes beyond the paper's per-stage measurements: it
// serves a mixed request stream sampled from the three evaluation
// corpora (MT-Bench, Vicuna-Bench, ChatGPT-Prompts) end to end —
// prefill then decode per request, cache state carried across requests
// — and reports mean TTFT and TBT per framework. The shape should
// match the paper's per-stage findings (HybriMoE best on both; the
// prefill gap driven by scheduling, the decode gap by caching and
// balancing).
func ServingStudy(p Params, requests int, ratio float64) *report.Table {
	t := report.NewTable("Serving study: mixed corpus stream, end-to-end",
		"framework", "mean-TTFT(s)", "mean-TBT(s)", "p95-TTFT(s)", "hit-rate")
	platform := hw.A6000Platform()
	cfg := moe.DeepSeek()

	// One shared request sequence for every framework.
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(requests)
	for i := range reqs {
		// Cap decode lengths so the study stays simulation-cheap while
		// preserving the TTFT/TBT mix.
		if reqs[i].DecodeTokens > p.DecodeSteps {
			reqs[i].DecodeTokens = p.DecodeSteps
		}
	}

	for _, fw := range engine.AllFrameworks() {
		e, err := engine.New(cfg, platform, fw, engine.Options{CacheRatio: ratio, Seed: p.Seed})
		if err != nil {
			panic(err)
		}
		var ttft stats.Sample
		var tbt stats.Running
		for _, r := range reqs {
			pre := e.RunPrefill(r.PromptTokens)
			ttft.Add(pre.Total)
			dec := e.RunDecode(r.DecodeTokens)
			for _, lat := range dec.StepLatencies {
				tbt.Add(lat)
			}
		}
		last := e.Cache().HitRate()
		t.AddRow(fw.Name, ttft.Mean(), tbt.Mean(), ttft.Quantile(0.95), last)
	}
	return t
}
