package exp

import (
	"fmt"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// ServingStudy goes beyond the paper's per-stage measurements: it
// serves a mixed request stream sampled from the three evaluation
// corpora (MT-Bench, Vicuna-Bench, ChatGPT-Prompts) through the
// engine's streaming Session loop — prefill and decode interleaved,
// cache state carried across requests — and reports TTFT and TBT
// percentiles (p50/p95/p99) per framework, computed from the per-step
// event stream. The shape should match the paper's per-stage findings
// (HybriMoE best on both; the prefill gap driven by scheduling, the
// decode gap by caching and balancing).
func ServingStudy(p Params, requests int, ratio float64) *report.Table {
	return runTable(servingStudy{requests: requests, ratio: ratio}, p)
}

// servingStudy is ServingStudy as a runner-iterated grid: one cell per
// framework, all serving one shared request sequence.
type servingStudy struct {
	requests int
	ratio    float64
}

func (servingStudy) ID() string       { return "serving" }
func (servingStudy) Describe() string { return "End-to-end mixed-corpus serving study" }

func (s servingStudy) Cells(p Params) []Cell {
	platform := hw.A6000Platform()
	cfg := moe.DeepSeek()

	// One shared request sequence for every framework (read-only across
	// cells; Session.Submit copies by value).
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(s.requests)
	workload.CapDecode(reqs, p.DecodeSteps)

	var cells []Cell
	for _, fw := range engine.AllFrameworks() {
		cells = append(cells, Cell{Label: "serving/" + fw.Name, Run: func() []Row {
			e, err := engine.New(cfg, platform, fw,
				engine.WithCacheRatio(s.ratio), engine.WithSeed(p.Seed))
			if err != nil {
				panic(err)
			}
			// Two requests in flight so prefill and decode genuinely
			// interleave, the way a continuously-batched server mixes
			// phases.
			ses := e.NewSession(engine.WithMaxConcurrent(2))
			ses.Submit(reqs...)
			var ttfts, tbts []float64
			ses.Run(func(ev engine.StepEvent) {
				switch ev.Phase {
				case engine.PhasePrefill:
					ttfts = append(ttfts, ev.Latency)
				case engine.PhaseDecode:
					tbts = append(tbts, ev.Latency)
				}
			})
			ttft := report.Latencies(ttfts)
			tbt := report.Latencies(tbts)
			return []Row{{fw.Name, ttft.Mean, ttft.P50, ttft.P95, ttft.P99,
				tbt.P50, tbt.P95, tbt.P99, e.Caches().HitRate()}}
		}})
	}
	return cells
}

func (servingStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("Serving study: mixed corpus stream, end-to-end",
		[]string{"framework", "mean-TTFT(s)", "p50-TTFT(s)", "p95-TTFT(s)", "p99-TTFT(s)",
			"p50-TBT(s)", "p95-TBT(s)", "p99-TBT(s)", "hit-rate"}, results)
}

// classStats aggregates one SLO class's outcomes within a run.
type classStats struct {
	completed, violated, shed int
}

// policyRun aggregates one scheduler × admission serving run.
type policyRun struct {
	completed, onTime, violated, shed int
	clockEnd                          float64
	ttft, tbt                         report.LatencyStats
	// completion records each completed request's finish clock.
	completion map[int]float64
	// byClass slices completions, violations and sheds per SLO class
	// (keyed by workload.Request.Class, echoed on every StepEvent).
	byClass map[string]*classStats
}

// class returns (allocating on demand) the accumulator for label c.
func (r *policyRun) class(c string) *classStats {
	s, ok := r.byClass[c]
	if !ok {
		s = &classStats{}
		r.byClass[c] = s
	}
	return s
}

// classViolationRate reports violated/completed for class c.
func (r *policyRun) classViolationRate(c string) float64 {
	s := r.byClass[c]
	if s == nil || s.completed == 0 {
		return 0
	}
	return float64(s.violated) / float64(s.completed)
}

// drivePolicy serves reqs through a fresh HybriMoE engine under the
// named request scheduler and optional admission policy.
func drivePolicy(p Params, ratio float64, reqs []workload.Request,
	schedName string, adm engine.AdmissionPolicy) policyRun {
	opts := []engine.Option{
		engine.WithCacheRatio(ratio),
		engine.WithSeed(p.Seed),
		engine.WithRequestScheduler(schedName),
	}
	if adm != nil {
		opts = append(opts, engine.WithAdmission(adm))
	}
	e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(), opts...)
	if err != nil {
		panic(err)
	}
	s := e.NewSession(engine.WithMaxConcurrent(3))
	s.Submit(reqs...)

	r := policyRun{completion: make(map[int]float64), byClass: make(map[string]*classStats)}
	var ttfts, tbts []float64
	s.Run(func(ev engine.StepEvent) {
		if ev.End > r.clockEnd {
			r.clockEnd = ev.End
		}
		switch ev.Phase {
		case engine.PhasePrefill:
			ttfts = append(ttfts, ev.Latency)
		case engine.PhaseDecode:
			tbts = append(tbts, ev.Latency)
		case engine.PhaseShed:
			r.shed++
			r.class(ev.Class).shed++
			return
		default:
			return
		}
		if ev.Done {
			r.completed++
			r.class(ev.Class).completed++
			r.completion[ev.Request] = ev.End
			if ev.Deadline > 0 {
				if ev.End <= ev.Deadline {
					r.onTime++
				} else {
					r.violated++
					r.class(ev.Class).violated++
				}
			}
		}
	})
	r.ttft = report.Latencies(ttfts)
	r.tbt = report.Latencies(tbts)
	return r
}

// ServingPolicyStudy compares request schedulers and admission policies
// side-by-side on one fixed mixed-corpus stream served by the HybriMoE
// framework. Every request carries a size-proportional completion
// deadline calibrated from a baseline round-robin run (so some
// deadlines are tight under contention), and the SLO admission targets
// are set just below the baseline's p95s (so admission genuinely
// binds). Requests are labelled with an SLO class — priority traffic is
// "interactive", the rest "batch" — and the per-class violation and
// shed rates ride alongside the aggregates, so the table shows whom
// each policy sacrifices, not just how much. Reported per combination:
// goodput (deadline-met completions per simulated second), SLO
// violation rate among completions, shed fraction of offered load,
// per-class violation and shed rates, and the p95 TTFT/TBT the served
// requests saw.
func ServingPolicyStudy(p Params, requests int, ratio float64) *report.Table {
	return runTable(servingPolicyStudy{requests: requests, ratio: ratio}, p)
}

// servingPolicyStudy is ServingPolicyStudy as a runner-iterated grid:
// the baseline calibration (deadline stamping, admission targets) runs
// serially in Cells, then one cell per scheduler × admission point.
type servingPolicyStudy struct {
	requests int
	ratio    float64
}

func (servingPolicyStudy) ID() string { return "serving-policy" }
func (servingPolicyStudy) Describe() string {
	return "Request schedulers × SLO admission comparison"
}

func (s servingPolicyStudy) Cells(p Params) []Cell {
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(s.requests)
	workload.CapDecode(reqs, p.DecodeSteps)
	offered := map[string]int{}
	for i := range reqs {
		// Every third request is priority traffic the SLO guard may
		// defer but never shed; it forms the "interactive" SLO class,
		// everything else the "batch" class.
		if i%3 == 0 {
			reqs[i].Priority = 1
			reqs[i].Class = "interactive"
		} else {
			reqs[i].Class = "batch"
		}
		offered[reqs[i].Class]++
	}

	// Calibrate from the historical baseline (round-robin, open door):
	// each request's deadline is a multiple of its baseline completion
	// time — half tight (0.9×, missed unless a policy serves it
	// earlier), half slack (1.15×) — so scheduling order, not raw
	// speed, decides who meets it. The admission guard targets the
	// baseline's p50 TTFT as its p95 budget with a low shed factor, a
	// deliberately strained SLO that forces shed/defer verdicts.
	base := drivePolicy(p, s.ratio, reqs, "round-robin", nil)
	for i := range reqs {
		slack := 0.9
		if i%2 == 1 {
			slack = 1.15
		}
		reqs[i].Deadline = slack * base.completion[reqs[i].ID]
	}
	adm := func() engine.AdmissionPolicy {
		return &engine.SLOAdmission{
			TTFTp95:    base.ttft.P50,
			TBTp95:     base.tbt.P95,
			MinSamples: 4,
			ShedFactor: 1.2,
		}
	}

	var cells []Cell
	for _, schedName := range []string{"fcfs", "round-robin", "sjf", "edf"} {
		for _, withAdm := range []bool{false, true} {
			cells = append(cells, Cell{Label: "serving-policy/" + schedName, Run: func() []Row {
				policy := engine.AdmissionPolicy(nil)
				admName := "none"
				if withAdm {
					policy = adm()
					admName = policy.Name()
				}
				r := drivePolicy(p, s.ratio, reqs, schedName, policy)
				goodput, violRate := 0.0, 0.0
				if r.clockEnd > 0 {
					goodput = float64(r.onTime) / r.clockEnd
				}
				if r.completed > 0 {
					violRate = float64(r.violated) / float64(r.completed)
				}
				shedRate := func(c string) float64 {
					if offered[c] == 0 {
						return 0
					}
					cs := r.byClass[c]
					if cs == nil {
						return 0
					}
					return float64(cs.shed) / float64(offered[c])
				}
				return []Row{{schedName, admName, r.completed, r.shed,
					goodput, violRate, float64(r.shed) / float64(len(reqs)),
					fmt.Sprintf("%.2f/%.2f",
						r.classViolationRate("interactive"), r.classViolationRate("batch")),
					fmt.Sprintf("%.2f/%.2f", shedRate("interactive"), shedRate("batch")),
					r.ttft.P95, r.tbt.P95}}
			}})
		}
	}
	return cells
}

func (servingPolicyStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("Serving policy study: request schedulers × admission (HybriMoE)",
		[]string{"reqsched", "admission", "completed", "shed",
			"goodput(req/s)", "violation-rate", "shed-fraction",
			"viol[inter/batch]", "shed[inter/batch]", "p95-TTFT(s)", "p95-TBT(s)"}, results)
}
