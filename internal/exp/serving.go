package exp

import (
	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// ServingStudy goes beyond the paper's per-stage measurements: it
// serves a mixed request stream sampled from the three evaluation
// corpora (MT-Bench, Vicuna-Bench, ChatGPT-Prompts) through the
// engine's streaming Session loop — prefill and decode interleaved,
// cache state carried across requests — and reports TTFT and TBT
// percentiles (p50/p95/p99) per framework, computed from the per-step
// event stream. The shape should match the paper's per-stage findings
// (HybriMoE best on both; the prefill gap driven by scheduling, the
// decode gap by caching and balancing).
func ServingStudy(p Params, requests int, ratio float64) *report.Table {
	t := report.NewTable("Serving study: mixed corpus stream, end-to-end",
		"framework", "mean-TTFT(s)", "p50-TTFT(s)", "p95-TTFT(s)", "p99-TTFT(s)",
		"p50-TBT(s)", "p95-TBT(s)", "p99-TBT(s)", "hit-rate")
	platform := hw.A6000Platform()
	cfg := moe.DeepSeek()

	// One shared request sequence for every framework.
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(requests)
	for i := range reqs {
		// Cap decode lengths so the study stays simulation-cheap while
		// preserving the TTFT/TBT mix.
		if reqs[i].DecodeTokens > p.DecodeSteps {
			reqs[i].DecodeTokens = p.DecodeSteps
		}
	}

	for _, fw := range engine.AllFrameworks() {
		e, err := engine.New(cfg, platform, fw,
			engine.WithCacheRatio(ratio), engine.WithSeed(p.Seed))
		if err != nil {
			panic(err)
		}
		// Two requests in flight so prefill and decode genuinely
		// interleave, the way a continuously-batched server mixes phases.
		s := e.NewSession(engine.WithMaxConcurrent(2))
		s.Submit(reqs...)
		var ttfts, tbts []float64
		s.Run(func(ev engine.StepEvent) {
			switch ev.Phase {
			case engine.PhasePrefill:
				ttfts = append(ttfts, ev.Latency)
			case engine.PhaseDecode:
				tbts = append(tbts, ev.Latency)
			}
		})
		ttft := report.Latencies(ttfts)
		tbt := report.Latencies(tbts)
		t.AddRow(fw.Name, ttft.Mean, ttft.P50, ttft.P95, ttft.P99,
			tbt.P50, tbt.P95, tbt.P99, e.Cache().HitRate())
	}
	return t
}
