package exp

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// renderString renders a study result to a string for byte comparison.
func renderString(r Renderable) string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

// The tentpole determinism claim: a study's rendered output is a pure
// function of its inputs, independent of the sweep runner's worker
// count. The open-loop and fleet studies are the two with serial
// calibration prologues and the largest grids, so they exercise the
// runner hardest.
func TestStudyWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison is slow")
	}
	studies := []Study{
		openLoopStudy{requests: 4, ratio: 0.25},
		fleetStudy{requests: 5, replicaCounts: []int{2}, ratio: 0.25},
	}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, s := range studies {
		t.Run(s.ID(), func(t *testing.T) {
			t.Parallel()
			var want string
			for _, workers := range counts {
				p := QuickParams()
				p.Workers = workers
				got := renderString(RunStudy(s, p))
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("workers=%d rendered different bytes than workers=%d:\n%s\n--- vs ---\n%s",
						workers, counts[0], got, want)
				}
			}
		})
	}
}

// The runner must execute every cell exactly once and slot results in
// grid order regardless of completion order.
type recordingStudy struct {
	cells int
	runs  *atomic.Int64
}

func (recordingStudy) ID() string       { return "recording" }
func (recordingStudy) Describe() string { return "test double" }

func (s recordingStudy) Cells(Params) []Cell {
	cells := make([]Cell, s.cells)
	for i := range cells {
		cells[i] = Cell{Label: "cell", Run: func() []Row {
			s.runs.Add(1)
			return []Row{{i}}
		}}
	}
	return cells
}

func (s recordingStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("recording", []string{"i"}, results)
}

func TestRunStudySlotsResultsInGridOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		s := recordingStudy{cells: 23, runs: &atomic.Int64{}}
		p := QuickParams()
		p.Workers = workers
		out := renderString(RunStudy(s, p))
		if got := s.runs.Load(); got != 23 {
			t.Fatalf("workers=%d ran %d cells, want 23", workers, got)
		}
		// Rows must appear in ascending grid order.
		last := -1
		for _, line := range strings.Split(out, "\n") {
			var i int
			if _, err := fmt.Sscan(line, &i); err != nil {
				continue
			}
			if i != last+1 {
				t.Fatalf("workers=%d rows out of grid order: %d after %d\n%s", workers, i, last, out)
			}
			last = i
		}
		if last != 22 {
			t.Fatalf("workers=%d rendered rows 0..%d, want 0..22", workers, last)
		}
	}
}

// A panicking cell must surface on the caller's goroutine, not crash a
// worker.
func TestRunStudyPropagatesCellPanic(t *testing.T) {
	s := panickyStudy{}
	p := QuickParams()
	p.Workers = 4
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cell panic did not propagate")
		}
		if msg, ok := r.(string); !ok || msg != "cell 3 exploded" {
			t.Fatalf("propagated %v, want the cell's panic value", r)
		}
	}()
	RunStudy(s, p)
}

type panickyStudy struct{}

func (panickyStudy) ID() string       { return "panicky" }
func (panickyStudy) Describe() string { return "test double" }

func (panickyStudy) Cells(Params) []Cell {
	cells := make([]Cell, 8)
	for i := range cells {
		cells[i] = Cell{Label: "cell", Run: func() []Row {
			if i == 3 {
				panic("cell 3 exploded")
			}
			return []Row{{i}}
		}}
	}
	return cells
}

func (panickyStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("panicky", []string{"i"}, results)
}

// CellSeed must derive distinct, entry-point-stable seeds per cell.
func TestCellSeedDistinctAndStable(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		s := CellSeed(2025, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("CellSeed(2025, %d) == CellSeed(2025, %d)", i, prev)
		}
		seen[s] = i
		if again := CellSeed(2025, i); again != s {
			t.Fatalf("CellSeed(2025, %d) unstable: %d then %d", i, s, again)
		}
	}
	if CellSeed(2025, 0) != 2025 {
		t.Fatal("CellSeed(base, 0) must equal base, matching ReplicaSeed")
	}
}

// Studies' IDs must match their registry entries one-to-one.
func TestStudiesMatchRegistry(t *testing.T) {
	for _, s := range Studies() {
		e, err := Lookup(s.ID())
		if err != nil {
			t.Fatalf("study %q missing from registry: %v", s.ID(), err)
		}
		if e.Desc != s.Describe() {
			t.Fatalf("study %q description drifted: registry %q vs study %q",
				s.ID(), e.Desc, s.Describe())
		}
	}
}
