package exp

import (
	"fmt"
	"strings"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// placementRun aggregates one topology × scheduler × cache-ratio
// serving run.
type placementRun struct {
	decodeTokens int
	clockEnd     float64
	tbt          report.LatencyStats
	hitRate      float64
	// gpuBusy sums each device's busy seconds across the run (from the
	// per-device StepEvent vectors).
	gpuBusy []float64
}

// decodeThroughput reports decode tokens per simulated second.
func (r placementRun) decodeThroughput() float64 {
	if r.clockEnd == 0 {
		return 0
	}
	return float64(r.decodeTokens) / r.clockEnd
}

// utilisation renders each GPU's busy fraction as "u0/u1/…".
func (r placementRun) utilisation() string {
	if r.clockEnd == 0 {
		return "-"
	}
	parts := make([]string, len(r.gpuBusy))
	for d, busy := range r.gpuBusy {
		parts[d] = fmt.Sprintf("%.0f%%", 100*busy/r.clockEnd)
	}
	return strings.Join(parts, "/")
}

// drivePlacement serves reqs through the HybriMoE stack planning with
// the named intra-layer scheduler on an n-GPU A6000 platform.
func drivePlacement(p Params, gpus int, schedName string, ratio float64, reqs []workload.Request) placementRun {
	fw := engine.HybriMoEFramework()
	fw.Sched = schedName
	e, err := engine.New(moe.DeepSeek(), hw.MultiA6000Platform(gpus), fw,
		engine.WithCacheRatio(ratio), engine.WithSeed(p.Seed))
	if err != nil {
		panic(err)
	}
	s := e.NewSession(engine.WithMaxConcurrent(3))
	s.Submit(reqs...)

	r := placementRun{gpuBusy: make([]float64, gpus)}
	var tbts []float64
	s.Run(func(ev engine.StepEvent) {
		if ev.End > r.clockEnd {
			r.clockEnd = ev.End
		}
		for d, busy := range ev.GPUBusyByDevice {
			r.gpuBusy[d] += busy
		}
		if ev.Phase == engine.PhaseDecode {
			r.decodeTokens += ev.Tokens
			tbts = append(tbts, ev.Latency)
		}
	})
	r.tbt = report.Latencies(tbts)
	r.hitRate = e.Caches().HitRate()
	return r
}

// PlacementTopologies are the GPU counts the placement study sweeps.
var PlacementTopologies = []int{1, 2, 4}

// PlacementStudy sweeps GPU topologies × intra-layer schedulers ×
// cache ratios on one fixed mixed-corpus stream served by the HybriMoE
// stack, reporting decode throughput, TBT percentiles, the aggregate
// expert-cache hit rate and each device's busy fraction. The
// single-GPU hybrimoe row is the pre-refactor baseline; expert-parallel
// on the dual/quad presets should beat it on decode throughput — the
// per-device caches double (quadruple) total residency, and cached
// experts execute on their owning GPUs in parallel.
func PlacementStudy(p Params, requests int) *report.Table {
	return runTable(placementStudy{requests: requests}, p)
}

// placementStudy is PlacementStudy as a runner-iterated grid: one cell
// per topology × scheduler × cache-ratio point, all serving one shared
// stream.
type placementStudy struct {
	requests int
}

func (placementStudy) ID() string { return "placement" }
func (placementStudy) Describe() string {
	return "Multi-GPU placement: topology × scheduler × cache ratio"
}

func (s placementStudy) Cells(p Params) []Cell {
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(s.requests)
	workload.CapDecode(reqs, p.DecodeSteps)

	var cells []Cell
	for _, gpus := range PlacementTopologies {
		for _, schedName := range []string{"hybrimoe", "expert-parallel"} {
			for _, ratio := range []float64{0.25, 0.50} {
				cells = append(cells, Cell{
					Label: fmt.Sprintf("placement/%dgpu/%s/%.2f", gpus, schedName, ratio),
					Run: func() []Row {
						r := drivePlacement(p, gpus, schedName, ratio, reqs)
						return []Row{{gpus, schedName, ratio, r.decodeThroughput(),
							r.tbt.P50, r.tbt.P95, r.hitRate, r.utilisation()}}
					},
				})
			}
		}
	}
	return cells
}

func (placementStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("Placement study: GPU topology × scheduler × cache ratio (HybriMoE stack)",
		[]string{"gpus", "sched", "cache", "decode-tok/s", "p50-TBT(s)", "p95-TBT(s)", "hit-rate", "per-GPU-util"}, results)
}
