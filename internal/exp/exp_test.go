package exp

import (
	"strings"
	"testing"

	"hybrimoe/internal/cache"
	"hybrimoe/internal/moe"
)

func render(t *testing.T, r Renderable) string {
	t.Helper()
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	if len(out) == 0 {
		t.Fatal("experiment rendered nothing")
	}
	return out
}

func TestFig3aShape(t *testing.T) {
	p := QuickParams()
	out := render(t, Fig3a(p))
	for _, want := range []string{"Opt-Neuron", "Mixtral-Expert", "Deepseek-Expert"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing series %q:\n%s", want, out)
		}
	}
	fig := Fig3a(p)
	// Neuron CDF must dominate expert CDFs at the top-20% mark
	// (index 3 = 20% with 5%-steps).
	neuron := fig.Series[0].Y[3]
	mix := fig.Series[1].Y[3]
	ds := fig.Series[2].Y[3]
	if neuron <= mix || neuron <= ds {
		t.Fatalf("top-20%% shares: neuron %v should dominate experts %v/%v", neuron, mix, ds)
	}
	// Every CDF ends at 100%.
	for _, s := range fig.Series {
		if last := s.Y[len(s.Y)-1]; last < 99.99 {
			t.Fatalf("series %s CDF ends at %v", s.Name, last)
		}
	}
}

func TestFig3bShape(t *testing.T) {
	fig := Fig3b(QuickParams())
	ys := fig.Series[0].Y
	if len(ys) != 64 {
		t.Fatalf("ranks = %d, want 64", len(ys))
	}
	// Top ranks reuse more than bottom ranks.
	var top, bottom float64
	for _, v := range ys[:6] {
		top += v
	}
	for _, v := range ys[48:] {
		bottom += v
	}
	if top/6 <= bottom/16 {
		t.Fatalf("reuse not decreasing: top %v bottom %v", top/6, bottom/16)
	}
}

func TestFig3cShape(t *testing.T) {
	fig := Fig3c(QuickParams())
	ys := fig.Series[0].Y
	var total float64
	for _, v := range ys {
		total += v
	}
	if total != 128*6 {
		t.Fatalf("total workload %v, want %d", total, 128*6)
	}
}

func TestFig3dRuns(t *testing.T) {
	tbl := Fig3d(QuickParams())
	if tbl.NumRows() != 3 {
		t.Fatalf("scenarios = %d, want 3", tbl.NumRows())
	}
	out := render(t, tbl)
	if !strings.Contains(out, "Mixtral decode-10") {
		t.Fatalf("missing scenario:\n%s", out)
	}
}

func TestFig3eShape(t *testing.T) {
	fig := Fig3e()
	cpu, gpu := fig.Series[0].Y, fig.Series[1].Y
	// CPU first expert pays warm-up: increment 0→1 exceeds 1→2.
	firstInc := cpu[0]
	secondInc := cpu[1] - cpu[0]
	if firstInc <= secondInc {
		t.Fatalf("first CPU expert should cost more: %v vs %v", firstInc, secondInc)
	}
	// GPU linear in experts.
	if gpu[6] <= gpu[0]*6 {
		t.Fatalf("GPU should scale ~linearly: %v vs %v", gpu[6], gpu[0])
	}
}

func TestFig3fShape(t *testing.T) {
	fig := Fig3f()
	cpu, gpu := fig.Series[0].Y, fig.Series[1].Y
	n := len(cpu)
	cpuGrowth := cpu[n-1] / cpu[0]
	gpuGrowth := gpu[n-1] / gpu[0]
	if cpuGrowth < 5*gpuGrowth {
		t.Fatalf("CPU growth %.1fx should dwarf GPU growth %.1fx", cpuGrowth, gpuGrowth)
	}
}

func TestFig9MRSWins(t *testing.T) {
	p := QuickParams()
	p.HitRateIters = 80
	tbl := Fig9(p)
	out := render(t, tbl)
	if tbl.NumRows() != 18 { // 3 models × 6 capacities
		t.Fatalf("rows = %d:\n%s", tbl.NumRows(), out)
	}
}

func TestCacheHitRateMRSBeatsLRUTightCache(t *testing.T) {
	cfg := moe.DeepSeek()
	lru := CacheHitRate(cfg, cache.NewLRU(), 0.3, 150, 9)
	mrs := CacheHitRate(cfg, cache.NewMRS(cache.DefaultAlpha, 2*cfg.ActivatedExperts), 0.3, 150, 9)
	t.Logf("30%% capacity: LRU=%.3f MRS=%.3f", lru, mrs)
	if mrs <= lru {
		t.Fatalf("MRS %.3f should beat LRU %.3f at 30%% capacity", mrs, lru)
	}
	// The gap narrows at high capacity (Fig 9's convergence).
	lruHi := CacheHitRate(cfg, cache.NewLRU(), 0.75, 150, 9)
	mrsHi := CacheHitRate(cfg, cache.NewMRS(cache.DefaultAlpha, 2*cfg.ActivatedExperts), 0.75, 150, 9)
	if (mrsHi - lruHi) >= (mrs - lru) {
		t.Fatalf("MRS advantage should narrow at 75%%: low %.3f hi %.3f", mrs-lru, mrsHi-lruHi)
	}
}

func TestTable3AblationOrdering(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 15
	tbl := Table3(p)
	out := render(t, tbl)
	if tbl.NumRows() != 9 {
		t.Fatalf("rows = %d, want 9:\n%s", tbl.NumRows(), out)
	}
	if !strings.Contains(out, "Baseline+Scheduling") || !strings.Contains(out, "All") {
		t.Fatalf("missing ablation rows:\n%s", out)
	}
}

func TestAblationGreedyVsExhaustive(t *testing.T) {
	mean, worst := AblationGreedyVsExhaustive(60, 7)
	t.Logf("greedy/optimal mean=%.3f worst=%.3f", mean, worst)
	if mean < 1-1e-9 {
		t.Fatalf("greedy cannot beat the optimum on average: %v", mean)
	}
	if worst > 1.6 {
		t.Fatalf("greedy worst case %.2fx too far from optimal", worst)
	}
}

func TestLookupAndRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) < 15 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Desc == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if _, err := Lookup("fig8"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestQuickExperimentsRun(t *testing.T) {
	// Smoke: the cheap experiments must run end to end via the registry.
	p := QuickParams()
	p.DecodeSteps = 3
	p.HitRateIters = 30
	for _, id := range []string{"fig3a", "fig3b", "fig3c", "fig3e", "fig3f", "abl-topp", "abl-prefetch"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		render(t, e.Run(p))
	}
}
