// Package exp contains one driver per table/figure of the paper's
// evaluation. Each driver sets up the workload the paper describes,
// runs it through the engine (or the relevant subsystem), and returns a
// report structure printing the same rows/series the paper plots.
// cmd/hybrimoe, the root benchmark suite and EXPERIMENTS.md all call
// these drivers, so every published number has exactly one generator.
package exp

import (
	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/trace"
)

// Params bundles the experiment-scale knobs so benchmarks can shrink
// runs without touching workload semantics.
type Params struct {
	Seed uint64
	// DecodeSteps is the decode iterations measured per configuration.
	DecodeSteps int
	// CDFIters is the trace length for distribution studies (Fig 3a/b).
	CDFIters int
	// HitRateIters is the trace length for Figure 9.
	HitRateIters int
	// Workers bounds the sweep runner's cell-level parallelism; 0 (the
	// zero value, so existing Params literals keep working) means
	// DefaultWorkers. Results are worker-count independent — the knob
	// trades wall-clock for CPU, never output.
	Workers int
	// ClusterWorkers bounds the horizon-batched replica-level
	// parallelism inside each fleet cell (cluster.WithWorkers); 0 or 1
	// keeps the serial path. Like Workers, the event streams and every
	// derived number are worker-count independent, so the two levels
	// compose: cells fan out across Workers, replicas within a cell
	// across ClusterWorkers.
	ClusterWorkers int
}

// workers resolves the effective sweep parallelism.
func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return DefaultWorkers()
}

// DefaultParams returns the full-size experiment configuration.
func DefaultParams() Params {
	return Params{Seed: 2025, DecodeSteps: 50, CDFIters: 400, HitRateIters: 300}
}

// QuickParams returns a reduced configuration for smoke tests.
func QuickParams() Params {
	return Params{Seed: 2025, DecodeSteps: 8, CDFIters: 60, HitRateIters: 60}
}

// PrefillLengths are the paper's prompt-length buckets ("around 32, 128,
// 512 and 1024 tokens").
var PrefillLengths = []int{32, 128, 512, 1024}

// CacheRatios are the paper's GPU expert cache ratios.
var CacheRatios = []float64{0.25, 0.50, 0.75}

// Fig3a reproduces the cumulative activation-frequency CDF: neuron-level
// sparsity (OPT reference) saturates quickly, while Mixtral and DeepSeek
// expert activations are far more even.
func Fig3a(p Params) *report.Figure {
	fig := report.NewFigure("Fig 3(a): cumulative activation frequency CDF", "top-%")
	neuron := trace.NeuronActivationCounts(4096, p.CDFIters, 256, 1.1, p.Seed)
	mixCounts := trace.ActivationCounts(trace.New(moe.Mixtral(), trace.DefaultOptions(p.Seed)), p.CDFIters)
	dsCounts := trace.ActivationCounts(trace.New(moe.DeepSeek(), trace.DefaultOptions(p.Seed)), p.CDFIters)

	series := map[string][]int64{
		"Opt-Neuron":      neuron,
		"Mixtral-Expert":  mixCounts,
		"Deepseek-Expert": dsCounts,
	}
	order := []string{"Opt-Neuron", "Mixtral-Expert", "Deepseek-Expert"}
	// Sample the CDF at 5% steps of the population.
	for _, name := range order {
		s := fig.AddSeries(name)
		cdf := stats.FrequencyCDF(series[name])
		for pct := 5; pct <= 100; pct += 5 {
			idx := len(cdf)*pct/100 - 1
			if idx < 0 {
				idx = 0
			}
			s.AddPoint(float64(pct), 100*cdf[idx])
		}
	}
	return fig
}

// Fig3b reproduces the reuse probability of experts by score rank for
// DeepSeek: high-scoring experts (activated or not) are far more likely
// to be activated in the next iteration.
func Fig3b(p Params) *report.Figure {
	fig := report.NewFigure("Fig 3(b): reuse probability by score rank (DeepSeek)", "rank")
	g := trace.New(moe.DeepSeek(), trace.DefaultOptions(p.Seed))
	reuse := trace.ReuseByRank(g, p.CDFIters)
	s := fig.AddSeries("reuse-probability")
	for r, v := range reuse {
		s.AddPoint(float64(r), v)
	}
	return fig
}

// Fig3c reproduces the per-expert workload distribution of one DeepSeek
// prefill forward (128 tokens): loads vary widely across experts.
func Fig3c(p Params) *report.Figure {
	fig := report.NewFigure("Fig 3(c): DeepSeek prefill-128 expert workloads (layer 0)", "expert")
	g := trace.New(moe.DeepSeek(), trace.DefaultOptions(p.Seed))
	g.Advance()
	loads := g.PrefillLoads(0, 128)
	s := fig.AddSeries("workload")
	for e, l := range loads {
		s.AddPoint(float64(e), float64(l))
	}
	return fig
}

// Fig3d reproduces the motivating comparison of the three existing
// frameworks on Qwen2 prefill-128, Mixtral prefill-128 and Mixtral
// decode-10 (25% cache): no strategy wins everywhere.
func Fig3d(p Params) *report.Table {
	t := report.NewTable("Fig 3(d): existing frameworks across scenarios (25% cache)",
		"scenario", "llama.cpp(s)", "AdapMoE(s)", "KTransformers(s)")
	platform := hw.A6000Platform()
	frameworks := []engine.Framework{
		engine.LlamaCppFramework(),
		engine.AdapMoEFramework(),
		engine.KTransformersFramework(),
	}
	type scenario struct {
		name    string
		cfg     *moe.Config
		prefill int // 0 = decode
		steps   int
	}
	scenarios := []scenario{
		{"Qwen2 prefill-128", moe.Qwen2(), 128, 0},
		{"Mixtral prefill-128", moe.Mixtral(), 128, 0},
		{"Mixtral decode-10", moe.Mixtral(), 0, 10},
	}
	for _, sc := range scenarios {
		row := []interface{}{sc.name}
		for _, fw := range frameworks {
			e, err := engine.New(sc.cfg, platform, fw,
				engine.WithCacheRatio(0.25), engine.WithSeed(p.Seed))
			if err != nil {
				panic(err)
			}
			var total float64
			if sc.prefill > 0 {
				total = e.RunPrefill(sc.prefill).Total
			} else {
				total = e.RunDecode(sc.steps).Total
			}
			row = append(row, total)
		}
		t.AddRow(row...)
	}
	return t
}

// Fig3e reproduces CPU vs GPU time for 1..7 experts at a fixed
// (decode-size) load: the CPU's first expert pays a warm-up, later ones
// amortise it; GPU time is linear in expert count.
func Fig3e() *report.Figure {
	fig := report.NewFigure("Fig 3(e): device time vs expert count (DeepSeek decode load)", "experts")
	platform := hw.A6000Platform()
	cfg := moe.DeepSeek()
	cpu := fig.AddSeries("CPU(s)")
	gpu := fig.AddSeries("GPU(s)")
	for n := 1; n <= 7; n++ {
		var cpuTotal, gpuTotal float64
		for i := 0; i < n; i++ {
			cpuTotal += platform.CPU.ExpertTime(cfg.ExpertFlops(1), cfg.ExpertBytes(), i == 0)
			gpuTotal += platform.GPUs[0].ExpertTime(cfg.ExpertFlops(1), cfg.ExpertBytes())
		}
		cpu.AddPoint(float64(n), cpuTotal)
		gpu.AddPoint(float64(n), gpuTotal)
	}
	return fig
}

// Fig3f reproduces CPU and GPU time across workload sizes for one
// expert: GPU time stays nearly flat while CPU time grows linearly.
func Fig3f() *report.Figure {
	fig := report.NewFigure("Fig 3(f): device time vs workload size (DeepSeek expert)", "tokens")
	platform := hw.A6000Platform()
	cfg := moe.DeepSeek()
	cpu := fig.AddSeries("CPU(s)")
	gpu := fig.AddSeries("GPU(s)")
	for _, tokens := range []int{1, 64, 128, 256, 384, 512, 640, 768, 896, 1024} {
		cpu.AddPoint(float64(tokens), platform.CPU.ExpertTime(cfg.ExpertFlops(tokens), cfg.ExpertBytes(), false))
		gpu.AddPoint(float64(tokens), platform.GPUs[0].ExpertTime(cfg.ExpertFlops(tokens), cfg.ExpertBytes()))
	}
	return fig
}
