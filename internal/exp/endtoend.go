package exp

import (
	"fmt"

	"hybrimoe/internal/cache"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/trace"
)

// Fig7 reproduces the prefill comparison: TTFT for every model, input
// length and cache ratio, across the four frameworks, with the speedup
// over kTransformers that the paper's secondary axis shows.
func Fig7(p Params) *report.Table {
	t := report.NewTable("Fig 7: prefill TTFT across lengths and cache ratios",
		"model", "cache", "len", "llama.cpp(s)", "AdapMoE(s)", "KTrans(s)", "HybriMoE(s)", "speedup-vs-KTrans")
	platform := hw.A6000Platform()
	for _, cfg := range moe.AllModels() {
		for _, ratio := range CacheRatios {
			for _, length := range PrefillLengths {
				lats := make(map[string]float64, 4)
				for _, fw := range engine.AllFrameworks() {
					lats[fw.Name] = mustEngine(cfg, platform, fw, ratio, p.Seed).RunPrefill(length).Total
				}
				t.AddRow(cfg.Name, pct(ratio), length,
					lats["llama.cpp"], lats["AdapMoE"], lats["KTransformers"], lats["HybriMoE"],
					lats["KTransformers"]/lats["HybriMoE"])
			}
		}
	}
	return t
}

// Fig7MeanSpeedup computes the average HybriMoE speedup over
// kTransformers across the Fig. 7 grid (the paper reports 1.33×).
func Fig7MeanSpeedup(p Params) float64 {
	platform := hw.A6000Platform()
	var sum float64
	var n int
	for _, cfg := range moe.AllModels() {
		for _, ratio := range CacheRatios {
			for _, length := range PrefillLengths {
				kt := mustEngine(cfg, platform, engine.KTransformersFramework(), ratio, p.Seed).RunPrefill(length).Total
				hy := mustEngine(cfg, platform, engine.HybriMoEFramework(), ratio, p.Seed).RunPrefill(length).Total
				sum += kt / hy
				n++
			}
		}
	}
	return sum / float64(n)
}

// Fig8 reproduces the decode comparison: mean TBT per model and cache
// ratio across the four frameworks, plus the speedup over kTransformers.
func Fig8(p Params) *report.Table {
	t := report.NewTable("Fig 8: decode TBT across cache ratios",
		"model", "cache", "llama.cpp(s)", "AdapMoE(s)", "KTrans(s)", "HybriMoE(s)", "speedup-vs-KTrans")
	platform := hw.A6000Platform()
	for _, cfg := range moe.AllModels() {
		for _, ratio := range CacheRatios {
			lats := make(map[string]float64, 4)
			for _, fw := range engine.AllFrameworks() {
				lats[fw.Name] = mustEngine(cfg, platform, fw, ratio, p.Seed).RunDecode(p.DecodeSteps).Mean()
			}
			t.AddRow(cfg.Name, pct(ratio),
				lats["llama.cpp"], lats["AdapMoE"], lats["KTransformers"], lats["HybriMoE"],
				lats["KTransformers"]/lats["HybriMoE"])
		}
	}
	return t
}

// Fig8MeanSpeedup computes the average decode speedup over
// kTransformers (the paper reports 1.70×).
func Fig8MeanSpeedup(p Params) float64 {
	platform := hw.A6000Platform()
	var sum float64
	var n int
	for _, cfg := range moe.AllModels() {
		for _, ratio := range CacheRatios {
			kt := mustEngine(cfg, platform, engine.KTransformersFramework(), ratio, p.Seed).RunDecode(p.DecodeSteps).Mean()
			hy := mustEngine(cfg, platform, engine.HybriMoEFramework(), ratio, p.Seed).RunDecode(p.DecodeSteps).Mean()
			sum += kt / hy
			n++
		}
	}
	return sum / float64(n)
}

// Table3 reproduces the ablation: Qwen2 at 25% cache, prefill (128
// tokens) and decode, with each technique enabled alone and together.
func Table3(p Params) *report.Table {
	t := report.NewTable("Table III: speedup breakdown (Qwen2, 25% cache)",
		"stage", "technique", "latency(s)", "speedup")
	platform := hw.A6000Platform()
	cfg := moe.Qwen2()

	var prefillBase, decodeBase float64
	for _, fw := range engine.AblationFrameworks() {
		if fw.Name == "Baseline+Caching" {
			// The paper's Table III reports no prefill row for caching:
			// a single prefill forward never revisits an expert, so
			// cache policy cannot help that stage.
			continue
		}
		pre := mustEngine(cfg, platform, fw, 0.25, p.Seed).RunPrefill(128).Total
		if fw.Name == "Baseline" {
			prefillBase = pre
		}
		t.AddRow("prefill", fw.Name, pre, prefillBase/pre)
	}
	for _, fw := range engine.AblationFrameworks() {
		dec := mustEngine(cfg, platform, fw, 0.25, p.Seed).RunDecode(p.DecodeSteps).Mean()
		if fw.Name == "Baseline" {
			decodeBase = dec
		}
		t.AddRow("decode", fw.Name, dec, decodeBase/dec)
	}
	return t
}

// Fig9 reproduces the cache-policy study: steady-state hit rate of MRS
// vs LRU for all three models across cached-expert percentages, using
// the pure cache simulation (no scheduling in the loop, exactly like
// the paper's hit-rate counters).
func Fig9(p Params) *report.Table {
	t := report.NewTable("Fig 9: cache hit rate, MRS vs LRU",
		"model", "cached-%", "LRU", "MRS", "delta")
	for _, cfg := range moe.AllModels() {
		for _, pctCap := range []int{30, 40, 50, 60, 70, 75} {
			ratio := float64(pctCap) / 100
			lru := CacheHitRate(cfg, cache.NewLRU(), ratio, p.HitRateIters, p.Seed)
			mrs := CacheHitRate(cfg, cache.NewMRS(cache.DefaultAlpha, 2*cfg.ActivatedExperts), ratio, p.HitRateIters, p.Seed)
			t.AddRow(cfg.Name, pctCap, lru, mrs, mrs-lru)
		}
	}
	return t
}

// CacheHitRate drives a cache with policy through iters decode
// iterations of cfg's synthetic trace at the given capacity ratio and
// returns the steady-state hit rate (first quarter excluded as warm-up).
func CacheHitRate(cfg *moe.Config, policy cache.Policy, ratio float64, iters int, seed uint64) float64 {
	g := trace.New(cfg, trace.DefaultOptions(seed))
	c := cache.New(cfg.CacheCapacity(ratio), policy)
	var warm []moe.ExpertID
	for l := 0; l < cfg.Layers; l++ {
		for e := 0; e < cfg.RoutedExperts; e++ {
			warm = append(warm, moe.ExpertID{Layer: l, Index: e})
		}
	}
	c.Warm(warm)
	for i := 0; i < iters; i++ {
		g.Advance()
		for l := 0; l < cfg.Layers; l++ {
			acts := g.Activated(l)
			active := make(map[moe.ExpertID]bool, len(acts))
			for _, e := range acts {
				active[moe.ExpertID{Layer: l, Index: e}] = true
			}
			for _, e := range acts {
				id := moe.ExpertID{Layer: l, Index: e}
				if !c.Lookup(id) {
					c.Insert(id, func(x moe.ExpertID) bool { return active[x] })
				}
			}
			c.ObserveScores(l, g.Scores(l))
		}
		if i == iters/4 {
			c.ResetStats()
		}
	}
	return c.HitRate()
}

func mustEngine(cfg *moe.Config, platform *hw.Platform, fw engine.Framework, ratio float64, seed uint64, opts ...engine.Option) *engine.Engine {
	opts = append([]engine.Option{engine.WithCacheRatio(ratio), engine.WithSeed(seed)}, opts...)
	e, err := engine.New(cfg, platform, fw, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

func pct(ratio float64) string { return fmt.Sprintf("%.0f%%", ratio*100) }
