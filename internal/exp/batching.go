package exp

import (
	"fmt"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// BatchBudget is the token budget per merged iteration the batching
// study (and its CLI/report consumers) packs to — wide enough that a
// full decode batch always merges and a typical prompt can ride along.
const BatchBudget = 256

// batchRun aggregates one batch-policy × concurrency serving run.
type batchRun struct {
	decodeTokens int
	requestSteps int // compute events (one per request per iteration)
	iterations   int // merged engine iterations
	clockEnd     float64
	ttft, tbt    report.LatencyStats
}

// decodeThroughput reports decode tokens per simulated second over the
// whole run — the quantity continuous batching exists to raise.
func (r batchRun) decodeThroughput() float64 {
	if r.clockEnd == 0 {
		return 0
	}
	return float64(r.decodeTokens) / r.clockEnd
}

// meanBatch reports the mean number of requests advanced per engine
// iteration.
func (r batchRun) meanBatch() float64 {
	if r.iterations == 0 {
		return 0
	}
	return float64(r.requestSteps) / float64(r.iterations)
}

// driveBatch serves reqs through a fresh HybriMoE engine under the
// named batch former and concurrency limit.
func driveBatch(p Params, ratio float64, reqs []workload.Request,
	policy string, budget, concurrent int) batchRun {
	e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
		engine.WithCacheRatio(ratio),
		engine.WithSeed(p.Seed),
		engine.WithBatchPolicy(policy, budget))
	if err != nil {
		panic(err)
	}
	s := e.NewSession(engine.WithMaxConcurrent(concurrent))
	s.Submit(reqs...)

	var r batchRun
	var ttfts, tbts []float64
	s.Run(func(ev engine.StepEvent) {
		if ev.End > r.clockEnd {
			r.clockEnd = ev.End
		}
		switch ev.Phase {
		case engine.PhasePrefill:
			ttfts = append(ttfts, ev.Latency)
			r.requestSteps++
		case engine.PhaseDecode:
			tbts = append(tbts, ev.Latency)
			r.decodeTokens += ev.Tokens
			r.requestSteps++
		}
	})
	r.iterations = s.Batches()
	r.ttft = report.Latencies(ttfts)
	r.tbt = report.Latencies(tbts)
	return r
}

// BatchingStudy compares the batch formers × concurrency limits on one
// fixed mixed-corpus stream served by the HybriMoE framework on the
// default model. Merging concurrent decode steps into one iteration
// amortises expert weights across in-flight tokens — the hybrid
// scheduling's expert loads finally overlap — so decode throughput
// should climb with concurrency under "greedy" and "phase-aware" while
// "none" (one request per iteration, the pre-batching loop) stays
// flat; the TBT percentiles show what each policy charges a single
// token for the extra sharing.
func BatchingStudy(p Params, requests int, ratio float64) *report.Table {
	return runTable(batchingStudy{requests: requests, ratio: ratio}, p)
}

// batchingStudy is BatchingStudy as a runner-iterated grid: one cell
// per batch former × concurrency point, all serving one shared stream.
type batchingStudy struct {
	requests int
	ratio    float64
}

func (batchingStudy) ID() string       { return "batching" }
func (batchingStudy) Describe() string { return "Continuous-batching policies × concurrency" }

func (s batchingStudy) Cells(p Params) []Cell {
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(s.requests)
	workload.CapDecode(reqs, p.DecodeSteps)

	var cells []Cell
	for _, policy := range []string{"none", "greedy", "phase-aware"} {
		for _, concurrent := range []int{1, 4, 8} {
			cells = append(cells, Cell{
				Label: fmt.Sprintf("batching/%s/x%d", policy, concurrent),
				Run: func() []Row {
					r := driveBatch(p, s.ratio, reqs, policy, BatchBudget, concurrent)
					return []Row{{policy, concurrent, r.decodeThroughput(),
						r.tbt.P50, r.tbt.P95, r.ttft.P95, r.meanBatch(), r.clockEnd}}
				},
			})
		}
	}
	return cells
}

func (batchingStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("Batching study: batch formers × concurrency (HybriMoE)",
		[]string{"batch", "concurrent", "decode-tok/s", "p50-TBT(s)", "p95-TBT(s)",
			"p95-TTFT(s)", "mean-batch", "sim-time(s)"}, results)
}
