package exp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hybrimoe/internal/cluster"
	"hybrimoe/internal/report"
)

// Row is one rendered table row: the cell values AddRow receives, in
// column order.
type Row []interface{}

// Cell is one independently runnable point of a study's grid. Run must
// be hermetic — it builds its own engines and touches no mutable state
// shared with sibling cells (read-only request slices are fine) — so
// the runner may execute cells concurrently in any order. The rows it
// returns are slotted by the cell's grid position, which makes the
// study's output a pure function of its inputs regardless of worker
// count.
type Cell struct {
	// Label names the cell in diagnostics ("serving/HybriMoE",
	// "fleet/4x/affinity").
	Label string
	// Run executes the cell and returns its rendered rows in order.
	Run func() []Row
}

// Study is a grid experiment the runner owns iteration for: Cells
// enumerates the grid (running any serial calibration first), the
// runner executes the cells — possibly in parallel — and Render
// assembles the slotted results into the published table. The split
// moves the for-loops out of every study body and into one place, so
// parallelism, determinism and progress accounting are runner
// properties instead of per-study reimplementations.
type Study interface {
	// ID is the registry identifier ("serving", "fleet", …).
	ID() string
	// Describe is the one-line registry description.
	Describe() string
	// Cells enumerates the study's grid for the given scale parameters.
	// Serial prologue work — calibration runs, deadline stamping —
	// happens here, before any cell executes.
	Cells(p Params) []Cell
	// Render assembles the per-cell results (indexed like Cells' return,
	// every slot filled) into the study's published rendering.
	Render(p Params, results [][]Row) Renderable
}

// DefaultWorkers is the cell-level parallelism used when Params.Workers
// is unset: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// CellSeed derives sweep cell i's RNG seed from a study base seed —
// the fleet's ReplicaSeed idiom applied to grid cells, for studies
// whose cells want decorrelated workload draws rather than the shared
// stream the comparison grids hold fixed. Equal (base, i) gives equal
// seeds on every entry point, so parallel sweeps stay byte-stable.
func CellSeed(base uint64, i int) uint64 { return cluster.ReplicaSeed(base, i) }

// RunStudy enumerates s's cells and executes them on a bounded worker
// pool of p.workers() goroutines (serially when that is 1 or there is
// only one cell), then renders the slotted results. Results are
// identical for every worker count: cells are hermetic and their rows
// land in grid order, not completion order. A panicking cell stops the
// sweep and re-panics on the caller's goroutine.
func RunStudy(s Study, p Params) Renderable {
	cells := s.Cells(p)
	results := make([][]Row, len(cells))
	workers := p.workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			results[i] = c.Run()
		}
		return s.Render(p, results)
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked interface{}
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				results[i] = cells[i].Run()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return s.Render(p, results)
}

// runTable runs a study whose rendering is a table — every current
// study — and returns it typed.
func runTable(s Study, p Params) *report.Table {
	return RunStudy(s, p).(*report.Table)
}

// tableFromCells assembles the standard study rendering: one table, the
// cells' rows appended in grid order.
func tableFromCells(title string, cols []string, results [][]Row) *report.Table {
	t := report.NewTable(title, cols...)
	for _, rows := range results {
		for _, r := range rows {
			t.AddRow(r...)
		}
	}
	return t
}

// studyExperiment adapts a Study to the Experiment registry entry, so
// Lookup and RunAll keep working unchanged on studies.
func studyExperiment(s Study) Experiment {
	return Experiment{
		ID:   s.ID(),
		Desc: s.Describe(),
		Run:  func(p Params) Renderable { return RunStudy(s, p) },
	}
}

// Studies returns every registered grid study at its registry scale, in
// registry order.
func Studies() []Study {
	return []Study{
		platformStudy{},
		servingStudy{requests: 10, ratio: 0.25},
		servingPolicyStudy{requests: 10, ratio: 0.25},
		batchingStudy{requests: 12, ratio: 0.25},
		openLoopStudy{requests: 10, ratio: 0.25},
		placementStudy{requests: 8},
		fleetStudy{requests: 16, replicaCounts: []int{2, 4}, ratio: 0.25},
		fleetChurnStudy{requests: 24, replicas: 3, ratio: 0.25},
		disaggStudy{requests: 18, ratio: 0.25},
		precisionStudy{},
	}
}
