package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestServingStudyShape(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	tbl := ServingStudy(p, 4, 0.25)
	out := render(t, tbl)
	if tbl.NumRows() != 4 {
		t.Fatalf("frameworks = %d, want 4:\n%s", tbl.NumRows(), out)
	}
	for _, fw := range []string{"llama.cpp", "AdapMoE", "KTransformers", "HybriMoE"} {
		if !strings.Contains(out, fw) {
			t.Fatalf("missing framework %s:\n%s", fw, out)
		}
	}
	// The serving driver reports percentile columns computed from the
	// Session event stream, not means only.
	for _, col := range []string{"p50-TTFT(s)", "p95-TTFT(s)", "p99-TTFT(s)", "p50-TBT(s)", "p95-TBT(s)", "p99-TBT(s)"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing percentile column %s:\n%s", col, out)
		}
	}
}

// TestServingStudyPercentilesOrdered checks p50 ≤ p95 ≤ p99 on every
// row for both metrics.
func TestServingStudyPercentilesOrdered(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	out := ServingStudy(p, 5, 0.25).String()
	for _, fw := range []string{"llama.cpp", "AdapMoE", "KTransformers", "HybriMoE"} {
		fields := rowFields(t, out, fw)
		// Columns: name, mean-TTFT, p50-TTFT, p95-TTFT, p99-TTFT,
		// p50-TBT, p95-TBT, p99-TBT, hit-rate.
		for _, span := range [][2]int{{2, 4}, {5, 7}} {
			for i := span[0]; i < span[1]; i++ {
				lo := parseField(t, fields[i])
				hi := parseField(t, fields[i+1])
				if lo > hi {
					t.Fatalf("%s: percentile column %d (%v) above column %d (%v)\n%s",
						fw, i, lo, i+1, hi, out)
				}
			}
		}
	}
}

func rowFields(t *testing.T, rendered, framework string) []string {
	t.Helper()
	for _, line := range strings.Split(rendered, "\n") {
		if strings.HasPrefix(line, framework) {
			return strings.Fields(line)
		}
	}
	t.Fatalf("framework %s not found in:\n%s", framework, rendered)
	return nil
}

func parseField(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// ttftOf extracts the mean-TTFT column for a framework row.
func ttftOf(t *testing.T, rendered, framework string) float64 {
	t.Helper()
	for _, line := range strings.Split(rendered, "\n") {
		if !strings.HasPrefix(line, framework) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("malformed row %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", fields[1], err)
		}
		return v
	}
	t.Fatalf("framework %s not found in:\n%s", framework, rendered)
	return 0
}

func TestServingPolicyStudyShape(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	tbl := ServingPolicyStudy(p, 5, 0.25)
	out := render(t, tbl)
	// 4 schedulers × {open door, SLO guard}.
	if tbl.NumRows() != 8 {
		t.Fatalf("rows = %d, want 8:\n%s", tbl.NumRows(), out)
	}
	for _, name := range []string{"fcfs", "round-robin", "sjf", "edf", "none", "slo-p95"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing policy %s:\n%s", name, out)
		}
	}
	for _, col := range []string{"goodput(req/s)", "violation-rate", "shed-fraction", "p95-TTFT(s)", "p95-TBT(s)"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %s:\n%s", col, out)
		}
	}
}

// TestServingPolicyStudyOpenDoorShedsNothing pins the no-admission
// baseline rows: without a policy installed nothing is shed, so every
// offered request completes.
func TestServingPolicyStudyOpenDoorShedsNothing(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	out := ServingPolicyStudy(p, 5, 0.25).String()
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 8 || fields[1] != "none" {
			continue
		}
		seen++
		if completed := fields[2]; completed != "5" {
			t.Fatalf("open-door row completed %s of 5:\n%s", completed, out)
		}
		if shed := fields[3]; shed != "0" {
			t.Fatalf("open-door row shed %s requests:\n%s", shed, out)
		}
	}
	if seen != 4 {
		t.Fatalf("found %d open-door rows, want 4:\n%s", seen, out)
	}
}

func TestServingStudyHybriMoEWins(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 6
	out := ServingStudy(p, 6, 0.25).String()
	hybri := ttftOf(t, out, "HybriMoE")
	ktrans := ttftOf(t, out, "KTransformers")
	if hybri >= ktrans {
		t.Fatalf("HybriMoE TTFT %v should beat kTransformers %v\n%s", hybri, ktrans, out)
	}
}
