package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestServingStudyShape(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	tbl := ServingStudy(p, 4, 0.25)
	out := render(t, tbl)
	if tbl.NumRows() != 4 {
		t.Fatalf("frameworks = %d, want 4:\n%s", tbl.NumRows(), out)
	}
	for _, fw := range []string{"llama.cpp", "AdapMoE", "KTransformers", "HybriMoE"} {
		if !strings.Contains(out, fw) {
			t.Fatalf("missing framework %s:\n%s", fw, out)
		}
	}
	// The serving driver reports percentile columns computed from the
	// Session event stream, not means only.
	for _, col := range []string{"p50-TTFT(s)", "p95-TTFT(s)", "p99-TTFT(s)", "p50-TBT(s)", "p95-TBT(s)", "p99-TBT(s)"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing percentile column %s:\n%s", col, out)
		}
	}
}

// TestServingStudyPercentilesOrdered checks p50 ≤ p95 ≤ p99 on every
// row for both metrics.
func TestServingStudyPercentilesOrdered(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	out := ServingStudy(p, 5, 0.25).String()
	for _, fw := range []string{"llama.cpp", "AdapMoE", "KTransformers", "HybriMoE"} {
		fields := rowFields(t, out, fw)
		// Columns: name, mean-TTFT, p50-TTFT, p95-TTFT, p99-TTFT,
		// p50-TBT, p95-TBT, p99-TBT, hit-rate.
		for _, span := range [][2]int{{2, 4}, {5, 7}} {
			for i := span[0]; i < span[1]; i++ {
				lo := parseField(t, fields[i])
				hi := parseField(t, fields[i+1])
				if lo > hi {
					t.Fatalf("%s: percentile column %d (%v) above column %d (%v)\n%s",
						fw, i, lo, i+1, hi, out)
				}
			}
		}
	}
}

func rowFields(t *testing.T, rendered, framework string) []string {
	t.Helper()
	for _, line := range strings.Split(rendered, "\n") {
		if strings.HasPrefix(line, framework) {
			return strings.Fields(line)
		}
	}
	t.Fatalf("framework %s not found in:\n%s", framework, rendered)
	return nil
}

func parseField(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// ttftOf extracts the mean-TTFT column for a framework row.
func ttftOf(t *testing.T, rendered, framework string) float64 {
	t.Helper()
	for _, line := range strings.Split(rendered, "\n") {
		if !strings.HasPrefix(line, framework) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("malformed row %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", fields[1], err)
		}
		return v
	}
	t.Fatalf("framework %s not found in:\n%s", framework, rendered)
	return 0
}

func TestServingStudyHybriMoEWins(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 6
	out := ServingStudy(p, 6, 0.25).String()
	hybri := ttftOf(t, out, "HybriMoE")
	ktrans := ttftOf(t, out, "KTransformers")
	if hybri >= ktrans {
		t.Fatalf("HybriMoE TTFT %v should beat kTransformers %v\n%s", hybri, ktrans, out)
	}
}
