package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestServingStudyShape(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	tbl := ServingStudy(p, 4, 0.25)
	out := render(t, tbl)
	if tbl.NumRows() != 4 {
		t.Fatalf("frameworks = %d, want 4:\n%s", tbl.NumRows(), out)
	}
	for _, fw := range []string{"llama.cpp", "AdapMoE", "KTransformers", "HybriMoE"} {
		if !strings.Contains(out, fw) {
			t.Fatalf("missing framework %s:\n%s", fw, out)
		}
	}
}

// ttftOf extracts the mean-TTFT column for a framework row.
func ttftOf(t *testing.T, rendered, framework string) float64 {
	t.Helper()
	for _, line := range strings.Split(rendered, "\n") {
		if !strings.HasPrefix(line, framework) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("malformed row %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", fields[1], err)
		}
		return v
	}
	t.Fatalf("framework %s not found in:\n%s", framework, rendered)
	return 0
}

func TestServingStudyHybriMoEWins(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 6
	out := ServingStudy(p, 6, 0.25).String()
	hybri := ttftOf(t, out, "HybriMoE")
	ktrans := ttftOf(t, out, "KTransformers")
	if hybri >= ktrans {
		t.Fatalf("HybriMoE TTFT %v should beat kTransformers %v\n%s", hybri, ktrans, out)
	}
}
