package exp

import (
	"strings"
	"testing"

	"hybrimoe/internal/cluster"
	"hybrimoe/internal/report"
)

// TestDisaggIsolationAtSaturation pins the tentpole acceptance claim at
// the study's saturating rate: splitting the fleet into a 1:2
// prefill/decode disaggregation must drop p95 time-between-tokens below
// the mixed baseline even though every migrated KV working set pays the
// interconnect, and the migrated requests must land warm — the affinity
// router steers each handoff toward the decode replica already holding
// its experts, so the working-set admission finds non-zero residency.
func TestDisaggIsolationAtSaturation(t *testing.T) {
	p := QuickParams()
	const requests, ratio = 18, 0.25

	base := driveFleet(p, ratio, 1, "round-robin", fleetRequests(p, requests, 0), nil)
	perReplica := float64(base.completed) / base.clockEnd
	rate := 2.4 * perReplica * disaggReplicas
	reqs := fleetRequests(p, requests, rate)

	mixed := driveDisagg(p, ratio, disaggReplicas, reqs, cluster.PoolSpec{})
	split := driveDisagg(p, ratio, disaggReplicas, reqs, cluster.PoolSpec{Prefill: 1, Decode: 2})

	if mixed.completed != requests || split.completed != requests {
		t.Fatalf("completions mixed=%d split=%d, want %d each",
			mixed.completed, split.completed, requests)
	}
	if mixed.handoffs != 0 {
		t.Fatalf("mixed baseline migrated %d requests, want 0", mixed.handoffs)
	}
	if split.handoffs != requests {
		t.Fatalf("split migrated %d requests, want every one of %d", split.handoffs, requests)
	}
	if split.allExperts == 0 || split.warmExperts == 0 {
		t.Fatalf("migrated working sets landed cold: %d/%d experts warm",
			split.warmExperts, split.allExperts)
	}
	if split.gapQ.P95 >= mixed.gapQ.P95 {
		t.Errorf("disaggregated p95 inter-token gap %.4f did not beat mixed %.4f at rate %.2f",
			split.gapQ.P95, mixed.gapQ.P95, rate)
	}
}

// TestDisaggRenderAnchorsMixedDelta checks the isolation-delta column
// arithmetic on fabricated results: within each rate group the delta is
// the mixed row's p95 gap minus the row's own, so mixed anchors at zero
// and a split that halves the gap shows the saved seconds positively.
func TestDisaggRenderAnchorsMixedDelta(t *testing.T) {
	mk := func(pools string, gap float64) []Row {
		return []Row{{pools, 1.0, 9, 1.5, 0, 0.0, 0.1, gap, 2.0}}
	}
	results := [][]Row{
		mk("mixed", 0.5), mk("1:2", 0.25), mk("2:1", 0.75),
		mk("mixed", 4.0), mk("1:2", 2.0), mk("2:1", 8.0),
	}
	out := renderString(disaggStudy{}.Render(DefaultParams(), results))
	if !strings.Contains(out, "isolation-delta(s)") {
		t.Fatalf("render lost the isolation-delta column:\n%s", out)
	}
	for _, want := range []string{"0.25", "-0.25", "2", "-4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing expected delta %q:\n%s", want, out)
		}
	}
}

// TestDisaggStudyGridShape pins the grid: rate-major, config-minor with
// the mixed baseline leading every rate group — the order Render's
// delta anchoring depends on.
func TestDisaggStudyGridShape(t *testing.T) {
	cells := disaggStudy{requests: 4, ratio: 0.25}.Cells(QuickParams())
	group := len(disaggConfigs())
	if len(cells) != 2*group {
		t.Fatalf("%d cells, want %d (2 rates × %d configs)", len(cells), 2*group, group)
	}
	for i, c := range cells {
		wantMixed := i%group == 0
		isMixed := strings.Contains(c.Label, "/mixed/")
		if wantMixed != isMixed {
			t.Fatalf("cell %d label %q breaks the mixed-first group order", i, c.Label)
		}
	}
}

// TestFleetStudiesPerPoolColumn pins the opt-in breakdown satellite: the
// registry-default (unpooled) fleet and churn studies render their
// historical headers untouched, while a pooled spec appends the
// per-pool column and driveFleet's breakdown accounts for every
// dispatch — fresh prompts on the prefill pool, handoffs on decode.
func TestFleetStudiesPerPoolColumn(t *testing.T) {
	p := QuickParams()
	hdr := func(r Renderable) string { return renderString(r) }

	plain := hdr(fleetStudy{}.Render(p, nil)) + hdr(fleetChurnStudy{}.Render(p, nil))
	if strings.Contains(plain, "per-pool") {
		t.Fatalf("unpooled studies grew a per-pool column:\n%s", plain)
	}
	spec := cluster.PoolSpec{Prefill: 1, Decode: 2}
	pooled := hdr(fleetStudy{pools: spec}.Render(p, nil)) +
		hdr(fleetChurnStudy{pools: spec}.Render(p, nil))
	if strings.Count(pooled, "per-pool") != 2 {
		t.Fatalf("pooled studies did not both render the per-pool column:\n%s", pooled)
	}

	const requests = 8
	r := driveFleet(p, 0.25, 3, "affinity", fleetRequests(p, requests, 10), nil,
		cluster.WithPools(spec))
	if got, want := r.perPool(), "P:8 D:8 M:0"; got != want {
		t.Fatalf("perPool() = %q, want %q (every request dispatched to prefill then handed off)",
			got, want)
	}
}

// TestDisaggRunDerivedMetrics keeps warmFrac honest on its edges.
func TestDisaggRunDerivedMetrics(t *testing.T) {
	var zero disaggRun
	if zero.warmFrac() != 0 {
		t.Fatal("zero-value disaggRun must not divide by zero")
	}
	r := disaggRun{warmExperts: 3, allExperts: 4, gapQ: report.LatencyStats{}}
	if got := r.warmFrac(); got != 0.75 {
		t.Fatalf("warmFrac = %v, want 0.75", got)
	}
}
