package exp

import (
	"strings"
	"testing"

	"hybrimoe/internal/workload"
)

// Acceptance pin: expert-parallel on the dual-A6000 preset must beat
// the single-GPU baseline (hybrimoe on one A6000 — the pre-refactor
// configuration) on decode throughput.
func TestPlacementDualExpertParallelBeatsSingleGPU(t *testing.T) {
	p := QuickParams()
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(6)
	workload.CapDecode(reqs, p.DecodeSteps)

	single := drivePlacement(p, 1, "hybrimoe", 0.25, reqs)
	dual := drivePlacement(p, 2, "expert-parallel", 0.25, reqs)
	if dual.decodeThroughput() <= single.decodeThroughput() {
		t.Fatalf("dual expert-parallel %.2f tok/s should beat single-GPU baseline %.2f tok/s",
			dual.decodeThroughput(), single.decodeThroughput())
	}
}

// Single-GPU planners are topology-invariant: hybrimoe on a dual
// platform is confined to GPU0 and reproduces its single-GPU run
// exactly, leaving the second device idle.
func TestPlacementSingleGPUPlannerTopologyInvariant(t *testing.T) {
	p := QuickParams()
	stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
	reqs := stream.NextN(4)
	workload.CapDecode(reqs, p.DecodeSteps)

	single := drivePlacement(p, 1, "hybrimoe", 0.25, reqs)
	dual := drivePlacement(p, 2, "hybrimoe", 0.25, reqs)
	if single.clockEnd != dual.clockEnd || single.decodeTokens != dual.decodeTokens {
		t.Fatalf("hybrimoe run changed with an idle extra GPU: %v/%d vs %v/%d",
			single.clockEnd, single.decodeTokens, dual.clockEnd, dual.decodeTokens)
	}
	if dual.gpuBusy[1] != 0 {
		t.Fatalf("single-GPU planner used GPU1 for %v seconds", dual.gpuBusy[1])
	}
}

func TestPlacementStudyRenders(t *testing.T) {
	tbl := PlacementStudy(QuickParams(), 3)
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"expert-parallel", "per-GPU-util", "hybrimoe"} {
		if !strings.Contains(out, want) {
			t.Fatalf("placement table missing %q:\n%s", want, out)
		}
	}
}
