package exp

import (
	"fmt"

	"hybrimoe/internal/cluster"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// churnRun extends fleetRun with the lifecycle accounting a churn
// scenario produces: how much work the failure displaced, how long the
// fleet took to absorb it, and what the cold scale-up replica's cache
// actually delivered while it re-warmed.
type churnRun struct {
	fleetRun
	rerouted, lost int
	// deadAt is when the lease expiry detected the failure (0 when the
	// scenario is churn-free).
	deadAt float64
	// recoverAt is the completion stamp of the last re-routed request —
	// the moment the displaced queue has fully drained elsewhere.
	recoverAt float64
	// dipRate is goodput inside the (stallAt, recoverAt] outage window;
	// postRate is goodput after recovery. dipDepth = 1 - dip/post.
	dipRate, postRate float64
	// coldHit and warmHit are aggregate cache hit fractions for the
	// scale-up replicas (born cold) and the original warm fleet.
	coldHit, warmHit float64
	coldRouted       int
}

func (r churnRun) dipDepth() float64 {
	if r.postRate == 0 {
		return 0
	}
	return 1 - r.dipRate/r.postRate
}

func (r churnRun) recovery() float64 {
	if r.recoverAt == 0 {
		return 0
	}
	return r.recoverAt - r.deadAt
}

// driveChurn serves reqs through an n-replica fleet with the given
// churn options (failures, scale plans) layered on, reading the
// lifecycle event stream the cluster now publishes: Rerouted records
// name the displaced requests, ReplicaDead stamps the detection time,
// and per-replica hit/miss sums split warm incumbents from cold
// joiners. stallAt anchors the dip window; pass 0 for churn-free rows.
func driveChurn(p Params, ratio float64, n int, routerName string,
	reqs []workload.Request, stallAt float64, opts ...cluster.Option) churnRun {
	c, err := NewFleet(n, routerName, p.Seed, ratio, append(workerOpts(p), opts...)...)
	if err != nil {
		panic(err)
	}
	c.Submit(reqs...)

	r := churnRun{fleetRun: fleetRun{offered: len(reqs)}}
	var (
		ttftQ        []float64
		reroutedIDs  = map[int]bool{}
		doneAt       = map[int]float64{}
		hits, misses = map[int]int64{}, map[int]int64{}
	)
	c.Run(func(ev cluster.Event) {
		switch ev.Kind {
		case cluster.EventRerouted:
			reroutedIDs[ev.Request] = true
			return
		case cluster.EventReplicaDead:
			if ev.End > r.deadAt {
				r.deadAt = ev.End
			}
			return
		}
		if ev.Kind != cluster.EventStep {
			return
		}
		if ev.End > r.clockEnd {
			r.clockEnd = ev.End
		}
		if ev.Phase == 0 { // prefill
			ttftQ = append(ttftQ, ev.Queued+ev.Latency)
		}
		hits[ev.Replica] += ev.Hits
		misses[ev.Replica] += ev.Misses
		if ev.Done {
			r.completed++
			doneAt[ev.Request] = ev.End
		}
	})
	r.ttftQ = report.Latencies(ttftQ)
	r.routed = c.Routed()
	r.pools = c.Pools()
	r.rerouted, r.lost = c.Rerouted(), c.Lost()

	for id := range reroutedIDs {
		if at, ok := doneAt[id]; ok && at > r.recoverAt {
			r.recoverAt = at
		}
	}
	if stallAt > 0 && r.recoverAt > stallAt {
		dip, post := 0, 0
		for _, at := range doneAt {
			switch {
			case at > stallAt && at <= r.recoverAt:
				dip++
			case at > r.recoverAt:
				post++
			}
		}
		r.dipRate = float64(dip) / (r.recoverAt - stallAt)
		if r.clockEnd > r.recoverAt {
			r.postRate = float64(post) / (r.clockEnd - r.recoverAt)
		}
	}
	hitFrac := func(h, m int64) float64 {
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}
	var ch, cm, wh, wm int64
	for i, h := range hits {
		if i >= n {
			ch, cm = ch+h, cm+misses[i]
		} else {
			wh, wm = wh+h, wm+misses[i]
		}
	}
	r.coldHit, r.warmHit = hitFrac(ch, cm), hitFrac(wh, wm)
	for i := n; i < len(r.routed); i++ {
		r.coldRouted += r.routed[i]
	}
	return r
}

// churnScenario is one failure/elasticity shape the study sweeps.
type churnScenario struct {
	name string
	// opts builds the scenario's lifecycle options from the calibrated
	// stall and scale stamps.
	opts func(stallAt, scaleAt float64) []cluster.Option
	// stalls reports whether the scenario includes the injected stall
	// (anchoring the dip-window metrics).
	stalls bool
}

func churnScenarios() []churnScenario {
	return []churnScenario{
		{"steady", func(_, _ float64) []cluster.Option { return nil }, false},
		{"stall", func(stallAt, _ float64) []cluster.Option {
			return []cluster.Option{cluster.WithFailure(1, stallAt, cluster.FailStall)}
		}, true},
		{"stall+standby", func(stallAt, scaleAt float64) []cluster.Option {
			return []cluster.Option{
				cluster.WithFailure(1, stallAt, cluster.FailStall),
				cluster.WithScalePlan(cluster.ScaleEvent{At: scaleAt, Delta: 1}),
			}
		}, true},
	}
}

// FleetChurnStudy sweeps churn scenario × router on a fixed fleet: a
// steady baseline, a mid-run replica stall (detected by lease expiry,
// its queue re-routed), and the same stall answered by a cold standby —
// a scale-up scheduled at the stall time, warming while the lease runs
// down so it turns Serving just before detection re-routes the
// displaced queue.
// Reported per row: completions, re-routed and lost requests, aggregate
// goodput, the goodput dip depth inside the outage window, the recovery
// time (detection to last displaced request completing), queue-inclusive
// p95 TTFT, and the cold-vs-warm cache hit split that prices the
// elasticity re-warm. The claims this table carries: a stall dents
// goodput but never strands work (completed + lost == offered, every
// re-routed request finishes), and a scale-up replica serves at a
// visibly lower hit rate until its cache warms — the re-warm cost the
// lifecycle model charges for elasticity, paid under every router.
func FleetChurnStudy(p Params, requests, replicas int, ratio float64) *report.Table {
	return runTable(fleetChurnStudy{requests: requests, replicas: replicas, ratio: ratio}, p)
}

// fleetChurnStudy is FleetChurnStudy as a runner-iterated grid. The
// serial prologue calibrates per-replica capacity (closed loop), then a
// churn-free span at the swept rate places the stall at 0.3x span, so
// the scenario stamps track workload scale instead of hard-coding
// simulated seconds. The standby scale-up fires at the stall itself:
// its warm-up (DefaultWarmup) is shorter than the stalled replica's
// lease expiry (DefaultLeaseTTL plus jitter), so by detection the cold
// joiner is Serving and absorbs part of the displaced queue — which is
// exactly when its untrustworthy PredictedResidency matters.
type fleetChurnStudy struct {
	requests, replicas int
	ratio              float64
	// pools optionally disaggregates the churned fleet; the registry
	// default is unpooled, which renders exactly the historical table.
	pools cluster.PoolSpec
}

func (fleetChurnStudy) ID() string { return "fleet-churn" }
func (fleetChurnStudy) Describe() string {
	return "Fleet churn: stall/scale-up scenarios × router, recovery and re-warm cost"
}

// churnRouters are the two dispatch policies the churn grid contrasts:
// lease-blind rotation (keeps feeding a silently stalled replica until
// detection) against lease- and readiness-aware affinity.
var churnRouters = []string{"round-robin", "affinity"}

func (s fleetChurnStudy) Cells(p Params) []Cell {
	base := driveFleet(p, s.ratio, 1, "round-robin", fleetRequests(p, s.requests, 0), nil)
	perReplica := float64(base.completed) / base.clockEnd
	// 1.2x aggregate capacity: enough overload that a lost replica digs
	// a visible backlog, low enough that arrivals outlast the re-warm.
	rate := 1.2 * perReplica * float64(s.replicas)
	reqs := fleetRequests(p, s.requests, rate)

	span := driveFleet(p, s.ratio, s.replicas, "round-robin", reqs, nil).clockEnd
	stallAt := 0.3 * span
	scaleAt := stallAt

	var cells []Cell
	for _, sc := range churnScenarios() {
		for _, routerName := range churnRouters {
			cells = append(cells, Cell{
				Label: fmt.Sprintf("fleet-churn/%s/%s", sc.name, routerName),
				Run: func() []Row {
					anchor := 0.0
					if sc.stalls {
						anchor = stallAt
					}
					opts := append(sc.opts(stallAt, scaleAt), poolOpts(s.pools)...)
					r := driveChurn(p, s.ratio, s.replicas, routerName, reqs,
						anchor, opts...)
					row := Row{sc.name, routerName, r.completed, r.rerouted, r.lost,
						r.goodput(), r.dipDepth(), r.recovery(), r.ttftQ.P95,
						r.coldRouted, r.coldHit, r.warmHit}
					if s.pools.Pooled() {
						row = append(row, r.perPool())
					}
					return []Row{row}
				},
			})
		}
	}
	return cells
}

func (s fleetChurnStudy) Render(_ Params, results [][]Row) Renderable {
	cols := []string{"scenario", "router", "completed", "rerouted", "lost", "goodput(req/s)",
		"dip-depth", "recovery(s)", "p95-TTFT(s)", "cold-routed", "cold-hit", "warm-hit"}
	if s.pools.Pooled() {
		cols = append(cols, "per-pool")
	}
	return tableFromCells(
		fmt.Sprintf("Fleet churn study: scenario × router, %d replicas (stall at 0.3 span, standby scale-up at the stall)", s.replicas),
		cols, results)
}
