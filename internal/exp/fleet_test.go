package exp

import (
	"strings"
	"testing"

	"hybrimoe/internal/cluster"
	"hybrimoe/internal/report"
)

// TestFleetStudyAffinityMeetsRoundRobin pins the fleet study's headline
// claim at the acceptance shape: a 4-replica fleet at equal per-replica
// hardware, swept over the study's Poisson rate grid, where affinity
// routing must match or beat content-blind round-robin on aggregate
// goodput at every rate and strictly beat it at least once. The sweep
// mirrors FleetStudy's calibration exactly (single-replica closed-loop
// capacity and forward p95 anchoring the shared SLO guard) so the test
// guards the same numbers the rendered table reports.
func TestFleetStudyAffinityMeetsRoundRobin(t *testing.T) {
	p := QuickParams()
	const requests, replicas, ratio = 16, 4, 0.25

	base := driveFleet(p, ratio, 1, "round-robin", fleetRequests(p, requests, 0), nil)
	perReplica := float64(base.completed) / base.clockEnd
	guard := fleetGuard(base.ttftQ.P95)

	strictly := false
	for _, mult := range []float64{1.5, 4} {
		rate := mult * perReplica * replicas
		reqs := fleetRequests(p, requests, rate)
		aff := driveFleet(p, ratio, replicas, "affinity", reqs, guard())
		rr := driveFleet(p, ratio, replicas, "round-robin", reqs, guard())
		if aff.goodput() < rr.goodput() {
			t.Errorf("rate %.2f: affinity goodput %.3f < round-robin %.3f",
				rate, aff.goodput(), rr.goodput())
		}
		if aff.goodput() > rr.goodput() {
			strictly = true
		}
	}
	if !strictly {
		t.Error("affinity never strictly beat round-robin at any swept rate")
	}
}

// TestFleetStudyRendersEveryRouter checks the rendered table carries one
// row per registered router for every replicas × rate cell, so a router
// added to the registry cannot silently drop out of the study.
func TestFleetStudyRendersEveryRouter(t *testing.T) {
	p := QuickParams()
	table := FleetStudy(p, 8, []int{2}, 0.25)
	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, name := range cluster.RouterNames() {
		if want, got := 2, strings.Count(out, name+" "); got != want {
			t.Errorf("router %q appears %d times, want %d (one per rate)\n%s",
				name, got, want, out)
		}
	}
}

// fleetRunSanity keeps the helper struct honest on its derived ratios.
func TestFleetRunDerivedMetrics(t *testing.T) {
	r := fleetRun{offered: 8, completed: 6, shed: 2, clockEnd: 3.0,
		ttftQ: report.LatencyStats{}}
	if got := r.shedFraction(); got != 0.25 {
		t.Fatalf("shedFraction = %v, want 0.25", got)
	}
	if got := r.goodput(); got != 2.0 {
		t.Fatalf("goodput = %v, want 2.0", got)
	}
	var zero fleetRun
	if zero.shedFraction() != 0 || zero.goodput() != 0 {
		t.Fatal("zero-value fleetRun must not divide by zero")
	}
}
