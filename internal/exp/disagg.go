package exp

import (
	"fmt"

	"hybrimoe/internal/cluster"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// disaggRun extends fleetRun with the stage-split accounting a
// disaggregation run produces: how many requests migrated, how warm the
// priced working set landed, and the inter-token gap distribution the
// interference claim is judged on.
type disaggRun struct {
	fleetRun
	handoffs                int
	warmExperts, allExperts int
	// gapQ summarises inter-token gaps: consecutive decode completions
	// per request, with the first gap anchored at the prefill completion
	// so migration transfer and decode-pool queueing are charged to it.
	gapQ report.LatencyStats
}

// warmFrac is the fraction of migrated working-set experts already
// resident on the adopting decode replica (0 when nothing migrated).
func (r disaggRun) warmFrac() float64 {
	if r.allExperts == 0 {
		return 0
	}
	return float64(r.warmExperts) / float64(r.allExperts)
}

// driveDisagg serves reqs through an n-replica affinity-routed fleet
// under the given pool spec (zero spec = the mixed baseline), measuring
// time-between-tokens as the per-request inter-token gap stream rather
// than raw step latency: a decode step that waited behind a neighbour's
// long prefill shows up as a stretched gap even though the step itself
// was cheap, which is exactly the interference disaggregation removes.
func driveDisagg(p Params, ratio float64, n int, reqs []workload.Request,
	spec cluster.PoolSpec) disaggRun {
	c, err := NewFleet(n, "affinity", p.Seed, ratio, append(workerOpts(p), poolOpts(spec)...)...)
	if err != nil {
		panic(err)
	}
	c.Submit(reqs...)

	r := disaggRun{fleetRun: fleetRun{offered: len(reqs)}}
	var (
		ttftQ, gaps []float64
		prefillEnd  = map[int]float64{}
		lastDecode  = map[int]float64{}
	)
	c.Run(func(ev cluster.Event) {
		if ev.Kind != cluster.EventStep {
			// Handoff and lifecycle records carry no compute; their cost
			// already lands in the first decode gap via ReadyAt.
			return
		}
		if ev.End > r.clockEnd {
			r.clockEnd = ev.End
		}
		switch ev.Phase {
		case engine.PhasePrefill:
			ttftQ = append(ttftQ, ev.Queued+ev.Latency)
			prefillEnd[ev.Request] = ev.End
		case engine.PhaseDecode:
			prev, ok := lastDecode[ev.Request]
			if !ok {
				prev = prefillEnd[ev.Request]
			}
			gaps = append(gaps, ev.End-prev)
			lastDecode[ev.Request] = ev.End
		}
		if ev.Done {
			r.completed++
		}
	})
	r.ttftQ = report.Latencies(ttftQ)
	r.gapQ = report.Latencies(gaps)
	r.routed = c.Routed()
	r.pools = c.Pools()
	r.handoffs = c.Handoffs()
	r.warmExperts, r.allExperts = c.MigratedExperts()
	return r
}

// disaggConfigs is the pool grid the study contrasts, mixed baseline
// first in each rate group so Render can anchor the isolation delta.
func disaggConfigs() []cluster.PoolSpec {
	return []cluster.PoolSpec{
		{},                      // mixed: every replica serves both stages
		{Prefill: 1, Decode: 2}, // decode-heavy split
		{Prefill: 2, Decode: 1}, // prefill-heavy split
	}
}

// DisaggStudy sweeps pool split × Poisson arrival rate on a fixed
// 3-replica fleet, contrasting mixed colocation against
// prefill/decode disaggregation with priced working-set migration.
func DisaggStudy(p Params, requests int, ratio float64) *report.Table {
	return runTable(disaggStudy{requests: requests, ratio: ratio}, p)
}

// disaggStudy is DisaggStudy as a runner-iterated grid. The serial
// prologue calibrates per-replica capacity closed-loop, then sweeps
// {mixed, 1:2, 2:1} pool splits across two Poisson rates (moderate and
// saturating multiples of aggregate capacity), every cell serving the
// same per-rate request stream through the same three replicas under
// the affinity router. Reported per row: completions, goodput,
// handoffs with the warm fraction of their migrated working sets,
// queue-inclusive p95 TTFT, p95 inter-token gap (TBT — first gap
// anchored at prefill completion so the priced migration transfer is
// charged, not hidden), the isolation delta (mixed p95 gap minus this
// row's, within the rate group), and makespan. The claim this table
// carries: at saturating load a pool split keeps decode replicas free
// of long-prompt prefill steps, so p95 TBT drops below the mixed
// baseline even after paying the interconnect for every migrated KV
// working set — while mixed keeps the edge on TTFT because prefills
// spread over all three boxes. Disaggregation buys steady token
// cadence with prefill throughput, the trade the paper's serving
// problem turns on.
type disaggStudy struct {
	requests int
	ratio    float64
}

func (disaggStudy) ID() string { return "disagg" }
func (disaggStudy) Describe() string {
	return "Disaggregated serving: pool split × arrival rate, TBT isolation vs migration cost"
}

// disaggReplicas is the fixed fleet size the split grid divides.
const disaggReplicas = 3

// disaggGapCol is the p95 inter-token-gap column index in the rows
// Cells emits, which Render reads back to compute isolation deltas.
const disaggGapCol = 7

func (s disaggStudy) Cells(p Params) []Cell {
	base := driveFleet(p, s.ratio, 1, "round-robin", fleetRequests(p, s.requests, 0), nil)
	perReplica := float64(base.completed) / base.clockEnd

	// Rate-major, config-minor grid (mixed first per rate) — Render
	// leans on this order to pair each split with its mixed baseline.
	var cells []Cell
	for _, mult := range []float64{1.2, 2.4} {
		rate := mult * perReplica * disaggReplicas
		reqs := fleetRequests(p, s.requests, rate)
		for _, spec := range disaggConfigs() {
			cells = append(cells, Cell{
				Label: fmt.Sprintf("disagg/%s/%.3g", spec, rate),
				Run: func() []Row {
					r := driveDisagg(p, s.ratio, disaggReplicas, reqs, spec)
					return []Row{{spec.String(), rate, r.completed, r.goodput(),
						r.handoffs, r.warmFrac(), r.ttftQ.P95, r.gapQ.P95,
						r.clockEnd}}
				},
			})
		}
	}
	return cells
}

func (s disaggStudy) Render(_ Params, results [][]Row) Renderable {
	t := report.NewTable(
		fmt.Sprintf("Disaggregation study: pool split × Poisson rate, %d replicas (affinity router, priced KV migration)", disaggReplicas),
		"pools", "rate(req/s)", "completed", "goodput(req/s)", "handoffs",
		"warm-frac", "p95-TTFT(s)", "p95-gap(s)", "isolation-delta(s)", "makespan(s)")
	group := len(disaggConfigs())
	for i, rows := range results {
		mixed := results[i-i%group][0][disaggGapCol].(float64)
		for _, r := range rows {
			delta := mixed - r[disaggGapCol].(float64)
			out := append(append(Row{}, r[:disaggGapCol+1]...), delta)
			out = append(out, r[disaggGapCol+1:]...)
			t.AddRow(out...)
		}
	}
	return t
}
