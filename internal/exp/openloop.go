package exp

import (
	"fmt"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// openLoopRun aggregates one arrival-rate × scheduler × batch-former
// serving run.
type openLoopRun struct {
	offered, completed, shed int
	clockEnd                 float64
	// ttftQ is the queue-inclusive TTFT (arrival → first token);
	// forward is the prefill forward alone (the pre-arrival TTFT);
	// queue is the arrival → prefill-start wait.
	ttftQ, forward, queue report.LatencyStats
}

func (r openLoopRun) shedFraction() float64 {
	if r.offered == 0 {
		return 0
	}
	return float64(r.shed) / float64(r.offered)
}

// goodput reports completions per simulated second — shed requests
// deliver nothing, so admission raises it exactly when dropping load
// lets the rest finish sooner.
func (r openLoopRun) goodput() float64 {
	if r.clockEnd == 0 {
		return 0
	}
	return float64(r.completed) / r.clockEnd
}

// driveOpenLoop serves reqs through a fresh HybriMoE engine under the
// named request scheduler, batch former and optional admission policy.
func driveOpenLoop(p Params, ratio float64, reqs []workload.Request,
	schedName, batchName string, adm engine.AdmissionPolicy) openLoopRun {
	opts := []engine.Option{
		engine.WithCacheRatio(ratio),
		engine.WithSeed(p.Seed),
		engine.WithRequestScheduler(schedName),
		engine.WithBatchPolicy(batchName, BatchBudget),
	}
	if adm != nil {
		opts = append(opts, engine.WithAdmission(adm))
	}
	e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(), opts...)
	if err != nil {
		panic(err)
	}
	s := e.NewSession(engine.WithMaxConcurrent(3))
	s.Submit(reqs...)

	r := openLoopRun{offered: len(reqs)}
	var ttftQ, forward, queue []float64
	s.Run(func(ev engine.StepEvent) {
		if ev.End > r.clockEnd {
			r.clockEnd = ev.End
		}
		switch ev.Phase {
		case engine.PhasePrefill:
			forward = append(forward, ev.Latency)
			ttftQ = append(ttftQ, ev.Queued+ev.Latency)
			queue = append(queue, ev.Queued)
		case engine.PhaseShed:
			r.shed++
			return
		case engine.PhaseDeferred:
			return
		}
		if ev.Done {
			r.completed++
		}
	})
	r.ttftQ = report.Latencies(ttftQ)
	r.forward = report.Latencies(forward)
	r.queue = report.Latencies(queue)
	return r
}

// OpenLoopStudy serves the same mixed-corpus request sequence under
// open-loop Poisson arrivals at three rates — about half, twice and
// eight times the platform's measured capacity — across request
// schedulers and batch formers, with an SLO admission guard whose p95
// TTFT target is calibrated at twice the closed-loop forward p95. Only
// the arrival stamps vary with the rate (the stream draws arrivals from
// a dedicated RNG), so the rows isolate queueing from workload content.
// Reported per combination: completions, shed fraction of offered load,
// goodput (completions per simulated second), the queue-inclusive p95
// TTFT (arrival → first token), the forward-only p95 it replaces, and
// the p95 queue wait itself. As the rate climbs past capacity the queue
// wait — invisible to the pre-arrival, queue-blind TTFT — dominates the
// p95 and drives the guard from admit to shed.
func OpenLoopStudy(p Params, requests int, ratio float64) *report.Table {
	return runTable(openLoopStudy{requests: requests, ratio: ratio}, p)
}

// openLoopStudy is OpenLoopStudy as a runner-iterated grid: the
// closed-loop capacity calibration runs serially in Cells, then one
// cell per rate × scheduler × batch-former point. Each cell draws its
// own request stream (deterministic in the rate), so cells share no
// mutable state.
type openLoopStudy struct {
	requests int
	ratio    float64
}

func (openLoopStudy) ID() string { return "open-loop" }
func (openLoopStudy) Describe() string {
	return "Open-loop Poisson arrivals × scheduler × batch former"
}

func (s openLoopStudy) Cells(p Params) []Cell {
	mkReqs := func(rate float64) []workload.Request {
		stream := workload.NewStream(p.Seed, workload.AllDatasets()...)
		if rate > 0 {
			stream.WithArrivals(workload.Poisson(rate))
		}
		reqs := stream.NextN(s.requests)
		workload.CapDecode(reqs, p.DecodeSteps)
		return reqs
	}

	// Closed-loop calibration: measured capacity anchors the rate grid
	// and the forward p95 anchors the SLO target, so the study stays
	// meaningful across Params scales. The target sits just above the
	// forward p95 with a low sample floor — a deliberately strained SLO
	// that only queueing can breach, so the shed fraction tracks the
	// arrival rate rather than the workload content.
	base := driveOpenLoop(p, s.ratio, mkReqs(0), "round-robin", "none", nil)
	capacity := float64(base.completed) / base.clockEnd
	adm := func() engine.AdmissionPolicy {
		return &engine.SLOAdmission{TTFTp95: 1.25 * base.forward.P95, MinSamples: 2, ShedFactor: 1.5}
	}

	var cells []Cell
	for _, mult := range []float64{0.5, 2, 8} {
		rate := mult * capacity
		for _, schedName := range []string{"round-robin", "sjf"} {
			for _, batchName := range []string{"none", "greedy"} {
				cells = append(cells, Cell{
					Label: fmt.Sprintf("open-loop/%.3g/%s/%s", rate, schedName, batchName),
					Run: func() []Row {
						r := driveOpenLoop(p, s.ratio, mkReqs(rate), schedName, batchName, adm())
						return []Row{{rate, schedName, batchName, r.completed, r.shedFraction(),
							r.goodput(), r.ttftQ.P95, r.forward.P95, r.queue.P95}}
					},
				})
			}
		}
	}
	return cells
}

func (openLoopStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("Open-loop study: Poisson arrival rate × scheduler × batch former (HybriMoE)",
		[]string{"rate(req/s)", "reqsched", "batch", "completed", "shed-fraction",
			"goodput(req/s)", "p95-TTFT(s)", "p95-prefill(s)", "p95-queue(s)"}, results)
}
