package exp

import (
	"fmt"
	"io"
)

// Renderable is anything the harness can print (tables and figures).
type Renderable interface {
	Render(w io.Writer)
}

// Experiment pairs an identifier with its driver.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Params) Renderable
}

// Registry lists every reproducible table/figure, in paper order:
// the figure/ablation drivers first, then every grid Study through the
// studyExperiment adapter (so Lookup and RunAll treat both uniformly;
// studies additionally run their cells on the parallel sweep runner).
func Registry() []Experiment {
	exps := []Experiment{
		{"fig3a", "Activation frequency CDF (neurons vs experts)", func(p Params) Renderable { return Fig3a(p) }},
		{"fig3b", "Expert reuse probability by score rank", func(p Params) Renderable { return Fig3b(p) }},
		{"fig3c", "Prefill expert workload distribution", func(p Params) Renderable { return Fig3c(p) }},
		{"fig3d", "Existing frameworks across scenarios", func(p Params) Renderable { return Fig3d(p) }},
		{"fig3e", "Device time vs expert count", func(p Params) Renderable { return Fig3e() }},
		{"fig3f", "Device time vs workload size", func(p Params) Renderable { return Fig3f() }},
		{"fig7", "Prefill TTFT comparison", func(p Params) Renderable { return Fig7(p) }},
		{"fig8", "Decode TBT comparison", func(p Params) Renderable { return Fig8(p) }},
		{"fig9", "Cache hit rate MRS vs LRU", func(p Params) Renderable { return Fig9(p) }},
		{"table3", "Ablation speedup breakdown", func(p Params) Renderable { return Table3(p) }},
		{"abl-topp", "MRS top-p width ablation", func(p Params) Renderable { return AblationMRSTopP(p) }},
		{"abl-window", "Prefetch lookahead window ablation", func(p Params) Renderable { return AblationLookahead(p) }},
		{"abl-prefetch", "Prefetch policy ablation", func(p Params) Renderable { return AblationPrefetchPolicy(p) }},
		{"abl-warmup", "CPU warm-up modelling ablation", func(p Params) Renderable { return AblationCPUWarmup(p) }},
	}
	for _, s := range Studies() {
		exps = append(exps, studyExperiment(s))
	}
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// RunAll executes every registered experiment and writes the rendered
// results to w, separated by blank lines. It also prints the two
// headline aggregates the paper's abstract quotes.
func RunAll(w io.Writer, p Params) {
	for _, e := range Registry() {
		e.Run(p).Render(w)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Headline: prefill speedup vs kTransformers = %.2fx (paper: 1.33x)\n", Fig7MeanSpeedup(p))
	fmt.Fprintf(w, "Headline: decode  speedup vs kTransformers = %.2fx (paper: 1.70x)\n", Fig8MeanSpeedup(p))
	mean, worst := AblationGreedyVsExhaustive(200, p.Seed)
	fmt.Fprintf(w, "Scheduler quality: greedy/optimal makespan mean=%.3f worst=%.3f over 200 instances\n", mean, worst)
}
