package exp

import (
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/quant"
	"hybrimoe/internal/report"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
)

// PrecisionStudy quantifies the mixed-precision offloading trade-off
// (HOBBIT-style, which the paper cites as related work): per model,
// the INT4 vs INT8 expert footprint and PCIe transfer time, alongside
// the *measured* numeric fidelity of the two kernel paths on a real
// matrix-vector product. Transferring an expert at INT8 costs ~2× the
// link time but roughly 16× lower reconstruction error — the knob a
// mixed-precision loader trades per expert importance.
func PrecisionStudy(p Params) *report.Table {
	return runTable(precisionStudy{}, p)
}

// precisionStudy is PrecisionStudy as a runner-iterated grid: the
// kernel-fidelity probe runs serially in Cells, then one cell per
// model computes its footprint/transfer row.
type precisionStudy struct{}

func (precisionStudy) ID() string       { return "precision" }
func (precisionStudy) Describe() string { return "INT4 vs INT8 offloading trade-off" }

func (precisionStudy) Cells(p Params) []Cell {
	link := hw.A6000Platform().Links[0]

	// Measured fidelity on a probe expert (scaled, real kernels).
	rng := stats.NewRNG(p.Seed)
	probe := tensor.NewMatrix(128, 512)
	probe.FillRandom(rng)
	x := make([]float32, 512)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	q4 := quant.Quantize(probe, quant.DefaultGroupSize)
	q8 := quant.Quantize8(probe, quant.DefaultGroupSize)
	f4 := quant.MeasureFidelity(probe, q4.MatVec, x)
	f8 := quant.MeasureFidelity(probe, q8.MatVec, x)

	var cells []Cell
	for _, cfg := range moe.AllModels() {
		cells = append(cells, Cell{Label: "precision/" + cfg.Name, Run: func() []Row {
			int4 := cfg.ExpertBytes()
			int8 := expertBytes8(cfg)
			return []Row{{cfg.Name,
				float64(int4) / (1 << 20), float64(int8) / (1 << 20),
				1e3 * link.TransferTime(int4), 1e3 * link.TransferTime(int8),
				f4.RelL2Error, f8.RelL2Error}}
		}})
	}
	return cells
}

func (precisionStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("Extension: INT4 vs INT8 expert offloading trade-off",
		[]string{"model", "int4-bytes(MB)", "int8-bytes(MB)", "int4-xfer(ms)", "int8-xfer(ms)",
			"int4-relL2", "int8-relL2"}, results)
}

func expertBytes8(cfg *moe.Config) int64 {
	per := quant.Quantized8SizeBytes(cfg.Intermediate, cfg.Hidden, quant.DefaultGroupSize)
	down := quant.Quantized8SizeBytes(cfg.Hidden, cfg.Intermediate, quant.DefaultGroupSize)
	return 2*per + down
}
