package exp

import (
	"strings"
	"testing"
)

func TestOpenLoopStudyShape(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	tbl := OpenLoopStudy(p, 5, 0.25)
	out := render(t, tbl)
	// 3 rates × 2 schedulers × 2 batch formers.
	if tbl.NumRows() != 12 {
		t.Fatalf("rows = %d, want 12:\n%s", tbl.NumRows(), out)
	}
	for _, name := range []string{"round-robin", "sjf", "none", "greedy"} {
		if !strings.Contains(out, name) {
			t.Fatalf("missing axis value %s:\n%s", name, out)
		}
	}
	for _, col := range []string{"rate(req/s)", "shed-fraction", "goodput(req/s)",
		"p95-TTFT(s)", "p95-prefill(s)", "p95-queue(s)"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %s:\n%s", col, out)
		}
	}
}

// TestOpenLoopStudyQueueingShowsAtHighRate pins the acceptance claims:
// past capacity the queue-inclusive p95 TTFT strictly exceeds the pure
// prefill forward p95 (the wait the queue-blind accounting hid), and
// the admission guard sheds a larger fraction at the highest arrival
// rate than at the lowest.
func TestOpenLoopStudyQueueingShowsAtHighRate(t *testing.T) {
	p := QuickParams()
	p.DecodeSteps = 4
	tbl := OpenLoopStudy(p, 6, 0.25)
	out := render(t, tbl)

	type row struct {
		rate, shedFrac, ttftQ, forward float64
	}
	var rows []row
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		// rate, reqsched, batch, completed, shed-fraction, goodput,
		// p95-TTFT, p95-prefill, p95-queue
		if len(fields) != 9 || fields[1] != "round-robin" && fields[1] != "sjf" {
			continue
		}
		rows = append(rows, row{
			rate:     parseField(t, fields[0]),
			shedFrac: parseField(t, fields[4]),
			ttftQ:    parseField(t, fields[6]),
			forward:  parseField(t, fields[7]),
		})
	}
	if len(rows) != 12 {
		t.Fatalf("parsed %d data rows, want 12:\n%s", len(rows), out)
	}
	minRate, maxRate := rows[0].rate, rows[0].rate
	for _, r := range rows {
		if r.rate < minRate {
			minRate = r.rate
		}
		if r.rate > maxRate {
			maxRate = r.rate
		}
	}
	var lowShed, highShed float64
	var highRows int
	for _, r := range rows {
		if r.rate == maxRate {
			highRows++
			highShed += r.shedFrac
			if r.ttftQ <= r.forward {
				t.Fatalf("past-capacity burst: queue-inclusive p95 TTFT %v not above forward p95 %v\n%s",
					r.ttftQ, r.forward, out)
			}
		}
		if r.rate == minRate {
			lowShed += r.shedFrac
		}
	}
	if highRows == 0 {
		t.Fatalf("no rows at the top rate:\n%s", out)
	}
	if highShed <= lowShed {
		t.Fatalf("shed fraction did not rise with arrival rate: low-rate sum %v, high-rate sum %v\n%s",
			lowShed, highShed, out)
	}
}
