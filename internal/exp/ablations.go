package exp

import (
	"hybrimoe/internal/cache"
	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/prefetch"
	"hybrimoe/internal/report"
	"hybrimoe/internal/sched"
	"hybrimoe/internal/stats"
)

// AblationGreedyVsExhaustive quantifies DESIGN.md ablation 1: how close
// the greedy timeline-filling simulation gets to the brute-force
// assignment optimum, over random layer instances. Returns the mean and
// worst greedy/optimal makespan ratios.
func AblationGreedyVsExhaustive(trials int, seed uint64) (mean, worst float64) {
	rng := stats.NewRNG(seed)
	p := hw.A6000Platform()
	cfg := moe.DeepSeek()
	var sum float64
	n := 0
	for trial := 0; trial < trials; trial++ {
		tasks := randomTasks(rng, cfg, 2+rng.Intn(8))
		greedy := sched.NewHybriMoE().Plan(tasks, p, sched.Resources{}).Makespan
		opt := sched.NewExhaustive().Plan(tasks, p, sched.Resources{}).Makespan
		if opt <= 0 {
			continue
		}
		ratio := greedy / opt
		sum += ratio
		n++
		if ratio > worst {
			worst = ratio
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), worst
}

func randomTasks(rng *stats.RNG, cfg *moe.Config, n int) []sched.Task {
	var tasks []sched.Task
	for e := 0; e < n; e++ {
		load := 1
		if rng.Float64() < 0.5 {
			load = 1 + rng.Intn(96)
		}
		tasks = append(tasks, sched.Task{
			ID:     moe.ExpertID{Layer: 0, Index: e},
			Load:   load,
			Flops:  cfg.ExpertFlops(load),
			Bytes:  cfg.ExpertBytes(),
			Cached: rng.Float64() < 0.4,
		})
	}
	return tasks
}

// AblationMRSTopP measures DESIGN.md ablation 2: steady-state hit rate
// of MRS as the top-p accumulation width varies (the paper fixes
// p = 2K). Returns a table of p multiplier vs hit rate for DeepSeek at
// 40% capacity.
func AblationMRSTopP(p Params) *report.Table {
	t := report.NewTable("Ablation: MRS top-p width (DeepSeek, 40% cache)",
		"p/K", "hit-rate")
	cfg := moe.DeepSeek()
	for _, mult := range []int{1, 2, 4, 8} {
		hr := CacheHitRate(cfg, cache.NewMRS(cache.DefaultAlpha, mult*cfg.ActivatedExperts),
			0.40, p.HitRateIters, p.Seed)
		t.AddRow(mult, hr)
	}
	// Full-width accumulation (p = N) as the degenerate case.
	hr := CacheHitRate(cfg, cache.NewMRS(cache.DefaultAlpha, cfg.RoutedExperts),
		0.40, p.HitRateIters, p.Seed)
	t.AddRow(cfg.RoutedExperts/cfg.ActivatedExperts, hr)
	return t
}

// AblationLookahead measures DESIGN.md ablation 3: decode latency as the
// impact-driven prefetcher's window varies (the paper uses 3 layers).
func AblationLookahead(p Params) *report.Table {
	t := report.NewTable("Ablation: prefetch lookahead window (DeepSeek, 25% cache)",
		"window", "decode-TBT(s)")
	platform := hw.A6000Platform()
	cfg := moe.DeepSeek()
	for _, window := range []int{0, 1, 3, 5} {
		fw := engine.HybriMoEFramework()
		var opts []engine.Option
		if window == 0 {
			fw.Prefetch = "none"
		} else {
			opts = append(opts, engine.WithPrefetcher(&prefetch.ImpactDriven{Window: window}))
		}
		e := mustEngine(cfg, platform, fw, 0.25, p.Seed, opts...)
		t.AddRow(window, e.RunDecode(p.DecodeSteps).Mean())
	}
	return t
}

// AblationPrefetchPolicy compares impact-driven against naive
// next-layer-top-k and no prefetching, all else equal.
func AblationPrefetchPolicy(p Params) *report.Table {
	t := report.NewTable("Ablation: prefetch policy (DeepSeek, 25% cache)",
		"policy", "decode-TBT(s)")
	platform := hw.A6000Platform()
	cfg := moe.DeepSeek()
	for _, policy := range []string{"none", "next-layer-topk", "impact-driven"} {
		fw := engine.HybriMoEFramework()
		fw.Prefetch = policy
		e := mustEngine(cfg, platform, fw, 0.25, p.Seed)
		t.AddRow(policy, e.RunDecode(p.DecodeSteps).Mean())
	}
	return t
}

// AblationCPUWarmup measures DESIGN.md ablation 5: the effect of
// modelling (and exploiting) the CPU's first-expert warm-up penalty on
// the scheduler's decisions.
func AblationCPUWarmup(p Params) *report.Table {
	t := report.NewTable("Ablation: CPU warm-up modelling (DeepSeek, 25% cache)",
		"warmup-model", "decode-TBT(s)")
	cfg := moe.DeepSeek()
	with := hw.A6000Platform()
	without := hw.A6000Platform()
	without.CPU.WarmupPenalty = 0
	for _, c := range []struct {
		name     string
		platform *hw.Platform
	}{{"modelled", with}, {"ignored", without}} {
		e := mustEngine(cfg, c.platform, engine.HybriMoEFramework(), 0.25, p.Seed)
		t.AddRow(c.name, e.RunDecode(p.DecodeSteps).Mean())
	}
	return t
}

// PlatformSweep runs the headline decode comparison on the laptop-class
// platform, checking the result shape holds beyond the paper's testbed.
func PlatformSweep(p Params) *report.Table {
	return runTable(platformStudy{}, p)
}

// platformStudy is PlatformSweep as a runner-iterated grid: one cell
// per model, each running the kTransformers and HybriMoE decode pair.
type platformStudy struct{}

func (platformStudy) ID() string       { return "platform" }
func (platformStudy) Describe() string { return "Laptop-class platform sweep" }

func (platformStudy) Cells(p Params) []Cell {
	platform := hw.LaptopPlatform()
	var cells []Cell
	for _, cfg := range moe.AllModels() {
		cells = append(cells, Cell{Label: "platform/" + cfg.Name, Run: func() []Row {
			kt := mustEngine(cfg, platform, engine.KTransformersFramework(), 0.25, p.Seed).RunDecode(p.DecodeSteps).Mean()
			hy := mustEngine(cfg, platform, engine.HybriMoEFramework(), 0.25, p.Seed).RunDecode(p.DecodeSteps).Mean()
			return []Row{{cfg.Name, kt, hy, kt / hy}}
		}})
	}
	return cells
}

func (platformStudy) Render(_ Params, results [][]Row) Renderable {
	return tableFromCells("Platform sweep: decode TBT on laptop-class hardware (25% cache)",
		[]string{"model", "KTrans(s)", "HybriMoE(s)", "speedup"}, results)
}
