package exp

import (
	"strings"
	"testing"

	"hybrimoe/internal/cluster"
)

// churnTestShape mirrors fleetChurnStudy's calibration at the registry
// scale, so the assertions below guard the same numbers the rendered
// table reports.
func churnTestShape(t *testing.T, p Params) (stallAt float64, drive func(router string, opts ...cluster.Option) churnRun) {
	t.Helper()
	const requests, replicas, ratio = 24, 3, 0.25
	base := driveFleet(p, ratio, 1, "round-robin", fleetRequests(p, requests, 0), nil)
	perReplica := float64(base.completed) / base.clockEnd
	rate := 1.2 * perReplica * replicas
	stream := fleetRequests(p, requests, rate)
	span := driveFleet(p, ratio, replicas, "round-robin", stream, nil).clockEnd
	stallAt = 0.3 * span
	drive = func(router string, opts ...cluster.Option) churnRun {
		anchor := 0.0
		if len(opts) > 0 {
			anchor = stallAt
		}
		return driveChurn(p, ratio, replicas, router, stream, anchor, opts...)
	}
	return stallAt, drive
}

// TestFleetChurnStallRecovers pins the study's headline recovery claim
// for both contrasted routers: a mid-run stall displaces queued work
// (re-routed with original arrivals), nothing is silently dropped
// (completed + lost == offered, every re-routed request finishes), and
// aggregate goodput recovers — the post-recovery completion rate beats
// the outage-window rate, so the dip has positive depth.
func TestFleetChurnStallRecovers(t *testing.T) {
	p := QuickParams()
	stallAt, drive := churnTestShape(t, p)
	for _, router := range churnRouters {
		r := drive(router, cluster.WithFailure(1, stallAt, cluster.FailStall))
		if r.rerouted == 0 {
			t.Errorf("%s: stall displaced no queued requests", router)
		}
		if r.completed+r.lost != r.offered {
			t.Errorf("%s: completed %d + lost %d != offered %d",
				router, r.completed, r.lost, r.offered)
		}
		if r.recoverAt == 0 {
			t.Errorf("%s: no re-routed request ever completed", router)
		}
		if r.recovery() <= 0 {
			t.Errorf("%s: recovery time %.3f not positive", router, r.recovery())
		}
		if r.dipDepth() <= 0 {
			t.Errorf("%s: goodput never recovered: dip depth %.3f (outage rate %.3f, post-recovery rate %.3f)",
				router, r.dipDepth(), r.dipRate, r.postRate)
		}
	}
}

// TestFleetChurnStandbyPaysRewarm pins the elasticity cost: a standby
// scale-up scheduled at the stall turns Serving before lease expiry
// re-routes the displaced queue, so the cold joiner serves real traffic
// under both routers — at a cache hit rate visibly below the warm
// fleet's. The two routers split the cold traffic differently (affinity
// chases the joiner's early clock harder than round-robin's blind
// rotation), which is the router contrast the rendered table carries.
func TestFleetChurnStandbyPaysRewarm(t *testing.T) {
	p := QuickParams()
	stallAt, drive := churnTestShape(t, p)
	runs := map[string]churnRun{}
	for _, router := range churnRouters {
		r := drive(router,
			cluster.WithFailure(1, stallAt, cluster.FailStall),
			cluster.WithScalePlan(cluster.ScaleEvent{At: stallAt, Delta: 1}))
		runs[router] = r
		if r.coldRouted == 0 {
			t.Errorf("%s: standby replica never served a request", router)
		}
		if r.coldHit >= r.warmHit {
			t.Errorf("%s: cold hit rate %.3f not below warm %.3f; re-warm cost invisible",
				router, r.coldHit, r.warmHit)
		}
		if r.completed+r.lost != r.offered {
			t.Errorf("%s: completed %d + lost %d != offered %d",
				router, r.completed, r.lost, r.offered)
		}
	}
	rr, aff := runs["round-robin"], runs["affinity"]
	if rr.coldRouted == aff.coldRouted && rr.coldHit == aff.coldHit {
		t.Errorf("routers split cold traffic identically (%d dispatches at hit %.3f); no contrast to render",
			rr.coldRouted, rr.coldHit)
	}
}

// TestFleetChurnSteadyIsQuiet pins the baseline row: with no churn
// configured the lifecycle layer stays silent — nothing re-routed,
// nothing lost, no dip, no recovery window — and every request lands.
func TestFleetChurnSteadyIsQuiet(t *testing.T) {
	p := QuickParams()
	_, drive := churnTestShape(t, p)
	for _, router := range churnRouters {
		r := drive(router)
		if r.rerouted != 0 || r.lost != 0 {
			t.Errorf("%s: steady run re-routed %d / lost %d", router, r.rerouted, r.lost)
		}
		if r.completed != r.offered {
			t.Errorf("%s: steady run completed %d of %d", router, r.completed, r.offered)
		}
		if r.dipDepth() != 0 || r.recovery() != 0 {
			t.Errorf("%s: steady run reports dip %.3f recovery %.3f",
				router, r.dipDepth(), r.recovery())
		}
	}
}

// TestFleetChurnStudyRendersEveryScenario checks the rendered table
// carries one row per scenario × router, so a scenario added to the
// grid cannot silently drop out of the study.
func TestFleetChurnStudyRendersEveryScenario(t *testing.T) {
	if testing.Short() {
		// The recovery/re-warm tests above cover the same drive path at
		// the same scale; the full 6-cell render is the long-mode check.
		t.Skip("full study render skipped in -short")
	}
	p := QuickParams()
	table := FleetChurnStudy(p, 24, 3, 0.25)
	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, sc := range churnScenarios() {
		// Anchor to line starts: the table title also mentions "stall".
		if want, got := len(churnRouters), strings.Count(out, "\n"+sc.name+" "); got != want {
			t.Errorf("scenario %q appears %d times, want %d (one per router)\n%s",
				sc.name, got, want, out)
		}
	}
	for _, router := range churnRouters {
		if !strings.Contains(out, router) {
			t.Errorf("router %q missing from rendered table\n%s", router, out)
		}
	}
}
