package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		PromptConsumed: 120,
		Context:        120,
		KVBytes:        3276800,
		Experts:        []ExpertRef{{Layer: 0, Index: 7}, {Layer: 3, Index: 41}},
		TTFT:           0.21,
		ReadyAt:        0.36,
	}
}

func TestCheckpointValidate(t *testing.T) {
	if err := sampleCheckpoint().Validate(); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	mutate := map[string]func(*Checkpoint){
		"negative prompt consumed": func(c *Checkpoint) { c.PromptConsumed = -1 },
		"negative context":         func(c *Checkpoint) { c.Context = -1 },
		"negative kv bytes":        func(c *Checkpoint) { c.KVBytes = -1 },
		"negative ttft":            func(c *Checkpoint) { c.TTFT = -0.1 },
		"negative ready":           func(c *Checkpoint) { c.ReadyAt = -0.1 },
		"negative expert layer":    func(c *Checkpoint) { c.Experts[0].Layer = -1 },
		"negative expert index":    func(c *Checkpoint) { c.Experts[1].Index = -2 },
	}
	for name, mut := range mutate {
		c := sampleCheckpoint()
		mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the checkpoint", name)
		}
	}
}

func TestCheckpointMigrationBytes(t *testing.T) {
	// Expert weights are replicated on every replica; only the KV cache
	// crosses the interconnect.
	if got := sampleCheckpoint().MigrationBytes(); got != 3276800 {
		t.Fatalf("MigrationBytes() = %d, want the KV bytes alone", got)
	}
}

// TestCheckpointTraceRoundTrip pins that a prefilled request is a
// serializable value: checkpoints survive the JSONL trace format
// byte-stably, and checkpoint-less requests keep the historical schema
// (no checkpoint key at all).
func TestCheckpointTraceRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 0, PromptTokens: 120, DecodeTokens: 8, Arrival: 0.05, Checkpoint: sampleCheckpoint()},
		{ID: 1, PromptTokens: 16, DecodeTokens: 2, Arrival: 0.07},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace has %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"checkpoint"`) {
		t.Fatalf("checkpointed request serialised without a checkpoint key: %s", lines[0])
	}
	if strings.Contains(lines[1], "checkpoint") {
		t.Fatalf("fresh request grew a checkpoint key: %s", lines[1])
	}

	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("checkpoint round trip diverged:\n in: %+v\nout: %+v", reqs, got)
	}
	var again bytes.Buffer
	if err := WriteTrace(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("checkpointed trace not byte-stable:\n%s\nvs\n%s", buf.String(), again.String())
	}
}

func TestReadTraceRejectsBadCheckpoint(t *testing.T) {
	in := `{"id":0,"prompt_tokens":8,"decode_tokens":2,"checkpoint":{"prompt_consumed":-1,"context":8,"kv_bytes":64}}` + "\n"
	if _, err := ReadTrace(strings.NewReader(in)); err == nil {
		t.Fatal("ReadTrace accepted a trace with an invalid checkpoint")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error %v should carry the line number", err)
	}
}
