// Package workload synthesises the request streams the paper evaluates
// on. The prefill study samples prompts "of different lengths from
// multiple datasets, including MT Bench, Vicuna Bench and ChatGPT
// Prompts"; this package models each dataset as a log-normal prompt
// length distribution with parameters matched to the published corpus
// statistics, bucketises samples into the paper's ≈32/128/512/1024
// groups, and generates multi-turn serving sessions (prefill + decode)
// for end-to-end studies beyond single measurements.
package workload

import (
	"fmt"
	"math"

	"hybrimoe/internal/stats"
)

// Dataset is a named prompt-length distribution.
type Dataset struct {
	Name string
	// MeanLog and StdLog parameterise the log-normal length
	// distribution (of the token count).
	MeanLog float64
	StdLog  float64
	// MinTokens and MaxTokens clamp samples to the corpus range.
	MinTokens int
	MaxTokens int
	// DecodeMeanTokens is the typical response length for sessions.
	DecodeMeanTokens int
}

// MTBench models MT-Bench prompts: short-to-medium instructions,
// median around 50-60 tokens with a tail of long multi-part questions.
func MTBench() Dataset {
	return Dataset{
		Name:             "mt-bench",
		MeanLog:          math.Log(55),
		StdLog:           0.8,
		MinTokens:        8,
		MaxTokens:        1536,
		DecodeMeanTokens: 200,
	}
}

// VicunaBench models Vicuna-Bench prompts: short single questions,
// median around 30-40 tokens.
func VicunaBench() Dataset {
	return Dataset{
		Name:             "vicuna-bench",
		MeanLog:          math.Log(35),
		StdLog:           0.6,
		MinTokens:        6,
		MaxTokens:        512,
		DecodeMeanTokens: 180,
	}
}

// ChatGPTPrompts models the ChatGPT-Prompts dataset: persona-style
// system prompts, longer on average with a heavy tail.
func ChatGPTPrompts() Dataset {
	return Dataset{
		Name:             "chatgpt-prompts",
		MeanLog:          math.Log(120),
		StdLog:           0.9,
		MinTokens:        16,
		MaxTokens:        2048,
		DecodeMeanTokens: 250,
	}
}

// AllDatasets returns the three corpora the paper samples from.
func AllDatasets() []Dataset {
	return []Dataset{MTBench(), VicunaBench(), ChatGPTPrompts()}
}

// SampleLength draws one prompt length.
func (d Dataset) SampleLength(rng *stats.RNG) int {
	v := math.Exp(rng.NormMeanStd(d.MeanLog, d.StdLog))
	n := int(v + 0.5)
	if n < d.MinTokens {
		n = d.MinTokens
	}
	if n > d.MaxTokens {
		n = d.MaxTokens
	}
	return n
}

// PaperBuckets are the prompt-length groups of Figure 7 ("around 32,
// 128, 512 and 1024 tokens").
var PaperBuckets = []int{32, 128, 512, 1024}

// Bucket assigns a prompt length to the nearest paper bucket (by log
// distance, since the buckets are geometric).
func Bucket(tokens int) int {
	if tokens <= 0 {
		panic(fmt.Sprintf("workload: non-positive length %d", tokens))
	}
	best := PaperBuckets[0]
	bestDist := math.Abs(math.Log(float64(tokens)) - math.Log(float64(best)))
	for _, b := range PaperBuckets[1:] {
		d := math.Abs(math.Log(float64(tokens)) - math.Log(float64(b)))
		if d < bestDist {
			best, bestDist = b, d
		}
	}
	return best
}

// SampleBucketed draws n prompts and returns how many landed in each
// paper bucket, keyed by bucket size.
func (d Dataset) SampleBucketed(rng *stats.RNG, n int) map[int]int {
	out := make(map[int]int, len(PaperBuckets))
	for i := 0; i < n; i++ {
		out[Bucket(d.SampleLength(rng))]++
	}
	return out
}

// Request is one serving request: a prompt to prefill and a number of
// tokens to decode, plus the scheduling metadata request-level policies
// rank on.
type Request struct {
	ID           int
	Dataset      string
	PromptTokens int
	DecodeTokens int
	// Priority ranks the request when schedulers break ties and when
	// admission controllers choose what to shed; higher is more urgent.
	// 0 is the default.
	Priority int
	// Class is a free-form SLO class label ("interactive", "batch", …)
	// echoed on every StepEvent the request emits, so studies can slice
	// violation and shed rates per class. "" means unclassified.
	Class string
	// Deadline is the absolute simulation-clock completion target in
	// seconds. 0 means no deadline: deadline-aware schedulers serve the
	// request after every deadlined one, and violation accounting skips
	// it.
	Deadline float64
	// Arrival is the absolute simulation-clock instant the request
	// enters the system, in seconds. The Session holds the request until
	// its clock reaches it, and the request's TTFT is measured from it
	// (queue wait included). 0 means the request is present from the
	// start — the closed-queue behaviour open-loop arrivals replace.
	Arrival float64
	// Checkpoint, when non-nil, marks a request whose prefill already
	// completed elsewhere: the decode-side state it migrates with. nil
	// for fresh requests — the only state the engine's Submit path sees.
	Checkpoint *Checkpoint
}

// Stream generates a deterministic request sequence mixing datasets.
type Stream struct {
	rng      *stats.RNG
	datasets []Dataset
	next     int
	// arrivals, when attached, stamps each request's Arrival from its
	// own derived RNG stream, so attaching a process never perturbs the
	// prompt/decode draws of an otherwise identical stream.
	arrivals   ArrivalProcess
	arrivalRNG *stats.RNG
	clock      float64
}

// NewStream returns a stream drawing uniformly from datasets. It panics
// on an empty dataset list.
func NewStream(seed uint64, datasets ...Dataset) *Stream {
	if len(datasets) == 0 {
		panic("workload: stream needs at least one dataset")
	}
	return &Stream{
		rng:        stats.NewRNG(seed),
		datasets:   datasets,
		arrivalRNG: stats.NewRNG(seed ^ 0xa881_7a1e_0f2b_9c4d),
	}
}

// WithArrivals attaches an open-loop arrival process: every subsequent
// Next stamps Request.Arrival with the running arrival clock advanced by
// one inter-arrival gap. The gaps draw from a dedicated RNG stream, so
// two same-seed streams — one with arrivals, one without — produce
// identical prompt/decode sequences and differ only in the stamp. It
// returns the stream for chaining and panics on a nil process.
func (s *Stream) WithArrivals(p ArrivalProcess) *Stream {
	if p == nil {
		panic("workload: WithArrivals(nil)")
	}
	s.arrivals = p
	return s
}

// Next draws the next request. Decode length is exponential around the
// dataset's mean, clamped to at least 1 token.
func (s *Stream) Next() Request {
	d := s.datasets[s.rng.Intn(len(s.datasets))]
	decode := int(s.rng.Exp(1/float64(d.DecodeMeanTokens)) + 0.5)
	if decode < 1 {
		decode = 1
	}
	r := Request{
		ID:           s.next,
		Dataset:      d.Name,
		PromptTokens: d.SampleLength(s.rng),
		DecodeTokens: decode,
	}
	if s.arrivals != nil {
		s.clock += s.arrivals.Gap(s.arrivalRNG)
		r.Arrival = s.clock
	}
	s.next++
	return r
}

// NextN draws n requests.
func (s *Stream) NextN(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// CapDecode clamps every request's decode length to limit tokens — the
// knob studies and the CLI use to keep runs simulation-cheap while
// preserving the prefill/decode mix. A non-positive limit is a no-op
// (uncapped).
func CapDecode(reqs []Request, limit int) {
	if limit <= 0 {
		return
	}
	for i := range reqs {
		if reqs[i].DecodeTokens > limit {
			reqs[i].DecodeTokens = limit
		}
	}
}

// AssignDeadlines gives every request a completion deadline proportional
// to its size: Arrival + base + perToken × (prompt + decode) seconds,
// the shape of a per-token latency SLO. The budget is arrival-relative —
// a request cannot be born violated just because it arrives late — and
// the stored Deadline stays an absolute simulation-clock target (for a
// closed queue, Arrival is 0 and the two coincide). Larger requests get
// proportionally more time, so deadline order differs from plain size
// order only through base and arrival. Negative parameters panic;
// requests already carrying a deadline keep it.
func AssignDeadlines(reqs []Request, base, perToken float64) {
	if base < 0 || perToken < 0 {
		panic(fmt.Sprintf("workload: negative deadline parameters base=%v perToken=%v", base, perToken))
	}
	for i := range reqs {
		if reqs[i].Deadline != 0 {
			continue
		}
		reqs[i].Deadline = reqs[i].Arrival + base + perToken*float64(reqs[i].PromptTokens+reqs[i].DecodeTokens)
	}
}
