package workload

import (
	"math"
	"testing"
	"testing/quick"

	"hybrimoe/internal/stats"
)

func TestDatasetSampleLengthBounds(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, d := range AllDatasets() {
		for i := 0; i < 2000; i++ {
			n := d.SampleLength(rng)
			if n < d.MinTokens || n > d.MaxTokens {
				t.Fatalf("%s sampled %d outside [%d, %d]", d.Name, n, d.MinTokens, d.MaxTokens)
			}
		}
	}
}

func TestDatasetMediansOrdered(t *testing.T) {
	rng := stats.NewRNG(2)
	median := func(d Dataset) float64 {
		var s stats.Sample
		for i := 0; i < 4000; i++ {
			s.Add(float64(d.SampleLength(rng)))
		}
		return s.Median()
	}
	vb := median(VicunaBench())
	mt := median(MTBench())
	cg := median(ChatGPTPrompts())
	if !(vb < mt && mt < cg) {
		t.Fatalf("median ordering broken: vicuna %v, mt-bench %v, chatgpt %v", vb, mt, cg)
	}
	// Sanity: medians near the published scales.
	if math.Abs(mt-55) > 25 {
		t.Errorf("mt-bench median %v far from ≈55", mt)
	}
}

func TestBucketAssignsNearest(t *testing.T) {
	cases := map[int]int{
		1:    32,
		32:   32,
		60:   32, // log-nearest to 32 vs 128: sqrt(32*128)=64
		70:   128,
		128:  128,
		250:  128, // below the sqrt(128*512)=256 boundary
		260:  512, // above it
		200:  128,
		512:  512,
		720:  512, // sqrt(512*1024)=724 boundary
		730:  1024,
		4096: 1024,
	}
	for tokens, want := range cases {
		if got := Bucket(tokens); got != want {
			t.Errorf("Bucket(%d) = %d, want %d", tokens, got, want)
		}
	}
}

func TestBucketPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bucket(0) should panic")
		}
	}()
	Bucket(0)
}

func TestSampleBucketedCoversPaperGrid(t *testing.T) {
	rng := stats.NewRNG(3)
	counts := ChatGPTPrompts().SampleBucketed(rng, 5000)
	total := 0
	for b, c := range counts {
		total += c
		found := false
		for _, pb := range PaperBuckets {
			if b == pb {
				found = true
			}
		}
		if !found {
			t.Fatalf("unknown bucket %d", b)
		}
	}
	if total != 5000 {
		t.Fatalf("bucketed %d of 5000", total)
	}
	// The ChatGPT corpus should populate every bucket.
	for _, pb := range PaperBuckets {
		if counts[pb] == 0 {
			t.Errorf("bucket %d empty for chatgpt-prompts", pb)
		}
	}
}

func TestStreamDeterministicAndComplete(t *testing.T) {
	a := NewStream(7, AllDatasets()...)
	b := NewStream(7, AllDatasets()...)
	ra := a.NextN(50)
	rb := b.NextN(50)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("same seed must give identical streams")
		}
	}
	for i, r := range ra {
		if r.ID != i {
			t.Fatalf("request IDs must be sequential: %+v", r)
		}
		if r.PromptTokens < 1 || r.DecodeTokens < 1 {
			t.Fatalf("degenerate request %+v", r)
		}
		if r.Dataset == "" {
			t.Fatalf("unlabelled request %+v", r)
		}
	}
}

func TestStreamMixesDatasets(t *testing.T) {
	s := NewStream(11, AllDatasets()...)
	seen := map[string]bool{}
	for _, r := range s.NextN(200) {
		seen[r.Dataset] = true
	}
	if len(seen) != 3 {
		t.Fatalf("stream used %d datasets, want 3", len(seen))
	}
}

func TestNewStreamPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty stream should panic")
		}
	}()
	NewStream(1)
}

// Property: bucket is always one of the paper buckets and monotone in
// the sense that larger inputs never map to smaller buckets.
func TestBucketMonotoneQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return Bucket(x) <= Bucket(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAssignDeadlines(t *testing.T) {
	reqs := []Request{
		{ID: 0, PromptTokens: 10, DecodeTokens: 5},
		{ID: 1, PromptTokens: 100, DecodeTokens: 50},
		{ID: 2, PromptTokens: 1, DecodeTokens: 1, Deadline: 0.125},
	}
	AssignDeadlines(reqs, 2, 0.01)
	if want := 2 + 0.01*15; reqs[0].Deadline != want {
		t.Fatalf("request 0 deadline %v, want %v", reqs[0].Deadline, want)
	}
	if reqs[0].Deadline >= reqs[1].Deadline {
		t.Fatalf("deadline not growing with size: %v then %v", reqs[0].Deadline, reqs[1].Deadline)
	}
	// A pre-set deadline is preserved, not overwritten.
	if reqs[2].Deadline != 0.125 {
		t.Fatalf("explicit deadline overwritten: %v", reqs[2].Deadline)
	}
}

// TestAssignDeadlinesArrivalRelative pins the open-loop contract: the
// deadline budget starts at the request's arrival, not at t=0, so a
// late-arriving request is not born violated. Two requests of equal
// size must get equal budgets regardless of when they arrive.
func TestAssignDeadlinesArrivalRelative(t *testing.T) {
	reqs := []Request{
		{ID: 0, PromptTokens: 10, DecodeTokens: 5},
		{ID: 1, PromptTokens: 10, DecodeTokens: 5, Arrival: 7.5},
	}
	AssignDeadlines(reqs, 2, 0.01)
	budget := 2 + 0.01*15
	if reqs[0].Deadline != budget {
		t.Fatalf("closed-queue request deadline %v, want %v", reqs[0].Deadline, budget)
	}
	if want := 7.5 + budget; reqs[1].Deadline != want {
		t.Fatalf("late-arriving request deadline %v, want arrival-relative %v", reqs[1].Deadline, want)
	}
	if reqs[1].Deadline <= reqs[1].Arrival {
		t.Fatalf("request born violated: arrival %v, deadline %v", reqs[1].Arrival, reqs[1].Deadline)
	}
}

func TestCapDecode(t *testing.T) {
	mk := func() []Request {
		return []Request{
			{ID: 0, PromptTokens: 8, DecodeTokens: 20},
			{ID: 1, PromptTokens: 8, DecodeTokens: 3},
		}
	}
	reqs := mk()
	CapDecode(reqs, 5)
	if reqs[0].DecodeTokens != 5 || reqs[1].DecodeTokens != 3 {
		t.Fatalf("CapDecode(5) = %+v, want clamp to 5 / keep 3", reqs)
	}
	// Non-positive limits are uncapped no-ops.
	for _, limit := range []int{0, -1} {
		reqs := mk()
		CapDecode(reqs, limit)
		if reqs[0].DecodeTokens != 20 || reqs[1].DecodeTokens != 3 {
			t.Fatalf("CapDecode(%d) mutated requests: %+v", limit, reqs)
		}
	}
}

func TestAssignDeadlinesPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative deadline parameters should panic")
		}
	}()
	AssignDeadlines([]Request{{}}, -1, 0)
}

func TestDecodeLengthMeanApproximatesDataset(t *testing.T) {
	s := NewStream(13, MTBench())
	var acc stats.Running
	for _, r := range s.NextN(3000) {
		acc.Add(float64(r.DecodeTokens))
	}
	want := float64(MTBench().DecodeMeanTokens)
	if math.Abs(acc.Mean()-want) > want*0.15 {
		t.Fatalf("decode mean %v, want ≈%v", acc.Mean(), want)
	}
}
