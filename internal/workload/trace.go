package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// traceRecord is the JSONL schema of one recorded request — one object
// per line, zero-valued optional fields omitted, so a trace written by
// WriteTrace reads back through ReadTrace (and re-writes byte-for-byte,
// the property the CI replay smoke job pins):
//
//	{"id":0,"dataset":"mt-bench","prompt_tokens":57,"decode_tokens":12,
//	 "priority":1,"deadline":2.5,"arrival":0.131}
type traceRecord struct {
	ID           int     `json:"id"`
	Dataset      string  `json:"dataset,omitempty"`
	PromptTokens int     `json:"prompt_tokens,omitempty"`
	DecodeTokens int     `json:"decode_tokens,omitempty"`
	Priority     int     `json:"priority,omitempty"`
	Class        string  `json:"class,omitempty"`
	Deadline     float64 `json:"deadline,omitempty"`
	Arrival      float64 `json:"arrival,omitempty"`
	// Checkpoint serialises a prefilled request's migrated state; absent
	// for fresh requests, so pre-existing traces are unchanged on disk.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
}

// WriteTrace records a request sequence as JSONL, one request per line
// in slice order. Together with ReadTrace it round-trips exactly, so
// recorded (or production-shaped) workloads replay through the same
// Session loop synthetic streams use.
func WriteTrace(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range reqs {
		rec := traceRecord{
			ID:           r.ID,
			Dataset:      r.Dataset,
			PromptTokens: r.PromptTokens,
			DecodeTokens: r.DecodeTokens,
			Priority:     r.Priority,
			Class:        r.Class,
			Deadline:     r.Deadline,
			Arrival:      r.Arrival,
			Checkpoint:   r.Checkpoint,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: writing trace record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL request trace written by WriteTrace (or by
// any external recorder emitting the same schema). Blank lines and
// #-comment lines are skipped. Malformed JSON and requests with no work
// at all (neither prompt nor decode tokens) are reported with their
// line number — a zero-work record is always a recording bug, and the
// Session would drop it silently otherwise.
func ReadTrace(r io.Reader) ([]Request, error) {
	var reqs []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if rec.PromptTokens < 0 || rec.DecodeTokens < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative token counts (prompt %d, decode %d)",
				line, rec.PromptTokens, rec.DecodeTokens)
		}
		if rec.PromptTokens == 0 && rec.DecodeTokens == 0 {
			return nil, fmt.Errorf("workload: trace line %d: request %d carries no work", line, rec.ID)
		}
		if rec.Deadline < 0 || rec.Arrival < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative deadline %v or arrival %v",
				line, rec.Deadline, rec.Arrival)
		}
		if rec.Checkpoint != nil {
			if err := rec.Checkpoint.Validate(); err != nil {
				return nil, fmt.Errorf("trace line %d: %w", line, err)
			}
		}
		reqs = append(reqs, Request{
			ID:           rec.ID,
			Dataset:      rec.Dataset,
			PromptTokens: rec.PromptTokens,
			DecodeTokens: rec.DecodeTokens,
			Priority:     rec.Priority,
			Class:        rec.Class,
			Deadline:     rec.Deadline,
			Arrival:      rec.Arrival,
			Checkpoint:   rec.Checkpoint,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	return reqs, nil
}
