package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"hybrimoe/internal/stats"
)

// TestStreamArrivalStampingDeterministic pins the open-loop stream
// contract: arrivals strictly increase, the same seed reproduces the
// same stamps, and attaching a process leaves the prompt/decode draws
// byte-identical to the unstamped stream (the arrival RNG is its own
// stream).
func TestStreamArrivalStampingDeterministic(t *testing.T) {
	plain := NewStream(21, AllDatasets()...).NextN(40)
	a := NewStream(21, AllDatasets()...).WithArrivals(Poisson(8)).NextN(40)
	b := NewStream(21, AllDatasets()...).WithArrivals(Poisson(8)).NextN(40)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give identical arrival-stamped streams")
	}
	prev := 0.0
	for i, r := range a {
		if r.Arrival <= prev {
			t.Fatalf("arrivals not increasing: request %d at %v after %v", i, r.Arrival, prev)
		}
		prev = r.Arrival
		stripped := r
		stripped.Arrival = 0
		if stripped != plain[i] {
			t.Fatalf("arrival stamping perturbed request content: %+v vs %+v", r, plain[i])
		}
		if plain[i].Arrival != 0 {
			t.Fatalf("unstamped stream carries an arrival: %+v", plain[i])
		}
	}
}

func TestPoissonGapMean(t *testing.T) {
	rng := stats.NewRNG(5)
	p := Poisson(4)
	if p.Name() != "poisson" {
		t.Fatalf("name %q", p.Name())
	}
	var acc stats.Running
	for i := 0; i < 8000; i++ {
		g := p.Gap(rng)
		if g <= 0 {
			t.Fatalf("non-positive gap %v", g)
		}
		acc.Add(g)
	}
	if want := 0.25; math.Abs(acc.Mean()-want) > want*0.1 {
		t.Fatalf("poisson(4) mean gap %v, want ≈%v", acc.Mean(), want)
	}
}

func TestUniformGapExact(t *testing.T) {
	u := Uniform(5)
	if u.Name() != "uniform" {
		t.Fatalf("name %q", u.Name())
	}
	rng := stats.NewRNG(6)
	for i := 0; i < 10; i++ {
		if g := u.Gap(rng); g != 0.2 {
			t.Fatalf("uniform(5) gap %v, want exactly 0.2", g)
		}
	}
}

// TestBurstyRateAndBurstiness checks the MMPP's two promises: the
// long-run rate lands near (onRate·meanOn + offRate·meanOff) /
// (meanOn + meanOff), and the gaps are burstier than Poisson at the
// same mean — the squared coefficient of variation exceeds 1.
func TestBurstyRateAndBurstiness(t *testing.T) {
	rng := stats.NewRNG(7)
	// On 16 req/s half the time, silent the other half: mean 8 req/s.
	p := Bursty(16, 0, 0.5, 0.5)
	if p.Name() != "bursty" {
		t.Fatalf("name %q", p.Name())
	}
	var acc stats.Running
	for i := 0; i < 20000; i++ {
		g := p.Gap(rng)
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		acc.Add(g)
	}
	if want := 1.0 / 8; math.Abs(acc.Mean()-want) > want*0.15 {
		t.Fatalf("bursty mean gap %v, want ≈%v", acc.Mean(), want)
	}
	cv2 := acc.Variance() / (acc.Mean() * acc.Mean())
	if cv2 <= 1.2 {
		t.Fatalf("bursty gaps not bursty: CV² %v, want > 1.2 (Poisson is 1)", cv2)
	}
}

func TestArrivalConstructorsPanicOnBadParams(t *testing.T) {
	cases := map[string]func(){
		"poisson zero rate":    func() { Poisson(0) },
		"uniform negative":     func() { Uniform(-1) },
		"bursty zero on-rate":  func() { Bursty(0, 1, 1, 1) },
		"bursty neg off-rate":  func() { Bursty(1, -1, 1, 1) },
		"bursty zero on-mean":  func() { Bursty(1, 0, 0, 1) },
		"bursty zero off-mean": func() { Bursty(1, 0, 1, 0) },
		"nil process attached": func() { NewStream(1, MTBench()).WithArrivals(nil) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewArrivalsResolvesNames(t *testing.T) {
	for _, name := range []string{"poisson", "uniform", "bursty"} {
		p, err := NewArrivals(name, 4)
		if err != nil {
			t.Fatalf("NewArrivals(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("NewArrivals(%q) built %q", name, p.Name())
		}
	}
	if _, err := NewArrivals("psychic", 4); err == nil || !strings.Contains(err.Error(), "psychic") {
		t.Fatalf("unknown process error %v should name the offender", err)
	}
	if _, err := NewArrivals("poisson", 0); err == nil {
		t.Fatal("non-positive rate must error")
	}
}

// TestNewArrivalsBurstyMatchesRate pins the CLI convenience mapping:
// the derived on/off process still delivers the requested long-run
// rate.
func TestNewArrivalsBurstyMatchesRate(t *testing.T) {
	p, err := NewArrivals("bursty", 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(8)
	var acc stats.Running
	for i := 0; i < 20000; i++ {
		acc.Add(p.Gap(rng))
	}
	if want := 0.1; math.Abs(acc.Mean()-want) > want*0.15 {
		t.Fatalf("bursty(rate=10) mean gap %v, want ≈%v", acc.Mean(), want)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	reqs := NewStream(31, AllDatasets()...).WithArrivals(Poisson(6)).NextN(12)
	reqs[0].Priority = 2
	reqs[0].Class = "interactive"
	reqs[1].Class = "batch"
	AssignDeadlines(reqs, 0.5, 0.01)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("trace round trip diverged:\n in: %+v\nout: %+v", reqs, got)
	}

	// Re-writing the parsed trace reproduces the bytes — the property
	// the CI replay job diffs on.
	var again bytes.Buffer
	if err := WriteTrace(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("trace not byte-stable:\n%s\nvs\n%s", buf.String(), again.String())
	}
}

func TestReadTraceSkipsBlanksAndComments(t *testing.T) {
	in := "# recorded 2026-07-29\n\n" +
		`{"id":3,"prompt_tokens":16,"decode_tokens":2,"arrival":1.5}` + "\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Request{{ID: 3, PromptTokens: 16, DecodeTokens: 2, Arrival: 1.5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadTrace = %+v, want %+v", got, want)
	}
}

func TestReadTraceRejectsMalformedRecords(t *testing.T) {
	cases := map[string]string{
		"bad json":         "{not json}\n",
		"zero work":        `{"id":0}` + "\n",
		"negative tokens":  `{"id":0,"prompt_tokens":-4,"decode_tokens":1}` + "\n",
		"negative arrival": `{"id":0,"prompt_tokens":4,"decode_tokens":1,"arrival":-2}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace accepted %q", name, in)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error %v should carry the line number", name, err)
		}
	}
}
