package workload

import (
	"fmt"
	"math"

	"hybrimoe/internal/stats"
)

// ArrivalProcess generates successive inter-arrival gaps for an
// open-loop request stream. A Stream with a process attached
// (WithArrivals) accumulates the gaps into each request's absolute
// Arrival stamp. Implementations may keep state across calls (the
// bursty process tracks its on/off phase); a Stream owns one instance.
type ArrivalProcess interface {
	// Name identifies the process in experiment tables and CLI flags.
	Name() string
	// Gap returns the next inter-arrival gap in seconds (>= 0), drawing
	// any randomness from rng.
	Gap(rng *stats.RNG) float64
}

// Poisson returns the memoryless arrival process with the given mean
// rate in requests per second: gaps are exponential with mean 1/rate,
// the standard open-loop load model serving evaluations replay. It
// panics on a non-positive rate.
func Poisson(rate float64) ArrivalProcess {
	if rate <= 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("workload: Poisson rate %v must be positive", rate))
	}
	return poissonProcess{rate: rate}
}

type poissonProcess struct{ rate float64 }

func (poissonProcess) Name() string { return "poisson" }

func (p poissonProcess) Gap(rng *stats.RNG) float64 { return rng.Exp(p.rate) }

// Uniform returns the evenly spaced arrival process: every gap is
// exactly 1/rate seconds, the zero-variance baseline that isolates
// queueing caused by service-time variation from queueing caused by
// arrival burstiness. It panics on a non-positive rate.
func Uniform(rate float64) ArrivalProcess {
	if rate <= 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("workload: Uniform rate %v must be positive", rate))
	}
	return uniformProcess{gap: 1 / rate}
}

type uniformProcess struct{ gap float64 }

func (uniformProcess) Name() string { return "uniform" }

func (u uniformProcess) Gap(*stats.RNG) float64 { return u.gap }

// Bursty returns an on/off Markov-modulated Poisson process: arrivals
// are Poisson at onRate during "on" phases and at offRate during "off"
// phases, with the phase durations themselves exponential around meanOn
// and meanOff seconds. It is the bursty open-loop load shape that makes
// admission control earn its keep — sustained quiet stretches followed
// by arrival clumps far above the long-run mean rate. offRate may be 0
// (a pure on/off process); onRate, meanOn and meanOff must be positive
// or the constructor panics.
func Bursty(onRate, offRate, meanOn, meanOff float64) ArrivalProcess {
	if onRate <= 0 || math.IsNaN(onRate) {
		panic(fmt.Sprintf("workload: Bursty on-rate %v must be positive", onRate))
	}
	if offRate < 0 || math.IsNaN(offRate) {
		panic(fmt.Sprintf("workload: Bursty off-rate %v must be non-negative", offRate))
	}
	if meanOn <= 0 || meanOff <= 0 {
		panic(fmt.Sprintf("workload: Bursty phase means on=%v off=%v must be positive", meanOn, meanOff))
	}
	return &burstyProcess{onRate: onRate, offRate: offRate, meanOn: meanOn, meanOff: meanOff}
}

type burstyProcess struct {
	onRate, offRate float64
	meanOn, meanOff float64
	on              bool
	left            float64 // time remaining in the current phase
	primed          bool
}

func (*burstyProcess) Name() string { return "bursty" }

// Gap samples the next inter-arrival time across phase boundaries: if
// the candidate exponential gap outlives the current phase, the phase's
// remainder is banked and the draw restarts in the next phase — exact
// for exponential gaps, whose memorylessness makes the restart free.
func (b *burstyProcess) Gap(rng *stats.RNG) float64 {
	if !b.primed {
		b.primed = true
		b.on = true
		b.left = rng.Exp(1 / b.meanOn)
	}
	gap := 0.0
	for {
		rate := b.offRate
		if b.on {
			rate = b.onRate
		}
		d := math.Inf(1)
		if rate > 0 {
			d = rng.Exp(rate)
		}
		if d <= b.left {
			b.left -= d
			return gap + d
		}
		gap += b.left
		b.on = !b.on
		mean := b.meanOff
		if b.on {
			mean = b.meanOn
		}
		b.left = rng.Exp(1 / mean)
	}
}

// NewArrivals resolves an arrival process from its CLI name and a mean
// rate in requests per second: "poisson", "uniform", or "bursty" (an
// on/off process at 2×rate during on phases and silent during off
// phases, equal mean phase lengths of four mean inter-arrival times, so
// its long-run rate matches rate). Unknown names and non-positive rates
// return descriptive errors rather than panicking — this is the flag
// parsing path.
func NewArrivals(name string, rate float64) (ArrivalProcess, error) {
	if rate <= 0 || math.IsNaN(rate) {
		return nil, fmt.Errorf("workload: arrival rate %v must be positive", rate)
	}
	switch name {
	case "poisson":
		return Poisson(rate), nil
	case "uniform":
		return Uniform(rate), nil
	case "bursty":
		return Bursty(2*rate, 0, 4/rate, 4/rate), nil
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (have bursty, poisson, uniform)", name)
	}
}
