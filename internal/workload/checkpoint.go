package workload

import "fmt"

// ExpertRef names one routed expert by grid position, the serializable
// mirror of moe.ExpertID (workload cannot import moe — the dependency
// runs the other way).
type ExpertRef struct {
	Layer int `json:"layer"`
	Index int `json:"index"`
}

// Checkpoint is the working state of a request whose prefill has
// completed on one replica: everything a decode replica needs to adopt
// the request mid-life. It is a plain serializable value — carried on
// Request, round-tripped through the JSONL trace schema — so a
// prefilled request can cross a process or replica boundary.
//
// The transferable payload is the KV cache (KVBytes); Experts is the
// predicted-and-resident expert working set at export time, which the
// receiving replica uses for affinity scoring and warm cache admission
// (expert weights are replicated on every replica, so only the hint
// travels, not the tensors).
type Checkpoint struct {
	// PromptConsumed is how many prompt tokens the prefill processed.
	PromptConsumed int `json:"prompt_consumed"`
	// Context is the attention context length the decode starts from.
	Context int `json:"context"`
	// KVBytes is the KV-cache footprint migrating with the request.
	KVBytes int64 `json:"kv_bytes"`
	// Experts is the predicted expert working set resident on the
	// exporting replica when prefill finished.
	Experts []ExpertRef `json:"experts,omitempty"`
	// TTFT is the queue-inclusive time-to-first-token already accrued on
	// the prefill replica; the adopting session must not re-stamp it.
	TTFT float64 `json:"ttft,omitempty"`
	// ReadyAt is the absolute simulation-clock instant the migrated
	// state finishes arriving at the decode replica (export time plus
	// the interconnect transfer). The adopting session holds the request
	// until its clock reaches it.
	ReadyAt float64 `json:"ready_at,omitempty"`
}

// MigrationBytes is the byte volume the replica-to-replica interconnect
// prices for this checkpoint: the KV cache. The expert set is metadata
// (the weights already live on every replica).
func (c *Checkpoint) MigrationBytes() int64 { return c.KVBytes }

// Validate rejects checkpoints no prefill could have produced.
func (c *Checkpoint) Validate() error {
	if c.PromptConsumed < 0 || c.Context < 0 || c.KVBytes < 0 {
		return fmt.Errorf("workload: checkpoint with negative state (prompt_consumed %d, context %d, kv_bytes %d)",
			c.PromptConsumed, c.Context, c.KVBytes)
	}
	if c.TTFT < 0 || c.ReadyAt < 0 {
		return fmt.Errorf("workload: checkpoint with negative stamps (ttft %v, ready_at %v)", c.TTFT, c.ReadyAt)
	}
	for _, e := range c.Experts {
		if e.Layer < 0 || e.Index < 0 {
			return fmt.Errorf("workload: checkpoint expert ref out of range (layer %d, index %d)", e.Layer, e.Index)
		}
	}
	return nil
}
