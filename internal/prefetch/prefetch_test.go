package prefetch

import (
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/sched"
)

// miniConfig: 4 layers, 8 experts, top-2, unit-ish sizes. With the unit
// platform, ExpertBytes is huge, so tests use a custom tiny config whose
// transfer time is manageable: Hidden=Intermediate=16 → bytes ≈ 416,
// transfer ≈ 1248 units... too big. Instead use the A6000 platform with
// DeepSeek sizing where transfers are ~1ms.
func testCtx(layer int, budget float64, loads map[int][]int, cached map[moe.ExpertID]bool) Context {
	cfg := moe.DeepSeek()
	return Context{
		Cfg:      cfg,
		Platform: hw.A6000Platform(),
		Layer:    layer,
		Budget:   budget,
		PredictedLoads: func(l int) []int {
			if v, ok := loads[l]; ok {
				return v
			}
			return make([]int, cfg.RoutedExperts)
		},
		IsCached:  func(id moe.ExpertID) bool { return cached[id] },
		Scheduler: sched.NewHybriMoE(),
	}
}

func loadsWith(cfg *moe.Config, pairs map[int]int) []int {
	loads := make([]int, cfg.RoutedExperts)
	for e, l := range pairs {
		loads[e] = l
	}
	return loads
}

func TestNoneNeverPrefetches(t *testing.T) {
	ctx := testCtx(0, 1.0, nil, nil)
	if got := NewNone().Select(ctx); got != nil {
		t.Fatalf("none prefetched %v", got)
	}
}

func TestNextLayerTopKBasic(t *testing.T) {
	cfg := moe.DeepSeek()
	loads := map[int][]int{1: loadsWith(cfg, map[int]int{3: 10, 5: 2, 7: 5})}
	cached := map[moe.ExpertID]bool{{Layer: 1, Index: 3}: true}
	ctx := testCtx(0, 10.0, loads, cached)
	got := NewNextLayerTopK().Select(ctx)
	// Expert 3 is cached → skip. 7 (load 5) before 5 (load 2).
	if len(got) != 2 || got[0] != (moe.ExpertID{Layer: 1, Index: 7}) || got[1] != (moe.ExpertID{Layer: 1, Index: 5}) {
		t.Fatalf("selection = %v", got)
	}
}

func TestNextLayerTopKRespectsBudget(t *testing.T) {
	cfg := moe.DeepSeek()
	loads := map[int][]int{1: loadsWith(cfg, map[int]int{1: 4, 2: 3, 3: 2, 4: 1})}
	xfer := hw.A6000Platform().Links[0].TransferTime(cfg.ExpertBytes())
	ctx := testCtx(0, 2.5*xfer, loads, nil)
	got := NewNextLayerTopK().Select(ctx)
	if len(got) != 2 {
		t.Fatalf("budget for 2 transfers selected %d: %v", len(got), got)
	}
}

func TestNextLayerTopKAtLastLayer(t *testing.T) {
	cfg := moe.DeepSeek()
	ctx := testCtx(cfg.Layers-1, 10, nil, nil)
	if got := NewNextLayerTopK().Select(ctx); got != nil {
		t.Fatalf("last layer has no next layer, got %v", got)
	}
}

func TestImpactDrivenPrefersHighImpactExpert(t *testing.T) {
	cfg := moe.DeepSeek()
	// Layer 1: expert 0 carries a massive load (dominates the layer's
	// makespan when uncached); expert 1 is light. Prefetching 0 yields
	// a much larger gain.
	loads := map[int][]int{
		1: loadsWith(cfg, map[int]int{0: 400, 1: 1}),
	}
	xfer := hw.A6000Platform().Links[0].TransferTime(cfg.ExpertBytes())
	ctx := testCtx(0, 1.5*xfer, loads, nil)
	got := NewImpactDriven().Select(ctx)
	if len(got) != 1 {
		t.Fatalf("budget for one transfer selected %d: %v", len(got), got)
	}
	if got[0] != (moe.ExpertID{Layer: 1, Index: 0}) {
		t.Fatalf("should prefetch the high-impact expert, got %v", got[0])
	}
}

func TestImpactDrivenSkipsCachedAndZeroGain(t *testing.T) {
	cfg := moe.DeepSeek()
	loads := map[int][]int{1: loadsWith(cfg, map[int]int{0: 10})}
	cached := map[moe.ExpertID]bool{{Layer: 1, Index: 0}: true}
	ctx := testCtx(0, 100, loads, cached)
	if got := NewImpactDriven().Select(ctx); len(got) != 0 {
		t.Fatalf("cached expert prefetched: %v", got)
	}
}

func TestImpactDrivenZeroBudget(t *testing.T) {
	cfg := moe.DeepSeek()
	loads := map[int][]int{1: loadsWith(cfg, map[int]int{0: 10})}
	ctx := testCtx(0, 0, loads, nil)
	if got := NewImpactDriven().Select(ctx); len(got) != 0 {
		t.Fatalf("zero budget prefetched: %v", got)
	}
}

func TestImpactDrivenLooksAcrossWindow(t *testing.T) {
	cfg := moe.DeepSeek()
	// Only layer 3 (lookahead 3) has predicted work.
	loads := map[int][]int{3: loadsWith(cfg, map[int]int{9: 200})}
	xfer := hw.A6000Platform().Links[0].TransferTime(cfg.ExpertBytes())
	ctx := testCtx(0, 2*xfer, loads, nil)
	got := NewImpactDriven().Select(ctx)
	if len(got) != 1 || got[0].Layer != 3 {
		t.Fatalf("window-3 candidate missed: %v", got)
	}
	// Layer 4 (lookahead 4) must be out of the window.
	loads4 := map[int][]int{4: loadsWith(cfg, map[int]int{9: 200})}
	ctx4 := testCtx(0, 2*xfer, loads4, nil)
	if got := NewImpactDriven().Select(ctx4); len(got) != 0 {
		t.Fatalf("lookahead-4 candidate selected despite window 3: %v", got)
	}
}

func TestImpactDrivenDiscountsDistantLayers(t *testing.T) {
	cfg := moe.DeepSeek()
	// Identical workloads at lookahead 1 and 3: the near one must win
	// the single transfer slot.
	loads := map[int][]int{
		1: loadsWith(cfg, map[int]int{0: 100}),
		3: loadsWith(cfg, map[int]int{0: 100}),
	}
	xfer := hw.A6000Platform().Links[0].TransferTime(cfg.ExpertBytes())
	ctx := testCtx(0, 1.5*xfer, loads, nil)
	got := NewImpactDriven().Select(ctx)
	if len(got) != 1 || got[0].Layer != 1 {
		t.Fatalf("near layer should win the slot: %v", got)
	}
}

func TestImpactDrivenBudgetRespected(t *testing.T) {
	cfg := moe.DeepSeek()
	loads := map[int][]int{
		1: loadsWith(cfg, map[int]int{0: 50, 1: 40, 2: 30, 3: 20, 4: 10}),
	}
	xfer := hw.A6000Platform().Links[0].TransferTime(cfg.ExpertBytes())
	for _, budgetXfers := range []float64{0.5, 1, 2.2, 3.7, 100} {
		ctx := testCtx(0, budgetXfers*xfer, loads, nil)
		got := NewImpactDriven().Select(ctx)
		if float64(len(got)) > budgetXfers {
			t.Fatalf("budget %.1f transfers exceeded: selected %d", budgetXfers, len(got))
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"none", "next-layer-topk", "impact-driven"} {
		p, ok := ByName(name)
		if !ok || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("psychic"); ok {
		t.Error("unknown prefetcher should not resolve")
	}
}

// Multi-GPU: each pick spends its target device's link budget, priced
// by that device's own link model, so one saturated link does not stop
// prefetch onto the other.
func TestSelectSpendsPerDeviceBudgets(t *testing.T) {
	cfg := moe.DeepSeek()
	loads := map[int][]int{1: loadsWith(cfg, map[int]int{0: 10, 1: 9, 2: 8, 3: 7})}
	ctx := testCtx(0, 0, loads, nil)
	ctx.Platform = hw.DualA6000Platform()
	xfer := ctx.Platform.Links[0].TransferTime(cfg.ExpertBytes())
	// Device 0's link has room for one transfer, device 1's for two.
	ctx.Budgets = []float64{1.5 * xfer, 2.5 * xfer}
	ctx.Target = func(id moe.ExpertID) hw.Device { return hw.GPUAt(id.Index % 2) }
	got := NewNextLayerTopK().Select(ctx)
	perDev := map[hw.Device]int{}
	for _, id := range got {
		perDev[ctx.Target(id)]++
	}
	if perDev[hw.GPUAt(0)] != 1 || perDev[hw.GPUAt(1)] != 2 {
		t.Fatalf("picks per device = %v (selection %v), want 1 on GPU0 and 2 on GPU1", perDev, got)
	}
}
