// Package prefetch implements the paper's impact-driven inter-layer
// prefetching (§IV-C) plus the baselines it is compared against.
//
// While a layer's experts execute, the PCIe link is often idle. The
// prefetcher spends that idle time moving experts of upcoming layers to
// the GPU. HybriMoE's contribution is *which* experts: it predicts the
// next Window layers' activations by reusing gate information, then
// simulates each candidate's effect on that future layer's schedule
// (via the §IV-B scheduling simulator) and greedily prefetches the
// candidates with the highest expected makespan reduction per transfer.
package prefetch

import (
	"fmt"
	"sort"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/sched"
)

// DefaultWindow is the paper's lookahead depth: gate information of the
// next three layers.
const DefaultWindow = 3

// Context carries everything a prefetcher may consult for one decision.
type Context struct {
	Cfg      *moe.Config
	Platform *hw.Platform
	// Layer is the layer whose execution is about to start/run; layers
	// Layer+1 … Layer+Window are prefetch targets.
	Layer int
	// Budget is the PCIe idle time (seconds) available before the next
	// layer's own transfers need the link. Prefetchers must keep the
	// summed transfer time of their picks within it. On multi-GPU
	// platforms it describes GPU0's link; Budgets carries the rest.
	Budget float64
	// Budgets, when non-nil, carries the idle time of every device's
	// host link (index 0 takes precedence over Budget). Each pick spends
	// its target device's budget, priced by that device's link model.
	Budgets []float64
	// Target reports the destination device for a candidate expert —
	// whose link the transfer would ride and whose budget it spends.
	// Nil means everything targets GPU0 (the single-link engine).
	Target func(moe.ExpertID) hw.Device
	// PredictedLoads estimates per-expert token loads for a future
	// layer (absolute index). Entries of zero mean "not predicted
	// active".
	PredictedLoads func(layer int) []int
	// IsCached reports current GPU residency (on any device).
	IsCached func(moe.ExpertID) bool
	// Scheduler is the what-if simulator used to price candidates.
	Scheduler sched.Scheduler
}

// target resolves a candidate's destination device.
func (ctx Context) target(id moe.ExpertID) hw.Device {
	if ctx.Target == nil {
		return hw.GPU
	}
	return ctx.Target(id)
}

// budgets materialises the per-link budget vector the selection loops
// draw down — a copy, so Select never mutates the caller's slice.
func (ctx Context) budgets() []float64 {
	if ctx.Budgets == nil {
		return []float64{ctx.Budget}
	}
	out := make([]float64, len(ctx.Budgets))
	copy(out, ctx.Budgets)
	return out
}

// take spends one transfer of bytes to device d from the budget vector,
// reporting whether it fit.
func take(ctx Context, budgets []float64, d hw.Device, bytes int64) bool {
	i := d.GPUIndex()
	if i >= len(budgets) {
		return false
	}
	xfer := ctx.Platform.LinkOf(d).TransferTime(bytes)
	if budgets[i] < xfer {
		return false
	}
	budgets[i] -= xfer
	return true
}

// Prefetcher selects experts to preload.
type Prefetcher interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Select returns the expert IDs to transfer, in transfer order,
	// with summed transfer time within ctx.Budget.
	Select(ctx Context) []moe.ExpertID
}

// None never prefetches (the ablation baseline).
type None struct{}

// NewNone returns the no-op prefetcher.
func NewNone() *None { return &None{} }

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// Select implements Prefetcher.
func (None) Select(Context) []moe.ExpertID { return nil }

// NextLayerTopK is the naive baseline most offloading frameworks use:
// prefetch the predicted top-k experts of the next layer only, highest
// predicted load first, ignoring scheduling impact.
type NextLayerTopK struct{}

// NewNextLayerTopK returns the naive next-layer prefetcher.
func NewNextLayerTopK() *NextLayerTopK { return &NextLayerTopK{} }

// Name implements Prefetcher.
func (NextLayerTopK) Name() string { return "next-layer-topk" }

// Select implements Prefetcher.
func (NextLayerTopK) Select(ctx Context) []moe.ExpertID {
	next := ctx.Layer + 1
	if next >= ctx.Cfg.Layers {
		return nil
	}
	loads := ctx.PredictedLoads(next)
	type cand struct {
		id   moe.ExpertID
		load int
	}
	var cands []cand
	for e, load := range loads {
		if load == 0 {
			continue
		}
		id := moe.ExpertID{Layer: next, Index: e}
		if ctx.IsCached(id) {
			continue
		}
		cands = append(cands, cand{id, load})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].load > cands[j].load })
	budgets := ctx.budgets()
	var out []moe.ExpertID
	for _, c := range cands {
		if take(ctx, budgets, ctx.target(c.id), ctx.Cfg.ExpertBytes()) {
			out = append(out, c.id)
		}
	}
	return out
}

// ImpactDriven is the paper's prefetcher: candidates from the next
// Window layers are priced by simulating the future layer's schedule
// with and without the candidate resident, and the largest expected
// gains are prefetched first.
type ImpactDriven struct {
	// Window is the lookahead depth in layers (DefaultWindow when 0).
	Window int
}

// NewImpactDriven returns the impact-driven prefetcher with the paper's
// 3-layer window.
func NewImpactDriven() *ImpactDriven { return &ImpactDriven{Window: DefaultWindow} }

// Name implements Prefetcher.
func (p *ImpactDriven) Name() string { return "impact-driven" }

// Select implements Prefetcher.
func (p *ImpactDriven) Select(ctx Context) []moe.ExpertID {
	window := p.Window
	if window <= 0 {
		window = DefaultWindow
	}
	budgets := ctx.budgets()
	canAfford := false
	for d := range budgets {
		if budgets[d] >= ctx.Platform.Links[d].TransferTime(ctx.Cfg.ExpertBytes()) {
			canAfford = true
			break
		}
	}
	if !canAfford {
		return nil
	}

	type scored struct {
		id   moe.ExpertID
		gain float64
	}
	var cands []scored
	for d := 1; d <= window; d++ {
		layer := ctx.Layer + d
		if layer >= ctx.Cfg.Layers {
			break
		}
		loads := ctx.PredictedLoads(layer)
		tasks := sched.TasksFromLoads(ctx.Cfg, layer, loads, ctx.IsCached)
		if len(tasks) == 0 {
			continue
		}
		base := sched.SimulateMakespan(ctx.Scheduler, tasks, ctx.Platform, sched.Resources{}, nil)
		for _, task := range tasks {
			if task.Cached {
				continue
			}
			with := sched.SimulateMakespan(ctx.Scheduler, tasks, ctx.Platform, sched.Resources{},
				map[moe.ExpertID]bool{task.ID: true})
			gain := base - with
			if gain <= 0 {
				continue
			}
			// Discount distant layers: prediction error grows with
			// lookahead, so a nearer equal gain is worth more.
			gain /= float64(d)
			cands = append(cands, scored{id: task.ID, gain: gain})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })

	var out []moe.ExpertID
	for _, c := range cands {
		if take(ctx, budgets, ctx.target(c.id), ctx.Cfg.ExpertBytes()) {
			out = append(out, c.id)
		}
	}
	return out
}

var (
	_ Prefetcher = (*None)(nil)
	_ Prefetcher = (*NextLayerTopK)(nil)
	_ Prefetcher = (*ImpactDriven)(nil)
)

// Factory builds one prefetcher instance for an engine run.
type Factory func() Prefetcher

var registry = map[string]Factory{}

// Register makes a prefetcher constructible by name through New.
// Registering a duplicate name or a nil factory panics: both are
// programming errors in plugin wiring, caught at init time.
func Register(name string, f Factory) {
	if name == "" {
		panic("prefetch: Register with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("prefetch: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("prefetch: Register(%q) called twice", name))
	}
	registry[name] = f
}

// New builds the named prefetcher, or returns a descriptive error for
// an unknown name.
func New(name string) (Prefetcher, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown prefetcher %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered prefetchers in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName is a compatibility shim for the pre-registry API.
//
// Deprecated: use New.
func ByName(name string) (Prefetcher, bool) {
	p, err := New(name)
	return p, err == nil
}

func init() {
	Register("none", func() Prefetcher { return NewNone() })
	Register("next-layer-topk", func() Prefetcher { return NewNextLayerTopK() })
	Register("impact-driven", func() Prefetcher { return NewImpactDriven() })
}
