package prefetch

import (
	"strings"
	"testing"
)

func TestRegistryRoundTripsBuiltins(t *testing.T) {
	for _, name := range []string{"none", "next-layer-topk", "impact-driven"} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
	}
	names := Names()
	if len(names) < 3 {
		t.Fatalf("Names() = %v, want at least the builtins", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("psychic")
	if err == nil {
		t.Fatal("unknown prefetcher should error")
	}
	if !strings.Contains(err.Error(), "psychic") || !strings.Contains(err.Error(), "impact-driven") {
		t.Fatalf("error %q should name the unknown prefetcher and the registered ones", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"duplicate":   func() { Register("none", func() Prefetcher { return NewNone() }) },
		"empty name":  func() { Register("", func() Prefetcher { return NewNone() }) },
		"nil factory": func() { Register("nil-factory", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s Register should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRegisterThirdParty(t *testing.T) {
	Register("test-window-1", func() Prefetcher { return &ImpactDriven{Window: 1} })
	p, err := New("test-window-1")
	if err != nil || p == nil {
		t.Fatalf("third-party prefetcher: %v, %v", p, err)
	}
}
