package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// FailureKind selects how an injected failure manifests.
type FailureKind int

const (
	// FailStall freezes the replica's clock silently: it stops stepping
	// and stops renewing its lease, but the fleet keeps routing to it
	// until the lease expires (detection latency drawn from the
	// cluster's dedicated failure RNG stream). On detection the replica
	// is declared dead and its queue reclaimed.
	FailStall FailureKind = iota
	// FailDeath kills the replica at the failure instant: the death is
	// immediately visible and its queue is reclaimed on the spot.
	FailDeath
)

// String returns the kind name used by -fail specs and event logs.
func (k FailureKind) String() string {
	switch k {
	case FailStall:
		return "stall"
	case FailDeath:
		return "death"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failure is one injected replica failure: replica Replica fails at
// simulated time At in the manner of Kind.
type Failure struct {
	Replica int
	At      float64
	Kind    FailureKind
}

// ParseFailures parses a comma-separated failure spec of the form
// "replica@time:kind", e.g. "1@0.3:stall,2@0.8:death". Kind defaults
// to stall when omitted.
func ParseFailures(spec string) ([]Failure, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Failure
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		at := strings.IndexByte(part, '@')
		if at < 0 {
			return nil, fmt.Errorf("cluster: failure %q: want replica@time[:kind]", part)
		}
		replica, err := strconv.Atoi(part[:at])
		if err != nil {
			return nil, fmt.Errorf("cluster: failure %q: bad replica: %v", part, err)
		}
		rest := part[at+1:]
		kind := FailStall
		if colon := strings.IndexByte(rest, ':'); colon >= 0 {
			switch rest[colon+1:] {
			case "stall":
				kind = FailStall
			case "death":
				kind = FailDeath
			default:
				return nil, fmt.Errorf("cluster: failure %q: unknown kind %q (want stall or death)", part, rest[colon+1:])
			}
			rest = rest[:colon]
		}
		t, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: failure %q: bad time: %v", part, err)
		}
		out = append(out, Failure{Replica: replica, At: t, Kind: kind})
	}
	return out, nil
}

// ParseScalePlan parses a comma-separated scale spec of the form
// "+delta@time" / "-delta@time", e.g. "+1@0.5,-2@1.2".
func ParseScalePlan(spec string) ([]ScaleEvent, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []ScaleEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		at := strings.IndexByte(part, '@')
		if at < 0 {
			return nil, fmt.Errorf("cluster: scale event %q: want ±delta@time", part)
		}
		delta, err := strconv.Atoi(part[:at])
		if err != nil {
			return nil, fmt.Errorf("cluster: scale event %q: bad delta: %v", part, err)
		}
		t, err := strconv.ParseFloat(part[at+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: scale event %q: bad time: %v", part, err)
		}
		out = append(out, ScaleEvent{At: t, Delta: delta})
	}
	return out, nil
}
