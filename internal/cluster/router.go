package cluster

import (
	"fmt"
	"sort"

	"hybrimoe/internal/stats"
	"hybrimoe/internal/workload"
)

// ReplicaView is one replica's state as a router sees it at dispatch
// time: queue depth, clock, lifecycle freshness and the cache-affinity
// signal.
type ReplicaView struct {
	// Index is the replica's position in the cluster. Routers return it
	// from Pick — with lifecycle in play the view slice holds only the
	// dispatch-eligible replicas, so a view's position and its Index
	// need not agree.
	Index int
	// State is the replica's lifecycle state. Every view handed to Pick
	// is StateServing (the cluster filters eligibility before routing);
	// the field is carried for router telemetry and for consumers
	// inspecting views directly.
	State ReplicaState
	// Pending is the replica's in-flight plus queued request count
	// (Session.Pending).
	Pending int
	// Clock is the replica's simulation clock in seconds.
	Clock float64
	// LeaseAge is how long ago (seconds of fleet time) the replica last
	// renewed its lease. Healthy replicas heartbeat continuously and
	// report 0; a growing LeaseAge is the one observable symptom of a
	// silently stalled replica before the doctor declares it dead.
	LeaseAge float64
	// Resident and Predicted carry the expert-affinity signal
	// (Engine.PredictedResidency): of the Predicted experts the
	// replica's gate-reuse prediction expects its next iteration to
	// activate, Resident are already held by its per-device cache
	// shards. Resident/Predicted is the replica's cache readiness for
	// the work it is about to do — the overlap between the request's
	// predicted expert set on that replica and the experts the replica
	// already holds.
	Resident, Predicted int
	// HasExpert probes whether a specific expert is resident on the
	// replica (Engine.IsResident) — the per-request affinity signal
	// checkpoint-aware routers score migrating requests' working sets
	// against. Nil in hand-built test views; routers must tolerate that.
	HasExpert func(layer, index int) bool
}

// readiness is the affinity score: predicted-expert residency fraction.
func (v ReplicaView) readiness() float64 {
	if v.Predicted == 0 {
		return 0
	}
	return float64(v.Resident) / float64(v.Predicted)
}

// Router picks the replica each arriving request is dispatched to.
// Pick sees the dispatch-eligible (Serving) replicas only and must
// return the Index of one of the views it was handed; the cluster
// panics on any other value, the way the engine treats scheduler bugs.
// On a full healthy fleet views[i].Index == i, so position-based
// rotation arithmetic keeps its historical behaviour. Routers may keep
// state (cursors, RNG streams) — the cluster owns exactly one instance,
// so dispatch order is the only input and runs stay byte-stable.
type Router interface {
	// Name identifies the router in experiment tables.
	Name() string
	// Pick returns the Index of the view req is dispatched to.
	Pick(req workload.Request, views []ReplicaView) int
}

// RoundRobin dispatches requests to replicas in rotation, blind to load
// and cache state — the content-blind fleet baseline. The rotation
// cursor walks the eligible set, so a dead replica's slot is skipped
// rather than stalling the wheel.
type RoundRobin struct{ next int }

// NewRoundRobin returns a rotation starting at replica 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Router.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Router.
func (r *RoundRobin) Pick(_ workload.Request, views []ReplicaView) int {
	idx := r.next % len(views)
	r.next = (r.next + 1) % len(views)
	return views[idx].Index
}

// LeastLoaded dispatches each request to the replica with the fewest
// pending requests (ties to the lowest index) — load-aware but blind to
// cache state.
type LeastLoaded struct{}

// NewLeastLoaded returns the least-loaded router.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Router.
func (l *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Router.
func (l *LeastLoaded) Pick(_ workload.Request, views []ReplicaView) int {
	best := 0
	for i, v := range views[1:] {
		if v.Pending < views[best].Pending {
			best = i + 1
		}
	}
	return views[best].Index
}

// PowerOfTwo samples two distinct replicas from its own RNG stream and
// dispatches to the lighter one (ties to the lower index) — the classic
// randomized load balancer, far better than random-one at a fraction of
// least-loaded's coordination cost.
type PowerOfTwo struct{ rng *stats.RNG }

// NewPowerOfTwo returns a power-of-two-choices router drawing from its
// own seeded stream, so fleet runs stay deterministic.
func NewPowerOfTwo(seed uint64) *PowerOfTwo {
	return &PowerOfTwo{rng: stats.NewRNG(seed ^ 0x70f2_c401_9b5d_e6a3)}
}

// Name implements Router.
func (p *PowerOfTwo) Name() string { return "power-of-two" }

// Pick implements Router.
func (p *PowerOfTwo) Pick(_ workload.Request, views []ReplicaView) int {
	n := len(views)
	if n == 1 {
		return views[0].Index
	}
	i := p.rng.Intn(n)
	j := p.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if i > j {
		i, j = j, i
	}
	// i < j: on equal depth the lower index wins, keeping ties
	// deterministic whatever order the draws came out.
	if views[j].Pending < views[i].Pending {
		return views[j].Index
	}
	return views[i].Index
}

// DefaultReadyDiscount is the availability credit (in seconds) a fully
// resident predicted expert set buys a replica under Affinity scoring —
// on the order of the CPU→GPU transfer time the resident experts will
// not pay, a few decode steps' worth.
const DefaultReadyDiscount = 0.05

// Affinity steers each request toward the eligible replica that will be
// ready for it soonest, where "ready" folds cache state into
// availability: each replica's score is its clock minus a residency
// discount — the fraction of its predicted expert set already resident
// (ReplicaView.Resident/Predicted, the per-device attribution from
// cache.Multi surfaced by Engine.PredictedResidency) times
// ReadyDiscount, the transfer time those resident experts won't pay.
// Warm replicas therefore win exactly the near-ties where cache
// readiness covers the clock gap, instead of accumulating load
// unboundedly. A load-imbalance cap keeps hot experts from melting one
// replica: only replicas within ImbalanceCap requests of the lightest
// queue are eligible, so affinity never trades locality for unbounded
// queue skew. Score ties go to the lowest index.
type Affinity struct {
	// ImbalanceCap is the maximum queue-depth excess over the lightest
	// replica an eligible pick may carry. The zero value — strict
	// load balance, locality only breaks availability ties — is the
	// default; negative values are treated as 0.
	ImbalanceCap int
	// ReadyDiscount is the availability credit (seconds) full predicted
	// residency buys; non-positive values fall back to
	// DefaultReadyDiscount.
	ReadyDiscount float64
	// StaleTolerance, when positive, makes the router lease-aware: a
	// view whose LeaseAge exceeds it is suspected stalled (a frozen
	// clock looks unbeatably available — exactly the trap) and is
	// skipped unless every view is suspect. The registry factory sets
	// it to half the cluster's lease TTL; the zero value trusts every
	// Serving view, the pre-lifecycle behaviour.
	StaleTolerance float64
}

// NewAffinity returns an affinity router with the default strict
// imbalance cap and readiness discount, trusting every Serving view.
func NewAffinity() *Affinity { return &Affinity{} }

// Name implements Router.
func (a *Affinity) Name() string { return "affinity" }

func (a *Affinity) cap() int {
	if a.ImbalanceCap < 0 {
		return 0
	}
	return a.ImbalanceCap
}

func (a *Affinity) discount() float64 {
	if a.ReadyDiscount <= 0 {
		return DefaultReadyDiscount
	}
	return a.ReadyDiscount
}

// suspect reports whether the view's lease is stale enough to dodge.
func (a *Affinity) suspect(v ReplicaView) bool {
	return a.StaleTolerance > 0 && v.LeaseAge > a.StaleTolerance
}

// readinessFor scores a view's cache readiness for this specific
// request. A migrating checkpointed request carries its own working set,
// so its readiness is the fraction of the checkpoint's experts already
// resident on the replica (probed through HasExpert); everything else
// falls back to the replica's own predicted-residency fraction.
func (a *Affinity) readinessFor(req workload.Request, v ReplicaView) float64 {
	if ck := req.Checkpoint; ck != nil && len(ck.Experts) > 0 && v.HasExpert != nil {
		resident := 0
		for _, x := range ck.Experts {
			if v.HasExpert(x.Layer, x.Index) {
				resident++
			}
		}
		return float64(resident) / float64(len(ck.Experts))
	}
	return v.readiness()
}

// Pick implements Router.
func (a *Affinity) Pick(req workload.Request, views []ReplicaView) int {
	// Lease-awareness: prefer fresh views; if every lease is stale the
	// filter yields nothing and the full set stays in play (a wrong
	// guess beats a stranded request).
	fresh := 0
	for _, v := range views {
		if !a.suspect(v) {
			fresh++
		}
	}
	useFilter := fresh > 0 && fresh < len(views)
	minPending, seeded := 0, false
	for _, v := range views {
		if useFilter && a.suspect(v) {
			continue
		}
		if !seeded || v.Pending < minPending {
			minPending, seeded = v.Pending, true
		}
	}
	best, bestScore := -1, 0.0
	for _, v := range views {
		if useFilter && a.suspect(v) {
			continue
		}
		if v.Pending > minPending+a.cap() {
			continue
		}
		score := v.Clock - a.discount()*a.readinessFor(req, v)
		if best < 0 || score < bestScore {
			best, bestScore = v.Index, score
		}
	}
	return best
}

// RouterConfig carries everything a router factory may condition on:
// fleet shape, the seed randomized routers derive their streams from,
// and the lifecycle knobs lease-aware routers calibrate against. New
// fields extend it without another breaking Factory signature change.
type RouterConfig struct {
	// Replicas is the fleet size at construction (scale plans may grow
	// it later).
	Replicas int
	// Seed is the fleet base seed; randomized routers must derive their
	// streams from it so equal-seed runs stay byte-stable.
	Seed uint64
	// LeaseTTL is the cluster's lease timeout in simulated seconds —
	// the detection horizon lease-aware routers calibrate their
	// staleness tolerance against.
	LeaseTTL float64
}

// Factory builds one router instance for a cluster from its config.
type Factory func(cfg RouterConfig) Router

var registry = map[string]Factory{}

// RegisterRouter makes a router constructible by name through NewRouter.
// Duplicate names and nil factories panic — plugin wiring bugs, caught
// at init time like the sched/cache/reqsched registries.
func RegisterRouter(name string, f Factory) {
	if name == "" {
		panic("cluster: RegisterRouter with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("cluster: RegisterRouter(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cluster: RegisterRouter(%q) called twice", name))
	}
	registry[name] = f
}

// NewRouter builds the named router from cfg, or returns a descriptive
// error for an unknown name.
func NewRouter(name string, cfg RouterConfig) (Router, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown router %q (have %v)", name, RouterNames())
	}
	return f(cfg), nil
}

// RouterNames lists the registered routers in sorted order.
func RouterNames() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterRouter("round-robin", func(RouterConfig) Router { return NewRoundRobin() })
	RegisterRouter("least-loaded", func(RouterConfig) Router { return NewLeastLoaded() })
	RegisterRouter("power-of-two", func(cfg RouterConfig) Router { return NewPowerOfTwo(cfg.Seed) })
	RegisterRouter("affinity", func(cfg RouterConfig) Router {
		return &Affinity{StaleTolerance: cfg.LeaseTTL / 2}
	})
}
