package cluster

import (
	"fmt"
	"sort"

	"hybrimoe/internal/stats"
	"hybrimoe/internal/workload"
)

// ReplicaView is one replica's state as a router sees it at dispatch
// time: queue depth, clock, and the cache-affinity signal.
type ReplicaView struct {
	// Index is the replica's position in the cluster.
	Index int
	// Pending is the replica's in-flight plus queued request count
	// (Session.Pending).
	Pending int
	// Clock is the replica's simulation clock in seconds.
	Clock float64
	// Resident and Predicted carry the expert-affinity signal
	// (Engine.PredictedResidency): of the Predicted experts the
	// replica's gate-reuse prediction expects its next iteration to
	// activate, Resident are already held by its per-device cache
	// shards. Resident/Predicted is the replica's cache readiness for
	// the work it is about to do — the overlap between the request's
	// predicted expert set on that replica and the experts the replica
	// already holds.
	Resident, Predicted int
}

// readiness is the affinity score: predicted-expert residency fraction.
func (v ReplicaView) readiness() float64 {
	if v.Predicted == 0 {
		return 0
	}
	return float64(v.Resident) / float64(v.Predicted)
}

// Router picks the replica each arriving request is dispatched to.
// Pick sees every replica (views[i].Index == i) and must return a valid
// index; the cluster panics on an out-of-range pick, the way the engine
// treats scheduler bugs. Routers may keep state (cursors, RNG streams) —
// the cluster owns exactly one instance, so dispatch order is the only
// input and runs stay byte-stable.
type Router interface {
	// Name identifies the router in experiment tables.
	Name() string
	// Pick returns the replica index req is dispatched to.
	Pick(req workload.Request, views []ReplicaView) int
}

// RoundRobin dispatches requests to replicas in rotation, blind to load
// and cache state — the content-blind fleet baseline.
type RoundRobin struct{ next int }

// NewRoundRobin returns a rotation starting at replica 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Router.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Router.
func (r *RoundRobin) Pick(_ workload.Request, views []ReplicaView) int {
	idx := r.next % len(views)
	r.next = (r.next + 1) % len(views)
	return idx
}

// LeastLoaded dispatches each request to the replica with the fewest
// pending requests (ties to the lowest index) — load-aware but blind to
// cache state.
type LeastLoaded struct{}

// NewLeastLoaded returns the least-loaded router.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Router.
func (l *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Router.
func (l *LeastLoaded) Pick(_ workload.Request, views []ReplicaView) int {
	best := 0
	for _, v := range views[1:] {
		if v.Pending < views[best].Pending {
			best = v.Index
		}
	}
	return best
}

// PowerOfTwo samples two distinct replicas from its own RNG stream and
// dispatches to the lighter one (ties to the lower index) — the classic
// randomized load balancer, far better than random-one at a fraction of
// least-loaded's coordination cost.
type PowerOfTwo struct{ rng *stats.RNG }

// NewPowerOfTwo returns a power-of-two-choices router drawing from its
// own seeded stream, so fleet runs stay deterministic.
func NewPowerOfTwo(seed uint64) *PowerOfTwo {
	return &PowerOfTwo{rng: stats.NewRNG(seed ^ 0x70f2_c401_9b5d_e6a3)}
}

// Name implements Router.
func (p *PowerOfTwo) Name() string { return "power-of-two" }

// Pick implements Router.
func (p *PowerOfTwo) Pick(_ workload.Request, views []ReplicaView) int {
	n := len(views)
	if n == 1 {
		return 0
	}
	i := p.rng.Intn(n)
	j := p.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if i > j {
		i, j = j, i
	}
	// i < j: on equal depth the lower index wins, keeping ties
	// deterministic whatever order the draws came out.
	if views[j].Pending < views[i].Pending {
		return j
	}
	return i
}

// DefaultReadyDiscount is the availability credit (in seconds) a fully
// resident predicted expert set buys a replica under Affinity scoring —
// on the order of the CPU→GPU transfer time the resident experts will
// not pay, a few decode steps' worth.
const DefaultReadyDiscount = 0.05

// Affinity steers each request toward the eligible replica that will be
// ready for it soonest, where "ready" folds cache state into
// availability: each replica's score is its clock minus a residency
// discount — the fraction of its predicted expert set already resident
// (ReplicaView.Resident/Predicted, the per-device attribution from
// cache.Multi surfaced by Engine.PredictedResidency) times
// ReadyDiscount, the transfer time those resident experts won't pay.
// Warm replicas therefore win exactly the near-ties where cache
// readiness covers the clock gap, instead of accumulating load
// unboundedly. A load-imbalance cap keeps hot experts from melting one
// replica: only replicas within ImbalanceCap requests of the lightest
// queue are eligible, so affinity never trades locality for unbounded
// queue skew. Score ties go to the lowest index.
type Affinity struct {
	// ImbalanceCap is the maximum queue-depth excess over the lightest
	// replica an eligible pick may carry. The zero value — strict
	// load balance, locality only breaks availability ties — is the
	// default; negative values are treated as 0.
	ImbalanceCap int
	// ReadyDiscount is the availability credit (seconds) full predicted
	// residency buys; non-positive values fall back to
	// DefaultReadyDiscount.
	ReadyDiscount float64
}

// NewAffinity returns an affinity router with the default strict
// imbalance cap and readiness discount.
func NewAffinity() *Affinity { return &Affinity{} }

// Name implements Router.
func (a *Affinity) Name() string { return "affinity" }

func (a *Affinity) cap() int {
	if a.ImbalanceCap < 0 {
		return 0
	}
	return a.ImbalanceCap
}

func (a *Affinity) discount() float64 {
	if a.ReadyDiscount <= 0 {
		return DefaultReadyDiscount
	}
	return a.ReadyDiscount
}

// Pick implements Router.
func (a *Affinity) Pick(_ workload.Request, views []ReplicaView) int {
	minPending := views[0].Pending
	for _, v := range views[1:] {
		if v.Pending < minPending {
			minPending = v.Pending
		}
	}
	best, bestScore := -1, 0.0
	for _, v := range views {
		if v.Pending > minPending+a.cap() {
			continue
		}
		score := v.Clock - a.discount()*v.readiness()
		if best < 0 || score < bestScore {
			best, bestScore = v.Index, score
		}
	}
	return best
}

// Factory builds one router instance for a cluster of n replicas.
// Randomized routers derive their stream from seed, so equal-seed runs
// are byte-stable.
type Factory func(n int, seed uint64) Router

var registry = map[string]Factory{}

// RegisterRouter makes a router constructible by name through NewRouter.
// Duplicate names and nil factories panic — plugin wiring bugs, caught
// at init time like the sched/cache/reqsched registries.
func RegisterRouter(name string, f Factory) {
	if name == "" {
		panic("cluster: RegisterRouter with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("cluster: RegisterRouter(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cluster: RegisterRouter(%q) called twice", name))
	}
	registry[name] = f
}

// NewRouter builds the named router for an n-replica fleet, or returns
// a descriptive error for an unknown name.
func NewRouter(name string, n int, seed uint64) (Router, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown router %q (have %v)", name, RouterNames())
	}
	return f(n, seed), nil
}

// RouterNames lists the registered routers in sorted order.
func RouterNames() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterRouter("round-robin", func(int, uint64) Router { return NewRoundRobin() })
	RegisterRouter("least-loaded", func(int, uint64) Router { return NewLeastLoaded() })
	RegisterRouter("power-of-two", func(_ int, seed uint64) Router { return NewPowerOfTwo(seed) })
	RegisterRouter("affinity", func(int, uint64) Router { return NewAffinity() })
}
