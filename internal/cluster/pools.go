package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// PoolRole is a replica's station in a disaggregated fleet: prefill
// replicas run prompt forwards and export checkpointed requests at the
// stage boundary, decode replicas adopt migrated requests and generate
// tokens, and mixed replicas — every replica of an unpooled fleet —
// serve whole request lives the historical way.
type PoolRole int

// Pool roles. RoleMixed is the zero value so unpooled fleets need no
// configuration at all.
const (
	RoleMixed PoolRole = iota
	RolePrefill
	RoleDecode
)

// String returns the role name event logs and CLI summaries use.
func (r PoolRole) String() string {
	switch r {
	case RoleMixed:
		return "mixed"
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("PoolRole(%d)", int(r))
	}
}

// PoolSpec partitions a fleet into disaggregated serving pools by
// replica index: replicas [0, Prefill) take the prefill role, replicas
// [Prefill, Prefill+Decode) the decode role, and any further replicas —
// including ones a scale plan adds mid-run — stay mixed (they accept
// both fresh arrivals and handoffs, the elastic overflow pool). The
// zero value configures no pools: every replica is mixed and the fleet
// behaves exactly as before the roles existed.
type PoolSpec struct {
	Prefill int
	Decode  int
}

// Pooled reports whether the spec actually partitions the fleet.
func (s PoolSpec) Pooled() bool { return s.Prefill > 0 || s.Decode > 0 }

// Role reports the role replica i serves under this spec.
func (s PoolSpec) Role(i int) PoolRole {
	switch {
	case !s.Pooled():
		return RoleMixed
	case i < s.Prefill:
		return RolePrefill
	case i < s.Prefill+s.Decode:
		return RoleDecode
	default:
		return RoleMixed
	}
}

// String renders "P:D" ("mixed" for the zero spec), the CLI flag syntax
// ParsePools reads back.
func (s PoolSpec) String() string {
	if !s.Pooled() {
		return "mixed"
	}
	return fmt.Sprintf("%d:%d", s.Prefill, s.Decode)
}

// validate rejects specs no fleet could serve: negative pool sizes, or
// one stage pooled without the other (a prefill pool with nowhere to
// hand off to, or a decode pool nothing feeds).
func (s PoolSpec) validate() error {
	if s.Prefill < 0 || s.Decode < 0 {
		return fmt.Errorf("cluster: pool spec %d:%d has a negative pool", s.Prefill, s.Decode)
	}
	if s.Pooled() && (s.Prefill == 0 || s.Decode == 0) {
		return fmt.Errorf("cluster: pool spec %d:%d needs both a prefill and a decode pool", s.Prefill, s.Decode)
	}
	return nil
}

// WithPools partitions the fleet into disaggregated prefill/decode
// pools per spec. Fresh prompt-bearing arrivals route within the
// prefill pool (whose sessions run in prefill-export mode); at each
// export the cluster prices the checkpoint's bytes over the platform's
// Interconnect, emits a Handoff event, and routes the request within
// the decode pool once the transfer lands. New validates the spec
// against the fleet size and requires every replica platform to model
// an Interconnect. The zero spec is a no-op (fully mixed fleet).
func WithPools(spec PoolSpec) Option {
	return func(c *config) error {
		if err := spec.validate(); err != nil {
			return err
		}
		c.pools = spec
		return nil
	}
}

// ParsePools parses the CLI pool syntax "P:D" (e.g. "1:2" — one prefill
// replica, two decode replicas). The empty string means no pools.
func ParsePools(spec string) (PoolSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return PoolSpec{}, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 2 {
		return PoolSpec{}, fmt.Errorf("cluster: pool spec %q is not P:D", spec)
	}
	p, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return PoolSpec{}, fmt.Errorf("cluster: pool spec %q: bad prefill count: %v", spec, err)
	}
	d, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return PoolSpec{}, fmt.Errorf("cluster: pool spec %q: bad decode count: %v", spec, err)
	}
	out := PoolSpec{Prefill: p, Decode: d}
	if err := out.validate(); err != nil {
		return PoolSpec{}, err
	}
	if !out.Pooled() {
		return PoolSpec{}, fmt.Errorf("cluster: pool spec %q configures empty pools", spec)
	}
	return out, nil
}
