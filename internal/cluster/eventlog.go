package cluster

import (
	"bufio"
	"encoding/json"
	"io"
)

// EventKind discriminates fleet events: ordinary replica compute steps
// (the zero value, omitted from JSON so step records keep the engine
// event schema plus a Replica tag) from first-class lifecycle records.
type EventKind string

// Event kinds.
const (
	// EventStep is a replica compute/admission step — the embedded
	// StepEvent carries the payload.
	EventStep EventKind = ""
	// EventReplicaWarming records a scale-up replica joining the fleet
	// cold; Start/End stamp the join.
	EventReplicaWarming EventKind = "replica-warming"
	// EventReplicaDraining records a scale-down replica closing to new
	// dispatches.
	EventReplicaDraining EventKind = "replica-draining"
	// EventReplicaDead records a replica leaving the fleet — drained
	// empty, hard-killed, or declared dead on lease expiry. For kills,
	// Tokens counts the in-flight requests abandoned with it.
	EventReplicaDead EventKind = "replica-dead"
	// EventRerouted records one queued, un-emitted request reclaimed
	// from a dead replica back into the dispatch queue with its
	// original arrival stamp; Replica names the replica it left.
	EventRerouted EventKind = "rerouted"
	// EventHandoff records one checkpointed request's prefill→decode
	// migration landing: Replica is the receiving decode replica,
	// Start/End span the interconnect transfer, Tokens counts the
	// expert working-set references carried and Hits how many of them
	// were admitted warm. The exporting replica is the one whose
	// Migrated prefill event carries the same request ID.
	EventHandoff EventKind = "handoff"
)

// WriteEventLog serialises a fleet Event stream as JSONL — one JSON
// object per event, byte-stable for identical streams, the same
// contract as engine.WriteEventLog. Step events omit the Kind field, so
// a lifecycle-free fleet log is the engine schema plus a Replica tag;
// lifecycle records carry their kind explicitly.
func WriteEventLog(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		// Encode appends the newline that terminates each record.
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
