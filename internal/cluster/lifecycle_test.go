package cluster

import (
	"reflect"
	"testing"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/workload"
)

// admitNone sheds every request at the fleet door.
type admitNone struct{}

func (admitNone) Name() string { return "admit-none" }
func (admitNone) Decide(workload.Request, engine.SLOSnapshot) engine.AdmissionDecision {
	return engine.AdmissionShed
}

// churnCluster builds the scenario the lifecycle tests share: replicas
// on derived seeds, round-robin routing unless overridden, and a route
// log wide enough to audit every dispatch.
func churnCluster(t *testing.T, seed uint64, n int, extra ...Option) *Cluster {
	t.Helper()
	opts := append([]Option{
		WithReplicas(n),
		WithBuilder(buildReplica(t, seed)),
		WithSeed(seed),
		WithMaxConcurrent(2),
		WithRouteLog(256),
	}, extra...)
	c, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// lifeEvents partitions a run's event stream by kind.
func lifeEvents(evs []Event) map[EventKind][]Event {
	out := map[EventKind][]Event{}
	for _, ev := range evs {
		out[ev.Kind] = append(out[ev.Kind], ev)
	}
	return out
}

// TestClusterHardDeathReroutes pins the reclaim path: a hard-killed
// replica dies at the failure instant, its queued un-emitted requests
// re-enter the dispatch queue with their original arrivals (one
// Rerouted event each), started in-flight work is lost, and every
// request is either completed or lost — nothing vanishes silently.
func TestClusterHardDeathReroutes(t *testing.T) {
	const seed, offered, rate = 700, 18, 12.0
	const deadAt = 0.2
	c := churnCluster(t, seed, 3, WithFailure(1, deadAt, FailDeath))
	reqs := burstRequests(seed, offered, rate)
	arrivals := map[int]float64{}
	for _, r := range reqs {
		arrivals[r.ID] = r.Arrival
	}
	c.Submit(reqs...)

	var evs []Event
	done := map[int]bool{}
	c.Run(func(ev Event) {
		evs = append(evs, ev)
		if ev.Kind == EventStep && ev.Done {
			done[ev.Request] = true
		}
	})
	byKind := lifeEvents(evs)

	deaths := byKind[EventReplicaDead]
	if len(deaths) != 1 {
		t.Fatalf("%d ReplicaDead events, want 1", len(deaths))
	}
	if deaths[0].Replica != 1 || deaths[0].End != deadAt {
		t.Fatalf("death event %+v, want replica 1 at t=%g", deaths[0], deadAt)
	}
	if c.State(1) != StateDead {
		t.Fatalf("replica 1 in state %v after death", c.State(1))
	}
	if int(deaths[0].Tokens) != c.Lost() {
		t.Fatalf("death event carries %d lost, counter says %d", deaths[0].Tokens, c.Lost())
	}

	reroutes := byKind[EventRerouted]
	if len(reroutes) != c.Rerouted() {
		t.Fatalf("%d Rerouted events but Rerouted() = %d", len(reroutes), c.Rerouted())
	}
	for _, ev := range reroutes {
		if ev.Replica != 1 {
			t.Fatalf("re-route off replica %d, only 1 died: %+v", ev.Replica, ev)
		}
		if ev.Arrival != arrivals[ev.Request] {
			t.Fatalf("re-routed request %d lost its original arrival: %+v", ev.Request, ev)
		}
	}

	if got := len(done) + c.Lost(); got != offered {
		t.Fatalf("completed %d + lost %d ≠ offered %d", len(done), c.Lost(), offered)
	}
	if c.Lost() == 0 && c.Rerouted() == 0 {
		t.Fatal("death at mid-burst touched no requests; scenario too tame to test anything")
	}

	// The dead replica must receive nothing after the failure instant.
	for _, rec := range c.RouteLog() {
		if rec.Replica == 1 && rec.At >= deadAt {
			t.Fatalf("dispatched to dead replica 1 at t=%g", rec.At)
		}
		if rec.Rerouted && rec.Replica == 1 {
			t.Fatalf("re-dispatched a reclaimed request back to the dead replica: %+v", rec)
		}
	}
}

// TestClusterStallDetectedByLease pins the silent-failure path: a
// stalled replica keeps receiving dispatches (the fleet cannot see a
// silent stall) until its lease expires, at which point it is declared
// dead strictly later than the stall instant, its queue re-routes, and
// the surviving fleet drains everything that wasn't in flight.
func TestClusterStallDetectedByLease(t *testing.T) {
	const seed, offered, rate = 710, 18, 12.0
	const stallAt = 0.2
	c := churnCluster(t, seed, 3, WithFailure(1, stallAt, FailStall))
	c.Submit(burstRequests(seed, offered, rate)...)

	var evs []Event
	done := map[int]bool{}
	c.Run(func(ev Event) {
		evs = append(evs, ev)
		if ev.Kind == EventStep && ev.Done {
			done[ev.Request] = true
		}
	})
	byKind := lifeEvents(evs)

	deaths := byKind[EventReplicaDead]
	if len(deaths) != 1 {
		t.Fatalf("%d ReplicaDead events, want 1", len(deaths))
	}
	detectAt := deaths[0].End
	if detectAt <= stallAt+DefaultLeaseTTL*0.99 {
		t.Fatalf("detection at t=%g, want at least a lease TTL after the stall at %g", detectAt, stallAt)
	}
	if detectAt > stallAt+DefaultLeaseTTL*1.3 {
		t.Fatalf("detection at t=%g, later than TTL plus maximum jitter allows", detectAt)
	}

	// Silent window: the router must have kept dispatching to the
	// stalled replica between stall and detection — that blindness is
	// the failure mode under test. (Round-robin is content- and
	// lease-blind, so the rotation guarantees hits in the window.)
	silent := 0
	for _, rec := range c.RouteLog() {
		if rec.Replica == 1 && rec.At > stallAt && rec.At < detectAt {
			silent++
		}
		if rec.Replica == 1 && rec.At >= detectAt {
			t.Fatalf("dispatched to detected-dead replica 1 at t=%g", rec.At)
		}
	}
	if silent == 0 {
		t.Fatal("no dispatches landed on the silently stalled replica; the window never exercised")
	}

	if got := len(done) + c.Lost(); got != offered {
		t.Fatalf("completed %d + lost %d ≠ offered %d", len(done), c.Lost(), offered)
	}
	if c.Rerouted() == 0 {
		t.Fatal("stall reclaimed nothing; queued requests should have re-routed on detection")
	}

	// Recovery: requests re-routed off the dead replica completed on
	// the survivors — queue-inclusive TTFT includes the dead-box wait,
	// so their Done events exist despite arriving before the stall.
	for _, ev := range byKind[EventRerouted] {
		if !done[ev.Request] {
			t.Fatalf("re-routed request %d never completed on the surviving fleet", ev.Request)
		}
	}
}

// TestClusterStallFreezesClock pins the stall semantics themselves: the
// replica's engine clock never advances past the stall instant.
func TestClusterStallFreezesClock(t *testing.T) {
	const seed, offered, rate = 715, 16, 12.0
	const stallAt = 0.15
	c := churnCluster(t, seed, 2, WithFailure(0, stallAt, FailStall))
	c.Submit(burstRequests(seed, offered, rate)...)
	c.Run(nil)
	// The last step the stalled replica ran began before stallAt; its
	// clock may overshoot by at most that one step's span, never by a
	// whole post-stall step.
	frozen := c.Engine(0).Clock()
	alive := c.Engine(1).Clock()
	if frozen >= alive {
		t.Fatalf("stalled replica clock %.3fs caught up with survivor %.3fs", frozen, alive)
	}
	if c.State(0) != StateDead {
		t.Fatalf("stalled replica in state %v after lease expiry", c.State(0))
	}
}

// TestClusterScaleUpPaysWarmup pins elasticity: a scale plan adds a
// replica that joins Warming (one ReplicaWarming event at the join
// stamp), receives nothing during its warm-up window, then serves.
func TestClusterScaleUpPaysWarmup(t *testing.T) {
	const seed, offered, rate = 720, 24, 14.0
	const joinAt = 0.2
	c := churnCluster(t, seed, 2, WithScalePlan(ScaleEvent{At: joinAt, Delta: 1}))
	c.Submit(burstRequests(seed, offered, rate)...)

	var evs []Event
	c.Run(func(ev Event) { evs = append(evs, ev) })
	byKind := lifeEvents(evs)

	warmings := byKind[EventReplicaWarming]
	if len(warmings) != 1 {
		t.Fatalf("%d ReplicaWarming events, want 1", len(warmings))
	}
	if warmings[0].Replica != 2 || warmings[0].End != joinAt {
		t.Fatalf("warming event %+v, want replica 2 at t=%g", warmings[0], joinAt)
	}
	if c.Replicas() != 3 {
		t.Fatalf("fleet size %d after scale-up, want 3", c.Replicas())
	}
	if c.State(2) != StateServing {
		t.Fatalf("scale-up replica in state %v at drain, want serving", c.State(2))
	}

	servedNew := 0
	for _, rec := range c.RouteLog() {
		if rec.Replica != 2 {
			continue
		}
		servedNew++
		if rec.At < joinAt+DefaultWarmup {
			t.Fatalf("dispatched to warming replica at t=%g, before promotion at %g",
				rec.At, joinAt+DefaultWarmup)
		}
	}
	if servedNew == 0 {
		t.Fatal("scale-up replica never served; burst too short to exercise elasticity")
	}
}

// TestClusterScaleDownDrains pins the drain path: the highest-indexed
// replica closes to new dispatches at the drain stamp, finishes what it
// holds, and retires Dead; every request still completes.
func TestClusterScaleDownDrains(t *testing.T) {
	const seed, offered, rate = 730, 18, 10.0
	const drainAt = 0.25
	c := churnCluster(t, seed, 3, WithScalePlan(ScaleEvent{At: drainAt, Delta: -1}))
	c.Submit(burstRequests(seed, offered, rate)...)

	var evs []Event
	done := map[int]bool{}
	c.Run(func(ev Event) {
		evs = append(evs, ev)
		if ev.Kind == EventStep && ev.Done {
			done[ev.Request] = true
		}
	})
	byKind := lifeEvents(evs)

	drains := byKind[EventReplicaDraining]
	if len(drains) != 1 || drains[0].Replica != 2 {
		t.Fatalf("draining events %+v, want exactly replica 2", drains)
	}
	deaths := byKind[EventReplicaDead]
	if len(deaths) != 1 || deaths[0].Replica != 2 {
		t.Fatalf("dead events %+v, want exactly replica 2", deaths)
	}
	if deaths[0].Tokens != 0 {
		t.Fatalf("drain lost %d in-flight requests; draining must finish its work", deaths[0].Tokens)
	}
	if c.State(2) != StateDead {
		t.Fatalf("drained replica in state %v, want dead", c.State(2))
	}
	if len(done) != offered {
		t.Fatalf("completed %d of %d; scale-down must not lose work", len(done), offered)
	}
	for _, rec := range c.RouteLog() {
		if rec.Replica == 2 && rec.At >= drainAt {
			t.Fatalf("dispatched to draining replica at t=%g", rec.At)
		}
	}
}

// TestClusterChurnDeterminism pins the acceptance criterion: identical
// seeds, failures and scale plans reproduce byte-identical event
// streams, and the failure RNG stream is independent per seed.
func TestClusterChurnDeterminism(t *testing.T) {
	run := func(seed uint64) []Event {
		c := churnCluster(t, seed, 3,
			WithRouter("affinity"),
			WithFailure(1, 0.2, FailStall),
			WithScalePlan(ScaleEvent{At: 0.35, Delta: 1}))
		c.Submit(burstRequests(740, 20, 12)...)
		var evs []Event
		c.Run(func(ev Event) { evs = append(evs, ev) })
		return evs
	}
	a, b := run(740), run(740)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal-seed churn runs diverged")
	}
	if c := run(741); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical churn streams; detection jitter not seeded")
	}
}

// TestClusterStrandedFleet pins the terminal case: when every replica
// is dead and no lifecycle action can restore capacity, Run returns
// with the undeliverable arrivals still pending rather than spinning.
func TestClusterStrandedFleet(t *testing.T) {
	c := churnCluster(t, 750, 1, WithFailure(0, 0.05, FailDeath))
	c.Submit(burstRequests(750, 8, 6)...)
	c.Run(nil)
	if c.State(0) != StateDead {
		t.Fatalf("replica 0 in state %v, want dead", c.State(0))
	}
	if c.Pending() == 0 {
		t.Fatal("a fully dead fleet drained its queue; requests served by a corpse")
	}
}

// TestClusterReroutedSkipsFleetAdmission pins the door policy: a
// request the fleet already admitted is not re-judged (and possibly
// shed) just because its replica died.
func TestClusterReroutedSkipsFleetAdmission(t *testing.T) {
	shedAll := admitNone{}
	c := churnCluster(t, 760, 2,
		WithFailure(1, 0.08, FailDeath),
		WithAdmission(shedAll))
	// Admission sheds everything, so nothing is ever dispatched and the
	// death reclaims nothing — but the path must not panic, and the
	// shed count must cover the whole burst exactly once.
	reqs := burstRequests(760, 10, 8)
	c.Submit(reqs...)
	c.Run(nil)
	if c.Shed() != len(reqs) {
		t.Fatalf("shed %d of %d", c.Shed(), len(reqs))
	}
}
