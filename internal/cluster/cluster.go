// Package cluster lifts the single-box Session to a fleet: N independent
// engine replicas — each with its own topology, cache, scheduler, batcher
// and RNG stream — advanced in lockstep on a shared simulation clock,
// with arriving requests dispatched across them by a pluggable Router.
// The locality argument the paper makes for CPU↔GPU expert caching
// recurs one level up: steering a request toward the replica whose cache
// shards already hold its predicted experts (the affinity router) buys
// the same transfer avoidance that intra-box placement does.
package cluster

import (
	"fmt"
	"math"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/report"
	"hybrimoe/internal/sim"
	"hybrimoe/internal/workload"
)

// FleetReplica marks Events produced by the cluster itself — fleet-level
// admission sheds and deferrals that happen before any replica is picked.
const FleetReplica = -1

// replicaSeedStride spaces per-replica RNG seeds (the golden-ratio
// increment splitmix64 uses), so sibling replicas draw decorrelated
// trace and workload streams from one base seed.
const replicaSeedStride = 0x9E3779B97F4A7C15

// ReplicaSeed derives replica i's RNG seed from a fleet base seed —
// the convention every fleet consumer (experiments, CLI, benchmarks)
// shares so equal-seed runs stay byte-stable across entry points.
func ReplicaSeed(base uint64, i int) uint64 {
	return base + uint64(i)*replicaSeedStride
}

// Event is one fleet step: a replica's StepEvent tagged with the replica
// index that produced it, or a fleet-level admission record tagged
// FleetReplica. The embedded StepEvent keeps existing reporting working
// unchanged on per-replica slices of the stream.
type Event struct {
	// Replica indexes the replica that emitted the event, or is
	// FleetReplica for cluster-level admission records.
	Replica int
	engine.StepEvent
}

// fleetRequest tracks one submitted request awaiting dispatch.
type fleetRequest struct {
	req      workload.Request
	deferred bool // a fleet-level PhaseDeferred event has been emitted
}

// Option configures a Cluster.
type Option func(*Cluster)

// WithMaxConcurrent sets every replica session's concurrency limit
// (engine.WithMaxConcurrent semantics). The default of 1 serves each
// replica's requests strictly in order. n < 1 panics.
func WithMaxConcurrent(n int) Option {
	if n < 1 {
		panic(fmt.Sprintf("cluster: WithMaxConcurrent(%d) must be at least 1", n))
	}
	return func(c *Cluster) { c.maxConcurrent = n }
}

// WithAdmission installs a fleet-level admission policy consulted at
// dispatch time, before a request reaches any replica — router-level
// shedding over fleet-aggregate TTFT/TBT quantiles. Replica sessions
// keep whatever admission their engines were built with; the two layers
// compose (fleet sheds first, replicas may still defer what gets
// through).
func WithAdmission(p engine.AdmissionPolicy) Option {
	return func(c *Cluster) { c.adm = p }
}

// replica is one independent serving stack.
type replica struct {
	eng *engine.Engine
	ses *engine.Session
}

// Cluster owns N replica stacks and a router, and advances the fleet in
// lockstep: each Step dispatches every arrival the shared clock has
// reached, then runs one session step on the replica whose clock trails
// the fleet. Equal-seed runs are byte-stable — the router is the only
// coupling between replicas, and every stochastic component draws from
// its own seeded stream.
type Cluster struct {
	replicas      []*replica
	router        Router
	adm           engine.AdmissionPolicy
	maxConcurrent int
	// pending holds submitted requests not yet dispatched, keyed by
	// arrival stamp on the shared deterministic event queue (push order
	// breaks ties — exactly the old stable sort), so dispatch is
	// order-preserving the way session admission is.
	pending sim.Queue[*fleetRequest]
	// queue holds fleet-level admission records awaiting emission, one
	// per Step call, ahead of replica compute — the session's admEvents
	// idiom at fleet scope.
	queue []Event
	// ttfts and tbts aggregate latency observations across every
	// replica's event stream; fleet admission snapshots quantile over
	// them. Only maintained when a fleet admission policy is installed.
	ttfts, tbts report.Live
	// promptless marks dispatched request IDs with no prefill, so
	// observe can attribute their first decode as a TTFT observation
	// the way the session's decode-only path does.
	promptless map[int]bool
	routed     []int
	steps      int
	shed       int
	deferred   int
}

// New builds an n-replica cluster: build(i) constructs replica i's
// engine (seed it per-replica for byte-stable runs), and router
// dispatches arrivals across the resulting sessions. A build error is
// returned with its replica index attached.
func New(n int, router Router, build func(i int) (*engine.Engine, error), opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: replica count %d must be at least 1", n)
	}
	if router == nil {
		return nil, fmt.Errorf("cluster: nil router")
	}
	c := &Cluster{
		router:        router,
		maxConcurrent: 1,
		promptless:    map[int]bool{},
		routed:        make([]int, n),
	}
	for _, opt := range opts {
		opt(c)
	}
	for i := 0; i < n; i++ {
		eng, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: building replica %d: %w", i, err)
		}
		c.replicas = append(c.replicas, &replica{
			eng: eng,
			ses: eng.NewSession(engine.WithMaxConcurrent(c.maxConcurrent)),
		})
	}
	return c, nil
}

// Submit enqueues requests for dispatch. Zero-work requests are dropped
// the way Session.Submit drops them; the rest join the arrival-keyed
// dispatch queue (FIFO among equal stamps, so equal stamps keep
// submission order).
func (c *Cluster) Submit(reqs ...workload.Request) {
	for _, r := range reqs {
		if r.PromptTokens <= 0 && r.DecodeTokens <= 0 {
			continue
		}
		c.pending.Push(r.Arrival, &fleetRequest{req: r})
	}
}

// Pending reports how many requests have not yet finished: undispatched
// arrivals plus every replica's in-flight and queued count.
func (c *Cluster) Pending() int {
	n := c.pending.Len()
	for _, r := range c.replicas {
		n += r.ses.Pending()
	}
	return n
}

// Replicas reports the fleet size.
func (c *Cluster) Replicas() int { return len(c.replicas) }

// Session returns replica i's session, for per-replica inspection.
func (c *Cluster) Session(i int) *engine.Session { return c.replicas[i].ses }

// Engine returns replica i's engine.
func (c *Cluster) Engine(i int) *engine.Engine { return c.replicas[i].eng }

// Routed reports how many requests the router dispatched to each
// replica (fleet-level sheds excluded).
func (c *Cluster) Routed() []int { return append([]int(nil), c.routed...) }

// Steps reports how many events the cluster has emitted, fleet-level
// admission records included.
func (c *Cluster) Steps() int { return c.steps }

// Shed reports how many requests fleet-level admission dropped (replica
// sessions count their own sheds separately).
func (c *Cluster) Shed() int { return c.shed }

// Deferred reports how many fleet-level deferral verdicts admission
// returned (one request deferred across n dispatch passes counts n
// times; its PhaseDeferred event is emitted once).
func (c *Cluster) Deferred() int { return c.deferred }

// RouterName reports the dispatch policy steering this cluster.
func (c *Cluster) RouterName() string { return c.router.Name() }

// frontier reports the minimum simulation clock across replicas with
// work in flight — the instant the fleet's next compute step runs at,
// and therefore the latest arrival stamp dispatch may observe without
// leaking the future. ok is false when every replica is idle.
func (c *Cluster) frontier() (at float64, ok bool) {
	for _, r := range c.replicas {
		if r.ses.Pending() == 0 {
			continue
		}
		if clk := r.eng.Clock(); !ok || clk < at {
			at, ok = clk, true
		}
	}
	return at, ok
}

// views assembles the router's per-replica snapshot: queue depth, clock,
// and the predicted-expert residency the affinity router scores.
func (c *Cluster) views() []ReplicaView {
	views := make([]ReplicaView, len(c.replicas))
	for i, r := range c.replicas {
		res, pred := r.eng.PredictedResidency()
		views[i] = ReplicaView{
			Index:     i,
			Pending:   r.ses.Pending(),
			Clock:     r.eng.Clock(),
			Resident:  res,
			Predicted: pred,
		}
	}
	return views
}

// snapshot assembles the fleet-aggregate view a fleet admission
// decision sees at dispatch time now.
func (c *Cluster) snapshot(now float64) engine.SLOSnapshot {
	active, queued := 0, 0
	for _, r := range c.replicas {
		active += r.ses.Pending()
	}
	c.pending.Scan(func(at float64, _ *fleetRequest) {
		if at <= now {
			queued++
		}
	})
	return engine.SLOSnapshot{
		Now:    now,
		TTFT:   c.ttfts.Stats(),
		TBT:    c.tbts.Stats(),
		Active: active,
		Queued: queued,
	}
}

// dispatch moves every observable arrival through fleet admission and
// the router into a replica session. The horizon — the latest arrival
// stamp dispatch may act on — is the busy-replica clock frontier, or the
// head arrival itself when the fleet is idle (the clock is about to jump
// there, the session idle-gap rule lifted to the fleet). The horizon
// only ratchets forward within one pass: dispatching to a stale-clocked
// idle replica lowers the raw frontier, but an arrival observable at a
// time stays observable. Dispatch is order-preserving — a deferred head
// blocks everything behind it, unless the whole fleet is idle, in which
// case it is promoted the way an empty session promotes (waiting cannot
// improve quantiles no one is producing).
func (c *Cluster) dispatch() {
	horizon := math.Inf(-1)
	for {
		_, head, more := c.pending.PeekMin()
		if !more {
			return
		}
		front, busy := c.frontier()
		switch {
		case busy && front > horizon:
			horizon = front
		case !busy && head.req.Arrival > horizon:
			horizon = head.req.Arrival
		}
		if head.req.Arrival > horizon {
			return
		}
		if c.adm != nil {
			switch d := c.adm.Decide(head.req, c.snapshot(horizon)); d {
			case engine.AdmissionShed:
				c.pending.PopMin()
				c.shed++
				c.queue = append(c.queue, Event{Replica: FleetReplica, StepEvent: engine.StepEvent{
					Request: head.req.ID, Phase: engine.PhaseShed,
					Start: horizon, End: horizon,
					Deadline: head.req.Deadline, Arrival: head.req.Arrival,
					Class: head.req.Class, Done: true,
				}})
				continue
			case engine.AdmissionDefer:
				c.deferred++
				if busy {
					if !head.deferred {
						head.deferred = true
						c.queue = append(c.queue, Event{Replica: FleetReplica, StepEvent: engine.StepEvent{
							Request: head.req.ID, Phase: engine.PhaseDeferred,
							Start: horizon, End: horizon,
							Deadline: head.req.Deadline, Arrival: head.req.Arrival,
							Class: head.req.Class,
						}})
					}
					return
				}
				// Idle-fleet promotion: the verdict counts, the wait is
				// skipped, exactly as in Session.admit.
			}
		}
		views := c.views()
		pick := c.router.Pick(head.req, views)
		if pick < 0 || pick >= len(c.replicas) {
			panic(fmt.Sprintf("cluster: router %q picked replica %d of %d",
				c.router.Name(), pick, len(c.replicas)))
		}
		c.pending.PopMin()
		c.routed[pick]++
		if head.req.PromptTokens <= 0 {
			c.promptless[head.req.ID] = true
		}
		c.replicas[pick].ses.Submit(head.req)
	}
}

// observe folds a replica event into the fleet-aggregate latency
// accumulators fleet admission quantiles over — queue-inclusive TTFT on
// prefills (and on a prompt-less request's first arrival-stamped
// decode), raw per-step TBT on decodes — mirroring what each session
// feeds its own admission.
func (c *Cluster) observe(ev engine.StepEvent) {
	if c.adm == nil {
		return
	}
	switch ev.Phase {
	case engine.PhasePrefill:
		c.ttfts.Add(ev.Queued + ev.Latency)
	case engine.PhaseDecode:
		c.tbts.Add(ev.Latency)
		if c.promptless[ev.Request] && ev.Index == 0 && ev.Arrival > 0 {
			c.ttfts.Add(ev.Queued + ev.Latency)
		}
	}
}

// Step advances the fleet by one event: a queued fleet admission record
// if one is waiting, else one session step on the busy replica whose
// clock trails the fleet (ties to the lowest index — the deterministic
// lockstep order). ok is false when every submitted request has finished
// or been shed.
func (c *Cluster) Step() (ev Event, ok bool) {
	if len(c.queue) == 0 {
		c.dispatch()
	}
	if len(c.queue) > 0 {
		ev = c.queue[0]
		c.queue = c.queue[1:]
		c.steps++
		return ev, true
	}
	pick := -1
	for i, r := range c.replicas {
		if r.ses.Pending() == 0 {
			continue
		}
		if pick < 0 || r.eng.Clock() < c.replicas[pick].eng.Clock() {
			pick = i
		}
	}
	if pick < 0 {
		return Event{}, false
	}
	sev, sok := c.replicas[pick].ses.Step()
	if !sok {
		// Pending() > 0 guarantees the session has a step to run; a
		// refusal is an accounting bug, not a drained fleet.
		panic(fmt.Sprintf("cluster: replica %d session refused to step with %d pending",
			pick, c.replicas[pick].ses.Pending()))
	}
	c.observe(sev)
	c.steps++
	return Event{Replica: pick, StepEvent: sev}, true
}

// Run drains the cluster, invoking handler (when non-nil) on every
// event, and returns the number of events emitted.
func (c *Cluster) Run(handler func(Event)) int {
	n := 0
	for {
		ev, ok := c.Step()
		if !ok {
			return n
		}
		if handler != nil {
			handler(ev)
		}
		n++
	}
}
