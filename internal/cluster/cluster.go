// Package cluster lifts the single-box Session to a fleet: N independent
// engine replicas — each with its own topology, cache, scheduler, batcher
// and RNG stream — advanced in lockstep on a shared simulation clock,
// with arriving requests dispatched across them by a pluggable Router.
// The locality argument the paper makes for CPU↔GPU expert caching
// recurs one level up: steering a request toward the replica whose cache
// shards already hold its predicted experts (the affinity router) buys
// the same transfer avoidance that intra-box placement does.
//
// Replicas carry a lifecycle (Warming → Serving → Draining → Dead)
// driven on the same timeline: failures can be injected
// deterministically (WithFailure — a silent clock stall detected by
// lease expiry, or an immediately visible hard death), the fleet can be
// scaled mid-run (WithScalePlan — new replicas join cold and pay a
// re-warm window before serving), and a dead replica's undelivered
// queue re-enters the dispatch queue with original arrival stamps, so
// re-routing shows up honestly in queue-inclusive TTFT.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/report"
	"hybrimoe/internal/sim"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/workload"
)

// FleetReplica marks Events produced by the cluster itself — fleet-level
// admission sheds and deferrals that happen before any replica is picked.
const FleetReplica = -1

// replicaSeedStride spaces per-replica RNG seeds (the golden-ratio
// increment splitmix64 uses), so sibling replicas draw decorrelated
// trace and workload streams from one base seed.
const replicaSeedStride = 0x9E3779B97F4A7C15

// failureSeedSalt decorrelates the failure-detection RNG stream from
// every replica and router stream derived from the same base seed. The
// stream is only instantiated when failures are configured, so unfailed
// runs draw nothing and stay byte-identical.
const failureSeedSalt = 0x5d4e_f2a7_c3b1_8e69

// ReplicaSeed derives replica i's RNG seed from a fleet base seed —
// the convention every fleet consumer (experiments, CLI, benchmarks)
// shares so equal-seed runs stay byte-stable across entry points.
func ReplicaSeed(base uint64, i int) uint64 {
	return base + uint64(i)*replicaSeedStride
}

// Event is one fleet step: a replica's StepEvent tagged with the replica
// index that produced it, a fleet-level admission record tagged
// FleetReplica, or a lifecycle record (Kind != EventStep). The embedded
// StepEvent keeps existing reporting working unchanged on per-replica
// slices of the stream.
type Event struct {
	// Replica indexes the replica that emitted the event, or is
	// FleetReplica for cluster-level admission records.
	Replica int
	// Kind discriminates lifecycle records from compute steps; the zero
	// value (EventStep) is omitted from JSON so step records keep the
	// engine schema plus the Replica tag.
	Kind EventKind `json:",omitempty"`
	engine.StepEvent
}

// fleetRequest tracks one submitted request awaiting dispatch.
type fleetRequest struct {
	req      workload.Request
	deferred bool // a fleet-level PhaseDeferred event has been emitted
	rerouted bool // reclaimed from a dead replica, back for re-dispatch
	handoff  bool // checkpointed export in transit to the decode pool
	// at is the dispatch-queue stamp: the request's arrival for fresh
	// and rerouted submissions, the migration-complete instant for
	// handoffs.
	at float64
	// xferStart stamps when a handoff's interconnect transfer began —
	// the exporting replica's clock at the stage boundary.
	xferStart float64
}

// RouteRecord is one dispatch decision, retained when WithRouteLog is
// configured: which request went to which replica at what fleet time,
// and whether it was a re-route off a dead replica or a
// prefill→decode handoff.
type RouteRecord struct {
	Request  int
	Replica  int
	At       float64
	Rerouted bool
	Handoff  bool
}

// config collects cluster construction state; Options validate eagerly
// and New validates the combination.
type config struct {
	replicas      int
	routerName    string
	router        Router
	build         func(i int) (*engine.Engine, error)
	seed          uint64
	maxConcurrent int
	adm           engine.AdmissionPolicy
	leaseTTL      float64
	warmup        float64
	failures      []Failure
	scale         []ScaleEvent
	routeLog      int
	pools         PoolSpec
	workers       int
}

// Option configures a Cluster. Options validate eagerly — a bad value
// surfaces as an error from New, never as a mid-run surprise.
type Option func(*config) error

// WithReplicas sets the initial fleet size (default 1). n < 1 errors.
func WithReplicas(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("cluster: WithReplicas(%d) must be at least 1", n)
		}
		c.replicas = n
		return nil
	}
}

// WithRouter selects the dispatch policy by registry name (default
// "round-robin"); the router is built at New time from the final
// RouterConfig, so it sees the fleet size, seed and lease TTL the run
// actually uses. Unknown names error from New.
func WithRouter(name string) Option {
	return func(c *config) error {
		if name == "" {
			return fmt.Errorf("cluster: WithRouter with empty name")
		}
		if c.router != nil {
			return fmt.Errorf("cluster: WithRouter(%q) conflicts with WithRouterInstance", name)
		}
		c.routerName = name
		return nil
	}
}

// WithRouterInstance installs a caller-built Router, bypassing the
// registry — the escape hatch for routers configured beyond what a
// RouterConfig carries (custom caps, test doubles). Conflicts with
// WithRouter.
func WithRouterInstance(r Router) Option {
	return func(c *config) error {
		if r == nil {
			return fmt.Errorf("cluster: WithRouterInstance(nil)")
		}
		if c.routerName != "" {
			return fmt.Errorf("cluster: WithRouterInstance conflicts with WithRouter(%q)", c.routerName)
		}
		c.router = r
		return nil
	}
}

// WithBuilder sets the replica factory: build(i) constructs replica i's
// engine (seed it per-replica via ReplicaSeed for byte-stable runs).
// Required — New errors without it. The builder outlives construction:
// scale plans call it for replicas joining mid-run.
func WithBuilder(build func(i int) (*engine.Engine, error)) Option {
	return func(c *config) error {
		if build == nil {
			return fmt.Errorf("cluster: WithBuilder(nil)")
		}
		c.build = build
		return nil
	}
}

// WithSeed sets the fleet base seed randomized routers and the
// failure-detection stream derive from (default 0). It does not seed
// the replicas — the builder owns those, conventionally via
// ReplicaSeed(base, i).
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithMaxConcurrent sets every replica session's concurrency limit
// (engine.WithMaxConcurrent semantics). The default of 1 serves each
// replica's requests strictly in order. n < 1 errors.
func WithMaxConcurrent(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("cluster: WithMaxConcurrent(%d) must be at least 1", n)
		}
		c.maxConcurrent = n
		return nil
	}
}

// WithAdmission installs a fleet-level admission policy consulted at
// dispatch time, before a request reaches any replica — router-level
// shedding over fleet-aggregate TTFT/TBT quantiles. Replica sessions
// keep whatever admission their engines were built with; the two layers
// compose (fleet sheds first, replicas may still defer what gets
// through).
func WithAdmission(p engine.AdmissionPolicy) Option {
	return func(c *config) error {
		c.adm = p
		return nil
	}
}

// WithLeaseTTL sets the lease timeout (simulated seconds) after which a
// stalled replica is declared dead (default DefaultLeaseTTL). The
// actual detection delay per failure is TTL stretched by a jittered
// factor from the failure RNG stream. d <= 0 errors.
func WithLeaseTTL(d float64) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("cluster: WithLeaseTTL(%g) must be positive", d)
		}
		c.leaseTTL = d
		return nil
	}
}

// WithWarmup sets the cache re-warm window (simulated seconds) a
// scale-up replica spends Warming before it serves (default
// DefaultWarmup). d < 0 errors; 0 means new replicas serve immediately.
func WithWarmup(d float64) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("cluster: WithWarmup(%g) must be non-negative", d)
		}
		c.warmup = d
		return nil
	}
}

// WithFailure schedules an injected failure: replica fails at simulated
// time at in the manner of kind. At most one failure per replica; the
// replica must exist at construction (failing scale-up replicas is not
// supported). Detection jitter for stalls draws from a dedicated seeded
// stream, so runs without failures configured stay byte-identical.
func WithFailure(replica int, at float64, kind FailureKind) Option {
	return func(c *config) error {
		if at < 0 {
			return fmt.Errorf("cluster: WithFailure(%d, %g, %v) time must be non-negative", replica, at, kind)
		}
		if kind != FailStall && kind != FailDeath {
			return fmt.Errorf("cluster: WithFailure(%d, %g, %d) unknown kind", replica, at, int(kind))
		}
		c.failures = append(c.failures, Failure{Replica: replica, At: at, Kind: kind})
		return nil
	}
}

// WithScalePlan schedules fleet resizes: each event adds (Delta > 0)
// or drains (Delta < 0) replicas at its stamp. Events may be given in
// any order; New validates the plan never drains the fleet below one
// replica.
func WithScalePlan(plan ...ScaleEvent) Option {
	return func(c *config) error {
		for _, ev := range plan {
			if ev.Delta == 0 {
				return fmt.Errorf("cluster: WithScalePlan event at %g has zero delta", ev.At)
			}
			if ev.At < 0 {
				return fmt.Errorf("cluster: WithScalePlan event %+d@%g time must be non-negative", ev.Delta, ev.At)
			}
		}
		c.scale = append(c.scale, plan...)
		return nil
	}
}

// WithRouteLog retains the last n dispatch decisions as RouteRecords
// (RouteLog returns them oldest-first). Retention is opt-in so
// long-running fleets don't accumulate unbounded history; without it
// the cluster keeps only the per-replica counters Routed reports.
// n < 1 errors.
func WithRouteLog(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("cluster: WithRouteLog(%d) must be at least 1", n)
		}
		c.routeLog = n
		return nil
	}
}

// WithWorkers bounds the horizon-batched parallel execution mode: with
// n > 1, Step advances independent replicas concurrently on up to n
// goroutines between fleet synchronisation points (the next undispatched
// arrival, in-transit handoff completion, or lifecycle stamp) and merges
// the per-replica event runs back into the serial interleave, so the
// emitted Event sequence is byte-identical to the default n = 1 serial
// path at any worker count — the knob trades CPU for wall-clock, never
// output. Disaggregated fleets (WithPools) always run serially: an
// export-mode prefill step creates a handoff whose transfer-completion
// stamp cannot be known before the step runs, so no safe horizon exists
// ahead of it. n < 1 errors.
func WithWorkers(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("cluster: WithWorkers(%d) must be at least 1", n)
		}
		c.workers = n
		return nil
	}
}

// replica is one independent serving stack plus its lifecycle state.
type replica struct {
	eng   *engine.Engine
	ses   *engine.Session
	state ReplicaState
	// role is the replica's disaggregation station (RoleMixed on
	// unpooled fleets and scale-up joins).
	role PoolRole
	// lease is the simulation time of the last heartbeat — renewed on
	// every step the replica runs, frozen when it stalls.
	lease   float64
	stalled bool
	// hasExpert is the engine's IsResident probe bound once at
	// construction — materialising the method value per views() call
	// would allocate a closure per replica per dispatch.
	hasExpert func(layer, index int) bool
	// runEvs/runClocks are the replica's horizon-window scratch: the
	// batched StepEvents and their pre-step clocks (the merge keys)
	// from the latest parallel window. Reused across windows.
	runEvs    []engine.StepEvent
	runClocks []float64
}

// Cluster owns N replica stacks and a router, and advances the fleet in
// lockstep: each Step dispatches every arrival the shared clock has
// reached, then runs one session step on the replica whose clock trails
// the fleet. Equal-seed runs are byte-stable — the router is the only
// coupling between replicas, and every stochastic component draws from
// its own seeded stream.
type Cluster struct {
	replicas      []*replica
	router        Router
	adm           engine.AdmissionPolicy
	build         func(i int) (*engine.Engine, error)
	maxConcurrent int
	leaseTTL      float64
	warmup        float64
	// life schedules lifecycle transitions (failures, detections, scale
	// events, warm-up promotions) on the same deterministic timeline
	// arrivals ride.
	life sim.Queue[lifeAction]
	// pending holds submitted requests not yet dispatched, keyed by
	// arrival stamp on the shared deterministic event queue (push order
	// breaks ties — exactly the old stable sort), so dispatch is
	// order-preserving the way session admission is.
	pending sim.Queue[*fleetRequest]
	// queue holds fleet-level admission and lifecycle records awaiting
	// emission ahead of replica compute — the session's admEvents idiom
	// at fleet scope. qhead is the pop cursor: Step drops the head by
	// advancing it (zeroing the slot) instead of re-slicing, so the
	// drained prefix never pins the backing array; once drained the
	// buffer resets to length zero for reuse. Appends only ever happen
	// on a drained queue (dispatch and lifecycle run only then), so the
	// cursor never wraps.
	queue []Event
	qhead int
	// ttfts and tbts aggregate latency observations across every
	// replica's event stream; fleet admission snapshots quantile over
	// them. Only maintained when a fleet admission policy is installed.
	ttfts, tbts report.Live
	// promptless marks dispatched request IDs with no prefill, so
	// observe can attribute their first decode as a TTFT observation
	// the way the session's decode-only path does.
	promptless map[int]bool
	routed     []int
	routeLog   []RouteRecord
	routeCap   int
	routeHead  int
	steps      int
	shed       int
	deferred   int
	rerouted   int
	lost       int
	// pools is the disaggregation spec (zero when unpooled); the
	// migration counters track completed prefill→decode handoffs and
	// the working-set admission outcome on the receiving replicas.
	pools           PoolSpec
	handoffs        int
	migratedExperts int
	warmAdmitted    int
	// workers caps the goroutines a horizon-batched parallel window
	// fans steppable replicas out to; 1 is the streaming serial path.
	workers int
	// run is the merged event stream of the latest parallel window,
	// drained ahead of queue and dispatch (its events precede anything
	// the fleet does next by construction); runHead is its pop cursor.
	// cands and cursors are per-window scratch.
	run     []Event
	runHead int
	cands   []int
	cursors []int
	// viewBuf is the dispatch-time router snapshot, reused across
	// dispatches — routers must not retain it across Pick calls.
	viewBuf []ReplicaView
}

// New builds a cluster from functional options. WithBuilder is
// required; everything else defaults (1 replica, round-robin router,
// concurrency 1, DefaultLeaseTTL/DefaultWarmup, no failures, no scale
// plan, no route log). Invalid or conflicting options error.
func New(opts ...Option) (*Cluster, error) {
	cfg := config{
		replicas:      1,
		maxConcurrent: 1,
		leaseTTL:      DefaultLeaseTTL,
		warmup:        DefaultWarmup,
		workers:       1,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.build == nil {
		return nil, fmt.Errorf("cluster: WithBuilder is required")
	}
	if cfg.pools.Pooled() && cfg.pools.Prefill+cfg.pools.Decode > cfg.replicas {
		return nil, fmt.Errorf("cluster: pool spec %v needs %d replicas, fleet has %d",
			cfg.pools, cfg.pools.Prefill+cfg.pools.Decode, cfg.replicas)
	}
	failed := map[int]bool{}
	for _, f := range cfg.failures {
		if f.Replica < 0 || f.Replica >= cfg.replicas {
			return nil, fmt.Errorf("cluster: WithFailure replica %d out of range [0,%d)", f.Replica, cfg.replicas)
		}
		if failed[f.Replica] {
			return nil, fmt.Errorf("cluster: WithFailure replica %d configured twice", f.Replica)
		}
		failed[f.Replica] = true
	}
	if len(cfg.scale) > 0 {
		// The plan must never drain the fleet below one replica at any
		// point of its time-ordered application.
		ordered := append([]ScaleEvent(nil), cfg.scale...)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
		live := cfg.replicas
		for _, ev := range ordered {
			live += ev.Delta
			if live < 1 {
				return nil, fmt.Errorf("cluster: scale plan drains fleet to %d replicas at t=%g", live, ev.At)
			}
		}
	}
	router := cfg.router
	if router == nil {
		name := cfg.routerName
		if name == "" {
			name = "round-robin"
		}
		var err error
		router, err = NewRouter(name, RouterConfig{
			Replicas: cfg.replicas,
			Seed:     cfg.seed,
			LeaseTTL: cfg.leaseTTL,
		})
		if err != nil {
			return nil, err
		}
	}
	c := &Cluster{
		router:        router,
		adm:           cfg.adm,
		build:         cfg.build,
		maxConcurrent: cfg.maxConcurrent,
		leaseTTL:      cfg.leaseTTL,
		warmup:        cfg.warmup,
		promptless:    map[int]bool{},
		routed:        make([]int, cfg.replicas),
		routeCap:      cfg.routeLog,
		pools:         cfg.pools,
		workers:       cfg.workers,
	}
	if cfg.routeLog > 0 {
		c.routeLog = make([]RouteRecord, 0, cfg.routeLog)
	}
	for i := 0; i < cfg.replicas; i++ {
		eng, err := cfg.build(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: building replica %d: %w", i, err)
		}
		role := cfg.pools.Role(i)
		if cfg.pools.Pooled() && !eng.Platform().HasInterconnect() {
			return nil, fmt.Errorf("cluster: pool spec %v prices migrations over Platform.Interconnect, but replica %d's platform %q has none",
				cfg.pools, i, eng.Platform().Name)
		}
		sesOpts := []engine.SessionOption{engine.WithMaxConcurrent(cfg.maxConcurrent)}
		if role == RolePrefill {
			sesOpts = append(sesOpts, engine.WithPrefillExport())
		}
		c.replicas = append(c.replicas, &replica{
			eng:       eng,
			ses:       eng.NewSession(sesOpts...),
			state:     StateServing,
			role:      role,
			hasExpert: eng.IsResident,
		})
	}
	// Failure schedule: the lifeFail stamps are configured; stall
	// detection latency stretches the lease TTL by a jittered factor
	// drawn from a dedicated stream — instantiated only here, so runs
	// without failures never draw and stay byte-identical.
	if len(cfg.failures) > 0 {
		rng := stats.NewRNG(cfg.seed ^ failureSeedSalt)
		for _, f := range cfg.failures {
			c.life.Push(f.At, lifeAction{kind: lifeFail, replica: f.Replica, fail: f.Kind})
			if f.Kind == FailStall {
				detect := f.At + cfg.leaseTTL*(1+0.25*rng.Float64())
				c.life.Push(detect, lifeAction{kind: lifeDetect, replica: f.Replica})
			}
		}
	}
	for _, ev := range cfg.scale {
		c.life.Push(ev.At, lifeAction{kind: lifeScale, delta: ev.Delta})
	}
	return c, nil
}

// Submit enqueues requests for dispatch. Zero-work requests are dropped
// the way Session.Submit drops them; the rest join the arrival-keyed
// dispatch queue (FIFO among equal stamps, so equal stamps keep
// submission order).
func (c *Cluster) Submit(reqs ...workload.Request) {
	for _, r := range reqs {
		if r.PromptTokens <= 0 && r.DecodeTokens <= 0 {
			continue
		}
		c.pending.Push(r.Arrival, &fleetRequest{req: r, at: r.Arrival})
	}
}

// Pending reports how many requests have not yet finished or been
// abandoned: undispatched arrivals plus every live replica's in-flight
// and queued count (a dead replica's residual in-flight requests are
// lost, not pending).
func (c *Cluster) Pending() int {
	n := c.pending.Len()
	for _, r := range c.replicas {
		if r.state == StateDead {
			continue
		}
		n += r.ses.Pending()
	}
	return n
}

// Replicas reports the fleet size, dead replicas included (indices are
// stable for the whole run).
func (c *Cluster) Replicas() int { return len(c.replicas) }

// Session returns replica i's session, for per-replica inspection.
func (c *Cluster) Session(i int) *engine.Session { return c.replicas[i].ses }

// Engine returns replica i's engine.
func (c *Cluster) Engine(i int) *engine.Engine { return c.replicas[i].eng }

// State reports replica i's lifecycle state.
func (c *Cluster) State(i int) ReplicaState { return c.replicas[i].state }

// Routed reports how many requests the router dispatched to each
// replica (fleet-level sheds excluded; re-routes count at every replica
// that received the request).
func (c *Cluster) Routed() []int { return append([]int(nil), c.routed...) }

// RouteLog returns the retained dispatch decisions oldest-first — empty
// unless WithRouteLog opted into retention.
func (c *Cluster) RouteLog() []RouteRecord {
	if c.routeCap == 0 || len(c.routeLog) == 0 {
		return nil
	}
	out := make([]RouteRecord, 0, len(c.routeLog))
	out = append(out, c.routeLog[c.routeHead:]...)
	out = append(out, c.routeLog[:c.routeHead]...)
	return out
}

// Steps reports how many events the cluster has emitted, fleet-level
// admission and lifecycle records included.
func (c *Cluster) Steps() int { return c.steps }

// Shed reports how many requests fleet-level admission dropped (replica
// sessions count their own sheds separately).
func (c *Cluster) Shed() int { return c.shed }

// Deferred reports how many fleet-level deferral verdicts admission
// returned (one request deferred across n dispatch passes counts n
// times; its PhaseDeferred event is emitted once).
func (c *Cluster) Deferred() int { return c.deferred }

// Rerouted reports how many queued requests were reclaimed from dead
// replicas and re-entered the dispatch queue.
func (c *Cluster) Rerouted() int { return c.rerouted }

// Lost reports how many in-flight requests died with their replica —
// work that had started compute and could not be reclaimed.
func (c *Cluster) Lost() int { return c.lost }

// RouterName reports the dispatch policy steering this cluster.
func (c *Cluster) RouterName() string { return c.router.Name() }

// Pools reports the fleet's disaggregation spec (the zero spec when the
// fleet is unpooled).
func (c *Cluster) Pools() PoolSpec { return c.pools }

// Role reports replica i's pool role.
func (c *Cluster) Role(i int) PoolRole { return c.replicas[i].role }

// Handoffs reports how many prefill→decode migrations completed —
// checkpointed requests that crossed the interconnect and were adopted
// by a decode-pool replica.
func (c *Cluster) Handoffs() int { return c.handoffs }

// MigratedExperts reports the aggregate working-set migration outcome:
// total expert references carried by completed handoffs, and how many
// of them landed warm (already resident or admitted) on the receiving
// replica's cache.
func (c *Cluster) MigratedExperts() (warm, total int) {
	return c.warmAdmitted, c.migratedExperts
}

// steppable reports whether replica i can run a compute step: alive,
// not stalled, with work queued.
func (c *Cluster) steppable(i int) bool {
	r := c.replicas[i]
	return r.state != StateDead && !r.stalled && r.ses.Pending() > 0
}

// frontier reports the minimum simulation clock across steppable
// replicas — the instant the fleet's next compute step runs at, and
// therefore the latest arrival stamp dispatch may observe without
// leaking the future. Stalled and dead replicas are excluded: a frozen
// clock must not freeze the fleet's horizon. ok is false when nothing
// is steppable.
func (c *Cluster) frontier() (at float64, ok bool) {
	for i, r := range c.replicas {
		if !c.steppable(i) {
			continue
		}
		if clk := r.eng.Clock(); !ok || clk < at {
			at, ok = clk, true
		}
	}
	return at, ok
}

// eligible reports whether a replica of the given role may receive this
// request under the pool spec: fresh prompt-bearing arrivals belong to
// the prefill (or mixed) pool, while checkpointed handoffs and
// prompt-less decode-only arrivals belong to the decode (or mixed)
// pool. Unpooled fleets accept everything everywhere — the historical
// behaviour.
func (c *Cluster) eligible(fr *fleetRequest, role PoolRole) bool {
	if !c.pools.Pooled() {
		return true
	}
	if fr.handoff || fr.req.PromptTokens <= 0 {
		return role != RolePrefill
	}
	return role != RoleDecode
}

// views assembles the router's snapshot of the dispatch-eligible
// replicas: every Serving replica's queue depth, clock, lease freshness
// at fleet time now, and the predicted-expert residency the affinity
// router scores. Under a pool spec the snapshot holds only the pool the
// head request belongs to. A silently stalled replica still appears —
// nominally Serving, its growing LeaseAge the only tell — which is
// exactly the trap lease-aware routers exist to dodge. The returned
// slice is a per-cluster scratch buffer reused across dispatches.
func (c *Cluster) views(now float64, head *fleetRequest) []ReplicaView {
	views := c.viewBuf[:0]
	for i, r := range c.replicas {
		if r.state != StateServing || !c.eligible(head, r.role) {
			continue
		}
		res, pred := r.eng.PredictedResidency()
		age := 0.0
		if r.stalled && now > r.lease {
			age = now - r.lease
		}
		views = append(views, ReplicaView{
			Index:     i,
			State:     r.state,
			Pending:   r.ses.Pending(),
			Clock:     r.eng.Clock(),
			LeaseAge:  age,
			Resident:  res,
			Predicted: pred,
			HasExpert: r.hasExpert,
		})
	}
	c.viewBuf = views
	return views
}

// snapshot assembles the fleet-aggregate view a fleet admission
// decision sees at dispatch time now.
func (c *Cluster) snapshot(now float64) engine.SLOSnapshot {
	active, queued := 0, 0
	for _, r := range c.replicas {
		if r.state == StateDead {
			continue
		}
		active += r.ses.Pending()
	}
	c.pending.Scan(func(at float64, _ *fleetRequest) {
		if at <= now {
			queued++
		}
	})
	return engine.SLOSnapshot{
		Now:    now,
		TTFT:   c.ttfts.Stats(),
		TBT:    c.tbts.Stats(),
		Active: active,
		Queued: queued,
	}
}

// record retains one dispatch decision when WithRouteLog opted in.
func (c *Cluster) record(rec RouteRecord) {
	if c.routeCap == 0 {
		return
	}
	if len(c.routeLog) < c.routeCap {
		c.routeLog = append(c.routeLog, rec)
		return
	}
	c.routeLog[c.routeHead] = rec
	c.routeHead = (c.routeHead + 1) % c.routeCap
}

// dispatch moves every observable arrival through fleet admission and
// the router into a replica session. The horizon — the latest arrival
// stamp dispatch may act on — is the steppable-replica clock frontier,
// or the head arrival itself when the fleet is idle (the clock is about
// to jump there, the session idle-gap rule lifted to the fleet). The
// horizon only ratchets forward within one pass: dispatching to a
// stale-clocked idle replica lowers the raw frontier, but an arrival
// observable at a time stays observable. Lifecycle actions the horizon
// has reached fire before routing, so dispatch never consults a fleet
// shape the timeline has already changed. Dispatch is order-preserving —
// a deferred head blocks everything behind it, unless the whole fleet
// is idle, in which case it is promoted the way an empty session
// promotes (waiting cannot improve quantiles no one is producing).
func (c *Cluster) dispatch() {
	horizon := math.Inf(-1)
	for {
		_, head, more := c.pending.PeekMin()
		if !more {
			return
		}
		front, busy := c.frontier()
		switch {
		case busy && front > horizon:
			horizon = front
		case !busy && head.at > horizon:
			horizon = head.at
		}
		if c.tickLife(horizon) {
			// The fleet changed shape (stall, death, scale); re-derive
			// the frontier and the head before routing.
			continue
		}
		if head.at > horizon {
			return
		}
		if c.adm != nil && !head.rerouted && !head.handoff {
			// Re-routed requests were admitted once already, and so was
			// every handoff (on its way into the prefill pool); the
			// fleet door does not get a second chance to shed them.
			switch d := c.adm.Decide(head.req, c.snapshot(horizon)); d {
			case engine.AdmissionShed:
				c.pending.PopMin()
				c.shed++
				c.queue = append(c.queue, Event{Replica: FleetReplica, StepEvent: engine.StepEvent{
					Request: head.req.ID, Phase: engine.PhaseShed,
					Start: horizon, End: horizon,
					Deadline: head.req.Deadline, Arrival: head.req.Arrival,
					Class: head.req.Class, Done: true,
				}})
				continue
			case engine.AdmissionDefer:
				c.deferred++
				if busy {
					if !head.deferred {
						head.deferred = true
						c.queue = append(c.queue, Event{Replica: FleetReplica, StepEvent: engine.StepEvent{
							Request: head.req.ID, Phase: engine.PhaseDeferred,
							Start: horizon, End: horizon,
							Deadline: head.req.Deadline, Arrival: head.req.Arrival,
							Class: head.req.Class,
						}})
					}
					return
				}
				// Idle-fleet promotion: the verdict counts, the wait is
				// skipped, exactly as in Session.admit.
			}
		}
		views := c.views(horizon, head)
		if len(views) == 0 {
			// Nothing is eligible (everything warming, draining or
			// dead). Jump the timeline to the next lifecycle action —
			// a warm-up promotion or scale-up may restore eligibility;
			// if the timeline is exhausted the fleet is stranded and
			// the remaining arrivals can never be served.
			if at, a, ok := c.life.PopMin(); ok {
				c.applyLife(a, at)
				if at > horizon {
					horizon = at
				}
				continue
			}
			return
		}
		pick := c.router.Pick(head.req, views)
		valid := false
		for _, v := range views {
			if v.Index == pick {
				valid = true
				break
			}
		}
		if !valid {
			panic(fmt.Sprintf("cluster: router %q picked replica %d outside the %d eligible views",
				c.router.Name(), pick, len(views)))
		}
		c.pending.PopMin()
		c.routed[pick]++
		c.record(RouteRecord{Request: head.req.ID, Replica: pick, At: horizon, Rerouted: head.rerouted, Handoff: head.handoff})
		if head.handoff {
			c.adoptHandoff(pick, head)
			continue
		}
		if c.adm != nil && head.req.PromptTokens <= 0 {
			// observe is the map's only reader, and it bails without a
			// fleet admission policy — skip the write too.
			c.promptless[head.req.ID] = true
		}
		c.replicas[pick].ses.Submit(head.req)
	}
}

// adoptHandoff lands a migrated request on decode-pool replica pick:
// the replica's cache admits the checkpoint's expert working set (warm,
// through the ordinary placement path, so attribution stays conserved),
// the session adopts the request decode-only via SubmitPrefilled, and a
// Handoff event records the migration — Start/End span the interconnect
// transfer, Tokens counts the working-set references carried, Hits how
// many of them landed warm. The event's Replica is the destination; the
// source is the replica whose Migrated prefill event carries the same
// request ID.
func (c *Cluster) adoptHandoff(pick int, fr *fleetRequest) {
	ck := fr.req.Checkpoint
	r := c.replicas[pick]
	warm := r.eng.AdoptWorkingSet(ck.Experts)
	c.handoffs++
	c.migratedExperts += len(ck.Experts)
	c.warmAdmitted += warm
	c.queue = append(c.queue, Event{Replica: pick, Kind: EventHandoff, StepEvent: engine.StepEvent{
		Request: fr.req.ID,
		Start:   fr.xferStart, End: ck.ReadyAt,
		Latency: ck.ReadyAt - fr.xferStart,
		Tokens:  len(ck.Experts), Hits: int64(warm),
		Deadline: fr.req.Deadline, Arrival: fr.req.Arrival, Class: fr.req.Class,
	}})
	r.ses.SubmitPrefilled(fr.req)
}

// exportPrefilled drains replica i's just-checkpointed requests onto the
// migration timeline (a no-op off the prefill pool): each pays the
// platform interconnect's transfer time for its checkpoint bytes and
// re-enters the dispatch queue at the completion stamp, where the
// decode pool's router places it.
func (c *Cluster) exportPrefilled(i int) {
	r := c.replicas[i]
	if r.role != RolePrefill {
		return
	}
	for _, req := range r.ses.ExportPrefilled() {
		at := r.eng.Clock()
		xfer := r.eng.Platform().Interconnect.TransferTime(req.Checkpoint.MigrationBytes())
		req.Checkpoint.ReadyAt = at + xfer
		c.pending.Push(req.Checkpoint.ReadyAt, &fleetRequest{
			req: req, handoff: true, at: req.Checkpoint.ReadyAt, xferStart: at,
		})
	}
}

// observe folds a replica event into the fleet-aggregate latency
// accumulators fleet admission quantiles over — queue-inclusive TTFT on
// prefills (and on a prompt-less request's first arrival-stamped
// decode), raw per-step TBT on decodes — mirroring what each session
// feeds its own admission.
func (c *Cluster) observe(ev engine.StepEvent) {
	if c.adm == nil {
		return
	}
	switch ev.Phase {
	case engine.PhasePrefill:
		c.ttfts.Add(ev.Queued + ev.Latency)
	case engine.PhaseDecode:
		c.tbts.Add(ev.Latency)
		if c.promptless[ev.Request] && ev.Index == 0 && ev.Arrival > 0 {
			c.ttfts.Add(ev.Queued + ev.Latency)
		}
	}
}

// Step advances the fleet by one event: a queued fleet admission or
// lifecycle record if one is waiting, else one session step on the
// steppable replica whose clock trails the fleet (ties to the lowest
// index — the deterministic lockstep order), after firing any lifecycle
// action that clock has reached. When nothing is steppable the timeline
// jumps to the next lifecycle action (a stalled fleet waits for its
// doctor). ok is false when every submitted request has finished, been
// shed, or been stranded on a fleet with no serving capacity left and
// no lifecycle action that could restore it.
func (c *Cluster) Step() (ev Event, ok bool) {
	for {
		// A merged parallel window drains first: its events precede any
		// later dispatch or lifecycle record by construction (every one
		// carries a pre-horizon stamp).
		if c.runHead < len(c.run) {
			ev = c.run[c.runHead]
			c.run[c.runHead] = Event{}
			c.runHead++
			if c.runHead == len(c.run) {
				c.run, c.runHead = c.run[:0], 0
			}
			c.steps++
			return ev, true
		}
		if c.qhead == len(c.queue) {
			c.dispatch()
		}
		if c.qhead < len(c.queue) {
			ev = c.queue[c.qhead]
			c.queue[c.qhead] = Event{}
			c.qhead++
			if c.qhead == len(c.queue) {
				c.queue, c.qhead = c.queue[:0], 0
			}
			c.steps++
			return ev, true
		}
		if c.workers > 1 && !c.pools.Pooled() && c.advanceWindow() {
			continue
		}
		pick := -1
		for i := range c.replicas {
			if !c.steppable(i) {
				continue
			}
			if pick < 0 || c.replicas[i].eng.Clock() < c.replicas[pick].eng.Clock() {
				pick = i
			}
		}
		if pick >= 0 {
			now := c.replicas[pick].eng.Clock()
			if at, _, peek := c.life.PeekMin(); peek && at <= now {
				// The lockstep clock has reached a lifecycle stamp:
				// apply it before compute — the step about to run may
				// be on the very replica the action stalls or kills.
				c.tickLife(now)
				continue
			}
			r := c.replicas[pick]
			sev, sok := r.ses.Step()
			if !sok {
				// Pending() > 0 guarantees the session has a step to run; a
				// refusal is an accounting bug, not a drained fleet.
				panic(fmt.Sprintf("cluster: replica %d session refused to step with %d pending",
					pick, r.ses.Pending()))
			}
			r.lease = r.eng.Clock()
			c.observe(sev)
			c.exportPrefilled(pick)
			c.retireDrained(pick)
			c.steps++
			return Event{Replica: pick, StepEvent: sev}, true
		}
		// Nothing steppable: a stalled replica holding the only work
		// waits for its detection, warming replicas for their promotion.
		// Jump the timeline to the next lifecycle action.
		if at, a, more := c.life.PopMin(); more {
			c.applyLife(a, at)
			continue
		}
		return Event{}, false
	}
}

// Run drains the cluster, invoking handler (when non-nil) on every
// event, and returns the number of events emitted.
func (c *Cluster) Run(handler func(Event)) int {
	n := 0
	for {
		ev, ok := c.Step()
		if !ok {
			return n
		}
		if handler != nil {
			handler(ev)
		}
		n++
	}
}
