package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
)

func TestPoolSpecRoles(t *testing.T) {
	spec := PoolSpec{Prefill: 1, Decode: 2}
	wantRoles := []PoolRole{RolePrefill, RoleDecode, RoleDecode, RoleMixed}
	for i, want := range wantRoles {
		if got := spec.Role(i); got != want {
			t.Errorf("Role(%d) = %v, want %v", i, got, want)
		}
	}
	if !spec.Pooled() {
		t.Error("1:2 spec reports unpooled")
	}
	if got := spec.String(); got != "1:2" {
		t.Errorf("String() = %q, want \"1:2\"", got)
	}
	var zero PoolSpec
	if zero.Pooled() {
		t.Error("zero spec reports pooled")
	}
	if got := zero.Role(0); got != RoleMixed {
		t.Errorf("zero spec Role(0) = %v, want mixed", got)
	}
	if got := zero.String(); got != "mixed" {
		t.Errorf("zero spec String() = %q, want \"mixed\"", got)
	}
}

func TestParsePools(t *testing.T) {
	good := map[string]PoolSpec{
		"":      {},
		"  ":    {},
		"1:2":   {Prefill: 1, Decode: 2},
		"2:1":   {Prefill: 2, Decode: 1},
		" 3:5 ": {Prefill: 3, Decode: 5},
	}
	for in, want := range good {
		got, err := ParsePools(in)
		if err != nil {
			t.Errorf("ParsePools(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParsePools(%q) = %+v, want %+v", in, got, want)
		}
	}
	bad := []string{"1", "1:2:3", "x:2", "1:y", "-1:2", "1:-2", "0:0", "0:2", "1:0"}
	for _, in := range bad {
		if _, err := ParsePools(in); err == nil {
			t.Errorf("ParsePools(%q) succeeded, want error", in)
		}
	}
}

// TestClusterRejectsBadPools covers the pooling arm of constructor
// validation: lopsided or oversized specs, and a pooled fleet whose
// platform models no replica-to-replica interconnect.
func TestClusterRejectsBadPools(t *testing.T) {
	build := buildReplica(t, 810)
	// A platform identical to the default but with no Interconnect —
	// disaggregation has no link to price migrations over.
	linkless := func(i int) (*engine.Engine, error) {
		p := hw.A6000Platform()
		p.Interconnect = hw.LinkModel{}
		return engine.New(moe.DeepSeek(), p, engine.HybriMoEFramework(),
			engine.WithCacheRatio(0.25), engine.WithSeed(ReplicaSeed(810, i)))
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"negative prefill pool", []Option{
			WithReplicas(3), WithBuilder(build), WithPools(PoolSpec{Prefill: -1, Decode: 2})}},
		{"prefill without decode", []Option{
			WithReplicas(3), WithBuilder(build), WithPools(PoolSpec{Prefill: 3})}},
		{"decode without prefill", []Option{
			WithReplicas(3), WithBuilder(build), WithPools(PoolSpec{Decode: 3})}},
		{"pools exceed fleet", []Option{
			WithReplicas(2), WithBuilder(build), WithPools(PoolSpec{Prefill: 1, Decode: 2})}},
		{"no interconnect", []Option{
			WithReplicas(3), WithBuilder(linkless), WithPools(PoolSpec{Prefill: 1, Decode: 2})}},
	}
	for _, tc := range cases {
		if _, err := New(tc.opts...); err == nil {
			t.Errorf("%s: New succeeded, want error", tc.name)
		}
	}
	// The zero spec is explicitly a no-op, not an error.
	if _, err := New(WithReplicas(2), WithBuilder(build), WithPools(PoolSpec{})); err != nil {
		t.Errorf("zero pool spec errored: %v", err)
	}
}

// TestClusterDisaggLifecycle drives a 1:2 disaggregated fleet end to end
// and checks the stage-split conservation law: every prompt-bearing
// request prefills exactly once on the prefill replica (its prefill
// event marked Migrated, not Done), crosses the interconnect as exactly
// one Handoff, and completes on a decode replica. The migrated working
// set must land warm — the acceptance pin that the decode replica's
// cache actually admitted the checkpoint's experts.
func TestClusterDisaggLifecycle(t *testing.T) {
	const seed, offered = 820, 12
	c, err := New(
		WithReplicas(3),
		WithRouter("affinity"),
		WithSeed(seed),
		WithBuilder(buildReplica(t, seed)),
		WithMaxConcurrent(2),
		WithPools(PoolSpec{Prefill: 1, Decode: 2}),
		WithRouteLog(4*offered))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Pools(); got != (PoolSpec{Prefill: 1, Decode: 2}) {
		t.Fatalf("Pools() = %+v", got)
	}
	for i, want := range []PoolRole{RolePrefill, RoleDecode, RoleDecode} {
		if got := c.Role(i); got != want {
			t.Fatalf("Role(%d) = %v, want %v", i, got, want)
		}
	}
	c.Submit(burstRequests(seed, offered, 10)...)

	prefills := map[int]int{}
	handoffs := map[int]int{}
	done := map[int]int{}
	c.Run(func(ev Event) {
		switch {
		case ev.Kind == EventHandoff:
			if ev.Replica == 0 {
				t.Fatalf("handoff landed on the prefill replica: %+v", ev)
			}
			if ev.Latency <= 0 || ev.End <= ev.Start {
				t.Fatalf("handoff with no transfer window: %+v", ev)
			}
			handoffs[ev.Request]++
		case ev.Phase == engine.PhasePrefill:
			if ev.Replica != 0 {
				t.Fatalf("prefill ran on decode replica %d: %+v", ev.Replica, ev)
			}
			if !ev.Migrated {
				t.Fatalf("prefill-pool event not marked Migrated: %+v", ev)
			}
			if ev.Done {
				t.Fatalf("migrated prefill marked Done: %+v", ev)
			}
			prefills[ev.Request]++
		case ev.Phase == engine.PhaseDecode:
			if ev.Replica == 0 {
				t.Fatalf("decode ran on the prefill replica: %+v", ev)
			}
			if ev.Done {
				done[ev.Request]++
			}
		}
	})
	if len(prefills) != offered || len(handoffs) != offered || len(done) != offered {
		t.Fatalf("conservation broke: %d prefilled, %d handed off, %d done of %d offered",
			len(prefills), len(handoffs), len(done), offered)
	}
	for id, n := range handoffs {
		if n != 1 || prefills[id] != 1 || done[id] != 1 {
			t.Fatalf("request %d: %d prefills, %d handoffs, %d dones", id, prefills[id], n, done[id])
		}
	}
	if got := c.Handoffs(); got != offered {
		t.Fatalf("Handoffs() = %d, want %d", got, offered)
	}
	warm, total := c.MigratedExperts()
	if total <= 0 {
		t.Fatal("handoffs carried no expert working set")
	}
	if warm <= 0 {
		t.Fatalf("no migrated expert landed warm (%d carried)", total)
	}
	if warm > total {
		t.Fatalf("warm %d exceeds carried %d", warm, total)
	}
	handoffRecs := 0
	for _, rec := range c.RouteLog() {
		if rec.Handoff {
			if rec.Replica == 0 {
				t.Fatalf("handoff route record on prefill replica: %+v", rec)
			}
			handoffRecs++
		} else if rec.Replica != 0 {
			t.Fatalf("fresh arrival routed to decode replica: %+v", rec)
		}
	}
	if handoffRecs != offered {
		t.Fatalf("route log holds %d handoff records, want %d", handoffRecs, offered)
	}
	if c.Pending() != 0 {
		t.Fatalf("%d pending after drain", c.Pending())
	}
}

// TestClusterDisaggKillStripsCheckpoints kills a decode replica mid-run
// and checks the re-prefill contract: requests reclaimed with a
// checkpoint lose it (their KV state died with the box) and re-enter
// the dispatch queue as fresh prompt-bearing arrivals, so the fleet
// still completes every surviving request exactly once.
func TestClusterDisaggKillStripsCheckpoints(t *testing.T) {
	const seed, offered = 830, 16
	c, err := New(
		WithReplicas(3),
		WithRouter("round-robin"),
		WithSeed(seed),
		WithBuilder(buildReplica(t, seed)),
		WithPools(PoolSpec{Prefill: 1, Decode: 2}),
		WithFailure(1, 0.15, FailDeath))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(seed, offered, 14)...)
	done := map[int]int{}
	rerouted := 0
	c.Run(func(ev Event) {
		if ev.Kind == EventRerouted {
			rerouted++
		}
		if ev.Kind == EventStep && ev.Done && ev.Phase == engine.PhaseDecode {
			done[ev.Request]++
		}
	})
	for id, n := range done {
		if n != 1 {
			t.Fatalf("request %d emitted %d Done events", id, n)
		}
	}
	if got := len(done) + c.Lost(); got != offered {
		t.Fatalf("done %d + lost %d ≠ offered %d (rerouted %d)", len(done), c.Lost(), offered, rerouted)
	}
	if c.Pending() != 0 {
		t.Fatalf("%d pending after drain", c.Pending())
	}
}

// TestGoldenDisaggHandoffStream pins the disaggregated event schema
// byte-for-byte: a 1:2 affinity fleet's full stream — Migrated prefill
// events on the prefill replica, first-class Handoff records spanning
// each interconnect transfer, adopted decodes on the decode pool —
// against the committed golden. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/cluster -run TestGoldenDisaggHandoffStream
func TestGoldenDisaggHandoffStream(t *testing.T) {
	const seed = 840
	c, err := New(
		WithReplicas(3),
		WithRouter("affinity"),
		WithSeed(seed),
		WithBuilder(buildReplica(t, seed)),
		WithMaxConcurrent(2),
		WithPools(PoolSpec{Prefill: 1, Decode: 2}))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(seed, 10, 12)...)
	var events []Event
	c.Run(func(ev Event) { events = append(events, ev) })
	migrated, handoffs := 0, 0
	for _, ev := range events {
		if ev.Migrated {
			migrated++
		}
		if ev.Kind == EventHandoff {
			handoffs++
		}
	}
	if migrated == 0 || handoffs == 0 {
		t.Fatalf("scenario pinned %d Migrated and %d Handoff events; the golden needs both", migrated, handoffs)
	}

	var buf bytes.Buffer
	if err := WriteEventLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_disagg-handoff.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events, %d handoffs)", path, len(events), handoffs)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if diff := diffJSONL(want, buf.Bytes()); diff != "" {
		t.Fatalf("event stream drifted from %s:\n%s", path, diff)
	}
}
