package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hybrimoe/internal/engine"
)

// Horizon-batched parallel execution.
//
// Between fleet synchronisation points, replicas are independent: the
// only couplings are dispatch (routing new work in), lifecycle actions
// (stalls, deaths, scale events on c.life), and handoff completions
// (which sit in c.pending at their ReadyAt stamps). So once dispatch
// has drained every observable arrival and the emission queue is empty,
// the fleet may advance every steppable replica concurrently up to the
// safe horizon
//
//	h = min(next lifecycle stamp, next pending stamp)
//
// without any replica observing state another replica could change.
// Each candidate batches its steps via Session.StepUntilClocked; the
// per-replica runs are then merged back into one stream ordered by
// (pre-step clock, replica index) — exactly the serial lockstep pick
// order (min-clock replica, ties to the lowest index) — so the emitted
// Event sequence is byte-identical to the serial path at any worker
// count.
//
// Why the merge is exact: while any candidate's clock trails h, a
// serial dispatch pass is a no-op (it returns at head.at > horizon
// before consulting admission, so the deferred counter can't drift),
// tickLife fires nothing (every lifecycle stamp is ≥ h), no replica
// gains or loses work, and a session's pre-step clocks are
// non-decreasing — so replaying the runs in (clock, index) order
// reproduces the serial pick sequence step for step. Draining replicas
// that empty mid-window retire immediately after their final event,
// where the serial path's queued ReplicaDead record would pop.
//
// Disaggregated fleets are excluded (Step gates on !c.pools.Pooled()):
// an export-mode prefill step schedules a handoff at a transfer-priced
// ReadyAt that cannot be known before the step runs, so no horizon is
// safe ahead of it.

// advanceWindow runs one parallel window: it collects the steppable
// replicas whose clocks trail the safe horizon, fans them out to at
// most c.workers goroutines, and merges the batched runs into c.run
// for Step to drain. It reports false — leaving the cluster untouched —
// when no replica can advance (the serial path then applies lifecycle
// actions or declares the fleet done).
func (c *Cluster) advanceWindow() bool {
	h := math.Inf(1)
	if at, _, ok := c.life.PeekMin(); ok {
		h = at
	}
	if at, _, ok := c.pending.PeekMin(); ok && at < h {
		h = at
	}
	cands := c.cands[:0]
	for i := range c.replicas {
		if c.steppable(i) && c.replicas[i].eng.Clock() < h {
			cands = append(cands, i)
		}
	}
	c.cands = cands
	if len(cands) == 0 {
		return false
	}
	k := c.workers
	if k > len(cands) {
		k = len(cands)
	}
	if k <= 1 {
		for _, i := range cands {
			c.runReplica(i, h)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(k)
		for w := 0; w < k; w++ {
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(cands) {
						return
					}
					c.runReplica(cands[n], h)
				}
			}()
		}
		wg.Wait()
	}
	c.mergeWindow(cands)
	return true
}

// runReplica batches replica i's steps until its clock reaches the
// horizon, recording each step's pre-step clock as its merge key. A
// session that refuses to step with work pending is an accounting bug,
// exactly as on the serial path.
func (c *Cluster) runReplica(i int, h float64) {
	r := c.replicas[i]
	r.runEvs, r.runClocks = r.ses.StepUntilClocked(h, r.runEvs[:0], r.runClocks[:0])
	if r.eng.Clock() < h && r.ses.Pending() > 0 {
		panic(fmt.Sprintf("cluster: replica %d session refused to step with %d pending",
			i, r.ses.Pending()))
	}
}

// mergeWindow interleaves the candidates' batched runs into c.run in
// (pre-step clock, replica index) order — the serial pick order —
// folding each step into the fleet-aggregate latency accumulators as it
// lands, renewing leases when a replica's run exhausts, and retiring
// draining replicas that emptied (their ReplicaDead record lands
// immediately after their final step, where the serial queue pop would
// emit it). The candidate list is ascending, so a strict < scan picks
// the lowest index on clock ties.
func (c *Cluster) mergeWindow(cands []int) {
	cursors := c.cursors[:0]
	total := 0
	for _, i := range cands {
		cursors = append(cursors, 0)
		total += len(c.replicas[i].runEvs)
	}
	c.cursors = cursors
	c.run, c.runHead = c.run[:0], 0
	for n := 0; n < total; n++ {
		best, bi := -1, -1
		var bestKey float64
		for ci, idx := range cands {
			r := c.replicas[idx]
			cur := cursors[ci]
			if cur == len(r.runEvs) {
				continue
			}
			if key := r.runClocks[cur]; best < 0 || key < bestKey {
				best, bi, bestKey = ci, idx, key
			}
		}
		r := c.replicas[bi]
		ev := r.runEvs[cursors[best]]
		cursors[best]++
		c.observe(ev)
		c.run = append(c.run, Event{Replica: bi, StepEvent: ev})
		if cursors[best] == len(r.runEvs) {
			r.lease = r.eng.Clock()
			if r.state == StateDraining && r.ses.Pending() == 0 {
				r.state = StateDead
				c.run = append(c.run, Event{Replica: bi, Kind: EventReplicaDead, StepEvent: engine.StepEvent{
					Start: r.eng.Clock(), End: r.eng.Clock(),
				}})
			}
		}
	}
}
