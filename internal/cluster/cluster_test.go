package cluster

import (
	"reflect"
	"testing"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/workload"
)

// buildReplica returns an engine builder deriving each replica's seed
// from base via ReplicaSeed, the convention fleet consumers share.
func buildReplica(t *testing.T, base uint64, extra ...engine.Option) func(i int) (*engine.Engine, error) {
	t.Helper()
	return func(i int) (*engine.Engine, error) {
		opts := append([]engine.Option{
			engine.WithCacheRatio(0.25),
			engine.WithSeed(ReplicaSeed(base, i)),
		}, extra...)
		return engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(), opts...)
	}
}

// burstRequests draws a deterministic open-loop Poisson burst; a
// non-positive rate leaves the stream closed-loop (no arrival stamps),
// the calibration shape. Same seed, same prompts either way — arrivals
// draw from a dedicated stream.
func burstRequests(seed uint64, n int, rate float64) []workload.Request {
	stream := workload.NewStream(seed, workload.AllDatasets()...)
	if rate > 0 {
		stream.WithArrivals(workload.Poisson(rate))
	}
	reqs := stream.NextN(n)
	workload.CapDecode(reqs, 4)
	return reqs
}

// TestClusterSingleReplicaMatchesSession is the acceptance pin: a
// 1-replica cluster must be a transparent wrapper — its event stream is
// identical, field for field, to a bare Session run on an equal-seed
// engine with the same requests. The fleet dispatch gate (arrival ≤
// busy-clock frontier, idle-fleet promotion) must reproduce exactly
// when the session's own admit pass would first see each request.
func TestClusterSingleReplicaMatchesSession(t *testing.T) {
	const seed, n, rate = 600, 14, 6.0

	bare, err := buildReplica(t, seed)(0)
	if err != nil {
		t.Fatal(err)
	}
	ses := bare.NewSession(engine.WithMaxConcurrent(3))
	ses.Submit(burstRequests(seed, n, rate)...)
	var want []engine.StepEvent
	ses.Run(func(ev engine.StepEvent) { want = append(want, ev) })

	c, err := New(1, NewRoundRobin(), buildReplica(t, seed), WithMaxConcurrent(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(seed, n, rate)...)
	var got []engine.StepEvent
	c.Run(func(ev Event) {
		if ev.Replica != 0 {
			t.Fatalf("single-replica cluster emitted replica %d event: %+v", ev.Replica, ev)
		}
		got = append(got, ev.StepEvent)
	})

	if len(got) != len(want) {
		t.Fatalf("cluster emitted %d events, bare session %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d diverged:\ncluster: %+v\nsession: %+v", i, got[i], want[i])
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("%d pending after drain", c.Pending())
	}
}

// TestClusterDeterminism pins byte-stable runs: two equal-seed clusters
// under every registered router emit identical event streams.
func TestClusterDeterminism(t *testing.T) {
	for _, name := range RouterNames() {
		run := func() []Event {
			r, err := NewRouter(name, 3, 77)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(3, r, buildReplica(t, 610), WithMaxConcurrent(2))
			if err != nil {
				t.Fatal(err)
			}
			c.Submit(burstRequests(610, 12, 8)...)
			var evs []Event
			c.Run(func(ev Event) { evs = append(evs, ev) })
			return evs
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("router %q: %d vs %d events across equal-seed runs", name, len(a), len(b))
		}
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("router %q: event %d diverged across equal-seed runs:\n%+v\n%+v",
					name, i, a[i], b[i])
			}
		}
	}
}

// TestClusterRoutersDispatchEverything checks the conservation law for
// every router: with no fleet admission, every offered request is
// routed to exactly one replica, the fleet drains, and per-request Done
// events arrive once each.
func TestClusterRoutersDispatchEverything(t *testing.T) {
	const offered = 12
	for _, name := range RouterNames() {
		r, err := NewRouter(name, 4, 33)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(4, r, buildReplica(t, 620), WithMaxConcurrent(2))
		if err != nil {
			t.Fatal(err)
		}
		c.Submit(burstRequests(620, offered, 10)...)
		done := map[int]int{}
		c.Run(func(ev Event) {
			if ev.Replica < 0 || ev.Replica >= c.Replicas() {
				t.Fatalf("router %q: event from replica %d", name, ev.Replica)
			}
			if ev.Done {
				done[ev.Request]++
			}
		})
		total := 0
		for i, n := range c.Routed() {
			if n < 0 {
				t.Fatalf("router %q: negative routed count on replica %d", name, i)
			}
			total += n
		}
		if total != offered {
			t.Fatalf("router %q routed %d of %d offered requests", name, total, offered)
		}
		if len(done) != offered {
			t.Fatalf("router %q completed %d of %d requests", name, len(done), offered)
		}
		for id, n := range done {
			if n != 1 {
				t.Fatalf("router %q: request %d emitted %d Done events", name, id, n)
			}
		}
		if c.Pending() != 0 {
			t.Fatalf("router %q left %d pending", name, c.Pending())
		}
	}
}

// TestClusterRoundRobinBalances pins the baseline: round-robin spreads
// an exactly divisible burst evenly.
func TestClusterRoundRobinBalances(t *testing.T) {
	c, err := New(3, NewRoundRobin(), buildReplica(t, 630))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(630, 9, 12)...)
	c.Run(nil)
	for i, n := range c.Routed() {
		if n != 3 {
			t.Fatalf("round-robin routed %d to replica %d, want 3 (counts %v)", n, i, c.Routed())
		}
	}
}

// TestClusterFleetAdmissionSheds drives a burst far past one replica's
// capacity through a strained fleet-level SLO guard and checks the
// router-level shed path: sheds are emitted as FleetReplica records,
// counted by Shed, and never reach a replica.
func TestClusterFleetAdmissionSheds(t *testing.T) {
	const offered = 24
	// Calibrate the guard from an unguarded closed-loop run, the
	// openloop-study idiom: measured fleet capacity (completions per
	// busy second, no idle arrival gaps inflating the clock) anchors the
	// overload rate, and a TTFT target just above the unqueued forward
	// latency can only breach through queueing. Dispatch shadows the
	// simulated clock, so the overload must stay moderate — arrivals
	// need to outlast the first prefills for the quantiles to reach the
	// sample floor while later requests are still undecided.
	base, err := New(2, NewLeastLoaded(), buildReplica(t, 640))
	if err != nil {
		t.Fatal(err)
	}
	base.Submit(burstRequests(640, offered, 0)...)
	var maxForward, clockEnd float64
	completed := 0
	base.Run(func(ev Event) {
		if ev.Phase == engine.PhasePrefill && ev.Latency > maxForward {
			maxForward = ev.Latency
		}
		if ev.End > clockEnd {
			clockEnd = ev.End
		}
		if ev.Done {
			completed++
		}
	})
	rate := 6 * float64(completed) / clockEnd

	c, err := New(2, NewLeastLoaded(), buildReplica(t, 640),
		WithAdmission(&engine.SLOAdmission{TTFTp95: maxForward * 1.05, MinSamples: 2, ShedFactor: 1.2}))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(640, offered, rate)...)
	shedEvents := 0
	c.Run(func(ev Event) {
		if ev.Phase == engine.PhaseShed {
			if ev.Replica != FleetReplica {
				t.Fatalf("fleet-admission shed attributed to replica %d: %+v", ev.Replica, ev)
			}
			if !ev.Done {
				t.Fatalf("shed event not terminal: %+v", ev)
			}
			shedEvents++
		}
	})
	if shedEvents == 0 {
		t.Fatalf("strained fleet admission shed nothing at %.1f req/s (6x capacity)", rate)
	}
	if c.Shed() != shedEvents {
		t.Fatalf("Shed() = %d but %d shed events emitted", c.Shed(), shedEvents)
	}
	routed := 0
	for _, n := range c.Routed() {
		routed += n
	}
	if routed+shedEvents != offered {
		t.Fatalf("routed %d + shed %d ≠ offered %d", routed, shedEvents, offered)
	}
}

// TestClusterRejectsBadInputs covers constructor validation.
func TestClusterRejectsBadInputs(t *testing.T) {
	if _, err := New(0, NewRoundRobin(), buildReplica(t, 650)); err == nil {
		t.Error("zero replicas should error")
	}
	if _, err := New(2, nil, buildReplica(t, 650)); err == nil {
		t.Error("nil router should error")
	}
	boom := func(int) (*engine.Engine, error) {
		return engine.New(&moe.Config{Name: "bad"}, hw.A6000Platform(), engine.HybriMoEFramework())
	}
	if _, err := New(2, NewRoundRobin(), boom); err == nil {
		t.Error("failing builder should error")
	}
}

// badRouter always picks out of range.
type badRouter struct{}

func (badRouter) Name() string                             { return "bad" }
func (badRouter) Pick(workload.Request, []ReplicaView) int { return 99 }

// TestClusterPanicsOnBadPick pins the scheduler-bug convention: an
// out-of-range router pick panics instead of corrupting accounting.
func TestClusterPanicsOnBadPick(t *testing.T) {
	c, err := New(2, badRouter{}, buildReplica(t, 660))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range router pick did not panic")
		}
	}()
	c.Step()
}

// TestClusterDropsZeroWork pins the Submit contract shared with Session.
func TestClusterDropsZeroWork(t *testing.T) {
	c, err := New(1, NewRoundRobin(), buildReplica(t, 670))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(workload.Request{ID: 0}, workload.Request{ID: 1, PromptTokens: 8, DecodeTokens: 1})
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after a zero-work submission, want 1", got)
	}
	c.Run(nil)
}
