package cluster

import (
	"reflect"
	"testing"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/workload"
)

// buildReplica returns an engine builder deriving each replica's seed
// from base via ReplicaSeed, the convention fleet consumers share.
func buildReplica(t *testing.T, base uint64, extra ...engine.Option) func(i int) (*engine.Engine, error) {
	t.Helper()
	return func(i int) (*engine.Engine, error) {
		opts := append([]engine.Option{
			engine.WithCacheRatio(0.25),
			engine.WithSeed(ReplicaSeed(base, i)),
		}, extra...)
		return engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(), opts...)
	}
}

// burstRequests draws a deterministic open-loop Poisson burst; a
// non-positive rate leaves the stream closed-loop (no arrival stamps),
// the calibration shape. Same seed, same prompts either way — arrivals
// draw from a dedicated stream.
func burstRequests(seed uint64, n int, rate float64) []workload.Request {
	stream := workload.NewStream(seed, workload.AllDatasets()...)
	if rate > 0 {
		stream.WithArrivals(workload.Poisson(rate))
	}
	reqs := stream.NextN(n)
	workload.CapDecode(reqs, 4)
	return reqs
}

// TestClusterSingleReplicaMatchesSession is the acceptance pin: a
// 1-replica cluster with no failures and no scale plan must be a
// transparent wrapper — its event stream is identical, field for field,
// to a bare Session run on an equal-seed engine with the same requests.
// The fleet dispatch gate (arrival ≤ busy-clock frontier, idle-fleet
// promotion) must reproduce exactly when the session's own admit pass
// would first see each request, and the idle lifecycle layer must not
// perturb a single event.
func TestClusterSingleReplicaMatchesSession(t *testing.T) {
	const seed, n, rate = 600, 14, 6.0

	bare, err := buildReplica(t, seed)(0)
	if err != nil {
		t.Fatal(err)
	}
	ses := bare.NewSession(engine.WithMaxConcurrent(3))
	ses.Submit(burstRequests(seed, n, rate)...)
	var want []engine.StepEvent
	ses.Run(func(ev engine.StepEvent) { want = append(want, ev) })

	c, err := New(WithBuilder(buildReplica(t, seed)), WithMaxConcurrent(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(seed, n, rate)...)
	var got []engine.StepEvent
	c.Run(func(ev Event) {
		if ev.Kind != EventStep {
			t.Fatalf("churn-free cluster emitted lifecycle event: %+v", ev)
		}
		if ev.Replica != 0 {
			t.Fatalf("single-replica cluster emitted replica %d event: %+v", ev.Replica, ev)
		}
		got = append(got, ev.StepEvent)
	})

	if len(got) != len(want) {
		t.Fatalf("cluster emitted %d events, bare session %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d diverged:\ncluster: %+v\nsession: %+v", i, got[i], want[i])
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("%d pending after drain", c.Pending())
	}
}

// TestClusterDeterminism pins byte-stable runs: two equal-seed clusters
// under every registered router emit identical event streams.
func TestClusterDeterminism(t *testing.T) {
	for _, name := range RouterNames() {
		run := func() []Event {
			c, err := New(
				WithReplicas(3),
				WithRouter(name),
				WithSeed(77),
				WithBuilder(buildReplica(t, 610)),
				WithMaxConcurrent(2))
			if err != nil {
				t.Fatal(err)
			}
			c.Submit(burstRequests(610, 12, 8)...)
			var evs []Event
			c.Run(func(ev Event) { evs = append(evs, ev) })
			return evs
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("router %q: %d vs %d events across equal-seed runs", name, len(a), len(b))
		}
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("router %q: event %d diverged across equal-seed runs:\n%+v\n%+v",
					name, i, a[i], b[i])
			}
		}
	}
}

// TestClusterRoutersDispatchEverything checks the conservation law for
// every router: with no fleet admission, every offered request is
// routed to exactly one replica, the fleet drains, and per-request Done
// events arrive once each. The route log (explicit opt-in) must agree
// with the per-replica counters.
func TestClusterRoutersDispatchEverything(t *testing.T) {
	const offered = 12
	for _, name := range RouterNames() {
		c, err := New(
			WithReplicas(4),
			WithRouter(name),
			WithSeed(33),
			WithBuilder(buildReplica(t, 620)),
			WithMaxConcurrent(2),
			WithRouteLog(offered))
		if err != nil {
			t.Fatal(err)
		}
		c.Submit(burstRequests(620, offered, 10)...)
		done := map[int]int{}
		c.Run(func(ev Event) {
			if ev.Replica < 0 || ev.Replica >= c.Replicas() {
				t.Fatalf("router %q: event from replica %d", name, ev.Replica)
			}
			if ev.Done {
				done[ev.Request]++
			}
		})
		total := 0
		for i, n := range c.Routed() {
			if n < 0 {
				t.Fatalf("router %q: negative routed count on replica %d", name, i)
			}
			total += n
		}
		if total != offered {
			t.Fatalf("router %q routed %d of %d offered requests", name, total, offered)
		}
		if len(done) != offered {
			t.Fatalf("router %q completed %d of %d requests", name, len(done), offered)
		}
		for id, n := range done {
			if n != 1 {
				t.Fatalf("router %q: request %d emitted %d Done events", name, id, n)
			}
		}
		log := c.RouteLog()
		if len(log) != offered {
			t.Fatalf("router %q: route log holds %d records, want %d", name, len(log), offered)
		}
		fromLog := make([]int, c.Replicas())
		for _, rec := range log {
			if rec.Rerouted {
				t.Fatalf("router %q: churn-free run logged a re-route: %+v", name, rec)
			}
			fromLog[rec.Replica]++
		}
		if !reflect.DeepEqual(fromLog, c.Routed()) {
			t.Fatalf("router %q: route log %v disagrees with counters %v", name, fromLog, c.Routed())
		}
		if c.Pending() != 0 {
			t.Fatalf("router %q left %d pending", name, c.Pending())
		}
	}
}

// TestClusterRoundRobinBalances pins the baseline: round-robin spreads
// an exactly divisible burst evenly.
func TestClusterRoundRobinBalances(t *testing.T) {
	c, err := New(WithReplicas(3), WithBuilder(buildReplica(t, 630)))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(630, 9, 12)...)
	c.Run(nil)
	for i, n := range c.Routed() {
		if n != 3 {
			t.Fatalf("round-robin routed %d to replica %d, want 3 (counts %v)", n, i, c.Routed())
		}
	}
}

// TestClusterRouteLogRing pins the opt-in retention bound: the log
// keeps only the last n dispatches, oldest-first, while the default
// (no WithRouteLog) retains nothing.
func TestClusterRouteLogRing(t *testing.T) {
	const offered, keep = 9, 4
	c, err := New(WithReplicas(2), WithBuilder(buildReplica(t, 635)), WithRouteLog(keep))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(635, offered, 10)...)
	c.Run(nil)
	log := c.RouteLog()
	if len(log) != keep {
		t.Fatalf("route log holds %d records, want the last %d", len(log), keep)
	}
	for i := 1; i < len(log); i++ {
		if log[i].At < log[i-1].At {
			t.Fatalf("route log out of order at %d: %+v after %+v", i, log[i], log[i-1])
		}
	}

	def, err := New(WithReplicas(2), WithBuilder(buildReplica(t, 635)))
	if err != nil {
		t.Fatal(err)
	}
	def.Submit(burstRequests(635, offered, 10)...)
	def.Run(nil)
	if got := def.RouteLog(); got != nil {
		t.Fatalf("default cluster retained %d route records, want none", len(got))
	}
}

// TestClusterFleetAdmissionSheds drives a burst far past one replica's
// capacity through a strained fleet-level SLO guard and checks the
// router-level shed path: sheds are emitted as FleetReplica records,
// counted by Shed, and never reach a replica.
func TestClusterFleetAdmissionSheds(t *testing.T) {
	const offered = 24
	// Calibrate the guard from an unguarded closed-loop run, the
	// openloop-study idiom: measured fleet capacity (completions per
	// busy second, no idle arrival gaps inflating the clock) anchors the
	// overload rate, and a TTFT target just above the unqueued forward
	// latency can only breach through queueing. Dispatch shadows the
	// simulated clock, so the overload must stay moderate — arrivals
	// need to outlast the first prefills for the quantiles to reach the
	// sample floor while later requests are still undecided.
	base, err := New(WithReplicas(2), WithRouter("least-loaded"), WithBuilder(buildReplica(t, 640)))
	if err != nil {
		t.Fatal(err)
	}
	base.Submit(burstRequests(640, offered, 0)...)
	var maxForward, clockEnd float64
	completed := 0
	base.Run(func(ev Event) {
		if ev.Phase == engine.PhasePrefill && ev.Latency > maxForward {
			maxForward = ev.Latency
		}
		if ev.End > clockEnd {
			clockEnd = ev.End
		}
		if ev.Done {
			completed++
		}
	})
	rate := 6 * float64(completed) / clockEnd

	c, err := New(WithReplicas(2), WithRouter("least-loaded"), WithBuilder(buildReplica(t, 640)),
		WithAdmission(&engine.SLOAdmission{TTFTp95: maxForward * 1.05, MinSamples: 2, ShedFactor: 1.2}))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(640, offered, rate)...)
	shedEvents := 0
	c.Run(func(ev Event) {
		if ev.Phase == engine.PhaseShed {
			if ev.Replica != FleetReplica {
				t.Fatalf("fleet-admission shed attributed to replica %d: %+v", ev.Replica, ev)
			}
			if !ev.Done {
				t.Fatalf("shed event not terminal: %+v", ev)
			}
			shedEvents++
		}
	})
	if shedEvents == 0 {
		t.Fatalf("strained fleet admission shed nothing at %.1f req/s (6x capacity)", rate)
	}
	if c.Shed() != shedEvents {
		t.Fatalf("Shed() = %d but %d shed events emitted", c.Shed(), shedEvents)
	}
	routed := 0
	for _, n := range c.Routed() {
		routed += n
	}
	if routed+shedEvents != offered {
		t.Fatalf("routed %d + shed %d ≠ offered %d", routed, shedEvents, offered)
	}
}

// TestClusterRejectsBadInputs covers constructor and option validation:
// every invalid or conflicting configuration must error from New, never
// surface mid-run.
func TestClusterRejectsBadInputs(t *testing.T) {
	build := buildReplica(t, 650)
	boom := func(int) (*engine.Engine, error) {
		return engine.New(&moe.Config{Name: "bad"}, hw.A6000Platform(), engine.HybriMoEFramework())
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"no builder", nil},
		{"zero replicas", []Option{WithReplicas(0), WithBuilder(build)}},
		{"failing builder", []Option{WithReplicas(2), WithBuilder(boom)}},
		{"nil builder", []Option{WithBuilder(nil)}},
		{"unknown router", []Option{WithBuilder(build), WithRouter("warp-drive")}},
		{"empty router name", []Option{WithBuilder(build), WithRouter("")}},
		{"nil router instance", []Option{WithBuilder(build), WithRouterInstance(nil)}},
		{"router name and instance", []Option{
			WithBuilder(build), WithRouter("affinity"), WithRouterInstance(NewRoundRobin())}},
		{"instance then name", []Option{
			WithBuilder(build), WithRouterInstance(NewRoundRobin()), WithRouter("affinity")}},
		{"zero concurrency", []Option{WithBuilder(build), WithMaxConcurrent(0)}},
		{"non-positive lease", []Option{WithBuilder(build), WithLeaseTTL(0)}},
		{"negative warmup", []Option{WithBuilder(build), WithWarmup(-0.1)}},
		{"failure out of range", []Option{
			WithReplicas(2), WithBuilder(build), WithFailure(2, 0.5, FailStall)}},
		{"failure negative time", []Option{
			WithReplicas(2), WithBuilder(build), WithFailure(0, -1, FailStall)}},
		{"failure unknown kind", []Option{
			WithReplicas(2), WithBuilder(build), WithFailure(0, 0.5, FailureKind(9))}},
		{"duplicate failure", []Option{
			WithReplicas(2), WithBuilder(build),
			WithFailure(1, 0.3, FailStall), WithFailure(1, 0.6, FailDeath)}},
		{"zero-delta scale", []Option{
			WithBuilder(build), WithScalePlan(ScaleEvent{At: 0.5})}},
		{"scale below one replica", []Option{
			WithReplicas(2), WithBuilder(build), WithScalePlan(ScaleEvent{At: 0.5, Delta: -2})}},
		{"zero route log", []Option{WithBuilder(build), WithRouteLog(0)}},
	}
	for _, tc := range cases {
		if _, err := New(tc.opts...); err == nil {
			t.Errorf("%s: New succeeded, want error", tc.name)
		}
	}
}

// badRouter always picks out of range.
type badRouter struct{}

func (badRouter) Name() string                             { return "bad" }
func (badRouter) Pick(workload.Request, []ReplicaView) int { return 99 }

// TestClusterPanicsOnBadPick pins the scheduler-bug convention: a
// router pick outside the eligible views panics instead of corrupting
// accounting.
func TestClusterPanicsOnBadPick(t *testing.T) {
	c, err := New(WithReplicas(2), WithRouterInstance(badRouter{}), WithBuilder(buildReplica(t, 660)))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range router pick did not panic")
		}
	}()
	c.Step()
}

// TestClusterDropsZeroWork pins the Submit contract shared with Session.
func TestClusterDropsZeroWork(t *testing.T) {
	c, err := New(WithBuilder(buildReplica(t, 670)))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(workload.Request{ID: 0}, workload.Request{ID: 1, PromptTokens: 8, DecodeTokens: 1})
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after a zero-work submission, want 1", got)
	}
	c.Run(nil)
}
