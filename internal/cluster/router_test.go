package cluster

import (
	"reflect"
	"strings"
	"testing"

	"hybrimoe/internal/workload"
)

func views(pending ...int) []ReplicaView {
	out := make([]ReplicaView, len(pending))
	for i, p := range pending {
		out[i] = ReplicaView{Index: i, Pending: p}
	}
	return out
}

func TestRoundRobinRotates(t *testing.T) {
	r := NewRoundRobin()
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, r.Pick(workload.Request{}, views(0, 0, 0)))
	}
	if want := []int{0, 1, 2, 0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rotation %v, want %v", got, want)
	}
}

func TestLeastLoadedTiesToLowestIndex(t *testing.T) {
	r := NewLeastLoaded()
	if got := r.Pick(workload.Request{}, views(3, 1, 1)); got != 1 {
		t.Fatalf("picked %d, want the first lightest (1)", got)
	}
	if got := r.Pick(workload.Request{}, views(2, 2, 2)); got != 0 {
		t.Fatalf("all-equal pick %d, want 0", got)
	}
}

func TestPowerOfTwoIsDeterministicAndValid(t *testing.T) {
	run := func() []int {
		r := NewPowerOfTwo(42)
		var got []int
		for i := 0; i < 32; i++ {
			p := r.Pick(workload.Request{}, views(4, 0, 2, 7))
			if p < 0 || p > 3 {
				t.Fatalf("pick %d out of range", p)
			}
			got = append(got, p)
		}
		return got
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal-seed streams diverged: %v vs %v", a, b)
	}
	// The heaviest replica (3, depth 7) only wins a two-sample draw
	// against nothing: it must never be picked over a lighter sample.
	for _, p := range a {
		if p == 3 {
			t.Fatalf("power-of-two picked the heaviest replica: %v", a)
		}
	}
	if r := NewPowerOfTwo(1); r.Pick(workload.Request{}, views(5)) != 0 {
		t.Fatal("single-replica fleet must pick 0")
	}
}

func TestAffinityPrefersResidency(t *testing.T) {
	r := NewAffinity()
	// Equal load and equal clocks: the readiness discount is the only
	// differentiator, and the most-resident replica wins.
	vs := views(1, 1, 1)
	vs[0].Resident, vs[0].Predicted = 2, 8
	vs[1].Resident, vs[1].Predicted = 6, 8
	vs[2].Resident, vs[2].Predicted = 4, 8
	if got := r.Pick(workload.Request{}, vs); got != 1 {
		t.Fatalf("picked %d, want the most-resident replica 1", got)
	}
	// Ties (including all-zero readiness) go to the lowest index.
	if got := r.Pick(workload.Request{}, views(1, 1, 1)); got != 0 {
		t.Fatalf("zero-readiness tie picked %d, want 0", got)
	}
}

func TestAffinityReadinessDiscountsAvailability(t *testing.T) {
	r := NewAffinity()
	// A perfectly warm replica a full second behind the cold one: warmth
	// only buys ReadyDiscount seconds, so the earlier clock wins.
	vs := views(1, 1)
	vs[1].Clock = 1.0
	vs[1].Resident, vs[1].Predicted = 8, 8
	if got := r.Pick(workload.Request{}, vs); got != 0 {
		t.Fatalf("picked %d; readiness overrode a clock gap far beyond the discount", got)
	}
	// Inside the discount window the warm replica flips the near-tie.
	vs[1].Clock = DefaultReadyDiscount / 2
	if got := r.Pick(workload.Request{}, vs); got != 1 {
		t.Fatalf("picked %d, want the warm replica 1 on a near-tie", got)
	}
}

func TestAffinityDefaultCapIsStrict(t *testing.T) {
	r := NewAffinity()
	// With the zero-value cap only the lightest replicas are eligible:
	// perfect residency one request deeper never wins.
	vs := views(0, 1)
	vs[1].Resident, vs[1].Predicted = 8, 8
	if got := r.Pick(workload.Request{}, vs); got != 0 {
		t.Fatalf("picked %d; strict cap admitted a heavier replica", got)
	}
}

func TestAffinityImbalanceCapExcludesDeepQueues(t *testing.T) {
	r := &Affinity{ImbalanceCap: 2}
	vs := views(0, 3)
	// Replica 1 has perfect residency but sits 3 deep over the lightest
	// with a cap of 2: affinity must fall back to the lighter replica.
	vs[1].Resident, vs[1].Predicted = 8, 8
	if got := r.Pick(workload.Request{}, vs); got != 0 {
		t.Fatalf("picked the over-loaded replica %d; imbalance cap ignored", got)
	}
	// Within the cap the residency signal wins again.
	vs[1].Pending = 2
	if got := r.Pick(workload.Request{}, vs); got != 1 {
		t.Fatalf("picked %d, want the resident replica 1 within the cap", got)
	}
}

// TestRoutersReturnViewIndex pins the eligibility contract: when the
// view slice holds a non-contiguous subset of the fleet (lifecycle
// filtered out replica 1, say), every router must return the Index of
// one of the views it was handed, not a position.
func TestRoutersReturnViewIndex(t *testing.T) {
	// Replicas 0 and 2 eligible; 1 is dead/warming and absent.
	eligible := []ReplicaView{
		{Index: 0, Pending: 1},
		{Index: 2, Pending: 0},
	}
	routers := []Router{NewRoundRobin(), NewLeastLoaded(), NewPowerOfTwo(9), NewAffinity()}
	for _, r := range routers {
		for i := 0; i < 8; i++ {
			pick := r.Pick(workload.Request{}, eligible)
			if pick != 0 && pick != 2 {
				t.Fatalf("router %q picked %d, not an eligible Index", r.Name(), pick)
			}
		}
	}
}

// TestAffinityDodgesStaleLeases pins lease-awareness: with a positive
// StaleTolerance, a view whose LeaseAge exceeds it loses to fresh views
// even when its frozen clock looks unbeatably available — and when
// every view is stale the filter yields to the full set rather than
// strand the request.
func TestAffinityDodgesStaleLeases(t *testing.T) {
	r := &Affinity{StaleTolerance: 0.1}
	vs := views(0, 0)
	// Replica 0 stalled long ago: clock frozen at 0 (earliest = most
	// attractive), lease far past tolerance. Replica 1 is fresh but
	// later-clocked.
	vs[0].LeaseAge = 0.5
	vs[1].Clock = 2.0
	if got := r.Pick(workload.Request{}, vs); got != 1 {
		t.Fatalf("picked %d; stale lease did not disqualify the frozen clock", got)
	}
	// All stale: better a suspect replica than none.
	vs[1].LeaseAge = 0.5
	if got := r.Pick(workload.Request{}, vs); got != 0 {
		t.Fatalf("picked %d, want 0 when every lease is stale", got)
	}
	// Zero tolerance trusts everything, the pre-lifecycle behaviour.
	trusting := NewAffinity()
	if got := trusting.Pick(workload.Request{}, vs); got != 0 {
		t.Fatalf("picked %d; zero tolerance must ignore LeaseAge", got)
	}
}

func TestRouterRegistry(t *testing.T) {
	names := RouterNames()
	want := []string{"affinity", "least-loaded", "power-of-two", "round-robin"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("RouterNames() = %v, want %v", names, want)
	}
	for _, name := range names {
		r, err := NewRouter(name, RouterConfig{Replicas: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != name {
			t.Fatalf("router %q reports name %q", name, r.Name())
		}
	}
	if _, err := NewRouter("nope", RouterConfig{Replicas: 4, Seed: 7}); err == nil {
		t.Fatal("unknown router name should error")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error %q does not name the unknown router", err)
	}
	// The registry affinity router calibrates staleness to the lease TTL
	// the cluster actually runs with.
	r, err := NewRouter("affinity", RouterConfig{Replicas: 4, Seed: 7, LeaseTTL: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if aff, ok := r.(*Affinity); !ok || aff.StaleTolerance != 0.25 {
		t.Fatalf("affinity factory produced %+v, want StaleTolerance = LeaseTTL/2", r)
	}
}

func TestRegisterRouterPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate registration", func() {
		RegisterRouter("round-robin", func(RouterConfig) Router { return NewRoundRobin() })
	})
	mustPanic("nil factory", func() { RegisterRouter("fresh", nil) })
	mustPanic("empty name", func() {
		RegisterRouter("", func(RouterConfig) Router { return NewRoundRobin() })
	})
}
