package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/workload"
)

// parallelScenario is one fleet shape the serial ≡ parallel contract is
// pinned over. Every scenario is rebuilt from scratch per worker count
// so no state leaks between runs.
type parallelScenario struct {
	name string
	opts func(t *testing.T) []Option
	reqs func() []workload.Request
}

// parallelScenarios spans the coupling surfaces a parallel window must
// not perturb: plain routing, stateful affinity routing, fleet
// admission (shed/defer + the observe-fed quantiles), failure churn
// with re-routes, elastic scale-down draining, and a disaggregated
// fleet (which must silently fall back to the serial path).
func parallelScenarios() []parallelScenario {
	return []parallelScenario{
		{
			name: "burst-round-robin",
			opts: func(t *testing.T) []Option {
				return []Option{
					WithReplicas(4), WithRouter("round-robin"), WithSeed(900),
					WithBuilder(buildReplica(t, 900)), WithMaxConcurrent(2),
				}
			},
			reqs: func() []workload.Request { return burstRequests(900, 24, 10) },
		},
		{
			name: "burst-affinity",
			opts: func(t *testing.T) []Option {
				return []Option{
					WithReplicas(4), WithRouter("affinity"), WithSeed(910),
					WithBuilder(buildReplica(t, 910)), WithMaxConcurrent(2),
				}
			},
			reqs: func() []workload.Request { return burstRequests(910, 24, 10) },
		},
		{
			name: "admission-guarded",
			opts: func(t *testing.T) []Option {
				return []Option{
					WithReplicas(3), WithRouter("least-loaded"), WithSeed(920),
					WithBuilder(buildReplica(t, 920)), WithMaxConcurrent(2),
					WithAdmission(&engine.SLOAdmission{TTFTp95: 0.05, MinSamples: 2, ShedFactor: 1.2}),
				}
			},
			reqs: func() []workload.Request { return burstRequests(920, 24, 16) },
		},
		{
			name: "churn-stall-scale-up",
			opts: func(t *testing.T) []Option {
				return []Option{
					WithReplicas(3), WithRouter("round-robin"), WithSeed(800),
					WithBuilder(buildReplica(t, 800)), WithMaxConcurrent(2),
					WithFailure(1, 0.2, FailStall),
					WithScalePlan(ScaleEvent{At: 0.35, Delta: 1}),
				}
			},
			reqs: func() []workload.Request { return burstRequests(800, 20, 12) },
		},
		{
			name: "scale-down-drain",
			opts: func(t *testing.T) []Option {
				return []Option{
					WithReplicas(4), WithRouter("round-robin"), WithSeed(930),
					WithBuilder(buildReplica(t, 930)), WithMaxConcurrent(2),
					WithScalePlan(ScaleEvent{At: 0.2, Delta: -2}, ScaleEvent{At: 0.5, Delta: 1}),
				}
			},
			reqs: func() []workload.Request { return burstRequests(930, 20, 12) },
		},
		{
			name: "pooled-1-2",
			opts: func(t *testing.T) []Option {
				return []Option{
					WithReplicas(3), WithRouter("affinity"), WithSeed(840),
					WithBuilder(buildReplica(t, 840)), WithMaxConcurrent(2),
					WithPools(PoolSpec{Prefill: 1, Decode: 2}),
				}
			},
			reqs: func() []workload.Request { return burstRequests(840, 10, 12) },
		},
	}
}

// runScenario drains one freshly-built cluster and returns its
// serialised event log plus the counters a divergent merge would skew.
func runScenario(t *testing.T, sc parallelScenario, workers int) ([]byte, map[string]int) {
	t.Helper()
	opts := append(sc.opts(t), WithWorkers(workers))
	c, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(sc.reqs()...)
	var events []Event
	c.Run(func(ev Event) { events = append(events, ev) })
	if len(events) == 0 {
		t.Fatalf("%s emitted no events", sc.name)
	}
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), map[string]int{
		"steps":    c.Steps(),
		"shed":     c.Shed(),
		"deferred": c.Deferred(),
		"rerouted": c.Rerouted(),
		"lost":     c.Lost(),
		"handoffs": c.Handoffs(),
	}
}

// TestParallelMatchesSerial is the determinism contract: at every
// worker count, over every fleet shape, the emitted event stream is
// byte-identical to the serial path's and every fleet counter agrees.
// This is the test CI runs under -race — the worker pool's only shared
// mutable state must be the per-replica stacks it partitions.
func TestParallelMatchesSerial(t *testing.T) {
	for _, sc := range parallelScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			want, wantCounters := runScenario(t, sc, 1)
			for _, workers := range []int{2, 4, 8} {
				got, gotCounters := runScenario(t, sc, workers)
				if diff := diffJSONL(want, got); diff != "" {
					t.Fatalf("workers=%d stream diverged from serial:\n%s", workers, diff)
				}
				for k, v := range wantCounters {
					if gotCounters[k] != v {
						t.Fatalf("workers=%d %s = %d, serial %d", workers, k, gotCounters[k], v)
					}
				}
			}
		})
	}
}

// TestParallelGoldensUnregenerated reruns the committed fleet goldens
// with WithWorkers(4): the parallel mode must reproduce the exact bytes
// the serial path committed, with no regeneration. (The two engine-level
// goldens never touch cluster code and are pinned by their own test.)
func TestParallelGoldensUnregenerated(t *testing.T) {
	cases := []struct {
		golden string
		opts   []Option
		reqs   []workload.Request
	}{
		{
			golden: "golden_fleet-churn.jsonl",
			opts: []Option{
				WithReplicas(3), WithRouter("round-robin"), WithSeed(800),
				WithBuilder(buildReplica(t, 800)), WithMaxConcurrent(2),
				WithFailure(1, 0.2, FailStall),
				WithScalePlan(ScaleEvent{At: 0.35, Delta: 1}),
				WithWorkers(4),
			},
			reqs: burstRequests(800, 20, 12),
		},
		{
			golden: "golden_disagg-handoff.jsonl",
			opts: []Option{
				WithReplicas(3), WithRouter("affinity"), WithSeed(840),
				WithBuilder(buildReplica(t, 840)), WithMaxConcurrent(2),
				WithPools(PoolSpec{Prefill: 1, Decode: 2}),
				WithWorkers(4),
			},
			reqs: burstRequests(840, 10, 12),
		},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			c, err := New(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			c.Submit(tc.reqs...)
			var events []Event
			c.Run(func(ev Event) { events = append(events, ev) })
			var buf bytes.Buffer
			if err := WriteEventLog(&buf, events); err != nil {
				t.Fatal(err)
			}
			if diff := diffJSONL(want, buf.Bytes()); diff != "" {
				t.Fatalf("WithWorkers(4) drifted from committed %s:\n%s", tc.golden, diff)
			}
		})
	}
}

// TestQueueRingPopsWithoutAllocating is the head-drop alloc regression
// pin: draining the fleet emission queue through Step must not allocate
// once the ring's backing array exists — the old c.queue[1:] re-slice
// kept the drained prefix live and forced append to grow a fresh array
// every refill cycle.
func TestQueueRingPopsWithoutAllocating(t *testing.T) {
	c, err := New(WithBuilder(buildReplica(t, 940)))
	if err != nil {
		t.Fatal(err)
	}
	fill := func() {
		for i := 0; i < 64; i++ {
			c.queue = append(c.queue, Event{Replica: FleetReplica, StepEvent: engine.StepEvent{
				Request: i, Phase: engine.PhaseShed, Done: true,
			}})
		}
	}
	fill() // establish ring capacity before measuring
	for c.qhead < len(c.queue) {
		if _, ok := c.Step(); !ok {
			t.Fatal("Step refused with queued events")
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		for i := 0; i < 64; i++ {
			if _, ok := c.Step(); !ok {
				t.Fatal("Step refused with queued events")
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("queue ring drain allocated %.1f times per refill cycle, want 0", allocs)
	}
	if len(c.queue) != 0 || c.qhead != 0 {
		t.Fatalf("drained ring not reset: len %d head %d", len(c.queue), c.qhead)
	}
}

// TestViewsScratchReused pins the dispatch-time allocation diet: after
// one warm-up, assembling router views reuses the per-cluster scratch
// buffer instead of allocating per dispatched request.
func TestViewsScratchReused(t *testing.T) {
	c, err := New(WithReplicas(4), WithBuilder(buildReplica(t, 950)))
	if err != nil {
		t.Fatal(err)
	}
	head := &fleetRequest{req: workload.Request{ID: 1, PromptTokens: 8, DecodeTokens: 2}}
	c.views(0, head) // size the scratch
	allocs := testing.AllocsPerRun(10, func() {
		if len(c.views(0, head)) != 4 {
			t.Fatal("expected all four replicas in view")
		}
	})
	if allocs > 0 {
		t.Fatalf("views allocated %.1f times per call after warm-up, want 0", allocs)
	}
}

// TestClusterWorkersValidation mirrors the option-validation idiom for
// the new knob.
func TestClusterWorkersValidation(t *testing.T) {
	build := buildReplica(t, 960)
	for _, n := range []int{0, -1} {
		if _, err := New(WithBuilder(build), WithWorkers(n)); err == nil {
			t.Fatalf("WithWorkers(%d) accepted", n)
		}
	}
	for _, n := range []int{1, 2, 16} {
		if _, err := New(WithBuilder(build), WithWorkers(n)); err != nil {
			t.Fatalf("WithWorkers(%d) rejected: %v", n, err)
		}
	}
}

// TestParallelSingleReplica pins the degenerate window: one replica,
// many workers — every window has exactly one candidate, runs inline,
// and still reproduces the bare-session stream the 1-replica cluster
// contract promises.
func TestParallelSingleReplica(t *testing.T) {
	const seed, n, rate = 600, 14, 6.0
	serial, err := New(WithBuilder(buildReplica(t, seed)), WithMaxConcurrent(3))
	if err != nil {
		t.Fatal(err)
	}
	serial.Submit(burstRequests(seed, n, rate)...)
	var want []Event
	serial.Run(func(ev Event) { want = append(want, ev) })

	par, err := New(WithBuilder(buildReplica(t, seed)), WithMaxConcurrent(3), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	par.Submit(burstRequests(seed, n, rate)...)
	i := 0
	par.Run(func(ev Event) {
		if i >= len(want) {
			t.Fatalf("parallel emitted extra event %d: %+v", i, ev)
		}
		if fmt.Sprintf("%+v", ev) != fmt.Sprintf("%+v", want[i]) {
			t.Fatalf("event %d diverged:\n  serial:   %+v\n  parallel: %+v", i, want[i], ev)
		}
		i++
	})
	if i != len(want) {
		t.Fatalf("parallel emitted %d events, serial %d", i, len(want))
	}
}
