package cluster

import (
	"fmt"

	"hybrimoe/internal/engine"
)

// ReplicaState is one station of the replica lifecycle state machine:
//
//	Warming → Serving → Draining → Dead
//
// Replicas present at construction start Serving (their cache warm-up
// happened before the run, the state a fleet joins steady-state
// traffic in); replicas added by a scale plan start Warming and are
// promoted to Serving once the configured warm-up window has elapsed —
// until then their caches are cold and their PredictedResidency signal
// is not worth steering by, so the dispatcher holds traffic back.
// Draining replicas finish the work they already hold but accept no new
// dispatches; Dead replicas (drained, hard-killed, or declared dead by
// lease expiry after a clock stall) never serve again.
type ReplicaState int

// Lifecycle states, in forward order.
const (
	StateWarming ReplicaState = iota
	StateServing
	StateDraining
	StateDead
)

// String returns the state name event logs and CLI summaries use.
func (s ReplicaState) String() string {
	switch s {
	case StateWarming:
		return "warming"
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("ReplicaState(%d)", int(s))
	}
}

// ScaleEvent is one entry of a scale plan: at simulated time At, add
// Delta replicas (Delta > 0; built by the cluster's builder at the next
// free indices, entering Warming) or drain -Delta replicas (Delta < 0;
// the highest-indexed live replicas move to Draining and retire once
// their queues empty).
type ScaleEvent struct {
	At    float64
	Delta int
}

// DefaultLeaseTTL is the lease timeout (simulated seconds) after which
// a replica whose heartbeat stopped is declared dead and its queue
// reclaimed — a few prefills' worth, long enough that ordinary step
// granularity never trips it.
const DefaultLeaseTTL = 0.25

// DefaultWarmup is the cache re-warm window (simulated seconds) a
// scale-up replica spends Warming before the dispatcher trusts it.
const DefaultWarmup = 0.25

// lifeKind discriminates scheduled lifecycle actions.
type lifeKind uint8

const (
	// lifeFail applies a configured failure to its replica: a stall
	// freezes the replica silently (detection comes later, by lease
	// expiry), a hard death kills it immediately.
	lifeFail lifeKind = iota
	// lifeDetect is the doctor noticing a stalled replica's expired
	// lease: the replica is declared dead and its queue reclaimed.
	lifeDetect
	// lifeScale applies one ScaleEvent.
	lifeScale
	// lifeServe promotes a Warming replica to Serving.
	lifeServe
)

// lifeAction is one scheduled lifecycle transition on the cluster's
// action queue, fired when the fleet's observable clock reaches its
// stamp.
type lifeAction struct {
	kind    lifeKind
	replica int
	fail    FailureKind // lifeFail payload
	delta   int         // lifeScale payload
}

// tickLife applies every scheduled lifecycle action stamped at or
// before now, in stamp order, and reports whether any fired (callers
// re-derive frontiers after a tick — a stall or death changes the
// steppable set).
func (c *Cluster) tickLife(now float64) bool {
	fired := false
	for {
		at, a, ok := c.life.PeekMin()
		if !ok || at > now {
			return fired
		}
		c.life.PopMin()
		c.applyLife(a, at)
		fired = true
	}
}

// applyLife runs one lifecycle transition at simulated time at.
func (c *Cluster) applyLife(a lifeAction, at float64) {
	switch a.kind {
	case lifeFail:
		r := c.replicas[a.replica]
		if r.state == StateDead {
			return
		}
		switch a.fail {
		case FailStall:
			// Silent: the replica's clock freezes and its heartbeat
			// stops, but the fleet keeps believing (and routing to) it
			// until the doctor notices the stale lease. The detection
			// action was scheduled at construction.
			r.stalled = true
			r.lease = r.eng.Clock()
		case FailDeath:
			// A hard death is immediately visible — connections reset —
			// so reclamation happens at the failure instant itself.
			c.kill(a.replica, at)
		}
	case lifeDetect:
		// The doctor only ever fires for a configured stall; the replica
		// may already be hard-dead if both were (mis)configured.
		c.kill(a.replica, at)
	case lifeScale:
		if a.delta > 0 {
			c.scaleUp(a.delta, at)
		} else {
			c.scaleDown(-a.delta, at)
		}
	case lifeServe:
		r := c.replicas[a.replica]
		if r.state == StateWarming {
			r.state = StateServing
		}
	}
}

// kill declares a replica dead at simulated time at: its undelivered
// queue is reclaimed back into the dispatch queue (one Rerouted event
// per request, original arrival stamps intact — the wait on the dead
// box lands in queue-inclusive TTFT when the request finally runs),
// its in-flight requests are abandoned (counted by Lost; their state
// cannot move), and a ReplicaDead event records the moment with the
// abandoned count in Tokens.
func (c *Cluster) kill(i int, at float64) {
	r := c.replicas[i]
	if r.state == StateDead {
		return
	}
	r.state = StateDead
	reclaimed := r.ses.Reclaim()
	lost := r.ses.Pending()
	c.lost += lost
	c.queue = append(c.queue, Event{Replica: i, Kind: EventReplicaDead, StepEvent: engine.StepEvent{
		Start: at, End: at, Tokens: lost,
	}})
	for _, req := range reclaimed {
		c.rerouted++
		// A reclaimed checkpoint's KV state died with the replica: the
		// request must re-prefill from scratch, so it re-enters the
		// dispatch queue as a fresh prompt-bearing arrival (and routes
		// back through the prefill pool when the fleet is disaggregated).
		req.Checkpoint = nil
		c.queue = append(c.queue, Event{Replica: i, Kind: EventRerouted, StepEvent: engine.StepEvent{
			Request: req.ID, Start: at, End: at,
			Deadline: req.Deadline, Arrival: req.Arrival, Class: req.Class,
		}})
		c.pending.Push(req.Arrival, &fleetRequest{req: req, rerouted: true, at: req.Arrival})
	}
}

// scaleUp builds n new replicas at the next free indices. Each starts
// Warming (a ReplicaWarming event records the join) and is promoted to
// Serving after the warm-up window; until then the dispatcher sends it
// nothing — the capacity exists but the cache re-warm cost delays its
// usefulness.
func (c *Cluster) scaleUp(n int, at float64) {
	for k := 0; k < n; k++ {
		i := len(c.replicas)
		eng, err := c.build(i)
		if err != nil {
			panic(fmt.Sprintf("cluster: building scale-up replica %d: %v", i, err))
		}
		c.replicas = append(c.replicas, &replica{
			eng:       eng,
			ses:       eng.NewSession(engine.WithMaxConcurrent(c.maxConcurrent)),
			state:     StateWarming,
			lease:     at,
			hasExpert: eng.IsResident,
		})
		c.routed = append(c.routed, 0)
		c.queue = append(c.queue, Event{Replica: i, Kind: EventReplicaWarming, StepEvent: engine.StepEvent{
			Start: at, End: at,
		}})
		c.life.Push(at+c.warmup, lifeAction{kind: lifeServe, replica: i})
	}
}

// scaleDown moves the n highest-indexed live (Serving or Warming)
// replicas to Draining: no new dispatches, existing queues run to
// completion, and a drained replica retires to Dead. A replica that is
// already idle retires immediately.
func (c *Cluster) scaleDown(n int, at float64) {
	for i := len(c.replicas) - 1; i >= 0 && n > 0; i-- {
		r := c.replicas[i]
		if r.state != StateServing && r.state != StateWarming {
			continue
		}
		n--
		r.state = StateDraining
		c.queue = append(c.queue, Event{Replica: i, Kind: EventReplicaDraining, StepEvent: engine.StepEvent{
			Start: at, End: at,
		}})
		if r.ses.Pending() == 0 {
			r.state = StateDead
			c.queue = append(c.queue, Event{Replica: i, Kind: EventReplicaDead, StepEvent: engine.StepEvent{
				Start: at, End: at,
			}})
		}
	}
}

// retireDrained completes the Draining → Dead transition after replica
// i's step emptied its queue.
func (c *Cluster) retireDrained(i int) {
	r := c.replicas[i]
	if r.state != StateDraining || r.ses.Pending() != 0 {
		return
	}
	r.state = StateDead
	c.queue = append(c.queue, Event{Replica: i, Kind: EventReplicaDead, StepEvent: engine.StepEvent{
		Start: r.eng.Clock(), End: r.eng.Clock(),
	}})
}
