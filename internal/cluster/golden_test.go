package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenFleetChurnStream is the fleet entry in the golden-scenario
// library: a 3-replica round-robin fleet (lease-blind, so the silent
// window keeps feeding the stalled replica and detection reclaims a
// queue — the Rerouted path lands in the golden) under a bursty
// dispatch load with one injected stall (replica 1, detected by lease
// expiry, queue re-routed) and one scale-up (a cold replica joining
// mid-run), its
// full cluster.Event stream — lifecycle records included — serialised
// to JSONL and diffed byte-for-byte against the committed golden.
// Any drift in dispatch order, lifecycle timing, detection jitter or
// the event schema shows up as a first-divergence diff. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/cluster -run TestGoldenFleetChurnStream
// and review the diff like any other code change.
func TestGoldenFleetChurnStream(t *testing.T) {
	const seed = 800
	c, err := New(
		WithReplicas(3),
		WithRouter("round-robin"),
		WithSeed(seed),
		WithBuilder(buildReplica(t, seed)),
		WithMaxConcurrent(2),
		WithFailure(1, 0.2, FailStall),
		WithScalePlan(ScaleEvent{At: 0.35, Delta: 1}))
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(burstRequests(seed, 20, 12)...)
	var events []Event
	c.Run(func(ev Event) { events = append(events, ev) })
	if len(events) == 0 {
		t.Fatal("scenario produced no events")
	}
	lifecycle := 0
	for _, ev := range events {
		if ev.Kind != EventStep {
			lifecycle++
		}
	}
	if lifecycle == 0 {
		t.Fatal("churn scenario emitted no lifecycle events; the golden would pin nothing new")
	}

	var buf bytes.Buffer
	if err := WriteEventLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_fleet-churn.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d events, %d lifecycle)", path, len(events), lifecycle)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if diff := diffJSONL(want, buf.Bytes()); diff != "" {
		t.Fatalf("event stream drifted from %s:\n%s", path, diff)
	}
}

// diffJSONL compares two JSONL byte streams and describes the first
// divergence line-by-line; "" means byte-identical.
func diffJSONL(want, got []byte) string {
	if bytes.Equal(want, got) {
		return ""
	}
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g []byte
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return fmt.Sprintf("streams differ in length only: golden %d lines, got %d",
		len(wantLines), len(gotLines))
}
