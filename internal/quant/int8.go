package quant

import (
	"fmt"
	"math"

	"hybrimoe/internal/tensor"
)

// Matrix8 is a row-major 8-bit group-quantized matrix, the higher-
// fidelity sibling of the 4-bit Matrix. Mixed-precision offloading
// systems (e.g. HOBBIT, which the paper cites) transfer unimportant
// experts at 4 bits and important ones at 8 bits; this type provides
// the 8-bit leg of that trade-off with a real compute path.
type Matrix8 struct {
	Rows, Cols int
	GroupSize  int
	// Data holds one signed byte per element.
	Data []int8
	// Scales holds groupsPerRow float32 per row.
	Scales []float32
}

func (m *Matrix8) groupsPerRow() int {
	return (m.Cols + m.GroupSize - 1) / m.GroupSize
}

// SizeBytes reports the storage footprint (weights + scales).
func (m *Matrix8) SizeBytes() int64 {
	return int64(len(m.Data)) + int64(len(m.Scales))*4
}

// Quantize8 converts a float32 matrix to symmetric 8-bit groups.
// groupSize <= 0 selects DefaultGroupSize.
func Quantize8(src *tensor.Matrix, groupSize int) *Matrix8 {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	q := &Matrix8{
		Rows:      src.Rows,
		Cols:      src.Cols,
		GroupSize: groupSize,
		Data:      make([]int8, src.Rows*src.Cols),
	}
	q.Scales = make([]float32, src.Rows*q.groupsPerRow())
	for r := 0; r < src.Rows; r++ {
		row := src.Row(r)
		for g := 0; g < q.groupsPerRow(); g++ {
			lo := g * groupSize
			hi := lo + groupSize
			if hi > src.Cols {
				hi = src.Cols
			}
			var amax float64
			for _, v := range row[lo:hi] {
				if a := math.Abs(float64(v)); a > amax {
					amax = a
				}
			}
			scale := float32(amax / 127)
			q.Scales[r*q.groupsPerRow()+g] = scale
			if scale == 0 {
				continue
			}
			for c := lo; c < hi; c++ {
				v := math.Round(float64(row[c]) / float64(scale))
				if v > 127 {
					v = 127
				}
				if v < -128 {
					v = -128
				}
				q.Data[r*src.Cols+c] = int8(v)
			}
		}
	}
	return q
}

// At dequantizes and returns element (r, c).
func (m *Matrix8) At(r, c int) float32 {
	return float32(m.Data[r*m.Cols+c]) * m.Scales[r*m.groupsPerRow()+c/m.GroupSize]
}

// Dequantize reconstructs a float32 matrix.
func (m *Matrix8) Dequantize() *tensor.Matrix {
	out := tensor.NewMatrix(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := out.Row(r)
		for c := 0; c < m.Cols; c++ {
			row[c] = m.At(r, c)
		}
	}
	return out
}

// MatVec computes dst = m · x on the quantized representation.
func (m *Matrix8) MatVec(dst, x []float32) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("quant: int8 MatVec x len %d != cols %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("quant: int8 MatVec dst len %d != rows %d", len(dst), m.Rows))
	}
	gpr := m.groupsPerRow()
	for r := 0; r < m.Rows; r++ {
		var acc float64
		for g := 0; g < gpr; g++ {
			lo := g * m.GroupSize
			hi := lo + m.GroupSize
			if hi > m.Cols {
				hi = m.Cols
			}
			scale := float64(m.Scales[r*gpr+g])
			if scale == 0 {
				continue
			}
			var sub float64
			base := r * m.Cols
			for c := lo; c < hi; c++ {
				sub += float64(m.Data[base+c]) * float64(x[c])
			}
			acc += scale * sub
		}
		dst[r] = float32(acc)
	}
}

// Quantized8SizeBytes predicts the INT8 footprint of a rows×cols matrix.
func Quantized8SizeBytes(rows, cols, groupSize int) int64 {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	groups := (cols + groupSize - 1) / groupSize
	return int64(rows)*int64(cols) + int64(rows)*int64(groups)*4
}

// FidelityStats quantifies reconstruction quality of a quantizer against
// the fp32 reference on a matrix-vector product: the Pearson correlation
// and the relative L2 error of the outputs.
type FidelityStats struct {
	Correlation float64
	RelL2Error  float64
}

// MeasureFidelity runs x through the fp32 matrix and a quantized
// matvec function and compares outputs.
func MeasureFidelity(src *tensor.Matrix, qmv func(dst, x []float32), x []float32) FidelityStats {
	ref := make([]float32, src.Rows)
	tensor.MatVec(ref, src, x)
	got := make([]float32, src.Rows)
	qmv(got, x)
	var dot, nr, ng, errSq float64
	for i := range ref {
		r, g := float64(ref[i]), float64(got[i])
		dot += r * g
		nr += r * r
		ng += g * g
		d := r - g
		errSq += d * d
	}
	out := FidelityStats{}
	if nr > 0 && ng > 0 {
		out.Correlation = dot / math.Sqrt(nr*ng)
	}
	if nr > 0 {
		out.RelL2Error = math.Sqrt(errSq / nr)
	}
	return out
}
