// Package quant implements symmetric 4-bit group quantization of float32
// weight matrices. It stands in for the Marlin INT4 kernels the paper
// uses via llama.cpp: expert weights are stored as packed nibbles with a
// per-group float32 scale, cutting the transferred bytes roughly 8× vs
// fp32 (4× vs the fp16 the paper starts from) while keeping a real
// dequantize + matvec compute path for the functional model.
package quant

import (
	"fmt"
	"math"

	"hybrimoe/internal/tensor"
)

// DefaultGroupSize matches the 128-wide groups used by Marlin/GPTQ-style
// kernels.
const DefaultGroupSize = 128

// Matrix is a row-major 4-bit quantized matrix. Each row is divided into
// groups of GroupSize consecutive elements sharing one float32 scale.
// Values are stored as signed nibbles in [-8, 7], two per byte, low
// nibble first.
type Matrix struct {
	Rows, Cols int
	GroupSize  int
	// Packed nibbles: ceil(Cols/2) bytes per row.
	Packed []byte
	// Scales: groupsPerRow() float32 per row.
	Scales []float32
}

func (m *Matrix) groupsPerRow() int {
	return (m.Cols + m.GroupSize - 1) / m.GroupSize
}

func (m *Matrix) bytesPerRow() int { return (m.Cols + 1) / 2 }

// SizeBytes reports the storage footprint (packed weights + scales),
// which is what crosses the PCIe link in the offloading scenario.
func (m *Matrix) SizeBytes() int64 {
	return int64(len(m.Packed)) + int64(len(m.Scales))*4
}

// Quantize converts a float32 matrix to 4-bit groups of the given size.
// groupSize <= 0 selects DefaultGroupSize.
func Quantize(src *tensor.Matrix, groupSize int) *Matrix {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	q := &Matrix{
		Rows:      src.Rows,
		Cols:      src.Cols,
		GroupSize: groupSize,
	}
	q.Packed = make([]byte, src.Rows*q.bytesPerRow())
	q.Scales = make([]float32, src.Rows*q.groupsPerRow())
	for r := 0; r < src.Rows; r++ {
		row := src.Row(r)
		for g := 0; g < q.groupsPerRow(); g++ {
			lo := g * groupSize
			hi := lo + groupSize
			if hi > src.Cols {
				hi = src.Cols
			}
			var amax float64
			for _, v := range row[lo:hi] {
				if a := math.Abs(float64(v)); a > amax {
					amax = a
				}
			}
			scale := float32(amax / 7)
			q.Scales[r*q.groupsPerRow()+g] = scale
			if scale == 0 {
				continue // zero group packs as zero nibbles
			}
			for c := lo; c < hi; c++ {
				qv := int8(math.Round(float64(row[c]) / float64(scale)))
				if qv > 7 {
					qv = 7
				}
				if qv < -8 {
					qv = -8
				}
				q.setNibble(r, c, qv)
			}
		}
	}
	return q
}

func (m *Matrix) setNibble(r, c int, v int8) {
	idx := r*m.bytesPerRow() + c/2
	nib := byte(v) & 0x0f
	if c%2 == 0 {
		m.Packed[idx] = (m.Packed[idx] &^ 0x0f) | nib
	} else {
		m.Packed[idx] = (m.Packed[idx] &^ 0xf0) | nib<<4
	}
}

func (m *Matrix) nibble(r, c int) int8 {
	idx := r*m.bytesPerRow() + c/2
	var nib byte
	if c%2 == 0 {
		nib = m.Packed[idx] & 0x0f
	} else {
		nib = m.Packed[idx] >> 4
	}
	// Sign-extend the 4-bit value.
	return int8(nib<<4) >> 4
}

// At dequantizes and returns element (r, c).
func (m *Matrix) At(r, c int) float32 {
	scale := m.Scales[r*m.groupsPerRow()+c/m.GroupSize]
	return float32(m.nibble(r, c)) * scale
}

// Dequantize reconstructs a float32 matrix.
func (m *Matrix) Dequantize() *tensor.Matrix {
	out := tensor.NewMatrix(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := out.Row(r)
		for c := 0; c < m.Cols; c++ {
			row[c] = m.At(r, c)
		}
	}
	return out
}

// MatVec computes dst = m · x directly on the quantized representation,
// dequantizing on the fly group by group. Panics on shape mismatch.
func (m *Matrix) MatVec(dst, x []float32) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("quant: MatVec x len %d != cols %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("quant: MatVec dst len %d != rows %d", len(dst), m.Rows))
	}
	gpr := m.groupsPerRow()
	for r := 0; r < m.Rows; r++ {
		var acc float64
		for g := 0; g < gpr; g++ {
			lo := g * m.GroupSize
			hi := lo + m.GroupSize
			if hi > m.Cols {
				hi = m.Cols
			}
			scale := float64(m.Scales[r*gpr+g])
			if scale == 0 {
				continue
			}
			var sub float64
			for c := lo; c < hi; c++ {
				sub += float64(m.nibble(r, c)) * float64(x[c])
			}
			acc += scale * sub
		}
		dst[r] = float32(acc)
	}
}

// CompressionRatio reports fp32 bytes divided by quantized bytes.
func (m *Matrix) CompressionRatio() float64 {
	fp32 := int64(m.Rows) * int64(m.Cols) * 4
	return float64(fp32) / float64(m.SizeBytes())
}

// QuantizedSizeBytes predicts the packed footprint of a rows×cols matrix
// without materialising it: nibble storage plus per-group scales. The
// hardware model uses this to size expert transfers.
func QuantizedSizeBytes(rows, cols, groupSize int) int64 {
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	groups := (cols + groupSize - 1) / groupSize
	return int64(rows)*int64((cols+1)/2) + int64(rows)*int64(groups)*4
}
