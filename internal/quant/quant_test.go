package quant

import (
	"math"
	"testing"
	"testing/quick"

	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
)

func randomMatrix(rng *stats.RNG, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	m.FillRandom(rng)
	return m
}

func TestQuantizeRoundTripError(t *testing.T) {
	rng := stats.NewRNG(21)
	src := randomMatrix(rng, 16, 256)
	q := Quantize(src, 64)
	deq := q.Dequantize()
	var maxRel float64
	for r := 0; r < src.Rows; r++ {
		// Per-group max error should be bounded by scale/2.
		for c := 0; c < src.Cols; c++ {
			diff := math.Abs(float64(src.At(r, c) - deq.At(r, c)))
			scale := float64(q.Scales[r*q.groupsPerRow()+c/q.GroupSize])
			if scale > 0 && diff > scale/2+1e-7 {
				t.Fatalf("(%d,%d): error %v exceeds half scale %v", r, c, diff, scale/2)
			}
			if a := math.Abs(float64(src.At(r, c))); a > 1e-3 {
				if rel := diff / a; rel > maxRel {
					maxRel = rel
				}
			}
		}
	}
	t.Logf("max relative error on significant entries: %.3f", maxRel)
}

func TestQuantizeZeroMatrix(t *testing.T) {
	src := tensor.NewMatrix(4, 32)
	q := Quantize(src, 16)
	deq := q.Dequantize()
	for _, v := range deq.Data {
		if v != 0 {
			t.Fatal("zero matrix must round-trip to zero")
		}
	}
}

func TestQuantizeExtremesClamp(t *testing.T) {
	src := tensor.NewMatrix(1, 4)
	copy(src.Data, []float32{7, -8, 3.5, -3.5})
	q := Quantize(src, 4)
	// amax=8, scale=8/7; value 7 quantizes to round(7/(8/7)) = round(6.125) = 6.
	if got := q.nibble(0, 0); got != 6 {
		t.Errorf("nibble(0,0) = %d, want 6", got)
	}
	if got := q.nibble(0, 1); got != -7 {
		t.Errorf("nibble(0,1) = %d, want -7", got)
	}
	// No nibble may leave [-8, 7].
	for c := 0; c < 4; c++ {
		if v := q.nibble(0, c); v < -8 || v > 7 {
			t.Fatalf("nibble out of range: %d", v)
		}
	}
}

func TestOddColumnCount(t *testing.T) {
	rng := stats.NewRNG(22)
	src := randomMatrix(rng, 3, 33) // odd cols exercise the half-byte tail
	q := Quantize(src, 16)
	deq := q.Dequantize()
	if deq.Rows != 3 || deq.Cols != 33 {
		t.Fatalf("round-trip shape %dx%d", deq.Rows, deq.Cols)
	}
	// Spot-check sign preservation on large entries.
	for r := 0; r < 3; r++ {
		for c := 0; c < 33; c++ {
			s, d := src.At(r, c), deq.At(r, c)
			if math.Abs(float64(s)) > 0.05 && s*d < 0 {
				t.Fatalf("sign flipped at (%d,%d): %v -> %v", r, c, s, d)
			}
		}
	}
}

func TestQuantMatVecMatchesDequantized(t *testing.T) {
	rng := stats.NewRNG(23)
	src := randomMatrix(rng, 8, 96)
	q := Quantize(src, 32)
	x := make([]float32, 96)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	got := make([]float32, 8)
	q.MatVec(got, x)
	want := make([]float32, 8)
	tensor.MatVec(want, q.Dequantize(), x)
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("QMatVec[%d] = %v, dequantized path = %v", i, got[i], want[i])
		}
	}
}

func TestQuantMatVecApproximatesFP32(t *testing.T) {
	rng := stats.NewRNG(24)
	src := randomMatrix(rng, 16, 512)
	q := Quantize(src, 128)
	x := make([]float32, 512)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	qOut := make([]float32, 16)
	fOut := make([]float32, 16)
	q.MatVec(qOut, x)
	tensor.MatVec(fOut, src, x)
	// INT4 output should correlate strongly with fp32 output.
	qf := make([]float64, 16)
	ff := make([]float64, 16)
	for i := range qOut {
		qf[i], ff[i] = float64(qOut[i]), float64(fOut[i])
	}
	if corr := stats.PearsonCorrelation(qf, ff); corr < 0.98 {
		t.Fatalf("INT4/fp32 output correlation = %v, want > 0.98", corr)
	}
}

func TestQuantMatVecPanics(t *testing.T) {
	q := Quantize(tensor.NewMatrix(2, 8), 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short x should panic")
			}
		}()
		q.MatVec(make([]float32, 2), make([]float32, 4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short dst should panic")
			}
		}()
		q.MatVec(make([]float32, 1), make([]float32, 8))
	}()
}

func TestSizeAccounting(t *testing.T) {
	q := Quantize(tensor.NewMatrix(4, 128), 128)
	// 4 rows × 64 packed bytes + 4 rows × 1 group × 4 bytes scale.
	want := int64(4*64 + 4*4)
	if got := q.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
	if got := QuantizedSizeBytes(4, 128, 128); got != want {
		t.Fatalf("QuantizedSizeBytes = %d, want %d", got, want)
	}
	if ratio := q.CompressionRatio(); math.Abs(ratio-2048.0/272.0) > 1e-9 {
		t.Fatalf("CompressionRatio = %v", ratio)
	}
}

func TestQuantizedSizeBytesOddShapes(t *testing.T) {
	// 5 cols → 3 packed bytes/row; group 4 → 2 groups/row.
	if got := QuantizedSizeBytes(2, 5, 4); got != int64(2*3+2*2*4) {
		t.Fatalf("odd-shape size = %d", got)
	}
	// groupSize<=0 selects the default.
	if got, want := QuantizedSizeBytes(1, 128, 0), QuantizedSizeBytes(1, 128, DefaultGroupSize); got != want {
		t.Fatalf("default group size not applied: %d vs %d", got, want)
	}
}

// Property: round-trip error never exceeds half the group scale, for any
// shape and group size.
func TestQuantRoundTripBoundQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(64)
		gs := 1 + rng.Intn(32)
		src := randomMatrix(rng, rows, cols)
		q := Quantize(src, gs)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				scale := float64(q.Scales[r*q.groupsPerRow()+c/q.GroupSize])
				diff := math.Abs(float64(src.At(r, c) - q.At(r, c)))
				if diff > scale/2+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
