package quant

import (
	"math"
	"testing"

	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
)

func TestQuantize8RoundTrip(t *testing.T) {
	rng := stats.NewRNG(31)
	src := randomMatrix(rng, 8, 96)
	q := Quantize8(src, 32)
	for r := 0; r < src.Rows; r++ {
		for c := 0; c < src.Cols; c++ {
			scale := float64(q.Scales[r*q.groupsPerRow()+c/q.GroupSize])
			diff := math.Abs(float64(src.At(r, c) - q.At(r, c)))
			if diff > scale/2+1e-7 {
				t.Fatalf("(%d,%d) error %v exceeds half scale %v", r, c, diff, scale/2)
			}
		}
	}
}

func TestQuantize8ZeroAndDefaults(t *testing.T) {
	src := tensor.NewMatrix(2, 256)
	q := Quantize8(src, 0)
	if q.GroupSize != DefaultGroupSize {
		t.Fatalf("default group size not applied: %d", q.GroupSize)
	}
	for _, v := range q.Dequantize().Data {
		if v != 0 {
			t.Fatal("zero matrix must round-trip to zero")
		}
	}
}

func TestInt8MoreAccurateThanInt4(t *testing.T) {
	rng := stats.NewRNG(32)
	src := randomMatrix(rng, 32, 256)
	x := make([]float32, 256)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	q4 := Quantize(src, 128)
	q8 := Quantize8(src, 128)
	f4 := MeasureFidelity(src, q4.MatVec, x)
	f8 := MeasureFidelity(src, q8.MatVec, x)
	t.Logf("int4: corr=%.5f relL2=%.4f; int8: corr=%.5f relL2=%.4f",
		f4.Correlation, f4.RelL2Error, f8.Correlation, f8.RelL2Error)
	if f8.RelL2Error >= f4.RelL2Error {
		t.Fatalf("int8 error %v should be below int4 error %v", f8.RelL2Error, f4.RelL2Error)
	}
	if f8.Correlation <= f4.Correlation {
		t.Fatalf("int8 correlation %v should beat int4 %v", f8.Correlation, f4.Correlation)
	}
	if f8.Correlation < 0.999 {
		t.Fatalf("int8 correlation %v too low", f8.Correlation)
	}
}

func TestInt8TwiceTheBytesOfInt4(t *testing.T) {
	b4 := QuantizedSizeBytes(64, 256, 128)
	b8 := Quantized8SizeBytes(64, 256, 128)
	// INT8 weights are exactly 2x the nibble storage; scales match.
	wantWeights4 := int64(64 * 128)
	wantWeights8 := int64(64 * 256)
	if b4-wantWeights4 != b8-wantWeights8 {
		t.Fatalf("scale overhead differs: %d vs %d", b4, b8)
	}
	if b8 <= b4 {
		t.Fatalf("int8 (%d B) should exceed int4 (%d B)", b8, b4)
	}
}

func TestInt8MatVecPanics(t *testing.T) {
	q := Quantize8(tensor.NewMatrix(2, 8), 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short x should panic")
			}
		}()
		q.MatVec(make([]float32, 2), make([]float32, 4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short dst should panic")
			}
		}()
		q.MatVec(make([]float32, 1), make([]float32, 8))
	}()
}

func TestInt8MatVecMatchesDequantized(t *testing.T) {
	rng := stats.NewRNG(33)
	src := randomMatrix(rng, 6, 64)
	q := Quantize8(src, 16)
	x := make([]float32, 64)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	got := make([]float32, 6)
	q.MatVec(got, x)
	want := make([]float32, 6)
	tensor.MatVec(want, q.Dequantize(), x)
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("int8 MatVec[%d] = %v, dequantized = %v", i, got[i], want[i])
		}
	}
}

func TestMeasureFidelityIdentity(t *testing.T) {
	rng := stats.NewRNG(34)
	src := randomMatrix(rng, 4, 32)
	x := make([]float32, 32)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}
	// fp32 against itself: perfect.
	f := MeasureFidelity(src, func(dst, x []float32) { tensor.MatVec(dst, src, x) }, x)
	if math.Abs(f.Correlation-1) > 1e-9 || f.RelL2Error > 1e-9 {
		t.Fatalf("identity fidelity broken: %+v", f)
	}
}
