package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "model", "latency(s)", "speedup")
	tb.AddRow("DeepSeek", 0.123456, 1.7)
	tb.AddRow("Mixtral", 1.5, 1.33)
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "model") || !strings.Contains(lines[1], "speedup") {
		t.Fatalf("header wrong: %s", lines[1])
	}
	if !strings.Contains(out, "0.1235") {
		t.Fatalf("sub-1 float should use 4 decimals:\n%s", out)
	}
	if !strings.Contains(out, "1.500") {
		t.Fatalf("1..100 float should use 3 decimals:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "bbbbbbbb")
	tb.AddRow("xxxxxxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All lines should align: header starts with "a" padded to 10.
	if len(lines[0]) < 10 {
		t.Fatalf("header not padded: %q", lines[0])
	}
	if strings.Contains(out, "##") {
		t.Fatal("untitled table should omit title line")
	}
}

func TestTablePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero columns should panic")
			}
		}()
		NewTable("x")
	}()
	tb := NewTable("x", "a", "b")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong arity should panic")
			}
		}()
		tb.AddRow("only-one")
	}()
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1.0, 2.0)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	want := "a,b\n1.000,2.000\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.0123: "0.0123",
		5.5:    "5.500",
		123.45: "123.5",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Decode latency", "cache%")
	a := f.AddSeries("llama.cpp")
	b := f.AddSeries("HybriMoE")
	for _, x := range []float64{25, 50, 75} {
		a.AddPoint(x, x*2)
		b.AddPoint(x, x)
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "llama.cpp") || !strings.Contains(out, "HybriMoE") {
		t.Fatalf("missing series:\n%s", out)
	}
	if !strings.Contains(out, "cache%") {
		t.Fatalf("missing x label:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, sep, 3 data rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestFigureRaggedSeries(t *testing.T) {
	f := NewFigure("r", "x")
	a := f.AddSeries("full")
	b := f.AddSeries("short")
	a.AddPoint(1, 10)
	a.AddPoint(2, 20)
	b.AddPoint(1, 11)
	var sb strings.Builder
	f.Render(&sb) // must not panic on the missing point
	if !strings.Contains(sb.String(), "20.00") && !strings.Contains(sb.String(), "20.000") {
		t.Fatalf("long series data lost:\n%s", sb.String())
	}
}

func TestEmptyFigure(t *testing.T) {
	f := NewFigure("empty", "x")
	var sb strings.Builder
	f.Render(&sb)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty figure should still render header")
	}
}

func TestLatencies(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	l := Latencies(xs)
	if l.N != 100 {
		t.Fatalf("N = %d", l.N)
	}
	if l.Mean != 50.5 {
		t.Fatalf("mean = %v", l.Mean)
	}
	if l.P50 > l.P95 || l.P95 > l.P99 {
		t.Fatalf("percentiles not ordered: %+v", l)
	}
	if l.P50 < 49 || l.P50 > 52 {
		t.Fatalf("p50 = %v, want ~50.5", l.P50)
	}
	if l.P99 < 98 || l.P99 > 100 {
		t.Fatalf("p99 = %v, want ~99", l.P99)
	}
	if s := l.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestLatenciesEmpty(t *testing.T) {
	l := Latencies(nil)
	if l != (LatencyStats{}) {
		t.Fatalf("empty sample should yield zero stats, got %+v", l)
	}
}

// TestLiveMatchesLatencies pins the incremental accumulator's contract:
// after any insertion order, Live.Stats equals Latencies over the same
// observations (same interpolation), and the zero value matches the
// empty-sample zero LatencyStats.
func TestLiveMatchesLatencies(t *testing.T) {
	var live Live
	if live.Stats() != (LatencyStats{}) {
		t.Fatalf("zero-value Live = %+v, want zero stats", live.Stats())
	}
	// Deterministic scrambled insertion order with duplicates.
	var xs []float64
	for i := 0; i < 57; i++ {
		x := float64((i*37)%19) / 7
		live.Add(x)
		xs = append(xs, x)
		want := Latencies(xs)
		got := live.Stats()
		// Percentiles read identical sorted values and must match
		// exactly; the running mean may differ from the batch mean by
		// summation order, within float tolerance.
		if got.N != want.N || got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
			t.Fatalf("after %d adds: Live %+v != Latencies %+v", i+1, got, want)
		}
		if diff := got.Mean - want.Mean; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("after %d adds: mean %v != %v", i+1, got.Mean, want.Mean)
		}
	}
}

// TestLiveDuplicateHeavySamples stresses the binary-search insertion at
// equal keys: a feed dominated by a handful of repeated values — the
// shape a steady server's latency stream actually has — must keep Live
// and Latencies in exact agreement however the duplicates interleave,
// including all-identical samples where every percentile collapses to
// the one value.
func TestLiveDuplicateHeavySamples(t *testing.T) {
	var live Live
	var xs []float64
	// Three values, heavily repeated, interleaved in a fixed scrambled
	// order; sort.SearchFloat64s lands on the leftmost equal slot, so
	// every insertion exercises the equal-key copy path.
	vals := []float64{0.25, 0.125, 0.25, 0.5, 0.25, 0.125}
	for i := 0; i < 120; i++ {
		x := vals[(i*7)%len(vals)]
		live.Add(x)
		xs = append(xs, x)
		got, want := live.Stats(), Latencies(xs)
		if got.N != want.N || got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
			t.Fatalf("after %d duplicate-heavy adds: Live %+v != Latencies %+v", i+1, got, want)
		}
	}

	var flat Live
	for i := 0; i < 40; i++ {
		flat.Add(0.0625)
	}
	got := flat.Stats()
	if got.N != 40 || got.Mean != 0.0625 || got.P50 != 0.0625 || got.P95 != 0.0625 || got.P99 != 0.0625 {
		t.Fatalf("all-identical sample summarised to %+v, want every statistic 0.0625", got)
	}
}
