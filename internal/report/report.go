// Package report renders experiment results as aligned ASCII tables and
// CSV, the formats the cmd/hybrimoe harness and EXPERIMENTS.md use.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hybrimoe/internal/stats"
)

// LatencyStats summarises a latency sample with the percentiles serving
// studies report alongside the mean: p50, p95 and p99.
type LatencyStats struct {
	N                   int
	Mean, P50, P95, P99 float64
}

// Latencies computes LatencyStats over xs. An empty sample yields the
// zero value (all-zero percentiles) rather than panicking, so drained
// event streams with no observations render as empty rows.
func Latencies(xs []float64) LatencyStats {
	if len(xs) == 0 {
		return LatencyStats{}
	}
	var s stats.Sample
	s.AddN(xs)
	return LatencyStats{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Quantile(0.50),
		P95:  s.Quantile(0.95),
		P99:  s.Quantile(0.99),
	}
}

// String renders the summary on one line.
func (l LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%.4gs p50=%.4gs p95=%.4gs p99=%.4gs",
		l.N, l.Mean, l.P50, l.P95, l.P99)
}

// Live accumulates latency observations for repeated in-flight quantile
// queries: the sample is kept sorted by binary-search insertion and the
// sum runs alongside, so each Stats call reads percentiles directly
// instead of re-sorting the whole history — the accumulator admission
// controllers poll once per serving step. Live and Latencies agree
// exactly on the same observations (same interpolation).
type Live struct {
	xs  []float64 // sorted ascending
	sum float64
}

// Add folds in one observation.
func (l *Live) Add(x float64) {
	i := sort.SearchFloat64s(l.xs, x)
	l.xs = append(l.xs, 0)
	copy(l.xs[i+1:], l.xs[i:])
	l.xs[i] = x
	l.sum += x
}

// Stats summarises the observations so far; the zero value (no
// observations) yields the zero LatencyStats, as Latencies does.
func (l *Live) Stats() LatencyStats {
	if len(l.xs) == 0 {
		return LatencyStats{}
	}
	return LatencyStats{
		N:    len(l.xs),
		Mean: l.sum / float64(len(l.xs)),
		P50:  quantileSorted(l.xs, 0.50),
		P95:  quantileSorted(l.xs, 0.95),
		P99:  quantileSorted(l.xs, 0.99),
	}
}

// quantileSorted interpolates the q-th quantile of a sorted non-empty
// sample, mirroring stats.Sample.Quantile so Live and Latencies agree.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 {
		return xs[lo]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// Table accumulates rows with a fixed header and renders them aligned.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("report: table needs at least one column")
	}
	return &Table{Title: title, header: columns}
}

// AddRow appends a row; fmt.Sprint is applied to every cell. A row with
// the wrong arity panics — it is always a harness bug.
func (t *Table) AddRow(cells ...interface{}) {
	if len(cells) != len(t.header) {
		panic(fmt.Sprintf("report: row has %d cells for %d columns", len(cells), len(t.header)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// RenderCSV writes the table as CSV (no quoting; cells are numeric or
// simple identifiers by construction).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.header, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named (x, y) sequence — one line of a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// AddPoint appends one point.
func (s *Series) AddPoint(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing an x axis, rendered as a wide table
// (one row per x, one column per series).
type Figure struct {
	Title  string
	XLabel string
	Series []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel}
}

// AddSeries appends a named series and returns it for point insertion.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Render writes the figure as an aligned table, merging series on exact
// x values in the order points were added to the first series.
func (f *Figure) Render(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(f.Title, cols...)
	if len(f.Series) == 0 {
		t.Render(w)
		return
	}
	for i, x := range f.Series[0].X {
		row := []interface{}{formatFloat(x)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, s.Y[i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	t.Render(w)
}
