package sched

import (
	"sort"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
)

// HybriMoE is the paper's dynamic intra-layer scheduler (§IV-B). It
// turns the NP-hard mapping problem into a greedy simulation constrained
// by three priority rules:
//
//   - GPU priority: compute cached experts, highest load first;
//   - CPU priority: compute uncached experts, lowest load first; steal
//     low-load cached experts from the GPU queue when otherwise idle;
//   - transfer priority: move the highest-load uncached experts to the
//     GPU first.
//
// The planning loop iteratively fills the CPU, GPU and PCIe timelines:
// at each step it evaluates the next operation each timeline could run,
// commits the one that completes earliest (ties prefer CPU, then GPU,
// then PCIe), and — when a transfer commits — moves the expert into the
// GPU queue in descending load order with availability at the transfer's
// end, exactly the simulation the paper describes.
type HybriMoE struct{}

// NewHybriMoE returns the dynamic hybrid scheduler.
func NewHybriMoE() *HybriMoE { return &HybriMoE{} }

// Name implements Scheduler.
func (s *HybriMoE) Name() string { return "HybriMoE" }

// gpuEntry is a GPU-queue element: a task plus the time it becomes
// available on the GPU (0 for cached experts, transfer end for in-flight
// ones).
type gpuEntry struct {
	task    Task
	readyAt float64
	// viaTransfer marks entries produced by a committed transfer; the
	// CPU must not steal them (the weights are already in flight).
	viaTransfer bool
}

// Plan implements Scheduler. It runs the greedy timeline-filling
// simulation and, because the paper's simulation phase "evaluates
// scheduling strategies" before committing, also simulates the static
// cached→GPU / uncached→CPU mapping and returns whichever plan finishes
// first. The greedy pass wins whenever rebalancing helps; the fallback
// guarantees HybriMoE never does worse than the kTransformers mapping.
func (s *HybriMoE) Plan(tasks []Task, p *hw.Platform, res Resources) *Plan {
	greedy := s.planGreedy(tasks, p, res)
	static := buildAssignment(tasks, p, res, func(i int) bool { return !tasks[i].Cached })
	if static != nil && static.Makespan < greedy.Makespan {
		return static
	}
	return greedy
}

func (s *HybriMoE) planGreedy(tasks []Task, p *hw.Platform, res Resources) *Plan {
	res.validate()
	plan := &Plan{}
	if len(tasks) == 0 {
		return plan
	}

	// CPU queue: uncached, ascending load.
	var cpuQ []Task
	// GPU queue: cached, descending load.
	var gpuQ []gpuEntry
	for _, t := range tasks {
		if t.Cached {
			gpuQ = append(gpuQ, gpuEntry{task: t})
		} else {
			cpuQ = append(cpuQ, t)
		}
	}
	sort.SliceStable(cpuQ, func(i, j int) bool { return cpuQ[i].Load < cpuQ[j].Load })
	sort.SliceStable(gpuQ, func(i, j int) bool { return gpuQ[i].task.Load > gpuQ[j].task.Load })

	cpuBusy, gpuBusy, linkBusy := res.CPUFree, res.GPUFree, res.LinkFree
	cpuFirst := true

	appendOp := func(op Op) {
		plan.Ops = append(plan.Ops, op)
		if op.Kind != OpTransfer && op.End > plan.Makespan {
			plan.Makespan = op.End
		}
	}

	for len(cpuQ) > 0 || len(gpuQ) > 0 {
		const none = -1
		// Candidate 0: CPU computes its queue head, or steals the
		// lowest-load cached (non-in-flight) expert from the GPU queue.
		cpuTask := none // index into cpuQ, or stolen gpuQ index encoded below
		cpuSteal := none
		var cpuFin float64
		if len(cpuQ) > 0 {
			cpuTask = 0
			t := cpuQ[0]
			cpuFin = cpuBusy + p.CPU.ExpertTime(t.Flops, t.Bytes, cpuFirst)
		} else {
			// Steal: lowest load = scan gpuQ from the back (sorted
			// descending), skipping in-flight transfers.
			for i := len(gpuQ) - 1; i >= 0; i-- {
				if !gpuQ[i].viaTransfer {
					cpuSteal = i
					t := gpuQ[i].task
					cpuFin = cpuBusy + p.CPU.ExpertTime(t.Flops, t.Bytes, cpuFirst)
					break
				}
			}
		}

		// Candidate 1: GPU computes the best available queue entry —
		// the earliest-startable one, preferring higher load on ties
		// (the queue is load-ordered, so the first minimal-start entry
		// wins).
		gpuIdx := none
		var gpuStart, gpuFin float64
		for i, e := range gpuQ {
			start := gpuBusy
			if e.readyAt > start {
				start = e.readyAt
			}
			if gpuIdx == none || start < gpuStart-1e-15 {
				gpuIdx = i
				gpuStart = start
				gpuFin = start + p.GPUs[0].ExpertTime(e.task.Flops, e.task.Bytes)
			}
		}

		// Candidate 2: PCIe transfers the highest-load uncached expert
		// (the CPU queue tail).
		xferIdx := none
		var xferFin float64
		if len(cpuQ) > 0 {
			xferIdx = len(cpuQ) - 1
			xferFin = linkBusy + p.Links[0].TransferTime(cpuQ[xferIdx].Bytes)
		}

		// Commit the earliest-finishing candidate; ties prefer CPU,
		// then GPU, then PCIe (matching the paper's walk-through, which
		// keeps the CPU busy on cheap uncached work).
		const eps = 1e-15
		best := none // 0=CPU, 1=GPU, 2=PCIe
		var bestFin float64
		consider := func(kind int, fin float64, ok bool) {
			if !ok {
				return
			}
			if best == none || fin < bestFin-eps {
				best = kind
				bestFin = fin
			}
		}
		consider(0, cpuFin, cpuTask != none || cpuSteal != none)
		consider(1, gpuFin, gpuIdx != none)
		consider(2, xferFin, xferIdx != none)

		switch best {
		case 0:
			var t Task
			if cpuTask != none {
				t = cpuQ[0]
				cpuQ = cpuQ[1:]
			} else {
				t = gpuQ[cpuSteal].task
				gpuQ = append(gpuQ[:cpuSteal], gpuQ[cpuSteal+1:]...)
			}
			appendOp(Op{Expert: t.ID, Kind: OpComputeCPU, Load: t.Load, Start: cpuBusy, End: cpuFin})
			cpuBusy = cpuFin
			cpuFirst = false
		case 1:
			e := gpuQ[gpuIdx]
			gpuQ = append(gpuQ[:gpuIdx], gpuQ[gpuIdx+1:]...)
			appendOp(Op{Expert: e.task.ID, Kind: OpComputeGPU, Load: e.task.Load, Start: gpuStart, End: gpuFin})
			gpuBusy = gpuFin
		case 2:
			t := cpuQ[xferIdx]
			cpuQ = cpuQ[:xferIdx]
			appendOp(Op{Expert: t.ID, Kind: OpTransfer, Load: t.Load, Start: linkBusy, End: xferFin})
			linkBusy = xferFin
			plan.Transferred = append(plan.Transferred, t.ID)
			// Insert into the GPU queue keeping descending load order.
			entry := gpuEntry{task: t, readyAt: xferFin, viaTransfer: true}
			pos := sort.Search(len(gpuQ), func(i int) bool { return gpuQ[i].task.Load < t.Load })
			gpuQ = append(gpuQ, gpuEntry{})
			copy(gpuQ[pos+1:], gpuQ[pos:])
			gpuQ[pos] = entry
		default:
			panic("sched: no candidate operation (scheduler bug)")
		}
	}
	return plan
}

var _ Scheduler = (*HybriMoE)(nil)

// SimulateMakespan predicts the makespan of scheduling tasks under the
// given resources without materialising the plan — the cheap what-if
// query the impact-driven prefetcher issues (§IV-C). cached overrides
// task residency: experts in the set are treated as already on the GPU.
func SimulateMakespan(s Scheduler, tasks []Task, p *hw.Platform, res Resources, cached map[moe.ExpertID]bool) float64 {
	if cached != nil {
		adjusted := make([]Task, len(tasks))
		copy(adjusted, tasks)
		for i := range adjusted {
			if cached[adjusted[i].ID] {
				adjusted[i].Cached = true
			}
		}
		tasks = adjusted
	}
	return s.Plan(tasks, p, res).Makespan
}
