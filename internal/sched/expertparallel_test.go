package sched

import (
	"math"
	"reflect"
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
)

// randomTasks draws a reproducible task mix with residency spread over
// the platform's GPUs.
func randomTasks(rng *stats.RNG, cfg *moe.Config, layer, n, gpus int) []Task {
	var tasks []Task
	for e := 0; e < n; e++ {
		load := 1 + rng.Intn(100)
		cached := rng.Float64() < 0.4
		dev := hw.GPU
		if cached && gpus > 1 {
			dev = hw.GPUAt(rng.Intn(gpus))
		}
		tasks = append(tasks, Task{
			ID: id(layer, e), Load: load,
			Flops:  cfg.ExpertFlops(load),
			Bytes:  cfg.ExpertBytes(),
			Cached: cached,
			Device: dev,
		})
	}
	return tasks
}

// Property: expert-parallel plans validate for arbitrary task mixes on
// single- and multi-GPU platforms, with per-device resource offsets.
func TestExpertParallelPlanAlwaysValid(t *testing.T) {
	platforms := []*hw.Platform{
		hw.A6000Platform(), hw.DualA6000Platform(), hw.QuadA6000Platform(),
	}
	rng := stats.NewRNG(314)
	cfg := moe.Mixtral()
	for trial := 0; trial < 300; trial++ {
		p := platforms[trial%len(platforms)]
		gpus := p.NumGPUs()
		tasks := randomTasks(rng, cfg, trial%32, 1+rng.Intn(10), gpus)
		res := Resources{CPUFree: rng.Float64() * 1e-3}
		res.GPUFrees = make([]float64, gpus)
		res.LinkFrees = make([]float64, gpus)
		for d := 0; d < gpus; d++ {
			res.GPUFrees[d] = rng.Float64() * 1e-3
			res.LinkFrees[d] = rng.Float64() * 1e-3
		}
		res.GPUFree, res.LinkFree = res.GPUFrees[0], res.LinkFrees[0]
		plan := NewExpertParallel().Plan(tasks, p, res)
		if err := plan.Validate(tasks, res); err != nil {
			t.Fatalf("trial %d on %s: %v", trial, p.Name, err)
		}
	}
}

// Pin the 1-GPU degenerate case: on a single-GPU platform with scalar
// resources, expert-parallel produces exactly the HybriMoE greedy
// schedule (the pre-refactor planner), op for op.
func TestExpertParallelSingleGPUMatchesHybriMoEGreedy(t *testing.T) {
	rng := stats.NewRNG(99)
	cfg := moe.Mixtral()
	for trial := 0; trial < 200; trial++ {
		tasks := randomTasks(rng, cfg, trial%32, 1+rng.Intn(10), 1)
		res := Resources{
			CPUFree:  rng.Float64() * 1e-3,
			GPUFree:  rng.Float64() * 1e-3,
			LinkFree: rng.Float64() * 1e-3,
		}
		got := NewExpertParallel().Plan(tasks, hw.A6000Platform(), res)
		want := NewHybriMoE().planGreedy(tasks, hw.A6000Platform(), res)
		if math.Abs(got.Makespan-want.Makespan) > 1e-12 || len(got.Ops) != len(want.Ops) {
			t.Fatalf("trial %d: single-GPU expert-parallel diverged from HybriMoE greedy:\n got %+v\nwant %+v",
				trial, got, want)
		}
		for i := range got.Ops {
			if got.Ops[i] != want.Ops[i] {
				t.Fatalf("trial %d op %d: got %+v, want %+v", trial, i, got.Ops[i], want.Ops[i])
			}
		}
		if !reflect.DeepEqual(got.Transferred, want.Transferred) {
			t.Fatalf("trial %d transfers: got %v, want %v", trial, got.Transferred, want.Transferred)
		}
	}
}

// Pin that every built-in single-GPU scheduler still targets device 0
// for every GPU and transfer op — the plan-identity guarantee the
// N-device refactor makes to pre-refactor consumers.
func TestSingleGPUSchedulersTargetDevice0(t *testing.T) {
	rng := stats.NewRNG(7)
	cfg := moe.Mixtral()
	for _, name := range Names() {
		s, err := New(name, Config{GPULayer: func(int) bool { return true }})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			n := 1 + rng.Intn(8)
			if name == "exhaustive" && n > MaxExhaustiveTasks {
				n = MaxExhaustiveTasks
			}
			tasks := randomTasks(rng, cfg, trial%32, n, 1)
			plan := s.Plan(tasks, hw.A6000Platform(), Resources{})
			for _, op := range plan.Ops {
				if op.Kind != OpComputeCPU && op.Device != hw.GPU {
					t.Fatalf("%s: op %+v targets %v on a single-GPU platform", name, op, op.Device)
				}
			}
		}
	}
}

// Cached experts must run on their resident device, and uncached work
// should spread across both links under contention.
func TestExpertParallelFollowsResidency(t *testing.T) {
	p := hw.DualA6000Platform()
	cfg := moe.Mixtral()
	var tasks []Task
	for e := 0; e < 6; e++ {
		tasks = append(tasks, Task{
			ID: id(0, e), Load: 50,
			Flops:  cfg.ExpertFlops(50),
			Bytes:  cfg.ExpertBytes(),
			Cached: true,
			Device: hw.GPUAt(e % 2),
		})
	}
	plan := NewExpertParallel().Plan(tasks, p, Resources{})
	if err := plan.Validate(tasks, Resources{}); err != nil {
		t.Fatal(err)
	}
	used := map[hw.Device]int{}
	for _, op := range plan.Ops {
		if op.Kind == OpComputeGPU {
			used[op.Device]++
			if want := hw.GPUAt(op.Expert.Index % 2); op.Device != want {
				t.Fatalf("expert %v ran on %v, cached on %v", op.Expert, op.Device, want)
			}
		}
	}
	if used[hw.GPUAt(0)] == 0 || used[hw.GPUAt(1)] == 0 {
		t.Fatalf("residency-spread experts should use both GPUs: %v", used)
	}
}

// Two GPUs must beat one on a GPU-bound cached workload: the same task
// set split across two devices halves the serial compute chain.
func TestExpertParallelDualGPUBeatsSingleOnCachedLoad(t *testing.T) {
	cfg := moe.Mixtral()
	mkTasks := func(gpus int) []Task {
		var tasks []Task
		for e := 0; e < 8; e++ {
			tasks = append(tasks, Task{
				ID: id(0, e), Load: 1,
				Flops:  cfg.ExpertFlops(1),
				Bytes:  cfg.ExpertBytes(),
				Cached: true,
				Device: hw.GPUAt(e % gpus),
			})
		}
		return tasks
	}
	single := NewExpertParallel().Plan(mkTasks(1), hw.A6000Platform(), Resources{})
	dual := NewExpertParallel().Plan(mkTasks(2), hw.DualA6000Platform(), Resources{})
	if dual.Makespan >= single.Makespan {
		t.Fatalf("dual-GPU makespan %v should beat single-GPU %v", dual.Makespan, single.Makespan)
	}
}
