// Package sched implements the paper's core contribution: the hybrid
// CPU-GPU intra-layer scheduling strategy (§IV-B), alongside the three
// baseline strategies it is evaluated against (llama.cpp-style static
// layer mapping, AdapMoE-style GPU-centric loading, kTransformers-style
// static hybrid mapping).
//
// A scheduler receives the activated experts of one MoE layer as Tasks —
// each with a token load, FLOP count, weight footprint and residency
// flag — plus the platform cost models and the current occupancy of the
// three resource timelines, and produces a Plan: a set of timed
// operations (CPU compute, GPU compute, PCIe transfer) whose makespan is
// the layer's routed-expert latency.
package sched

import (
	"fmt"
	"sort"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
)

// Task is one routed expert's work for the current layer.
type Task struct {
	ID moe.ExpertID
	// Load is the token count routed to this expert (1 at decode).
	Load int
	// Flops is the total compute for Load tokens.
	Flops float64
	// Bytes is the INT4 weight footprint (the transfer size on miss).
	Bytes int64
	// Cached reports GPU residency at scheduling time.
	Cached bool
	// Device is the GPU holding the cached copy. The zero value is GPU0,
	// so single-GPU call sites never set it. Meaningful only when Cached.
	Device hw.Device
}

// OpKind classifies plan operations.
type OpKind int

// Operation kinds.
const (
	OpComputeCPU OpKind = iota
	OpComputeGPU
	OpTransfer
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpComputeCPU:
		return "cpu"
	case OpComputeGPU:
		return "gpu"
	case OpTransfer:
		return "xfer"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one scheduled operation with times relative to the layer start.
type Op struct {
	Expert moe.ExpertID
	Kind   OpKind
	Load   int
	Start  float64
	End    float64
	// Device is the target GPU of an OpComputeGPU, or the destination
	// GPU (and therefore the host link) of an OpTransfer. The zero value
	// is GPU0, so single-GPU schedulers never set it; it is ignored for
	// OpComputeCPU.
	Device hw.Device
}

// Plan is a complete schedule for one layer's routed experts.
type Plan struct {
	Ops []Op
	// Makespan is when the last routed-expert computation finishes,
	// relative to the layer start.
	Makespan float64
	// Transferred lists experts moved to the GPU by this plan (they
	// should be inserted into the expert cache on completion).
	Transferred []moe.ExpertID
}

// Resources carries the occupancy of the device timelines at the moment
// the layer starts, as offsets ≥ 0 relative to the layer start. GPUFree
// is typically positive (attention + shared experts run first); LinkFree
// is positive when a prefetch from an earlier layer still occupies PCIe.
// On multi-GPU platforms GPUFrees/LinkFrees carry every device's
// frontier; the scalar GPUFree/LinkFree remain GPU0's, so single-GPU
// schedulers (and their callers) are untouched by the N-device model.
type Resources struct {
	CPUFree  float64
	GPUFree  float64
	LinkFree float64
	// GPUFrees and LinkFrees, when non-nil, carry the per-device
	// frontiers; index 0 takes precedence over the scalars. Nil means a
	// single device described by the scalars.
	GPUFrees  []float64
	LinkFrees []float64
}

// GPUFreeAt reports device d's occupancy offset: the per-device vector
// when present, the scalar for GPU0 otherwise, and 0 for devices the
// caller never mentioned.
func (r Resources) GPUFreeAt(d hw.Device) float64 {
	i := d.GPUIndex()
	if r.GPUFrees != nil {
		if i < len(r.GPUFrees) {
			return r.GPUFrees[i]
		}
		return 0
	}
	if i == 0 {
		return r.GPUFree
	}
	return 0
}

// LinkFreeAt reports the occupancy offset of device d's host link, with
// GPUFreeAt's fallback rules.
func (r Resources) LinkFreeAt(d hw.Device) float64 {
	i := d.GPUIndex()
	if r.LinkFrees != nil {
		if i < len(r.LinkFrees) {
			return r.LinkFrees[i]
		}
		return 0
	}
	if i == 0 {
		return r.LinkFree
	}
	return 0
}

func (r Resources) validate() {
	if r.CPUFree < 0 || r.GPUFree < 0 || r.LinkFree < 0 {
		panic(fmt.Sprintf("sched: negative resource offsets %+v", r))
	}
	for _, v := range r.GPUFrees {
		if v < 0 {
			panic(fmt.Sprintf("sched: negative GPU resource offsets %+v", r))
		}
	}
	for _, v := range r.LinkFrees {
		if v < 0 {
			panic(fmt.Sprintf("sched: negative link resource offsets %+v", r))
		}
	}
}

// Scheduler plans one layer.
type Scheduler interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Plan schedules the tasks. Implementations must not retain tasks.
	Plan(tasks []Task, p *hw.Platform, res Resources) *Plan
}

// DeviceAware marks schedulers that understand multi-GPU device
// identity: they read Task.Device and the per-device Resources vectors
// and emit ops targeting any GPU. Schedulers without the marker are
// single-GPU planners — on an N-GPU platform the engine confines their
// residency, placement and transfers to GPU0, since a plan that runs a
// GPU1-resident expert on GPU0 without a transfer is not physical.
type DeviceAware interface {
	Scheduler
	// PlansDevices is a marker; implementations need no behaviour.
	PlansDevices()
}

// IsDeviceAware reports whether s opts into multi-GPU planning.
func IsDeviceAware(s Scheduler) bool {
	_, ok := s.(DeviceAware)
	return ok
}

// Validate checks plan invariants against the task list: every task
// computed exactly once, transfers precede their GPU compute on the
// same device, cached tasks only GPU-compute on their residency device,
// and ops on the same resource (the CPU, each GPU, each host link)
// never overlap. Tests and the engine's debug mode use it; it returns
// nil for a well-formed plan.
func (pl *Plan) Validate(tasks []Task, res Resources) error {
	type xfer struct {
		end float64
		dev hw.Device
	}
	computed := make(map[moe.ExpertID]int)
	transferred := make(map[moe.ExpertID]xfer)
	var cpuOps []Op
	gpuOps := make(map[hw.Device][]Op)
	xferOps := make(map[hw.Device][]Op)
	for _, op := range pl.Ops {
		switch op.Kind {
		case OpComputeCPU:
			computed[op.Expert]++
			cpuOps = append(cpuOps, op)
		case OpComputeGPU:
			computed[op.Expert]++
			gpuOps[op.Device] = append(gpuOps[op.Device], op)
		case OpTransfer:
			if _, dup := transferred[op.Expert]; dup {
				return fmt.Errorf("sched: %v transferred twice", op.Expert)
			}
			transferred[op.Expert] = xfer{end: op.End, dev: op.Device}
			xferOps[op.Device] = append(xferOps[op.Device], op)
		}
		if op.End < op.Start {
			return fmt.Errorf("sched: op %v ends before it starts", op)
		}
	}
	for _, task := range tasks {
		if computed[task.ID] != 1 {
			return fmt.Errorf("sched: task %v computed %d times", task.ID, computed[task.ID])
		}
	}
	if len(computed) != len(tasks) {
		return fmt.Errorf("sched: %d computed experts for %d tasks", len(computed), len(tasks))
	}
	byID := make(map[moe.ExpertID]Task, len(tasks))
	for _, t := range tasks {
		byID[t.ID] = t
	}
	for dev, ops := range gpuOps {
		for _, op := range ops {
			task, ok := byID[op.Expert]
			if !ok {
				return fmt.Errorf("sched: GPU op for unknown task %v", op.Expert)
			}
			if task.Cached {
				if dev != task.Device {
					return fmt.Errorf("sched: %v cached on %v computed on %v without transfer",
						op.Expert, task.Device, dev)
				}
				continue
			}
			x, ok := transferred[op.Expert]
			if !ok {
				return fmt.Errorf("sched: uncached %v computed on GPU without transfer", op.Expert)
			}
			if x.dev != dev {
				return fmt.Errorf("sched: %v transferred to %v but computed on %v", op.Expert, x.dev, dev)
			}
			if op.Start < x.end-1e-9 {
				return fmt.Errorf("sched: %v GPU compute at %v before transfer end %v", op.Expert, op.Start, x.end)
			}
		}
	}
	for _, ops := range xferOps {
		for _, op := range ops {
			if t := byID[op.Expert]; t.Cached {
				return fmt.Errorf("sched: cached %v transferred", op.Expert)
			}
		}
	}
	checkSerial := func(ops []Op, free float64, what string) error {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
		prevEnd := free
		for _, op := range ops {
			if op.Start < prevEnd-1e-9 {
				return fmt.Errorf("sched: %s ops overlap at %v (prev end %v)", what, op.Start, prevEnd)
			}
			prevEnd = op.End
		}
		return nil
	}
	if err := checkSerial(cpuOps, res.CPUFree, "CPU"); err != nil {
		return err
	}
	for dev, ops := range gpuOps {
		if err := checkSerial(ops, res.GPUFreeAt(dev), dev.String()); err != nil {
			return err
		}
	}
	for dev, ops := range xferOps {
		if err := checkSerial(ops, res.LinkFreeAt(dev), "PCIe:"+dev.String()); err != nil {
			return err
		}
	}
	var maxEnd float64
	for _, op := range pl.Ops {
		if op.Kind != OpTransfer && op.End > maxEnd {
			maxEnd = op.End
		}
	}
	if diff := pl.Makespan - maxEnd; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("sched: makespan %v != last compute end %v", pl.Makespan, maxEnd)
	}
	return nil
}

// Residency reports where an expert's weights are cached, if anywhere.
// Multi-GPU engines hand schedulers one of these so placement can
// follow residency to the owning device.
type Residency func(moe.ExpertID) (hw.Device, bool)

// TasksFromLoads builds the task list for one layer from per-expert
// token loads, using cfg for sizing and isCached for residency. Experts
// with zero load are skipped. Cached experts are attributed to GPU0 —
// the single-GPU convention; use TasksFromLoadsOn when residency is
// spread across devices.
func TasksFromLoads(cfg *moe.Config, layer int, loads []int, isCached func(moe.ExpertID) bool) []Task {
	return TasksFromLoadsOn(cfg, layer, loads, func(id moe.ExpertID) (hw.Device, bool) {
		return hw.GPU, isCached(id)
	})
}

// TasksFromLoadsOn builds the task list with per-device residency:
// cached tasks carry the device holding their copy.
func TasksFromLoadsOn(cfg *moe.Config, layer int, loads []int, residentOn Residency) []Task {
	var tasks []Task
	for e, load := range loads {
		if load == 0 {
			continue
		}
		id := moe.ExpertID{Layer: layer, Index: e}
		dev, cached := residentOn(id)
		if !cached {
			dev = hw.GPU
		}
		tasks = append(tasks, Task{
			ID:     id,
			Load:   load,
			Flops:  cfg.ExpertFlops(load),
			Bytes:  cfg.ExpertBytes(),
			Cached: cached,
			Device: dev,
		})
	}
	return tasks
}
