// Package sched implements the paper's core contribution: the hybrid
// CPU-GPU intra-layer scheduling strategy (§IV-B), alongside the three
// baseline strategies it is evaluated against (llama.cpp-style static
// layer mapping, AdapMoE-style GPU-centric loading, kTransformers-style
// static hybrid mapping).
//
// A scheduler receives the activated experts of one MoE layer as Tasks —
// each with a token load, FLOP count, weight footprint and residency
// flag — plus the platform cost models and the current occupancy of the
// three resource timelines, and produces a Plan: a set of timed
// operations (CPU compute, GPU compute, PCIe transfer) whose makespan is
// the layer's routed-expert latency.
package sched

import (
	"fmt"
	"sort"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
)

// Task is one routed expert's work for the current layer.
type Task struct {
	ID moe.ExpertID
	// Load is the token count routed to this expert (1 at decode).
	Load int
	// Flops is the total compute for Load tokens.
	Flops float64
	// Bytes is the INT4 weight footprint (the transfer size on miss).
	Bytes int64
	// Cached reports GPU residency at scheduling time.
	Cached bool
}

// OpKind classifies plan operations.
type OpKind int

// Operation kinds.
const (
	OpComputeCPU OpKind = iota
	OpComputeGPU
	OpTransfer
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpComputeCPU:
		return "cpu"
	case OpComputeGPU:
		return "gpu"
	case OpTransfer:
		return "xfer"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one scheduled operation with times relative to the layer start.
type Op struct {
	Expert moe.ExpertID
	Kind   OpKind
	Load   int
	Start  float64
	End    float64
}

// Plan is a complete schedule for one layer's routed experts.
type Plan struct {
	Ops []Op
	// Makespan is when the last routed-expert computation finishes,
	// relative to the layer start.
	Makespan float64
	// Transferred lists experts moved to the GPU by this plan (they
	// should be inserted into the expert cache on completion).
	Transferred []moe.ExpertID
}

// Resources carries the occupancy of the three timelines at the moment
// the layer starts, as offsets ≥ 0 relative to the layer start. GPUFree
// is typically positive (attention + shared experts run first); LinkFree
// is positive when a prefetch from an earlier layer still occupies PCIe.
type Resources struct {
	CPUFree  float64
	GPUFree  float64
	LinkFree float64
}

func (r Resources) validate() {
	if r.CPUFree < 0 || r.GPUFree < 0 || r.LinkFree < 0 {
		panic(fmt.Sprintf("sched: negative resource offsets %+v", r))
	}
}

// Scheduler plans one layer.
type Scheduler interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Plan schedules the tasks. Implementations must not retain tasks.
	Plan(tasks []Task, p *hw.Platform, res Resources) *Plan
}

// Validate checks plan invariants against the task list: every task
// computed exactly once, transfers precede their GPU compute, and ops on
// the same resource never overlap. Tests and the engine's debug mode use
// it; it returns nil for a well-formed plan.
func (pl *Plan) Validate(tasks []Task, res Resources) error {
	computed := make(map[moe.ExpertID]int)
	transferred := make(map[moe.ExpertID]float64)
	var cpuOps, gpuOps, xferOps []Op
	for _, op := range pl.Ops {
		switch op.Kind {
		case OpComputeCPU:
			computed[op.Expert]++
			cpuOps = append(cpuOps, op)
		case OpComputeGPU:
			computed[op.Expert]++
			gpuOps = append(gpuOps, op)
		case OpTransfer:
			if _, dup := transferred[op.Expert]; dup {
				return fmt.Errorf("sched: %v transferred twice", op.Expert)
			}
			transferred[op.Expert] = op.End
			xferOps = append(xferOps, op)
		}
		if op.End < op.Start {
			return fmt.Errorf("sched: op %v ends before it starts", op)
		}
	}
	for _, task := range tasks {
		if computed[task.ID] != 1 {
			return fmt.Errorf("sched: task %v computed %d times", task.ID, computed[task.ID])
		}
	}
	if len(computed) != len(tasks) {
		return fmt.Errorf("sched: %d computed experts for %d tasks", len(computed), len(tasks))
	}
	byID := make(map[moe.ExpertID]Task, len(tasks))
	for _, t := range tasks {
		byID[t.ID] = t
	}
	for _, op := range gpuOps {
		task, ok := byID[op.Expert]
		if !ok {
			return fmt.Errorf("sched: GPU op for unknown task %v", op.Expert)
		}
		if !task.Cached {
			end, ok := transferred[op.Expert]
			if !ok {
				return fmt.Errorf("sched: uncached %v computed on GPU without transfer", op.Expert)
			}
			if op.Start < end-1e-9 {
				return fmt.Errorf("sched: %v GPU compute at %v before transfer end %v", op.Expert, op.Start, end)
			}
		}
	}
	for _, op := range xferOps {
		if t := byID[op.Expert]; t.Cached {
			return fmt.Errorf("sched: cached %v transferred", op.Expert)
		}
	}
	checkSerial := func(ops []Op, free float64, what string) error {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
		prevEnd := free
		for _, op := range ops {
			if op.Start < prevEnd-1e-9 {
				return fmt.Errorf("sched: %s ops overlap at %v (prev end %v)", what, op.Start, prevEnd)
			}
			prevEnd = op.End
		}
		return nil
	}
	if err := checkSerial(cpuOps, res.CPUFree, "CPU"); err != nil {
		return err
	}
	if err := checkSerial(gpuOps, res.GPUFree, "GPU"); err != nil {
		return err
	}
	if err := checkSerial(xferOps, res.LinkFree, "PCIe"); err != nil {
		return err
	}
	var maxEnd float64
	for _, op := range pl.Ops {
		if op.Kind != OpTransfer && op.End > maxEnd {
			maxEnd = op.End
		}
	}
	if diff := pl.Makespan - maxEnd; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("sched: makespan %v != last compute end %v", pl.Makespan, maxEnd)
	}
	return nil
}

// TasksFromLoads builds the task list for one layer from per-expert
// token loads, using cfg for sizing and isCached for residency. Experts
// with zero load are skipped.
func TasksFromLoads(cfg *moe.Config, layer int, loads []int, isCached func(moe.ExpertID) bool) []Task {
	var tasks []Task
	for e, load := range loads {
		if load == 0 {
			continue
		}
		id := moe.ExpertID{Layer: layer, Index: e}
		tasks = append(tasks, Task{
			ID:     id,
			Load:   load,
			Flops:  cfg.ExpertFlops(load),
			Bytes:  cfg.ExpertBytes(),
			Cached: isCached(id),
		})
	}
	return tasks
}
