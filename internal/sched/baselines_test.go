package sched

import (
	"math"
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
)

func TestKTransStaticMapping(t *testing.T) {
	p := hw.UnitPlatform()
	tasks := []Task{
		unitTask(0, 2, true),  // GPU
		unitTask(1, 3, false), // CPU
		unitTask(2, 1, false), // CPU
	}
	plan := NewKTransStatic().Plan(tasks, p, Resources{})
	if err := plan.Validate(tasks, Resources{}); err != nil {
		t.Fatal(err)
	}
	for _, op := range plan.Ops {
		switch op.Expert {
		case id(0, 0):
			if op.Kind != OpComputeGPU {
				t.Fatalf("cached expert ran on %v", op.Kind)
			}
		default:
			if op.Kind != OpComputeCPU {
				t.Fatalf("uncached expert ran on %v", op.Kind)
			}
		}
	}
	if len(plan.Transferred) != 0 {
		t.Fatal("static mapping never transfers")
	}
	// CPU serial: 1 + 3 = 4 units; GPU: 1. Makespan 4.
	if math.Abs(plan.Makespan-4) > 1e-9 {
		t.Fatalf("makespan = %v, want 4", plan.Makespan)
	}
}

func TestKTransStaticEdgeCases(t *testing.T) {
	p := hw.UnitPlatform()
	empty := NewKTransStatic().Plan(nil, p, Resources{})
	if empty.Makespan != 0 {
		t.Fatal("empty plan should have zero makespan")
	}
	onlyGPU := []Task{unitTask(0, 2, true)}
	plan := NewKTransStatic().Plan(onlyGPU, p, Resources{})
	if math.Abs(plan.Makespan-1) > 1e-9 {
		t.Fatalf("GPU-only makespan = %v, want 1", plan.Makespan)
	}
	onlyCPU := []Task{unitTask(0, 2, false)}
	plan = NewKTransStatic().Plan(onlyCPU, p, Resources{})
	if math.Abs(plan.Makespan-2) > 1e-9 {
		t.Fatalf("CPU-only makespan = %v, want 2", plan.Makespan)
	}
}

func TestGPUCentricTransfersEverythingMissing(t *testing.T) {
	p := hw.UnitPlatform()
	tasks := []Task{
		unitTask(0, 1, true),
		unitTask(1, 5, false),
		unitTask(2, 2, false),
	}
	plan := NewGPUCentric().Plan(tasks, p, Resources{})
	if err := plan.Validate(tasks, Resources{}); err != nil {
		t.Fatal(err)
	}
	if len(plan.Transferred) != 2 {
		t.Fatalf("transferred = %v, want both misses", plan.Transferred)
	}
	var cpuOps int
	for _, op := range plan.Ops {
		if op.Kind == OpComputeCPU {
			cpuOps++
		}
	}
	if cpuOps != 0 {
		t.Fatal("GPU-centric must not use the CPU")
	}
	// Transfers serialise: 3 + 3 = 6; last compute after t=6.
	if plan.Makespan < 6 {
		t.Fatalf("makespan %v should reflect serialized on-demand loads", plan.Makespan)
	}
	// Highest-load miss transfers first.
	for _, op := range plan.Ops {
		if op.Kind == OpTransfer {
			if op.Expert != id(0, 1) {
				t.Fatalf("first transfer should be the load-5 expert, got %v", op.Expert)
			}
			break
		}
	}
}

func TestGPUCentricCachedOnlyFast(t *testing.T) {
	p := hw.UnitPlatform()
	tasks := []Task{unitTask(0, 4, true), unitTask(1, 2, true)}
	plan := NewGPUCentric().Plan(tasks, p, Resources{})
	if err := plan.Validate(tasks, Resources{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Makespan-2) > 1e-9 {
		t.Fatalf("cached-only GPU makespan = %v, want 2", plan.Makespan)
	}
}

func TestStaticSplitLayers(t *testing.T) {
	p := hw.UnitPlatform()
	split := NewStaticSplit(func(l int) bool { return l < 2 })

	gpuLayer := []Task{
		{ID: id(1, 0), Load: 3, Flops: 3, Bytes: 1, Cached: true},
		{ID: id(1, 1), Load: 1, Flops: 1, Bytes: 1, Cached: true},
	}
	plan := split.Plan(gpuLayer, p, Resources{})
	if err := plan.Validate(gpuLayer, Resources{}); err != nil {
		t.Fatal(err)
	}
	for _, op := range plan.Ops {
		if op.Kind != OpComputeGPU {
			t.Fatalf("GPU layer op on %v", op.Kind)
		}
	}
	if math.Abs(plan.Makespan-2) > 1e-9 {
		t.Fatalf("GPU layer makespan = %v, want 2", plan.Makespan)
	}

	cpuLayer := []Task{
		{ID: id(5, 0), Load: 3, Flops: 3, Bytes: 1, Cached: false},
		{ID: id(5, 1), Load: 1, Flops: 1, Bytes: 1, Cached: false},
	}
	plan = split.Plan(cpuLayer, p, Resources{})
	if err := plan.Validate(cpuLayer, Resources{}); err != nil {
		t.Fatal(err)
	}
	for _, op := range plan.Ops {
		if op.Kind != OpComputeCPU {
			t.Fatalf("CPU layer op on %v", op.Kind)
		}
	}
	if math.Abs(plan.Makespan-4) > 1e-9 {
		t.Fatalf("CPU layer makespan = %v, want 4", plan.Makespan)
	}
	if empty := split.Plan(nil, p, Resources{}); empty.Makespan != 0 {
		t.Fatal("empty layer should be free")
	}
}

// HybriMoE must never lose to kTransformers' static mapping — it
// explores a strict superset of that strategy's choices.
func TestHybriMoEDominatesKTransformers(t *testing.T) {
	rng := stats.NewRNG(555)
	cfg := moe.DeepSeek()
	platforms := []*hw.Platform{hw.A6000Platform(), hw.LaptopPlatform()}
	var winSum float64
	trials := 300
	for trial := 0; trial < trials; trial++ {
		p := platforms[trial%2]
		n := 2 + rng.Intn(8)
		var tasks []Task
		for e := 0; e < n; e++ {
			load := 1
			if rng.Float64() < 0.5 {
				load = 1 + rng.Intn(64)
			}
			tasks = append(tasks, Task{
				ID: id(0, e), Load: load,
				Flops:  cfg.ExpertFlops(load),
				Bytes:  cfg.ExpertBytes(),
				Cached: rng.Float64() < 0.4,
			})
		}
		hybrid := NewHybriMoE().Plan(tasks, p, Resources{}).Makespan
		ktrans := NewKTransStatic().Plan(tasks, p, Resources{}).Makespan
		if hybrid > ktrans+1e-12 {
			t.Fatalf("trial %d: HybriMoE %v slower than kTransformers %v", trial, hybrid, ktrans)
		}
		if ktrans > 0 {
			winSum += ktrans / hybrid
		}
	}
	t.Logf("mean kTransformers/HybriMoE makespan ratio: %.3f", winSum/float64(trials))
	if winSum/float64(trials) < 1.05 {
		t.Error("HybriMoE shows no meaningful advantage over static mapping on mixed loads")
	}
}

func TestExhaustiveRefusesHugeInstances(t *testing.T) {
	var tasks []Task
	for e := 0; e < MaxExhaustiveTasks+1; e++ {
		tasks = append(tasks, unitTask(e, 1, false))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustive should panic above its size bound")
		}
	}()
	NewExhaustive().Plan(tasks, hw.UnitPlatform(), Resources{})
}

func TestExhaustiveEmpty(t *testing.T) {
	plan := NewExhaustive().Plan(nil, hw.UnitPlatform(), Resources{})
	if plan.Makespan != 0 {
		t.Fatal("empty exhaustive plan should be free")
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := map[string]Scheduler{
		"HybriMoE":      NewHybriMoE(),
		"KTransformers": NewKTransStatic(),
		"AdapMoE":       NewGPUCentric(),
		"llama.cpp":     NewStaticSplit(nil),
		"Exhaustive":    NewExhaustive(),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("scheduler name %q, want %q", s.Name(), want)
		}
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	p := hw.UnitPlatform()
	tasks := []Task{unitTask(0, 2, false)}
	plan := NewHybriMoE().Plan(tasks, p, Resources{})
	good := *plan
	// Drop the compute op.
	bad := Plan{Ops: nil, Makespan: 0}
	if err := bad.Validate(tasks, Resources{}); err == nil {
		t.Error("missing compute should fail validation")
	}
	// Tamper with makespan.
	bad2 := good
	bad2.Makespan += 1
	if err := bad2.Validate(tasks, Resources{}); err == nil {
		t.Error("wrong makespan should fail validation")
	}
}
