package sched

import (
	"fmt"
	"sort"

	"hybrimoe/internal/hw"
)

// Exhaustive is a reference scheduler that enumerates every CPU/GPU
// assignment (2^n) and keeps the best plan. Within an assignment it uses
// the same ordering rules as HybriMoE (CPU ascending load, GPU
// descending, transfers descending). It exists to quantify how close the
// greedy simulation gets to the assignment optimum (DESIGN.md ablation
// 1); it is exponential and refuses more than MaxExhaustiveTasks tasks.
type Exhaustive struct{}

// MaxExhaustiveTasks bounds the brute-force search.
const MaxExhaustiveTasks = 14

// NewExhaustive returns the brute-force reference scheduler.
func NewExhaustive() *Exhaustive { return &Exhaustive{} }

// Name implements Scheduler.
func (s *Exhaustive) Name() string { return "Exhaustive" }

// Plan implements Scheduler.
func (s *Exhaustive) Plan(tasks []Task, p *hw.Platform, res Resources) *Plan {
	res.validate()
	if len(tasks) > MaxExhaustiveTasks {
		panic(fmt.Sprintf("sched: exhaustive search over %d tasks (max %d)", len(tasks), MaxExhaustiveTasks))
	}
	if len(tasks) == 0 {
		return &Plan{}
	}
	var best *Plan
	n := len(tasks)
	for mask := 0; mask < 1<<n; mask++ {
		plan := buildAssignment(tasks, p, res, func(i int) bool { return mask&(1<<i) != 0 })
		if plan == nil {
			continue
		}
		if best == nil || plan.Makespan < best.Makespan {
			best = plan
		}
	}
	return best
}

// buildAssignment constructs the plan where onCPU(i) tasks run on the
// CPU and the rest on the GPU (transferring uncached ones), with the
// canonical orderings. It returns nil for infeasible assignments (none
// here, but kept for clarity).
func buildAssignment(tasks []Task, p *hw.Platform, res Resources, onCPU func(int) bool) *Plan {
	plan := &Plan{}
	var cpuTasks, gpuCached, gpuMissed []Task
	for i, t := range tasks {
		switch {
		case onCPU(i):
			cpuTasks = append(cpuTasks, t)
		case t.Cached:
			gpuCached = append(gpuCached, t)
		default:
			gpuMissed = append(gpuMissed, t)
		}
	}
	sort.SliceStable(cpuTasks, func(i, j int) bool { return cpuTasks[i].Load < cpuTasks[j].Load })
	sort.SliceStable(gpuCached, func(i, j int) bool { return gpuCached[i].Load > gpuCached[j].Load })
	sort.SliceStable(gpuMissed, func(i, j int) bool { return gpuMissed[i].Load > gpuMissed[j].Load })

	cpuBusy := res.CPUFree
	for i, t := range cpuTasks {
		end := cpuBusy + p.CPU.ExpertTime(t.Flops, t.Bytes, i == 0)
		plan.Ops = append(plan.Ops, Op{Expert: t.ID, Kind: OpComputeCPU, Load: t.Load, Start: cpuBusy, End: end})
		cpuBusy = end
	}

	linkBusy := res.LinkFree
	type ready struct {
		task Task
		at   float64
	}
	var queue []ready
	for _, t := range gpuCached {
		queue = append(queue, ready{task: t})
	}
	for _, t := range gpuMissed {
		end := linkBusy + p.Links[0].TransferTime(t.Bytes)
		plan.Ops = append(plan.Ops, Op{Expert: t.ID, Kind: OpTransfer, Load: t.Load, Start: linkBusy, End: end})
		plan.Transferred = append(plan.Transferred, t.ID)
		linkBusy = end
		queue = append(queue, ready{task: t, at: end})
	}
	// GPU list-schedules: at each step run the ready highest-load task,
	// or wait for the earliest arrival.
	gpuBusy := res.GPUFree
	for len(queue) > 0 {
		bestIdx := -1
		var bestStart float64
		for i, r := range queue {
			start := maxFloat(gpuBusy, r.at)
			if bestIdx == -1 || start < bestStart {
				bestIdx = i
				bestStart = start
			}
		}
		r := queue[bestIdx]
		queue = append(queue[:bestIdx], queue[bestIdx+1:]...)
		end := bestStart + p.GPUs[0].ExpertTime(r.task.Flops, r.task.Bytes)
		plan.Ops = append(plan.Ops, Op{Expert: r.task.ID, Kind: OpComputeGPU, Load: r.task.Load, Start: bestStart, End: end})
		gpuBusy = end
	}

	for _, op := range plan.Ops {
		if op.Kind != OpTransfer && op.End > plan.Makespan {
			plan.Makespan = op.End
		}
	}
	return plan
}

var _ Scheduler = (*Exhaustive)(nil)
