package sched

import (
	"strings"
	"testing"
)

func TestRegistryRoundTripsBuiltins(t *testing.T) {
	gpuLayer := func(l int) bool { return l < 2 }
	for _, name := range []string{"hybrimoe", "ktrans-static", "gpu-centric", "static-split", "exhaustive"} {
		s, err := New(name, Config{GPULayer: gpuLayer})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s == nil || s.Name() == "" {
			t.Fatalf("New(%q) built a nameless scheduler", name)
		}
	}
	// Names lists exactly the registered set, sorted.
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, want := range []string{"hybrimoe", "static-split"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v missing %q", names, want)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("psychic", Config{})
	if err == nil {
		t.Fatal("unknown scheduler should error")
	}
	// The error names the offender and lists what is available.
	if !strings.Contains(err.Error(), "psychic") || !strings.Contains(err.Error(), "hybrimoe") {
		t.Fatalf("error %q should name the unknown scheduler and the registered ones", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	assertPanics(t, "duplicate", func() {
		Register("hybrimoe", func(Config) Scheduler { return NewHybriMoE() })
	})
	assertPanics(t, "empty name", func() {
		Register("", func(Config) Scheduler { return NewHybriMoE() })
	})
	assertPanics(t, "nil factory", func() {
		Register("nil-factory", nil)
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s Register should panic", name)
		}
	}()
	f()
}

// TestRegisterThirdParty registers a custom scheduler and builds an
// instance through the registry, the drop-in extension path the
// registries exist for.
func TestRegisterThirdParty(t *testing.T) {
	Register("test-third-party", func(Config) Scheduler { return NewGPUCentric() })
	s, err := New("test-third-party", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("third-party factory returned nil")
	}
}
