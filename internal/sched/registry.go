package sched

import (
	"fmt"
	"sort"
)

// Config carries the environment a scheduler factory may consult.
// Factories that need none of it ignore the argument.
type Config struct {
	// GPULayer reports whether a layer is statically mapped to the GPU.
	// Only layer-mapped strategies (the llama.cpp-style static split)
	// consult it; it may be nil otherwise.
	GPULayer func(layer int) bool
}

// Factory builds one scheduler instance for an engine run.
type Factory func(Config) Scheduler

var registry = map[string]Factory{}

// Register makes a scheduler constructible by name through New.
// Registering a duplicate name or a nil factory panics: both are
// programming errors in plugin wiring, caught at init time.
func Register(name string, f Factory) {
	if name == "" {
		panic("sched: Register with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("sched: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sched: Register(%q) called twice", name))
	}
	registry[name] = f
}

// New builds the named scheduler, or returns a descriptive error for an
// unknown name.
func New(name string, c Config) (Scheduler, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return f(c), nil
}

// Names lists the registered schedulers in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("hybrimoe", func(Config) Scheduler { return NewHybriMoE() })
	Register("ktrans-static", func(Config) Scheduler { return NewKTransStatic() })
	Register("gpu-centric", func(Config) Scheduler { return NewGPUCentric() })
	Register("static-split", func(c Config) Scheduler { return NewStaticSplit(c.GPULayer) })
	Register("exhaustive", func(Config) Scheduler { return NewExhaustive() })
	Register("expert-parallel", func(Config) Scheduler { return NewExpertParallel() })
}
