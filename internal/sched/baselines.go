package sched

import (
	"sort"

	"hybrimoe/internal/hw"
)

// KTransStatic reproduces the kTransformers scheduling strategy the
// paper uses as its main baseline: a fixed mapping where GPU-resident
// (cached/pinned) experts run on the GPU and everything else runs on the
// CPU. CPU and GPU proceed in parallel but there is no load balancing,
// no work stealing, and no on-demand transfer — exactly the imbalance of
// Figure 1(b).
type KTransStatic struct{}

// NewKTransStatic returns the kTransformers-style baseline.
func NewKTransStatic() *KTransStatic { return &KTransStatic{} }

// Name implements Scheduler.
func (s *KTransStatic) Name() string { return "KTransformers" }

// Plan implements Scheduler.
func (s *KTransStatic) Plan(tasks []Task, p *hw.Platform, res Resources) *Plan {
	res.validate()
	plan := &Plan{}
	var cpuTasks, gpuTasks []Task
	for _, t := range tasks {
		if t.Cached {
			gpuTasks = append(gpuTasks, t)
		} else {
			cpuTasks = append(cpuTasks, t)
		}
	}
	// Descending load on the GPU (hot experts first), ascending on the
	// CPU; order only affects intra-layer progress, not the makespan.
	sort.SliceStable(gpuTasks, func(i, j int) bool { return gpuTasks[i].Load > gpuTasks[j].Load })
	sort.SliceStable(cpuTasks, func(i, j int) bool { return cpuTasks[i].Load < cpuTasks[j].Load })

	gpuBusy := res.GPUFree
	for _, t := range gpuTasks {
		end := gpuBusy + p.GPUs[0].ExpertTime(t.Flops, t.Bytes)
		plan.Ops = append(plan.Ops, Op{Expert: t.ID, Kind: OpComputeGPU, Load: t.Load, Start: gpuBusy, End: end})
		gpuBusy = end
	}
	cpuBusy := res.CPUFree
	for i, t := range cpuTasks {
		end := cpuBusy + p.CPU.ExpertTime(t.Flops, t.Bytes, i == 0)
		plan.Ops = append(plan.Ops, Op{Expert: t.ID, Kind: OpComputeCPU, Load: t.Load, Start: cpuBusy, End: end})
		cpuBusy = end
	}
	plan.Makespan = maxFloat(gpuBusy, cpuBusy)
	if len(gpuTasks) == 0 {
		plan.Makespan = cpuBusy
	}
	if len(cpuTasks) == 0 {
		plan.Makespan = gpuBusy
	}
	if len(tasks) == 0 {
		plan.Makespan = 0
	}
	return plan
}

// GPUCentric reproduces the AdapMoE-style strategy: every expert runs on
// the GPU; cache misses stall on on-demand PCIe loads (mitigated by
// whatever prefetching and caching the engine layers on top). The CPU
// does no expert computation.
type GPUCentric struct{}

// NewGPUCentric returns the AdapMoE-style baseline.
func NewGPUCentric() *GPUCentric { return &GPUCentric{} }

// Name implements Scheduler.
func (s *GPUCentric) Name() string { return "AdapMoE" }

// Plan implements Scheduler.
func (s *GPUCentric) Plan(tasks []Task, p *hw.Platform, res Resources) *Plan {
	res.validate()
	plan := &Plan{}
	var cached, missed []Task
	for _, t := range tasks {
		if t.Cached {
			cached = append(cached, t)
		} else {
			missed = append(missed, t)
		}
	}
	sort.SliceStable(cached, func(i, j int) bool { return cached[i].Load > cached[j].Load })
	// Highest-load misses transfer first so the GPU's biggest work
	// arrives earliest.
	sort.SliceStable(missed, func(i, j int) bool { return missed[i].Load > missed[j].Load })

	linkBusy := res.LinkFree
	type ready struct {
		task Task
		at   float64
	}
	var pend []ready
	for _, t := range missed {
		end := linkBusy + p.Links[0].TransferTime(t.Bytes)
		plan.Ops = append(plan.Ops, Op{Expert: t.ID, Kind: OpTransfer, Load: t.Load, Start: linkBusy, End: end})
		plan.Transferred = append(plan.Transferred, t.ID)
		linkBusy = end
		pend = append(pend, ready{task: t, at: end})
	}
	// Cached experts are ready immediately.
	for _, t := range cached {
		pend = append([]ready{{task: t}}, pend...)
	}
	// GPU executes in ready order (stable: cached first, then arrival).
	sort.SliceStable(pend, func(i, j int) bool { return pend[i].at < pend[j].at })
	gpuBusy := res.GPUFree
	for _, r := range pend {
		start := maxFloat(gpuBusy, r.at)
		end := start + p.GPUs[0].ExpertTime(r.task.Flops, r.task.Bytes)
		plan.Ops = append(plan.Ops, Op{Expert: r.task.ID, Kind: OpComputeGPU, Load: r.task.Load, Start: start, End: end})
		gpuBusy = end
	}
	plan.Makespan = gpuBusy
	if len(tasks) == 0 {
		plan.Makespan = 0
	}
	return plan
}

// StaticSplit reproduces llama.cpp's strategy: whole layers are mapped
// to the GPU or the CPU ahead of time (the -ngl option). A GPU layer
// executes all its experts on the GPU (its weights are resident by
// construction); a CPU layer executes everything on the CPU. There is no
// intra-layer parallelism across devices at all.
type StaticSplit struct {
	// GPULayer reports whether a layer lives on the GPU.
	GPULayer func(layer int) bool
}

// NewStaticSplit returns the llama.cpp-style baseline with the given
// layer placement.
func NewStaticSplit(gpuLayer func(int) bool) *StaticSplit {
	return &StaticSplit{GPULayer: gpuLayer}
}

// Name implements Scheduler.
func (s *StaticSplit) Name() string { return "llama.cpp" }

// Plan implements Scheduler.
func (s *StaticSplit) Plan(tasks []Task, p *hw.Platform, res Resources) *Plan {
	res.validate()
	plan := &Plan{}
	if len(tasks) == 0 {
		return plan
	}
	layer := tasks[0].ID.Layer
	onGPU := s.GPULayer != nil && s.GPULayer(layer)
	ordered := make([]Task, len(tasks))
	copy(ordered, tasks)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Load > ordered[j].Load })
	if onGPU {
		gpuBusy := res.GPUFree
		for _, t := range ordered {
			end := gpuBusy + p.GPUs[0].ExpertTime(t.Flops, t.Bytes)
			plan.Ops = append(plan.Ops, Op{Expert: t.ID, Kind: OpComputeGPU, Load: t.Load, Start: gpuBusy, End: end})
			gpuBusy = end
		}
		plan.Makespan = gpuBusy
		return plan
	}
	cpuBusy := res.CPUFree
	for i, t := range ordered {
		end := cpuBusy + p.CPU.ExpertTime(t.Flops, t.Bytes, i == 0)
		plan.Ops = append(plan.Ops, Op{Expert: t.ID, Kind: OpComputeCPU, Load: t.Load, Start: cpuBusy, End: end})
		cpuBusy = end
	}
	plan.Makespan = cpuBusy
	return plan
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

var (
	_ Scheduler = (*KTransStatic)(nil)
	_ Scheduler = (*GPUCentric)(nil)
	_ Scheduler = (*StaticSplit)(nil)
)
