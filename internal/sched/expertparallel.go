package sched

import (
	"sort"

	"hybrimoe/internal/hw"
)

// ExpertParallel generalises the paper's greedy hybrid scheduler to
// N-GPU platforms: experts are placed across the GPUs by load ×
// residency. Cached experts run on the device holding their weights
// (moving them would pay a transfer the cache already spent); uncached
// experts start on the CPU queue and the per-device host links
// compete to pull the heaviest ones onto whichever GPU — priced by
// that device's own link model — would finish them earliest. The
// planning loop is the same earliest-completion greedy simulation as
// HybriMoE, with one compute timeline per GPU and one transfer
// timeline per link; on a single-GPU platform it degenerates to the
// HybriMoE greedy pass.
type ExpertParallel struct{}

// NewExpertParallel returns the multi-GPU placement scheduler.
func NewExpertParallel() *ExpertParallel { return &ExpertParallel{} }

// Name implements Scheduler.
func (s *ExpertParallel) Name() string { return "expert-parallel" }

// PlansDevices marks the scheduler device-aware (sched.DeviceAware).
func (s *ExpertParallel) PlansDevices() {}

// Plan implements Scheduler.
func (s *ExpertParallel) Plan(tasks []Task, p *hw.Platform, res Resources) *Plan {
	res.validate()
	plan := &Plan{}
	if len(tasks) == 0 {
		return plan
	}
	n := p.NumGPUs()
	if n < 1 {
		n = 1
	}

	// CPU queue: uncached, ascending load. Per-GPU queues: cached on
	// that device, descending load.
	var cpuQ []Task
	gpuQ := make([][]gpuEntry, n)
	for _, t := range tasks {
		if t.Cached {
			d := t.Device.GPUIndex()
			if d >= n {
				// Residency on a device the platform does not carry is a
				// wiring bug upstream; fold onto GPU0 rather than panic so
				// a stale cache entry cannot take the serving loop down.
				d = 0
			}
			gpuQ[d] = append(gpuQ[d], gpuEntry{task: t})
		} else {
			cpuQ = append(cpuQ, t)
		}
	}
	sort.SliceStable(cpuQ, func(i, j int) bool { return cpuQ[i].Load < cpuQ[j].Load })
	for d := range gpuQ {
		q := gpuQ[d]
		sort.SliceStable(q, func(i, j int) bool { return q[i].task.Load > q[j].task.Load })
	}

	cpuBusy := res.CPUFree
	gpuBusy := make([]float64, n)
	linkBusy := make([]float64, n)
	for d := 0; d < n; d++ {
		gpuBusy[d] = res.GPUFreeAt(hw.GPUAt(d))
		linkBusy[d] = res.LinkFreeAt(hw.GPUAt(d))
	}
	cpuFirst := true

	appendOp := func(op Op) {
		plan.Ops = append(plan.Ops, op)
		if op.Kind != OpTransfer && op.End > plan.Makespan {
			plan.Makespan = op.End
		}
	}
	remaining := func() bool {
		if len(cpuQ) > 0 {
			return true
		}
		for _, q := range gpuQ {
			if len(q) > 0 {
				return true
			}
		}
		return false
	}

	const none = -1
	const eps = 1e-15
	for remaining() {
		// Candidate A: CPU computes its queue head, or steals the
		// globally lowest-load cached (non-in-flight) expert.
		cpuHead := len(cpuQ) > 0
		stealDev, stealIdx := none, none
		var cpuFin float64
		if cpuHead {
			t := cpuQ[0]
			cpuFin = cpuBusy + p.CPU.ExpertTime(t.Flops, t.Bytes, cpuFirst)
		} else {
			for d, q := range gpuQ {
				// Queues are load-descending: scan from the back for the
				// device's lowest-load stealable entry.
				for i := len(q) - 1; i >= 0; i-- {
					if q[i].viaTransfer {
						continue
					}
					if stealDev == none || q[i].task.Load < gpuQ[stealDev][stealIdx].task.Load {
						stealDev, stealIdx = d, i
					}
					break
				}
			}
			if stealDev != none {
				t := gpuQ[stealDev][stealIdx].task
				cpuFin = cpuBusy + p.CPU.ExpertTime(t.Flops, t.Bytes, cpuFirst)
			}
		}

		// Candidates B_d: each GPU computes its earliest-startable queue
		// entry (the queue is load-ordered, so the first minimal-start
		// entry wins ties on load).
		gpuIdx := make([]int, n)
		gpuStart := make([]float64, n)
		gpuFin := make([]float64, n)
		for d, q := range gpuQ {
			gpuIdx[d] = none
			for i, e := range q {
				start := gpuBusy[d]
				if e.readyAt > start {
					start = e.readyAt
				}
				if gpuIdx[d] == none || start < gpuStart[d]-eps {
					gpuIdx[d] = i
					gpuStart[d] = start
					gpuFin[d] = start + p.GPUs[d].ExpertTime(e.task.Flops, e.task.Bytes)
				}
			}
		}

		// Candidate C: transfer the highest-load uncached expert (the
		// CPU queue tail) to the device that would have it compute-ready
		// earliest, priced by that device's own link.
		xferDev := none
		var xferFin float64
		if len(cpuQ) > 0 {
			t := cpuQ[len(cpuQ)-1]
			var bestReady float64
			for d := 0; d < n; d++ {
				fin := linkBusy[d] + p.Links[d].TransferTime(t.Bytes)
				ready := fin
				if gpuBusy[d] > ready {
					ready = gpuBusy[d]
				}
				if xferDev == none || ready < bestReady-eps {
					xferDev = d
					bestReady = ready
					xferFin = fin
				}
			}
		}

		// Commit the earliest-finishing candidate; ties prefer CPU, then
		// GPUs in device order, then the transfer (matching the paper's
		// walk-through, which keeps the CPU busy on cheap uncached work).
		best := none // 0 = CPU, 1..n = GPU d-1, n+1 = transfer
		var bestFin float64
		consider := func(kind int, fin float64, ok bool) {
			if !ok {
				return
			}
			if best == none || fin < bestFin-eps {
				best = kind
				bestFin = fin
			}
		}
		consider(0, cpuFin, cpuHead || stealDev != none)
		for d := 0; d < n; d++ {
			consider(1+d, gpuFin[d], gpuIdx[d] != none)
		}
		consider(1+n, xferFin, xferDev != none)

		switch {
		case best == 0:
			var t Task
			if cpuHead {
				t = cpuQ[0]
				cpuQ = cpuQ[1:]
			} else {
				t = gpuQ[stealDev][stealIdx].task
				gpuQ[stealDev] = append(gpuQ[stealDev][:stealIdx], gpuQ[stealDev][stealIdx+1:]...)
			}
			appendOp(Op{Expert: t.ID, Kind: OpComputeCPU, Load: t.Load, Start: cpuBusy, End: cpuFin})
			cpuBusy = cpuFin
			cpuFirst = false
		case best >= 1 && best <= n:
			d := best - 1
			e := gpuQ[d][gpuIdx[d]]
			gpuQ[d] = append(gpuQ[d][:gpuIdx[d]], gpuQ[d][gpuIdx[d]+1:]...)
			appendOp(Op{Expert: e.task.ID, Kind: OpComputeGPU, Load: e.task.Load,
				Start: gpuStart[d], End: gpuFin[d], Device: hw.GPUAt(d)})
			gpuBusy[d] = gpuFin[d]
		case best == 1+n:
			t := cpuQ[len(cpuQ)-1]
			cpuQ = cpuQ[:len(cpuQ)-1]
			appendOp(Op{Expert: t.ID, Kind: OpTransfer, Load: t.Load,
				Start: linkBusy[xferDev], End: xferFin, Device: hw.GPUAt(xferDev)})
			linkBusy[xferDev] = xferFin
			plan.Transferred = append(plan.Transferred, t.ID)
			// Insert into the target GPU's queue keeping descending load
			// order.
			entry := gpuEntry{task: t, readyAt: xferFin, viaTransfer: true}
			q := gpuQ[xferDev]
			pos := sort.Search(len(q), func(i int) bool { return q[i].task.Load < t.Load })
			q = append(q, gpuEntry{})
			copy(q[pos+1:], q[pos:])
			q[pos] = entry
			gpuQ[xferDev] = q
		default:
			panic("sched: no candidate operation (scheduler bug)")
		}
	}
	return plan
}

var _ DeviceAware = (*ExpertParallel)(nil)
