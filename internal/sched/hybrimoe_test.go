package sched

import (
	"math"
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
)

func id(l, e int) moe.ExpertID { return moe.ExpertID{Layer: l, Index: e} }

// unitTask builds a task on the unit platform where Flops == load units
// of CPU time and Bytes == 1 (one 3-unit transfer).
func unitTask(e, load int, cached bool) Task {
	return Task{ID: id(0, e), Load: load, Flops: float64(load), Bytes: 1, Cached: cached}
}

// TestPaperFigure5Example replays the paper's scheduling walk-through:
// uncached A:1, B:1, C:3 and cached D:4, E:1 on a platform where GPU
// compute is 1 unit per expert, CPU compute equals the load, and a
// transfer takes 3 units. The optimal strategy computes A and B on the
// CPU, transfers C to the GPU, and finishes everything by t=4.
func TestPaperFigure5Example(t *testing.T) {
	p := hw.UnitPlatform()
	tasks := []Task{
		unitTask(0, 1, false), // A
		unitTask(1, 1, false), // B
		unitTask(2, 3, false), // C
		unitTask(3, 4, true),  // D
		unitTask(4, 1, true),  // E
	}
	plan := NewHybriMoE().Plan(tasks, p, Resources{})
	if err := plan.Validate(tasks, Resources{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Makespan-4) > 1e-9 {
		t.Fatalf("makespan = %v, want 4 (paper's optimum)\nops: %+v", plan.Makespan, plan.Ops)
	}
	// C must reach the GPU via transfer, not be ground out on the CPU.
	var cOnGPU, cTransferred bool
	for _, op := range plan.Ops {
		if op.Expert == id(0, 2) {
			switch op.Kind {
			case OpComputeGPU:
				cOnGPU = true
			case OpTransfer:
				cTransferred = true
			}
		}
	}
	if !cOnGPU || !cTransferred {
		t.Fatalf("expert C should be loaded to the GPU instead of computed on CPU\nops: %+v", plan.Ops)
	}
	// A and B run on the CPU.
	for _, e := range []int{0, 1} {
		found := false
		for _, op := range plan.Ops {
			if op.Expert == id(0, e) && op.Kind == OpComputeCPU {
				found = true
			}
		}
		if !found {
			t.Fatalf("low-load uncached expert %d should run on CPU", e)
		}
	}
}

func TestHybriMoEEmptyPlan(t *testing.T) {
	plan := NewHybriMoE().Plan(nil, hw.UnitPlatform(), Resources{})
	if plan.Makespan != 0 || len(plan.Ops) != 0 {
		t.Fatal("empty task list should give empty plan")
	}
}

func TestHybriMoEAllCached(t *testing.T) {
	p := hw.UnitPlatform()
	tasks := []Task{unitTask(0, 5, true), unitTask(1, 1, true), unitTask(2, 2, true)}
	plan := NewHybriMoE().Plan(tasks, p, Resources{})
	if err := plan.Validate(tasks, Resources{}); err != nil {
		t.Fatal(err)
	}
	// 3 cached experts: GPU alone takes 3 units; the CPU can steal the
	// low-load ones. Optimal is 2 (GPU computes 2, CPU steals 1) — the
	// greedy must do no worse than GPU-only.
	if plan.Makespan > 3+1e-9 {
		t.Fatalf("makespan %v worse than trivial GPU-only bound 3", plan.Makespan)
	}
	if len(plan.Transferred) != 0 {
		t.Fatal("cached-only layer must not transfer")
	}
}

func TestHybriMoECPUStealsCachedWhenIdle(t *testing.T) {
	p := hw.UnitPlatform()
	// Only cached experts, many of them: the CPU should pick up some
	// low-load ones rather than idle (paper's CPU priority rule).
	var tasks []Task
	for e := 0; e < 6; e++ {
		tasks = append(tasks, unitTask(e, 1, true))
	}
	plan := NewHybriMoE().Plan(tasks, p, Resources{})
	if err := plan.Validate(tasks, Resources{}); err != nil {
		t.Fatal(err)
	}
	var cpuOps int
	for _, op := range plan.Ops {
		if op.Kind == OpComputeCPU {
			cpuOps++
		}
	}
	if cpuOps == 0 {
		t.Fatalf("CPU stayed idle with 6 cached unit tasks:\n%+v", plan.Ops)
	}
	if plan.Makespan > 4+1e-9 {
		t.Fatalf("steal-balanced makespan %v, want ≤4", plan.Makespan)
	}
}

func TestHybriMoEAllUncachedDecode(t *testing.T) {
	// Decode-style: unit loads, all missing. With transfer=3 and CPU=1
	// per task, the CPU should do nearly everything.
	p := hw.UnitPlatform()
	var tasks []Task
	for e := 0; e < 4; e++ {
		tasks = append(tasks, unitTask(e, 1, false))
	}
	plan := NewHybriMoE().Plan(tasks, p, Resources{})
	if err := plan.Validate(tasks, Resources{}); err != nil {
		t.Fatal(err)
	}
	if plan.Makespan > 4+1e-9 {
		t.Fatalf("decode makespan %v, want ≤4 (CPU serial bound)", plan.Makespan)
	}
}

func TestHybriMoERespectsResourceOffsets(t *testing.T) {
	p := hw.UnitPlatform()
	tasks := []Task{unitTask(0, 2, true)}
	// GPU busy until t=10 (attention/shared experts): the CPU should
	// steal the single cached expert rather than wait.
	plan := NewHybriMoE().Plan(tasks, p, Resources{GPUFree: 10})
	if err := plan.Validate(tasks, Resources{GPUFree: 10}); err != nil {
		t.Fatal(err)
	}
	if plan.Makespan > 2+1e-9 {
		t.Fatalf("makespan %v: scheduler waited for busy GPU instead of stealing", plan.Makespan)
	}
	if plan.Ops[0].Kind != OpComputeCPU {
		t.Fatalf("expected CPU steal, got %+v", plan.Ops)
	}
}

func TestHybriMoENegativeResourcesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative resources should panic")
		}
	}()
	NewHybriMoE().Plan(nil, hw.UnitPlatform(), Resources{CPUFree: -1})
}

func TestHybriMoECPUWarmupAppliedOnce(t *testing.T) {
	p := hw.A6000Platform()
	cfg := moe.DeepSeek()
	var tasks []Task
	for e := 0; e < 4; e++ {
		tasks = append(tasks, Task{
			ID: id(0, e), Load: 1,
			Flops: cfg.ExpertFlops(1), Bytes: cfg.ExpertBytes(),
			Cached: false,
		})
	}
	plan := NewHybriMoE().Plan(tasks, p, Resources{})
	var cpuSpans []Op
	for _, op := range plan.Ops {
		if op.Kind == OpComputeCPU {
			cpuSpans = append(cpuSpans, op)
		}
	}
	if len(cpuSpans) < 2 {
		t.Skip("not enough CPU ops to compare")
	}
	first := cpuSpans[0].End - cpuSpans[0].Start
	second := cpuSpans[1].End - cpuSpans[1].Start
	if first <= second {
		t.Fatalf("first CPU op (%v) should pay the warm-up over the second (%v)", first, second)
	}
}

// The greedy simulation should stay close to the exhaustive assignment
// optimum on small random instances (DESIGN.md ablation 1).
func TestHybriMoENearOptimal(t *testing.T) {
	p := hw.UnitPlatform()
	rng := stats.NewRNG(314)
	var worst float64
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		var tasks []Task
		for e := 0; e < n; e++ {
			tasks = append(tasks, unitTask(e, 1+rng.Intn(6), rng.Float64() < 0.5))
		}
		greedy := NewHybriMoE().Plan(tasks, p, Resources{})
		if err := greedy.Validate(tasks, Resources{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		optimal := NewExhaustive().Plan(tasks, p, Resources{})
		if optimal.Makespan <= 0 {
			continue
		}
		ratio := greedy.Makespan / optimal.Makespan
		if ratio < 1-1e-9 {
			t.Fatalf("trial %d: greedy %v beat 'optimal' %v — exhaustive reference broken",
				trial, greedy.Makespan, optimal.Makespan)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Logf("worst greedy/optimal ratio over 200 trials: %.3f", worst)
	if worst > 1.5 {
		t.Fatalf("greedy strays %.2fx from optimum — priority rules broken", worst)
	}
}

// Property: plans validate for arbitrary task mixes on both realistic
// platforms.
func TestHybriMoEPlanAlwaysValid(t *testing.T) {
	platforms := []*hw.Platform{hw.A6000Platform(), hw.LaptopPlatform(), hw.UnitPlatform()}
	rng := stats.NewRNG(271)
	cfg := moe.Mixtral()
	for trial := 0; trial < 300; trial++ {
		p := platforms[trial%len(platforms)]
		n := 1 + rng.Intn(10)
		var tasks []Task
		for e := 0; e < n; e++ {
			load := 1 + rng.Intn(100)
			tasks = append(tasks, Task{
				ID: id(trial%32, e), Load: load,
				Flops:  cfg.ExpertFlops(load),
				Bytes:  cfg.ExpertBytes(),
				Cached: rng.Float64() < 0.4,
			})
		}
		res := Resources{
			CPUFree:  rng.Float64() * 1e-3,
			GPUFree:  rng.Float64() * 1e-3,
			LinkFree: rng.Float64() * 1e-3,
		}
		plan := NewHybriMoE().Plan(tasks, p, res)
		if err := plan.Validate(tasks, res); err != nil {
			t.Fatalf("trial %d on %s: %v", trial, p.Name, err)
		}
	}
}

func TestSimulateMakespanCachedOverride(t *testing.T) {
	p := hw.UnitPlatform()
	tasks := []Task{unitTask(0, 3, false)}
	base := SimulateMakespan(NewHybriMoE(), tasks, p, Resources{}, nil)
	// Pretend the expert were cached: makespan should drop to 1 GPU unit
	// (or the CPU steal at 3 — GPU is faster).
	cached := SimulateMakespan(NewHybriMoE(), tasks, p, Resources{},
		map[moe.ExpertID]bool{id(0, 0): true})
	if cached >= base {
		t.Fatalf("caching override should shrink makespan: %v vs %v", cached, base)
	}
	if math.Abs(cached-1) > 1e-9 {
		t.Fatalf("cached makespan = %v, want 1", cached)
	}
	// The override must not mutate the caller's tasks.
	if tasks[0].Cached {
		t.Fatal("SimulateMakespan mutated input tasks")
	}
}

func TestTasksFromLoads(t *testing.T) {
	cfg := moe.DeepSeek()
	loads := make([]int, cfg.RoutedExperts)
	loads[3] = 5
	loads[7] = 1
	tasks := TasksFromLoads(cfg, 2, loads, func(e moe.ExpertID) bool { return e.Index == 3 })
	if len(tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(tasks))
	}
	if tasks[0].ID != id(2, 3) || !tasks[0].Cached || tasks[0].Load != 5 {
		t.Fatalf("task[0] = %+v", tasks[0])
	}
	if tasks[1].ID != id(2, 7) || tasks[1].Cached {
		t.Fatalf("task[1] = %+v", tasks[1])
	}
	if tasks[0].Flops != cfg.ExpertFlops(5) || tasks[0].Bytes != cfg.ExpertBytes() {
		t.Fatal("task sizing wrong")
	}
}

func TestOpKindString(t *testing.T) {
	if OpComputeCPU.String() != "cpu" || OpComputeGPU.String() != "gpu" || OpTransfer.String() != "xfer" {
		t.Fatal("op kind names wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatal("unknown op kind formatting")
	}
}
