package engine

import (
	"testing"

	"hybrimoe/internal/workload"
)

// TestSessionPrefillExportRoundTrip pins the stage-split contract: an
// export-mode session runs prefills only, marking each prefill event
// Migrated (never Done, never decoding), and parks the checkpointed
// requests for ExportPrefilled; a second session adopts them via
// SubmitPrefilled and serves exactly the decode tokens, never
// re-prefilling.
func TestSessionPrefillExportRoundTrip(t *testing.T) {
	src := reclaimEngine(t).NewSession(WithPrefillExport())
	reqs := []workload.Request{
		{ID: 0, PromptTokens: 64, DecodeTokens: 3, Arrival: 0.01},
		{ID: 1, PromptTokens: 32, DecodeTokens: 2, Arrival: 0.02},
	}
	src.Submit(reqs...)
	migrated := 0
	src.Run(func(ev StepEvent) {
		switch ev.Phase {
		case PhasePrefill:
			if !ev.Migrated {
				t.Fatalf("export-mode prefill not marked Migrated: %+v", ev)
			}
			if ev.Done {
				t.Fatalf("migrated prefill marked Done: %+v", ev)
			}
			migrated++
		case PhaseDecode:
			t.Fatalf("export-mode session decoded: %+v", ev)
		}
	})
	if migrated != len(reqs) {
		t.Fatalf("%d Migrated prefill events, want %d", migrated, len(reqs))
	}
	if got := src.Pending(); got != len(reqs) {
		t.Fatalf("Pending() = %d with %d undrained exports", got, len(reqs))
	}

	exported := src.ExportPrefilled()
	if len(exported) != len(reqs) {
		t.Fatalf("exported %d requests, want %d", len(exported), len(reqs))
	}
	for i, r := range exported {
		ck := r.Checkpoint
		if ck == nil {
			t.Fatalf("exported request %d has no checkpoint", r.ID)
		}
		if ck.PromptConsumed != reqs[i].PromptTokens || ck.Context != reqs[i].PromptTokens {
			t.Fatalf("request %d checkpoint consumed/context = %d/%d, want %d",
				r.ID, ck.PromptConsumed, ck.Context, reqs[i].PromptTokens)
		}
		if ck.KVBytes <= 0 {
			t.Fatalf("request %d checkpoint carries no KV bytes", r.ID)
		}
		if len(ck.Experts) == 0 {
			t.Fatalf("request %d checkpoint carries no working set", r.ID)
		}
		if ck.TTFT <= 0 {
			t.Fatalf("request %d checkpoint TTFT = %g, want positive", r.ID, ck.TTFT)
		}
		if err := ck.Validate(); err != nil {
			t.Fatalf("exported checkpoint invalid: %v", err)
		}
	}
	if src.Pending() != 0 {
		t.Fatalf("Pending() = %d after the export drain", src.Pending())
	}
	if again := src.ExportPrefilled(); again != nil {
		t.Fatalf("second drain returned %d requests", len(again))
	}

	dst := reclaimEngine(t).NewSession()
	dst.SubmitPrefilled(exported...)
	decodes := map[int]int{}
	done := map[int]bool{}
	dst.Run(func(ev StepEvent) {
		switch ev.Phase {
		case PhasePrefill:
			t.Fatalf("adopted request prefilled again: %+v", ev)
		case PhaseDecode:
			decodes[ev.Request]++
			if ev.Done {
				done[ev.Request] = true
			}
		}
	})
	for _, r := range exported {
		if decodes[r.ID] != r.DecodeTokens {
			t.Fatalf("request %d ran %d decode steps, want %d", r.ID, decodes[r.ID], r.DecodeTokens)
		}
		if !done[r.ID] {
			t.Fatalf("adopted request %d never completed", r.ID)
		}
	}
	if dst.Pending() != 0 {
		t.Fatalf("%d pending after the adopting session drained", dst.Pending())
	}
}

// TestSessionReclaimExported pins the lifecycle corner the fleet's kill
// path rides: a checkpointed-but-unmigrated export is returned by
// Reclaim with its Checkpoint attached, in submission order alongside
// fresh unstarted requests, while a partially-prefilled in-flight
// request stays and finishes.
func TestSessionReclaimExported(t *testing.T) {
	s := reclaimEngine(t).NewSession(WithPrefillExport())
	s.Submit(
		workload.Request{ID: 0, PromptTokens: 32, DecodeTokens: 2},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 2},
	)
	if _, ok := s.Step(); !ok {
		t.Fatal("session refused its first step")
	}
	got := s.Reclaim()
	if len(got) != 2 {
		t.Fatalf("reclaimed %d requests, want 2", len(got))
	}
	if got[0].ID != 0 || got[0].Checkpoint == nil {
		t.Fatalf("reclaimed[0] = %+v, want exported request 0 with checkpoint", got[0])
	}
	if got[0].Checkpoint.Context != 32 {
		t.Fatalf("reclaimed checkpoint context = %d, want 32", got[0].Checkpoint.Context)
	}
	if got[1].ID != 1 || got[1].Checkpoint != nil {
		t.Fatalf("reclaimed[1] = %+v, want unstarted request 1 without checkpoint", got[1])
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after full reclaim", s.Pending())
	}
}

// TestSessionReclaimAdopted pins the other half of the kill corner: an
// adopted request that has not started its decode comes back from
// Reclaim with its Checkpoint intact (the caller decides whether the KV
// state is still reachable), while one mid-decode stays in flight.
func TestSessionReclaimAdopted(t *testing.T) {
	src := reclaimEngine(t).NewSession(WithPrefillExport())
	src.Submit(
		workload.Request{ID: 0, PromptTokens: 32, DecodeTokens: 2},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 2},
	)
	src.Run(nil)
	exported := src.ExportPrefilled()
	if len(exported) != 2 {
		t.Fatalf("exported %d requests, want 2", len(exported))
	}

	dst := reclaimEngine(t).NewSession(WithMaxConcurrent(1))
	dst.SubmitPrefilled(exported...)
	if _, ok := dst.Step(); !ok {
		t.Fatal("adopting session refused its first step")
	}
	got := dst.Reclaim()
	if len(got) != 1 {
		t.Fatalf("reclaimed %d adopted requests, want the 1 unstarted", len(got))
	}
	if got[0].ID != 1 || got[0].Checkpoint == nil {
		t.Fatalf("reclaimed[0] = %+v, want request 1 with checkpoint intact", got[0])
	}
	done := map[int]bool{}
	dst.Run(func(ev StepEvent) {
		if ev.Done {
			done[ev.Request] = true
		}
	})
	if len(done) != 1 || !done[0] {
		t.Fatalf("post-reclaim completions %v, want exactly request 0", done)
	}
}

// TestSubmitPrefilledRejectsCheckpointless pins the misuse panic.
func TestSubmitPrefilledRejectsCheckpointless(t *testing.T) {
	s := reclaimEngine(t).NewSession()
	defer func() {
		if recover() == nil {
			t.Fatal("SubmitPrefilled without a checkpoint did not panic")
		}
	}()
	s.SubmitPrefilled(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 2})
}
