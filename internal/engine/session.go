package engine

import (
	"fmt"

	"hybrimoe/internal/report"
	"hybrimoe/internal/reqsched"
	"hybrimoe/internal/trace"
	"hybrimoe/internal/workload"
)

// Phase labels which serving stage a step event belongs to.
type Phase int

// Serving stages.
const (
	// PhasePrefill is the prompt forward; its latency is the request's
	// TTFT.
	PhasePrefill Phase = iota
	// PhaseDecode is one token-generation iteration; its latency is one
	// TBT observation.
	PhaseDecode
	// PhaseShed records an admission rejection: the request was dropped
	// before running anything. The event carries zero tokens and
	// latency, Done is set, and no further event mentions the request.
	PhaseShed
	// PhaseDeferred records the first time admission delayed a request;
	// later deferrals of the same request only increment the session's
	// Deferred counter.
	PhaseDeferred
)

// String returns the stage name experiment tables use.
func (p Phase) String() string {
	switch p {
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	case PhaseShed:
		return "shed"
	case PhaseDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// StepEvent reports one engine iteration of a Session run: which
// request advanced, in which stage, what it cost, and what the cache
// and devices did during it. Serving studies derive TTFT and TBT
// percentiles from the event stream instead of per-run means.
type StepEvent struct {
	// Request is the workload request ID this step served.
	Request int
	// Phase is the serving stage of this step.
	Phase Phase
	// Index is 0 for prefill and the decode-step ordinal (0-based)
	// within the request otherwise.
	Index int
	// Tokens is the number of tokens processed this step (the prompt
	// length at prefill, 1 at decode).
	Tokens int
	// Latency is the simulated wall-clock cost of the step in seconds.
	Latency float64
	// Start and End are absolute simulation-clock bounds of the step.
	Start, End float64
	// Hits and Misses count expert-cache lookups during this step.
	Hits, Misses int64
	// CPUBusy, GPUBusy and LinkBusy report how far each resource's
	// occupancy frontier advanced during this step (seconds).
	CPUBusy, GPUBusy, LinkBusy float64
	// Deadline echoes the request's completion deadline (0 when none),
	// so consumers can count SLO violations — End past Deadline on the
	// Done event — without a side table.
	Deadline float64
	// Done marks the request's final step (or its shed record).
	Done bool
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithMaxConcurrent admits up to n requests at once; their prefill and
// decode steps interleave round-robin, sharing the expert cache, the
// way a continuously-batched server mixes phases. The default of 1
// serves requests strictly in order. n < 1 panics.
func WithMaxConcurrent(n int) SessionOption {
	if n < 1 {
		panic(fmt.Sprintf("engine: WithMaxConcurrent(%d) must be at least 1", n))
	}
	return func(s *Session) { s.maxConcurrent = n }
}

// sessionRequest tracks one admitted request's progress.
type sessionRequest struct {
	req       workload.Request
	prefilled bool
	decoded   int
	seq       int  // admission order, the schedulers' final tie-break
	deferred  bool // a PhaseDeferred event has been emitted
}

func (r *sessionRequest) done() bool {
	prefillDone := r.prefilled || r.req.PromptTokens <= 0
	return prefillDone && r.decoded >= r.req.DecodeTokens
}

// Session is the streaming run loop: requests are submitted (up front
// or while running), pass the admission policy, enter the active set up
// to the concurrency limit, and are advanced one engine iteration per
// Step call — the request picked by the configured request scheduler,
// running a prefill forward or a single decode step — with a StepEvent
// emitted for each. The expert cache, trace generator and device clocks
// carry state across requests, the state a long-running server would
// have.
type Session struct {
	e             *Engine
	pending       []*sessionRequest
	active        []*sessionRequest
	sched         reqsched.Scheduler
	adm           AdmissionPolicy
	maxConcurrent int
	steps         int
	nextSeq       int
	// admEvents queues shed/deferral records for emission, one per Step
	// call, ahead of compute steps.
	admEvents []StepEvent
	// ttfts and tbts accumulate the live latency observations admission
	// snapshots quantile over (sorted incrementally, queried per step).
	ttfts, tbts report.Live
	shed        int
	deferred    int
}

// NewSession starts a streaming run loop on the engine, with the
// request scheduler and admission policy the engine was constructed
// with (WithRequestScheduler, WithAdmission). An engine should drive
// one session (or the Run* compatibility wrappers) at a time;
// interleaving several corrupts none of the accounting but makes the
// shared clock meaningless.
func (e *Engine) NewSession(opts ...SessionOption) *Session {
	rs, err := reqsched.New(e.set.reqSched)
	if err != nil {
		// WithRequestScheduler validated the name at construction; only
		// a corrupted settings struct reaches here.
		panic(fmt.Sprintf("engine: request scheduler vanished from registry: %v", err))
	}
	s := &Session{e: e, sched: rs, adm: e.set.admission, maxConcurrent: 1}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Submit enqueues requests. It may be called before the first Step or
// at any point during the run (a live request stream). A request with
// PromptTokens <= 0 skips prefill (a decode-only burst); one with
// DecodeTokens <= 0 stops after prefill.
func (s *Session) Submit(reqs ...workload.Request) {
	for _, r := range reqs {
		s.pending = append(s.pending, &sessionRequest{req: r})
	}
}

// Pending reports how many submitted requests have not yet finished
// (shed requests no longer count).
func (s *Session) Pending() int { return len(s.pending) + len(s.active) }

// Steps reports how many step events the session has emitted,
// shed/deferral records included.
func (s *Session) Steps() int { return s.steps }

// Shed reports how many requests the admission policy dropped.
func (s *Session) Shed() int { return s.shed }

// Deferred reports how many deferral verdicts the admission policy
// returned (a single request deferred across n admission passes counts
// n times; its PhaseDeferred event is emitted once).
func (s *Session) Deferred() int { return s.deferred }

// Scheduler reports the request-scheduling policy driving this session.
func (s *Session) Scheduler() string { return s.sched.Name() }

// snapshot assembles the live-quantile view an admission decision sees.
func (s *Session) snapshot() SLOSnapshot {
	return SLOSnapshot{
		Now:    s.e.clock,
		TTFT:   s.ttfts.Stats(),
		TBT:    s.tbts.Stats(),
		Active: len(s.active),
		Queued: len(s.pending),
	}
}

// admit moves pending requests into the active set up to the
// concurrency limit, consulting the admission policy when one is
// installed. Requests with no work at all (neither prompt nor decode
// tokens) are dropped rather than granted a phantom step. A deferred
// request stays at the head of the queue — admission is order-
// preserving, so later arrivals wait behind it — unless nothing is
// active, in which case it is admitted anyway: with no work in flight
// the quantiles can never recover, and the loop must make progress.
func (s *Session) admit() {
	// The latency quantiles and clock are invariant across one admission
	// pass (no step runs in between); snapshot them once and refresh
	// only the queue depths per decision.
	var snap SLOSnapshot
	if s.adm != nil && len(s.pending) > 0 {
		snap = s.snapshot()
	}
	for len(s.active) < s.maxConcurrent && len(s.pending) > 0 {
		r := s.pending[0]
		if r.done() {
			s.pending = s.pending[1:]
			continue
		}
		if s.adm != nil {
			snap.Active, snap.Queued = len(s.active), len(s.pending)
			d := s.adm.Decide(r.req, snap)
			if d == AdmissionDefer && len(s.active) == 0 {
				// The verdict still counts; only the wait is skipped.
				s.deferred++
				d = AdmissionAdmit
			}
			switch d {
			case AdmissionShed:
				s.pending = s.pending[1:]
				s.shed++
				s.admEvents = append(s.admEvents, StepEvent{
					Request: r.req.ID, Phase: PhaseShed,
					Start: s.e.clock, End: s.e.clock,
					Deadline: r.req.Deadline, Done: true,
				})
				continue
			case AdmissionDefer:
				s.deferred++
				if !r.deferred {
					r.deferred = true
					s.admEvents = append(s.admEvents, StepEvent{
						Request: r.req.ID, Phase: PhaseDeferred,
						Start: s.e.clock, End: s.e.clock,
						Deadline: r.req.Deadline,
					})
				}
				return
			}
		}
		s.pending = s.pending[1:]
		r.seq = s.nextSeq
		s.nextSeq++
		s.active = append(s.active, r)
	}
}

// schedView projects the active set into the request schedulers' view.
func (s *Session) schedView() []reqsched.Request {
	view := make([]reqsched.Request, len(s.active))
	for i, r := range s.active {
		view[i] = reqsched.Request{
			ID:              r.req.ID,
			Seq:             r.seq,
			Priority:        r.req.Priority,
			Deadline:        r.req.Deadline,
			Prefilled:       r.prefilled,
			PromptTokens:    r.req.PromptTokens,
			RemainingDecode: r.req.DecodeTokens - r.decoded,
		}
	}
	return view
}

// Step runs one admission pass and then one engine iteration for the
// request the scheduler picks, returning its event — or a queued
// shed/deferral record, one per call, ahead of compute. ok is false
// when every submitted request has finished or been shed.
func (s *Session) Step() (ev StepEvent, ok bool) {
	s.admit()
	if len(s.admEvents) > 0 {
		ev = s.admEvents[0]
		s.admEvents = s.admEvents[1:]
		s.steps++
		return ev, true
	}
	if len(s.active) == 0 {
		return StepEvent{}, false
	}
	idx := s.sched.Next(s.e.clock, s.schedView())
	if idx < 0 || idx >= len(s.active) {
		panic(fmt.Sprintf("engine: request scheduler %q picked index %d of %d active",
			s.sched.Name(), idx, len(s.active)))
	}
	r := s.active[idx]

	ev = StepEvent{Request: r.req.ID, Start: s.e.clock, Deadline: r.req.Deadline}
	hits0, misses0 := s.e.cache.Hits(), s.e.cache.Misses()
	cpu0, gpu0, link0 := s.e.cpuBusy, s.e.gpuBusy, s.e.linkBusy

	if !r.prefilled && r.req.PromptTokens > 0 {
		ev.Phase = PhasePrefill
		ev.Tokens = r.req.PromptTokens
		s.e.scheduler = s.e.prefillSched
		acts := trace.PrefillStep(s.e.gen, r.req.PromptTokens)
		ev.Latency = s.e.runStep(acts, r.req.PromptTokens, r.req.PromptTokens)
		r.prefilled = true
		if s.adm != nil {
			// Only admission snapshots read the accumulators; skip the
			// sorted insert (and the retained history) without a policy.
			s.ttfts.Add(ev.Latency)
		}
	} else {
		ev.Phase = PhaseDecode
		ev.Index = r.decoded
		ev.Tokens = 1
		s.e.scheduler = s.e.decodeSched
		acts := trace.DecodeStep(s.e.gen)
		ev.Latency = s.e.runStep(acts, 1, s.contextFor(r))
		r.decoded++
		if s.adm != nil {
			s.tbts.Add(ev.Latency)
		}
	}

	ev.End = s.e.clock
	ev.Hits = s.e.cache.Hits() - hits0
	ev.Misses = s.e.cache.Misses() - misses0
	ev.CPUBusy = maxF(0, s.e.cpuBusy-cpu0)
	ev.GPUBusy = maxF(0, s.e.gpuBusy-gpu0)
	ev.LinkBusy = maxF(0, s.e.linkBusy-link0)
	ev.Done = r.done()
	s.steps++
	s.e.stats.CacheHitRate = s.e.cache.HitRate()

	if ev.Done {
		s.active = append(s.active[:idx], s.active[idx+1:]...)
	}
	s.sched.Stepped(idx, ev.Done)
	return ev, true
}

// contextFor reports the KV context length for a request's next decode
// step: the prompt plus tokens generated so far, or the engine's
// configured default for decode-only bursts (the Run* wrappers).
func (s *Session) contextFor(r *sessionRequest) int {
	if r.req.PromptTokens <= 0 {
		return s.e.set.context
	}
	return r.req.PromptTokens + r.decoded
}

// Run drains the session, invoking handler (when non-nil) on every
// event, and returns the number of steps executed.
func (s *Session) Run(handler func(StepEvent)) int {
	n := 0
	for {
		ev, ok := s.Step()
		if !ok {
			return n
		}
		if handler != nil {
			handler(ev)
		}
		n++
	}
}

// RunDecode measures steps decode iterations and returns per-step TBT.
// It is a compatibility wrapper over a decode-only Session burst at the
// engine's configured KV context.
func (e *Engine) RunDecode(steps int) Result {
	if steps <= 0 {
		panic(fmt.Sprintf("engine: non-positive decode steps %d", steps))
	}
	s := e.NewSession()
	s.Submit(workload.Request{DecodeTokens: steps})
	res := Result{Framework: e.fw.Name, Model: e.cfg.Name}
	s.Run(func(ev StepEvent) {
		res.StepLatencies = append(res.StepLatencies, ev.Latency)
		res.Total += ev.Latency
	})
	res.Stats = e.stats
	return res
}

// RunPrefill measures a single prefill forward over the given prompt
// length and returns its TTFT as the sole step latency. It is a
// compatibility wrapper over a prefill-only Session request.
func (e *Engine) RunPrefill(tokens int) Result {
	if tokens <= 0 {
		panic(fmt.Sprintf("engine: non-positive prefill tokens %d", tokens))
	}
	s := e.NewSession()
	s.Submit(workload.Request{PromptTokens: tokens})
	res := Result{Framework: e.fw.Name, Model: e.cfg.Name}
	s.Run(func(ev StepEvent) {
		res.StepLatencies = append(res.StepLatencies, ev.Latency)
		res.Total += ev.Latency
	})
	res.Stats = e.stats
	return res
}
