package engine

import (
	"fmt"
	"sort"

	"hybrimoe/internal/report"
	"hybrimoe/internal/reqsched"
	"hybrimoe/internal/sim"
	"hybrimoe/internal/trace"
	"hybrimoe/internal/workload"
)

// Phase labels which serving stage a step event belongs to.
type Phase int

// Serving stages.
const (
	// PhasePrefill is the prompt forward. Its Latency plus its Queued
	// wait is the request's TTFT, measured from arrival to first token;
	// for requests without an arrival stamp Queued is 0 and TTFT
	// remains the forward latency alone.
	PhasePrefill Phase = iota
	// PhaseDecode is one token-generation iteration; its latency is one
	// TBT observation.
	PhaseDecode
	// PhaseShed records an admission rejection: the request was dropped
	// before running anything. The event carries zero tokens and
	// latency, Done is set, and no further event mentions the request.
	PhaseShed
	// PhaseDeferred records the first time admission delayed a request;
	// later deferrals of the same request only increment the session's
	// Deferred counter.
	PhaseDeferred
)

// String returns the stage name experiment tables use.
func (p Phase) String() string {
	switch p {
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	case PhaseShed:
		return "shed"
	case PhaseDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// StepEvent reports one engine iteration of a Session run: which
// request advanced, in which stage, what it cost, and what the cache
// and devices did during it. Serving studies derive TTFT and TBT
// percentiles from the event stream instead of per-run means.
type StepEvent struct {
	// Request is the workload request ID this step served.
	Request int
	// Phase is the serving stage of this step.
	Phase Phase
	// Index is 0 for prefill and the decode-step ordinal (0-based)
	// within the request otherwise.
	Index int
	// Tokens is the number of tokens processed this step (the prompt
	// length at prefill, 1 at decode).
	Tokens int
	// Latency is the simulated wall-clock cost of the step in seconds.
	Latency float64
	// Start and End are absolute simulation-clock bounds of the step.
	Start, End float64
	// Hits and Misses count expert-cache lookups during this step.
	Hits, Misses int64
	// CPUBusy, GPUBusy and LinkBusy report how far each resource's
	// occupancy frontier advanced during this step (seconds). On
	// multi-GPU platforms GPUBusy and LinkBusy are the sums across
	// devices; the per-device split is in GPUBusyByDevice and
	// LinkBusyByDevice.
	CPUBusy, GPUBusy, LinkBusy float64
	// GPUBusyByDevice and LinkBusyByDevice split GPUBusy/LinkBusy per
	// GPU (index = device index). Single-GPU runs carry length-1
	// vectors equal to the scalars; shed/deferral records carry nil.
	GPUBusyByDevice  []float64
	LinkBusyByDevice []float64
	// Class echoes the request's SLO class label ("" when none), so
	// consumers can slice violation and shed rates per class without a
	// side table.
	Class string
	// Deadline echoes the request's completion deadline (0 when none),
	// so consumers can count SLO violations — End past Deadline on the
	// Done event — without a side table.
	Deadline float64
	// Arrival echoes the request's arrival stamp (0 for closed-queue
	// requests present from the start), so consumers can reconstruct
	// arrival-relative latencies without a side table.
	Arrival float64
	// Queued is the queue wait the request served before its first
	// compute step: arrival → step start, carried by that first event
	// only (the prefill, or the first decode of a prompt-less burst).
	// Latency + Queued on a prefill event is the queue-inclusive TTFT —
	// arrival to first token — the signal admission control watches.
	// Requests without an arrival stamp report 0, preserving the
	// closed-queue event stream bit-for-bit.
	Queued float64
	// Batch is the 1-based ordinal of the merged engine iteration this
	// step ran in. Every compute event carries one; the events of a
	// multi-request batch share it (and their Start/End bounds).
	// Shed/deferral records, which run nothing, leave it 0.
	Batch int
	// BatchSize is how many requests advanced together in this event's
	// iteration: 1 for a solo step, the batch width for a merged one,
	// 0 on shed/deferral records.
	BatchSize int
	// Done marks the request's final step (or its shed record).
	Done bool
	// Migrated marks a prefill event whose request left this session at
	// the stage boundary instead of decoding here (prefill-export mode,
	// see ExportPrefilled): not Done — the decode steps happen on the
	// adopting replica — but final as far as this session is concerned,
	// so attribution stays exactly conserved across the handoff. Always
	// false outside export mode, keeping existing streams byte-identical.
	Migrated bool `json:",omitempty"`
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithPrefillExport puts the session in prefill-export mode, the
// prefill half of a disaggregated deployment: a request's prefill runs
// here as usual (its event carries the Migrated marker), but instead of
// decoding, the request is checkpointed — prompt consumed, context
// length, KV bytes, the predicted expert working set resident at export
// — and parked for ExportPrefilled to drain. Requests with no decode
// work complete normally; the mode only splits lives that have a
// decode half to hand off.
func WithPrefillExport() SessionOption {
	return func(s *Session) { s.exportPrefill = true }
}

// WithMaxConcurrent admits up to n requests at once; their prefill and
// decode steps interleave in the order the engine's request scheduler
// picks (WithRequestScheduler; round-robin when unset), sharing the
// expert cache, the way a continuously-batched server mixes phases.
// With a batch former installed (WithBatchPolicy) the in-flight
// requests may additionally merge into one engine iteration per step.
// The default of 1 serves requests strictly in order. n < 1 panics.
func WithMaxConcurrent(n int) SessionOption {
	if n < 1 {
		panic(fmt.Sprintf("engine: WithMaxConcurrent(%d) must be at least 1", n))
	}
	return func(s *Session) { s.maxConcurrent = n }
}

// sessionRequest tracks one admitted request's progress.
type sessionRequest struct {
	req       workload.Request
	prefilled bool
	decoded   int
	seq       int  // admission order, the schedulers' final tie-break
	submitSeq int  // submission order, the arrived queue's sort key
	deferred  bool // a PhaseDeferred event has been emitted
	started   bool // the first compute step has run (queue wait stamped)
	migrated  bool // prefill exported; the request left this session
	adopted   bool // entered via SubmitPrefilled (TTFT already stamped)
}

func (r *sessionRequest) done() bool {
	prefillDone := r.prefilled || r.req.PromptTokens <= 0
	return prefillDone && r.decoded >= r.req.DecodeTokens
}

// sessionEvent is one entry on the Session's unified event timeline.
type sessionEvent struct {
	kind sessionEventKind
	req  *sessionRequest // evArrival payload
	ev   StepEvent       // evEmit payload
}

// sessionEventKind discriminates the timeline's event kinds.
type sessionEventKind uint8

const (
	// evArrival fires when the clock reaches a submitted request's
	// arrival stamp; the request joins the admission queue.
	evArrival sessionEventKind = iota
	// evEmit is a completed iteration's pending StepEvent (the trailing
	// members of a merged batch) or an admission shed/deferral record,
	// stamped at the clock instant it was produced and drained one per
	// Step call.
	evEmit
	// evPrefetchDone marks the instant an iteration's in-flight
	// prefetch transfers complete on the link frontiers — bookkeeping
	// only: popping one emits nothing and (being stamped off the link
	// timeline, not the compute clock) never moves an observable stamp.
	evPrefetchDone
)

// Session is the streaming run loop, driven by a discrete-event
// timeline: submitted requests are scheduled as arrival events, each
// Step pops the queue's minimum — an arrival firing into the admission
// queue, a pending emission, or (implicitly, when nothing is runnable)
// the next arrival the clock jumps to — so open-loop idle gaps are
// skipped by construction rather than by scanning for the next arrival.
// Admitted requests enter the active set up to the concurrency limit
// and advance one engine iteration per Step — the request picked by the
// configured request scheduler, running a prefill forward or a single
// decode step — with a StepEvent emitted for each. The expert cache,
// trace generator and device clocks carry state across requests, the
// state a long-running server would have.
type Session struct {
	e             *Engine
	active        []*sessionRequest
	sched         reqsched.Scheduler
	batch         reqsched.BatchPolicy
	adm           AdmissionPolicy
	maxConcurrent int
	steps         int
	nextSeq       int
	nextSubmit    int
	// batches counts merged engine iterations (solo steps included);
	// StepEvent.Batch carries the ordinal.
	batches int
	// events is the unified timeline: scheduled arrivals (stamped at
	// the request's arrival), queued emissions (stamped at the clock
	// when produced) and prefetch-completion markers, popped in
	// (stamp, push order) order.
	events sim.Queue[sessionEvent]
	// arrived holds requests whose arrival event has fired, kept in
	// submission order — the admission queue. Admission is order-
	// preserving over submission order, not arrival order, so trace
	// replays with interleaved stamps admit the way the trace was
	// offered.
	arrived []*sessionRequest
	// future counts arrival events still scheduled on the timeline.
	future int
	// ttfts and tbts accumulate the live latency observations admission
	// snapshots quantile over (sorted incrementally, queried per step).
	ttfts, tbts report.Live
	shed        int
	deferred    int
	// exportPrefill marks the prefill half of a disaggregated pair; see
	// WithPrefillExport.
	exportPrefill bool
	// exported parks checkpointed requests between their Migrated
	// prefill event and the ExportPrefilled drain; they still count as
	// Pending (the request is in this session until the caller takes it).
	exported []*sessionRequest
	// Reused scratch buffers: the allocation-lean Step path. view backs
	// schedView's projection, busyPrev the per-step device-frontier
	// snapshots, seen checkBatch's duplicate check; none escape a Step.
	view              []reqsched.Request
	gpuPrev, linkPrev []float64
	seen              []bool
	// Batch-iteration scratch: runBatch's member/token projections and
	// its event assembly buffer. The events themselves are copied out by
	// value (one returned, the rest queued for emission), so the backing
	// slices never escape a Step and are reused across iterations.
	batchMembers []*sessionRequest
	batchTokens  []int
	batchEvents  []StepEvent
	// untilEvents and untilClocks back StepUntil's batched return; valid
	// until the next StepUntil call.
	untilEvents []StepEvent
	untilClocks []float64
	// arena batches the per-event device-vector allocations; see devArena.
	arena devArena
}

// devArena hands out device-sized []float64s carved from chunked backing
// arrays, amortizing the per-event GPUBusyByDevice/LinkBusyByDevice
// allocations the step hot path used to make one at a time. Carved
// slices escape into StepEvents the caller may retain indefinitely, so a
// chunk is never reclaimed or reused once carved from — the arena only
// batches the allocations (one make per chunk instead of one per event),
// it does not pool them. A retained slice pins at most one chunk.
type devArena struct {
	buf []float64
}

// devArenaChunk sizes the arena's backing chunks: large enough to
// amortize, small enough that a single retained event pins little.
const devArenaChunk = 512

// take carves an n-element slice (capacity clamped to n, so appends by
// consumers can never bleed into a neighbour's carve).
func (a *devArena) take(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if len(a.buf) < n {
		size := devArenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]float64, size)
	}
	out := a.buf[:n:n]
	a.buf = a.buf[n:]
	return out
}

// NewSession starts a streaming run loop on the engine, with the
// request scheduler and admission policy the engine was constructed
// with (WithRequestScheduler, WithAdmission). An engine should drive
// one session (or the Run* compatibility wrappers) at a time;
// interleaving several corrupts none of the accounting but makes the
// shared clock meaningless.
func (e *Engine) NewSession(opts ...SessionOption) *Session {
	rs, err := reqsched.New(e.set.reqSched)
	if err != nil {
		// WithRequestScheduler validated the name at construction; only
		// a corrupted settings struct reaches here.
		panic(fmt.Sprintf("engine: request scheduler vanished from registry: %v", err))
	}
	bp, err := reqsched.NewBatch(e.set.batchPolicy, e.set.batchBudget)
	if err != nil {
		// WithBatchPolicy validated name and budget at construction.
		panic(fmt.Sprintf("engine: batch policy vanished from registry: %v", err))
	}
	s := &Session{e: e, sched: rs, batch: bp, adm: e.set.admission, maxConcurrent: 1}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Submit schedules requests on the event timeline. It may be called
// before the first Step or at any point during the run (a live request
// stream). A request with PromptTokens <= 0 skips prefill (a
// decode-only burst); one with DecodeTokens <= 0 stops after prefill. A
// request with neither — no work at all — is dropped immediately: it
// emits no event and never counts toward Pending. Each kept request
// becomes an arrival event at its Arrival stamp (0 for closed-queue
// requests, which fire on the first Step; stamps behind the clock fire
// immediately, the live-stream case).
func (s *Session) Submit(reqs ...workload.Request) {
	for _, r := range reqs {
		if r.PromptTokens <= 0 && r.DecodeTokens <= 0 {
			continue
		}
		sr := &sessionRequest{req: r, submitSeq: s.nextSubmit}
		s.nextSubmit++
		s.future++
		s.events.Push(r.Arrival, sessionEvent{kind: evArrival, req: sr})
	}
}

// SubmitPrefilled adopts checkpointed requests mid-life: each entered
// some other session, ran its prefill there, and arrives here carrying
// the exported Checkpoint. The request joins the timeline decode-only —
// prefill marked complete, context warm at the checkpoint's length, no
// fresh queue wait or TTFT stamp (the prefill replica already accrued
// both) — at the later of its Arrival and the checkpoint's ReadyAt
// (when the migrated state finishes arriving). Requests without a
// checkpoint panic; ones with no decode work are dropped like Submit's
// zero-work case.
func (s *Session) SubmitPrefilled(reqs ...workload.Request) {
	for _, r := range reqs {
		if r.Checkpoint == nil {
			panic(fmt.Sprintf("engine: SubmitPrefilled(request %d) without a checkpoint", r.ID))
		}
		if r.DecodeTokens <= 0 {
			continue
		}
		sr := &sessionRequest{req: r, prefilled: true, adopted: true, submitSeq: s.nextSubmit}
		s.nextSubmit++
		s.future++
		at := r.Arrival
		if r.Checkpoint.ReadyAt > at {
			at = r.Checkpoint.ReadyAt
		}
		s.events.Push(at, sessionEvent{kind: evArrival, req: sr})
	}
}

// ExportPrefilled drains and returns the requests whose prefill
// completed since the last drain (export mode only; nil otherwise) —
// each carrying its Checkpoint, ready for another session to adopt via
// SubmitPrefilled. Until drained they count as Pending and Reclaim
// returns them like any other undelivered work.
func (s *Session) ExportPrefilled() []workload.Request {
	if len(s.exported) == 0 {
		return nil
	}
	out := make([]workload.Request, len(s.exported))
	for i, r := range s.exported {
		out[i] = r.req
	}
	s.exported = nil
	return out
}

// Pending reports how many submitted requests have not yet finished —
// requests still waiting on their arrival included, exported
// checkpoints not yet drained included, shed and zero-work submissions
// (dropped at Submit) not.
func (s *Session) Pending() int {
	return s.future + len(s.arrived) + len(s.active) + len(s.exported)
}

// Reclaim removes and returns every submitted request that has not yet
// run a compute step — scheduled arrivals still on the timeline, the
// arrived admission queue (deferred requests included), and admitted
// requests the scheduler never picked — in submission order, with their
// original fields (Arrival stamps included) intact. Requests whose first
// compute step has run stay in flight and are not returned: their state
// (KV context, partial decode) lives in this engine and cannot move.
//
// Reclaim exists for fleet lifecycle: when a replica is declared dead,
// the cluster pulls its undelivered queue back out and re-routes it, so
// queue-inclusive TTFT honestly carries the time lost on the dead box.
// A reclaimed-from session stays consistent (Pending drops, in-flight
// requests keep running), but the request scheduler's rotation state is
// not re-anchored around the removals — reclaim from sessions being
// retired, not ones still serving a rotation-sensitive policy.
func (s *Session) Reclaim() []workload.Request {
	type taken struct {
		submitSeq int
		req       workload.Request
	}
	var out []taken

	// Scheduled arrivals: rebuild the timeline without them. Popping in
	// (stamp, push) order and re-pushing preserves the relative order of
	// the surviving entries.
	if s.future > 0 {
		type kept struct {
			at float64
			ev sessionEvent
		}
		var keep []kept
		for {
			at, e, ok := s.events.PopMin()
			if !ok {
				break
			}
			if e.kind == evArrival {
				s.future--
				out = append(out, taken{e.req.submitSeq, e.req.req})
				continue
			}
			keep = append(keep, kept{at, e})
		}
		for _, k := range keep {
			s.events.Push(k.at, k.ev)
		}
	}

	// The arrived admission queue: nothing in it has started compute.
	for _, r := range s.arrived {
		out = append(out, taken{r.submitSeq, r.req})
	}
	s.arrived = s.arrived[:0]

	// Checkpointed-but-unmigrated exports: their prefill ran here, but
	// the checkpoint never left the session, so the caller re-owns them
	// (Checkpoint attached — the prefill work is not lost, only the
	// migration never happened).
	for _, r := range s.exported {
		out = append(out, taken{r.submitSeq, r.req})
	}
	s.exported = nil

	// Admitted requests the scheduler never stepped.
	remaining := s.active[:0]
	for _, r := range s.active {
		if r.started {
			remaining = append(remaining, r)
			continue
		}
		out = append(out, taken{r.submitSeq, r.req})
	}
	for i := len(remaining); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = remaining

	sort.Slice(out, func(i, j int) bool { return out[i].submitSeq < out[j].submitSeq })
	reqs := make([]workload.Request, len(out))
	for i, t := range out {
		reqs[i] = t.req
	}
	return reqs
}

// Steps reports how many step events the session has emitted,
// shed/deferral records included.
func (s *Session) Steps() int { return s.steps }

// Shed reports how many requests the admission policy dropped.
func (s *Session) Shed() int { return s.shed }

// Deferred reports how many deferral verdicts the admission policy
// returned (a single request deferred across n admission passes counts
// n times; its PhaseDeferred event is emitted once).
func (s *Session) Deferred() int { return s.deferred }

// Scheduler reports the request-scheduling policy driving this session.
func (s *Session) Scheduler() string { return s.sched.Name() }

// Batcher reports the batch-forming policy merging this session's
// iterations ("none" when unbatched).
func (s *Session) Batcher() string { return s.batch.Name() }

// Batches reports how many engine iterations the session has run (a
// merged multi-request iteration counts once; its events all carry the
// same Batch ordinal). Steps()/Batches() exceeds 1 exactly when
// batching merged work.
func (s *Session) Batches() int { return s.batches }

// snapshot assembles the live-quantile view an admission decision sees.
// arrived is the real queue depth: arrivals still scheduled on the
// timeline are invisible — counting them would leak arrivals the server
// cannot know about yet.
func (s *Session) snapshot() SLOSnapshot {
	return SLOSnapshot{
		Now:    s.e.clock,
		TTFT:   s.ttfts.Stats(),
		TBT:    s.tbts.Stats(),
		Active: len(s.active),
		Queued: len(s.arrived),
	}
}

// arrive moves a fired arrival into the admission queue, keeping it
// sorted by submission order (arrival events fire in stamp order, so
// trace replays with interleaved stamps need the re-sort; in-order
// streams append).
func (s *Session) arrive(r *sessionRequest) {
	s.future--
	i := len(s.arrived)
	for i > 0 && s.arrived[i-1].submitSeq > r.submitSeq {
		i--
	}
	s.arrived = append(s.arrived, nil)
	copy(s.arrived[i+1:], s.arrived[i:])
	s.arrived[i] = r
}

// dropArrivedHead removes the admission queue's head in place, keeping
// the backing storage.
func (s *Session) dropArrivedHead() {
	copy(s.arrived, s.arrived[1:])
	s.arrived[len(s.arrived)-1] = nil
	s.arrived = s.arrived[:len(s.arrived)-1]
}

// pushEmit queues a StepEvent for emission at the current clock.
func (s *Session) pushEmit(ev StepEvent) {
	s.events.Push(s.e.clock, sessionEvent{kind: evEmit, ev: ev})
}

// hasEmit reports whether an emission is queued. Emissions are stamped
// at (a past value of) the clock and fired arrivals are drained through
// it, so a queued emission is always the timeline's minimum — modulo
// prefetch markers, which order between but emit nothing.
func (s *Session) hasEmit() bool {
	for {
		_, e, ok := s.events.PeekMin()
		if ok && e.kind == evPrefetchDone {
			s.events.PopMin()
			continue
		}
		return ok && e.kind == evEmit
	}
}

// notePrefetchHorizon schedules a completion marker for transfers the
// iteration just issued that are still in flight on a link past the
// compute clock — the prefetch-completion event kind. It carries no
// emission; it exists so the timeline is a complete account of the
// simulated machine's future (arrivals, iteration completions,
// transfer completions).
func (s *Session) notePrefetchHorizon() {
	var frontier float64
	for _, busy := range s.e.linkBusy {
		if busy > frontier {
			frontier = busy
		}
	}
	if frontier > s.e.clock {
		s.events.Push(frontier, sessionEvent{kind: evPrefetchDone})
	}
}

// admit moves arrived requests into the active set up to the
// concurrency limit, consulting the admission policy when one is
// installed. A deferred request stays at the head of the arrived queue
// — admission is order-preserving, so later submissions wait behind it
// — unless nothing is active, in which case it is admitted anyway: with
// no work in flight the quantiles can never recover, and the loop must
// make progress.
func (s *Session) admit() {
	// The latency quantiles and clock are invariant across one admission
	// pass (no step runs in between); snapshot them once and refresh
	// only the queue depths per decision.
	var snap SLOSnapshot
	if s.adm != nil && len(s.arrived) > 0 {
		snap = s.snapshot()
	}
	for len(s.active) < s.maxConcurrent && len(s.arrived) > 0 {
		r := s.arrived[0]
		if s.adm != nil {
			snap.Active, snap.Queued = len(s.active), len(s.arrived)
			d := s.adm.Decide(r.req, snap)
			if d == AdmissionDefer && len(s.active) == 0 {
				// The verdict still counts; only the wait is skipped.
				s.deferred++
				d = AdmissionAdmit
			}
			switch d {
			case AdmissionShed:
				s.dropArrivedHead()
				s.shed++
				s.pushEmit(StepEvent{
					Request: r.req.ID, Phase: PhaseShed,
					Start: s.e.clock, End: s.e.clock,
					Deadline: r.req.Deadline, Arrival: r.req.Arrival,
					Class: r.req.Class, Done: true,
				})
				continue
			case AdmissionDefer:
				s.deferred++
				if !r.deferred {
					r.deferred = true
					s.pushEmit(StepEvent{
						Request: r.req.ID, Phase: PhaseDeferred,
						Start: s.e.clock, End: s.e.clock,
						Deadline: r.req.Deadline, Arrival: r.req.Arrival,
						Class: r.req.Class,
					})
				}
				return
			}
		}
		s.dropArrivedHead()
		r.seq = s.nextSeq
		s.nextSeq++
		s.active = append(s.active, r)
	}
}

// schedView projects the active set into the request schedulers' view.
// The slice is scratch reused across steps; schedulers and batch
// formers must not retain it past the call.
func (s *Session) schedView() []reqsched.Request {
	view := s.view[:0]
	for _, r := range s.active {
		view = append(view, reqsched.Request{
			ID:              r.req.ID,
			Seq:             r.seq,
			Priority:        r.req.Priority,
			Deadline:        r.req.Deadline,
			Prefilled:       r.prefilled,
			PromptTokens:    r.req.PromptTokens,
			RemainingDecode: r.req.DecodeTokens - r.decoded,
		})
	}
	s.view = view
	return view
}

// Step pops the event timeline: a queued emission is returned (one per
// call, ahead of new compute); fired arrivals join the admission queue;
// then one admission pass runs and one engine iteration executes for
// the batch the batch former builds around the scheduler's pick. When
// nothing is runnable but arrivals are still scheduled (the open-loop
// idle gap), popping the next arrival IS the clock jump — the gap is
// skipped by construction. ok is false when every submitted request has
// finished or been shed.
func (s *Session) Step() (ev StepEvent, ok bool) {
	// Drain the timeline up to the clock: emissions return (one per
	// call), arrivals fire into the admission queue, prefetch markers
	// are retired. Stamp order interleaves them correctly — an arrival
	// during a drained batch's span fires before the batch's trailing
	// emissions pop, and joining the admission queue early is
	// unobservable until the admission pass below.
	for {
		at, e, popped := s.events.PeekMin()
		if !popped {
			break
		}
		if e.kind == evEmit {
			s.events.PopMin()
			s.steps++
			return e.ev, true
		}
		if at > s.e.clock {
			break
		}
		s.events.PopMin()
		if e.kind == evArrival {
			s.arrive(e.req)
		}
	}
	s.admit()
	// Open-loop idle gap: the active set is drained and no admission
	// record is waiting, yet arrivals are still scheduled. Pop the next
	// one — the pop advances the clock to its stamp — fire any
	// co-arrivals the new clock covers, and re-admit; each round
	// consumes at least one scheduled request (admit, shed or promoted
	// deferral), so the loop terminates.
	for len(s.active) == 0 && !s.hasEmit() {
		at, e, popped := s.events.PopMin()
		if !popped {
			break
		}
		if e.kind != evArrival {
			continue
		}
		if at > s.e.clock {
			s.e.clock = at
		}
		s.arrive(e.req)
		for {
			at, e, peeked := s.events.PeekMin()
			if !peeked || e.kind != evArrival || at > s.e.clock {
				break
			}
			s.events.PopMin()
			s.arrive(e.req)
		}
		s.admit()
	}
	if s.hasEmit() {
		_, e, _ := s.events.PopMin()
		s.steps++
		return e.ev, true
	}
	if len(s.active) == 0 {
		return StepEvent{}, false
	}
	view := s.schedView()
	idx := s.sched.Next(s.e.clock, view)
	if idx < 0 || idx >= len(s.active) {
		panic(fmt.Sprintf("engine: request scheduler %q picked index %d of %d active",
			s.sched.Name(), idx, len(s.active)))
	}
	batch := s.batch.Form(s.e.clock, view, idx)
	s.checkBatch(batch, idx)
	s.batches++
	if len(batch) == 1 {
		return s.stepSolo(idx), true
	}
	events := s.runBatch(batch, idx)
	for _, bev := range events[1:] {
		s.pushEmit(bev)
	}
	s.steps++
	return events[0], true
}

// StepUntil advances the session until its clock reaches t (or the
// session drains), returning every StepEvent emitted along the way in
// Step order. It is exactly a Step loop — the event sequence is
// byte-identical to calling Step repeatedly — batched so per-step
// bookkeeping (scratch views, emission drains) amortizes and the caller
// makes one call per horizon instead of one per event. A step whose
// pre-step clock is below t may legitimately finish past it (an idle-gap
// jump or a long iteration), matching what a serial Step driver
// observes; the final clock is therefore >= t unless the session
// drained first. The returned slice is scratch reused by the next
// StepUntil call — copy it to retain events across calls.
func (s *Session) StepUntil(t float64) []StepEvent {
	s.untilEvents, s.untilClocks = s.StepUntilClocked(t, s.untilEvents[:0], s.untilClocks[:0])
	return s.untilEvents
}

// StepUntilClocked is StepUntil recording, aligned with each returned
// event, the session clock observed immediately before the Step call
// that produced it — the merge key a lockstep fleet driver interleaves
// replica runs by (the clock it would have seen when picking this
// session to step). Events and clocks are appended to evs and clocks,
// which are returned; pass reusable backing to keep the loop
// allocation-free. Pre-step clocks are non-decreasing within one call.
func (s *Session) StepUntilClocked(t float64, evs []StepEvent, clocks []float64) ([]StepEvent, []float64) {
	for s.e.clock < t {
		pre := s.e.clock
		ev, ok := s.Step()
		if !ok {
			break
		}
		evs = append(evs, ev)
		clocks = append(clocks, pre)
	}
	return evs, clocks
}

// checkBatch validates a batch former's output the way scheduler picks
// are validated: programming errors in a policy panic immediately
// instead of corrupting the accounting.
func (s *Session) checkBatch(batch []int, lead int) {
	if len(batch) == 0 {
		panic(fmt.Sprintf("engine: batch policy %q formed an empty batch", s.batch.Name()))
	}
	if cap(s.seen) < len(s.active) {
		s.seen = make([]bool, len(s.active))
	}
	seen := s.seen[:len(s.active)]
	for i := range seen {
		seen[i] = false
	}
	hasLead := false
	for _, i := range batch {
		if i < 0 || i >= len(s.active) {
			panic(fmt.Sprintf("engine: batch policy %q picked index %d of %d active",
				s.batch.Name(), i, len(s.active)))
		}
		if seen[i] {
			panic(fmt.Sprintf("engine: batch policy %q picked index %d twice", s.batch.Name(), i))
		}
		seen[i] = true
		hasLead = hasLead || i == lead
	}
	if !hasLead {
		panic(fmt.Sprintf("engine: batch policy %q dropped the scheduled lead %d from batch %v",
			s.batch.Name(), lead, batch))
	}
}

// snapBusy copies the engine's device-frontier vectors into the
// session's reused scratch, the pre-step snapshot busyDeltas diffs.
func (s *Session) snapBusy() (gpu0, link0 []float64) {
	s.gpuPrev = append(s.gpuPrev[:0], s.e.gpuBusy...)
	s.linkPrev = append(s.linkPrev[:0], s.e.linkBusy...)
	return s.gpuPrev, s.linkPrev
}

// stepSolo runs one engine iteration for a single request — the
// historical Session loop, which batch policy "none" (and any
// single-member batch) reproduces event-for-event.
func (s *Session) stepSolo(idx int) StepEvent {
	r := s.active[idx]

	ev := StepEvent{Request: r.req.ID, Start: s.e.clock, Deadline: r.req.Deadline,
		Arrival: r.req.Arrival, Class: r.req.Class, Batch: s.batches, BatchSize: 1}
	ev.Queued = s.queueWait(r, ev.Start)
	hits0, misses0 := s.e.cache.Hits(), s.e.cache.Misses()
	cpu0 := s.e.cpuBusy
	gpu0, link0 := s.snapBusy()

	if !r.prefilled && r.req.PromptTokens > 0 {
		ev.Phase = PhasePrefill
		ev.Tokens = r.req.PromptTokens
		s.e.scheduler = s.e.prefillSched
		acts := trace.PrefillStep(s.e.gen, r.req.PromptTokens)
		ev.Latency = s.e.runStep(acts, r.req.PromptTokens, r.req.PromptTokens, false)
		r.prefilled = true
		if s.adm != nil {
			// Only admission snapshots read the accumulators; skip the
			// sorted insert (and the retained history) without a policy.
			// The observation is the queue-inclusive TTFT — arrival to
			// first token — so admission sees queueing pressure build,
			// not just the forward's cost.
			s.ttfts.Add(ev.Queued + ev.Latency)
		}
		if s.exportPrefill && r.req.DecodeTokens > 0 {
			ev.Migrated = true
			s.export(r, ev.Queued+ev.Latency)
		}
	} else {
		ev.Phase = PhaseDecode
		ev.Index = r.decoded
		ev.Tokens = 1
		s.e.scheduler = s.e.decodeSched
		acts := trace.DecodeStep(s.e.gen)
		ev.Latency = s.e.runStep(acts, 1, s.contextFor(r), false)
		r.decoded++
		if s.adm != nil {
			s.tbts.Add(ev.Latency)
			s.addDecodeOnlyTTFT(r, ev)
		}
	}

	ev.End = s.e.clock
	ev.Hits = s.e.cache.Hits() - hits0
	ev.Misses = s.e.cache.Misses() - misses0
	ev.CPUBusy = maxF(0, s.e.cpuBusy-cpu0)
	ev.GPUBusyByDevice, ev.GPUBusy = s.busyDeltas(s.e.gpuBusy, gpu0)
	ev.LinkBusyByDevice, ev.LinkBusy = s.busyDeltas(s.e.linkBusy, link0)
	ev.Done = r.done()
	s.steps++
	s.e.stats.CacheHitRate = s.e.cache.HitRate()
	s.notePrefetchHorizon()

	if ev.Done || r.migrated {
		s.active = append(s.active[:idx], s.active[idx+1:]...)
		s.sched.Stepped(idx, []int{idx})
	} else {
		s.sched.Stepped(idx, nil)
	}
	return ev
}

// export checkpoints a just-prefilled request and parks it for
// ExportPrefilled: the serializable decode-side state — prompt
// consumed, context, the KV bytes that must migrate, and the predicted
// expert working set resident on this engine right now (the affinity
// and warm-admission hint; the weights themselves are replicated).
// ttft is the queue-inclusive time-to-first-token the prefill accrued,
// recorded so the adopting session never re-stamps it.
func (s *Session) export(r *sessionRequest, ttft float64) {
	r.migrated = true
	r.req.Checkpoint = &workload.Checkpoint{
		PromptConsumed: r.req.PromptTokens,
		Context:        r.req.PromptTokens,
		KVBytes:        s.e.cfg.KVBytes(r.req.PromptTokens),
		Experts:        s.e.residentWorkingSet(),
		TTFT:           ttft,
	}
	s.exported = append(s.exported, r)
}

// addDecodeOnlyTTFT folds a prompt-less request's first token into the
// TTFT quantiles admission reads: with no prefill to carry the
// observation, its arrival→first-token time is the first decode's
// queue wait plus latency. Only arrival-stamped requests contribute —
// closed-queue decode-only bursts never fed the TTFT feed, and keeping
// them out preserves that admission behaviour exactly.
func (s *Session) addDecodeOnlyTTFT(r *sessionRequest, ev StepEvent) {
	if r.req.PromptTokens <= 0 && ev.Index == 0 && r.req.Arrival > 0 {
		s.ttfts.Add(ev.Queued + ev.Latency)
	}
}

// queueWait stamps (once, on the request's first compute step) the
// arrival→start queue wait. Requests without an arrival stamp report 0,
// keeping the closed-queue event stream identical to the pre-arrival
// loop.
func (s *Session) queueWait(r *sessionRequest, start float64) float64 {
	if r.started {
		return 0
	}
	r.started = true
	// Adopted requests already paid their queue wait on the prefill
	// replica (the checkpoint's TTFT carries it); re-stamping would
	// double-count the wait across the handoff.
	if r.adopted || r.req.Arrival <= 0 {
		return 0
	}
	return maxF(0, start-r.req.Arrival)
}

// runBatch executes one merged engine iteration for a multi-request
// batch and returns one StepEvent per member, in the batch former's
// order. The batch runs as a single forward: a pure-decode batch shares
// one trace.DecodeStep activation pass over the union of experts (one
// token per request through each), while a batch containing prefill
// work routes its total token count through one prefill-shaped pass.
// Cache hits/misses and device busy time are accounted once for the
// iteration, then attributed to members by token share (exactly — the
// telescoped integer splits sum to the iteration totals), and every
// member's event carries the full iteration latency as its TTFT/TBT
// observation, the latency a batched server's request actually sees.
func (s *Session) runBatch(batch []int, lead int) []StepEvent {
	// Member/token projections live in session scratch: nothing below
	// retains them past the iteration.
	members := s.batchMembers[:0]
	tokens := s.batchTokens[:0]
	total := 0
	allDecode := true
	context := 0
	for _, idx := range batch {
		r := s.active[idx]
		members = append(members, r)
		tok := 1
		if r.prefilled || r.req.PromptTokens <= 0 {
			if c := s.contextFor(r); c > context {
				context = c
			}
		} else {
			tok = r.req.PromptTokens
			allDecode = false
			if r.req.PromptTokens > context {
				context = r.req.PromptTokens
			}
		}
		tokens = append(tokens, tok)
		total += tok
	}
	s.batchMembers, s.batchTokens = members, tokens

	start := s.e.clock
	hits0, misses0 := s.e.cache.Hits(), s.e.cache.Misses()
	cpu0 := s.e.cpuBusy
	gpu0, link0 := s.snapBusy()

	var acts []trace.LayerActivation
	if allDecode {
		s.e.scheduler = s.e.decodeSched
		acts = trace.BatchDecodeStep(s.e.gen, len(batch))
	} else {
		s.e.scheduler = s.e.prefillSched
		acts = trace.PrefillStep(s.e.gen, total)
	}
	// Pure-decode batches count cache lookups per routed token so
	// hits+misses conserve against the unbatched run; prefill-bearing
	// batches are one prefill-shaped pass and keep prefill's
	// per-distinct-expert convention.
	latency := s.e.runStep(acts, total, context, allDecode)

	hits := s.e.cache.Hits() - hits0
	misses := s.e.cache.Misses() - misses0
	cpu := maxF(0, s.e.cpuBusy-cpu0)
	gpu, _ := s.busyDeltas(s.e.gpuBusy, gpu0)
	link, _ := s.busyDeltas(s.e.linkBusy, link0)
	end := s.e.clock
	s.e.stats.CacheHitRate = s.e.cache.HitRate()
	s.notePrefetchHorizon()

	// The assembly buffer is scratch too — Step copies events out by
	// value (one returned, the rest queued) before the next iteration.
	events := s.batchEvents[:0]
	cum := 0
	for i, r := range members {
		prev, next := cum, cum+tokens[i]
		cum = next
		ev := StepEvent{
			Request:  r.req.ID,
			Start:    start,
			End:      end,
			Latency:  latency,
			Deadline: r.req.Deadline,
			Arrival:  r.req.Arrival,
			Class:    r.req.Class,
			Queued:   s.queueWait(r, start),
			Batch:    s.batches,
			// Token-share attribution, telescoped so member deltas sum
			// exactly to the iteration totals.
			Hits:      hits*int64(next)/int64(total) - hits*int64(prev)/int64(total),
			Misses:    misses*int64(next)/int64(total) - misses*int64(prev)/int64(total),
			CPUBusy:   cpu*float64(next)/float64(total) - cpu*float64(prev)/float64(total),
			BatchSize: len(batch),
		}
		// Per-device token-share splits, telescoped the same way; the
		// scalars are their sums. Arena-carved: the slices escape with
		// the event.
		ev.GPUBusyByDevice = s.arena.take(len(gpu))
		ev.LinkBusyByDevice = s.arena.take(len(link))
		for d := range gpu {
			ev.GPUBusyByDevice[d] = gpu[d]*float64(next)/float64(total) - gpu[d]*float64(prev)/float64(total)
			ev.GPUBusy += ev.GPUBusyByDevice[d]
		}
		for d := range link {
			ev.LinkBusyByDevice[d] = link[d]*float64(next)/float64(total) - link[d]*float64(prev)/float64(total)
			ev.LinkBusy += ev.LinkBusyByDevice[d]
		}
		if !r.prefilled && r.req.PromptTokens > 0 {
			ev.Phase = PhasePrefill
			ev.Tokens = r.req.PromptTokens
			r.prefilled = true
			if s.adm != nil {
				// Queue-inclusive TTFT, as in the solo path.
				s.ttfts.Add(ev.Queued + latency)
			}
			if s.exportPrefill && r.req.DecodeTokens > 0 {
				ev.Migrated = true
				s.export(r, ev.Queued+latency)
			}
		} else {
			ev.Phase = PhaseDecode
			ev.Index = r.decoded
			ev.Tokens = 1
			r.decoded++
			if s.adm != nil {
				s.tbts.Add(latency)
				s.addDecodeOnlyTTFT(r, ev)
			}
		}
		ev.Done = r.done()
		events = append(events, ev)
	}
	s.batchEvents = events

	var removed []int
	remaining := s.active[:0]
	for i, r := range s.active {
		if r.done() || r.migrated {
			removed = append(removed, i)
			continue
		}
		remaining = append(remaining, r)
	}
	s.active = remaining
	// The scheduler is told its pick's outcome and the full (ascending)
	// removal set: a merged batch can complete co-members at indices
	// below the pick, and the compaction above shifts the active slice
	// under any cursor that only heard about the lead.
	s.sched.Stepped(lead, removed)
	return events
}

// busyDeltas reports each device's occupancy-frontier advance since the
// prev snapshot, plus the summed advance the scalar event fields carry.
// The slice is carved from the session's arena — it escapes into the
// emitted event, so it is never reused, only cheaply allocated.
func (s *Session) busyDeltas(cur, prev []float64) ([]float64, float64) {
	out := s.arena.take(len(cur))
	var total float64
	for d := range cur {
		out[d] = maxF(0, cur[d]-prev[d])
		total += out[d]
	}
	return out, total
}

// contextFor reports the KV context length for a request's next decode
// step: the prompt plus tokens generated so far, or the engine's
// configured default for decode-only bursts (the Run* wrappers).
func (s *Session) contextFor(r *sessionRequest) int {
	if r.adopted && r.req.Checkpoint != nil {
		// The checkpoint's context is authoritative for adopted
		// requests: the prefill happened elsewhere, possibly over a
		// different prompt accounting than PromptTokens suggests.
		return r.req.Checkpoint.Context + r.decoded
	}
	if r.req.PromptTokens <= 0 {
		return s.e.set.context
	}
	return r.req.PromptTokens + r.decoded
}

// Run drains the session, invoking handler (when non-nil) on every
// event, and returns the number of steps executed.
func (s *Session) Run(handler func(StepEvent)) int {
	n := 0
	for {
		ev, ok := s.Step()
		if !ok {
			return n
		}
		if handler != nil {
			handler(ev)
		}
		n++
	}
}

// RunDecode measures steps decode iterations and returns per-step TBT.
// It is a compatibility wrapper over a decode-only Session burst at the
// engine's configured KV context.
func (e *Engine) RunDecode(steps int) Result {
	if steps <= 0 {
		panic(fmt.Sprintf("engine: non-positive decode steps %d", steps))
	}
	s := e.NewSession()
	s.Submit(workload.Request{DecodeTokens: steps})
	res := Result{Framework: e.fw.Name, Model: e.cfg.Name}
	s.Run(func(ev StepEvent) {
		res.StepLatencies = append(res.StepLatencies, ev.Latency)
		res.Total += ev.Latency
	})
	res.Stats = e.stats
	return res
}

// RunPrefill measures a single prefill forward over the given prompt
// length and returns its TTFT as the sole step latency. It is a
// compatibility wrapper over a prefill-only Session request.
func (e *Engine) RunPrefill(tokens int) Result {
	if tokens <= 0 {
		panic(fmt.Sprintf("engine: non-positive prefill tokens %d", tokens))
	}
	s := e.NewSession()
	s.Submit(workload.Request{PromptTokens: tokens})
	res := Result{Framework: e.fw.Name, Model: e.cfg.Name}
	s.Run(func(ev StepEvent) {
		res.StepLatencies = append(res.StepLatencies, ev.Latency)
		res.Total += ev.Latency
	})
	res.Stats = e.stats
	return res
}
