package engine

import (
	"fmt"

	"hybrimoe/internal/trace"
	"hybrimoe/internal/workload"
)

// Phase labels which serving stage a step event belongs to.
type Phase int

// Serving stages.
const (
	// PhasePrefill is the prompt forward; its latency is the request's
	// TTFT.
	PhasePrefill Phase = iota
	// PhaseDecode is one token-generation iteration; its latency is one
	// TBT observation.
	PhaseDecode
)

// String returns the stage name experiment tables use.
func (p Phase) String() string {
	switch p {
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// StepEvent reports one engine iteration of a Session run: which
// request advanced, in which stage, what it cost, and what the cache
// and devices did during it. Serving studies derive TTFT and TBT
// percentiles from the event stream instead of per-run means.
type StepEvent struct {
	// Request is the workload request ID this step served.
	Request int
	// Phase is the serving stage of this step.
	Phase Phase
	// Index is 0 for prefill and the decode-step ordinal (0-based)
	// within the request otherwise.
	Index int
	// Tokens is the number of tokens processed this step (the prompt
	// length at prefill, 1 at decode).
	Tokens int
	// Latency is the simulated wall-clock cost of the step in seconds.
	Latency float64
	// Start and End are absolute simulation-clock bounds of the step.
	Start, End float64
	// Hits and Misses count expert-cache lookups during this step.
	Hits, Misses int64
	// CPUBusy, GPUBusy and LinkBusy report how far each resource's
	// occupancy frontier advanced during this step (seconds).
	CPUBusy, GPUBusy, LinkBusy float64
	// Done marks the request's final step.
	Done bool
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithMaxConcurrent admits up to n requests at once; their prefill and
// decode steps interleave round-robin, sharing the expert cache, the
// way a continuously-batched server mixes phases. The default of 1
// serves requests strictly in order. n < 1 panics.
func WithMaxConcurrent(n int) SessionOption {
	if n < 1 {
		panic(fmt.Sprintf("engine: WithMaxConcurrent(%d) must be at least 1", n))
	}
	return func(s *Session) { s.maxConcurrent = n }
}

// sessionRequest tracks one admitted request's progress.
type sessionRequest struct {
	req       workload.Request
	prefilled bool
	decoded   int
}

func (r *sessionRequest) done() bool {
	prefillDone := r.prefilled || r.req.PromptTokens <= 0
	return prefillDone && r.decoded >= r.req.DecodeTokens
}

// Session is the streaming run loop: requests are submitted (up front
// or while running), admitted up to the concurrency limit, and advanced
// one engine iteration per Step call — a prefill forward or a single
// decode step — with a StepEvent emitted for each. The expert cache,
// trace generator and device clocks carry state across requests, the
// state a long-running server would have.
type Session struct {
	e             *Engine
	pending       []*sessionRequest
	active        []*sessionRequest
	rr            int // round-robin cursor over active
	maxConcurrent int
	steps         int
}

// NewSession starts a streaming run loop on the engine. An engine
// should drive one session (or the Run* compatibility wrappers) at a
// time; interleaving several corrupts none of the accounting but makes
// the shared clock meaningless.
func (e *Engine) NewSession(opts ...SessionOption) *Session {
	s := &Session{e: e, maxConcurrent: 1}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Submit enqueues requests. It may be called before the first Step or
// at any point during the run (a live request stream). A request with
// PromptTokens <= 0 skips prefill (a decode-only burst); one with
// DecodeTokens <= 0 stops after prefill.
func (s *Session) Submit(reqs ...workload.Request) {
	for _, r := range reqs {
		s.pending = append(s.pending, &sessionRequest{req: r})
	}
}

// Pending reports how many submitted requests have not yet finished.
func (s *Session) Pending() int { return len(s.pending) + len(s.active) }

// Steps reports how many step events the session has emitted.
func (s *Session) Steps() int { return s.steps }

// admit moves pending requests into the active set up to the
// concurrency limit. Requests with no work at all (neither prompt nor
// decode tokens) are dropped rather than granted a phantom step.
func (s *Session) admit() {
	for len(s.active) < s.maxConcurrent && len(s.pending) > 0 {
		r := s.pending[0]
		s.pending = s.pending[1:]
		if r.done() {
			continue
		}
		s.active = append(s.active, r)
	}
}

// Step runs one engine iteration for the next runnable request and
// returns its event. ok is false when every submitted request has
// finished.
func (s *Session) Step() (ev StepEvent, ok bool) {
	s.admit()
	if len(s.active) == 0 {
		return StepEvent{}, false
	}
	if s.rr >= len(s.active) {
		s.rr = 0
	}
	r := s.active[s.rr]

	ev = StepEvent{Request: r.req.ID, Start: s.e.clock}
	hits0, misses0 := s.e.cache.Hits(), s.e.cache.Misses()
	cpu0, gpu0, link0 := s.e.cpuBusy, s.e.gpuBusy, s.e.linkBusy

	if !r.prefilled && r.req.PromptTokens > 0 {
		ev.Phase = PhasePrefill
		ev.Tokens = r.req.PromptTokens
		s.e.scheduler = s.e.prefillSched
		acts := trace.PrefillStep(s.e.gen, r.req.PromptTokens)
		ev.Latency = s.e.runStep(acts, r.req.PromptTokens, r.req.PromptTokens)
		r.prefilled = true
	} else {
		ev.Phase = PhaseDecode
		ev.Index = r.decoded
		ev.Tokens = 1
		s.e.scheduler = s.e.decodeSched
		acts := trace.DecodeStep(s.e.gen)
		ev.Latency = s.e.runStep(acts, 1, s.contextFor(r))
		r.decoded++
	}

	ev.End = s.e.clock
	ev.Hits = s.e.cache.Hits() - hits0
	ev.Misses = s.e.cache.Misses() - misses0
	ev.CPUBusy = maxF(0, s.e.cpuBusy-cpu0)
	ev.GPUBusy = maxF(0, s.e.gpuBusy-gpu0)
	ev.LinkBusy = maxF(0, s.e.linkBusy-link0)
	ev.Done = r.done()
	s.steps++
	s.e.stats.CacheHitRate = s.e.cache.HitRate()

	if ev.Done {
		s.active = append(s.active[:s.rr], s.active[s.rr+1:]...)
		// rr now points at the next request; wrap handled on next Step.
	} else {
		s.rr++
	}
	return ev, true
}

// contextFor reports the KV context length for a request's next decode
// step: the prompt plus tokens generated so far, or the engine's
// configured default for decode-only bursts (the Run* wrappers).
func (s *Session) contextFor(r *sessionRequest) int {
	if r.req.PromptTokens <= 0 {
		return s.e.set.context
	}
	return r.req.PromptTokens + r.decoded
}

// Run drains the session, invoking handler (when non-nil) on every
// event, and returns the number of steps executed.
func (s *Session) Run(handler func(StepEvent)) int {
	n := 0
	for {
		ev, ok := s.Step()
		if !ok {
			return n
		}
		if handler != nil {
			handler(ev)
		}
		n++
	}
}

// RunDecode measures steps decode iterations and returns per-step TBT.
// It is a compatibility wrapper over a decode-only Session burst at the
// engine's configured KV context.
func (e *Engine) RunDecode(steps int) Result {
	if steps <= 0 {
		panic(fmt.Sprintf("engine: non-positive decode steps %d", steps))
	}
	s := e.NewSession()
	s.Submit(workload.Request{DecodeTokens: steps})
	res := Result{Framework: e.fw.Name, Model: e.cfg.Name}
	s.Run(func(ev StepEvent) {
		res.StepLatencies = append(res.StepLatencies, ev.Latency)
		res.Total += ev.Latency
	})
	res.Stats = e.stats
	return res
}

// RunPrefill measures a single prefill forward over the given prompt
// length and returns its TTFT as the sole step latency. It is a
// compatibility wrapper over a prefill-only Session request.
func (e *Engine) RunPrefill(tokens int) Result {
	if tokens <= 0 {
		panic(fmt.Sprintf("engine: non-positive prefill tokens %d", tokens))
	}
	s := e.NewSession()
	s.Submit(workload.Request{PromptTokens: tokens})
	res := Result{Framework: e.fw.Name, Model: e.cfg.Name}
	s.Run(func(ev StepEvent) {
		res.StepLatencies = append(res.StepLatencies, ev.Latency)
		res.Total += ev.Latency
	})
	res.Stats = e.stats
	return res
}
