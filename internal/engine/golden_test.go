package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hybrimoe/internal/workload"
)

// goldenScenario is one committed event-stream pin: a deterministic
// serving scenario whose full StepEvent stream is serialised to JSONL
// and diffed byte-for-byte against testdata. Any drift in the event
// schema, the simulation arithmetic, or the scheduling order shows up
// as a golden mismatch with the first diverging line identified —
// the trex-emu SimRecordCompare idiom. Regenerate the files with
// UPDATE_GOLDEN=1 go test ./internal/engine -run TestGoldenEventStream
// and review the diff like any other code change.
type goldenScenario struct {
	name string
	run  func(t *testing.T) []StepEvent
}

// goldenScenarios is the table fleet scenarios land in next: each entry
// pins one canonical serving shape.
func goldenScenarios() []goldenScenario {
	return []goldenScenario{
		{
			// The canonical bursty open-loop single-replica scenario: a
			// Poisson burst at twice the measured drain rate through a
			// continuously-batched session, so the stream exercises clock
			// jumps, queue waits, merged iterations and interleaved
			// decodes in one run.
			name: "bursty-openloop",
			run: func(t *testing.T) []StepEvent {
				e := newEngineOpts(t, 500, WithBatchPolicy("greedy", 64))
				s := e.NewSession(WithMaxConcurrent(3))
				stream := workload.NewStream(500, workload.AllDatasets()...).
					WithArrivals(workload.Poisson(4))
				reqs := stream.NextN(10)
				workload.CapDecode(reqs, 4)
				s.Submit(reqs...)
				var events []StepEvent
				s.Run(func(ev StepEvent) { events = append(events, ev) })
				return events
			},
		},
		{
			// The heterogeneous-mix scenario the disaggregation work
			// motivates: long-document prefill-heavy requests interleaved
			// with chat decode-heavy ones through one continuously-batched
			// session, pinning exactly the prefill-behind-decode
			// interference pattern pool splitting removes.
			name: "hetero-mix",
			run: func(t *testing.T) []StepEvent {
				e := newEngineOpts(t, 510, WithBatchPolicy("greedy", 64))
				s := e.NewSession(WithMaxConcurrent(3))
				s.Submit(
					workload.Request{ID: 0, PromptTokens: 1200, DecodeTokens: 3, Arrival: 0.00, Class: "longdoc"},
					workload.Request{ID: 1, PromptTokens: 32, DecodeTokens: 12, Arrival: 0.01, Class: "chat"},
					workload.Request{ID: 2, PromptTokens: 24, DecodeTokens: 10, Arrival: 0.02, Class: "chat"},
					workload.Request{ID: 3, PromptTokens: 900, DecodeTokens: 3, Arrival: 0.05, Class: "longdoc"},
					workload.Request{ID: 4, PromptTokens: 48, DecodeTokens: 12, Arrival: 0.06, Class: "chat"},
					workload.Request{ID: 5, PromptTokens: 28, DecodeTokens: 10, Arrival: 0.30, Class: "chat"},
				)
				var events []StepEvent
				s.Run(func(ev StepEvent) { events = append(events, ev) })
				return events
			},
		},
	}
}

// TestGoldenEventStream re-runs each scenario and diffs its serialised
// event stream byte-for-byte against the committed golden JSONL.
func TestGoldenEventStream(t *testing.T) {
	for _, sc := range goldenScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			events := sc.run(t)
			if len(events) == 0 {
				t.Fatal("scenario produced no events")
			}
			var buf bytes.Buffer
			if err := WriteEventLog(&buf, events); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_"+sc.name+".jsonl")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d events)", path, len(events))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if diff := diffJSONL(want, buf.Bytes()); diff != "" {
				t.Fatalf("event stream drifted from %s:\n%s", path, diff)
			}
		})
	}
}

// diffJSONL compares two JSONL byte streams and describes the first
// divergence line-by-line; "" means byte-identical.
func diffJSONL(want, got []byte) string {
	if bytes.Equal(want, got) {
		return ""
	}
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g []byte
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return fmt.Sprintf("streams differ in length only: golden %d lines, got %d",
		len(wantLines), len(gotLines))
}
