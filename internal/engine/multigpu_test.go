package engine

import (
	"math"
	"reflect"
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/workload"
)

// collect drains a session into its event list.
func collect(s *Session) []StepEvent {
	var events []StepEvent
	s.Run(func(ev StepEvent) { events = append(events, ev) })
	return events
}

// The 1-GPU degenerate pin: a session on the explicit single-GPU preset
// and one on MultiA6000Platform(1) must produce event-for-event
// identical runs — the N-device plumbing may not perturb the scalar
// path in any way.
func TestSingleGPUSessionEventIdentity(t *testing.T) {
	run := func(p *hw.Platform) []StepEvent {
		e, err := New(moe.DeepSeek(), p, HybriMoEFramework(),
			WithCacheRatio(0.25), WithSeed(200), WithPlanValidation())
		if err != nil {
			t.Fatal(err)
		}
		s := e.NewSession(WithMaxConcurrent(2))
		s.Submit(testRequests()...)
		return collect(s)
	}
	a := run(hw.A6000Platform())
	b := run(hw.MultiA6000Platform(1))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("single-GPU event streams diverged:\n%+v\nvs\n%+v", a, b)
	}
	for i, ev := range a {
		if len(ev.GPUBusyByDevice) != 1 || len(ev.LinkBusyByDevice) != 1 {
			t.Fatalf("event %d: single-GPU per-device vectors %v/%v, want length 1",
				i, ev.GPUBusyByDevice, ev.LinkBusyByDevice)
		}
		if math.Abs(ev.GPUBusyByDevice[0]-ev.GPUBusy) > 1e-12 ||
			math.Abs(ev.LinkBusyByDevice[0]-ev.LinkBusy) > 1e-12 {
			t.Fatalf("event %d: scalar/vector mismatch: %+v", i, ev)
		}
	}
}

// expertParallelFramework is the HybriMoE stack planning through the
// multi-GPU placement scheduler.
func expertParallelFramework() Framework {
	fw := HybriMoEFramework()
	fw.Sched = "expert-parallel"
	return fw
}

// A dual-GPU session must exercise both devices: per-device busy
// vectors carry length 2, the scalars are their sums, both GPUs see
// compute, and both cache shards hold experts.
func TestDualGPUSessionUsesBothDevices(t *testing.T) {
	e, err := New(moe.DeepSeek(), hw.DualA6000Platform(), expertParallelFramework(),
		WithCacheRatio(0.25), WithSeed(200), WithPlanValidation())
	if err != nil {
		t.Fatal(err)
	}
	if e.NumGPUs() != 2 {
		t.Fatalf("NumGPUs = %d, want 2", e.NumGPUs())
	}
	s := e.NewSession(WithMaxConcurrent(2))
	s.Submit(testRequests()...)
	events := collect(s)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	busy := make([]float64, 2)
	for i, ev := range events {
		if len(ev.GPUBusyByDevice) != 2 || len(ev.LinkBusyByDevice) != 2 {
			t.Fatalf("event %d: per-device vectors %v/%v, want length 2",
				i, ev.GPUBusyByDevice, ev.LinkBusyByDevice)
		}
		var gpuSum, linkSum float64
		for d := 0; d < 2; d++ {
			gpuSum += ev.GPUBusyByDevice[d]
			linkSum += ev.LinkBusyByDevice[d]
			busy[d] += ev.GPUBusyByDevice[d]
		}
		if math.Abs(gpuSum-ev.GPUBusy) > 1e-9 || math.Abs(linkSum-ev.LinkBusy) > 1e-9 {
			t.Fatalf("event %d: scalars are not the vector sums: %+v", i, ev)
		}
	}
	if busy[0] == 0 || busy[1] == 0 {
		t.Fatalf("expert-parallel on two GPUs left a device idle: %v", busy)
	}
	caches := e.Caches()
	if caches.Devices() != 2 {
		t.Fatalf("cache devices = %d, want 2", caches.Devices())
	}
	if caches.Shard(0).Len() == 0 || caches.Shard(1).Len() == 0 {
		t.Fatalf("warm start left a shard empty: %d/%d",
			caches.Shard(0).Len(), caches.Shard(1).Len())
	}
	if hr := caches.HitRate(); hr <= 0 {
		t.Fatalf("aggregate hit rate = %v", hr)
	}
}

// Per-device capacity: every shard gets the full per-GPU expert budget,
// so a dual platform holds twice the residency of a single one.
func TestPerDeviceCacheCapacity(t *testing.T) {
	cfg := moe.DeepSeek()
	single, err := New(cfg, hw.A6000Platform(), HybriMoEFramework(), WithCacheRatio(0.25), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dual, err := New(cfg, hw.DualA6000Platform(), HybriMoEFramework(), WithCacheRatio(0.25), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * single.Caches().Capacity()
	if got := dual.Caches().Capacity(); got != want {
		t.Fatalf("dual capacity = %d, want %d (2× single)", got, want)
	}
}

// Mixing a device-aware decode scheduler with a single-GPU prefill
// scheduler on a multi-GPU platform is rejected at construction: one
// stage would spread residency across devices the other cannot see.
// On one GPU the mix is harmless and allowed.
func TestMixedDeviceAwarenessRejectedOnMultiGPU(t *testing.T) {
	fw := KTransformersFramework()
	fw.Sched = "expert-parallel" // prefill stays gpu-centric
	if _, err := New(moe.DeepSeek(), hw.QuadA6000Platform(), fw, WithSeed(1)); err == nil {
		t.Fatal("mixed stage schedulers on a 4-GPU platform should error")
	}
	if _, err := New(moe.DeepSeek(), hw.A6000Platform(), fw, WithSeed(1)); err != nil {
		t.Fatalf("mixed stage schedulers on one GPU should be fine: %v", err)
	}
}

// Request classes ride every event of the request, shed records
// included.
func TestStepEventCarriesClass(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 200)
	s := e.NewSession()
	s.Submit(workload.Request{ID: 7, PromptTokens: 16, DecodeTokens: 2, Class: "interactive"})
	for _, ev := range collect(s) {
		if ev.Class != "interactive" {
			t.Fatalf("event lost its class: %+v", ev)
		}
	}
}
