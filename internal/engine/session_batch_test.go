package engine

import (
	"math"
	"reflect"
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/workload"
)

// collectEvents drains a fresh session over reqs and returns its events.
func collectEvents(t *testing.T, seed uint64, conc int, reqs []workload.Request, extra ...Option) []StepEvent {
	t.Helper()
	e := newEngineOpts(t, seed, extra...)
	s := e.NewSession(WithMaxConcurrent(conc))
	s.Submit(reqs...)
	var events []StepEvent
	s.Run(func(ev StepEvent) { events = append(events, ev) })
	return events
}

// TestBatchNoneIsIdentical pins the compatibility contract: an engine
// with an explicit WithBatchPolicy("none", ...) emits an event stream
// deep-equal to the default engine's — batch formation is a strict
// superset of today's Session loop, field for field.
func TestBatchNoneIsIdentical(t *testing.T) {
	reqs := []workload.Request{
		{ID: 0, PromptTokens: 32, DecodeTokens: 5},
		{ID: 1, PromptTokens: 48, DecodeTokens: 3},
		{ID: 2, DecodeTokens: 4},
		{ID: 3, PromptTokens: 24, DecodeTokens: 2},
	}
	base := collectEvents(t, 300, 3, reqs)
	explicit := collectEvents(t, 300, 3, reqs, WithBatchPolicy("none", 0))
	if !reflect.DeepEqual(base, explicit) {
		t.Fatalf("batch=none diverged from the default loop:\n default: %+v\nexplicit: %+v", base, explicit)
	}
	// Every compute event of the unbatched loop is a solo batch.
	for _, ev := range base {
		if ev.BatchSize != 1 || ev.Batch < 1 {
			t.Fatalf("unbatched event with batch fields %d/%d: %+v", ev.Batch, ev.BatchSize, ev)
		}
	}
}

// TestBatchedSessionConservation pins the merged iteration's
// accounting against the equivalent unbatched run on a decode-only
// workload (where per-step lookup counts are workload-determined):
// same total tokens, same total cache lookups (hits+misses), and the
// same per-request Done events — batching reshapes iterations, never
// loses or invents work.
func TestBatchedSessionConservation(t *testing.T) {
	mkReqs := func() []workload.Request {
		return []workload.Request{
			{ID: 0, DecodeTokens: 6},
			{ID: 1, DecodeTokens: 3},
			{ID: 2, DecodeTokens: 5},
			{ID: 3, DecodeTokens: 2},
		}
	}
	type totals struct {
		tokens int
		looks  int64
		done   map[int]int
	}
	sum := func(events []StepEvent) totals {
		tt := totals{done: map[int]int{}}
		for _, ev := range events {
			tt.tokens += ev.Tokens
			tt.looks += ev.Hits + ev.Misses
			if ev.Done {
				tt.done[ev.Request]++
			}
		}
		return tt
	}
	plain := sum(collectEvents(t, 301, 4, mkReqs()))
	batched := sum(collectEvents(t, 301, 4, mkReqs(), WithBatchPolicy("greedy", 64)))

	if plain.tokens != batched.tokens {
		t.Fatalf("token conservation broken: plain %d, batched %d", plain.tokens, batched.tokens)
	}
	if plain.looks != batched.looks {
		t.Fatalf("lookup conservation broken: plain hits+misses %d, batched %d", plain.looks, batched.looks)
	}
	if !reflect.DeepEqual(plain.done, batched.done) {
		t.Fatalf("done-event conservation broken: plain %v, batched %v", plain.done, batched.done)
	}
	for id, n := range batched.done {
		if n != 1 {
			t.Fatalf("request %d emitted %d Done events", id, n)
		}
	}
}

// TestBatchedStepEventAttribution checks the merged iteration's event
// shape: co-members share the Batch ordinal, Start/End bounds and the
// iteration latency, and their attributed hits/misses/busy deltas sum
// exactly to what the engine's counters moved by.
func TestBatchedStepEventAttribution(t *testing.T) {
	e := newEngineOpts(t, 302, WithBatchPolicy("greedy", 64))
	s := e.NewSession(WithMaxConcurrent(4))
	s.Submit(workload.Request{ID: 0, DecodeTokens: 4},
		workload.Request{ID: 1, DecodeTokens: 4},
		workload.Request{ID: 2, DecodeTokens: 4})
	if s.Batcher() != "greedy" {
		t.Fatalf("session batcher %q, want greedy", s.Batcher())
	}

	byBatch := map[int][]StepEvent{}
	s.Run(func(ev StepEvent) { byBatch[ev.Batch] = append(byBatch[ev.Batch], ev) })
	if s.Batches() >= s.Steps() {
		t.Fatalf("no merged iterations: %d batches over %d steps", s.Batches(), s.Steps())
	}

	merged := 0
	var looks int64
	for ord, events := range byBatch {
		if len(events) != events[0].BatchSize {
			t.Fatalf("batch %d emitted %d events for BatchSize %d", ord, len(events), events[0].BatchSize)
		}
		var h, m int64
		var cpu, gpu, link float64
		for _, ev := range events {
			if ev.Start != events[0].Start || ev.End != events[0].End {
				t.Fatalf("batch %d members disagree on bounds: %+v vs %+v", ord, ev, events[0])
			}
			if ev.Latency != events[0].Latency {
				t.Fatalf("batch %d members disagree on latency", ord)
			}
			if ev.Phase != PhaseDecode || ev.Tokens != 1 {
				t.Fatalf("decode-only batch member mis-phased: %+v", ev)
			}
			h += ev.Hits
			m += ev.Misses
			cpu += ev.CPUBusy
			gpu += ev.GPUBusy
			link += ev.LinkBusy
		}
		looks += h + m
		if len(events) > 1 {
			merged++
			if h+m == 0 {
				t.Fatalf("merged batch %d attributed no lookups", ord)
			}
		}
		for name, v := range map[string]float64{"cpu": cpu, "gpu": gpu, "link": link} {
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("batch %d %s busy attribution = %v", ord, name, v)
			}
		}
	}
	if merged == 0 {
		t.Fatal("greedy policy with 3 decode requests never merged a batch")
	}
	// Attributed lookups across all events equal the cache's counters.
	if got := e.Cache().Hits() + e.Cache().Misses(); got != looks {
		t.Fatalf("attributed lookups %d != cache counters %d", looks, got)
	}
}

// TestBatchedMixedPhases runs greedy batching over a stream that still
// owes prefills: merged iterations containing prefill work must emit
// per-request events with the right phases and finish every request.
func TestBatchedMixedPhases(t *testing.T) {
	reqs := []workload.Request{
		{ID: 0, PromptTokens: 24, DecodeTokens: 3},
		{ID: 1, PromptTokens: 16, DecodeTokens: 2},
		{ID: 2, PromptTokens: 8, DecodeTokens: 4},
	}
	events := collectEvents(t, 303, 3, reqs, WithBatchPolicy("greedy", 64))
	prefills, decodes := map[int]int{}, map[int]int{}
	// The clock is monotonic across iterations; events within one batch
	// share their bounds and deliberately overlap each other.
	var prevEnd float64
	prevBatch := 0
	for _, ev := range events {
		if ev.End < ev.Start || (ev.Batch != prevBatch && ev.Start < prevEnd) {
			t.Fatalf("batched event clock not monotonic: %+v after %v", ev, prevEnd)
		}
		prevEnd, prevBatch = ev.End, ev.Batch
		switch ev.Phase {
		case PhasePrefill:
			prefills[ev.Request]++
			if ev.Tokens != reqs[ev.Request].PromptTokens {
				t.Fatalf("prefill tokens %d for request %d", ev.Tokens, ev.Request)
			}
		case PhaseDecode:
			decodes[ev.Request]++
		}
	}
	for _, r := range reqs {
		if prefills[r.ID] != 1 || decodes[r.ID] != r.DecodeTokens {
			t.Fatalf("request %d served %d prefills / %d decodes, want 1 / %d",
				r.ID, prefills[r.ID], decodes[r.ID], r.DecodeTokens)
		}
	}
}

// TestPhaseAwareBatchesStayPure pins the phase-aware policy end-to-end:
// no merged iteration ever mixes prefill and decode events.
func TestPhaseAwareBatchesStayPure(t *testing.T) {
	reqs := []workload.Request{
		{ID: 0, PromptTokens: 24, DecodeTokens: 4},
		{ID: 1, PromptTokens: 16, DecodeTokens: 4},
		{ID: 2, PromptTokens: 8, DecodeTokens: 4},
		{ID: 3, DecodeTokens: 6},
	}
	events := collectEvents(t, 304, 4, reqs, WithBatchPolicy("phase-aware", 256))
	phases := map[int]map[Phase]bool{}
	sizes := map[int]int{}
	for _, ev := range events {
		if phases[ev.Batch] == nil {
			phases[ev.Batch] = map[Phase]bool{}
		}
		phases[ev.Batch][ev.Phase] = true
		sizes[ev.Batch] = ev.BatchSize
	}
	merged := false
	for ord, ph := range phases {
		if len(ph) > 1 {
			t.Fatalf("phase-aware batch %d mixed phases %v", ord, ph)
		}
		merged = merged || sizes[ord] > 1
	}
	if !merged {
		t.Fatal("phase-aware never merged a batch over 4 concurrent requests")
	}
}

// TestWithBatchPolicyValidation pins eager option validation: unknown
// names and rejected budgets fail at engine construction, not at the
// first Step.
func TestWithBatchPolicyValidation(t *testing.T) {
	mk := func(opt Option) error {
		_, err := New(moe.DeepSeek(), hw.A6000Platform(), HybriMoEFramework(), opt)
		return err
	}
	if err := mk(WithBatchPolicy("no-such-batcher", 64)); err == nil {
		t.Fatal("unknown batch policy must fail construction")
	}
	if err := mk(WithBatchPolicy("greedy", 0)); err == nil {
		t.Fatal("greedy with zero budget must fail construction")
	}
	if err := mk(WithBatchPolicy("phase-aware", -1)); err == nil {
		t.Fatal("phase-aware with negative budget must fail construction")
	}
	if err := mk(WithBatchPolicy("greedy", 128)); err != nil {
		t.Fatalf("valid batch policy rejected: %v", err)
	}
}
