package engine

import (
	"bufio"
	"encoding/json"
	"io"
)

// WriteEventLog serialises a StepEvent stream as JSONL — one JSON object
// per event, fields in StepEvent declaration order, no extra whitespace.
// The encoding is byte-stable for identical streams (encoding/json emits
// struct fields in order and shortest-round-trip floats), which is what
// the golden-scenario harness diffs: a committed golden file re-compared
// against a re-run catches any drift in either the event schema or the
// simulation that feeds it.
func WriteEventLog(w io.Writer, events []StepEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		// Encode appends the newline that terminates each record.
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
