package engine

import (
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/workload"
)

func reclaimEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(moe.DeepSeek(), hw.A6000Platform(), HybriMoEFramework(),
		WithCacheRatio(0.25), WithSeed(900))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSessionReclaimUnstarted pins the reclaim contract: everything
// that has not run a compute step — scheduled future arrivals, the
// admission queue, admitted-but-never-stepped requests — comes back in
// submission order, while started work stays and finishes.
func TestSessionReclaimUnstarted(t *testing.T) {
	s := reclaimEngine(t).NewSession(WithMaxConcurrent(1))
	reqs := []workload.Request{
		{ID: 10, PromptTokens: 32, DecodeTokens: 2},
		{ID: 11, PromptTokens: 16, DecodeTokens: 2},
		{ID: 12, PromptTokens: 16, DecodeTokens: 2},
		{ID: 13, PromptTokens: 16, DecodeTokens: 2},
	}
	s.Submit(reqs...)
	if _, ok := s.Step(); !ok {
		t.Fatal("session refused its first step")
	}

	got := s.Reclaim()
	if len(got) != 3 {
		t.Fatalf("reclaimed %d requests, want the 3 unstarted", len(got))
	}
	for i, want := range []int{11, 12, 13} {
		if got[i].ID != want {
			t.Fatalf("reclaimed[%d].ID = %d, want %d (submission order)", i, got[i].ID, want)
		}
	}

	// The started request is untouched: it alone drains to completion.
	done := map[int]bool{}
	s.Run(func(ev StepEvent) {
		if ev.Done {
			done[ev.Request] = true
		}
	})
	if len(done) != 1 || !done[10] {
		t.Fatalf("post-reclaim completions %v, want exactly request 10", done)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d pending after drain", s.Pending())
	}
}

// TestSessionReclaimFutureArrivals pins the timeline rebuild: requests
// still scheduled as future arrivals are reclaimed with their original
// stamps intact and the emptied session refuses to step.
func TestSessionReclaimFutureArrivals(t *testing.T) {
	s := reclaimEngine(t).NewSession()
	reqs := []workload.Request{
		{ID: 0, PromptTokens: 16, DecodeTokens: 1, Arrival: 0.5},
		{ID: 1, PromptTokens: 16, DecodeTokens: 1, Arrival: 0.1},
		{ID: 2, PromptTokens: 16, DecodeTokens: 1, Arrival: 0.9},
	}
	s.Submit(reqs...)

	got := s.Reclaim()
	if len(got) != 3 {
		t.Fatalf("reclaimed %d of 3 scheduled arrivals", len(got))
	}
	for i, r := range got {
		// Submission order, not arrival order — the caller re-enqueues
		// by arrival and must not lose the original stable tiebreak.
		if r.ID != reqs[i].ID || r.Arrival != reqs[i].Arrival {
			t.Fatalf("reclaimed[%d] = %+v, want %+v", i, r, reqs[i])
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after full reclaim", s.Pending())
	}
	if _, ok := s.Step(); ok {
		t.Fatal("emptied session agreed to step")
	}
}

// TestSessionReclaimResubmit pins the round trip the cluster rides:
// requests reclaimed from one session serve to completion on another,
// arrival stamps preserved.
func TestSessionReclaimResubmit(t *testing.T) {
	a := reclaimEngine(t).NewSession(WithMaxConcurrent(2))
	a.Submit(
		workload.Request{ID: 0, PromptTokens: 32, DecodeTokens: 2, Arrival: 0.01},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 2, Arrival: 0.02},
		workload.Request{ID: 2, PromptTokens: 16, DecodeTokens: 2, Arrival: 0.03},
	)
	if _, ok := a.Step(); !ok {
		t.Fatal("session refused its first step")
	}
	moved := a.Reclaim()
	if len(moved) == 0 {
		t.Fatal("nothing reclaimed; scenario never exercised the move")
	}

	b := reclaimEngine(t).NewSession(WithMaxConcurrent(2))
	b.Submit(moved...)
	done := map[int]bool{}
	b.Run(func(ev StepEvent) {
		if ev.Done {
			done[ev.Request] = true
		}
	})
	if len(done) != len(moved) {
		t.Fatalf("second session completed %d of %d reclaimed requests", len(done), len(moved))
	}
	for _, r := range moved {
		if !done[r.ID] {
			t.Fatalf("reclaimed request %d never completed on the second session", r.ID)
		}
	}
}
