package engine

import (
	"math"
	"reflect"
	"testing"

	"hybrimoe/internal/workload"
)

// stepUntilWorkload is the shared bursty open-loop shape both sides of
// the equivalence tests replay.
func stepUntilWorkload(seed uint64) []workload.Request {
	stream := workload.NewStream(seed, workload.AllDatasets()...).
		WithArrivals(workload.Poisson(6))
	reqs := stream.NextN(12)
	workload.CapDecode(reqs, 4)
	return reqs
}

// TestStepUntilMatchesStepLoop pins the batched stepping contract the
// cluster's parallel windows build on: driving a session through
// StepUntil at an arbitrary ladder of horizons — including horizons
// landing mid-run, between steps, and past the end — yields exactly the
// event sequence a plain Step loop emits on an equal-seed twin, and
// every step's pre-step clock respects its horizon (a step may finish
// past the horizon, but never starts at or beyond it).
func TestStepUntilMatchesStepLoop(t *testing.T) {
	const seed = 4200

	ref := newEngineOpts(t, seed, WithBatchPolicy("greedy", 64))
	rs := ref.NewSession(WithMaxConcurrent(3))
	rs.Submit(stepUntilWorkload(seed)...)
	var want []StepEvent
	rs.Run(func(ev StepEvent) { want = append(want, ev) })
	if len(want) == 0 {
		t.Fatal("reference run emitted no events")
	}
	span := want[len(want)-1].End

	e := newEngineOpts(t, seed, WithBatchPolicy("greedy", 64))
	s := e.NewSession(WithMaxConcurrent(3))
	s.Submit(stepUntilWorkload(seed)...)
	horizons := []float64{span * 0.1, span * 0.25, span * 0.25, span * 0.6, span, math.Inf(1)}
	var got []StepEvent
	for _, h := range horizons {
		pre := e.Clock()
		batch := s.StepUntil(h)
		if pre >= h && len(batch) != 0 {
			t.Fatalf("StepUntil(%v) stepped a session already at clock %v", h, pre)
		}
		got = append(got, batch...)
		if e.Clock() < h && s.Pending() > 0 {
			t.Fatalf("StepUntil(%v) stopped at clock %v with %d pending", h, e.Clock(), s.Pending())
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("horizon ladder left %d requests pending", s.Pending())
	}
	if len(got) != len(want) {
		t.Fatalf("StepUntil emitted %d events, Step loop %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d diverged:\n  step:      %+v\n  stepuntil: %+v", i, want[i], got[i])
		}
	}
}

// TestStepUntilClockedKeysAreMonotone pins the merge-key invariant the
// cluster's (clock, replica) interleave depends on: the pre-step clocks
// StepUntilClocked records are non-decreasing, one per event, and all
// strictly below the horizon.
func TestStepUntilClockedKeysAreMonotone(t *testing.T) {
	const seed = 4300
	e := newEngineOpts(t, seed, WithBatchPolicy("greedy", 64))
	s := e.NewSession(WithMaxConcurrent(3))
	s.Submit(stepUntilWorkload(seed)...)

	var evs []StepEvent
	var clocks []float64
	for s.Pending() > 0 {
		h := e.Clock() + 0.05
		evs, clocks = s.StepUntilClocked(h, evs[:0], clocks[:0])
		if len(evs) != len(clocks) {
			t.Fatalf("%d events but %d clocks", len(evs), len(clocks))
		}
		for i, at := range clocks {
			if at >= h {
				t.Fatalf("step %d keyed at %v, at or past horizon %v", i, at, h)
			}
			if i > 0 && at < clocks[i-1] {
				t.Fatalf("merge keys regressed: %v after %v", at, clocks[i-1])
			}
		}
	}
}
