package engine

import (
	"testing"

	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// TestSLOAdmissionClassTargets unit-tests the per-class override table:
// a class entry replaces the guard-wide budgets, zero fields inherit,
// and ShedExempt converts hard-breach sheds into deferrals the way
// Priority > 0 does.
func TestSLOAdmissionClassTargets(t *testing.T) {
	a := NewSLOAdmission(1.0, 0)
	a.Classes = map[string]ClassTarget{
		"interactive": {TTFTp95: 0.5},
		"batch":       {TTFTp95: 10},
		"protected":   {ShedExempt: true},
	}
	sample := func(p95 float64, n int) SLOSnapshot {
		return SLOSnapshot{TTFT: report.LatencyStats{N: n, P95: p95}}
	}
	cases := []struct {
		name string
		req  workload.Request
		snap SLOSnapshot
		want AdmissionDecision
	}{
		{"unclassified keeps guard-wide", workload.Request{}, sample(1.2, 10), AdmissionDefer},
		{"strict class sheds where guard-wide admits", workload.Request{Class: "interactive"}, sample(0.9, 10), AdmissionShed},
		{"lax class admits where guard-wide sheds", workload.Request{Class: "batch"}, sample(2.0, 10), AdmissionAdmit},
		{"unknown class keeps guard-wide", workload.Request{Class: "mystery"}, sample(2.0, 10), AdmissionShed},
		{"zero-field entry inherits guard-wide target", workload.Request{Class: "protected"}, sample(1.2, 10), AdmissionDefer},
		{"shed-exempt class defers on hard breach", workload.Request{Class: "protected"}, sample(2.0, 10), AdmissionDefer},
		{"exemption does not bypass the sample floor", workload.Request{Class: "interactive"}, sample(9, 2), AdmissionAdmit},
	}
	for _, tc := range cases {
		if got := a.Decide(tc.req, tc.snap); got != tc.want {
			t.Errorf("%s: Decide = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSessionClassBudgetsShedSelectively is the satellite regression
// end to end: one bursty session carrying two SLO classes through one
// admission guard — the strict class's tight TTFT budget breaches under
// queueing and sheds, while the lax class rides the very same quantiles
// through untouched.
func TestSessionClassBudgetsShedSelectively(t *testing.T) {
	mkReqs := func() []workload.Request {
		reqs := make([]workload.Request, 12)
		for i := range reqs {
			class := "interactive"
			if i%2 == 1 {
				class = "batch"
			}
			// A near-simultaneous burst, far faster than the server
			// drains it: queue wait dominates the shared TTFT quantiles.
			reqs[i] = workload.Request{ID: i, PromptTokens: 32, DecodeTokens: 2,
				Class: class, Arrival: 0.001 * float64(i+1)}
		}
		return reqs
	}
	// Calibrate the strict budget just above the forward-only TTFT, the
	// queue-blind-fix idiom: only queueing can breach it.
	var maxForward float64
	{
		e := newEngineOpts(t, 430)
		s := e.NewSession()
		for _, r := range mkReqs() {
			r.Arrival = 0
			s.Submit(r)
		}
		s.Run(func(ev StepEvent) {
			if ev.Phase == PhasePrefill && ev.Latency > maxForward {
				maxForward = ev.Latency
			}
		})
	}
	e := newEngineOpts(t, 430, WithAdmission(&SLOAdmission{
		MinSamples: 2,
		ShedFactor: 1.2,
		Classes: map[string]ClassTarget{
			"interactive": {TTFTp95: maxForward * 1.05},
			"batch":       {TTFTp95: 1000},
		},
	}))
	s := e.NewSession()
	s.Submit(mkReqs()...)
	shedByClass := map[string]int{}
	doneByClass := map[string]int{}
	s.Run(func(ev StepEvent) {
		switch {
		case ev.Phase == PhaseShed:
			shedByClass[ev.Class]++
		case ev.Done:
			doneByClass[ev.Class]++
		}
	})
	if shedByClass["interactive"] == 0 {
		t.Fatal("strict class shed nothing under a breached budget")
	}
	if shedByClass["batch"] != 0 {
		t.Fatalf("lax class shed %d requests under a 1000s budget", shedByClass["batch"])
	}
	if doneByClass["batch"] != 6 {
		t.Fatalf("lax class completed %d of 6 requests", doneByClass["batch"])
	}
}
