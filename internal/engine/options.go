package engine

import (
	"fmt"
	"math"

	"hybrimoe/internal/prefetch"
	"hybrimoe/internal/reqsched"
)

// Option configures an engine at construction. Options validate their
// arguments eagerly: New reports the first invalid option instead of
// silently substituting defaults.
type Option func(*settings) error

// settings collects the resolved construction parameters. Defaults are
// applied up front and only an option overwrites them, so an explicit
// zero cache ratio is a real baseline, never mistaken for "unset".
type settings struct {
	cacheRatio    float64
	context       int
	seed          uint64
	warmupIters   int
	recordTrace   bool
	validatePlans bool
	prefetcher    prefetch.Prefetcher
	reqSched      string
	batchPolicy   string
	batchBudget   int
	admission     AdmissionPolicy
}

func defaultSettings() settings {
	return settings{
		cacheRatio:  0.25,
		context:     512,
		warmupIters: 32,
		reqSched:    "round-robin",
		batchPolicy: "none",
	}
}

// WithCacheRatio sets the GPU expert cache ratio (0.25, 0.50, 0.75 in
// the paper; 0.25 when unset). An explicit 0 is honoured as the
// zero-cache baseline; ratios outside [0, 1] are rejected.
func WithCacheRatio(ratio float64) Option {
	return func(s *settings) error {
		if math.IsNaN(ratio) || ratio < 0 || ratio > 1 {
			return fmt.Errorf("engine: cache ratio %v outside [0, 1]", ratio)
		}
		s.cacheRatio = ratio
		return nil
	}
}

// WithContext sets the KV context length assumed for decode attention
// cost (512 when unset). Decode-only runs use it directly; Session
// requests grow their context from the prompt instead.
func WithContext(tokens int) Option {
	return func(s *settings) error {
		if tokens <= 0 {
			return fmt.Errorf("engine: context length %d must be positive", tokens)
		}
		s.context = tokens
		return nil
	}
}

// WithSeed sets the seed driving the synthetic routing trace
// (deterministic runs).
func WithSeed(seed uint64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithWarmupIters sets the number of historical iterations used to
// frequency-warm the cache before measurement (32 when unset). An
// explicit 0 disables warm-up; negative counts are rejected.
func WithWarmupIters(iters int) Option {
	return func(s *settings) error {
		if iters < 0 {
			return fmt.Errorf("engine: warmup iterations %d must be non-negative", iters)
		}
		s.warmupIters = iters
		return nil
	}
}

// WithTraceRecording keeps per-resource span timelines for Gantt output.
func WithTraceRecording() Option {
	return func(s *settings) error {
		s.recordTrace = true
		return nil
	}
}

// WithPlanValidation runs sched.Plan.Validate on every layer plan
// (tests; expensive).
func WithPlanValidation() Option {
	return func(s *settings) error {
		s.validatePlans = true
		return nil
	}
}

// WithRequestScheduler selects the request-level scheduling policy the
// engine's Sessions advance requests with, by reqsched registry name
// ("round-robin" when unset — the historical Session behaviour; "fcfs",
// "sjf" and "edf" among the built-ins). Unknown names are rejected
// eagerly with the registered set. Each Session builds its own policy
// instance, so stateful policies never share cursors across sessions.
func WithRequestScheduler(name string) Option {
	return func(s *settings) error {
		if _, err := reqsched.New(name); err != nil {
			return err
		}
		s.reqSched = name
		return nil
	}
}

// WithBatchPolicy selects the batch former the engine's Sessions merge
// concurrent requests' iterations with, by reqsched batch-registry name
// plus a token budget per merged iteration ("none" when unset — every
// step advances one request, the historical Session behaviour; "greedy"
// packs any phases up to the budget, "phase-aware" keeps decode batches
// free of prefill work). Unknown names and budgets the policy rejects
// (the packing policies need at least 1 token) error eagerly. Each
// Session builds its own policy instance.
func WithBatchPolicy(name string, budget int) Option {
	return func(s *settings) error {
		if _, err := reqsched.NewBatch(name, budget); err != nil {
			return err
		}
		s.batchPolicy = name
		s.batchBudget = budget
		return nil
	}
}

// WithAdmission installs an admission controller on the engine's
// Sessions: every pending request passes through policy before entering
// the active set, with the live TTFT/TBT quantiles in hand, and may be
// deferred or shed (emitting PhaseDeferred/PhaseShed events). Nil is
// rejected; omit the option for unconditional admission.
func WithAdmission(policy AdmissionPolicy) Option {
	return func(s *settings) error {
		if policy == nil {
			return fmt.Errorf("engine: WithAdmission(nil)")
		}
		s.admission = policy
		return nil
	}
}

// WithPrefetcher overrides the framework's named prefetcher with a
// concrete instance (ablation studies vary the lookahead window this
// way).
func WithPrefetcher(p prefetch.Prefetcher) Option {
	return func(s *settings) error {
		if p == nil {
			return fmt.Errorf("engine: WithPrefetcher(nil)")
		}
		s.prefetcher = p
		return nil
	}
}
