package engine

import (
	"fmt"
	"sort"

	"hybrimoe/internal/cache"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/prefetch"
	"hybrimoe/internal/sched"
	"hybrimoe/internal/sim"
	"hybrimoe/internal/trace"
)

// Options configures an engine run.
type Options struct {
	// CacheRatio is the GPU expert cache ratio (0.25, 0.50, 0.75 in the
	// paper).
	CacheRatio float64
	// Context is the KV context length assumed for decode attention
	// cost (512 when 0).
	Context int
	// Seed drives the synthetic routing trace.
	Seed uint64
	// WarmupIters is the number of historical iterations used to
	// frequency-warm the cache before measurement (32 when 0).
	WarmupIters int
	// RecordTrace keeps per-resource span timelines for Gantt output.
	RecordTrace bool
	// ValidatePlans runs sched.Plan.Validate on every layer plan
	// (tests; expensive).
	ValidatePlans bool
}

func (o *Options) fillDefaults() {
	if o.Context == 0 {
		o.Context = 512
	}
	if o.WarmupIters == 0 {
		o.WarmupIters = 32
	}
	if o.CacheRatio <= 0 {
		o.CacheRatio = 0.25
	}
}

// Engine simulates one framework serving one model on one platform.
type Engine struct {
	cfg      *moe.Config
	platform *hw.Platform
	fw       Framework
	opts     Options

	gen   *trace.Generator
	cache *cache.Cache
	// decodeSched and prefillSched are the per-stage scheduling
	// strategies; scheduler points at the one for the current stage.
	decodeSched  sched.Scheduler
	prefillSched sched.Scheduler
	scheduler    sched.Scheduler
	pref         prefetch.Prefetcher
	gpuLayers    int // StaticSplit: leading layers resident on GPU

	// Absolute resource occupancy (seconds since run start).
	cpuBusy, gpuBusy, linkBusy float64
	clock                      float64
	// curTokens is the current step's batch size (prefetch load
	// prediction scales with it).
	curTokens int

	cpuTL, gpuTL, linkTL *sim.Timeline

	stats RunStats
}

// RunStats aggregates execution counters for one run.
type RunStats struct {
	CPUOps            int
	GPUOps            int
	DemandTransfers   int
	PrefetchTransfers int
	MissInserts       int
	CacheHitRate      float64
}

// Result reports one measured run.
type Result struct {
	Framework string
	Model     string
	// StepLatencies holds per-decode-step latency, or a single entry
	// (the TTFT) for prefill.
	StepLatencies []float64
	// Total is the summed latency of all measured steps.
	Total float64
	Stats RunStats
}

// Mean reports the mean step latency.
func (r Result) Mean() float64 {
	if len(r.StepLatencies) == 0 {
		return 0
	}
	return r.Total / float64(len(r.StepLatencies))
}

// New builds an engine. The cache is warm-started from historical
// activation frequency (a separate trace seed), matching how the
// compared frameworks place experts before serving.
func New(cfg *moe.Config, platform *hw.Platform, fw Framework, opts Options) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := platform.Validate(); err != nil {
		return nil, err
	}
	opts.fillDefaults()

	e := &Engine{cfg: cfg, platform: platform, fw: fw, opts: opts}
	e.gen = trace.New(cfg, trace.DefaultOptions(opts.Seed))

	e.gpuLayers = int(opts.CacheRatio * float64(cfg.Layers))
	gpuLayer := func(l int) bool { return l < e.gpuLayers }
	if fw.Sched == SchedSame {
		return nil, fmt.Errorf("engine: Framework.Sched must name a strategy")
	}
	var err error
	if e.decodeSched, err = fw.buildScheduler(fw.Sched, gpuLayer); err != nil {
		return nil, err
	}
	prefillKind := fw.PrefillSched
	if prefillKind == SchedSame {
		prefillKind = fw.Sched
	}
	if e.prefillSched, err = fw.buildScheduler(prefillKind, gpuLayer); err != nil {
		return nil, err
	}
	e.scheduler = e.decodeSched
	if e.pref, err = fw.buildPrefetcher(); err != nil {
		return nil, err
	}
	policy, err := fw.buildPolicy(cfg.ActivatedExperts)
	if err != nil {
		return nil, err
	}
	e.cache = cache.New(cfg.CacheCapacity(opts.CacheRatio), policy)
	e.warmCache()

	if opts.RecordTrace {
		e.cpuTL = sim.NewTimeline("CPU")
		e.gpuTL = sim.NewTimeline("GPU")
		e.linkTL = sim.NewTimeline("PCIe")
	}
	return e, nil
}

// warmCache fills the cache with the historically most-active experts,
// measured on a past window of the same workload (the "historical
// activation frequency" the static frameworks use), and feeds the
// observed routing scores to the cache policy so score-aware policies
// start with meaningful priorities — the state a long-running server
// would have. StaticSplit frameworks skip this: their residency is the
// layer mapping.
func (e *Engine) warmCache() {
	if e.fw.Sched == SchedStaticSplit {
		return
	}
	hist := e.gen.ForkHistory(e.opts.Seed ^ 0x5eedf00d)
	counts := make(map[moe.ExpertID]int)
	for i := 0; i < e.opts.WarmupIters; i++ {
		hist.Advance()
		for l := 0; l < e.cfg.Layers; l++ {
			for _, x := range hist.Activated(l) {
				counts[moe.ExpertID{Layer: l, Index: x}]++
			}
			e.cache.ObserveScores(l, hist.Scores(l))
		}
	}
	ids := make([]moe.ExpertID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		if ids[i].Layer != ids[j].Layer {
			return ids[i].Layer < ids[j].Layer
		}
		return ids[i].Index < ids[j].Index
	})
	if e.fw.PinWarm {
		for _, id := range ids {
			if e.cache.Len() >= e.cache.Capacity() {
				break
			}
			e.cache.Pin(id)
		}
		return
	}
	e.cache.Warm(ids)
	// Replay the history into the policy — least frequent first so the
	// hottest experts end up both most counted and most recent — giving
	// LFU counts and LRU recency the state of a long-running server
	// instead of treating every warm expert as a one-hit wonder.
	for i := len(ids) - 1; i >= 0; i-- {
		for n := 0; n < counts[ids[i]]; n++ {
			e.cache.TouchHistorical(ids[i])
		}
	}
}

// isCached reports residency for scheduling decisions.
func (e *Engine) isCached(id moe.ExpertID) bool {
	if e.fw.Sched == SchedStaticSplit {
		return id.Layer < e.gpuLayers
	}
	return e.cache.Contains(id)
}

// attentionDevice reports where a layer's attention + shared experts
// run. Only llama.cpp's CPU layers run them on the CPU.
func (e *Engine) attentionDevice(layer int) hw.Device {
	if e.fw.Sched == SchedStaticSplit && layer >= e.gpuLayers {
		return hw.CPU
	}
	return hw.GPU
}

// runStep executes one forward pass (all layers) for the given
// activations and token/context sizes, returning its latency.
func (e *Engine) runStep(acts []trace.LayerActivation, tokens, context int) float64 {
	stepStart := e.clock
	e.curTokens = tokens
	for _, act := range acts {
		layerStart := e.clock

		// Attention + shared experts. Weight traffic: INT4 QKVO
		// projections plus the always-resident shared experts.
		attFlops := hw.AttentionFlops(e.cfg.Hidden, tokens, context) + e.cfg.SharedFlops(tokens)
		attBytes := int64(4*e.cfg.Hidden*e.cfg.Hidden/2) +
			e.cfg.SharedExpertBytes()*int64(e.cfg.SharedExperts)
		var attEnd float64
		if e.attentionDevice(act.Layer) == hw.GPU {
			start := maxF(e.gpuBusy, layerStart)
			attEnd = start + e.platform.GPU.ExpertTime(attFlops, attBytes)
			e.reserveTL(e.gpuTL, start, attEnd, "attn")
			e.gpuBusy = attEnd
		} else {
			start := maxF(e.cpuBusy, layerStart)
			attEnd = start + e.platform.CPU.ExpertTime(attFlops, attBytes, true)
			e.reserveTL(e.cpuTL, start, attEnd, "attn")
			e.cpuBusy = attEnd
		}

		// Routed experts: look up residency (with hit accounting), plan
		// and apply.
		active := make(map[moe.ExpertID]bool)
		for _, id := range act.ActiveExperts() {
			active[id] = true
			e.cache.Lookup(id) // hit/miss statistics
		}
		tasks := sched.TasksFromLoads(e.cfg, act.Layer, act.Loads, e.isCached)
		res := sched.Resources{
			CPUFree:  maxF(0, e.cpuBusy-layerStart),
			GPUFree:  maxF(0, e.gpuBusy-layerStart),
			LinkFree: maxF(0, e.linkBusy-layerStart),
		}
		plan := e.scheduler.Plan(tasks, e.platform, res)
		if e.opts.ValidatePlans {
			if err := plan.Validate(tasks, res); err != nil {
				panic(fmt.Sprintf("engine: invalid plan at layer %d: %v", act.Layer, err))
			}
		}
		e.applyPlan(plan, layerStart, active)

		layerEnd := maxF(attEnd, layerStart+plan.Makespan)
		e.clock = layerEnd

		// Cache policy sees this iteration's routing scores.
		e.cache.ObserveScores(act.Layer, act.Scores)

		// Spend PCIe idle time: prefetch upcoming layers, then refresh
		// the cache with this layer's misses if the framework does so.
		e.prefetchInto(act.Layer, layerEnd, active)
		e.missInsert(act, layerEnd, active)
	}
	return e.clock - stepStart
}

func (e *Engine) applyPlan(plan *sched.Plan, layerStart float64, active map[moe.ExpertID]bool) {
	for _, op := range plan.Ops {
		absStart, absEnd := layerStart+op.Start, layerStart+op.End
		switch op.Kind {
		case sched.OpComputeCPU:
			e.stats.CPUOps++
			e.reserveTL(e.cpuTL, absStart, absEnd, op.Expert.String())
			e.cpuBusy = maxF(e.cpuBusy, absEnd)
		case sched.OpComputeGPU:
			e.stats.GPUOps++
			e.reserveTL(e.gpuTL, absStart, absEnd, op.Expert.String())
			e.gpuBusy = maxF(e.gpuBusy, absEnd)
		case sched.OpTransfer:
			e.stats.DemandTransfers++
			e.reserveTL(e.linkTL, absStart, absEnd, op.Expert.String())
			e.linkBusy = maxF(e.linkBusy, absEnd)
		}
	}
	protected := func(id moe.ExpertID) bool { return active[id] }
	for _, id := range plan.Transferred {
		e.cache.Insert(id, protected)
	}
}

// prefetchInto spends PCIe idle time until layerEnd on upcoming layers.
func (e *Engine) prefetchInto(layer int, layerEnd float64, active map[moe.ExpertID]bool) {
	budget := layerEnd - e.linkBusy
	if budget <= 0 {
		return
	}
	curLayer := layer
	ctx := prefetch.Context{
		Cfg:      e.cfg,
		Platform: e.platform,
		Layer:    layer,
		Budget:   budget,
		PredictedLoads: func(l int) []int {
			return e.predictedLoads(curLayer, l)
		},
		IsCached:  e.isCached,
		Scheduler: e.scheduler,
	}
	picks := e.pref.Select(ctx)
	xfer := e.platform.Link.TransferTime(e.cfg.ExpertBytes())
	protected := func(id moe.ExpertID) bool { return active[id] }
	for _, id := range picks {
		if _, ok := e.cache.Insert(id, protected); !ok {
			break
		}
		start := e.linkBusy
		e.reserveTL(e.linkTL, start, start+xfer, "pf:"+id.String())
		e.linkBusy = start + xfer
		e.stats.PrefetchTransfers++
	}
}

// predictedLoads estimates a future layer's per-expert loads from the
// gate-reuse prediction: the top-k predicted experts receive their
// expected token share for the current batch size (unit loads at
// decode).
func (e *Engine) predictedLoads(curLayer, layer int) []int {
	lookahead := layer - curLayer
	if lookahead <= 0 || layer >= e.cfg.Layers {
		return make([]int, e.cfg.RoutedExperts)
	}
	scores := e.gen.PredictedScores(layer, lookahead)
	loads := make([]int, e.cfg.RoutedExperts)
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	assignments := float64(e.curTokens * e.cfg.ActivatedExperts)
	for _, x := range idx[:e.cfg.ActivatedExperts] {
		load := int(scores[x]*assignments + 0.5)
		if load < 1 {
			load = 1
		}
		loads[x] = load
	}
	return loads
}

// missInsert refreshes the cache with this layer's missed experts in
// leftover PCIe idle time (static-scheduler frameworks' cache path).
func (e *Engine) missInsert(act trace.LayerActivation, layerEnd float64, active map[moe.ExpertID]bool) {
	if !e.fw.OnMissInsert {
		return
	}
	xfer := e.platform.Link.TransferTime(e.cfg.ExpertBytes())
	type missed struct {
		id    moe.ExpertID
		score float64
	}
	var misses []missed
	for x, load := range act.Loads {
		if load == 0 {
			continue
		}
		id := moe.ExpertID{Layer: act.Layer, Index: x}
		if !e.isCached(id) {
			misses = append(misses, missed{id, act.Scores[x]})
		}
	}
	sort.SliceStable(misses, func(i, j int) bool { return misses[i].score > misses[j].score })
	protected := func(id moe.ExpertID) bool { return active[id] }
	for _, m := range misses {
		if e.linkBusy+xfer > layerEnd {
			break
		}
		if _, ok := e.cache.Insert(m.id, protected); !ok {
			break
		}
		start := e.linkBusy
		e.reserveTL(e.linkTL, start, start+xfer, "mi:"+m.id.String())
		e.linkBusy = start + xfer
		e.stats.MissInserts++
	}
}

func (e *Engine) reserveTL(tl *sim.Timeline, start, end float64, name string) {
	if tl == nil {
		return
	}
	tl.Reserve(start, end-start, name)
}

// RunDecode measures steps decode iterations and returns per-step TBT.
func (e *Engine) RunDecode(steps int) Result {
	if steps <= 0 {
		panic(fmt.Sprintf("engine: non-positive decode steps %d", steps))
	}
	res := Result{Framework: e.fw.Name, Model: e.cfg.Name}
	e.scheduler = e.decodeSched
	for i := 0; i < steps; i++ {
		acts := trace.DecodeStep(e.gen)
		lat := e.runStep(acts, 1, e.opts.Context)
		res.StepLatencies = append(res.StepLatencies, lat)
		res.Total += lat
	}
	e.stats.CacheHitRate = e.cache.HitRate()
	res.Stats = e.stats
	return res
}

// RunPrefill measures a single prefill forward over the given prompt
// length and returns its TTFT as the sole step latency.
func (e *Engine) RunPrefill(tokens int) Result {
	if tokens <= 0 {
		panic(fmt.Sprintf("engine: non-positive prefill tokens %d", tokens))
	}
	res := Result{Framework: e.fw.Name, Model: e.cfg.Name}
	e.scheduler = e.prefillSched
	acts := trace.PrefillStep(e.gen, tokens)
	lat := e.runStep(acts, tokens, tokens)
	res.StepLatencies = []float64{lat}
	res.Total = lat
	e.stats.CacheHitRate = e.cache.HitRate()
	res.Stats = e.stats
	return res
}

// Cache exposes the expert cache for analysis.
func (e *Engine) Cache() *cache.Cache { return e.cache }

// SetPrefetcher swaps the prefetcher (ablation studies vary the
// lookahead window). Call before the first Run*.
func (e *Engine) SetPrefetcher(p prefetch.Prefetcher) { e.pref = p }

// Timelines returns the recorded span timelines (nil without
// RecordTrace).
func (e *Engine) Timelines() (cpu, gpu, link *sim.Timeline) {
	return e.cpuTL, e.gpuTL, e.linkTL
}

// Gantt renders the recorded timelines, or "" without RecordTrace.
func (e *Engine) Gantt(width int) string {
	if e.cpuTL == nil {
		return ""
	}
	return sim.Gantt(width, e.gpuTL, e.cpuTL, e.linkTL)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
