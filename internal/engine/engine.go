package engine

import (
	"fmt"
	"sort"

	"hybrimoe/internal/cache"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/prefetch"
	"hybrimoe/internal/sched"
	"hybrimoe/internal/sim"
	"hybrimoe/internal/tensor"
	"hybrimoe/internal/trace"
	"hybrimoe/internal/workload"
)

// Engine simulates one framework serving one model on one platform.
type Engine struct {
	cfg      *moe.Config
	platform *hw.Platform
	fw       Framework
	set      settings

	gen *trace.Generator
	// cache is the full per-device expert cache; placeCache is the
	// slice of it placement may use — the whole thing for device-aware
	// schedulers, GPU0's shard alone for single-GPU planners (a plan
	// that runs a GPU1-resident expert on GPU0 without a transfer is
	// not physical, so their residency view is confined too).
	cache      *cache.Multi
	placeCache *cache.Multi
	// placeGPUs is how many devices placement spreads over (1 for
	// single-GPU planners regardless of the platform's GPU count).
	placeGPUs int
	// decodeSched and prefillSched are the per-stage scheduling
	// strategies; scheduler points at the one for the current stage.
	decodeSched  sched.Scheduler
	prefillSched sched.Scheduler
	scheduler    sched.Scheduler
	pref         prefetch.Prefetcher
	gpuLayers    int // LayerMapped: leading layers resident on GPU

	// Absolute resource occupancy (seconds since run start); gpuBusy and
	// linkBusy hold one frontier per GPU / host link.
	cpuBusy  float64
	gpuBusy  []float64
	linkBusy []float64
	clock    float64

	// predScores/predF32/predIdx are PredictedResidency's per-layer
	// scratch — fleet routers poll the residency signal once per
	// eligible replica per dispatch, so the probe must not allocate.
	predScores []float64
	predF32    []float32
	predIdx    []int
	// curTokens is the current step's batch size (prefetch load
	// prediction scales with it).
	curTokens int

	cpuTL           *sim.Timeline
	gpuTLs, linkTLs []*sim.Timeline

	stats RunStats
}

// RunStats aggregates execution counters for one run.
type RunStats struct {
	CPUOps            int
	GPUOps            int
	DemandTransfers   int
	PrefetchTransfers int
	MissInserts       int
	CacheHitRate      float64
}

// Result reports one measured run.
type Result struct {
	Framework string
	Model     string
	// StepLatencies holds per-decode-step latency, or a single entry
	// (the TTFT) for prefill.
	StepLatencies []float64
	// Total is the summed latency of all measured steps.
	Total float64
	Stats RunStats
}

// Mean reports the mean step latency.
func (r Result) Mean() float64 {
	if len(r.StepLatencies) == 0 {
		return 0
	}
	return r.Total / float64(len(r.StepLatencies))
}

// New builds an engine for the framework's named strategies, resolved
// through the sched, prefetch and cache registries, configured by
// functional options:
//
//	e, err := engine.New(cfg, platform, engine.HybriMoEFramework(),
//		engine.WithCacheRatio(0.25),
//		engine.WithSeed(42),
//	)
//
// Unknown strategy names and out-of-range option values return errors.
// The cache is warm-started from historical activation frequency (a
// separate trace seed), matching how the compared frameworks place
// experts before serving.
func New(cfg *moe.Config, platform *hw.Platform, fw Framework, opts ...Option) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := platform.Validate(); err != nil {
		return nil, err
	}
	set := defaultSettings()
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("engine: nil Option")
		}
		if err := opt(&set); err != nil {
			return nil, err
		}
	}

	e := &Engine{cfg: cfg, platform: platform, fw: fw, set: set}
	e.gen = trace.New(cfg, trace.DefaultOptions(set.seed))

	e.gpuLayers = int(set.cacheRatio * float64(cfg.Layers))
	gpuLayer := func(l int) bool { return l < e.gpuLayers }
	if fw.Sched == "" {
		return nil, fmt.Errorf("engine: Framework.Sched must name a registered scheduler (have %v)", sched.Names())
	}
	env := sched.Config{GPULayer: gpuLayer}
	var err error
	if e.decodeSched, err = sched.New(fw.Sched, env); err != nil {
		return nil, err
	}
	prefillName := fw.PrefillSched
	if prefillName == "" {
		prefillName = fw.Sched
	}
	if e.prefillSched, err = sched.New(prefillName, env); err != nil {
		return nil, err
	}
	e.scheduler = e.decodeSched
	if e.pref = set.prefetcher; e.pref == nil {
		if e.pref, err = prefetch.New(fw.Prefetch); err != nil {
			return nil, err
		}
	}
	gpus := platform.NumGPUs()
	capacity := cfg.CacheCapacity(set.cacheRatio)
	if set.cacheRatio == 0 {
		// The explicit zero-cache baseline: CacheCapacity floors at one
		// expert, but a requested ratio of exactly 0 means none.
		capacity = 0
	}
	// One residency shard per GPU, each with the full per-device
	// capacity and its own policy instance (policies are stateful).
	shards := make([]*cache.Cache, gpus)
	for d := 0; d < gpus; d++ {
		policy, err := cache.NewPolicy(fw.CachePolicy, cfg.ActivatedExperts)
		if err != nil {
			return nil, err
		}
		shards[d] = cache.New(capacity, policy)
	}
	e.cache = cache.NewMulti(shards...)
	e.placeCache = e.cache
	e.placeGPUs = gpus
	decAware := sched.IsDeviceAware(e.decodeSched)
	preAware := sched.IsDeviceAware(e.prefillSched)
	if gpus > 1 && decAware != preAware {
		// One stage would spread residency over every device while the
		// other can only see GPU0 — the confined stage would treat the
		// spread experts as missing and re-transfer them forever. Reject
		// the mix instead of serving it wrong.
		return nil, fmt.Errorf(
			"engine: mixed device-aware and single-GPU stage schedulers (decode %q, prefill %q) on a %d-GPU platform",
			e.decodeSched.Name(), e.prefillSched.Name(), gpus)
	}
	if !decAware || !preAware {
		e.placeGPUs = 1
		if gpus > 1 {
			e.placeCache = cache.NewMulti(shards[0])
		}
	}
	e.gpuBusy = make([]float64, gpus)
	e.linkBusy = make([]float64, gpus)
	e.warmCache()

	if set.recordTrace {
		e.cpuTL = sim.NewTimeline("CPU")
		e.gpuTLs = make([]*sim.Timeline, gpus)
		e.linkTLs = make([]*sim.Timeline, gpus)
		for d := 0; d < gpus; d++ {
			gpuName, linkName := "GPU", "PCIe"
			if gpus > 1 {
				gpuName = hw.GPUAt(d).String()
				linkName = "PCIe" + fmt.Sprint(d)
			}
			e.gpuTLs[d] = sim.NewTimeline(gpuName)
			e.linkTLs[d] = sim.NewTimeline(linkName)
		}
	}
	return e, nil
}

// warmCache fills the cache with the historically most-active experts,
// measured on a past window of the same workload (the "historical
// activation frequency" the static frameworks use), and feeds the
// observed routing scores to the cache policy so score-aware policies
// start with meaningful priorities — the state a long-running server
// would have. Layer-mapped frameworks skip this: their residency is the
// layer mapping.
func (e *Engine) warmCache() {
	if e.fw.LayerMapped {
		return
	}
	hist := e.gen.ForkHistory(e.set.seed ^ 0x5eedf00d)
	counts := make(map[moe.ExpertID]int)
	for i := 0; i < e.set.warmupIters; i++ {
		hist.Advance()
		for l := 0; l < e.cfg.Layers; l++ {
			for _, x := range hist.Activated(l) {
				counts[moe.ExpertID{Layer: l, Index: x}]++
			}
			e.placeCache.ObserveScores(l, hist.Scores(l))
		}
	}
	ids := make([]moe.ExpertID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		if ids[i].Layer != ids[j].Layer {
			return ids[i].Layer < ids[j].Layer
		}
		return ids[i].Index < ids[j].Index
	})
	if e.fw.PinWarm {
		for _, id := range ids {
			if e.placeCache.Len() >= e.placeCache.Capacity() {
				break
			}
			e.placeCache.Pin(id)
		}
		return
	}
	e.placeCache.Warm(ids)
	// Replay the history into the policy — least frequent first so the
	// hottest experts end up both most counted and most recent — giving
	// LFU counts and LRU recency the state of a long-running server
	// instead of treating every warm expert as a one-hit wonder.
	for i := len(ids) - 1; i >= 0; i-- {
		for n := 0; n < counts[ids[i]]; n++ {
			e.placeCache.TouchHistorical(ids[i])
		}
	}
}

// isCached reports residency (on any device) for scheduling decisions.
func (e *Engine) isCached(id moe.ExpertID) bool {
	_, ok := e.residentOn(id)
	return ok
}

// residentOn reports which device holds an expert's weights, if any.
// Layer-mapped frameworks pin their GPU layers to GPU0.
func (e *Engine) residentOn(id moe.ExpertID) (hw.Device, bool) {
	if e.fw.LayerMapped {
		return hw.GPU, id.Layer < e.gpuLayers
	}
	d, ok := e.placeCache.Owner(id)
	return hw.GPUAt(d), ok
}

// homeDevice is the device an expert's transfers target when no plan
// chose one: misses are attributed to it and prefetched weights land on
// it. GPU0 on single-GPU platforms; striped deterministically across
// devices otherwise, so placement (and the per-device caches) spread
// the expert population evenly.
func (e *Engine) homeDevice(id moe.ExpertID) hw.Device {
	n := e.placeGPUs
	if n == 1 {
		return hw.GPU
	}
	return hw.GPUAt((id.Layer*e.cfg.RoutedExperts + id.Index) % n)
}

// attentionDevice reports where a layer's attention + shared experts
// run. Only llama.cpp's CPU layers run them on the CPU.
func (e *Engine) attentionDevice(layer int) hw.Device {
	if e.fw.LayerMapped && layer >= e.gpuLayers {
		return hw.CPU
	}
	return hw.GPU
}

// runStep executes one forward pass (all layers) for the given
// activations and token/context sizes, returning its latency.
// perLoadLookups marks a merged pure-decode iteration: cache lookups
// (and the policy touches they carry) are then recorded once per token
// routed to an expert — the load, i.e. the batch width — rather than
// once per distinct expert, so hit/miss totals and policy state stay
// conserved against the equivalent run of unbatched decode steps while
// the weights themselves — the compute and transfer the plan schedules
// — are still touched once per expert, which is where batching wins.
// Iterations containing prefill work keep the prefill convention (one
// lookup per distinct expert per pass) whether merged or solo, so
// hit rates stay comparable across batch policies.
func (e *Engine) runStep(acts []trace.LayerActivation, tokens, context int, perLoadLookups bool) float64 {
	stepStart := e.clock
	e.curTokens = tokens
	for _, act := range acts {
		layerStart := e.clock

		// Attention + shared experts. Weight traffic: INT4 QKVO
		// projections plus the always-resident shared experts.
		attFlops := hw.AttentionFlops(e.cfg.Hidden, tokens, context) + e.cfg.SharedFlops(tokens)
		attBytes := int64(4*e.cfg.Hidden*e.cfg.Hidden/2) +
			e.cfg.SharedExpertBytes()*int64(e.cfg.SharedExperts)
		// Attention runs on GPU0: tensor-parallel attention is not
		// modelled, so the extra devices accelerate expert execution
		// only.
		var attEnd float64
		if e.attentionDevice(act.Layer) == hw.GPU {
			start := maxF(e.gpuBusy[0], layerStart)
			attEnd = start + e.platform.GPUs[0].ExpertTime(attFlops, attBytes)
			e.reserveTL(e.gpuTL(0), start, attEnd, "attn")
			e.gpuBusy[0] = attEnd
		} else {
			start := maxF(e.cpuBusy, layerStart)
			attEnd = start + e.platform.CPU.ExpertTime(attFlops, attBytes, true)
			e.reserveTL(e.cpuTL, start, attEnd, "attn")
			e.cpuBusy = attEnd
		}

		// Routed experts: look up residency (with hit accounting), plan
		// and apply.
		active := make(map[moe.ExpertID]bool)
		for _, id := range act.ActiveExperts() {
			active[id] = true
			lookups := 1
			if perLoadLookups {
				// One lookup per routed token — the load is the batch
				// width here, bounded by the concurrency limit, and the
				// repeated policy touches mirror the ones the batched
				// requests' separate steps would have made.
				lookups = act.Loads[id.Index]
			}
			for n := 0; n < lookups; n++ {
				// Hit/miss statistics; misses are attributed to the
				// expert's home device.
				e.placeCache.Lookup(id, e.homeDevice(id).GPUIndex())
			}
		}
		tasks := sched.TasksFromLoadsOn(e.cfg, act.Layer, act.Loads, e.residentOn)
		res := sched.Resources{
			CPUFree:   maxF(0, e.cpuBusy-layerStart),
			GPUFree:   maxF(0, e.gpuBusy[0]-layerStart),
			LinkFree:  maxF(0, e.linkBusy[0]-layerStart),
			GPUFrees:  make([]float64, len(e.gpuBusy)),
			LinkFrees: make([]float64, len(e.linkBusy)),
		}
		for d := range e.gpuBusy {
			res.GPUFrees[d] = maxF(0, e.gpuBusy[d]-layerStart)
			res.LinkFrees[d] = maxF(0, e.linkBusy[d]-layerStart)
		}
		plan := e.scheduler.Plan(tasks, e.platform, res)
		if e.set.validatePlans {
			if err := plan.Validate(tasks, res); err != nil {
				panic(fmt.Sprintf("engine: invalid plan at layer %d: %v", act.Layer, err))
			}
		}
		e.applyPlan(plan, layerStart, active)

		layerEnd := maxF(attEnd, layerStart+plan.Makespan)
		e.clock = layerEnd

		// Cache policy sees this iteration's routing scores.
		e.placeCache.ObserveScores(act.Layer, act.Scores)

		// Spend PCIe idle time: prefetch upcoming layers, then refresh
		// the cache with this layer's misses if the framework does so.
		e.prefetchInto(act.Layer, layerEnd, active)
		e.missInsert(act, layerEnd, active)
	}
	return e.clock - stepStart
}

func (e *Engine) applyPlan(plan *sched.Plan, layerStart float64, active map[moe.ExpertID]bool) {
	// Transfer destinations: the op's device says which shard receives
	// the weights the plan moved.
	dest := make(map[moe.ExpertID]int)
	for _, op := range plan.Ops {
		absStart, absEnd := layerStart+op.Start, layerStart+op.End
		switch op.Kind {
		case sched.OpComputeCPU:
			e.stats.CPUOps++
			e.reserveTL(e.cpuTL, absStart, absEnd, op.Expert.String())
			e.cpuBusy = maxF(e.cpuBusy, absEnd)
		case sched.OpComputeGPU:
			d := op.Device.GPUIndex()
			e.stats.GPUOps++
			e.reserveTL(e.gpuTL(d), absStart, absEnd, op.Expert.String())
			e.gpuBusy[d] = maxF(e.gpuBusy[d], absEnd)
		case sched.OpTransfer:
			d := op.Device.GPUIndex()
			e.stats.DemandTransfers++
			e.reserveTL(e.linkTL(d), absStart, absEnd, op.Expert.String())
			e.linkBusy[d] = maxF(e.linkBusy[d], absEnd)
			dest[op.Expert] = d
		}
	}
	protected := func(id moe.ExpertID) bool { return active[id] }
	for _, id := range plan.Transferred {
		e.placeCache.Insert(id, dest[id], protected)
	}
}

// prefetchInto spends PCIe idle time until layerEnd on upcoming layers,
// each pick riding its target device's own host link.
func (e *Engine) prefetchInto(layer int, layerEnd float64, active map[moe.ExpertID]bool) {
	// Only the links placement can target count: a confined single-GPU
	// planner on an N-GPU platform must not see the idle extra links,
	// or the prefetcher would price candidates it can never afford.
	budgets := make([]float64, e.placeGPUs)
	anyIdle := false
	for d := range budgets {
		budgets[d] = layerEnd - e.linkBusy[d]
		if budgets[d] > 0 {
			anyIdle = true
		} else {
			budgets[d] = 0
		}
	}
	if !anyIdle {
		return
	}
	curLayer := layer
	ctx := prefetch.Context{
		Cfg:      e.cfg,
		Platform: e.platform,
		Layer:    layer,
		Budget:   budgets[0],
		Budgets:  budgets,
		Target:   e.homeDevice,
		PredictedLoads: func(l int) []int {
			return e.predictedLoads(curLayer, l)
		},
		IsCached:  e.isCached,
		Scheduler: e.scheduler,
	}
	picks := e.pref.Select(ctx)
	protected := func(id moe.ExpertID) bool { return active[id] }
	for _, id := range picks {
		d := e.homeDevice(id).GPUIndex()
		// A shard full of protected residents only blocks its own
		// device's picks; on one device the failure repeats, matching
		// the old early exit.
		if _, ok := e.placeCache.Insert(id, d, protected); !ok {
			continue
		}
		xfer := e.platform.Links[d].TransferTime(e.cfg.ExpertBytes())
		start := e.linkBusy[d]
		e.reserveTL(e.linkTL(d), start, start+xfer, "pf:"+id.String())
		e.linkBusy[d] = start + xfer
		e.stats.PrefetchTransfers++
	}
}

// predictedLoads estimates a future layer's per-expert loads from the
// gate-reuse prediction: the top-k predicted experts receive their
// expected token share for the current batch size (unit loads at
// decode).
func (e *Engine) predictedLoads(curLayer, layer int) []int {
	lookahead := layer - curLayer
	if lookahead <= 0 || layer >= e.cfg.Layers {
		return make([]int, e.cfg.RoutedExperts)
	}
	scores := e.gen.PredictedScores(layer, lookahead)
	loads := make([]int, e.cfg.RoutedExperts)
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	assignments := float64(e.curTokens * e.cfg.ActivatedExperts)
	for _, x := range idx[:e.cfg.ActivatedExperts] {
		load := int(scores[x]*assignments + 0.5)
		if load < 1 {
			load = 1
		}
		loads[x] = load
	}
	return loads
}

// missInsert refreshes the cache with this layer's missed experts in
// leftover PCIe idle time (static-scheduler frameworks' cache path).
func (e *Engine) missInsert(act trace.LayerActivation, layerEnd float64, active map[moe.ExpertID]bool) {
	if !e.fw.OnMissInsert {
		return
	}
	type missed struct {
		id    moe.ExpertID
		score float64
	}
	var misses []missed
	for x, load := range act.Loads {
		if load == 0 {
			continue
		}
		id := moe.ExpertID{Layer: act.Layer, Index: x}
		if !e.isCached(id) {
			misses = append(misses, missed{id, act.Scores[x]})
		}
	}
	sort.SliceStable(misses, func(i, j int) bool { return misses[i].score > misses[j].score })
	protected := func(id moe.ExpertID) bool { return active[id] }
	for _, m := range misses {
		d := e.homeDevice(m.id).GPUIndex()
		xfer := e.platform.Links[d].TransferTime(e.cfg.ExpertBytes())
		// Skip, don't stop: a lower-scored miss may home to a different
		// link with idle time (or a shard with evictable residents) even
		// when this one's does not. On a single device the skip repeats
		// for every remaining miss, so the outcome matches the old
		// single-link early exit exactly.
		if e.linkBusy[d]+xfer > layerEnd {
			continue
		}
		if _, ok := e.placeCache.Insert(m.id, d, protected); !ok {
			continue
		}
		start := e.linkBusy[d]
		e.reserveTL(e.linkTL(d), start, start+xfer, "mi:"+m.id.String())
		e.linkBusy[d] = start + xfer
		e.stats.MissInserts++
	}
}

func (e *Engine) reserveTL(tl *sim.Timeline, start, end float64, name string) {
	if tl == nil {
		return
	}
	tl.Reserve(start, end-start, name)
}

// gpuTL and linkTL return device d's recorded timeline (nil without
// WithTraceRecording).
func (e *Engine) gpuTL(d int) *sim.Timeline {
	if e.gpuTLs == nil {
		return nil
	}
	return e.gpuTLs[d]
}

func (e *Engine) linkTL(d int) *sim.Timeline {
	if e.linkTLs == nil {
		return nil
	}
	return e.linkTLs[d]
}

// Clock reports the engine's simulation clock in seconds — the frontier
// a fleet layer interleaves replica steps on.
func (e *Engine) Clock() float64 { return e.clock }

// PredictedResidency reports the cache-affinity signal fleet routers
// steer on: of the experts the gate-reuse prediction expects the next
// iteration to activate (lookahead-1 predicted top-k per layer, the same
// prediction the impact-driven prefetcher prices), how many are already
// resident in the expert cache this engine's placement can use. The call
// is pure — it reads the stable per-iteration prediction stream and the
// residency sets without touching hit/miss accounting or policy state —
// so routers may poll it at every dispatch without perturbing runs.
func (e *Engine) PredictedResidency() (resident, predicted int) {
	for l := 0; l < e.cfg.Layers; l++ {
		e.predScores = e.gen.PredictedScoresInto(e.predScores, l, 1)
		if cap(e.predF32) < len(e.predScores) {
			e.predF32 = make([]float32, len(e.predScores))
		}
		f32 := e.predF32[:len(e.predScores)]
		for i, v := range e.predScores {
			f32[i] = float32(v)
		}
		e.predIdx = tensor.TopKInto(e.predIdx, f32, e.cfg.ActivatedExperts)
		for _, x := range e.predIdx {
			predicted++
			// isCached covers layer-mapped frameworks too (their
			// residency is the static layer split, not the cache).
			if e.isCached(moe.ExpertID{Layer: l, Index: x}) {
				resident++
			}
		}
	}
	return resident, predicted
}

// residentWorkingSet snapshots the predicted expert working set that is
// resident right now — the same lookahead-1 top-k per layer
// PredictedResidency counts, materialised as serializable refs. It is
// what a prefill checkpoint carries across a replica handoff: the
// affinity and warm-admission hint for the adopting side. Pure, like
// PredictedResidency.
func (e *Engine) residentWorkingSet() []workload.ExpertRef {
	var refs []workload.ExpertRef
	for l := 0; l < e.cfg.Layers; l++ {
		scores := e.gen.PredictedScores(l, 1)
		f32 := make([]float32, len(scores))
		for i, v := range scores {
			f32[i] = float32(v)
		}
		for _, x := range tensor.TopK(f32, e.cfg.ActivatedExperts) {
			if e.isCached(moe.ExpertID{Layer: l, Index: x}) {
				refs = append(refs, workload.ExpertRef{Layer: l, Index: x})
			}
		}
	}
	return refs
}

// IsResident reports whether one expert (by grid position) is resident
// in the cache this engine's placement can use — the per-expert probe
// checkpoint-aware affinity routing scores migrating requests with.
// Out-of-range positions are simply not resident.
func (e *Engine) IsResident(layer, index int) bool {
	if layer < 0 || layer >= e.cfg.Layers || index < 0 || index >= e.cfg.RoutedExperts {
		return false
	}
	return e.isCached(moe.ExpertID{Layer: layer, Index: index})
}

// AdoptWorkingSet admits a migrated request's expert working set into
// this engine's cache — the warm-not-cold handoff: the decode replica
// stages the checkpoint's predicted experts (from its own host copy,
// concurrent with the KV transfer the interconnect prices) so the
// request's first decode steps hit instead of faulting. Inserts go
// through the normal placement path with nothing protected, so a full
// shard of protected residents simply declines. It reports how many of
// the refs ended up resident (already-present ones count — they are
// warm, which is what the caller is asking). Layer-mapped frameworks
// have static residency and adopt nothing.
func (e *Engine) AdoptWorkingSet(experts []workload.ExpertRef) (warm int) {
	if e.fw.LayerMapped {
		for _, ref := range experts {
			if e.IsResident(ref.Layer, ref.Index) {
				warm++
			}
		}
		return warm
	}
	unprotected := func(moe.ExpertID) bool { return false }
	for _, ref := range experts {
		if ref.Layer < 0 || ref.Layer >= e.cfg.Layers || ref.Index < 0 || ref.Index >= e.cfg.RoutedExperts {
			continue
		}
		id := moe.ExpertID{Layer: ref.Layer, Index: ref.Index}
		if e.isCached(id) {
			warm++
			continue
		}
		if _, ok := e.placeCache.Insert(id, e.homeDevice(id).GPUIndex(), unprotected); ok {
			warm++
		}
	}
	return warm
}

// Platform exposes the hardware model this engine runs on — the fleet
// layer reads its Interconnect to price replica-to-replica migration.
func (e *Engine) Platform() *hw.Platform { return e.platform }

// Cache exposes GPU0's expert-cache shard — the whole cache on
// single-GPU platforms. Multi-GPU analysis goes through Caches.
func (e *Engine) Cache() *cache.Cache { return e.cache.Shard(0) }

// Caches exposes the per-device expert cache for analysis.
func (e *Engine) Caches() *cache.Multi { return e.cache }

// NumGPUs reports the platform's GPU count.
func (e *Engine) NumGPUs() int { return len(e.gpuBusy) }

// Timelines returns the recorded span timelines for the CPU, GPU0 and
// GPU0's link (nil without WithTraceRecording). Multi-GPU devices are
// rendered by Gantt.
func (e *Engine) Timelines() (cpu, gpu, link *sim.Timeline) {
	return e.cpuTL, e.gpuTL(0), e.linkTL(0)
}

// Gantt renders the recorded timelines, or "" without WithTraceRecording.
func (e *Engine) Gantt(width int) string {
	if e.cpuTL == nil {
		return ""
	}
	tls := make([]*sim.Timeline, 0, 1+2*len(e.gpuTLs))
	tls = append(tls, e.gpuTLs...)
	tls = append(tls, e.cpuTL)
	tls = append(tls, e.linkTLs...)
	return sim.Gantt(width, tls...)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
