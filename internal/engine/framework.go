// Package engine executes MoE inference end-to-end on the simulated
// platform: attention and shared experts on their device, routed experts
// through a pluggable scheduler, an expert cache with a pluggable
// replacement policy, and inter-layer prefetching in PCIe idle time. It
// measures the paper's two metrics — TTFT for prefill and TBT for
// decode — for the four compared frameworks, and serves request streams
// through the Session streaming loop.
package engine

// Framework bundles the policy choices that define one of the compared
// systems. Every strategy is named, resolved through the sched, prefetch
// and cache plugin registries at engine construction, so a framework
// description is pure data: third-party strategies drop in by calling
// the relevant Register and naming themselves here.
type Framework struct {
	Name string
	// Sched names the intra-layer scheduling strategy in the sched
	// registry (decode, and prefill unless PrefillSched overrides it).
	Sched string
	// PrefillSched, when non-empty, names a different strategy for the
	// prefill stage. kTransformers uses CPU expert computation only at
	// decode (paper Table I) and falls back to on-demand GPU loading for
	// prefill.
	PrefillSched string
	// Prefetch names the prefetcher: "none", "next-layer-topk" or
	// "impact-driven" among the built-ins.
	Prefetch string
	// CachePolicy names the replacement policy: "LRU", "LFU" or "MRS"
	// among the built-ins.
	CachePolicy string
	// OnMissInsert enables background insertion of missed experts into
	// the cache using idle PCIe time (how static-scheduler frameworks
	// refresh their cache between iterations).
	OnMissInsert bool
	// PinWarm pins the warm-started experts permanently, modelling a
	// truly static frequency-based placement.
	PinWarm bool
	// LayerMapped marks frameworks whose expert residency is a static
	// whole-layer mapping (llama.cpp -ngl): the leading layers live
	// wholly on the GPU, the expert cache and its warm-up are bypassed,
	// and CPU layers run attention on the CPU too.
	LayerMapped bool
}

// Built-in scheduler registry names.
const (
	SchedHybriMoE     = "hybrimoe"
	SchedKTransStatic = "ktrans-static"
	SchedGPUCentric   = "gpu-centric"
	SchedStaticSplit  = "static-split"
)

// HybriMoEFramework is the paper's full system: dynamic hybrid
// scheduling, impact-driven prefetching, MRS caching.
func HybriMoEFramework() Framework {
	return Framework{
		Name:        "HybriMoE",
		Sched:       SchedHybriMoE,
		Prefetch:    "impact-driven",
		CachePolicy: "MRS",
	}
}

// KTransformersFramework is the primary baseline: a fixed mapping by
// historical activation frequency (pinned GPU experts, no dynamic
// remapping — paper Table I), CPU expert computation at decode, and
// on-demand GPU loading at prefill.
func KTransformersFramework() Framework {
	return Framework{
		Name:         "KTransformers",
		Sched:        SchedKTransStatic,
		PrefillSched: SchedGPUCentric,
		Prefetch:     "none",
		CachePolicy:  "LFU",
		PinWarm:      true,
	}
}

// AdapMoEFramework is the GPU-centric baseline: on-demand loading with
// adaptive (next-layer) prefetching and LRU caching.
func AdapMoEFramework() Framework {
	return Framework{
		Name:        "AdapMoE",
		Sched:       SchedGPUCentric,
		Prefetch:    "next-layer-topk",
		CachePolicy: "LRU",
	}
}

// LlamaCppFramework is the static layer-split baseline: the leading
// layers live wholly on the GPU, the rest (attention included) on the
// CPU.
func LlamaCppFramework() Framework {
	return Framework{
		Name:        "llama.cpp",
		Sched:       SchedStaticSplit,
		Prefetch:    "none",
		CachePolicy: "LRU",
		PinWarm:     true,
		LayerMapped: true,
	}
}

// AllFrameworks returns the four compared systems in the paper's legend
// order.
func AllFrameworks() []Framework {
	return []Framework{
		LlamaCppFramework(),
		AdapMoEFramework(),
		KTransformersFramework(),
		HybriMoEFramework(),
	}
}

// AblationFrameworks returns the Table III variants built on the
// kTransformers baseline: individual techniques enabled one at a time,
// then all together.
//
//   - +Scheduling swaps in the dynamic hybrid scheduler (whose
//     transfers make the cache dynamic, so the pin is lifted);
//   - +Prefetching adds impact-driven prefetching on the static
//     mapping;
//   - +Caching enables dynamic score-aware cache management (MRS with
//     background refresh of missed experts).
func AblationFrameworks() []Framework {
	base := KTransformersFramework()
	base.Name = "Baseline"

	schedOnly := base
	schedOnly.Name = "Baseline+Scheduling"
	schedOnly.Sched = SchedHybriMoE
	schedOnly.PrefillSched = ""
	schedOnly.PinWarm = false

	prefOnly := base
	prefOnly.Name = "Baseline+Prefetching"
	prefOnly.Prefetch = "impact-driven"
	prefOnly.PinWarm = false

	cacheOnly := base
	cacheOnly.Name = "Baseline+Caching"
	cacheOnly.CachePolicy = "MRS"
	cacheOnly.OnMissInsert = true
	cacheOnly.PinWarm = false

	all := HybriMoEFramework()
	all.Name = "All"

	return []Framework{base, schedOnly, prefOnly, cacheOnly, all}
}
