// Package engine executes MoE inference end-to-end on the simulated
// platform: attention and shared experts on their device, routed experts
// through a pluggable scheduler, an expert cache with a pluggable
// replacement policy, and inter-layer prefetching in PCIe idle time. It
// measures the paper's two metrics — TTFT for prefill and TBT for
// decode — for the four compared frameworks.
package engine

import (
	"fmt"

	"hybrimoe/internal/cache"
	"hybrimoe/internal/prefetch"
	"hybrimoe/internal/sched"
)

// SchedKind selects the intra-layer scheduling strategy.
type SchedKind int

// Scheduling strategies.
const (
	// SchedSame (zero value) is only valid as a Framework.PrefillSched,
	// meaning "use the decode scheduler for prefill too".
	SchedSame SchedKind = iota
	// SchedHybri is the paper's dynamic hybrid scheduler.
	SchedHybri
	// SchedKTrans is the static cached→GPU / uncached→CPU mapping.
	SchedKTrans
	// SchedGPUCentric computes everything on the GPU with on-demand
	// loads.
	SchedGPUCentric
	// SchedStaticSplit maps whole layers to a device (llama.cpp -ngl).
	SchedStaticSplit
)

// Framework bundles the policy choices that define one of the compared
// systems.
type Framework struct {
	Name string
	// Sched picks the intra-layer scheduling strategy (decode, and
	// prefill unless PrefillSched overrides it).
	Sched SchedKind
	// PrefillSched, when not SchedSame, picks a different strategy for
	// the prefill stage. kTransformers uses CPU expert computation only
	// at decode (paper Table I) and falls back to on-demand GPU loading
	// for prefill.
	PrefillSched SchedKind
	// Prefetch names the prefetcher: "none", "next-layer-topk" or
	// "impact-driven".
	Prefetch string
	// CachePolicy names the replacement policy: "LRU", "LFU" or "MRS".
	CachePolicy string
	// OnMissInsert enables background insertion of missed experts into
	// the cache using idle PCIe time (how static-scheduler frameworks
	// refresh their cache between iterations).
	OnMissInsert bool
	// PinWarm pins the warm-started experts permanently, modelling a
	// truly static frequency-based placement.
	PinWarm bool
}

// HybriMoEFramework is the paper's full system: dynamic hybrid
// scheduling, impact-driven prefetching, MRS caching.
func HybriMoEFramework() Framework {
	return Framework{
		Name:        "HybriMoE",
		Sched:       SchedHybri,
		Prefetch:    "impact-driven",
		CachePolicy: "MRS",
	}
}

// KTransformersFramework is the primary baseline: a fixed mapping by
// historical activation frequency (pinned GPU experts, no dynamic
// remapping — paper Table I), CPU expert computation at decode, and
// on-demand GPU loading at prefill.
func KTransformersFramework() Framework {
	return Framework{
		Name:         "KTransformers",
		Sched:        SchedKTrans,
		PrefillSched: SchedGPUCentric,
		Prefetch:     "none",
		CachePolicy:  "LFU",
		PinWarm:      true,
	}
}

// AdapMoEFramework is the GPU-centric baseline: on-demand loading with
// adaptive (next-layer) prefetching and LRU caching.
func AdapMoEFramework() Framework {
	return Framework{
		Name:        "AdapMoE",
		Sched:       SchedGPUCentric,
		Prefetch:    "next-layer-topk",
		CachePolicy: "LRU",
	}
}

// LlamaCppFramework is the static layer-split baseline: the leading
// layers live wholly on the GPU, the rest (attention included) on the
// CPU.
func LlamaCppFramework() Framework {
	return Framework{
		Name:        "llama.cpp",
		Sched:       SchedStaticSplit,
		Prefetch:    "none",
		CachePolicy: "LRU",
		PinWarm:     true,
	}
}

// AllFrameworks returns the four compared systems in the paper's legend
// order.
func AllFrameworks() []Framework {
	return []Framework{
		LlamaCppFramework(),
		AdapMoEFramework(),
		KTransformersFramework(),
		HybriMoEFramework(),
	}
}

// AblationFrameworks returns the Table III variants built on the
// kTransformers baseline: individual techniques enabled one at a time,
// then all together.
//
//   - +Scheduling swaps in the dynamic hybrid scheduler (whose
//     transfers make the cache dynamic, so the pin is lifted);
//   - +Prefetching adds impact-driven prefetching on the static
//     mapping;
//   - +Caching enables dynamic score-aware cache management (MRS with
//     background refresh of missed experts).
func AblationFrameworks() []Framework {
	base := KTransformersFramework()
	base.Name = "Baseline"

	schedOnly := base
	schedOnly.Name = "Baseline+Scheduling"
	schedOnly.Sched = SchedHybri
	schedOnly.PrefillSched = SchedSame
	schedOnly.PinWarm = false

	prefOnly := base
	prefOnly.Name = "Baseline+Prefetching"
	prefOnly.Prefetch = "impact-driven"
	prefOnly.PinWarm = false

	cacheOnly := base
	cacheOnly.Name = "Baseline+Caching"
	cacheOnly.CachePolicy = "MRS"
	cacheOnly.OnMissInsert = true
	cacheOnly.PinWarm = false

	all := HybriMoEFramework()
	all.Name = "All"

	return []Framework{base, schedOnly, prefOnly, cacheOnly, all}
}

func (f Framework) buildScheduler(kind SchedKind, gpuLayer func(int) bool) (sched.Scheduler, error) {
	switch kind {
	case SchedHybri:
		return sched.NewHybriMoE(), nil
	case SchedKTrans:
		return sched.NewKTransStatic(), nil
	case SchedGPUCentric:
		return sched.NewGPUCentric(), nil
	case SchedStaticSplit:
		return sched.NewStaticSplit(gpuLayer), nil
	default:
		return nil, fmt.Errorf("engine: unknown scheduler kind %d", kind)
	}
}

func (f Framework) buildPrefetcher() (prefetch.Prefetcher, error) {
	p, ok := prefetch.ByName(f.Prefetch)
	if !ok {
		return nil, fmt.Errorf("engine: unknown prefetcher %q", f.Prefetch)
	}
	return p, nil
}

func (f Framework) buildPolicy(k int) (cache.Policy, error) {
	return cache.ByName(f.CachePolicy, k)
}
