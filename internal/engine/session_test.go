package engine

import (
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/workload"
)

func testRequests() []workload.Request {
	return []workload.Request{
		{ID: 0, PromptTokens: 32, DecodeTokens: 4},
		{ID: 1, PromptTokens: 64, DecodeTokens: 2},
		{ID: 2, PromptTokens: 16, DecodeTokens: 3},
	}
}

func TestSessionEventStream(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 200)
	s := e.NewSession()
	reqs := testRequests()
	s.Submit(reqs...)

	prefills := map[int]int{}
	decodes := map[int]int{}
	var prevEnd float64
	var events int
	for {
		ev, ok := s.Step()
		if !ok {
			break
		}
		events++
		if ev.Latency <= 0 {
			t.Fatalf("non-positive step latency: %+v", ev)
		}
		if ev.End < ev.Start || ev.Start < prevEnd {
			t.Fatalf("event clock not monotonic: %+v after end %v", ev, prevEnd)
		}
		prevEnd = ev.End
		if ev.Hits+ev.Misses == 0 {
			t.Fatalf("step saw no cache lookups: %+v", ev)
		}
		switch ev.Phase {
		case PhasePrefill:
			prefills[ev.Request]++
			if ev.Tokens != reqs[ev.Request].PromptTokens {
				t.Fatalf("prefill tokens %d for request %d", ev.Tokens, ev.Request)
			}
		case PhaseDecode:
			decodes[ev.Request]++
			if ev.Tokens != 1 {
				t.Fatalf("decode step tokens = %d", ev.Tokens)
			}
		}
	}
	for _, r := range reqs {
		if prefills[r.ID] != 1 {
			t.Fatalf("request %d prefilled %d times", r.ID, prefills[r.ID])
		}
		if decodes[r.ID] != r.DecodeTokens {
			t.Fatalf("request %d decoded %d steps, want %d", r.ID, decodes[r.ID], r.DecodeTokens)
		}
	}
	wantEvents := 0
	for _, r := range reqs {
		wantEvents += 1 + r.DecodeTokens
	}
	if events != wantEvents || s.Steps() != wantEvents {
		t.Fatalf("events = %d (Steps %d), want %d", events, s.Steps(), wantEvents)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d requests still pending after drain", s.Pending())
	}
	if _, ok := s.Step(); ok {
		t.Fatal("drained session must keep reporting done")
	}
}

// TestSessionInterleavesPhases checks the streaming property the old
// RunPrefill/RunDecode split could not express: with concurrency > 1,
// one request's decode steps interleave with another's prefill.
func TestSessionInterleavesPhases(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 201)
	s := e.NewSession(WithMaxConcurrent(2))
	s.Submit(workload.Request{ID: 0, PromptTokens: 32, DecodeTokens: 4},
		workload.Request{ID: 1, PromptTokens: 32, DecodeTokens: 4})

	var order []StepEvent
	s.Run(func(ev StepEvent) { order = append(order, ev) })

	// Request 1's prefill must appear between request 0's decode steps,
	// not after all of them.
	var firstDecode0, prefill1 = -1, -1
	for i, ev := range order {
		if ev.Request == 0 && ev.Phase == PhaseDecode && firstDecode0 < 0 {
			firstDecode0 = i
		}
		if ev.Request == 1 && ev.Phase == PhasePrefill {
			prefill1 = i
		}
	}
	if firstDecode0 < 0 || prefill1 < 0 {
		t.Fatalf("missing phases in event order: %+v", order)
	}
	if prefill1 > firstDecode0+1 {
		t.Fatalf("request 1 prefill at %d did not interleave with request 0 decode at %d", prefill1, firstDecode0)
	}
	// Done fires exactly once per request, on its last event.
	doneSeen := map[int]bool{}
	for _, ev := range order {
		if ev.Done {
			if doneSeen[ev.Request] {
				t.Fatalf("request %d done twice", ev.Request)
			}
			doneSeen[ev.Request] = true
		}
	}
	if len(doneSeen) != 2 {
		t.Fatalf("done events for %d requests, want 2", len(doneSeen))
	}
}

// TestSessionDropsNoOpRequests pins the degenerate Submit contract: a
// request with neither prompt nor decode tokens produces no step at
// all, rather than a phantom decode iteration.
func TestSessionDropsNoOpRequests(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 205)
	s := e.NewSession()
	s.Submit(workload.Request{ID: 0},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 1})
	var events []StepEvent
	s.Run(func(ev StepEvent) { events = append(events, ev) })
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (no-op request must emit none): %+v", len(events), events)
	}
	for _, ev := range events {
		if ev.Request != 1 {
			t.Fatalf("no-op request 0 produced event %+v", ev)
		}
	}
}

// TestSessionStreamingSubmit submits more work mid-run, the live
// request stream case.
func TestSessionStreamingSubmit(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 202)
	s := e.NewSession()
	s.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 1})
	if _, ok := s.Step(); !ok {
		t.Fatal("first step should run")
	}
	s.Submit(workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 1})
	n := s.Run(nil)
	// Remaining: request 0 decode, request 1 prefill + decode.
	if n != 3 {
		t.Fatalf("drained %d steps after late submit, want 3", n)
	}
}

// TestRunWrappersMatchSession pins the compatibility contract: the
// RunDecode/RunPrefill wrappers are exactly a decode-only (resp.
// prefill-only) session drive.
func TestRunWrappersMatchSession(t *testing.T) {
	mk := func() *Engine { return newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 203) }

	viaWrapper := mk().RunDecode(6)
	s := mk().NewSession()
	s.Submit(workload.Request{DecodeTokens: 6})
	var viaSession []float64
	s.Run(func(ev StepEvent) {
		if ev.Phase != PhaseDecode {
			t.Fatalf("decode-only burst emitted %v", ev.Phase)
		}
		viaSession = append(viaSession, ev.Latency)
	})
	if len(viaWrapper.StepLatencies) != len(viaSession) {
		t.Fatalf("wrapper %d steps, session %d", len(viaWrapper.StepLatencies), len(viaSession))
	}
	for i := range viaSession {
		if viaWrapper.StepLatencies[i] != viaSession[i] {
			t.Fatalf("step %d: wrapper %v != session %v", i, viaWrapper.StepLatencies[i], viaSession[i])
		}
	}

	pre := mk().RunPrefill(64)
	s2 := mk().NewSession()
	s2.Submit(workload.Request{PromptTokens: 64})
	ev, ok := s2.Step()
	if !ok || ev.Phase != PhasePrefill {
		t.Fatalf("prefill-only request mis-phased: %+v ok=%v", ev, ok)
	}
	if pre.Total != ev.Latency {
		t.Fatalf("wrapper TTFT %v != session TTFT %v", pre.Total, ev.Latency)
	}
	if _, ok := s2.Step(); ok {
		t.Fatal("prefill-only request should finish in one step")
	}
}

func TestSessionBusyAccounting(t *testing.T) {
	e, err := New(moe.DeepSeek(), hw.A6000Platform(), HybriMoEFramework(),
		WithCacheRatio(0.25), WithSeed(204), WithTraceRecording())
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	s.Submit(workload.Request{ID: 0, PromptTokens: 32, DecodeTokens: 3})
	var gpuTotal float64
	s.Run(func(ev StepEvent) {
		if ev.GPUBusy < 0 || ev.CPUBusy < 0 || ev.LinkBusy < 0 {
			t.Fatalf("negative busy delta: %+v", ev)
		}
		gpuTotal += ev.GPUBusy
	})
	if gpuTotal <= 0 {
		t.Fatal("GPU never busy across a served request")
	}
}
