package engine

import (
	"math"
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

func testRequests() []workload.Request {
	return []workload.Request{
		{ID: 0, PromptTokens: 32, DecodeTokens: 4},
		{ID: 1, PromptTokens: 64, DecodeTokens: 2},
		{ID: 2, PromptTokens: 16, DecodeTokens: 3},
	}
}

func TestSessionEventStream(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 200)
	s := e.NewSession()
	reqs := testRequests()
	s.Submit(reqs...)

	prefills := map[int]int{}
	decodes := map[int]int{}
	var prevEnd float64
	var events int
	for {
		ev, ok := s.Step()
		if !ok {
			break
		}
		events++
		if ev.Latency <= 0 {
			t.Fatalf("non-positive step latency: %+v", ev)
		}
		if ev.End < ev.Start || ev.Start < prevEnd {
			t.Fatalf("event clock not monotonic: %+v after end %v", ev, prevEnd)
		}
		prevEnd = ev.End
		if ev.Hits+ev.Misses == 0 {
			t.Fatalf("step saw no cache lookups: %+v", ev)
		}
		switch ev.Phase {
		case PhasePrefill:
			prefills[ev.Request]++
			if ev.Tokens != reqs[ev.Request].PromptTokens {
				t.Fatalf("prefill tokens %d for request %d", ev.Tokens, ev.Request)
			}
		case PhaseDecode:
			decodes[ev.Request]++
			if ev.Tokens != 1 {
				t.Fatalf("decode step tokens = %d", ev.Tokens)
			}
		}
	}
	for _, r := range reqs {
		if prefills[r.ID] != 1 {
			t.Fatalf("request %d prefilled %d times", r.ID, prefills[r.ID])
		}
		if decodes[r.ID] != r.DecodeTokens {
			t.Fatalf("request %d decoded %d steps, want %d", r.ID, decodes[r.ID], r.DecodeTokens)
		}
	}
	wantEvents := 0
	for _, r := range reqs {
		wantEvents += 1 + r.DecodeTokens
	}
	if events != wantEvents || s.Steps() != wantEvents {
		t.Fatalf("events = %d (Steps %d), want %d", events, s.Steps(), wantEvents)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d requests still pending after drain", s.Pending())
	}
	if _, ok := s.Step(); ok {
		t.Fatal("drained session must keep reporting done")
	}
}

// TestSessionInterleavesPhases checks the streaming property the old
// RunPrefill/RunDecode split could not express: with concurrency > 1,
// one request's decode steps interleave with another's prefill.
func TestSessionInterleavesPhases(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 201)
	s := e.NewSession(WithMaxConcurrent(2))
	s.Submit(workload.Request{ID: 0, PromptTokens: 32, DecodeTokens: 4},
		workload.Request{ID: 1, PromptTokens: 32, DecodeTokens: 4})

	var order []StepEvent
	s.Run(func(ev StepEvent) { order = append(order, ev) })

	// Request 1's prefill must appear between request 0's decode steps,
	// not after all of them.
	var firstDecode0, prefill1 = -1, -1
	for i, ev := range order {
		if ev.Request == 0 && ev.Phase == PhaseDecode && firstDecode0 < 0 {
			firstDecode0 = i
		}
		if ev.Request == 1 && ev.Phase == PhasePrefill {
			prefill1 = i
		}
	}
	if firstDecode0 < 0 || prefill1 < 0 {
		t.Fatalf("missing phases in event order: %+v", order)
	}
	if prefill1 > firstDecode0+1 {
		t.Fatalf("request 1 prefill at %d did not interleave with request 0 decode at %d", prefill1, firstDecode0)
	}
	// Done fires exactly once per request, on its last event.
	doneSeen := map[int]bool{}
	for _, ev := range order {
		if ev.Done {
			if doneSeen[ev.Request] {
				t.Fatalf("request %d done twice", ev.Request)
			}
			doneSeen[ev.Request] = true
		}
	}
	if len(doneSeen) != 2 {
		t.Fatalf("done events for %d requests, want 2", len(doneSeen))
	}
}

// TestSessionDropsNoOpRequests pins the degenerate Submit contract: a
// request with neither prompt nor decode tokens produces no step at
// all, rather than a phantom decode iteration.
func TestSessionDropsNoOpRequests(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 205)
	s := e.NewSession()
	s.Submit(workload.Request{ID: 0},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 1})
	var events []StepEvent
	s.Run(func(ev StepEvent) { events = append(events, ev) })
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (no-op request must emit none): %+v", len(events), events)
	}
	for _, ev := range events {
		if ev.Request != 1 {
			t.Fatalf("no-op request 0 produced event %+v", ev)
		}
	}
}

// TestSessionStreamingSubmit submits more work mid-run, the live
// request stream case.
func TestSessionStreamingSubmit(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 202)
	s := e.NewSession()
	s.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 1})
	if _, ok := s.Step(); !ok {
		t.Fatal("first step should run")
	}
	s.Submit(workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 1})
	n := s.Run(nil)
	// Remaining: request 0 decode, request 1 prefill + decode.
	if n != 3 {
		t.Fatalf("drained %d steps after late submit, want 3", n)
	}
}

// TestRunWrappersMatchSession pins the compatibility contract: the
// RunDecode/RunPrefill wrappers are exactly a decode-only (resp.
// prefill-only) session drive.
func TestRunWrappersMatchSession(t *testing.T) {
	mk := func() *Engine { return newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 203) }

	viaWrapper := mk().RunDecode(6)
	s := mk().NewSession()
	s.Submit(workload.Request{DecodeTokens: 6})
	var viaSession []float64
	s.Run(func(ev StepEvent) {
		if ev.Phase != PhaseDecode {
			t.Fatalf("decode-only burst emitted %v", ev.Phase)
		}
		viaSession = append(viaSession, ev.Latency)
	})
	if len(viaWrapper.StepLatencies) != len(viaSession) {
		t.Fatalf("wrapper %d steps, session %d", len(viaWrapper.StepLatencies), len(viaSession))
	}
	for i := range viaSession {
		if viaWrapper.StepLatencies[i] != viaSession[i] {
			t.Fatalf("step %d: wrapper %v != session %v", i, viaWrapper.StepLatencies[i], viaSession[i])
		}
	}

	pre := mk().RunPrefill(64)
	s2 := mk().NewSession()
	s2.Submit(workload.Request{PromptTokens: 64})
	ev, ok := s2.Step()
	if !ok || ev.Phase != PhasePrefill {
		t.Fatalf("prefill-only request mis-phased: %+v ok=%v", ev, ok)
	}
	if pre.Total != ev.Latency {
		t.Fatalf("wrapper TTFT %v != session TTFT %v", pre.Total, ev.Latency)
	}
	if _, ok := s2.Step(); ok {
		t.Fatal("prefill-only request should finish in one step")
	}
}

// newEngineOpts builds an engine with extra options on top of the
// standard test configuration.
func newEngineOpts(t *testing.T, seed uint64, extra ...Option) *Engine {
	t.Helper()
	opts := append([]Option{WithCacheRatio(0.25), WithSeed(seed)}, extra...)
	e, err := New(moe.DeepSeek(), hw.A6000Platform(), HybriMoEFramework(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSessionFCFSServesInOrder pins the FCFS policy end-to-end: even
// with two slots, the first request runs to completion before the
// second advances at all.
func TestSessionFCFSServesInOrder(t *testing.T) {
	e := newEngineOpts(t, 210, WithRequestScheduler("fcfs"))
	s := e.NewSession(WithMaxConcurrent(2))
	if s.Scheduler() != "fcfs" {
		t.Fatalf("session scheduler %q, want fcfs", s.Scheduler())
	}
	s.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 3},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 3})
	var order []int
	s.Run(func(ev StepEvent) { order = append(order, ev.Request) })
	for i, id := range order {
		if i < 4 && id != 0 || i >= 4 && id != 1 {
			t.Fatalf("FCFS event order %v: request 0 must fully precede request 1", order)
		}
	}
}

// TestSessionSJFFinishesShortFirst pins the SJF policy: the request
// with the fewest remaining decode tokens drains before longer ones
// advance.
func TestSessionSJFFinishesShortFirst(t *testing.T) {
	e := newEngineOpts(t, 211, WithRequestScheduler("sjf"))
	s := e.NewSession(WithMaxConcurrent(2))
	s.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 6},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 1})
	var doneOrder []int
	s.Run(func(ev StepEvent) {
		if ev.Done {
			doneOrder = append(doneOrder, ev.Request)
		}
	})
	if len(doneOrder) != 2 || doneOrder[0] != 1 {
		t.Fatalf("SJF completion order %v, want request 1 first", doneOrder)
	}
}

// TestSessionEDFServesUrgentFirst pins the deadline-aware policy: the
// tighter deadline is served first regardless of submission order, and
// the event stream echoes the deadline for violation accounting.
func TestSessionEDFServesUrgentFirst(t *testing.T) {
	e := newEngineOpts(t, 212, WithRequestScheduler("edf"))
	s := e.NewSession(WithMaxConcurrent(2))
	s.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 2, Deadline: 100},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 2, Deadline: 0.001})
	ev, ok := s.Step()
	if !ok || ev.Request != 1 {
		t.Fatalf("EDF first step served request %d, want the urgent 1", ev.Request)
	}
	if ev.Deadline != 0.001 {
		t.Fatalf("event deadline %v, want 0.001", ev.Deadline)
	}
	var doneOrder []int
	s.Run(func(ev StepEvent) {
		if ev.Done {
			doneOrder = append(doneOrder, ev.Request)
		}
	})
	if len(doneOrder) != 2 || doneOrder[0] != 1 {
		t.Fatalf("EDF completion order %v, want request 1 first", doneOrder)
	}
}

// decideFunc adapts a function to the AdmissionPolicy interface for
// deterministic admission tests.
type decideFunc func(req workload.Request, snap SLOSnapshot) AdmissionDecision

func (decideFunc) Name() string { return "test-policy" }
func (f decideFunc) Decide(req workload.Request, snap SLOSnapshot) AdmissionDecision {
	return f(req, snap)
}

// TestSessionAdmissionShedAccounting sheds everything and checks the
// explicit rejection records: one PhaseShed event per request, Done set,
// no compute steps, counters consistent — and the fully-shed run's
// latency summaries are zero-valued, not NaN (the report.Latencies
// empty-sample contract at the Session boundary).
func TestSessionAdmissionShedAccounting(t *testing.T) {
	e := newEngineOpts(t, 213, WithAdmission(decideFunc(
		func(workload.Request, SLOSnapshot) AdmissionDecision { return AdmissionShed })))
	s := e.NewSession(WithMaxConcurrent(2))
	s.Submit(testRequests()...)

	var ttfts, tbts []float64
	sheds := map[int]int{}
	s.Run(func(ev StepEvent) {
		switch ev.Phase {
		case PhasePrefill:
			ttfts = append(ttfts, ev.Latency)
		case PhaseDecode:
			tbts = append(tbts, ev.Latency)
		case PhaseShed:
			sheds[ev.Request]++
			if !ev.Done {
				t.Fatalf("shed record must be terminal: %+v", ev)
			}
			if ev.Latency != 0 || ev.Tokens != 0 {
				t.Fatalf("shed record must carry no work: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %v in a fully-shed run", ev.Phase)
		}
	})
	if len(ttfts) != 0 || len(tbts) != 0 {
		t.Fatalf("fully-shed run produced %d prefills, %d decodes", len(ttfts), len(tbts))
	}
	if s.Shed() != len(testRequests()) {
		t.Fatalf("Shed() = %d, want %d", s.Shed(), len(testRequests()))
	}
	for _, r := range testRequests() {
		if sheds[r.ID] != 1 {
			t.Fatalf("request %d shed %d times", r.ID, sheds[r.ID])
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("%d requests pending after a full shed", s.Pending())
	}
	// Regression: the empty samples summarise to the zero value.
	for _, l := range []report.LatencyStats{report.Latencies(ttfts), report.Latencies(tbts)} {
		if l != (report.LatencyStats{}) {
			t.Fatalf("empty sample summarised to %+v, want zero value", l)
		}
		for _, v := range []float64{l.Mean, l.P50, l.P95, l.P99} {
			if math.IsNaN(v) {
				t.Fatalf("empty-sample percentile is NaN: %+v", l)
			}
		}
	}
}

// TestSessionAdmissionDeferAccounting defers one request while another
// is in flight and checks: exactly one PhaseDeferred record despite
// repeated deferrals, the Deferred counter sees every verdict, and the
// deferred request still completes once the queue drains (the
// empty-active promotion keeps the loop live).
func TestSessionAdmissionDeferAccounting(t *testing.T) {
	e := newEngineOpts(t, 214, WithAdmission(decideFunc(
		func(req workload.Request, snap SLOSnapshot) AdmissionDecision {
			if req.ID == 1 && snap.Active > 0 {
				return AdmissionDefer
			}
			return AdmissionAdmit
		})))
	s := e.NewSession(WithMaxConcurrent(2))
	s.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 3},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 2})

	deferrals := 0
	done := map[int]bool{}
	s.Run(func(ev StepEvent) {
		if ev.Phase == PhaseDeferred {
			deferrals++
			if ev.Request != 1 {
				t.Fatalf("deferred the wrong request: %+v", ev)
			}
		}
		if ev.Done {
			done[ev.Request] = true
		}
	})
	if deferrals != 1 {
		t.Fatalf("%d PhaseDeferred records, want exactly 1", deferrals)
	}
	if s.Deferred() < 1 {
		t.Fatalf("Deferred() = %d, want at least 1", s.Deferred())
	}
	if !done[0] || !done[1] {
		t.Fatalf("requests not all completed: %v", done)
	}
	if s.Shed() != 0 {
		t.Fatalf("defer-only policy shed %d requests", s.Shed())
	}
}

// TestSLOAdmissionDecide unit-tests the built-in policy's thresholds:
// under-sampled admits, mild breach defers, hard breach sheds — unless
// the request carries priority, which converts the shed to a deferral.
func TestSLOAdmissionDecide(t *testing.T) {
	a := NewSLOAdmission(1.0, 0)
	sample := func(p95 float64, n int) SLOSnapshot {
		return SLOSnapshot{TTFT: report.LatencyStats{N: n, P95: p95}}
	}
	cases := []struct {
		name string
		req  workload.Request
		snap SLOSnapshot
		want AdmissionDecision
	}{
		{"under target", workload.Request{}, sample(0.5, 10), AdmissionAdmit},
		{"under-sampled breach", workload.Request{}, sample(9, 2), AdmissionAdmit},
		{"mild breach", workload.Request{}, sample(1.2, 10), AdmissionDefer},
		{"hard breach", workload.Request{}, sample(2.0, 10), AdmissionShed},
		{"hard breach, priority exempt", workload.Request{Priority: 1}, sample(2.0, 10), AdmissionDefer},
	}
	for _, tc := range cases {
		if got := a.Decide(tc.req, tc.snap); got != tc.want {
			t.Errorf("%s: Decide = %v, want %v", tc.name, got, tc.want)
		}
	}
	if a.Name() == "" {
		t.Error("SLOAdmission must be named")
	}
	// A struct literal that only sets targets inherits the defaults:
	// a zero ShedFactor/MinSamples must not shed traffic that is
	// comfortably under its SLO.
	lit := &SLOAdmission{TTFTp95: 1.0}
	if got := lit.Decide(workload.Request{}, sample(0.5, 10)); got != AdmissionAdmit {
		t.Errorf("zero-valued literal under target: Decide = %v, want admit", got)
	}
	if got := lit.Decide(workload.Request{}, sample(2.0, 10)); got != AdmissionShed {
		t.Errorf("zero-valued literal hard breach: Decide = %v, want shed", got)
	}
}

func TestSessionBusyAccounting(t *testing.T) {
	e, err := New(moe.DeepSeek(), hw.A6000Platform(), HybriMoEFramework(),
		WithCacheRatio(0.25), WithSeed(204), WithTraceRecording())
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	s.Submit(workload.Request{ID: 0, PromptTokens: 32, DecodeTokens: 3})
	var gpuTotal float64
	s.Run(func(ev StepEvent) {
		if ev.GPUBusy < 0 || ev.CPUBusy < 0 || ev.LinkBusy < 0 {
			t.Fatalf("negative busy delta: %+v", ev)
		}
		gpuTotal += ev.GPUBusy
	})
	if gpuTotal <= 0 {
		t.Fatal("GPU never busy across a served request")
	}
}
