package engine

import (
	"math"
	"strings"
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/prefetch"
)

func TestOptionValidation(t *testing.T) {
	cfg := moe.DeepSeek()
	platform := hw.A6000Platform()
	cases := []struct {
		name string
		opt  Option
		want string // substring of the expected error
	}{
		{"negative ratio", WithCacheRatio(-0.1), "outside [0, 1]"},
		{"ratio above one", WithCacheRatio(1.5), "outside [0, 1]"},
		{"NaN ratio", WithCacheRatio(math.NaN()), "outside [0, 1]"},
		{"zero context", WithContext(0), "must be positive"},
		{"negative context", WithContext(-3), "must be positive"},
		{"negative warmup", WithWarmupIters(-1), "must be non-negative"},
		{"nil prefetcher", WithPrefetcher(nil), "WithPrefetcher(nil)"},
		{"unknown request scheduler", WithRequestScheduler("psychic"), "unknown request scheduler"},
		{"nil admission", WithAdmission(nil), "WithAdmission(nil)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(cfg, platform, HybriMoEFramework(), tc.opt)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if _, err := New(cfg, platform, HybriMoEFramework(), nil); err == nil {
		t.Error("nil Option should error")
	}
}

// TestExplicitZeroCacheRatio pins the unset-vs-zero distinction: the
// default applies only when WithCacheRatio is never passed, and an
// explicit 0 yields a genuinely empty cache (the zero-cache baseline
// the old Options.fillDefaults made inexpressible).
func TestExplicitZeroCacheRatio(t *testing.T) {
	cfg := moe.DeepSeek()
	platform := hw.A6000Platform()

	def, err := New(cfg, platform, HybriMoEFramework(), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.CacheCapacity(0.25); def.Cache().Capacity() != want {
		t.Fatalf("unset ratio capacity = %d, want default %d", def.Cache().Capacity(), want)
	}

	zero, err := New(cfg, platform, HybriMoEFramework(), WithSeed(1), WithCacheRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Cache().Capacity() != 0 {
		t.Fatalf("explicit zero ratio capacity = %d, want 0", zero.Cache().Capacity())
	}
	res := zero.RunDecode(3)
	if res.Total <= 0 {
		t.Fatal("zero-cache engine must still run")
	}
	if res.Stats.CacheHitRate != 0 {
		t.Fatalf("zero-cache hit rate = %v, want 0", res.Stats.CacheHitRate)
	}
	// No cache means strictly more demand traffic or CPU work than the
	// default — it must not be faster.
	base := def.RunDecode(3)
	if res.Total < base.Total {
		t.Fatalf("zero cache (%v) beat a 25%% cache (%v)", res.Total, base.Total)
	}
}

func TestWithPrefetcherOverridesFrameworkName(t *testing.T) {
	fw := HybriMoEFramework()
	fw.Prefetch = "psychic" // never resolved: the instance wins
	e, err := New(moe.DeepSeek(), hw.A6000Platform(), fw,
		WithSeed(2), WithPrefetcher(&prefetch.ImpactDriven{Window: 1}))
	if err != nil {
		t.Fatalf("explicit prefetcher should bypass name resolution: %v", err)
	}
	if e.RunDecode(2).Total <= 0 {
		t.Fatal("engine with injected prefetcher broken")
	}
}

func TestWarmupItersZeroDisablesWarmup(t *testing.T) {
	e, err := New(moe.DeepSeek(), hw.A6000Platform(), HybriMoEFramework(),
		WithSeed(3), WithWarmupIters(0))
	if err != nil {
		t.Fatal(err)
	}
	if n := e.Cache().Len(); n != 0 {
		t.Fatalf("explicit zero warmup left %d residents", n)
	}
}
