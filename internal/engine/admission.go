package engine

import (
	"fmt"

	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// AdmissionDecision is an admission controller's verdict on one pending
// request.
type AdmissionDecision int

// Verdicts, from most to least welcoming.
const (
	// AdmissionAdmit moves the request into the active set.
	AdmissionAdmit AdmissionDecision = iota
	// AdmissionDefer keeps the request queued: it is re-evaluated on a
	// later admission pass, once the live quantiles have moved. A defer
	// with nothing active is promoted to an admit — waiting cannot
	// improve latencies no one is producing.
	AdmissionDefer
	// AdmissionShed drops the request without running it. The session
	// emits a PhaseShed event so studies can count shed load.
	AdmissionShed
)

// String returns the verdict name event logs use.
func (d AdmissionDecision) String() string {
	switch d {
	case AdmissionAdmit:
		return "admit"
	case AdmissionDefer:
		return "defer"
	case AdmissionShed:
		return "shed"
	default:
		return fmt.Sprintf("AdmissionDecision(%d)", int(d))
	}
}

// SLOSnapshot is what an admission policy sees at decision time: the
// running TTFT/TBT quantiles computed over every observation the
// session's event stream has produced so far, the simulation clock, and
// the queue depths.
type SLOSnapshot struct {
	// Now is the simulation clock at the admission pass.
	Now float64
	// TTFT and TBT summarise the live per-stage latency observations
	// from the session's event stream. TTFT observations are
	// queue-inclusive — arrival → first token (StepEvent.Queued +
	// Latency), so queueing pressure from open-loop bursts moves the
	// quantiles; for closed-queue requests with no arrival stamp this
	// reduces to the forward latency alone. TBT observations are raw
	// per-step decode latencies. Zero-valued when no observation of
	// that stage exists yet.
	TTFT, TBT report.LatencyStats
	// Active and Queued are the in-flight and arrived-but-still-pending
	// request counts (Queued includes the request under decision;
	// requests whose open-loop arrival is still in the future are not
	// counted — the server cannot see them yet).
	Active, Queued int
}

// AdmissionPolicy decides, per pending request, whether the session
// admits, defers or sheds it. Policies see the live latency quantiles,
// so they can act exactly when p95/p99 targets come under pressure.
type AdmissionPolicy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Decide returns the verdict for one pending request.
	Decide(req workload.Request, snap SLOSnapshot) AdmissionDecision
}

// ClassTarget overrides the guard-wide budgets for one SLO class, so a
// single admission policy can hold "interactive" traffic to a tight
// budget while "batch" traffic rides a slack one.
type ClassTarget struct {
	// TTFTp95 and TBTp95 replace the policy's targets for requests of
	// this class; a zero field keeps the guard-wide target for that
	// stage (so a class can tighten TTFT alone).
	TTFTp95, TBTp95 float64
	// ShedExempt requests are never shed, only deferred — the same
	// protection Priority > 0 buys, granted to the whole class.
	ShedExempt bool
}

// SLOAdmission is the built-in SLO guard: it compares the live p95
// TTFT and TBT against their targets and turns new arrivals away when
// either is at risk. A breach up to ShedFactor× the target defers (the
// queue rides out the spike); beyond that it sheds, except that
// requests with Priority > 0 are never shed, only deferred — load
// shedding takes the best-effort traffic first.
type SLOAdmission struct {
	// TTFTp95 and TBTp95 are the p95 targets in seconds; a zero target
	// disables that stage's check.
	TTFTp95, TBTp95 float64
	// MinSamples is the per-stage observation count below which the
	// quantile is considered too noisy to act on (that stage's check
	// passes). Non-positive values fall back to the default of 4, so a
	// struct literal that only sets targets behaves like NewSLOAdmission.
	MinSamples int
	// ShedFactor scales a target into the hard-shed threshold: p95
	// above target defers, above ShedFactor×target sheds. Non-positive
	// values fall back to the default of 1.5.
	ShedFactor float64
	// Classes keys per-class targets on workload.Request.Class. A
	// request whose class has an entry is judged against that entry's
	// budgets (zero fields inherit the guard-wide targets); classes
	// without an entry — and the unclassified "" — keep the guard-wide
	// behaviour. The live quantiles stay aggregate: classes share one
	// observation stream and differ only in how much of it they
	// tolerate.
	Classes map[string]ClassTarget
}

// NewSLOAdmission returns an SLO guard with the default sample floor
// (4) and shed factor (1.5). Targets of zero disable the corresponding
// check; both zero yields a policy that admits everything.
func NewSLOAdmission(ttftP95, tbtP95 float64) *SLOAdmission {
	return &SLOAdmission{TTFTp95: ttftP95, TBTp95: tbtP95, MinSamples: 4, ShedFactor: 1.5}
}

// Name implements AdmissionPolicy.
func (a *SLOAdmission) Name() string { return "slo-p95" }

// Decide implements AdmissionPolicy.
func (a *SLOAdmission) Decide(req workload.Request, snap SLOSnapshot) AdmissionDecision {
	ttftT, tbtT := a.TTFTp95, a.TBTp95
	exempt := req.Priority > 0
	if ct, ok := a.Classes[req.Class]; ok {
		if ct.TTFTp95 > 0 {
			ttftT = ct.TTFTp95
		}
		if ct.TBTp95 > 0 {
			tbtT = ct.TBTp95
		}
		exempt = exempt || ct.ShedExempt
	}
	breach := maxF(a.breach(snap.TTFT, ttftT), a.breach(snap.TBT, tbtT))
	switch {
	case breach > a.shedFactor() && !exempt:
		return AdmissionShed
	case breach > 1:
		return AdmissionDefer
	default:
		return AdmissionAdmit
	}
}

// breach reports how far a stage's live p95 sits above its target, as a
// ratio; 0 when the check is disabled or under-sampled.
func (a *SLOAdmission) breach(l report.LatencyStats, target float64) float64 {
	if target <= 0 || l.N < a.minSamples() {
		return 0
	}
	return l.P95 / target
}

func (a *SLOAdmission) shedFactor() float64 {
	if a.ShedFactor <= 0 {
		return 1.5
	}
	return a.ShedFactor
}

func (a *SLOAdmission) minSamples() int {
	if a.MinSamples <= 0 {
		return 4
	}
	return a.MinSamples
}
