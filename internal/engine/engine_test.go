package engine

import (
	"testing"

	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
)

func newEngine(t *testing.T, cfg *moe.Config, fw Framework, ratio float64, seed uint64) *Engine {
	t.Helper()
	e, err := New(cfg, hw.A6000Platform(), fw,
		WithCacheRatio(ratio), WithSeed(seed), WithPlanValidation())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRejectsBadInputs(t *testing.T) {
	bad := &moe.Config{Name: "bad"}
	if _, err := New(bad, hw.A6000Platform(), HybriMoEFramework()); err == nil {
		t.Error("invalid config should error")
	}
	badPlat := hw.A6000Platform()
	badPlat.CPU.PeakFlops = 0
	if _, err := New(moe.DeepSeek(), badPlat, HybriMoEFramework()); err == nil {
		t.Error("invalid platform should error")
	}
	badFW := HybriMoEFramework()
	badFW.Prefetch = "psychic"
	if _, err := New(moe.DeepSeek(), hw.A6000Platform(), badFW); err == nil {
		t.Error("unknown prefetcher should error")
	}
	badFW2 := HybriMoEFramework()
	badFW2.CachePolicy = "FIFO"
	if _, err := New(moe.DeepSeek(), hw.A6000Platform(), badFW2); err == nil {
		t.Error("unknown cache policy should error")
	}
	badFW3 := HybriMoEFramework()
	badFW3.Sched = "psychic-sched"
	if _, err := New(moe.DeepSeek(), hw.A6000Platform(), badFW3); err == nil {
		t.Error("unknown scheduler should error")
	}
	badFW4 := HybriMoEFramework()
	badFW4.Sched = ""
	if _, err := New(moe.DeepSeek(), hw.A6000Platform(), badFW4); err == nil {
		t.Error("empty scheduler name should error")
	}
}

func TestDecodeProducesPositiveLatencies(t *testing.T) {
	for _, fw := range AllFrameworks() {
		e := newEngine(t, moe.DeepSeek(), fw, 0.5, 1)
		res := e.RunDecode(8)
		if len(res.StepLatencies) != 8 {
			t.Fatalf("%s: %d steps", fw.Name, len(res.StepLatencies))
		}
		for i, lat := range res.StepLatencies {
			if lat <= 0 {
				t.Fatalf("%s step %d latency %v", fw.Name, i, lat)
			}
		}
		if res.Mean() <= 0 || res.Total <= 0 {
			t.Fatalf("%s aggregates broken: %+v", fw.Name, res)
		}
		if res.Framework != fw.Name || res.Model != "DeepSeek" {
			t.Fatalf("result labels wrong: %+v", res)
		}
	}
}

func TestPrefillProducesPositiveLatency(t *testing.T) {
	for _, fw := range AllFrameworks() {
		e := newEngine(t, moe.DeepSeek(), fw, 0.5, 2)
		res := e.RunPrefill(64)
		if len(res.StepLatencies) != 1 || res.StepLatencies[0] <= 0 {
			t.Fatalf("%s: prefill result %+v", fw.Name, res)
		}
	}
}

func TestRunPanicsOnBadArgs(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.5, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero decode steps should panic")
			}
		}()
		e.RunDecode(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero prefill tokens should panic")
			}
		}()
		e.RunPrefill(0)
	}()
}

func TestHybriMoEBeatsKTransformersDecode(t *testing.T) {
	// The headline decode result (Fig. 8): HybriMoE ≥ kTransformers at
	// tight cache ratios. Averaged over seeds to avoid flake.
	var hybTotal, ktTotal float64
	for seed := uint64(0); seed < 3; seed++ {
		hyb := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 10+seed).RunDecode(30)
		kt := newEngine(t, moe.DeepSeek(), KTransformersFramework(), 0.25, 10+seed).RunDecode(30)
		hybTotal += hyb.Total
		ktTotal += kt.Total
	}
	speedup := ktTotal / hybTotal
	t.Logf("decode speedup over kTransformers: %.2fx", speedup)
	if speedup < 1.1 {
		t.Fatalf("HybriMoE decode speedup %.3f too small", speedup)
	}
}

func TestHybriMoEBeatsKTransformersPrefill(t *testing.T) {
	var hybTotal, ktTotal float64
	for seed := uint64(0); seed < 3; seed++ {
		hyb := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 20+seed).RunPrefill(128)
		kt := newEngine(t, moe.DeepSeek(), KTransformersFramework(), 0.25, 20+seed).RunPrefill(128)
		hybTotal += hyb.Total
		ktTotal += kt.Total
	}
	speedup := ktTotal / hybTotal
	t.Logf("prefill speedup over kTransformers: %.2fx", speedup)
	if speedup < 1.05 {
		t.Fatalf("HybriMoE prefill speedup %.3f too small", speedup)
	}
}

func TestLlamaCppWorstAtPrefill(t *testing.T) {
	// Figure 7: llama.cpp's whole-layer CPU mapping is the slowest
	// prefill by a wide margin.
	lc := newEngine(t, moe.DeepSeek(), LlamaCppFramework(), 0.5, 30).RunPrefill(128)
	hyb := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.5, 30).RunPrefill(128)
	if lc.Total <= hyb.Total {
		t.Fatalf("llama.cpp prefill (%v) should trail HybriMoE (%v)", lc.Total, hyb.Total)
	}
}

func TestMoreCacheIsFaster(t *testing.T) {
	// Latency must fall (or at least not rise) as the cache ratio grows.
	lat := map[float64]float64{}
	for _, ratio := range []float64{0.25, 0.75} {
		e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), ratio, 40)
		lat[ratio] = e.RunDecode(30).Total
	}
	if lat[0.75] >= lat[0.25] {
		t.Fatalf("75%% cache (%v) should beat 25%% cache (%v)", lat[0.75], lat[0.25])
	}
}

func TestCacheHitRateReported(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.5, 50)
	res := e.RunDecode(20)
	if res.Stats.CacheHitRate <= 0 || res.Stats.CacheHitRate > 1 {
		t.Fatalf("hit rate %v out of (0,1]", res.Stats.CacheHitRate)
	}
}

func TestStatsCounters(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 60)
	res := e.RunDecode(10)
	if res.Stats.CPUOps+res.Stats.GPUOps == 0 {
		t.Fatal("no compute ops recorded")
	}
	// 10 steps × 26 layers × 6 experts = 1560 expert computations.
	if got := res.Stats.CPUOps + res.Stats.GPUOps; got != 1560 {
		t.Fatalf("compute ops = %d, want 1560", got)
	}
	e2 := newEngine(t, moe.DeepSeek(), KTransformersFramework(), 0.25, 60)
	res2 := e2.RunDecode(10)
	if res2.Stats.DemandTransfers != 0 {
		t.Fatalf("static mapping made %d demand transfers", res2.Stats.DemandTransfers)
	}
	if res2.Stats.PrefetchTransfers != 0 {
		t.Fatalf("kTransformers made %d prefetch transfers", res2.Stats.PrefetchTransfers)
	}
}

func TestPrefetcherActuallyPrefetches(t *testing.T) {
	// On the static-mapping baseline the PCIe link is idle at decode, so
	// impact-driven prefetching has budget to act (the Table III
	// +Prefetching configuration). Under full HybriMoE the link may be
	// saturated by the scheduler's own demand transfers, which rightly
	// take priority.
	fw := KTransformersFramework()
	fw.Prefetch = "impact-driven"
	fw.PinWarm = false
	e := newEngine(t, moe.DeepSeek(), fw, 0.25, 70)
	res := e.RunDecode(20)
	if res.Stats.PrefetchTransfers == 0 {
		t.Fatal("impact-driven prefetcher never fired over 20 decode steps")
	}
	// And prefetching must help: same config without it is slower.
	plain := KTransformersFramework()
	plain.PinWarm = false
	base := newEngine(t, moe.DeepSeek(), plain, 0.25, 70).RunDecode(20)
	if res.Total >= base.Total {
		t.Fatalf("prefetching should reduce decode latency: %v vs %v", res.Total, base.Total)
	}
}

func TestRecordTraceGantt(t *testing.T) {
	e, err := New(moe.DeepSeek(), hw.A6000Platform(), HybriMoEFramework(),
		WithCacheRatio(0.5), WithSeed(80), WithTraceRecording())
	if err != nil {
		t.Fatal(err)
	}
	e.RunDecode(2)
	g := e.Gantt(60)
	if len(g) == 0 {
		t.Fatal("recorded trace should render a Gantt chart")
	}
	cpu, gpu, link := e.Timelines()
	if cpu == nil || gpu == nil || link == nil {
		t.Fatal("timelines missing with RecordTrace")
	}
	if gpu.BusyTime() <= 0 {
		t.Fatal("GPU timeline empty")
	}
	// Without RecordTrace, Gantt is empty.
	e2 := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.5, 81)
	e2.RunDecode(1)
	if e2.Gantt(60) != "" {
		t.Fatal("Gantt without RecordTrace should be empty")
	}
}

func TestStaticSplitResidency(t *testing.T) {
	e := newEngine(t, moe.DeepSeek(), LlamaCppFramework(), 0.5, 90)
	// 50% of 26 layers = 13 GPU layers.
	if !e.isCached(moe.ExpertID{Layer: 0, Index: 0}) {
		t.Fatal("layer 0 should be GPU-resident for llama.cpp at 50%")
	}
	if e.isCached(moe.ExpertID{Layer: 20, Index: 0}) {
		t.Fatal("layer 20 should be CPU-resident for llama.cpp at 50%")
	}
	if e.attentionDevice(20) != hw.CPU {
		t.Fatal("CPU layer attention should run on CPU for llama.cpp")
	}
	if e.attentionDevice(0) != hw.GPU {
		t.Fatal("GPU layer attention should run on GPU")
	}
}

func TestAblationFrameworksComplete(t *testing.T) {
	fws := AblationFrameworks()
	if len(fws) != 5 {
		t.Fatalf("ablation variants = %d, want 5", len(fws))
	}
	names := map[string]bool{}
	for _, fw := range fws {
		names[fw.Name] = true
		// Every variant must construct and run.
		e := newEngine(t, moe.Qwen2(), fw, 0.25, 100)
		res := e.RunDecode(3)
		if res.Total <= 0 {
			t.Fatalf("%s produced non-positive latency", fw.Name)
		}
	}
	for _, want := range []string{"Baseline", "Baseline+Scheduling", "Baseline+Prefetching", "Baseline+Caching", "All"} {
		if !names[want] {
			t.Fatalf("missing ablation variant %q", want)
		}
	}
}

func TestMixtralAndQwenRun(t *testing.T) {
	for _, cfg := range []*moe.Config{moe.Mixtral(), moe.Qwen2()} {
		e := newEngine(t, cfg, HybriMoEFramework(), 0.5, 110)
		res := e.RunDecode(3)
		if res.Total <= 0 {
			t.Fatalf("%s decode broken", cfg.Name)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 120).RunDecode(5)
	b := newEngine(t, moe.DeepSeek(), HybriMoEFramework(), 0.25, 120).RunDecode(5)
	for i := range a.StepLatencies {
		if a.StepLatencies[i] != b.StepLatencies[i] {
			t.Fatal("same seed must reproduce identical latencies")
		}
	}
}
