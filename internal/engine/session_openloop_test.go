package engine

import (
	"math"
	"testing"

	"hybrimoe/internal/report"
	"hybrimoe/internal/workload"
)

// TestSessionClosedLoopStreamUnchanged is the regression pin for the
// arrival plumbing: with no arrival stamps the Session must behave as
// the closed-queue loop always did — no clock jumps, zero Queued on
// every event, zero Arrival echoes — so the pre-arrival event stream
// is reproduced field for field (the new fields all zero-valued).
func TestSessionClosedLoopStreamUnchanged(t *testing.T) {
	e := newEngineOpts(t, 400)
	s := e.NewSession(WithMaxConcurrent(2))
	s.Submit(testRequests()...)
	first := true
	s.Run(func(ev StepEvent) {
		if ev.Queued != 0 || ev.Arrival != 0 {
			t.Fatalf("closed-loop event carries open-loop fields: %+v", ev)
		}
		if first && ev.Start != 0 {
			t.Fatalf("closed-loop run did not start at t=0: %+v", ev)
		}
		first = false
	})
}

// TestSessionHoldsUntilArrival pins the open-loop hold: a request whose
// arrival is in the future runs no earlier than it, with the idle gap
// crossed by a clock jump rather than a spin, and a request arriving
// exactly when it is served reports zero queue wait.
func TestSessionHoldsUntilArrival(t *testing.T) {
	e := newEngineOpts(t, 401)
	s := e.NewSession()
	s.Submit(workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 1, Arrival: 5})
	ev, ok := s.Step()
	if !ok {
		t.Fatal("held request never served")
	}
	if ev.Start != 5 {
		t.Fatalf("prefill started at %v, want the 5s arrival (clock jump)", ev.Start)
	}
	if ev.Arrival != 5 {
		t.Fatalf("event echoes arrival %v, want 5", ev.Arrival)
	}
	if ev.Queued != 0 {
		t.Fatalf("request served at its arrival instant queued %v, want 0", ev.Queued)
	}
	s.Run(nil)
	if s.Pending() != 0 {
		t.Fatalf("%d pending after drain", s.Pending())
	}
}

// TestSessionQueueInclusiveTTFT pins the new TTFT accounting: when a
// burst outpaces the server, the waiting request's prefill event
// carries the arrival→start queue wait in Queued, and Latency + Queued
// equals arrival→first-token exactly — the old forward-only TTFT stays
// recoverable from Latency alone.
func TestSessionQueueInclusiveTTFT(t *testing.T) {
	e := newEngineOpts(t, 402)
	s := e.NewSession() // concurrency 1: the second request must queue
	s.Submit(
		workload.Request{ID: 0, PromptTokens: 32, DecodeTokens: 2, Arrival: 0.001},
		workload.Request{ID: 1, PromptTokens: 32, DecodeTokens: 1, Arrival: 0.002},
	)
	var events []StepEvent
	s.Run(func(ev StepEvent) { events = append(events, ev) })
	var waited bool
	for _, ev := range events {
		switch {
		case ev.Phase == PhasePrefill && ev.Request == 1:
			if ev.Queued <= 0 {
				t.Fatalf("queued request reports no wait: %+v", ev)
			}
			if got, want := ev.Queued+ev.Latency, ev.End-ev.Arrival; math.Abs(got-want) > 1e-9 {
				t.Fatalf("Queued+Latency = %v, want arrival→first-token %v", got, want)
			}
			waited = true
		case ev.Phase == PhaseDecode:
			if ev.Queued != 0 {
				t.Fatalf("decode step of a prefilled request carries queue wait: %+v", ev)
			}
		}
		if ev.Start+1e-12 < ev.Arrival {
			t.Fatalf("request served before it arrived: %+v", ev)
		}
	}
	if !waited {
		t.Fatal("second request never queued behind the first")
	}
}

// TestSessionDecodeOnlyArrivalQueueWait covers the prompt-less burst: a
// decode-only request's first decode step carries its queue wait (there
// is no prefill to carry it), later steps none.
func TestSessionDecodeOnlyArrivalQueueWait(t *testing.T) {
	e := newEngineOpts(t, 403)
	s := e.NewSession()
	s.Submit(
		workload.Request{ID: 0, PromptTokens: 24, DecodeTokens: 2, Arrival: 0.001},
		workload.Request{ID: 1, DecodeTokens: 3, Arrival: 0.002},
	)
	decodes := 0
	s.Run(func(ev StepEvent) {
		if ev.Request != 1 {
			return
		}
		if ev.Phase != PhaseDecode {
			t.Fatalf("decode-only request mis-phased: %+v", ev)
		}
		if decodes == 0 && ev.Queued <= 0 {
			t.Fatalf("first decode of a queued prompt-less request has no wait: %+v", ev)
		}
		if decodes > 0 && ev.Queued != 0 {
			t.Fatalf("later decode carries queue wait: %+v", ev)
		}
		decodes++
	})
	if decodes != 3 {
		t.Fatalf("decode-only request ran %d steps, want 3", decodes)
	}
}

// TestSessionArrivalOrderIndependence pins the replay-friendly hold: an
// out-of-order trace (a later list entry arriving earlier) must not let
// the future request block the arrived one behind it.
func TestSessionArrivalOrderIndependence(t *testing.T) {
	e := newEngineOpts(t, 404)
	s := e.NewSession()
	s.Submit(
		workload.Request{ID: 0, PromptTokens: 16, DecodeTokens: 1, Arrival: 50},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 1, Arrival: 0.001},
	)
	ev, ok := s.Step()
	if !ok || ev.Request != 1 {
		t.Fatalf("first served request %d (ok=%v), want the earlier-arriving 1", ev.Request, ok)
	}
	var order []int
	order = append(order, ev.Request)
	s.Run(func(ev StepEvent) { order = append(order, ev.Request) })
	if last := order[len(order)-1]; last != 0 {
		t.Fatalf("late arrival never served: order %v", order)
	}
}

// TestSessionAdmissionSeesQueueWait is the queue-blind-TTFT fix end to
// end: the same burst of requests, served with the same SLO target, is
// fully admitted when arrivals are disabled (forward-only TTFT never
// breaches) but partially shed once arrival stamps make the queue wait
// visible to the live p95 the admission guard reads.
func TestSessionAdmissionSeesQueueWait(t *testing.T) {
	mkReqs := func(stampArrivals bool) []workload.Request {
		reqs := make([]workload.Request, 10)
		for i := range reqs {
			reqs[i] = workload.Request{ID: i, PromptTokens: 32, DecodeTokens: 2}
			if stampArrivals {
				// A near-simultaneous burst: all arrive within 10ms, far
				// faster than the server drains them.
				reqs[i].Arrival = 0.001 * float64(i+1)
			}
		}
		return reqs
	}
	// Calibrate the SLO from an open-door run: the forward-only TTFT of
	// this homogeneous burst is essentially constant, so a target just
	// above it can only breach through queueing.
	var maxForward float64
	{
		e := newEngineOpts(t, 405)
		s := e.NewSession()
		s.Submit(mkReqs(false)...)
		s.Run(func(ev StepEvent) {
			if ev.Phase == PhasePrefill && ev.Latency > maxForward {
				maxForward = ev.Latency
			}
		})
	}
	drive := func(stamp bool) int {
		e := newEngineOpts(t, 405,
			WithAdmission(&SLOAdmission{TTFTp95: maxForward * 1.05, MinSamples: 2, ShedFactor: 1.2}))
		s := e.NewSession()
		s.Submit(mkReqs(stamp)...)
		s.Run(nil)
		return s.Shed()
	}
	if shed := drive(false); shed != 0 {
		t.Fatalf("closed-loop run shed %d requests under a target above the forward latency", shed)
	}
	if shed := drive(true); shed == 0 {
		t.Fatal("bursty open-loop run shed nothing: admission is still queue-blind")
	}
}

// TestSessionDecodeOnlyFeedsAdmissionTTFT closes the decode-only gap
// in the queue-blind fix: a prompt-less request has no prefill to carry
// its arrival→first-token observation, so its first decode must feed
// the TTFT quantiles the admission guard reads — otherwise a replayed
// decode-only trace leaves TTFT.N at zero and admission never sheds,
// however far the queue backs up.
func TestSessionDecodeOnlyFeedsAdmissionTTFT(t *testing.T) {
	var maxSeen report.LatencyStats
	capture := decideFunc(func(_ workload.Request, snap SLOSnapshot) AdmissionDecision {
		if snap.TTFT.N > maxSeen.N {
			maxSeen = snap.TTFT
		}
		return AdmissionAdmit
	})
	e := newEngineOpts(t, 408, WithAdmission(capture))
	s := e.NewSession()
	reqs := make([]workload.Request, 6)
	for i := range reqs {
		reqs[i] = workload.Request{ID: i, DecodeTokens: 4, Arrival: 0.001 * float64(i+1)}
	}
	s.Submit(reqs...)
	s.Run(nil)
	if maxSeen.N == 0 {
		t.Fatal("decode-only burst never fed the admission TTFT quantiles")
	}
	// The later requests queue behind the earlier ones at concurrency 1,
	// so the observed p95 must reflect queue wait, not a lone decode
	// step's latency.
	if maxSeen.P95 < 0.01 {
		t.Fatalf("TTFT p95 %v looks like a bare decode step; queue wait missing", maxSeen.P95)
	}
}

// TestSessionPendingExcludesZeroWork pins the Submit contract: a
// zero-work submission (no prompt, no decode) is dropped at Submit and
// never inflates Pending while it waits for an admission pass.
func TestSessionPendingExcludesZeroWork(t *testing.T) {
	e := newEngineOpts(t, 406)
	s := e.NewSession()
	s.Submit(workload.Request{ID: 0},
		workload.Request{ID: 1, PromptTokens: 16, DecodeTokens: 1},
		workload.Request{ID: 2})
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after two zero-work submissions, want 1", got)
	}
	n := s.Run(nil)
	if n != 2 { // prefill + one decode
		t.Fatalf("drained %d events, want 2", n)
	}
}

// TestSessionBatchedRoundRobinRotation is the engine-level regression
// for the batch-compaction cursor skew: with greedy batching merging
// every in-flight decode, a co-member completing at an index below the
// round-robin lead used to shift the slice under the cursor and skip
// the next request in rotation. The lead of every merged iteration is
// its first emitted event, so the lead sequence pins the rotation.
func TestSessionBatchedRoundRobinRotation(t *testing.T) {
	e := newEngineOpts(t, 407, WithBatchPolicy("greedy", 64))
	s := e.NewSession(WithMaxConcurrent(4))
	s.Submit(
		workload.Request{ID: 0, DecodeTokens: 2},
		workload.Request{ID: 1, DecodeTokens: 3},
		workload.Request{ID: 2, DecodeTokens: 1},
		workload.Request{ID: 3, DecodeTokens: 3},
	)
	var leads []int
	lastBatch := 0
	s.Run(func(ev StepEvent) {
		if ev.Batch != lastBatch {
			lastBatch = ev.Batch
			leads = append(leads, ev.Request)
		}
	})
	// Iteration 1 (lead 0) completes request 2 mid-batch; iteration 2
	// (lead 1) completes request 0 — an index below the lead. The fixed
	// cursor keeps the rotation on request 3; the old pick-only
	// accounting wrapped back to request 1 and starved 3.
	want := []int{0, 1, 3}
	if len(leads) != len(want) {
		t.Fatalf("lead sequence %v, want %v", leads, want)
	}
	for i := range want {
		if leads[i] != want[i] {
			t.Fatalf("lead sequence %v, want %v (cursor skew)", leads, want)
		}
	}
}
