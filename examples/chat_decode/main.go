// Chat decode study: the paper's decode-stage scenario (Figure 8) in
// miniature. For each evaluated model it compares the four frameworks'
// token latency at a tight 25% expert cache, then shows what the MRS
// cache policy contributes over LRU at equal capacity.
//
// Run with: go run ./examples/chat_decode
package main

import (
	"fmt"
	"log"
	"os"

	"hybrimoe/internal/cache"
	"hybrimoe/internal/core"
	"hybrimoe/internal/exp"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
)

func main() {
	const (
		steps = 40
		ratio = 0.25
		seed  = 7
	)
	platform := hw.A6000Platform()

	tbl := report.NewTable("Decode TBT at 25% cache (40 generated tokens)",
		"model", "llama.cpp(s)", "AdapMoE(s)", "KTrans(s)", "HybriMoE(s)", "speedup")
	for _, cfg := range moe.AllModels() {
		lats, err := core.CompareFrameworks(cfg, platform, ratio, seed, true, steps)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(cfg.Name,
			lats["llama.cpp"], lats["AdapMoE"], lats["KTransformers"], lats["HybriMoE"],
			lats["KTransformers"]/lats["HybriMoE"])
	}
	tbl.Render(os.Stdout)

	fmt.Println()
	hit := report.NewTable("Cache policy at 30% capacity (steady-state hit rate)",
		"model", "LRU", "MRS", "gain")
	for _, cfg := range moe.AllModels() {
		lru := exp.CacheHitRate(cfg, cache.NewLRU(), 0.30, 200, seed)
		mrs := exp.CacheHitRate(cfg, cache.NewMRS(cache.DefaultAlpha, 2*cfg.ActivatedExperts), 0.30, 200, seed)
		hit.AddRow(cfg.Name, lru, mrs, mrs-lru)
	}
	hit.Render(os.Stdout)
}
