// Serving example: an end-to-end session study beyond the paper's
// per-stage metrics. A mixed request stream sampled from MT-Bench-,
// Vicuna-Bench- and ChatGPT-Prompts-like length distributions is served
// through the engine's streaming Session loop — prefill and decode
// interleaved across concurrent requests, the expert cache carrying
// state throughout — the deployment scenario the paper's edge-offloading
// setting targets. TTFT and TBT percentiles are computed from the
// per-step event stream.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"hybrimoe/internal/engine"
	"hybrimoe/internal/exp"
	"hybrimoe/internal/hw"
	"hybrimoe/internal/moe"
	"hybrimoe/internal/report"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/workload"
)

func main() {
	// Show what the workload generator produces.
	stream := workload.NewStream(42, workload.AllDatasets()...)
	fmt.Println("sample of the request stream:")
	reqs := stream.NextN(8)
	for _, r := range reqs {
		fmt.Printf("  req %2d  %-16s prompt %4d tokens (bucket %4d), decode %3d tokens\n",
			r.ID, r.Dataset, r.PromptTokens, workload.Bucket(r.PromptTokens), r.DecodeTokens)
	}

	// Length distribution per corpus.
	rng := stats.NewRNG(43)
	fmt.Println("\nprompt-length buckets over 1000 samples per corpus:")
	for _, d := range workload.AllDatasets() {
		counts := d.SampleBucketed(rng, 1000)
		fmt.Printf("  %-16s", d.Name)
		for _, b := range workload.PaperBuckets {
			fmt.Printf("  %4d:%-4d", b, counts[b])
		}
		fmt.Println()
	}

	// Stream the sampled requests through a Session: two requests in
	// flight, prefill and decode interleaving, per-step events out.
	for i := range reqs {
		if reqs[i].DecodeTokens > 12 {
			reqs[i].DecodeTokens = 12 // keep the demo quick
		}
	}
	e, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
		engine.WithCacheRatio(0.25), engine.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	s := e.NewSession(engine.WithMaxConcurrent(2))
	s.Submit(reqs...)

	fmt.Println("\nstreaming session (HybriMoE, 25% cache, 2 concurrent requests):")
	var ttfts, tbts []float64
	s.Run(func(ev engine.StepEvent) {
		switch ev.Phase {
		case engine.PhasePrefill:
			ttfts = append(ttfts, ev.Latency)
			fmt.Printf("  t=%7.3fs  req %2d  prefill %4d tok  TTFT %.4fs  (%d hits / %d misses)\n",
				ev.End, ev.Request, ev.Tokens, ev.Latency, ev.Hits, ev.Misses)
		case engine.PhaseDecode:
			tbts = append(tbts, ev.Latency)
			if ev.Done {
				fmt.Printf("  t=%7.3fs  req %2d  done after %d decode steps\n",
					ev.End, ev.Request, ev.Index+1)
			}
		}
	})
	fmt.Printf("\n%d steps, cache hit rate %.1f%%\n", s.Steps(), 100*e.Caches().HitRate())
	fmt.Printf("TTFT  %s\n", report.Latencies(ttfts))
	fmt.Printf("TBT   %s\n", report.Latencies(tbts))

	// The same stream under deadline-aware scheduling and SLO admission
	// control: requests carry per-token completion deadlines, EDF picks
	// the most urgent in-flight request each iteration, and the
	// admission guard sheds best-effort arrivals once the live p95s
	// breach their targets (priority requests are only ever deferred).
	for i := range reqs {
		reqs[i].Deadline = 0.025 * float64(reqs[i].PromptTokens+reqs[i].DecodeTokens)
		if i%3 == 0 {
			reqs[i].Priority = 1
		}
	}
	e2, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
		engine.WithCacheRatio(0.25), engine.WithSeed(42),
		engine.WithRequestScheduler("edf"),
		engine.WithAdmission(engine.NewSLOAdmission(0.12, 0.02)))
	if err != nil {
		log.Fatal(err)
	}
	s2 := e2.NewSession(engine.WithMaxConcurrent(2))
	s2.Submit(reqs...)

	fmt.Println("\nEDF + SLO admission (p95 targets: TTFT 0.12s, TBT 0.02s):")
	violations := 0
	s2.Run(func(ev engine.StepEvent) {
		switch ev.Phase {
		case engine.PhaseShed:
			fmt.Printf("  t=%7.3fs  req %2d  shed by admission control\n", ev.End, ev.Request)
		case engine.PhaseDeferred:
			fmt.Printf("  t=%7.3fs  req %2d  deferred by admission control\n", ev.End, ev.Request)
		case engine.PhaseDecode:
			if ev.Done {
				verdict := "met"
				if ev.Deadline > 0 && ev.End > ev.Deadline {
					verdict = "MISSED"
					violations++
				}
				fmt.Printf("  t=%7.3fs  req %2d  done, deadline %.3fs %s\n",
					ev.End, ev.Request, ev.Deadline, verdict)
			}
		}
	})
	fmt.Printf("shed %d, deferral verdicts %d, deadline violations %d\n",
		s2.Shed(), s2.Deferred(), violations)

	// The same stream under continuous batching: the phase-aware batch
	// former merges the in-flight requests' decode steps into single
	// engine iterations (prefills batch separately, so TBT never pays a
	// prefill-length stall), and every event reports which merged
	// iteration it rode in via Batch/BatchSize.
	e3, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
		engine.WithCacheRatio(0.25), engine.WithSeed(42),
		engine.WithBatchPolicy("phase-aware", 256))
	if err != nil {
		log.Fatal(err)
	}
	s3 := e3.NewSession(engine.WithMaxConcurrent(4))
	s3.Submit(reqs...)

	fmt.Println("\nphase-aware continuous batching (4 concurrent, 256-token budget):")
	var batchedTBTs []float64
	decoded := 0
	s3.Run(func(ev engine.StepEvent) {
		if ev.Phase == engine.PhaseDecode {
			batchedTBTs = append(batchedTBTs, ev.Latency)
			decoded += ev.Tokens
		}
		if ev.Done && ev.BatchSize > 1 {
			fmt.Printf("  t=%7.3fs  req %2d  done in a %d-wide batch (iteration %d)\n",
				ev.End, ev.Request, ev.BatchSize, ev.Batch)
		}
	})
	fmt.Printf("%d decode tokens over %d merged iterations (mean batch %.2f)\n",
		decoded, s3.Batches(), float64(s3.Steps())/float64(s3.Batches()))
	fmt.Printf("TBT   %s\n", report.Latencies(batchedTBTs))

	// The same workload as an open-loop server: a bursty arrival process
	// stamps each request with an arrival time, the Session holds it
	// until the clock gets there (jumping across idle gaps), and TTFT
	// becomes arrival → first token — queue wait included — so the
	// admission guard finally sees queueing pressure build instead of
	// just the forward's cost. The request sequence also round-trips
	// through the JSONL trace format the CLI records and replays.
	open := workload.NewStream(42, workload.AllDatasets()...).
		WithArrivals(workload.Bursty(16, 0, 0.5, 0.5)). // 16 req/s half the time, silent otherwise
		NextN(8)
	workload.CapDecode(open, 12)
	var traced bytes.Buffer
	if err := workload.WriteTrace(&traced, open); err != nil {
		log.Fatal(err)
	}
	replayed, err := workload.ReadTrace(&traced)
	if err != nil {
		log.Fatal(err)
	}
	e4, err := engine.New(moe.DeepSeek(), hw.A6000Platform(), engine.HybriMoEFramework(),
		engine.WithCacheRatio(0.25), engine.WithSeed(42),
		engine.WithAdmission(engine.NewSLOAdmission(0.3, 0)))
	if err != nil {
		log.Fatal(err)
	}
	s4 := e4.NewSession(engine.WithMaxConcurrent(2))
	s4.Submit(replayed...)

	fmt.Println("\nopen-loop bursty arrivals (replayed from a JSONL trace, SLO p95 TTFT 0.3s):")
	var queuedTTFTs []float64
	s4.Run(func(ev engine.StepEvent) {
		switch ev.Phase {
		case engine.PhasePrefill:
			queuedTTFTs = append(queuedTTFTs, ev.Queued+ev.Latency)
			fmt.Printf("  t=%7.3fs  req %2d  arrived %6.3fs, queued %.4fs  TTFT %.4fs\n",
				ev.End, ev.Request, ev.Arrival, ev.Queued, ev.Queued+ev.Latency)
		case engine.PhaseShed:
			fmt.Printf("  t=%7.3fs  req %2d  shed (live p95 TTFT over budget)\n", ev.End, ev.Request)
		}
	})
	fmt.Printf("shed %d of %d\n", s4.Shed(), len(replayed))
	fmt.Printf("TTFT (arrival→first token)  %s\n", report.Latencies(queuedTTFTs))

	// End-to-end serving comparison across frameworks, with percentiles.
	fmt.Println()
	p := exp.DefaultParams()
	p.DecodeSteps = 16 // decode burst cap per request
	exp.ServingStudy(p, 12, 0.25).Render(os.Stdout)

	// Request schedulers × admission policies on one fixed stream:
	// goodput, SLO violation rate and shed fraction side-by-side.
	fmt.Println()
	exp.ServingPolicyStudy(p, 12, 0.25).Render(os.Stdout)

	// Batch formers × concurrency: decode throughput vs the TBT each
	// policy charges for the sharing.
	fmt.Println()
	exp.BatchingStudy(p, 12, 0.25).Render(os.Stdout)

	// Open-loop arrivals: Poisson rate × scheduler × batch former, with
	// queue-inclusive p95 TTFT against the forward-only p95 it replaces
	// and the shed fraction the SLO guard takes as the rate climbs.
	fmt.Println()
	exp.OpenLoopStudy(p, 10, 0.25).Render(os.Stdout)
}
