// Serving example: an end-to-end session study beyond the paper's
// per-stage metrics. A mixed request stream sampled from MT-Bench-,
// Vicuna-Bench- and ChatGPT-Prompts-like length distributions is served
// request after request (prefill, then a decode burst), with the expert
// cache carrying state across requests — the deployment scenario the
// paper's edge-offloading setting targets.
//
// Run with: go run ./examples/serving
package main

import (
	"fmt"
	"os"

	"hybrimoe/internal/exp"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/workload"
)

func main() {
	// Show what the workload generator produces.
	stream := workload.NewStream(42, workload.AllDatasets()...)
	fmt.Println("sample of the request stream:")
	for _, r := range stream.NextN(6) {
		fmt.Printf("  req %2d  %-16s prompt %4d tokens (bucket %4d), decode %3d tokens\n",
			r.ID, r.Dataset, r.PromptTokens, workload.Bucket(r.PromptTokens), r.DecodeTokens)
	}

	// Length distribution per corpus.
	rng := stats.NewRNG(43)
	fmt.Println("\nprompt-length buckets over 1000 samples per corpus:")
	for _, d := range workload.AllDatasets() {
		counts := d.SampleBucketed(rng, 1000)
		fmt.Printf("  %-16s", d.Name)
		for _, b := range workload.PaperBuckets {
			fmt.Printf("  %4d:%-4d", b, counts[b])
		}
		fmt.Println()
	}

	// End-to-end serving comparison across frameworks.
	fmt.Println()
	p := exp.DefaultParams()
	p.DecodeSteps = 16 // decode burst cap per request
	exp.ServingStudy(p, 12, 0.25).Render(os.Stdout)
}
