// Tiny functional MoE: runs a real (scaled-down) DeepSeek-structured
// model with actual arithmetic — router logits, top-k gating, shared
// experts and INT4-quantized routed experts — with no hardware
// simulation at all. It demonstrates the numeric substrate the cost
// models are calibrated against and prints the routing behaviour the
// paper's policies exploit: score concentration and residual-stream
// similarity across layers.
//
// Run with: go run ./examples/tiny_moe
package main

import (
	"fmt"
	"log"

	"hybrimoe/internal/moe"
	"hybrimoe/internal/stats"
	"hybrimoe/internal/tensor"
)

func main() {
	cfg := moe.TinyConfig(moe.DeepSeek())
	model, err := moe.NewTinyModel(cfg, 2025)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s — %d layers, %d routed experts (top-%d), %d shared\n\n",
		cfg.Name, cfg.Layers, cfg.RoutedExperts, cfg.ActivatedExperts, cfg.SharedExperts)

	rng := stats.NewRNG(7)
	x := make([]float32, cfg.Hidden)
	for i := range x {
		x[i] = float32(rng.NormMeanStd(0, 1))
	}

	hidden := x
	for l := 0; l < cfg.Layers; l++ {
		next, routing := model.ForwardLayer(l, hidden)
		sim := tensor.CosineSimilarity(hidden, next)
		fmt.Printf("layer %d: experts %v", l, routing.Experts)
		fmt.Printf("  weights [")
		for i, w := range routing.Weights {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%.2f", w)
		}
		fmt.Printf("]  hidden-state cosine to previous layer: %.3f\n", sim)
		hidden = next
	}

	// The residual stream keeps consecutive hidden states similar, which
	// is why reusing the current state with the next layers' gates
	// predicts their routing — the basis of impact-driven prefetching.
	fmt.Println("\nrouting score distribution at layer 0 (top 8 of", cfg.RoutedExperts, "experts):")
	r := model.Route(0, hidden)
	top := tensor.TopK(r.Scores, 8)
	for _, e := range top {
		bar := int(r.Scores[e] * 400)
		fmt.Printf("  expert %2d: %.4f %s\n", e, r.Scores[e], repeat('#', bar))
	}
}

func repeat(c byte, n int) string {
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
